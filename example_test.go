package encdbdb_test

import (
	"context"
	"fmt"
	"log"

	"github.com/encdbdb/encdbdb"
)

// Example reproduces the paper's running example (§2.1 Figure 1): a first
// name column protected by an encrypted dictionary, searched with the range
// [Archie, Hans].
func Example() {
	db, err := encdbdb.Open()
	if err != nil {
		log.Fatal(err)
	}
	owner, err := encdbdb.NewDataOwner()
	if err != nil {
		log.Fatal(err)
	}
	if err := owner.Provision(db); err != nil {
		log.Fatal(err)
	}
	sess, err := owner.Session(db)
	if err != nil {
		log.Fatal(err)
	}
	stmts := []string{
		"CREATE TABLE t1 (fname ED1(30))",
		"INSERT INTO t1 VALUES ('Hans')",
		"INSERT INTO t1 VALUES ('Jessica')",
		"INSERT INTO t1 VALUES ('Archie')",
		"INSERT INTO t1 VALUES ('Archie')",
		"INSERT INTO t1 VALUES ('Jessica')",
		"INSERT INTO t1 VALUES ('Jessica')",
	}
	for _, s := range stmts {
		if _, err := sess.ExecContext(context.Background(), s); err != nil {
			log.Fatal(err)
		}
	}
	res, err := sess.ExecContext(context.Background(), "SELECT fname FROM t1 WHERE fname BETWEEN 'Archie' AND 'Hans' ORDER BY fname")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row[0])
	}
	// Output:
	// Archie
	// Archie
	// Hans
}

// ExampleDataOwner_DeployTable shows the standard bulk deployment: columns
// are split and encrypted on the owner's side, so plaintext never reaches
// the provider.
func ExampleDataOwner_DeployTable() {
	db, err := encdbdb.Open()
	if err != nil {
		log.Fatal(err)
	}
	owner, err := encdbdb.NewDataOwner()
	if err != nil {
		log.Fatal(err)
	}
	if err := owner.Provision(db); err != nil {
		log.Fatal(err)
	}
	schema := encdbdb.Schema{
		Table: "cities",
		Columns: []encdbdb.ColumnDef{
			{Name: "name", Kind: encdbdb.ED5, MaxLen: 20, BSMax: 10},
			{Name: "country", Kind: encdbdb.ED1, MaxLen: 20},
		},
	}
	rows := [][]string{
		{"Karlsruhe", "DE"},
		{"Waterloo", "CA"},
		{"Berlin", "DE"},
	}
	if err := owner.DeployTable(db, schema, rows); err != nil {
		log.Fatal(err)
	}
	sess, err := owner.Session(db)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sess.ExecContext(context.Background(), "SELECT COUNT(*) FROM cities WHERE country = 'DE'")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Count)
	// Output:
	// 2
}

// ExampleDataOwner_EvaluateLeakage shows the owner-side usage guideline
// (paper §6.4): quantify what each encrypted dictionary would leak on your
// own data before outsourcing it.
func ExampleDataOwner_EvaluateLeakage() {
	owner, err := encdbdb.NewDataOwner()
	if err != nil {
		log.Fatal(err)
	}
	values := []string{"flu", "flu", "flu", "flu", "rare-x", "cold", "cold"}
	rep, err := owner.EvaluateLeakage(encdbdb.ED7, 10, 0, values)
	if err != nil {
		log.Fatal(err)
	}
	// Frequency hiding: every ValueID occurs exactly once in the
	// attribute vector, whatever the plaintext skew.
	fmt.Println(rep.DictionaryEntries, rep.MaxValueIDFrequency)
	// Output:
	// 7 1
}
