package encdbdb_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/encdbdb/encdbdb"
)

// TestPublicQueryPrepareRows drives the v2 query surface end-to-end on an
// embedded deployment: placeholders, prepared statements, and the streaming
// Rows cursor (Next/Scan and the iterator adapter).
func TestPublicQueryPrepareRows(t *testing.T) {
	ctx := context.Background()
	_, _, sess := newStack(t)
	if _, err := sess.ExecContext(ctx, "CREATE TABLE people (fname ED5(30) BSMAX 10, city ED1(30))"); err != nil {
		t.Fatal(err)
	}
	ins, err := sess.Prepare(ctx, "INSERT INTO people VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	for _, r := range [][2]string{
		{"Jessica", "Waterloo"}, {"Hans", "Karlsruhe"}, {"Archie", "Berlin"}, {"Ella", "Berlin"},
	} {
		if _, err := ins.Exec(ctx, r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}

	rows, err := sess.Query(ctx, "SELECT fname, city FROM people WHERE fname >= ? AND fname < ?", "A", "I")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for rows.Next() {
		var fname, city string
		if err := rows.Scan(&fname, &city); err != nil {
			t.Fatal(err)
		}
		got[fname] = city
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	if len(got) != 3 || got["Archie"] != "Berlin" || got["Ella"] != "Berlin" || got["Hans"] != "Karlsruhe" {
		t.Fatalf("rows = %v", got)
	}

	sel, err := sess.Prepare(ctx, "SELECT COUNT(*) FROM people WHERE city = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	for city, want := range map[string]int{"Berlin": 2, "Waterloo": 1, "Nowhere": 0} {
		res, err := sel.Exec(ctx, city)
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != want {
			t.Fatalf("count(%s) = %d, want %d", city, res.Count, want)
		}
	}

	// Iterator adapter.
	rows, err = sess.Query(ctx, "SELECT fname FROM people WHERE city = ?", "Berlin")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for row := range rows.Iter() {
		if len(row) != 1 {
			t.Fatalf("row = %v", row)
		}
		n++
	}
	if err := rows.Err(); err != nil || n != 2 {
		t.Fatalf("iterated %d rows, err %v", n, err)
	}

	// The deprecated string API still works on the same session.
	//lint:ignore SA1019 pinning the legacy wrapper's behaviour is the point
	res, err := sess.Exec("SELECT COUNT(*) FROM people WHERE city = 'Berlin'")
	if err != nil || res.Count != 2 {
		t.Fatalf("legacy Exec = %v, %v", res, err)
	}
}

// TestPublicCancelLocal: a cancelled context surfaces context.Canceled from
// the embedded engine.
func TestPublicCancelLocal(t *testing.T) {
	_, _, sess := newStack(t)
	if _, err := sess.ExecContext(context.Background(), "CREATE TABLE t (c ED1(8))"); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.ExecContext(ctx, "SELECT c FROM t"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestPublicRemoteQueryV2 runs the full v2 surface against a remote provider
// over TCP: streamed Query, prepared statements, and context cancellation
// over the wire — and the connection keeps serving afterwards.
func TestPublicRemoteQueryV2(t *testing.T) {
	provider, err := encdbdb.Open()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go provider.Serve(ln, nil) //nolint:errcheck
	defer provider.Shutdown()

	owner, err := encdbdb.NewDataOwner()
	if err != nil {
		t.Fatal(err)
	}
	client, err := encdbdb.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := owner.ProvisionClient(client, encdbdb.Measurement(encdbdb.DefaultEnclaveIdentity)); err != nil {
		t.Fatal(err)
	}
	sess, err := owner.RemoteSession(client)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	if _, err := sess.ExecContext(ctx, "CREATE TABLE ev (day ED1(10), kind ED5(12) BSMAX 5)"); err != nil {
		t.Fatal(err)
	}
	ins, err := sess.Prepare(ctx, "INSERT INTO ev VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := ins.Exec(ctx, fmt.Sprintf("2026-06-%02d", i%28+1), fmt.Sprintf("k%02d", i%7)); err != nil {
			t.Fatal(err)
		}
	}

	// Streamed query over the wire.
	rows, err := sess.Query(ctx, "SELECT day, kind FROM ev WHERE day >= ?", "2026-06-15")
	if err != nil {
		t.Fatal(err)
	}
	streamed := 0
	for rows.Next() {
		streamed++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	rows.Close()
	res, err := sess.ExecContext(ctx, "SELECT COUNT(*) FROM ev WHERE day >= ?", "2026-06-15")
	if err != nil {
		t.Fatal(err)
	}
	if streamed != res.Count || streamed == 0 {
		t.Fatalf("streamed %d rows, count says %d", streamed, res.Count)
	}

	// Cancellation over the wire: the call returns context.Canceled and the
	// connection keeps working.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := sess.ExecContext(cctx, "SELECT day FROM ev"); !errors.Is(err, context.Canceled) {
		t.Fatalf("remote cancel err = %v, want context.Canceled", err)
	}
	// Cancel mid-stream too.
	cctx2, cancel2 := context.WithCancel(ctx)
	rows, err = sess.Query(cctx2, "SELECT day FROM ev")
	if err != nil {
		t.Fatal(err)
	}
	cancel2()
	for rows.Next() {
	}
	rows.Close()
	if err := rows.Err(); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-stream cancel err = %v", err)
	}

	// The connection is not wedged.
	done := make(chan error, 1)
	go func() {
		res, err := sess.ExecContext(ctx, "SELECT COUNT(*) FROM ev")
		if err == nil && res.Count != 50 {
			err = fmt.Errorf("count = %d, want 50", res.Count)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("connection wedged after cancellations")
	}
}

// TestPublicExecScriptOffsets pins the batch diagnostics through the public
// API.
func TestPublicExecScriptOffsets(t *testing.T) {
	_, _, sess := newStack(t)
	_, err := sess.ExecScript(context.Background(), "CREATE TABLE t (c ED1(4)); SELECT c FRO t")
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	if !strings.Contains(msg, "statement 1") || !strings.Contains(msg, "offset") {
		t.Fatalf("err = %q, want statement index and offset", msg)
	}
}
