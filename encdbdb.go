// Package encdbdb is a searchable encrypted, fast, compressed, in-memory
// column store using (simulated) enclaves — a faithful reimplementation of
// "EncDBDB: Searchable Encrypted, Fast, Compressed, In-Memory Database
// using Enclaves" (Fuhry, Jayanth Jain, Kerschbaum; DSN 2021).
//
// EncDBDB protects each database column with one of nine encrypted
// dictionaries (ED1–ED9) spanning two security dimensions: the repetition
// option bounds frequency leakage (revealing / smoothing / hiding), the
// order option bounds order leakage (sorted / rotated / unsorted). Range
// queries run in two phases: a dictionary search executed inside a trusted
// enclave over PAE-encrypted dictionary entries, and a plaintext attribute
// vector scan in the untrusted engine. See DESIGN.md for the architecture
// and the substitutions this reproduction makes for Intel SGX hardware.
//
// # Roles
//
//   - Database: the untrusted provider — engine plus enclave (Open).
//   - DataOwner: holds the master key SK_DB, attests and provisions the
//     enclave, prepares encrypted columns (NewDataOwner).
//   - Session: the trusted proxy — parses SQL, encrypts query ranges,
//     decrypts results (DataOwner.Session).
//
// # Quickstart
//
//	db, _ := encdbdb.Open()
//	owner, _ := encdbdb.NewDataOwner()
//	_ = owner.Provision(db)
//	sess, _ := owner.Session(db)
//	ctx := context.Background()
//	_, _ = sess.ExecContext(ctx, "CREATE TABLE t1 (fname ED5(30) BSMAX 10)")
//	_, _ = sess.ExecContext(ctx, "INSERT INTO t1 VALUES (?)", "Jessica")
//	rows, _ := sess.Query(ctx, "SELECT fname FROM t1 WHERE fname >= ? AND fname < ?", "A", "K")
//	defer rows.Close()
//	for rows.Next() { ... }
//
// The query surface follows database/sql: every data-plane call takes a
// context that is honored end-to-end (the engine checks it between scan
// chunks; remote providers are told to stop over the wire), '?'
// placeholders bind arguments that are encrypted exactly like inline
// literals, Session.Prepare amortizes parsing and schema resolution across
// repeated executions, and Query streams decrypted rows through a *Rows
// cursor instead of materializing the result. The legacy string-splicing
// Session.Exec survives as a deprecated wrapper.
//
// Runnable programs live under examples/ and cmd/.
package encdbdb

import (
	"time"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/pae"
	"github.com/encdbdb/encdbdb/internal/proxy"
	"github.com/encdbdb/encdbdb/internal/search"
	"github.com/encdbdb/encdbdb/internal/wire"
)

// Kind identifies one of the nine encrypted dictionaries (paper Table 2).
type Kind = dict.Kind

// The nine encrypted dictionaries: rows are the repetition options
// (frequency revealing / smoothing / hiding), columns the order options
// (sorted / rotated / unsorted).
const (
	ED1 = dict.ED1 // revealing, sorted:  fastest, full leakage
	ED2 = dict.ED2 // revealing, rotated
	ED3 = dict.ED3 // revealing, unsorted
	ED4 = dict.ED4 // smoothing, sorted
	ED5 = dict.ED5 // smoothing, rotated: the paper's recommended tradeoff
	ED6 = dict.ED6 // smoothing, unsorted
	ED7 = dict.ED7 // hiding, sorted
	ED8 = dict.ED8 // hiding, rotated
	ED9 = dict.ED9 // hiding, unsorted:   strongest, slowest
)

// ColumnDef declares one column of a table schema.
type ColumnDef = engine.ColumnDef

// Schema declares a table.
type Schema = engine.Schema

// Key is a 128-bit master database key (SK_DB).
type Key = pae.Key

// GenerateKey creates a fresh random master key.
func GenerateKey() (Key, error) { return pae.Gen() }

// Result is a decrypted query result.
type Result = proxy.Result

// Rows is a streaming cursor over a SELECT result: rows are decrypted as
// they are consumed instead of materializing the whole result. It follows
// database/sql's Next/Scan/Err/Close shape and adds Iter, a Go 1.23
// range-over-func adapter.
type Rows = proxy.Rows

// Stmt is a prepared statement: parsed once, schema resolved once, executed
// many times with per-execution '?' arguments.
type Stmt = proxy.Stmt

// ResultKind tells callers how to interpret a Result.
type ResultKind = proxy.ResultKind

// Result kinds.
const (
	KindRows     = proxy.KindRows
	KindCount    = proxy.KindCount
	KindAffected = proxy.KindAffected
	KindOK       = proxy.KindOK
)

// Range is a plaintext search range (for the programmatic query API).
type Range = search.Range

// Client is a connection to a remote EncDBDB provider. It is multiplexed:
// concurrent calls share the connection without serializing round trips
// (with transparent lock-step fallback against old servers).
type Client = wire.Client

// Pool is a fixed-size set of multiplexed connections to one remote
// provider, for callers that want more than one TCP stream.
type Pool = wire.Pool

// Executor is the provider-side surface a Session drives. The embedded
// engine, *Client, and *Pool all implement it.
type Executor = proxy.Executor

// ClientOption configures Dial and DialPool.
type ClientOption = wire.ClientOption

// WithBusyRetry retries calls rejected with a server-busy error up to n
// more times with exponential backoff starting at base (safe for all
// operations: the server sheds load before executing anything).
func WithBusyRetry(n int, base time.Duration) ClientOption { return wire.WithBusyRetry(n, base) }

// WithMaxProto caps the wire protocol version the client negotiates (the
// newest by default). Set 2 to hold the connection on the gob stream codec
// or 1 to force the lock-step protocol — the knobs the cross-version
// compatibility matrix exercises against older providers.
func WithMaxProto(v int) ClientOption { return wire.WithMaxProto(v) }

// Dial connects to a remote provider started with Database.Serve or the
// encdbdb-server command.
func Dial(addr string, opts ...ClientOption) (*Client, error) { return wire.Dial(addr, opts...) }

// DialPool opens size connections to a remote provider.
func DialPool(addr string, size int, opts ...ClientOption) (*Pool, error) {
	return wire.DialPool(addr, size, opts...)
}

// AccessObserver receives every untrusted-memory access the enclave
// performs — the view of an honest-but-curious provider (paper §3.2). Pass
// one via Options.Observer to inspect what your column choices leak.
type AccessObserver = enclave.AccessObserver

// EnclaveStats are the enclave's boundary counters.
type EnclaveStats = enclave.Stats
