package encdbdb

import (
	"github.com/encdbdb/encdbdb/internal/proxy"
)

// Session is the trusted proxy of paper §3.1: it holds the master key,
// rewrites every SQL filter into a uniform encrypted two-sided range, and
// decrypts results before handing them to the application. The provider
// behind it (embedded Database or remote Client) never sees plaintext
// values.
type Session struct {
	p *proxy.Proxy
}

// Exec parses and executes one SQL statement, returning decrypted results.
//
// Supported statements (see internal/sqlparse for the full grammar):
//
//	CREATE TABLE t (c ED5(30) BSMAX 10, d PLAIN ED1(20))
//	SELECT c, d FROM t WHERE c >= 'a' AND c < 'b'
//	SELECT COUNT(*) FROM t WHERE d = 'x'
//	INSERT INTO t VALUES ('v', 'w')
//	UPDATE t SET d = 'y' WHERE c = 'v'
//	DELETE FROM t WHERE c BETWEEN 'a' AND 'b'
//	MERGE TABLE t
//	DROP TABLE t
func (s *Session) Exec(sql string) (*Result, error) {
	return s.p.Execute(sql)
}

// ExecBatch executes several statements in order, returning one result per
// statement. Against a remote provider, runs of consecutive INSERTs into
// the same table are shipped as one batched round trip.
func (s *Session) ExecBatch(sqls []string) ([]*Result, error) {
	return s.p.ExecBatch(sqls)
}
