package encdbdb

import (
	"context"

	"github.com/encdbdb/encdbdb/internal/proxy"
)

// Session is the trusted proxy of paper §3.1: it holds the master key,
// rewrites every SQL filter into a uniform encrypted two-sided range, and
// decrypts results before handing them to the application. The provider
// behind it (embedded Database or remote Client) never sees plaintext
// values.
//
// The query surface follows database/sql: ExecContext and Query take a
// context and '?' placeholder arguments, Prepare amortizes parsing and
// schema resolution across repeated executions, and Query returns a *Rows
// cursor that streams decrypted rows instead of materializing the result.
// Cancelling the context stops an in-flight query between scan chunks —
// locally and, for remote providers, over the wire.
type Session struct {
	p *proxy.Proxy
}

// ExecContext parses and executes one SQL statement, binding '?'
// placeholders from args and returning a decrypted, materialized result.
//
// Supported statements (see internal/sqlparse for the full grammar):
//
//	CREATE TABLE t (c ED5(30) BSMAX 10, d PLAIN ED1(20))
//	SELECT c, d FROM t WHERE c >= ? AND c < ?
//	SELECT COUNT(*) FROM t WHERE d = 'x'
//	INSERT INTO t VALUES (?, ?)
//	UPDATE t SET d = ? WHERE c = ?
//	DELETE FROM t WHERE c BETWEEN ? AND ?
//	MERGE TABLE t
//	DROP TABLE t
func (s *Session) ExecContext(ctx context.Context, sql string, args ...any) (*Result, error) {
	return s.p.Execute(ctx, sql, args...)
}

// Query executes a SELECT, binding '?' placeholders from args, and returns a
// streaming cursor over the decrypted rows. Plain projections stream
// end-to-end (the provider renders and ships chunks on demand); SELECTs with
// ORDER BY, aggregates, or COUNT(*) materialize internally first. Always
// Close the returned Rows.
func (s *Session) Query(ctx context.Context, sql string, args ...any) (*Rows, error) {
	return s.p.Query(ctx, sql, args...)
}

// Prepare parses a statement once and resolves its table schema once, so
// repeated executions pay neither again — the hot path for high-traffic
// parameterized workloads. The statement may contain '?' placeholders bound
// by each Stmt.Exec / Stmt.Query call.
func (s *Session) Prepare(ctx context.Context, sql string) (*Stmt, error) {
	return s.p.Prepare(ctx, sql)
}

// Exec parses and executes one SQL statement, returning decrypted results.
//
// Deprecated: Exec splices values into SQL strings and cannot be cancelled.
// Use ExecContext (or Query for streaming SELECTs) with '?' placeholder
// arguments instead; Exec remains as a shim for existing callers and is
// equivalent to ExecContext(context.Background(), sql).
func (s *Session) Exec(sql string) (*Result, error) {
	return s.p.Execute(context.Background(), sql)
}

// ExecBatch executes several statements in order, returning one result per
// statement. Against a remote provider, runs of consecutive INSERTs into
// the same table are shipped as one batched round trip.
func (s *Session) ExecBatch(ctx context.Context, sqls []string) ([]*Result, error) {
	return s.p.ExecBatch(ctx, sqls)
}

// ExecScript splits a semicolon-separated script and executes it like
// ExecBatch. Syntax errors identify the failing statement and its absolute
// byte offset within the script.
func (s *Session) ExecScript(ctx context.Context, script string) ([]*Result, error) {
	return s.p.ExecScript(ctx, script)
}
