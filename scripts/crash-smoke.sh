#!/usr/bin/env bash
# crash-smoke.sh — kill -9 recovery smoke test over the real binaries.
#
# Boots encdbdb-server with a durability directory, provisions it through
# encdbdb-proxy with a fixed master key, loads encrypted rows, SIGKILLs the
# server, restarts it on the same directory, re-provisions the fresh enclave
# with the same key, and asserts the acknowledged rows survived and answer a
# range probe. Run from the repository root after `go build -o bin/ ./cmd/...`
# (pass an alternate bin directory as $1).
set -euo pipefail

BIN="${1:-bin}"
ADDR=127.0.0.1:7787
# Any fixed 32-hex-char key: provisioning after restart must reuse it so the
# recovered ciphertexts decrypt.
KEY=00112233445566778899aabbccddeeff
DATA_DIR=$(mktemp -d)
server_pid=""

cleanup() {
  [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$DATA_DIR"
}
trap cleanup EXIT

wait_tcp() {
  for _ in $(seq 1 50); do
    (exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR#*:}") 2>/dev/null && return 0
    sleep 0.1
  done
  echo "server never came up on $ADDR" >&2
  return 1
}

echo "==> first boot: provision, create, load 20 rows"
"$BIN"/encdbdb-server -addr "$ADDR" -data-dir "$DATA_DIR" &
server_pid=$!
wait_tcp
{
  echo "CREATE TABLE t (c ED1(8))"
  for i in $(seq -w 1 20); do
    echo "INSERT INTO t VALUES ('r$i')"
  done
  echo "\\q"
} | "$BIN"/encdbdb-proxy -addr "$ADDR" -provision -key "$KEY" >load-out.txt
# Every one of the 20 inserts must have been acknowledged before the kill.
[ "$(grep -c "affected: 1" load-out.txt)" -eq 20 ]

echo "==> kill -9 the server mid-life"
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "==> restart on the same data dir; recovery must replay the log"
"$BIN"/encdbdb-server -addr "$ADDR" -data-dir "$DATA_DIR" 2>server2.log &
server_pid=$!
wait_tcp
grep -q "recovered $DATA_DIR" server2.log

echo "==> re-provision the fresh enclave with the same key and verify"
{
  echo "SELECT c FROM t WHERE c >= 'r01' AND c <= 'r99'"
  echo "SELECT c FROM t WHERE c >= 'r05' AND c <= 'r14'"
  echo "\\q"
} | "$BIN"/encdbdb-proxy -addr "$ADDR" -provision -key "$KEY" >probe-out.txt
# All 20 acknowledged rows survived, and a narrower range probe answers
# exactly as a never-crashed server would.
grep -q "(20 rows)" probe-out.txt
grep -q "(10 rows)" probe-out.txt

echo "==> recovered server still accepts writes"
{
  echo "INSERT INTO t VALUES ('r21')"
  echo "SELECT c FROM t WHERE c >= 'r01' AND c <= 'r99'"
  echo "\\q"
} | "$BIN"/encdbdb-proxy -addr "$ADDR" -key "$KEY" >post-out.txt
grep -q "(21 rows)" post-out.txt

echo "crash-smoke: OK (20/20 rows recovered after kill -9, writes resume)"
