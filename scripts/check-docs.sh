#!/usr/bin/env bash
# check-docs.sh verifies the documentation suite:
#   1. every relative markdown link in README.md and docs/*.md resolves to
#      an existing file;
#   2. every ```go snippet in those files is syntactically valid Go and
#      gofmt-clean (statement-only snippets are parsed inside a wrapper
#      function at snippet indentation, so docs keep reading naturally).
# Run from anywhere; it operates on the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

docs=(README.md docs/*.md)
status=0

# --- 1. relative links -------------------------------------------------------
broken=$(
  for f in "${docs[@]}"; do
    dir=$(dirname "$f")
    grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//' |
      while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        esac
        path=${target%%#*}
        [ -z "$path" ] && continue # same-file anchor
        if [ ! -e "$dir/$path" ]; then
          echo "$f: broken link: $target"
        fi
      done
  done
)
if [ -n "$broken" ]; then
  echo "$broken"
  status=1
fi

# --- 2. Go snippets ----------------------------------------------------------
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

for f in "${docs[@]}"; do
  base=$(basename "$f" .md)
  awk -v out="$tmp/${base}_" '
    /^```go$/ { n++; snip = sprintf("%s%d.go", out, n); live = 1; next }
    /^```/    { live = 0; next }
    live      { print > snip }
  ' "$f"
done

shopt -s nullglob
for snip in "$tmp"/*.go; do
  if grep -q '^package ' "$snip"; then
    src=$snip
  else
    # Statement-only snippet: parse it inside a function body.
    src=$tmp/wrapped_$(basename "$snip")
    {
      echo "package snippet"
      echo
      echo "func _() {"
      cat "$snip"
      echo "}"
    } >"$src"
  fi
  if ! gofmt -l "$src" >"$tmp/fmt.out" 2>"$tmp/fmt.err"; then
    echo "$(basename "$snip"): snippet does not parse:"
    cat "$tmp/fmt.err"
    status=1
  elif [ "$src" = "$snip" ] && [ -s "$tmp/fmt.out" ]; then
    echo "$(basename "$snip"): snippet is not gofmt-clean"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "docs OK: links resolve, Go snippets parse"
fi
exit "$status"
