module github.com/encdbdb/encdbdb

go 1.23
