package encdbdb_test

import (
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sort"
	"testing"

	"github.com/encdbdb/encdbdb"
)

// newStack opens and provisions an embedded deployment.
func newStack(t testing.TB) (*encdbdb.Database, *encdbdb.DataOwner, *encdbdb.Session) {
	t.Helper()
	db, err := encdbdb.Open()
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	owner, err := encdbdb.NewDataOwner()
	if err != nil {
		t.Fatalf("NewDataOwner: %v", err)
	}
	if err := owner.Provision(db); err != nil {
		t.Fatalf("Provision: %v", err)
	}
	sess, err := owner.Session(db)
	if err != nil {
		t.Fatalf("Session: %v", err)
	}
	return db, owner, sess
}

func TestPublicQuickstartFlow(t *testing.T) {
	_, _, sess := newStack(t)
	if _, err := sess.ExecContext(context.Background(), "CREATE TABLE t1 (fname ED5(30) BSMAX 10)"); err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"Jessica", "Hans", "Archie"} {
		if _, err := sess.ExecContext(context.Background(), fmt.Sprintf("INSERT INTO t1 VALUES ('%s')", v)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sess.ExecContext(context.Background(), "SELECT fname FROM t1 WHERE fname >= 'A' AND fname < 'I'")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != encdbdb.KindRows || len(res.Rows) != 2 {
		t.Fatalf("res = %+v, want 2 rows", res)
	}
}

func TestPublicBulkDeploy(t *testing.T) {
	db, owner, sess := newStack(t)
	schema := encdbdb.Schema{
		Table: "sales",
		Columns: []encdbdb.ColumnDef{
			{Name: "country", Kind: encdbdb.ED5, MaxLen: 20, BSMax: 5},
			{Name: "product", Kind: encdbdb.ED1, MaxLen: 20},
		},
	}
	rows := [][]string{
		{"Germany", "Widget"},
		{"Canada", "Gadget"},
		{"Germany", "Gadget"},
	}
	if err := owner.DeployTable(db, schema, rows); err != nil {
		t.Fatalf("DeployTable: %v", err)
	}
	res, err := sess.ExecContext(context.Background(), "SELECT product FROM sales WHERE country = 'Germany'")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, r := range res.Rows {
		got = append(got, r[0])
	}
	sort.Strings(got)
	if fmt.Sprint(got) != fmt.Sprint([]string{"Gadget", "Widget"}) {
		t.Errorf("rows = %v", got)
	}
	if n, _ := db.Rows("sales"); n != 3 {
		t.Errorf("rows = %d", n)
	}
	if sz, _ := db.StorageBytes("sales"); sz == 0 {
		t.Error("storage = 0")
	}
}

func TestPublicPersistence(t *testing.T) {
	db, owner, sess := newStack(t)
	if _, err := sess.ExecContext(context.Background(), "CREATE TABLE p (c ED1(8))"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecContext(context.Background(), "INSERT INTO p VALUES ('x')"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "p.encdb")
	if err := db.SaveTable("p", path); err != nil {
		t.Fatalf("SaveTable: %v", err)
	}

	db2, err := encdbdb.Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.Provision(db2); err != nil {
		t.Fatal(err)
	}
	if err := db2.LoadTable(path); err != nil {
		t.Fatalf("LoadTable: %v", err)
	}
	sess2, err := owner.Session(db2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess2.Exec("SELECT c FROM p")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != "x" {
		t.Fatalf("rows = %+v, %v", res, err)
	}
}

func TestPublicRemoteDeployment(t *testing.T) {
	// Provider side.
	db, err := encdbdb.Open()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go db.Serve(ln, nil) //nolint:errcheck // shut down below
	defer db.Shutdown()

	// Owner side.
	owner, err := encdbdb.NewDataOwner()
	if err != nil {
		t.Fatal(err)
	}
	client, err := encdbdb.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := owner.ProvisionClient(client, encdbdb.Measurement(encdbdb.DefaultEnclaveIdentity)); err != nil {
		t.Fatalf("ProvisionClient: %v", err)
	}
	if err := owner.DeployTableClient(client, encdbdb.Schema{
		Table:   "r",
		Columns: []encdbdb.ColumnDef{{Name: "c", Kind: encdbdb.ED2, MaxLen: 8}},
	}, [][]string{{"a"}, {"b"}, {"c"}}); err != nil {
		t.Fatalf("DeployTableClient: %v", err)
	}
	sess, err := owner.RemoteSession(client)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.ExecContext(context.Background(), "SELECT c FROM r WHERE c >= 'b'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestPublicEnclaveStats(t *testing.T) {
	db, _, sess := newStack(t)
	if _, err := sess.ExecContext(context.Background(), "CREATE TABLE s (c ED1(8))"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecContext(context.Background(), "INSERT INTO s VALUES ('v')"); err != nil {
		t.Fatal(err)
	}
	db.ResetEnclaveStats()
	if _, err := sess.ExecContext(context.Background(), "SELECT c FROM s WHERE c = 'v'"); err != nil {
		t.Fatal(err)
	}
	if st := db.EnclaveStats(); st.ECalls == 0 {
		t.Error("no ECALLs counted for an encrypted query")
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	owner, err := encdbdb.NewDataOwner()
	if err != nil {
		t.Fatal(err)
	}
	k := owner.MasterKey()
	owner2, err := encdbdb.NewDataOwnerWithKey(k)
	if err != nil {
		t.Fatal(err)
	}
	if string(owner2.MasterKey()) != string(k) {
		t.Error("key round trip failed")
	}
	if _, err := encdbdb.NewDataOwnerWithKey(encdbdb.Key("short")); err == nil {
		t.Error("short key accepted")
	}
}

func TestPublicTrustedSetupImport(t *testing.T) {
	// Paper §4.2's trusted-setup variant: plaintext goes to the provider,
	// which splits and encrypts inside the enclave.
	db, _, sess := newStack(t)
	schema := encdbdb.Schema{
		Table: "ts",
		Columns: []encdbdb.ColumnDef{
			{Name: "c", Kind: encdbdb.ED5, MaxLen: 8, BSMax: 3},
			{Name: "d", Kind: encdbdb.ED9, MaxLen: 8},
		},
	}
	rows := [][]string{{"b", "x"}, {"a", "y"}, {"c", "x"}}
	if err := db.ImportPlaintextTable(schema, rows); err != nil {
		t.Fatalf("ImportPlaintextTable: %v", err)
	}
	res, err := sess.ExecContext(context.Background(), "SELECT c FROM ts WHERE d = 'x' ORDER BY c")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0] != "b" || res.Rows[1][0] != "c" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestPublicTrustedSetupRequiresProvisionedEnclave(t *testing.T) {
	db, err := encdbdb.Open()
	if err != nil {
		t.Fatal(err)
	}
	schema := encdbdb.Schema{
		Table:   "ts2",
		Columns: []encdbdb.ColumnDef{{Name: "c", Kind: encdbdb.ED1, MaxLen: 8}},
	}
	if err := db.ImportPlaintextTable(schema, [][]string{{"v"}}); err == nil {
		t.Error("trusted setup succeeded without provisioning")
	}
}

func TestPublicPadProbesOption(t *testing.T) {
	db, err := encdbdb.Open(encdbdb.Options{PadProbes: true})
	if err != nil {
		t.Fatal(err)
	}
	owner, err := encdbdb.NewDataOwner()
	if err != nil {
		t.Fatal(err)
	}
	if err := owner.Provision(db); err != nil {
		t.Fatal(err)
	}
	sess, err := owner.Session(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecContext(context.Background(), "CREATE TABLE pp (c ED1(8))"); err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"a", "b", "c", "d"} {
		if _, err := sess.ExecContext(context.Background(), fmt.Sprintf("INSERT INTO pp VALUES ('%s')", v)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sess.ExecContext(context.Background(), "SELECT c FROM pp WHERE c >= 'b' AND c <= 'c'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestPublicQueryBeforeProvisionFails(t *testing.T) {
	db, err := encdbdb.Open()
	if err != nil {
		t.Fatal(err)
	}
	owner, err := encdbdb.NewDataOwner()
	if err != nil {
		t.Fatal(err)
	}
	sess, err := owner.Session(db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecContext(context.Background(), "CREATE TABLE u (c ED1(8))"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.ExecContext(context.Background(), "INSERT INTO u VALUES ('v')"); err == nil {
		t.Error("insert succeeded without provisioning the enclave")
	}
}
