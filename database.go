package encdbdb

import (
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/metrics"
	"github.com/encdbdb/encdbdb/internal/search"
	"github.com/encdbdb/encdbdb/internal/storage"
	"github.com/encdbdb/encdbdb/internal/wal"
	"github.com/encdbdb/encdbdb/internal/wire"
)

// Database is an EncDBDB provider instance: the untrusted engine plus the
// trusted enclave it delegates dictionary searches to. In production the
// provider runs at the DBaaS; embedded deployments hold it in process.
type Database struct {
	platform    *enclave.Platform
	encl        *enclave.Enclave
	db          *engine.DB
	srvMu       sync.Mutex // guards server: Serve runs in a goroutine, Shutdown elsewhere
	server      *wire.Server
	connWorkers int
	queueDepth  int
	reqTimeout  time.Duration
	connRate    float64
	maxProto    int
	metrics     *metrics.Registry
	log         *wal.Log
}

// Options configure Open.
type Options struct {
	// EnclaveIdentity is the enclave's code identity; its hash is the
	// attestation measurement. Defaults to DefaultEnclaveIdentity.
	EnclaveIdentity string
	// MemoryBudget caps simulated enclave memory (0 = the SGX v2 default
	// of ~96 MB).
	MemoryBudget int
	// Observer receives the enclave's untrusted memory access pattern
	// (for security evaluation).
	Observer enclave.AccessObserver
	// PadProbes makes the observable access count of sorted and rotated
	// dictionary searches independent of the queried range by issuing
	// dummy probes up to a fixed size-dependent target (side-channel
	// mitigation; see internal/enclave).
	PadProbes bool
	// AVMode selects the attribute-vector strategy for unsorted
	// dictionaries (0 = sorted probe).
	AVMode search.AVMode
	// Workers bounds attribute-vector scan parallelism (0 = GOMAXPROCS).
	Workers int
	// ConnWorkers bounds how many requests of one multiplexed remote
	// connection Serve executes concurrently (0 = wire default).
	ConnWorkers int
	// QueueDepth bounds how many admitted requests may be outstanding per
	// remote connection before further requests are shed with
	// wire.ErrServerBusy (0 = wire default of ConnWorkers x 64).
	QueueDepth int
	// RequestTimeout attaches a deadline to every remote request, measured
	// from decode — queue wait counts. 0 means no deadline.
	RequestTimeout time.Duration
	// ConnRate caps each remote connection's sustained request rate
	// (requests/second, token bucket with one second of burst); requests over
	// budget are shed with wire.ErrRateLimited. 0 means unlimited.
	ConnRate float64
	// MaxProto caps the wire protocol version Serve negotiates (0 = the
	// newest). Set 2 to hold connections on the gob stream codec or 1 to
	// emulate a lock-step-only provider — the knobs the cross-version
	// compatibility matrix exercises.
	MaxProto int
	// EnableMetrics creates a metrics registry and instruments the engine,
	// enclave, and (once Serve runs) the wire server with it. Scrape it via
	// MetricsHandler. Off by default: an uninstrumented provider pays zero
	// metrics overhead.
	EnableMetrics bool
	// DataDir enables durability: a write-ahead log plus checkpoint images
	// live in this directory, every write is logged before it is applied,
	// and Open recovers the store from the directory's contents (surviving
	// kill -9 and power loss). Empty means in-memory only, as before.
	DataDir string
	// SyncPolicy controls when the log is fsynced: "always" (default —
	// every commit waits for durability, amortized by group commit),
	// "interval" (a background fsync every SyncEvery), or "none" (fsync
	// only at checkpoints). Ignored without DataDir.
	SyncPolicy string
	// SyncEvery is the fsync cadence under SyncPolicy "interval"
	// (0 = the wal default of 10ms).
	SyncEvery time.Duration
}

// DefaultEnclaveIdentity is the code identity of this repository's enclave.
const DefaultEnclaveIdentity = "encdbdb-enclave-v1"

// Open launches a provider: a fresh platform, a measured enclave, and an
// empty engine. The enclave must be provisioned by a DataOwner before
// encrypted columns can be used.
func Open(opts ...Options) (*Database, error) {
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.EnclaveIdentity == "" {
		o.EnclaveIdentity = DefaultEnclaveIdentity
	}
	platform, err := enclave.NewPlatform()
	if err != nil {
		return nil, fmt.Errorf("encdbdb: %w", err)
	}
	encl, err := platform.Launch(enclave.Config{
		Identity:     o.EnclaveIdentity,
		MemoryBudget: o.MemoryBudget,
		Observer:     o.Observer,
		PadProbes:    o.PadProbes,
	})
	if err != nil {
		return nil, fmt.Errorf("encdbdb: %w", err)
	}
	var engOpts []engine.Option
	if o.AVMode != 0 {
		engOpts = append(engOpts, engine.WithAVMode(o.AVMode))
	}
	if o.Workers != 0 {
		engOpts = append(engOpts, engine.WithWorkers(o.Workers))
	}
	var reg *metrics.Registry
	if o.EnableMetrics {
		reg = metrics.NewRegistry()
		engOpts = append(engOpts, engine.WithMetrics(reg))
		registerEnclaveMetrics(reg, encl)
	}
	db := engine.New(encl, engOpts...)
	var log *wal.Log
	if o.DataDir != "" {
		var walOpts []wal.Option
		if o.SyncPolicy != "" {
			p, err := wal.ParseSyncPolicy(o.SyncPolicy)
			if err != nil {
				return nil, fmt.Errorf("encdbdb: %w", err)
			}
			walOpts = append(walOpts, wal.WithSyncPolicy(p))
		}
		if o.SyncEvery > 0 {
			walOpts = append(walOpts, wal.WithSyncEvery(o.SyncEvery))
		}
		if reg != nil {
			walOpts = append(walOpts, wal.WithMetrics(reg))
		}
		log, err = wal.Open(o.DataDir, db, walOpts...)
		if err != nil {
			return nil, fmt.Errorf("encdbdb: %w", err)
		}
		db.SetCommitLog(log)
	}
	return &Database{
		platform:    platform,
		encl:        encl,
		db:          db,
		connWorkers: o.ConnWorkers,
		queueDepth:  o.QueueDepth,
		reqTimeout:  o.RequestTimeout,
		connRate:    o.ConnRate,
		maxProto:    o.MaxProto,
		metrics:     reg,
		log:         log,
	}, nil
}

// registerEnclaveMetrics exposes the enclave's boundary counters as sampled
// gauges. They are gauges, not counters, because ResetEnclaveStats may zero
// them between scrapes — a counter contract would make every reset look like
// a counter rollover to the scraper.
func registerEnclaveMetrics(reg *metrics.Registry, encl *enclave.Enclave) {
	reg.NewGaugeFunc("encdbdb_enclave_ecalls", "Enclave entries since the last stats reset (one per dictionary search).",
		func() float64 { return float64(encl.Stats().ECalls) })
	reg.NewGaugeFunc("encdbdb_enclave_dictionary_loads", "Dictionary entries pulled into the enclave from untrusted memory since the last stats reset.",
		func() float64 { return float64(encl.Stats().Loads) })
	reg.NewGaugeFunc("encdbdb_enclave_loaded_bytes", "Bytes of dictionary data loaded into the enclave since the last stats reset.",
		func() float64 { return float64(encl.Stats().BytesLoaded) })
	reg.NewGaugeFunc("encdbdb_enclave_decryptions", "PAE decryptions inside the enclave since the last stats reset.",
		func() float64 { return float64(encl.Stats().Decryptions) })
	reg.NewGaugeFunc("encdbdb_enclave_encryptions", "PAE encryptions inside the enclave since the last stats reset.",
		func() float64 { return float64(encl.Stats().Encryptions) })
}

// Executor exposes the provider's engine as an Executor, for in-process
// compositions that need the raw surface — e.g. one embedded backend per
// shard of a NewShardedExecutor in tests and benchmarks.
func (d *Database) Executor() Executor { return d.db }

// Tables lists the registered tables.
func (d *Database) Tables() []string { return d.db.Tables() }

// Rows returns a table's total row count (including invalidated rows).
func (d *Database) Rows(table string) (int, error) { return d.db.Rows(table) }

// StorageBytes returns a table's storage footprint in bytes.
func (d *Database) StorageBytes(table string) (int, error) { return d.db.StorageBytes(table) }

// EnclaveStats returns the enclave's boundary counters (ECALLs, loads,
// decryptions) since the last reset.
func (d *Database) EnclaveStats() enclave.Stats { return d.encl.Stats() }

// ResetEnclaveStats zeroes the boundary counters.
func (d *Database) ResetEnclaveStats() { d.encl.ResetStats() }

// ImportPlaintextTable is the trusted-setup variant of paper §4.2: the
// provider receives plaintext rows and performs the column splits and
// encryptions inside the enclave. The enclave must be provisioned first.
// Prefer DataOwner.DeployTable, which keeps plaintext on the owner's side.
func (d *Database) ImportPlaintextTable(schema Schema, rows [][]string) error {
	if err := d.db.CreateTable(schema); err != nil {
		return err
	}
	for j, def := range schema.Columns {
		col := make([][]byte, len(rows))
		for i, r := range rows {
			if j < len(r) {
				col[i] = []byte(r[j])
			} else {
				col[i] = []byte{}
			}
		}
		if err := d.db.ImportPlaintextColumn(schema.Table, def.Name, col); err != nil {
			return err
		}
	}
	return nil
}

// SaveTable persists one table to path (atomic write, CRC-protected).
func (d *Database) SaveTable(table, path string) error {
	return storage.SaveTable(d.db, table, path)
}

// LoadTable restores a table previously written with SaveTable.
func (d *Database) LoadTable(path string) error {
	return storage.LoadTable(d.db, path)
}

// Serve exposes the provider on a TCP listener using the wire protocol,
// blocking until Shutdown. Remote proxies connect with Dial or DialPool;
// multiplexed connections dispatch requests concurrently (bounded by
// Options.ConnWorkers).
func (d *Database) Serve(ln net.Listener, logf func(format string, args ...any)) error {
	var opts []wire.ServerOption
	if d.connWorkers > 0 {
		opts = append(opts, wire.WithConnWorkers(d.connWorkers))
	}
	if d.queueDepth > 0 {
		opts = append(opts, wire.WithQueueDepth(d.queueDepth))
	}
	if d.reqTimeout > 0 {
		opts = append(opts, wire.WithRequestTimeout(d.reqTimeout))
	}
	if d.connRate > 0 {
		opts = append(opts, wire.WithConnRate(d.connRate))
	}
	if d.maxProto > 0 {
		opts = append(opts, wire.WithServerMaxProto(d.maxProto))
	}
	if d.metrics != nil {
		opts = append(opts, wire.WithMetrics(d.metrics))
	}
	srv := wire.NewServer(d.db, logf, opts...)
	d.srvMu.Lock()
	d.server = srv
	d.srvMu.Unlock()
	return srv.Serve(ln)
}

// MetricsHandler returns an HTTP handler serving the provider's metrics in
// the Prometheus text exposition format, or nil when Options.EnableMetrics
// was off. Mount it at /metrics on an operator-facing listener (see
// docs/operations.md); the wire families appear once Serve has started.
func (d *Database) MetricsHandler() http.Handler {
	if d.metrics == nil {
		return nil
	}
	return d.metrics.Handler()
}

// Shutdown stops a running Serve.
func (d *Database) Shutdown() error {
	d.srvMu.Lock()
	srv := d.server
	d.srvMu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}

// RecoveryStats reports what the last Open replayed from the write-ahead
// log (zero value when DataDir was not set).
func (d *Database) RecoveryStats() wal.Stats {
	if d.log == nil {
		return wal.Stats{}
	}
	return d.log.Stats()
}

// Close stops a running Serve and closes the write-ahead log, flushing and
// fsyncing its tail. A provider that is Closed cleanly restarts without
// replay work; one that is killed restarts through recovery instead — both
// end in the same state.
func (d *Database) Close() error {
	err := d.Shutdown()
	if d.log != nil {
		if cerr := d.log.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
