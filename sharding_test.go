package encdbdb_test

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/encdbdb/encdbdb"
	"github.com/encdbdb/encdbdb/internal/engine"
)

// newShardedStack provisions n embedded databases under one owner and fronts
// them with a sharded executor — the in-process twin of
// `encdbdb-proxy -shards h1,h2,...`.
func newShardedStack(t testing.TB, owner *encdbdb.DataOwner, n int) (*encdbdb.Session, *encdbdb.ShardedExecutor) {
	t.Helper()
	backends := make([]encdbdb.Executor, n)
	addrs := make([]string, n)
	for i := range backends {
		db, err := encdbdb.Open()
		if err != nil {
			t.Fatalf("Open shard %d: %v", i, err)
		}
		if err := owner.Provision(db); err != nil {
			t.Fatalf("Provision shard %d: %v", i, err)
		}
		backends[i] = db.Executor()
		addrs[i] = fmt.Sprintf("embedded-%d", i)
	}
	exec, err := encdbdb.NewShardedExecutor(encdbdb.NewShardMap(addrs...), backends)
	if err != nil {
		t.Fatalf("NewShardedExecutor: %v", err)
	}
	sess, err := owner.RemoteSession(exec)
	if err != nil {
		t.Fatalf("RemoteSession: %v", err)
	}
	return sess, exec
}

// shardPeople is the seed dataset: unique names (deterministic total orders),
// duplicate cities (cross-shard ties), zero-padded numeric amounts (the
// engine's lexicographic order matches numeric order), and one all-zero
// amount to hit the aggregate parser's special case.
var shardPeople = [][3]string{
	{"alice", "bern", "0042"}, {"bob", "oslo", "0007"}, {"carol", "bern", "0013"},
	{"dave", "lima", "0100"}, {"erin", "oslo", "0008"}, {"frank", "bern", "0055"},
	{"grace", "lima", "0021"}, {"heidi", "rome", "0002"}, {"ivan", "rome", "0034"},
	{"judy", "bern", "0090"}, {"karl", "oslo", "0001"}, {"laura", "lima", "0077"},
	{"mallory", "rome", "0019"}, {"nina", "bern", "0064"}, {"oscar", "oslo", "0028"},
	{"peggy", "lima", "0003"}, {"quinn", "rome", "0000"},
}

func seedPeople(t testing.TB, sess *encdbdb.Session) {
	t.Helper()
	ctx := context.Background()
	if _, err := sess.ExecContext(ctx, "CREATE TABLE people (name ED5(30) BSMAX 10, city ED1(30), amount ED1(8))"); err != nil {
		t.Fatalf("CREATE TABLE: %v", err)
	}
	for _, p := range shardPeople {
		if _, err := sess.ExecContext(ctx, "INSERT INTO people VALUES (?, ?, ?)", p[0], p[1], p[2]); err != nil {
			t.Fatalf("INSERT %v: %v", p, err)
		}
	}
}

func mustExec(t testing.TB, sess *encdbdb.Session, sql string) *encdbdb.Result {
	t.Helper()
	res, err := sess.ExecContext(context.Background(), sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

// renderResult canonicalizes a result for exact comparison; fmt prints nil
// and empty slices identically, so representation noise cannot fail a test.
func renderResult(res *encdbdb.Result) string {
	return fmt.Sprintf("cols=%v count=%d affected=%d rows=%v", res.Columns, res.Count, res.Affected, res.Rows)
}

// renderSorted canonicalizes a result as a row multiset.
func renderSorted(res *encdbdb.Result) string {
	rows := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = strings.Join(r, "\x1f")
	}
	sort.Strings(rows)
	return fmt.Sprintf("cols=%v count=%d rows=%v", res.Columns, res.Count, rows)
}

// TestShardedMatchesSingleNode is the distributed-correctness property test:
// every query shape — scans, filters, ORDER BY (asc/desc, LIMIT), aggregates,
// COUNT — returns the same decrypted answer from a 1/2/4-shard fleet as from
// a single-node twin holding the same rows. The 1-shard configuration must be
// bit-identical to the direct path, row order included; multi-shard plain
// scans are compared as multisets because rows interleave by shard.
func TestShardedMatchesSingleNode(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			owner, err := encdbdb.NewDataOwner()
			if err != nil {
				t.Fatal(err)
			}
			// Single-node twin: the direct embedded path, no shard layer.
			db, err := encdbdb.Open()
			if err != nil {
				t.Fatal(err)
			}
			if err := owner.Provision(db); err != nil {
				t.Fatal(err)
			}
			single, err := owner.Session(db)
			if err != nil {
				t.Fatal(err)
			}
			sharded, _ := newShardedStack(t, owner, shards)
			seedPeople(t, single)
			seedPeople(t, sharded)

			// Deterministic answers: identical output regardless of shard
			// count. ORDER BY name is a total order (names are unique),
			// ORDER BY city projects only the key (its sorted multiset is
			// unique), and aggregates are scalars.
			exact := []string{
				"SELECT name, city, amount FROM people ORDER BY name",
				"SELECT name, amount FROM people ORDER BY name DESC",
				"SELECT name FROM people ORDER BY name LIMIT 4",
				"SELECT name FROM people ORDER BY name DESC LIMIT 4",
				"SELECT city FROM people ORDER BY city",
				"SELECT name FROM people WHERE city = 'bern' ORDER BY name",
				"SELECT MIN(amount), MAX(amount), SUM(amount), AVG(amount) FROM people",
				"SELECT SUM(amount), AVG(amount) FROM people WHERE city >= 'm'",
				"SELECT MIN(name), MAX(name) FROM people WHERE city = 'lima'",
				"SELECT SUM(amount) FROM people WHERE name = 'no-such-person'",
				"SELECT COUNT(*) FROM people",
				"SELECT COUNT(*) FROM people WHERE city = 'bern'",
				"SELECT COUNT(*) FROM people WHERE name >= 'f' AND name < 'q'",
			}
			for _, q := range exact {
				if got, want := renderResult(mustExec(t, sharded, q)), renderResult(mustExec(t, single, q)); got != want {
					t.Errorf("%s:\n sharded: %s\n single:  %s", q, got, want)
				}
			}

			// Order-free answers: plain scans deliver shard by shard, so the
			// guarantee is the row multiset, not the interleaving.
			multiset := []string{
				"SELECT * FROM people",
				"SELECT name FROM people WHERE city = 'bern'",
				"SELECT name, amount FROM people WHERE name >= 'c' AND name < 'q'",
				"SELECT amount FROM people WHERE amount >= '0020' AND amount <= '0080'",
			}
			for _, q := range multiset {
				gotRes, wantRes := mustExec(t, sharded, q), mustExec(t, single, q)
				if shards == 1 {
					// One shard must be bit-identical, row order included.
					if got, want := renderResult(gotRes), renderResult(wantRes); got != want {
						t.Errorf("%s (1 shard, exact):\n sharded: %s\n single:  %s", q, got, want)
					}
				} else if got, want := renderSorted(gotRes), renderSorted(wantRes); got != want {
					t.Errorf("%s:\n sharded: %s\n single:  %s", q, got, want)
				}
			}

			// LIMIT without ORDER BY picks implementation-defined rows; the
			// contract is the count and that every row exists in the table.
			limited := mustExec(t, sharded, "SELECT name FROM people LIMIT 3")
			if len(limited.Rows) != 3 || limited.Count != 3 {
				t.Errorf("LIMIT 3 returned %d rows (count %d)", len(limited.Rows), limited.Count)
			}
			names := make(map[string]bool, len(shardPeople))
			for _, p := range shardPeople {
				names[p[0]] = true
			}
			for _, r := range limited.Rows {
				if !names[r[0]] {
					t.Errorf("LIMIT 3 returned unknown row %q", r[0])
				}
			}

			// The streaming cursor drives the shard-chained stream path.
			rows, err := sharded.Query(context.Background(), "SELECT name FROM people WHERE city >= 'l'")
			if err != nil {
				t.Fatal(err)
			}
			streamed, err := rows.All()
			if err != nil {
				t.Fatal(err)
			}
			wantStreamed := mustExec(t, single, "SELECT name FROM people WHERE city >= 'l'")
			if got, want := renderSorted(&encdbdb.Result{Rows: streamed}), renderSorted(&encdbdb.Result{Rows: wantStreamed.Rows}); got != want {
				t.Errorf("streamed scan:\n sharded: %s\n single:  %s", got, want)
			}

			// Mutations broadcast: affected counts and the surviving rows
			// must match the twin.
			for _, q := range []string{
				"UPDATE people SET city = 'zurich' WHERE name >= 'a' AND name <= 'f'",
				"DELETE FROM people WHERE city = 'oslo'",
			} {
				got, want := mustExec(t, sharded, q), mustExec(t, single, q)
				if got.Affected != want.Affected {
					t.Errorf("%s: affected %d, single-node %d", q, got.Affected, want.Affected)
				}
			}
			after := "SELECT name, city, amount FROM people ORDER BY name"
			if got, want := renderResult(mustExec(t, sharded, after)), renderResult(mustExec(t, single, after)); got != want {
				t.Errorf("post-mutation %s:\n sharded: %s\n single:  %s", after, got, want)
			}
		})
	}
}

// killableExecutor wraps a shard backend so a test can sever it mid-flight:
// once dead, reads and writes fail like a refused connection.
type killableExecutor struct {
	encdbdb.Executor
	dead atomic.Bool
}

func (k *killableExecutor) refuse() error {
	if k.dead.Load() {
		return errors.New("dial tcp: connection refused")
	}
	return nil
}

func (k *killableExecutor) Select(ctx context.Context, q engine.Query) (*engine.Result, error) {
	if err := k.refuse(); err != nil {
		return nil, err
	}
	return k.Executor.Select(ctx, q)
}

func (k *killableExecutor) Insert(ctx context.Context, table string, row engine.Row) error {
	if err := k.refuse(); err != nil {
		return err
	}
	return k.Executor.Insert(ctx, table, row)
}

// TestShardKillPartialFailure proves the fleet degrades the way
// docs/sharding.md promises: a dead shard turns scatter queries into typed
// *ShardError failures naming the shard — ErrShardDown once its health flips
// — while operations routed entirely to healthy shards keep succeeding, and
// the fleet heals when the shard returns.
func TestShardKillPartialFailure(t *testing.T) {
	ctx := context.Background()
	owner, err := encdbdb.NewDataOwner()
	if err != nil {
		t.Fatal(err)
	}
	var backends []encdbdb.Executor
	var kill *killableExecutor
	for i := 0; i < 2; i++ {
		db, err := encdbdb.Open()
		if err != nil {
			t.Fatal(err)
		}
		if err := owner.Provision(db); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			kill = &killableExecutor{Executor: db.Executor()}
			backends = append(backends, kill)
		} else {
			backends = append(backends, db.Executor())
		}
	}
	// A range map with a distant split point routes every insert in this test
	// to shard0, so writes are provably unaffected by shard1's death.
	m := encdbdb.NewRangeShardMap([]uint64{1 << 20}, "s0:0", "s1:0")
	exec, err := encdbdb.NewShardedExecutor(m, backends)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := owner.RemoteSession(exec)
	if err != nil {
		t.Fatal(err)
	}
	seedPeople(t, sess)

	kill.dead.Store(true)

	// Scatter queries fail typed: the error names the dead shard.
	_, err = sess.ExecContext(ctx, "SELECT name FROM people ORDER BY name")
	var se *encdbdb.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("scatter with dead shard: err = %v, want *ShardError", err)
	}
	if se.Shard != "shard1" {
		t.Errorf("failing shard = %q, want shard1", se.Shard)
	}
	// The shard is now marked down; repeat failures say so explicitly.
	_, err = sess.ExecContext(ctx, "SELECT MIN(amount) FROM people")
	if !errors.Is(err, encdbdb.ErrShardDown) {
		t.Errorf("second scatter: err = %v, want ErrShardDown", err)
	}
	if !errors.As(err, &se) || se.Shard != "shard1" {
		t.Errorf("second scatter: err = %v, want *ShardError for shard1", err)
	}

	// The plain streaming scan delivers shard0's rows before surfacing
	// shard1's failure through the cursor, typed.
	rows, err := sess.Query(ctx, "SELECT name FROM people")
	if err != nil {
		t.Fatalf("Query with dead shard: %v", err)
	}
	delivered := 0
	for rows.Next() {
		delivered++
	}
	streamErr := rows.Err()
	rows.Close()
	if delivered != len(shardPeople) {
		t.Errorf("streamed %d rows from the healthy shard, want %d", delivered, len(shardPeople))
	}
	if !errors.As(streamErr, &se) || se.Shard != "shard1" {
		t.Errorf("stream error = %v, want *ShardError for shard1", streamErr)
	}

	// Writes routed to the healthy shard keep working.
	if _, err := sess.ExecContext(ctx, "INSERT INTO people VALUES (?, ?, ?)", "zoe", "bern", "0011"); err != nil {
		t.Errorf("insert to healthy shard: %v", err)
	}

	top := exec.Topology()
	if top[0].Name != "shard0" || !top[0].Healthy {
		t.Errorf("shard0 status = %+v, want healthy", top[0])
	}
	if top[1].Name != "shard1" || top[1].Healthy {
		t.Errorf("shard1 status = %+v, want down", top[1])
	}

	// Revive the shard: the next scatter succeeds and health recovers.
	kill.dead.Store(false)
	if _, err := sess.ExecContext(ctx, "SELECT name FROM people ORDER BY name"); err != nil {
		t.Errorf("scatter after revival: %v", err)
	}
	if top := exec.Topology(); !top[1].Healthy {
		t.Errorf("shard1 still down after revival: %+v", top[1])
	}
}
