package main

import (
	"reflect"
	"testing"

	"github.com/encdbdb/encdbdb/internal/sqlparse"
)

// The shell's statement splitting moved into sqlparse.SplitScript so syntax
// errors can carry absolute offsets; this pins the shell-visible behaviour
// (quote handling, empty-fragment dropping) through that API.
func TestSplitStatements(t *testing.T) {
	cases := []struct {
		line string
		want []string
	}{
		{"SELECT * FROM t", []string{"SELECT * FROM t"}},
		{"a; b ;c", []string{"a", "b", "c"}},
		{"; ;", nil},
		{"INSERT INTO t VALUES ('a;b')", []string{"INSERT INTO t VALUES ('a;b')"}},
		{"INSERT INTO t VALUES ('a;b'); SELECT c FROM t",
			[]string{"INSERT INTO t VALUES ('a;b')", "SELECT c FROM t"}},
		// '' escapes a quote inside a literal; the quote state still
		// toggles correctly around it.
		{"INSERT INTO t VALUES ('it''s;fine'); x",
			[]string{"INSERT INTO t VALUES ('it''s;fine')", "x"}},
	}
	for _, tc := range cases {
		var got []string
		for _, frag := range sqlparse.SplitScript(tc.line) {
			got = append(got, frag.SQL)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("SplitScript(%q) = %q, want %q", tc.line, got, tc.want)
		}
	}
}
