// Command encdbdb-proxy is the trusted proxy of paper Fig. 2: it connects to
// a remote EncDBDB provider, optionally provisions the provider's enclave
// with the master key (remote attestation against the expected enclave
// identity), and then serves an interactive SQL shell in which all query
// constants are encrypted before leaving this process.
//
// Usage:
//
//	encdbdb-proxy -addr 127.0.0.1:7687 -provision            # fresh key
//	encdbdb-proxy -addr 127.0.0.1:7687 -key <32 hex chars>   # existing key
package main

import (
	"bufio"
	"encoding/hex"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/encdbdb/encdbdb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "encdbdb-proxy:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:7687", "provider address")
		keyHex    = flag.String("key", "", "master key as 32 hex chars (default: generate fresh)")
		provision = flag.Bool("provision", false, "attest the provider's enclave and deploy the master key")
		identity  = flag.String("identity", encdbdb.DefaultEnclaveIdentity, "expected enclave code identity")
	)
	flag.Parse()

	var (
		owner *encdbdb.DataOwner
		err   error
	)
	if *keyHex == "" {
		owner, err = encdbdb.NewDataOwner()
	} else {
		var key []byte
		key, err = hex.DecodeString(*keyHex)
		if err == nil {
			owner, err = encdbdb.NewDataOwnerWithKey(key)
		}
	}
	if err != nil {
		return err
	}

	client, err := encdbdb.Dial(*addr)
	if err != nil {
		return err
	}
	defer client.Close()

	if *provision {
		if err := owner.ProvisionClient(client, encdbdb.Measurement(*identity)); err != nil {
			return fmt.Errorf("provision: %w", err)
		}
		fmt.Println("enclave attested and provisioned")
	}
	sess, err := owner.RemoteSession(client)
	if err != nil {
		return err
	}
	fmt.Printf("connected to %s — master key %s\n", *addr, hex.EncodeToString(owner.MasterKey()))
	fmt.Println(`type SQL statements or \quit`)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("proxy> ")
		if !scanner.Scan() {
			fmt.Println()
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == `\quit` || line == `\q` {
			return nil
		}
		res, err := sess.Exec(line)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		switch res.Kind {
		case encdbdb.KindOK:
			fmt.Println("ok")
		case encdbdb.KindCount:
			fmt.Printf("count: %d\n", res.Count)
		case encdbdb.KindAffected:
			fmt.Printf("affected: %d\n", res.Affected)
		default:
			if len(res.Columns) > 0 {
				fmt.Println(strings.Join(res.Columns, " | "))
			}
			for _, row := range res.Rows {
				fmt.Println(strings.Join(row, " | "))
			}
			fmt.Printf("(%d rows)\n", len(res.Rows))
		}
	}
}
