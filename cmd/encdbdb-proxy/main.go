// Command encdbdb-proxy is the trusted proxy of paper Fig. 2: it connects to
// a remote EncDBDB provider, optionally provisions the provider's enclave
// with the master key (remote attestation against the expected enclave
// identity), and then serves an interactive SQL shell in which all query
// constants are encrypted before leaving this process.
//
// With -shards the proxy fronts a fleet of providers instead of one:
// INSERTs route to the owning shard, SELECTs scatter-gather across all of
// them, and each shard's enclave is attested and provisioned separately
// (same master key — sharding is pure trusted-side routing). The shard-map
// catalog persists via -shard-map so a restarted proxy routes identically.
//
// Usage:
//
//	encdbdb-proxy -addr 127.0.0.1:7687 -provision            # fresh key
//	encdbdb-proxy -addr 127.0.0.1:7687 -key <32 hex chars>   # existing key
//	encdbdb-proxy -shards h1:7687,h2:7687,h3:7687 -shard-map ./data -provision
//
// Inside the shell, `topology` (or \topology) prints the shard map and
// per-shard health.
package main

import (
	"bufio"
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"github.com/encdbdb/encdbdb"
	"github.com/encdbdb/encdbdb/internal/shell"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "encdbdb-proxy:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:7687", "provider address (single-provider mode)")
		shards    = flag.String("shards", "", "comma-separated provider addresses; fronts the fleet as one sharded database")
		shardMap  = flag.String("shard-map", "", "shard-map catalog file or data directory: loaded when present, written when -shards builds a fresh map")
		keyHex    = flag.String("key", "", "master key as 32 hex chars (default: generate fresh)")
		provision = flag.Bool("provision", false, "attest the provider enclaves and deploy the master key")
		identity  = flag.String("identity", encdbdb.DefaultEnclaveIdentity, "expected enclave code identity")
		conns     = flag.Int("conns", 1, "connections per provider (>1 uses a pooled client)")
		proto     = flag.Int("proto", 0, "highest wire protocol version to negotiate: 3 binary codec, 2 gob stream, 1 lock-step (0 = newest)")
		metrics   = flag.String("metrics-addr", "", "serve the proxy's encdbdb_shard_* metrics on this address at /metrics (sharded mode; empty = off)")
	)
	flag.Parse()

	var (
		owner *encdbdb.DataOwner
		err   error
	)
	if *keyHex == "" {
		owner, err = encdbdb.NewDataOwner()
	} else {
		var key []byte
		key, err = hex.DecodeString(*keyHex)
		if err == nil {
			owner, err = encdbdb.NewDataOwnerWithKey(key)
		}
	}
	if err != nil {
		return err
	}

	var dialOpts []encdbdb.ClientOption
	if *proto > 0 {
		dialOpts = append(dialOpts, encdbdb.WithMaxProto(*proto))
	}
	dial := func(addr string) (encdbdb.RemoteClient, func(), error) {
		if *conns > 1 {
			pool, err := encdbdb.DialPool(addr, *conns, dialOpts...)
			if err != nil {
				return nil, nil, err
			}
			return pool, func() { pool.Close() }, nil
		}
		c, err := encdbdb.Dial(addr, dialOpts...)
		if err != nil {
			return nil, nil, err
		}
		return c, func() { c.Close() }, nil
	}

	m, err := resolveShardMap(*shards, *shardMap)
	if err != nil {
		return err
	}

	var (
		sess     *encdbdb.Session
		sharded  *encdbdb.ShardedExecutor
		peerDesc string
	)
	if m != nil {
		// Sharded mode: one client per shard, each enclave attested and
		// provisioned on its own (paper Fig. 5 per provider), then the fleet
		// presented to the session as a single executor.
		backends := make([]encdbdb.Executor, 0, len(m.Shards))
		for _, sd := range m.Shards {
			client, closeFn, err := dial(sd.Addr)
			if err != nil {
				return fmt.Errorf("shard %s (%s): %w", sd.Name, sd.Addr, err)
			}
			defer closeFn()
			if *provision {
				if err := owner.ProvisionClient(client, encdbdb.Measurement(*identity)); err != nil {
					return fmt.Errorf("provision shard %s (%s): %w", sd.Name, sd.Addr, err)
				}
				fmt.Printf("shard %s (%s): enclave attested and provisioned\n", sd.Name, sd.Addr)
			}
			backends = append(backends, client)
		}
		sharded, err = encdbdb.NewShardedExecutor(m, backends,
			encdbdb.ShardedOptions{EnableMetrics: *metrics != ""})
		if err != nil {
			return err
		}
		sess, err = owner.RemoteSession(sharded)
		if err != nil {
			return err
		}
		peerDesc = fmt.Sprintf("%d shards (%s, map v%d)", len(m.Shards), m.Strategy, m.Version)
		if err := serveMetrics(*metrics, sharded.MetricsHandler()); err != nil {
			return err
		}
	} else {
		client, closeFn, err := dial(*addr)
		if err != nil {
			return err
		}
		defer closeFn()
		if *provision {
			if err := owner.ProvisionClient(client, encdbdb.Measurement(*identity)); err != nil {
				return fmt.Errorf("provision: %w", err)
			}
			fmt.Println("enclave attested and provisioned")
		}
		sess, err = owner.RemoteSession(client)
		if err != nil {
			return err
		}
		peerDesc = *addr
	}
	fmt.Printf("connected to %s — master key %s\n", peerDesc, hex.EncodeToString(owner.MasterKey()))
	fmt.Println(`type SQL statements, topology, or \quit`)

	// Ctrl-C cancels the statements in flight — the provider is told to
	// abandon the scan over the wire — instead of killing the shell.
	interrupt := shell.NewInterrupter(os.Stdout)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("proxy> ")
		if !scanner.Scan() {
			fmt.Println()
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == `\quit` || line == `\q` {
			return nil
		}
		if line == "topology" || line == `\topology` {
			printTopology(os.Stdout, m, sharded, *addr)
			continue
		}
		// Semicolon-separated statements on one line run as a script:
		// consecutive INSERTs into one table cost one round trip, and a
		// syntax error names the failing statement and its offset.
		ctx := interrupt.Begin()
		results, err := sess.ExecScript(ctx, line)
		interrupt.End()
		for _, res := range results {
			shell.PrintResult(os.Stdout, res)
		}
		switch {
		case errors.Is(err, context.Canceled):
			fmt.Println("query cancelled")
		case err != nil:
			fmt.Println("error:", err)
		}
	}
}

// resolveShardMap turns the -shards / -shard-map flags into a catalog (nil =
// single-provider mode). A persisted catalog wins so restarts route
// identically; if -shards disagrees with it, the operator is told instead of
// silently re-partitioning data that already landed.
func resolveShardMap(shards, mapPath string) (*encdbdb.ShardMap, error) {
	var loaded *encdbdb.ShardMap
	if mapPath != "" {
		m, err := encdbdb.LoadShardMap(mapPath)
		if err == nil {
			loaded = m
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
	}
	if shards == "" {
		return loaded, nil
	}
	addrs := strings.Split(shards, ",")
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	if loaded != nil {
		if len(loaded.Shards) != len(addrs) {
			return nil, fmt.Errorf("shard map %s has %d shards but -shards names %d; delete the map to re-partition",
				mapPath, len(loaded.Shards), len(addrs))
		}
		// Addresses may legitimately move (new hosts, same shard count and
		// order); the catalog follows the flag.
		for i := range addrs {
			loaded.Shards[i].Addr = addrs[i]
		}
		return loaded, nil
	}
	m := encdbdb.NewShardMap(addrs...)
	if mapPath != "" {
		if err := m.Save(mapPath); err != nil {
			return nil, fmt.Errorf("save shard map: %w", err)
		}
	}
	return m, nil
}

// printTopology renders the shard map and per-shard health, or a single-node
// notice when the proxy fronts one provider.
func printTopology(w *os.File, m *encdbdb.ShardMap, sharded *encdbdb.ShardedExecutor, addr string) {
	if sharded == nil {
		fmt.Fprintf(w, "single provider %s (not sharded; start with -shards to scatter-gather)\n", addr)
		return
	}
	fmt.Fprintf(w, "shard map v%d, strategy %s, %d shards\n", m.Version, m.Strategy, len(m.Shards))
	fmt.Fprintf(w, "%-10s %-22s %-9s %9s %7s  %s\n", "SHARD", "ADDR", "HEALTH", "REQUESTS", "ERRORS", "LAST ERROR")
	for _, st := range sharded.Topology() {
		health := "ok"
		if !st.Healthy {
			health = "down"
		}
		last := st.LastError
		if len(last) > 60 {
			last = last[:57] + "..."
		}
		fmt.Fprintf(w, "%-10s %-22s %-9s %9d %7d  %s\n", st.Name, st.Addr, health, st.Requests, st.Errors, last)
	}
}

// serveMetrics exposes the sharded executor's registry at /metrics, like the
// provider's -metrics-addr.
func serveMetrics(addr string, h http.Handler) error {
	if addr == "" || h == nil {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", h)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		_ = srv.Serve(ln)
	}()
	fmt.Printf("metrics on http://%s/metrics\n", ln.Addr())
	return nil
}
