// Command encdbdb-proxy is the trusted proxy of paper Fig. 2: it connects to
// a remote EncDBDB provider, optionally provisions the provider's enclave
// with the master key (remote attestation against the expected enclave
// identity), and then serves an interactive SQL shell in which all query
// constants are encrypted before leaving this process.
//
// Usage:
//
//	encdbdb-proxy -addr 127.0.0.1:7687 -provision            # fresh key
//	encdbdb-proxy -addr 127.0.0.1:7687 -key <32 hex chars>   # existing key
package main

import (
	"bufio"
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/encdbdb/encdbdb"
	"github.com/encdbdb/encdbdb/internal/shell"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "encdbdb-proxy:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:7687", "provider address")
		keyHex    = flag.String("key", "", "master key as 32 hex chars (default: generate fresh)")
		provision = flag.Bool("provision", false, "attest the provider's enclave and deploy the master key")
		identity  = flag.String("identity", encdbdb.DefaultEnclaveIdentity, "expected enclave code identity")
		conns     = flag.Int("conns", 1, "connections to the provider (>1 uses a pooled client)")
		proto     = flag.Int("proto", 0, "highest wire protocol version to negotiate: 3 binary codec, 2 gob stream, 1 lock-step (0 = newest)")
	)
	flag.Parse()

	var (
		owner *encdbdb.DataOwner
		err   error
	)
	if *keyHex == "" {
		owner, err = encdbdb.NewDataOwner()
	} else {
		var key []byte
		key, err = hex.DecodeString(*keyHex)
		if err == nil {
			owner, err = encdbdb.NewDataOwnerWithKey(key)
		}
	}
	if err != nil {
		return err
	}

	var dialOpts []encdbdb.ClientOption
	if *proto > 0 {
		dialOpts = append(dialOpts, encdbdb.WithMaxProto(*proto))
	}
	var client encdbdb.RemoteClient
	if *conns > 1 {
		pool, err := encdbdb.DialPool(*addr, *conns, dialOpts...)
		if err != nil {
			return err
		}
		defer pool.Close()
		client = pool
	} else {
		c, err := encdbdb.Dial(*addr, dialOpts...)
		if err != nil {
			return err
		}
		defer c.Close()
		client = c
	}

	if *provision {
		if err := owner.ProvisionClient(client, encdbdb.Measurement(*identity)); err != nil {
			return fmt.Errorf("provision: %w", err)
		}
		fmt.Println("enclave attested and provisioned")
	}
	sess, err := owner.RemoteSession(client)
	if err != nil {
		return err
	}
	fmt.Printf("connected to %s — master key %s\n", *addr, hex.EncodeToString(owner.MasterKey()))
	fmt.Println(`type SQL statements or \quit`)

	// Ctrl-C cancels the statements in flight — the provider is told to
	// abandon the scan over the wire — instead of killing the shell.
	interrupt := shell.NewInterrupter(os.Stdout)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("proxy> ")
		if !scanner.Scan() {
			fmt.Println()
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == `\quit` || line == `\q` {
			return nil
		}
		// Semicolon-separated statements on one line run as a script:
		// consecutive INSERTs into one table cost one round trip, and a
		// syntax error names the failing statement and its offset.
		ctx := interrupt.Begin()
		results, err := sess.ExecScript(ctx, line)
		interrupt.End()
		for _, res := range results {
			shell.PrintResult(os.Stdout, res)
		}
		switch {
		case errors.Is(err, context.Canceled):
			fmt.Println("query cancelled")
		case err != nil:
			fmt.Println("error:", err)
		}
	}
}
