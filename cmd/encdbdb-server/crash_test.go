package main

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/wire"
)

// The kill -9 test needs a real server process — in-process fault injection
// cannot model a dead page cache or a half-written socket. Rather than
// building the binary inside the test, the test binary re-execs itself:
// with ENCDBDB_CRASH_HELPER set, TestMain runs the server's main() and the
// command-line arguments are ordinary server flags.
func TestMain(m *testing.M) {
	if os.Getenv("ENCDBDB_CRASH_HELPER") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

var listenRE = regexp.MustCompile(`listening on ([0-9.]+:[0-9]+)`)

// startServer spawns a helper-process server on an OS-assigned port with dir
// as its durability directory, and returns once the listen address has been
// scraped from the server's log output.
func startServer(t *testing.T, dir string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-addr", "127.0.0.1:0", "-data-dir", dir)
	cmd.Env = append(os.Environ(), "ENCDBDB_CRASH_HELPER=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		// Keep draining after the address line so the pipe never fills, and
		// echo everything into the test log — a race-detector report from the
		// helper process is invisible otherwise.
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			t.Logf("server: %s", line)
			if m := listenRE.FindStringSubmatch(line); m != nil {
				select {
				case addrCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill() //nolint:errcheck // best-effort reap before failing
		cmd.Wait()         //nolint:errcheck
		t.Fatal("server never reported a listen address")
		return nil, ""
	}
}

func crashSchema() engine.Schema {
	return engine.Schema{Table: "t", Columns: []engine.ColumnDef{
		{Name: "k", Kind: dict.ED9, MaxLen: 16, Plain: true},
		{Name: "v", Kind: dict.ED9, MaxLen: 16, Plain: true},
	}}
}

func rowKV(i int) (string, string) {
	return fmt.Sprintf("k%04d", i), fmt.Sprintf("v%04d", i)
}

// selectAll returns table t's rows as sorted "k=v" strings via x's Select.
func selectAll(t *testing.T, x interface {
	Select(context.Context, engine.Query) (*engine.Result, error)
}) []string {
	t.Helper()
	res, err := x.Select(context.Background(), engine.Query{Table: "t", Project: []string{"k", "v"}})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	rows := make([]string, len(res.RecordIDs))
	for i := range res.RecordIDs {
		rows[i] = fmt.Sprintf("%s=%s", res.Columns[0].Cells[i], res.Columns[1].Cells[i])
	}
	sort.Strings(rows)
	return rows
}

// TestKillNineRecovery is the issue's headline scenario end to end: load a
// real server process over TCP, SIGKILL it mid-insert-stream, restart it on
// the same data directory, and require that every acknowledged write
// survived, that the store matches a never-crashed in-process twin fed the
// same prefix, and that the recovered server keeps accepting writes.
func TestKillNineRecovery(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("requires SIGKILL")
	}
	dir := t.TempDir()
	cmd, addr := startServer(t, dir)
	reaped := false
	defer func() {
		if !reaped {
			cmd.Process.Kill() //nolint:errcheck // already dead in the happy path
			cmd.Wait()         //nolint:errcheck
		}
	}()

	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable(crashSchema()); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}

	// Stream inserts; fire SIGKILL after a prefix has been acknowledged so
	// later inserts race the process death in flight. Acked counts only
	// inserts whose response arrived — exactly the writes recovery owes us.
	ctx := context.Background()
	const killAfter = 64
	acked, sent := 0, 0
	for i := 0; i < 5000; i++ {
		if i == killAfter {
			if err := cmd.Process.Kill(); err != nil {
				t.Fatalf("kill -9: %v", err)
			}
		}
		sent = i + 1
		k, v := rowKV(i)
		if err := c.Insert(ctx, "t", engine.Row{"k": []byte(k), "v": []byte(v)}); err != nil {
			break
		}
		acked = i + 1
	}
	cmd.Wait() //nolint:errcheck // killed; exit status is expected to be non-zero
	reaped = true
	if sent == 5000 && acked == sent {
		t.Fatal("server survived kill -9; test drove no crash")
	}
	if acked < killAfter {
		t.Fatalf("only %d inserts acked before the kill took effect, want >= %d", acked, killAfter)
	}
	t.Logf("killed after %d acked / %d sent inserts", acked, sent)

	// Restart on the same directory: recovery must yield exactly a prefix of
	// the insert sequence, at least as long as the acked prefix (an in-flight
	// unacked insert may legitimately be present or absent — atomically).
	cmd2, addr2 := startServer(t, dir)
	interrupted := false
	defer func() {
		if !interrupted {
			cmd2.Process.Kill() //nolint:errcheck // cleanup of a failed run
			cmd2.Wait()         //nolint:errcheck
		}
	}()
	c2, err := wire.Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got := selectAll(t, c2)
	recovered := len(got)
	if recovered < acked {
		t.Fatalf("recovered %d rows, lost acknowledged writes (acked %d)", recovered, acked)
	}
	if recovered > sent {
		t.Fatalf("recovered %d rows but only %d were ever sent", recovered, sent)
	}

	// Never-crashed twin: an in-process engine fed the same recovered prefix
	// must answer scans and range probes identically.
	twin := engine.New(nil)
	if err := twin.CreateTable(crashSchema()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < recovered; i++ {
		k, v := rowKV(i)
		if err := twin.Insert(ctx, "t", engine.Row{"k": []byte(k), "v": []byte(v)}); err != nil {
			t.Fatal(err)
		}
	}
	want := selectAll(t, twin)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered state diverged from never-crashed twin:\n got %v\nwant %v", got, want)
	}
	probe := engine.Query{Table: "t", Project: []string{"v"}, Filters: []engine.Filter{
		engine.SingleRange("k", enclave.EncRange{
			Start: []byte("k0010"), End: []byte("k0020"), StartIncl: true, EndIncl: false,
		}),
	}}
	gotProbe, err := c2.Select(ctx, probe)
	if err != nil {
		t.Fatalf("probe on recovered server: %v", err)
	}
	wantProbe, err := twin.Select(ctx, probe)
	if err != nil {
		t.Fatalf("probe on twin: %v", err)
	}
	if len(gotProbe.RecordIDs) != len(wantProbe.RecordIDs) || len(gotProbe.RecordIDs) != 10 {
		t.Fatalf("range probe: recovered %d rows, twin %d, want 10",
			len(gotProbe.RecordIDs), len(wantProbe.RecordIDs))
	}

	// The recovered server must remain a working store, not a read-only relic.
	if err := c2.Insert(ctx, "t", engine.Row{"k": []byte("post"), "v": []byte("crash")}); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
	if n, err := c2.Rows("t"); err != nil || n != recovered+1 {
		t.Fatalf("Rows after post-recovery insert = %d, %v; want %d", n, err, recovered+1)
	}

	// Graceful shutdown (SIGINT) must drain and exit cleanly — the flushed
	// tail means a third start would need no replay.
	if err := cmd2.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	interrupted = true
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("graceful shutdown exit: %v", err)
	}
}
