// Command encdbdb-server runs the untrusted DBaaS provider of paper Fig. 2:
// the engine plus the enclave, exposed over the wire protocol. The enclave
// starts unprovisioned; a data owner attests and provisions it remotely
// (see cmd/encdbdb-proxy).
//
// Usage:
//
//	encdbdb-server -addr :7687 [-data-dir /var/lib/encdbdb] [-sync always|interval|none]
//	               [-metrics-addr 127.0.0.1:9187] [table.encdb ...]
//
// See docs/operations.md for production flag guidance.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/encdbdb/encdbdb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "encdbdb-server:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:7687", "listen address")
	connWorkers := flag.Int("conn-workers", 0, "concurrent requests per multiplexed connection (0 = default)")
	queueDepth := flag.Int("queue-depth", 0, "outstanding requests per connection before shedding with a busy error (0 = conn-workers x 64)")
	reqTimeout := flag.Duration("request-timeout", 0, "per-request deadline, measured from decode (0 = none)")
	connRate := flag.Float64("conn-rate", 0, "per-connection request rate limit in requests/second, shed beyond it with a rate-limit error (0 = unlimited)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics on this address at /metrics (empty = metrics off)")
	dataDir := flag.String("data-dir", "", "durability directory for the write-ahead log and checkpoint images; recovered on startup (empty = in-memory only)")
	syncPolicy := flag.String("sync", "always", "WAL fsync policy with -data-dir: always, interval, or none")
	syncEvery := flag.Duration("sync-interval", 0, "fsync cadence with -sync interval (0 = 10ms)")
	maxProto := flag.Int("max-proto", 0, "highest wire protocol version to negotiate: 3 binary codec, 2 gob stream, 1 lock-step (0 = newest)")
	flag.Parse()

	db, err := encdbdb.Open(encdbdb.Options{
		ConnWorkers:    *connWorkers,
		QueueDepth:     *queueDepth,
		RequestTimeout: *reqTimeout,
		ConnRate:       *connRate,
		MaxProto:       *maxProto,
		EnableMetrics:  *metricsAddr != "",
		DataDir:        *dataDir,
		SyncPolicy:     *syncPolicy,
		SyncEvery:      *syncEvery,
	})
	if err != nil {
		return err
	}
	if *dataDir != "" {
		st := db.RecoveryStats()
		log.Printf("recovered %s: %d tables restored, %d records replayed in %s (truncated tail: %v)",
			*dataDir, st.RestoredTables, st.ReplayedRecords, st.ReplayDuration.Round(time.Millisecond), st.TruncatedTail)
	}
	for _, path := range flag.Args() {
		if err := db.LoadTable(path); err != nil {
			return fmt.Errorf("load %s: %w", path, err)
		}
		log.Printf("loaded %s", path)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("EncDBDB provider listening on %s (enclave measurement for identity %q awaits provisioning)",
		ln.Addr(), encdbdb.DefaultEnclaveIdentity)

	var metricsSrv *http.Server
	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", db.MetricsHandler())
		metricsSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			if err := metricsSrv.Serve(mln); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics", mln.Addr())
	}

	done := make(chan error, 1)
	go func() { done <- db.Serve(ln, log.Printf) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case err := <-done:
		return err
	case <-sig:
		log.Printf("shutting down")
		// Close drains the server — accepted requests finish and their
		// responses are delivered before connections close (see
		// docs/operations.md) — then flushes and fsyncs the WAL tail so the
		// next start needs no replay.
		if err := db.Close(); err != nil {
			return err
		}
		err := <-done
		if metricsSrv != nil {
			metricsSrv.Close() //nolint:errcheck // scrape endpoint; nothing to drain
		}
		return err
	}
}
