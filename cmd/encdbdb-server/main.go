// Command encdbdb-server runs the untrusted DBaaS provider of paper Fig. 2:
// the engine plus the enclave, exposed over the wire protocol. The enclave
// starts unprovisioned; a data owner attests and provisions it remotely
// (see cmd/encdbdb-proxy).
//
// Usage:
//
//	encdbdb-server -addr :7687 [-load table.encdb ...]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"

	"github.com/encdbdb/encdbdb"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "encdbdb-server:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:7687", "listen address")
	connWorkers := flag.Int("conn-workers", 0, "concurrent requests per multiplexed connection (0 = default)")
	flag.Parse()

	db, err := encdbdb.Open(encdbdb.Options{ConnWorkers: *connWorkers})
	if err != nil {
		return err
	}
	for _, path := range flag.Args() {
		if err := db.LoadTable(path); err != nil {
			return fmt.Errorf("load %s: %w", path, err)
		}
		log.Printf("loaded %s", path)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("EncDBDB provider listening on %s (enclave measurement for identity %q awaits provisioning)",
		ln.Addr(), encdbdb.DefaultEnclaveIdentity)

	done := make(chan error, 1)
	go func() { done <- db.Serve(ln, log.Printf) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case err := <-done:
		return err
	case <-sig:
		log.Printf("shutting down")
		if err := db.Shutdown(); err != nil {
			return err
		}
		return <-done
	}
}
