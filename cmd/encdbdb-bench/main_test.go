package main

import "testing"

func TestParseInts(t *testing.T) {
	tests := []struct {
		give    string
		want    []int
		wantErr bool
	}{
		{give: "1", want: []int{1}},
		{give: "10,20,30", want: []int{10, 20, 30}},
		{give: " 5 , 6 ", want: []int{5, 6}},
		{give: "1,,2", want: []int{1, 2}},
		{give: "", wantErr: true},
		{give: "abc", wantErr: true},
		{give: "0", wantErr: true},
		{give: "-3", wantErr: true},
		{give: "1,x", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseInts(tt.give)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseInts(%q) succeeded with %v, want error", tt.give, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseInts(%q): %v", tt.give, err)
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("parseInts(%q) = %v, want %v", tt.give, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("parseInts(%q) = %v, want %v", tt.give, got, tt.want)
				break
			}
		}
	}
}
