// Command encdbdb-bench regenerates the paper's evaluation (§6): every
// table and figure has a corresponding experiment that prints paper-style
// rows, plus the ablations called out in DESIGN.md.
//
// Usage:
//
//	encdbdb-bench -exp all
//	encdbdb-bench -exp fig8a -rows 10000,100000,1000000 -queries 500 -rs 2,100
//	encdbdb-bench -exp table6 -rows 1000000
//
// Absolute numbers depend on the host; compare shapes against the paper per
// EXPERIMENTS.md. Paper scale is -rows up to 10900000 and -queries 500.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/encdbdb/encdbdb/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "encdbdb-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp     = flag.String("exp", "all", "experiment: table1 table3 table4 table6 fig6 fig7 fig8a fig8b fig8c claims concurrency compression scan merge prepared remote load shard ablation-av ablation-optimizer ablation-bsmax ablation-enclave all")
		rows    = flag.String("rows", "10000,30000", "comma-separated dataset size sweep")
		queries = flag.Int("queries", 50, "random range queries per measurement point (paper: 500)")
		rs      = flag.String("rs", "2,100", "comma-separated range sizes (paper: 2,100)")
		bsmax   = flag.Int("bsmax", 10, "frequency smoothing bucket bound for ED4-ED6 (paper: 10)")
		seed    = flag.Int64("seed", 1, "workload seed")
		workers = flag.Int("workers", 0, "attribute vector scan workers (0 = GOMAXPROCS)")
	)
	flag.Parse()

	cfg := bench.DefaultConfig(os.Stdout)
	cfg.Queries = *queries
	cfg.BSMax = *bsmax
	cfg.Seed = *seed
	cfg.Workers = *workers
	var err error
	if cfg.Rows, err = parseInts(*rows); err != nil {
		return fmt.Errorf("bad -rows: %w", err)
	}
	if cfg.RangeSizes, err = parseInts(*rs); err != nil {
		return fmt.Errorf("bad -rs: %w", err)
	}

	experiments := map[string]func(bench.Config) error{
		"table1":             bench.Table1,
		"table3":             bench.Table3,
		"table4":             bench.Table4,
		"table6":             bench.Table6,
		"fig6":               bench.Fig6,
		"fig7":               bench.Fig7,
		"fig8a":              func(c bench.Config) error { return bench.Fig8(c, bench.Fig8A) },
		"fig8b":              func(c bench.Config) error { return bench.Fig8(c, bench.Fig8B) },
		"fig8c":              func(c bench.Config) error { return bench.Fig8(c, bench.Fig8C) },
		"claims":             bench.Claims,
		"concurrency":        bench.Concurrency,
		"compression":        bench.Compression,
		"scan":               bench.Scan,
		"merge":              bench.Merge,
		"prepared":           bench.Prepared,
		"remote":             bench.Remote,
		"load":               bench.Load,
		"shard":              bench.Shard,
		"ablation-av":        bench.AblationAV,
		"ablation-optimizer": bench.AblationOptimizer,
		"ablation-bsmax":     bench.AblationBSMax,
		"ablation-enclave":   bench.AblationEnclave,
	}
	order := []string{
		"table1", "table3", "table4", "table6", "fig6", "fig7",
		"fig8a", "fig8b", "fig8c", "claims", "concurrency", "compression", "scan", "merge", "prepared", "remote", "load", "shard",
		"ablation-av", "ablation-optimizer", "ablation-bsmax", "ablation-enclave",
	}

	if *exp == "all" {
		for _, name := range order {
			fmt.Printf("==== %s ====\n", name)
			if err := experiments[name](cfg); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	f, ok := experiments[*exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q (want one of %s, all)", *exp, strings.Join(order, " "))
	}
	return f(cfg)
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("value %d must be positive", n)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}
