// Command encdbdb is an interactive SQL shell over an embedded EncDBDB
// instance: it launches the provider (engine + enclave), provisions it with
// a fresh or supplied master key, and executes SQL statements from stdin
// through the trusted proxy.
//
// Usage:
//
//	encdbdb [-key HEXKEY] [-load file.encdb ...]
//
// Example session:
//
//	encdbdb> CREATE TABLE t1 (fname ED5(30) BSMAX 10, city ED1(20))
//	encdbdb> INSERT INTO t1 VALUES ('Jessica', 'Waterloo')
//	encdbdb> SELECT fname FROM t1 WHERE fname >= 'A' AND fname < 'K'
//	encdbdb> \save t1 /tmp/t1.encdb
//	encdbdb> \stats
//	encdbdb> \quit
package main

import (
	"bufio"
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/encdbdb/encdbdb"
	"github.com/encdbdb/encdbdb/internal/shell"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "encdbdb:", err)
		os.Exit(1)
	}
}

func run() error {
	keyHex := flag.String("key", "", "master key as 32 hex chars (default: generate fresh)")
	flag.Parse()

	db, err := encdbdb.Open()
	if err != nil {
		return err
	}
	owner, err := makeOwner(*keyHex)
	if err != nil {
		return err
	}
	if err := owner.Provision(db); err != nil {
		return err
	}
	for _, path := range flag.Args() {
		if err := db.LoadTable(path); err != nil {
			return fmt.Errorf("load %s: %w", path, err)
		}
		fmt.Printf("loaded %s\n", path)
	}
	sess, err := owner.Session(db)
	if err != nil {
		return err
	}
	fmt.Printf("EncDBDB shell — master key %s\n", hex.EncodeToString(owner.MasterKey()))
	fmt.Println(`type SQL statements, \save <table> <path>, \stats, or \quit`)
	return repl(db, sess)
}

func makeOwner(keyHex string) (*encdbdb.DataOwner, error) {
	if keyHex == "" {
		return encdbdb.NewDataOwner()
	}
	key, err := hex.DecodeString(keyHex)
	if err != nil {
		return nil, fmt.Errorf("bad -key: %w", err)
	}
	return encdbdb.NewDataOwnerWithKey(key)
}

func repl(db *encdbdb.Database, sess *encdbdb.Session) error {
	// Ctrl-C cancels the statement in flight through its context instead of
	// killing the shell.
	interrupt := shell.NewInterrupter(os.Stdout)
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("encdbdb> ")
		if !scanner.Scan() {
			fmt.Println()
			return scanner.Err()
		}
		line := strings.TrimSpace(scanner.Text())
		switch {
		case line == "":
			continue
		case line == `\quit` || line == `\q`:
			return nil
		case line == `\stats`:
			st := db.EnclaveStats()
			fmt.Printf("ecalls=%d loads=%d bytes=%d decryptions=%d encryptions=%d\n",
				st.ECalls, st.Loads, st.BytesLoaded, st.Decryptions, st.Encryptions)
			continue
		case strings.HasPrefix(line, `\save `):
			parts := strings.Fields(line)
			if len(parts) != 3 {
				fmt.Println(`usage: \save <table> <path>`)
				continue
			}
			if err := db.SaveTable(parts[1], parts[2]); err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("saved %s to %s\n", parts[1], parts[2])
			continue
		}
		ctx := interrupt.Begin()
		results, err := sess.ExecScript(ctx, line)
		interrupt.End()
		for _, res := range results {
			shell.PrintResult(os.Stdout, res)
		}
		switch {
		case errors.Is(err, context.Canceled):
			fmt.Println("query cancelled")
		case err != nil:
			fmt.Println("error:", err)
		}
	}
}
