package encdbdb_test

import (
	"context"
	"net"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/encdbdb/encdbdb"
)

// TestPublicMetricsEndToEnd drives an instrumented provider over the wire
// and scrapes MetricsHandler: the exposition must carry the wire, engine,
// and enclave families with non-trivial values — the same check CI's e2e
// job runs against a live /metrics endpoint.
func TestPublicMetricsEndToEnd(t *testing.T) {
	db, err := encdbdb.Open(encdbdb.Options{EnableMetrics: true})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go db.Serve(ln, nil) //nolint:errcheck // shut down below
	defer db.Shutdown()

	owner, err := encdbdb.NewDataOwner()
	if err != nil {
		t.Fatal(err)
	}
	client, err := encdbdb.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := owner.ProvisionClient(client, encdbdb.Measurement(encdbdb.DefaultEnclaveIdentity)); err != nil {
		t.Fatalf("ProvisionClient: %v", err)
	}
	sess, err := owner.RemoteSession(client)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{
		"CREATE TABLE m (c ED1(8))",
		"INSERT INTO m VALUES ('v')",
		"SELECT c FROM m WHERE c = 'v'",
		"MERGE TABLE m",
	} {
		if _, err := sess.ExecContext(context.Background(), q); err != nil {
			t.Fatalf("%s: %v", q, err)
		}
	}

	h := db.MetricsHandler()
	if h == nil {
		t.Fatal("MetricsHandler = nil with EnableMetrics on")
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	got := rec.Body.String()
	for _, want := range []string{
		// Wire family: requests flowed over the connection.
		`encdbdb_wire_requests_total{op="select"}`,
		"encdbdb_wire_connections_total 1",
		// Engine families: the select pinned a version, the merge ran.
		"encdbdb_engine_selects_total",
		"encdbdb_engine_version_pins_total",
		"encdbdb_engine_merges_total 1",
		"encdbdb_engine_merge_seconds_count 1",
		"encdbdb_engine_merge_backlog_rows 0",
		// Enclave family: encrypted traffic entered the enclave.
		"encdbdb_enclave_ecalls",
		"encdbdb_enclave_decryptions",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	if strings.Contains(got, "encdbdb_enclave_ecalls 0\n") {
		t.Error("enclave ECALL gauge stayed zero after encrypted queries")
	}
}

// TestPublicMetricsDisabled pins the opt-in contract: without EnableMetrics
// there is no handler and no instrumentation.
func TestPublicMetricsDisabled(t *testing.T) {
	db, err := encdbdb.Open()
	if err != nil {
		t.Fatal(err)
	}
	if db.MetricsHandler() != nil {
		t.Error("MetricsHandler != nil with metrics off")
	}
}
