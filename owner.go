package encdbdb

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	mrand "math/rand"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/pae"
	"github.com/encdbdb/encdbdb/internal/proxy"
)

// DataOwner holds the master database key SK_DB and performs the trusted
// setup of paper Fig. 5: attesting the provider's enclave, provisioning the
// key, and preparing encrypted columns so plaintext never leaves the
// owner's realm.
type DataOwner struct {
	master Key
}

// NewDataOwner creates a data owner with a fresh master key.
func NewDataOwner() (*DataOwner, error) {
	k, err := GenerateKey()
	if err != nil {
		return nil, err
	}
	return &DataOwner{master: k}, nil
}

// NewDataOwnerWithKey creates a data owner from an existing master key,
// e.g. to reconnect after a restart.
func NewDataOwnerWithKey(k Key) (*DataOwner, error) {
	if len(k) != pae.KeySize {
		return nil, pae.ErrBadKeySize
	}
	return &DataOwner{master: append(Key(nil), k...)}, nil
}

// MasterKey returns the owner's master key (for out-of-band proxy
// deployment).
func (o *DataOwner) MasterKey() Key { return append(Key(nil), o.master...) }

// Provision runs the full remote attestation flow against an embedded
// database (paper Fig. 5 steps 1-2): request a quote for a fresh nonce,
// verify measurement and platform authenticity, establish the channel, and
// deploy SK_DB into the enclave.
func (o *DataOwner) Provision(d *Database) error {
	nonce := make([]byte, 16)
	if _, err := crand.Read(nonce); err != nil {
		return fmt.Errorf("encdbdb: nonce: %w", err)
	}
	quote := d.encl.Quote(nonce)
	expected := enclave.Measure(DefaultEnclaveIdentity)
	if err := d.platform.VerifyQuote(quote, expected, nonce); err != nil {
		return fmt.Errorf("encdbdb: attestation: %w", err)
	}
	sealed, err := enclave.SealKey(quote, o.master)
	if err != nil {
		return fmt.Errorf("encdbdb: seal key: %w", err)
	}
	if err := d.encl.Provision(sealed); err != nil {
		return fmt.Errorf("encdbdb: provision: %w", err)
	}
	return nil
}

// RemoteClient is the connection surface the data owner needs from a
// remote provider; *Client and *Pool both implement it.
type RemoteClient interface {
	Executor
	Quote(nonce []byte) (enclave.Quote, error)
	Provision(sk enclave.SealedKey) error
	ImportColumn(table, column string, data dict.SplitData) error
}

// ProvisionClient deploys SK_DB into a remote provider's enclave. The quote
// is requested over the wire; expectedMeasurement pins the enclave code
// identity the owner audited (use Measurement(DefaultEnclaveIdentity) for
// this repository's server binary). Platform authenticity verification
// requires Intel's (here: the platform's) verification service and is part
// of the embedded Provision; over the wire this simulation checks the
// measurement binding only.
func (o *DataOwner) ProvisionClient(c RemoteClient, expectedMeasurement [32]byte) error {
	nonce := make([]byte, 16)
	if _, err := crand.Read(nonce); err != nil {
		return fmt.Errorf("encdbdb: nonce: %w", err)
	}
	quote, err := c.Quote(nonce)
	if err != nil {
		return err
	}
	if [32]byte(quote.Measurement) != expectedMeasurement {
		return errors.New("encdbdb: remote enclave measurement mismatch")
	}
	if string(quote.Nonce) != string(nonce) {
		return errors.New("encdbdb: remote quote nonce mismatch")
	}
	sealed, err := enclave.SealKey(quote, o.master)
	if err != nil {
		return fmt.Errorf("encdbdb: seal key: %w", err)
	}
	return c.Provision(sealed)
}

// Measurement computes the expected enclave measurement for a code
// identity.
func Measurement(identity string) [32]byte {
	return [32]byte(enclave.Measure(identity))
}

// Session opens a trusted SQL gateway (the paper's proxy) against an
// embedded database.
func (o *DataOwner) Session(d *Database) (*Session, error) {
	p, err := proxy.New(o.master, d.db)
	if err != nil {
		return nil, err
	}
	return &Session{p: p}, nil
}

// RemoteSession opens a trusted SQL gateway against a remote provider
// (a *Client or *Pool).
func (o *DataOwner) RemoteSession(c Executor) (*Session, error) {
	p, err := proxy.New(o.master, c)
	if err != nil {
		return nil, err
	}
	return &Session{p: p}, nil
}

// DeployTable performs the owner-side bulk load (paper Fig. 5 steps 3-4):
// it creates the table, splits every column under its encrypted dictionary
// locally — plaintext never leaves the owner — and imports the encrypted
// splits into the provider. rows is row-major: rows[i][j] is column j of
// row i, in schema order.
func (o *DataOwner) DeployTable(d *Database, schema Schema, rows [][]string) error {
	if err := d.db.CreateTable(schema); err != nil {
		return err
	}
	for j, def := range schema.Columns {
		split, err := o.buildColumn(schema.Table, def, columnOf(rows, j))
		if err != nil {
			return fmt.Errorf("encdbdb: deploy %q.%q: %w", schema.Table, def.Name, err)
		}
		if err := d.db.ImportColumn(schema.Table, def.Name, split); err != nil {
			return err
		}
	}
	return nil
}

// DeployTableClient is DeployTable against a remote provider.
func (o *DataOwner) DeployTableClient(c RemoteClient, schema Schema, rows [][]string) error {
	if err := c.CreateTable(schema); err != nil {
		return err
	}
	for j, def := range schema.Columns {
		split, err := o.buildColumn(schema.Table, def, columnOf(rows, j))
		if err != nil {
			return fmt.Errorf("encdbdb: deploy %q.%q: %w", schema.Table, def.Name, err)
		}
		if err := c.ImportColumn(schema.Table, def.Name, split.Data()); err != nil {
			return err
		}
	}
	return nil
}

// buildColumn runs the EncDB operation for one column with crypto-seeded
// randomness for the security-relevant rotation/shuffle/bucket draws.
func (o *DataOwner) buildColumn(table string, def ColumnDef, values [][]byte) (*dict.Split, error) {
	p := dict.Params{
		Kind:   def.Kind,
		MaxLen: def.MaxLen,
		BSMax:  def.BSMax,
		Plain:  def.Plain,
		Rand:   newCryptoSeededRand(),
	}
	if !def.Plain {
		key, err := pae.Derive(o.master, table, def.Name)
		if err != nil {
			return nil, err
		}
		cipher, err := pae.NewCipher(key)
		if err != nil {
			return nil, err
		}
		p.Cipher = cipher
	}
	return dict.Build(values, p)
}

// columnOf extracts column j from row-major string rows.
func columnOf(rows [][]string, j int) [][]byte {
	col := make([][]byte, len(rows))
	for i, r := range rows {
		if j < len(r) {
			col[i] = []byte(r[j])
		} else {
			col[i] = []byte{}
		}
	}
	return col
}

// newCryptoSeededRand seeds math/rand from crypto randomness.
func newCryptoSeededRand() *mrand.Rand {
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err != nil {
		return mrand.New(mrand.NewSource(1))
	}
	return mrand.New(mrand.NewSource(int64(binary.LittleEndian.Uint64(seed[:]))))
}
