package encdbdb

import (
	"net/http"

	"github.com/encdbdb/encdbdb/internal/metrics"
	"github.com/encdbdb/encdbdb/internal/shard"
)

// ShardMap is the versioned catalog describing a shard fleet: the named
// shards, their provider addresses, and how the insert stream partitions
// across them. It serializes to shardmap.json in a data directory so a
// restarted proxy routes exactly like its predecessor.
type ShardMap = shard.Map

// ShardDesc describes one shard of a ShardMap.
type ShardDesc = shard.Desc

// ShardStatus is one shard's row in the topology display: health plus
// lifetime dispatch counters.
type ShardStatus = shard.Status

// ShardError is the typed per-shard failure every scatter-gather operation
// returns; errors.As recovers the failing shard's name and address.
type ShardError = shard.Error

// ErrShardDown marks an operation against a shard already known to be
// unhealthy. Queries that do not touch the down shard keep working; use
// errors.Is to tell a fleet-partial failure from a query error.
var ErrShardDown = shard.ErrShardDown

// NewShardMap builds a hash-partitioned catalog over provider addresses,
// naming shards shard0..shardN-1.
func NewShardMap(addrs ...string) *ShardMap { return shard.NewHashMap(addrs) }

// NewRangeShardMap builds a range-partitioned catalog: bounds are the
// len(addrs)-1 ascending split points of the per-table insert sequence.
func NewRangeShardMap(bounds []uint64, addrs ...string) *ShardMap {
	return shard.NewRangeMap(addrs, bounds)
}

// LoadShardMap reads and validates a serialized catalog; path may be the
// shardmap.json file or a data directory containing one.
func LoadShardMap(path string) (*ShardMap, error) { return shard.LoadMap(path) }

// ShardedOptions configure NewShardedExecutor.
type ShardedOptions struct {
	// EnableMetrics registers the encdbdb_shard_* families (per-shard
	// request/error/latency, fan-out width, health transitions) on a fresh
	// registry served by the executor's MetricsHandler.
	EnableMetrics bool
}

// ShardedExecutor presents a shard fleet as one Executor: pass it to
// DataOwner.RemoteSession and every SQL statement routes, scatters, and
// merges across the shards — INSERT to the owning shard, SELECT fanned out
// with counts summed, rows streamed shard by shard, ORDER BY and aggregates
// combined from per-shard partials at the trusted side.
type ShardedExecutor struct {
	*shard.Executor
	reg *metrics.Registry
}

// NewShardedExecutor builds the scatter-gather executor over one backend per
// shard of m, in map order. Backends are any Executor: wire clients or pools
// (Dial/DialPool, one per shard) in production, embedded databases
// (Database.Executor) in tests. Every shard's enclave must be provisioned
// with the same master key — sharding is pure trusted-side routing, so
// per-column encryption is identical on every shard.
func NewShardedExecutor(m *ShardMap, backends []Executor, opts ...ShardedOptions) (*ShardedExecutor, error) {
	var o ShardedOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	var sopts shard.Options
	var reg *metrics.Registry
	if o.EnableMetrics {
		reg = metrics.NewRegistry()
		sopts.Metrics = reg
	}
	e, err := shard.NewExecutor(m, backends, sopts)
	if err != nil {
		return nil, err
	}
	return &ShardedExecutor{Executor: e, reg: reg}, nil
}

// MetricsHandler serves the executor's encdbdb_shard_* families in the
// Prometheus text format, or nil when ShardedOptions.EnableMetrics was off.
func (e *ShardedExecutor) MetricsHandler() http.Handler {
	if e.reg == nil {
		return nil
	}
	return e.reg.Handler()
}
