// Package workload generates synthetic columns matching the statistical
// profile of the real-world SAP business-warehouse columns used in the
// paper's evaluation (§6.2-6.3), plus the random range queries driving
// Figures 7 and 8.
//
// The paper's snapshot is proprietary; per DESIGN.md the generator
// reproduces the published characteristics instead: C1 holds 10.9 million
// 12-character values of which 6.96 million are unique (almost no
// repetition), C2 holds 10.9 million 10-character values with only 13,361
// unique values (heavy repetition, moderately skewed). Experiments sample
// these profiles down exactly like the paper samples its originals ("we
// sample datasets from 1 to 10 million records using the distribution and
// values of the original columns").
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/encdbdb/encdbdb/internal/search"
)

// Profile describes the statistical shape of a column.
type Profile struct {
	// Name labels the profile in reports ("C1", "C2").
	Name string
	// Rows is the number of values.
	Rows int
	// Unique is the size of the value vocabulary. The effective unique
	// count of a generated column can be lower for heavily skewed
	// profiles (rare values may not be drawn), exactly as in sampling.
	Unique int
	// ValueLen is the byte length of every value.
	ValueLen int
	// Zipf > 0 draws values from a Zipf distribution with this s
	// parameter, modelling the skew of warehouse columns; 0 draws
	// uniformly.
	Zipf float64
}

// C1 is the high-cardinality evaluation column (6.96 M unique of 10.9 M).
func C1() Profile {
	return Profile{Name: "C1", Rows: 10_900_000, Unique: 6_960_000, ValueLen: 12}
}

// C2 is the low-cardinality evaluation column (13,361 unique of 10.9 M,
// skewed occurrence counts as §6.3's result sizes indicate).
func C2() Profile {
	return Profile{Name: "C2", Rows: 10_900_000, Unique: 13_361, ValueLen: 10, Zipf: 1.1}
}

// Scaled returns the profile sampled down to n rows. The vocabulary is kept
// (capped at n), matching the paper's sampling methodology: result counts
// then grow with the dataset size as in Figure 7.
func (p Profile) Scaled(n int) Profile {
	out := p
	out.Rows = n
	if out.Unique > n {
		out.Unique = n
	}
	out.Name = fmt.Sprintf("%s/%d", p.Name, n)
	return out
}

// Column is a generated column plus the sorted unique values needed to form
// paper-style range queries.
type Column struct {
	Profile Profile
	Values  [][]byte
	// SortedUnique are the distinct values that actually occur, sorted.
	SortedUnique [][]byte
}

// Generate deterministically builds a column for the profile.
func Generate(p Profile, seed int64) *Column {
	rng := rand.New(rand.NewSource(seed))
	vocab := vocabulary(rng, p.Unique, p.ValueLen)
	values := make([][]byte, p.Rows)
	if p.Zipf > 0 && p.Unique > 1 {
		z := rand.NewZipf(rng, p.Zipf, 1, uint64(p.Unique-1))
		for i := range values {
			values[i] = vocab[z.Uint64()]
		}
	} else {
		for i := range values {
			values[i] = vocab[rng.Intn(p.Unique)]
		}
	}
	return &Column{Profile: p, Values: values, SortedUnique: sortedUnique(values)}
}

// vocabulary builds n distinct NUL-free values of length valueLen. The
// lexicographic position of a value is decorrelated from its frequency rank
// by shuffling, as in real identifier columns.
func vocabulary(rng *rand.Rand, n, valueLen int) [][]byte {
	if valueLen < 1 {
		valueLen = 1
	}
	vocab := make([][]byte, n)
	for i := range vocab {
		v := make([]byte, valueLen)
		// A distinct prefix encodes i in base 26; the rest is random
		// letters. This guarantees distinctness without a dedup pass.
		x := i
		for j := 0; j < valueLen; j++ {
			if x > 0 || j == 0 {
				v[j] = byte('a' + x%26)
				x /= 26
			} else {
				v[j] = byte('a' + rng.Intn(26))
			}
		}
		vocab[i] = v
	}
	rng.Shuffle(n, func(a, b int) { vocab[a], vocab[b] = vocab[b], vocab[a] })
	return vocab
}

// sortedUnique extracts the sorted distinct values of a column.
func sortedUnique(values [][]byte) [][]byte {
	seen := make(map[string]struct{}, len(values))
	var out [][]byte
	for _, v := range values {
		if _, ok := seen[string(v)]; ok {
			continue
		}
		seen[string(v)] = struct{}{}
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return string(out[a]) < string(out[b]) })
	return out
}

// QueryGen produces the paper's random range queries: a range size RS
// selects RS consecutive values from the sorted unique values, i.e.
// R = [v_i, v_{i+RS-1}] for uniform random i (§6.3).
type QueryGen struct {
	unique [][]byte
	rs     int
	rng    *rand.Rand
}

// NewQueryGen creates a query generator with range size rs over the
// column's unique values.
func NewQueryGen(col *Column, rs int, seed int64) (*QueryGen, error) {
	if rs < 1 {
		return nil, fmt.Errorf("workload: range size %d < 1", rs)
	}
	if len(col.SortedUnique) < rs {
		return nil, fmt.Errorf("workload: range size %d exceeds %d unique values", rs, len(col.SortedUnique))
	}
	return &QueryGen{unique: col.SortedUnique, rs: rs, rng: rand.New(rand.NewSource(seed))}, nil
}

// Next returns the next random range query.
func (g *QueryGen) Next() search.Range {
	i := g.rng.Intn(len(g.unique) - g.rs + 1)
	return search.Closed(g.unique[i], g.unique[i+g.rs-1])
}

// Stats summarizes per-query measurements with the paper's 95% confidence
// interval presentation.
type Stats struct {
	N    int
	Mean float64
	CI95 float64
}

// Summarize computes mean and 95% confidence interval half-width.
func Summarize(samples []float64) Stats {
	n := len(samples)
	if n == 0 {
		return Stats{}
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	mean := sum / float64(n)
	if n == 1 {
		return Stats{N: 1, Mean: mean}
	}
	var ss float64
	for _, s := range samples {
		d := s - mean
		ss += d * d
	}
	variance := ss / float64(n-1)
	// 1.96 approximates the normal quantile; fine for n = 500 queries.
	ci := 1.96 * math.Sqrt(variance/float64(n))
	return Stats{N: n, Mean: mean, CI95: ci}
}

// Percentile returns the q-quantile (0 < q <= 1) of samples by nearest
// rank, e.g. Percentile(lat, 0.99) for a p99 tail latency.
func Percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
