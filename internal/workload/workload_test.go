package workload

import (
	"bytes"
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	p := Profile{Name: "t", Rows: 1000, Unique: 50, ValueLen: 8}
	a := Generate(p, 7)
	b := Generate(p, 7)
	if len(a.Values) != len(b.Values) {
		t.Fatal("row counts differ")
	}
	for i := range a.Values {
		if !bytes.Equal(a.Values[i], b.Values[i]) {
			t.Fatalf("row %d differs across same-seed generations", i)
		}
	}
	c := Generate(p, 8)
	same := true
	for i := range a.Values {
		if !bytes.Equal(a.Values[i], c.Values[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical columns")
	}
}

func TestGenerateShape(t *testing.T) {
	tests := []struct {
		name string
		p    Profile
	}{
		{name: "uniform", p: Profile{Rows: 5000, Unique: 100, ValueLen: 10}},
		{name: "zipf", p: Profile{Rows: 5000, Unique: 100, ValueLen: 10, Zipf: 1.2}},
		{name: "single value", p: Profile{Rows: 100, Unique: 1, ValueLen: 4}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			col := Generate(tt.p, 1)
			if len(col.Values) != tt.p.Rows {
				t.Errorf("rows = %d, want %d", len(col.Values), tt.p.Rows)
			}
			for i, v := range col.Values {
				if len(v) != tt.p.ValueLen {
					t.Fatalf("value %d has length %d, want %d", i, len(v), tt.p.ValueLen)
				}
				for _, b := range v {
					if b == 0 {
						t.Fatalf("value %d contains NUL", i)
					}
				}
			}
			if got := len(col.SortedUnique); got > tt.p.Unique {
				t.Errorf("unique = %d, want <= %d", got, tt.p.Unique)
			}
			for i := 1; i < len(col.SortedUnique); i++ {
				if bytes.Compare(col.SortedUnique[i-1], col.SortedUnique[i]) >= 0 {
					t.Fatal("SortedUnique not strictly sorted")
				}
			}
		})
	}
}

func TestGenerateUniformCoversVocabulary(t *testing.T) {
	p := Profile{Rows: 20000, Unique: 100, ValueLen: 6}
	col := Generate(p, 3)
	if got := len(col.SortedUnique); got != 100 {
		t.Errorf("unique = %d, want 100 (every vocab value drawn at 200x coverage)", got)
	}
}

func TestZipfIsSkewed(t *testing.T) {
	p := Profile{Rows: 50000, Unique: 1000, ValueLen: 8, Zipf: 1.2}
	col := Generate(p, 4)
	counts := make(map[string]int)
	for _, v := range col.Values {
		counts[string(v)]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	// Uniform would give ~50 per value; Zipf must concentrate far more.
	if max < 500 {
		t.Errorf("max occurrence = %d, want >= 500 under Zipf skew", max)
	}
}

func TestC1C2Profiles(t *testing.T) {
	c1, c2 := C1(), C2()
	if c1.Rows != 10_900_000 || c1.Unique != 6_960_000 || c1.ValueLen != 12 {
		t.Errorf("C1 = %+v does not match paper §6.2", c1)
	}
	if c2.Rows != 10_900_000 || c2.Unique != 13_361 || c2.ValueLen != 10 {
		t.Errorf("C2 = %+v does not match paper §6.2", c2)
	}
}

func TestScaled(t *testing.T) {
	s := C2().Scaled(1000)
	if s.Rows != 1000 {
		t.Errorf("rows = %d", s.Rows)
	}
	if s.Unique != 1000 { // capped at rows
		t.Errorf("unique = %d, want 1000", s.Unique)
	}
	s2 := C2().Scaled(1_000_000)
	if s2.Unique != 13_361 { // vocabulary kept
		t.Errorf("unique = %d, want 13361", s2.Unique)
	}
}

func TestQueryGenRangesAreValid(t *testing.T) {
	col := Generate(Profile{Rows: 2000, Unique: 50, ValueLen: 6}, 5)
	for _, rs := range []int{1, 2, 10, 50} {
		g, err := NewQueryGen(col, rs, 1)
		if err != nil {
			t.Fatalf("rs=%d: %v", rs, err)
		}
		for i := 0; i < 100; i++ {
			q := g.Next()
			if bytes.Compare(q.Start, q.End) > 0 {
				t.Fatalf("inverted range %q > %q", q.Start, q.End)
			}
			if !q.StartIncl || !q.EndIncl {
				t.Fatal("paper ranges are closed")
			}
			// The range must span exactly rs unique values.
			n := 0
			for _, u := range col.SortedUnique {
				if q.Contains(u) {
					n++
				}
			}
			if n != rs {
				t.Fatalf("range spans %d unique values, want %d", n, rs)
			}
		}
	}
}

func TestQueryGenErrors(t *testing.T) {
	col := Generate(Profile{Rows: 100, Unique: 5, ValueLen: 4}, 6)
	if _, err := NewQueryGen(col, 0, 1); err == nil {
		t.Error("rs=0 accepted")
	}
	if _, err := NewQueryGen(col, len(col.SortedUnique)+1, 1); err == nil {
		t.Error("rs > unique accepted")
	}
}

func TestSummarize(t *testing.T) {
	tests := []struct {
		name     string
		give     []float64
		wantMean float64
	}{
		{name: "empty", give: nil, wantMean: 0},
		{name: "single", give: []float64{5}, wantMean: 5},
		{name: "uniform", give: []float64{2, 4, 6}, wantMean: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := Summarize(tt.give)
			if math.Abs(s.Mean-tt.wantMean) > 1e-9 {
				t.Errorf("mean = %v, want %v", s.Mean, tt.wantMean)
			}
			if s.N != len(tt.give) {
				t.Errorf("n = %d", s.N)
			}
		})
	}
	s := Summarize([]float64{1, 1, 1, 1})
	if s.CI95 != 0 {
		t.Errorf("constant samples have CI %v, want 0", s.CI95)
	}
	wide := Summarize([]float64{0, 100})
	if wide.CI95 <= 0 {
		t.Error("variable samples should have positive CI")
	}
}

func TestVocabularyDistinct(t *testing.T) {
	col := Generate(Profile{Rows: 3000, Unique: 3000, ValueLen: 5}, 9)
	if len(col.SortedUnique) < 2900 {
		// All 3000 vocab entries are drawn... not guaranteed: each row
		// draws uniformly, so some vocab entries may be missed. With
		// rows == unique, expect ~63% coverage; just require distinctness
		// of what occurs and plausible coverage.
		t.Logf("coverage = %d/3000", len(col.SortedUnique))
	}
	seen := make(map[string]bool)
	for _, u := range col.SortedUnique {
		if seen[string(u)] {
			t.Fatal("duplicate in SortedUnique")
		}
		seen[string(u)] = true
	}
}
