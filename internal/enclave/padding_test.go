package enclave_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/search"
)

// countingObserver tallies loads per query via explicit marks.
type countingObserver struct {
	mu    sync.Mutex
	count int
}

func (o *countingObserver) Access(table, column string, index int) {
	o.mu.Lock()
	o.count++
	o.mu.Unlock()
}

func (o *countingObserver) take() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	c := o.count
	o.count = 0
	return c
}

// variedColumn produces values at many distinct positions so different
// queries hit different binary search depths.
func variedColumn(n int) [][]byte {
	col := make([][]byte, n)
	for i := range col {
		col[i] = []byte(fmt.Sprintf("v%06d", i))
	}
	return col
}

func newPaddedEnv(t *testing.T, pad bool, obs enclave.AccessObserver) *env {
	t.Helper()
	return newEnv(t, enclave.Config{Identity: testIdentity, PadProbes: pad, Observer: obs})
}

func TestPadProbesFixesAccessCount(t *testing.T) {
	obs := &countingObserver{}
	v := newPaddedEnv(t, true, obs)
	col := variedColumn(777)
	for _, kind := range []dict.Kind{dict.ED1, dict.ED2} {
		table := "pad_" + kind.String()
		meta := enclave.ColumnMeta{Table: table, Column: "c", Kind: kind, MaxLen: 8}
		s := v.buildColumn(t, kind, table, "c", col, 8, 0)
		counts := make(map[int]bool)
		obs.take()
		for i := 0; i < 40; i++ {
			q := v.encRange(t, table, "c", search.Eq(col[(i*97)%len(col)]))
			if _, err := v.enclave.DictSearch(meta, s, s.EncRndOffset, q); err != nil {
				t.Fatal(err)
			}
			counts[obs.take()] = true
		}
		if len(counts) != 1 {
			t.Errorf("%v: padded searches produced %d distinct access counts %v, want 1",
				kind, len(counts), keys(counts))
		}
	}
}

func TestWithoutPaddingAccessCountVaries(t *testing.T) {
	obs := &countingObserver{}
	v := newPaddedEnv(t, false, obs)
	col := variedColumn(777)
	meta := enclave.ColumnMeta{Table: "np", Column: "c", Kind: dict.ED1, MaxLen: 8}
	s := v.buildColumn(t, dict.ED1, "np", "c", col, 8, 0)
	counts := make(map[int]bool)
	obs.take()
	for i := 0; i < 40; i++ {
		q := v.encRange(t, "np", "c", search.Eq(col[(i*97)%len(col)]))
		if _, err := v.enclave.DictSearch(meta, s, nil, q); err != nil {
			t.Fatal(err)
		}
		counts[obs.take()] = true
	}
	if len(counts) < 2 {
		t.Errorf("unpadded searches produced a single access count; padding test has no signal")
	}
}

func TestPadProbesPreservesResults(t *testing.T) {
	v := newPaddedEnv(t, true, nil)
	col := paperColumn()
	for _, kind := range []dict.Kind{dict.ED1, dict.ED2, dict.ED5, dict.ED8} {
		table := "padres_" + kind.String()
		meta := enclave.ColumnMeta{Table: table, Column: "c", Kind: kind, MaxLen: 16}
		s := v.buildColumn(t, kind, table, "c", col, 16, 3)
		q := v.encRange(t, table, "c", search.Closed([]byte("Archie"), []byte("Hans")))
		res, err := v.enclave.DictSearch(meta, s, s.EncRndOffset, q)
		if err != nil {
			t.Fatal(err)
		}
		rids := search.AttrVectRanges(s.AVCodes(), res.Ranges, 1)
		if len(rids) != 3 {
			t.Errorf("%v: padded search returned %v, want 3 rows", kind, rids)
		}
	}
}

func keys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
