package enclave

import (
	"crypto/ecdh"
	"crypto/rand"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"
	"sync/atomic"

	"github.com/encdbdb/encdbdb/internal/av"
	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/ordenc"
	"github.com/encdbdb/encdbdb/internal/pae"
	"github.com/encdbdb/encdbdb/internal/search"
)

// DefaultMemoryBudget is the simulated usable enclave page cache: SGX v2
// reserves 128 MB of RAM of which about 96 MB are usable for enclave code
// and data (paper §2.2).
const DefaultMemoryBudget = 96 << 20

// Config configures an enclave launch.
type Config struct {
	// Identity is the enclave's code identity string; its hash is the
	// measurement that remote attestation reports.
	Identity string
	// MemoryBudget is the simulated EPC budget in bytes. Zero means
	// DefaultMemoryBudget.
	MemoryBudget int
	// Observer, if set, receives every untrusted-memory access the
	// enclave performs. It models the honest-but-curious attacker of
	// paper §3.2 and is used by the leakage evaluation.
	Observer AccessObserver
	// PadProbes hardens sorted and rotated dictionary searches against
	// access-pattern analysis: every search issues dummy loads (with
	// dummy decryptions) until it reaches a fixed, size-dependent probe
	// count, so the observable number of untrusted accesses no longer
	// depends on the queried range. The paper treats side channels as
	// orthogonal (§3.2) but designed the enclave to make such
	// mitigations easy to integrate; this is one of them. Pathological
	// wrapped-duplicate runs in ED5/ED8 can still exceed the target.
	PadProbes bool
}

// AccessObserver sees each untrusted memory access: which column region was
// touched and which entry index was loaded. Everything it observes is
// ciphertext — the point of the leakage evaluation is what the pattern
// itself reveals.
type AccessObserver interface {
	Access(table, column string, index int)
}

// Stats counts the enclave's boundary traffic.
type Stats struct {
	// ECalls is the number of enclave entries. EncDBDB needs exactly one
	// per dictionary search (paper §5: "only one context switch is
	// necessary for each query").
	ECalls uint64
	// Loads is the number of dictionary entries pulled in from untrusted
	// memory; BytesLoaded the bytes they contained.
	Loads       uint64
	BytesLoaded uint64
	// Decryptions and Encryptions count PAE operations inside the enclave.
	Decryptions uint64
	Encryptions uint64
}

// counters is the live, lock-free form of Stats: every dictionary probe of
// every concurrent ECALL bumps these, so they must not share the enclave
// mutex — under the engine's per-table locks, a global mutex here would
// re-serialize exactly the cross-table parallelism those locks exist for.
type counters struct {
	ecalls      atomic.Uint64
	loads       atomic.Uint64
	bytesLoaded atomic.Uint64
	decryptions atomic.Uint64
	encryptions atomic.Uint64
}

// Enclave is the simulated trusted module. All its state — provisioned
// keys, derived ciphers — is private; the untrusted engine interacts with
// it exclusively through the ECALL methods.
type Enclave struct {
	platform    *Platform
	measurement Measurement
	priv        *ecdh.PrivateKey
	budget      int
	observer    AccessObserver
	padProbes   bool

	mu      sync.Mutex
	master  pae.Key
	ciphers map[string]*pae.Cipher
	rng     *mrand.Rand

	stats counters
}

// Errors returned by enclave ECALLs.
var (
	ErrNotProvisioned = errors.New("enclave: master key not provisioned")
	ErrUnseal         = errors.New("enclave: unsealing master key failed")
	ErrBudget         = errors.New("enclave: memory budget exceeded")
	ErrBadRange       = errors.New("enclave: malformed query range")
	ErrBadRotOffset   = errors.New("enclave: rotation offset invalid")
)

// Launch creates an enclave on this platform and measures it.
func (p *Platform) Launch(cfg Config) (*Enclave, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("enclave: channel key: %w", err)
	}
	budget := cfg.MemoryBudget
	if budget == 0 {
		budget = DefaultMemoryBudget
	}
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("enclave: seed: %w", err)
	}
	return &Enclave{
		platform:    p,
		measurement: Measure(cfg.Identity),
		priv:        priv,
		budget:      budget,
		observer:    cfg.Observer,
		padProbes:   cfg.PadProbes,
		ciphers:     make(map[string]*pae.Cipher),
		rng: mrand.New(mrand.NewSource(int64(seed[0]) | int64(seed[1])<<8 |
			int64(seed[2])<<16 | int64(seed[3])<<24 | int64(seed[4])<<32 |
			int64(seed[5])<<40 | int64(seed[6])<<48 | int64(seed[7])<<56)),
	}, nil
}

// Measurement returns the enclave's measurement (public, as in SGX).
func (e *Enclave) Measurement() Measurement { return e.measurement }

// Quote produces a remote attestation quote for the verifier's nonce,
// binding the enclave's provisioning public key.
func (e *Enclave) Quote(nonce []byte) Quote {
	pub := e.priv.PublicKey().Bytes()
	return Quote{
		Measurement: e.measurement,
		PublicKey:   pub,
		Nonce:       append([]byte(nil), nonce...),
		MAC:         e.platform.quoteMAC(e.measurement, pub, nonce),
	}
}

// Provision completes the secure channel: the enclave unseals the master
// database key SK_DB shipped by the data owner (paper Fig. 5 step 2).
func (e *Enclave) Provision(sk SealedKey) error {
	ownerPub, err := ecdh.X25519().NewPublicKey(sk.OwnerPublicKey)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnseal, err)
	}
	shared, err := e.priv.ECDH(ownerPub)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrUnseal, err)
	}
	master, err := pae.Decrypt(channelKey(shared), sk.Ciphertext)
	if err != nil {
		return ErrUnseal
	}
	if len(master) != pae.KeySize {
		return ErrUnseal
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.master = pae.Key(master)
	e.ciphers = make(map[string]*pae.Cipher)
	return nil
}

// Provisioned reports whether the master key has been deployed.
func (e *Enclave) Provisioned() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.master != nil
}

// Stats returns a snapshot of the boundary counters. Each counter is read
// atomically; with ECALLs in flight the snapshot can interleave between
// their individual increments, so read it (as every caller does) after the
// traffic being measured has quiesced.
func (e *Enclave) Stats() Stats {
	return Stats{
		ECalls:      e.stats.ecalls.Load(),
		Loads:       e.stats.loads.Load(),
		BytesLoaded: e.stats.bytesLoaded.Load(),
		Decryptions: e.stats.decryptions.Load(),
		Encryptions: e.stats.encryptions.Load(),
	}
}

// ResetStats zeroes the boundary counters.
func (e *Enclave) ResetStats() {
	e.stats.ecalls.Store(0)
	e.stats.loads.Store(0)
	e.stats.bytesLoaded.Store(0)
	e.stats.decryptions.Store(0)
	e.stats.encryptions.Store(0)
}

// cipherFor derives (and caches) the column key SK_D and its AES schedule.
func (e *Enclave) cipherFor(table, column string) (*pae.Cipher, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.master == nil {
		return nil, ErrNotProvisioned
	}
	id := fmt.Sprintf("%d:%s\x00%s", len(table), table, column)
	if c, ok := e.ciphers[id]; ok {
		return c, nil
	}
	key, err := pae.Derive(e.master, table, column)
	if err != nil {
		return nil, err
	}
	c, err := pae.NewCipher(key)
	if err != nil {
		return nil, err
	}
	e.ciphers[id] = c
	return c, nil
}

// ColumnMeta identifies the dictionary a search runs against; the query
// evaluation engine attaches it before the ECALL (paper Fig. 5 step 7
// "enriches eD with metadata: the table name, the column name, and the
// column size").
type ColumnMeta struct {
	Table  string
	Column string
	Kind   dict.Kind
	MaxLen int
}

// EncRange is the encrypted filter τ: PAE ciphertexts of the range bounds
// plus inclusivity flags. The proxy converts every filter type into this
// uniform two-sided shape so the provider cannot distinguish query types.
type EncRange struct {
	Start     []byte
	End       []byte
	StartIncl bool
	EndIncl   bool
}

// SearchResult is the output of a dictionary search ECALL: ValueID ranges
// for sorted and rotated dictionaries (at most two), a ValueID list for
// unsorted dictionaries.
type SearchResult struct {
	Ranges []search.VidRange
	IDs    []uint32
}

// DictSearch is the EnclDictSearch ECALL (paper Fig. 5 steps 8-10): it
// derives SK_D, decrypts the query range inside the enclave, and runs the
// dictionary search matching the column's encrypted dictionary kind,
// loading entries from untrusted memory one at a time. The whole search
// costs a single context switch.
func (e *Enclave) DictSearch(meta ColumnMeta, region search.Region, encRndOffset []byte, q EncRange) (SearchResult, error) {
	e.enterECall()
	cipher, err := e.cipherFor(meta.Table, meta.Column)
	if err != nil {
		return SearchResult{}, err
	}
	if err := e.chargeScratch(meta.MaxLen, region); err != nil {
		return SearchResult{}, err
	}
	rng, err := e.decryptRange(cipher, meta, q)
	if err != nil {
		return SearchResult{}, err
	}

	mr := &callRegion{inner: e.instrument(meta, region)}
	dec := &countingDecryptor{e: e, d: cipher}
	switch meta.Kind.Order() {
	case dict.OrderSorted:
		vr, ok, err := search.SortedDict(mr, dec, rng)
		if err != nil {
			return SearchResult{}, err
		}
		e.padLoads(mr, dec)
		if !ok {
			return SearchResult{}, nil
		}
		return SearchResult{Ranges: []search.VidRange{vr}}, nil
	case dict.OrderRotated:
		if err := e.checkRotOffset(cipher, encRndOffset, region.Len()); err != nil {
			return SearchResult{}, err
		}
		enc, err := ordenc.NewEncoder(meta.MaxLen)
		if err != nil {
			return SearchResult{}, err
		}
		ranges, err := search.RotatedDict(mr, dec, enc, rng)
		if err != nil {
			return SearchResult{}, err
		}
		e.padLoads(mr, dec)
		return SearchResult{Ranges: ranges}, nil
	default:
		ids, err := search.UnsortedDict(mr, dec, rng)
		if err != nil {
			return SearchResult{}, err
		}
		return SearchResult{IDs: ids}, nil
	}
}

// callRegion counts the loads of one ECALL so probe padding can top them up
// to a fixed target.
type callRegion struct {
	inner *meteredRegion
	loads int
}

func (c *callRegion) Len() int { return c.inner.Len() }

func (c *callRegion) Load(i int) []byte {
	c.loads++
	return c.inner.Load(i)
}

// padLoads issues dummy loads (with dummy decryptions) until the call's
// probe count reaches the fixed target for the dictionary size, making the
// observable access count independent of the queried range. Queries that
// naturally exceed the target (long wrapped duplicate runs) are not
// truncated.
func (e *Enclave) padLoads(cr *callRegion, dec *countingDecryptor) {
	n := cr.Len()
	if !e.padProbes || n == 0 {
		return
	}
	target := 2*bitsCeil(n) + 8
	need := target - cr.loads
	if need <= 0 {
		return
	}
	e.mu.Lock()
	idxs := make([]int, need)
	for i := range idxs {
		idxs[i] = e.rng.Intn(n)
	}
	e.mu.Unlock()
	for _, idx := range idxs {
		ct := cr.Load(idx)
		dec.Decrypt(ct) //nolint:errcheck // dummy probe, result discarded
	}
}

// bitsCeil returns ceil(log2(n)) + 1 for n >= 1.
func bitsCeil(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}

// decryptRange decrypts and validates the query bounds (Algorithm 1 line 2).
func (e *Enclave) decryptRange(cipher *pae.Cipher, meta ColumnMeta, q EncRange) (search.Range, error) {
	start, err := cipher.Decrypt(q.Start)
	if err != nil {
		return search.Range{}, fmt.Errorf("%w: start bound: %v", ErrBadRange, err)
	}
	end, err := cipher.Decrypt(q.End)
	if err != nil {
		return search.Range{}, fmt.Errorf("%w: end bound: %v", ErrBadRange, err)
	}
	e.addDecryptions(2)
	// Bounds follow column value rules except that the all-0xFF padding
	// sentinel for +inf of short columns is produced at full width.
	if len(start) > meta.MaxLen || len(end) > meta.MaxLen {
		return search.Range{}, fmt.Errorf("%w: bound exceeds column width", ErrBadRange)
	}
	for _, b := range [][]byte{start, end} {
		for _, c := range b {
			if c == 0 {
				return search.Range{}, fmt.Errorf("%w: bound contains NUL", ErrBadRange)
			}
		}
	}
	return search.Range{Start: start, End: end, StartIncl: q.StartIncl, EndIncl: q.EndIncl}, nil
}

// checkRotOffset decrypts encRndOffset inside the enclave (Algorithm 2 line
// 3) and validates it against the dictionary size. The offset itself is not
// otherwise needed: the rotated search operates purely in the transformed
// domain, which keeps its access pattern independent of the offset.
func (e *Enclave) checkRotOffset(cipher *pae.Cipher, encRndOffset []byte, dictLen int) error {
	raw, err := cipher.Decrypt(encRndOffset)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRotOffset, err)
	}
	e.addDecryptions(1)
	off, err := dict.DecodeRotOffset(raw)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRotOffset, err)
	}
	if dictLen > 0 && off >= uint64(dictLen) {
		return fmt.Errorf("%w: offset %d >= |D| = %d", ErrBadRotOffset, off, dictLen)
	}
	return nil
}

// ReencryptValue is the delta-store insert ECALL (paper §4.3): a value
// arriving from the proxy is re-encrypted with a fresh IV before being
// appended to the ED9 delta dictionary, unlinking the stored ciphertext from
// the query ciphertext.
func (e *Enclave) ReencryptValue(meta ColumnMeta, ciphertext []byte) ([]byte, error) {
	e.enterECall()
	cipher, err := e.cipherFor(meta.Table, meta.Column)
	if err != nil {
		return nil, err
	}
	v, err := cipher.Decrypt(ciphertext)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRange, err)
	}
	e.addDecryptions(1)
	enc, err := ordenc.NewEncoder(meta.MaxLen)
	if err != nil {
		return nil, err
	}
	if err := enc.Validate(v); err != nil {
		return nil, err
	}
	out, err := cipher.Encrypt(v)
	if err != nil {
		return nil, err
	}
	e.addEncryptions(1)
	return out, nil
}

// BuildColumn is the trusted-setup ECALL (paper §4.2: "In one possible
// EncDBDB variant, the DBaaS provider is assumed trusted for the initial
// setup. The data owner can upload plaintext columns ... Afterwards, the
// DBaaS performs the appropriate column splits and encryptions."): the
// enclave splits an uploaded plaintext column under the column's encrypted
// dictionary and encrypts it with SK_D, so the owner needs no local build
// tooling. Outside this deliberately chosen variant, plaintext never
// reaches the provider.
func (e *Enclave) BuildColumn(meta ColumnMeta, bsmax int, values [][]byte) (*dict.Split, error) {
	e.enterECall()
	cipher, err := e.cipherFor(meta.Table, meta.Column)
	if err != nil {
		return nil, err
	}
	split, err := dict.Build(values, dict.Params{
		Kind:   meta.Kind,
		MaxLen: meta.MaxLen,
		BSMax:  bsmax,
		Cipher: cipher,
		Rand:   e.callRand(),
	})
	if err != nil {
		return nil, fmt.Errorf("enclave: trusted-setup build: %w", err)
	}
	e.addEncryptions(uint64(split.Len()))
	return split, nil
}

// MergeInput is one store participating in a delta merge: the dictionary
// region, attribute vector, and validity flags (nil means all rows valid).
// The attribute vector is consumed through the av.Codes interface so the
// main store's bit-packed vector and the delta store's identity []uint32
// vector (wrapped in av.Ints) share one ECALL signature.
type MergeInput struct {
	Region search.Region
	AV     av.Codes
	Valid  []bool
}

// MergeColumns is the delta-merge ECALL (paper §4.3): it reconstructs the
// valid rows of the given stores — conventionally the main store followed by
// the sealed delta runs in chain order — inside the enclave, re-encrypts
// every value with fresh IVs, and rebuilds the column under the column's
// encrypted dictionary kind with a fresh rotation offset or shuffle. The
// returned split carries no linkable relation to the old stores. The whole
// rebuild costs a single context switch regardless of how many delta runs
// participate.
func (e *Enclave) MergeColumns(meta ColumnMeta, bsmax int, inputs ...MergeInput) (*dict.Split, error) {
	e.enterECall()
	cipher, err := e.cipherFor(meta.Table, meta.Column)
	if err != nil {
		return nil, err
	}
	var col [][]byte
	for _, in := range inputs {
		rows, err := e.decryptRows(meta, cipher, in)
		if err != nil {
			return nil, err
		}
		col = append(col, rows...)
	}
	split, err := dict.Build(col, dict.Params{
		Kind:   meta.Kind,
		MaxLen: meta.MaxLen,
		BSMax:  bsmax,
		Cipher: cipher,
		Rand:   e.callRand(),
	})
	if err != nil {
		return nil, fmt.Errorf("enclave: merge rebuild: %w", err)
	}
	e.addEncryptions(uint64(split.Len()))
	return split, nil
}

// decryptRows materializes the valid rows of one store inside the enclave.
func (e *Enclave) decryptRows(meta ColumnMeta, cipher *pae.Cipher, in MergeInput) ([][]byte, error) {
	if in.Region == nil || in.AV == nil {
		return nil, nil
	}
	mr := e.instrument(meta, in.Region)
	plain := make([][]byte, mr.Len())
	n := in.AV.Len()
	rows := make([][]byte, 0, n)
	for j := 0; j < n; j++ {
		vid := in.AV.At(j)
		if in.Valid != nil && !in.Valid[j] {
			continue
		}
		if int(vid) >= mr.Len() {
			return nil, fmt.Errorf("enclave: merge: ValueID %d out of range", vid)
		}
		if plain[vid] == nil {
			v, err := cipher.Decrypt(mr.Load(int(vid)))
			if err != nil {
				return nil, fmt.Errorf("enclave: merge: entry %d: %w", vid, err)
			}
			e.addDecryptions(1)
			plain[vid] = v
		}
		rows = append(rows, plain[vid])
	}
	return rows, nil
}

// chargeScratch models the EPC budget: a dictionary search needs a constant
// working set (a few value-width buffers plus one entry buffer), never the
// dictionary itself — the paper stresses that required enclave memory is
// independent of |D|. An enclave configured with a tiny budget (for tests)
// rejects searches whose working set would not fit.
func (e *Enclave) chargeScratch(maxLen int, region search.Region) error {
	entry := 0
	if region.Len() > 0 {
		entry = len(region.Load(0))
	}
	need := 4*maxLen + entry + 4096
	if need > e.budget {
		return fmt.Errorf("%w: need %d bytes, budget %d", ErrBudget, need, e.budget)
	}
	return nil
}

// callRand derives an independent generator for one ECALL's shuffles and
// rotations. Build/merge ECALLs on different tables run concurrently under
// the engine's per-table locks, and math/rand.Rand is not safe for shared
// use, so each call seeds its own generator under the enclave lock.
func (e *Enclave) callRand() *mrand.Rand {
	e.mu.Lock()
	defer e.mu.Unlock()
	return mrand.New(mrand.NewSource(e.rng.Int63()))
}

func (e *Enclave) enterECall() {
	e.stats.ecalls.Add(1)
}

func (e *Enclave) addDecryptions(n uint64) {
	e.stats.decryptions.Add(n)
}

func (e *Enclave) addEncryptions(n uint64) {
	e.stats.encryptions.Add(n)
}

// instrument wraps a region so loads are counted and reported to the
// observer.
func (e *Enclave) instrument(meta ColumnMeta, r search.Region) *meteredRegion {
	return &meteredRegion{e: e, meta: meta, r: r}
}

type meteredRegion struct {
	e    *Enclave
	meta ColumnMeta
	r    search.Region
}

func (m *meteredRegion) Len() int { return m.r.Len() }

func (m *meteredRegion) Load(i int) []byte {
	b := m.r.Load(i)
	m.e.stats.loads.Add(1)
	m.e.stats.bytesLoaded.Add(uint64(len(b)))
	if m.e.observer != nil {
		m.e.observer.Access(m.meta.Table, m.meta.Column, i)
	}
	return b
}

type countingDecryptor struct {
	e *Enclave
	d search.Decryptor
}

func (c *countingDecryptor) Decrypt(ct []byte) ([]byte, error) {
	c.e.addDecryptions(1)
	return c.d.Decrypt(ct)
}
