package enclave_test

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/pae"
	"github.com/encdbdb/encdbdb/internal/search"
)

const testIdentity = "encdbdb-test-enclave"

// env is a provisioned enclave plus the owner-side key material.
type env struct {
	platform *enclave.Platform
	enclave  *enclave.Enclave
	master   pae.Key
}

func newEnv(t *testing.T, cfg enclave.Config) *env {
	t.Helper()
	if cfg.Identity == "" {
		cfg.Identity = testIdentity
	}
	p, err := enclave.NewPlatform()
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	e, err := p.Launch(cfg)
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	master := pae.MustGen()

	// Full attestation + provisioning flow, as the data owner runs it.
	nonce := []byte("owner-nonce-1")
	q := e.Quote(nonce)
	if err := p.VerifyQuote(q, enclave.Measure(cfg.Identity), nonce); err != nil {
		t.Fatalf("VerifyQuote: %v", err)
	}
	sealed, err := enclave.SealKey(q, master)
	if err != nil {
		t.Fatalf("SealKey: %v", err)
	}
	if err := e.Provision(sealed); err != nil {
		t.Fatalf("Provision: %v", err)
	}
	return &env{platform: p, enclave: e, master: master}
}

// buildColumn splits a column under the env's master key for (table, col).
func (v *env) buildColumn(t *testing.T, kind dict.Kind, table, column string, col [][]byte, maxLen, bsmax int) *dict.Split {
	t.Helper()
	key, err := pae.Derive(v.master, table, column)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	c, err := pae.NewCipher(key)
	if err != nil {
		t.Fatalf("NewCipher: %v", err)
	}
	s, err := dict.Build(col, dict.Params{
		Kind: kind, MaxLen: maxLen, BSMax: bsmax, Cipher: c,
		Rand: rand.New(rand.NewSource(77)),
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return s
}

// encRange encrypts a plaintext range for (table, column) like the proxy.
func (v *env) encRange(t *testing.T, table, column string, q search.Range) enclave.EncRange {
	t.Helper()
	key, err := pae.Derive(v.master, table, column)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	c, err := pae.NewCipher(key)
	if err != nil {
		t.Fatalf("NewCipher: %v", err)
	}
	s, err := c.Encrypt(q.Start)
	if err != nil {
		t.Fatalf("Encrypt start: %v", err)
	}
	e, err := c.Encrypt(q.End)
	if err != nil {
		t.Fatalf("Encrypt end: %v", err)
	}
	return enclave.EncRange{Start: s, End: e, StartIncl: q.StartIncl, EndIncl: q.EndIncl}
}

func paperColumn() [][]byte {
	return [][]byte{
		[]byte("Hans"), []byte("Jessica"), []byte("Archie"),
		[]byte("Ella"), []byte("Jessica"), []byte("Jessica"),
	}
}

func TestAttestationRejectsWrongMeasurement(t *testing.T) {
	v := newEnv(t, enclave.Config{})
	q := v.enclave.Quote([]byte("n"))
	err := v.platform.VerifyQuote(q, enclave.Measure("other-code"), []byte("n"))
	if !errors.Is(err, enclave.ErrQuoteMeasurement) {
		t.Errorf("err = %v, want ErrQuoteMeasurement", err)
	}
}

func TestAttestationRejectsWrongNonce(t *testing.T) {
	v := newEnv(t, enclave.Config{})
	q := v.enclave.Quote([]byte("n1"))
	err := v.platform.VerifyQuote(q, enclave.Measure(testIdentity), []byte("n2"))
	if !errors.Is(err, enclave.ErrQuoteNonce) {
		t.Errorf("err = %v, want ErrQuoteNonce", err)
	}
}

func TestAttestationRejectsForgedQuote(t *testing.T) {
	v := newEnv(t, enclave.Config{})
	q := v.enclave.Quote([]byte("n"))
	q.MAC[0] ^= 1
	err := v.platform.VerifyQuote(q, enclave.Measure(testIdentity), []byte("n"))
	if !errors.Is(err, enclave.ErrQuoteMAC) {
		t.Errorf("err = %v, want ErrQuoteMAC", err)
	}
}

func TestAttestationRejectsOtherPlatform(t *testing.T) {
	v := newEnv(t, enclave.Config{})
	other, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	q := v.enclave.Quote([]byte("n"))
	if err := other.VerifyQuote(q, enclave.Measure(testIdentity), []byte("n")); err == nil {
		t.Error("foreign platform accepted the quote")
	}
}

func TestProvisionRejectsGarbage(t *testing.T) {
	p, _ := enclave.NewPlatform()
	e, err := p.Launch(enclave.Config{Identity: testIdentity})
	if err != nil {
		t.Fatal(err)
	}
	err = e.Provision(enclave.SealedKey{OwnerPublicKey: make([]byte, 32), Ciphertext: []byte("junk")})
	if !errors.Is(err, enclave.ErrUnseal) {
		t.Errorf("err = %v, want ErrUnseal", err)
	}
	if e.Provisioned() {
		t.Error("enclave claims provisioned after failed unseal")
	}
}

func TestDictSearchRequiresProvisioning(t *testing.T) {
	p, _ := enclave.NewPlatform()
	e, err := p.Launch(enclave.Config{Identity: testIdentity})
	if err != nil {
		t.Fatal(err)
	}
	meta := enclave.ColumnMeta{Table: "t", Column: "c", Kind: dict.ED1, MaxLen: 8}
	_, err = e.DictSearch(meta, emptyRegion{}, nil, enclave.EncRange{})
	if !errors.Is(err, enclave.ErrNotProvisioned) {
		t.Errorf("err = %v, want ErrNotProvisioned", err)
	}
}

type emptyRegion struct{}

func (emptyRegion) Len() int        { return 0 }
func (emptyRegion) Load(int) []byte { return nil }

func TestDictSearchAllKinds(t *testing.T) {
	v := newEnv(t, enclave.Config{})
	col := paperColumn()
	kinds := []dict.Kind{dict.ED1, dict.ED2, dict.ED3, dict.ED4, dict.ED5, dict.ED6, dict.ED7, dict.ED8, dict.ED9}
	for _, k := range kinds {
		t.Run(k.String(), func(t *testing.T) {
			meta := enclave.ColumnMeta{Table: "t1", Column: "fname", Kind: k, MaxLen: 16}
			s := v.buildColumn(t, k, "t1", "fname", col, 16, 3)
			q := v.encRange(t, "t1", "fname", search.Closed([]byte("Archie"), []byte("Hans")))
			res, err := v.enclave.DictSearch(meta, s, s.EncRndOffset, q)
			if err != nil {
				t.Fatalf("DictSearch: %v", err)
			}
			var rids []uint32
			if k.Order() == dict.OrderUnsorted {
				rids = search.AttrVectList(s.AVCodes(), res.IDs, s.Len(), search.AVSortedProbe, 1)
			} else {
				rids = search.AttrVectRanges(s.AVCodes(), res.Ranges, 1)
			}
			want := []uint32{0, 2, 3} // Hans, Archie, Ella
			if len(rids) != len(want) {
				t.Fatalf("rids = %v, want %v", rids, want)
			}
			for i := range want {
				if rids[i] != want[i] {
					t.Fatalf("rids = %v, want %v", rids, want)
				}
			}
		})
	}
}

func TestDictSearchOneECallPerQuery(t *testing.T) {
	v := newEnv(t, enclave.Config{})
	col := paperColumn()
	meta := enclave.ColumnMeta{Table: "t1", Column: "c", Kind: dict.ED1, MaxLen: 16}
	s := v.buildColumn(t, dict.ED1, "t1", "c", col, 16, 0)
	q := v.encRange(t, "t1", "c", search.Eq([]byte("Hans")))
	v.enclave.ResetStats()
	for i := 0; i < 5; i++ {
		if _, err := v.enclave.DictSearch(meta, s, nil, q); err != nil {
			t.Fatal(err)
		}
	}
	if got := v.enclave.Stats().ECalls; got != 5 {
		t.Errorf("ECalls = %d, want 5 (one per query)", got)
	}
}

func TestDictSearchCountsLoadsAndDecryptions(t *testing.T) {
	v := newEnv(t, enclave.Config{})
	col := paperColumn()
	meta := enclave.ColumnMeta{Table: "t1", Column: "c", Kind: dict.ED9, MaxLen: 16}
	s := v.buildColumn(t, dict.ED9, "t1", "c", col, 16, 0)
	q := v.encRange(t, "t1", "c", search.Eq([]byte("Hans")))
	v.enclave.ResetStats()
	if _, err := v.enclave.DictSearch(meta, s, nil, q); err != nil {
		t.Fatal(err)
	}
	st := v.enclave.Stats()
	// ED9 scans all |D| = |AV| = 6 entries, plus 2 bound decryptions.
	if st.Loads != 6 {
		t.Errorf("Loads = %d, want 6", st.Loads)
	}
	if st.Decryptions != 8 {
		t.Errorf("Decryptions = %d, want 8", st.Decryptions)
	}
	if st.BytesLoaded == 0 {
		t.Error("BytesLoaded = 0")
	}
}

func TestDictSearchRejectsWrongColumnQuery(t *testing.T) {
	// A range encrypted for a different column must not decrypt: the
	// per-column key separation holds across the ECALL boundary.
	v := newEnv(t, enclave.Config{})
	col := paperColumn()
	meta := enclave.ColumnMeta{Table: "t1", Column: "c", Kind: dict.ED1, MaxLen: 16}
	s := v.buildColumn(t, dict.ED1, "t1", "c", col, 16, 0)
	q := v.encRange(t, "t1", "other", search.Eq([]byte("Hans")))
	if _, err := v.enclave.DictSearch(meta, s, nil, q); !errors.Is(err, enclave.ErrBadRange) {
		t.Errorf("err = %v, want ErrBadRange", err)
	}
}

func TestDictSearchRejectsTamperedRotationOffset(t *testing.T) {
	v := newEnv(t, enclave.Config{})
	col := paperColumn()
	meta := enclave.ColumnMeta{Table: "t1", Column: "c", Kind: dict.ED2, MaxLen: 16}
	s := v.buildColumn(t, dict.ED2, "t1", "c", col, 16, 0)
	q := v.encRange(t, "t1", "c", search.Eq([]byte("Hans")))
	bad := append([]byte(nil), s.EncRndOffset...)
	bad[len(bad)-1] ^= 1
	if _, err := v.enclave.DictSearch(meta, s, bad, q); !errors.Is(err, enclave.ErrBadRotOffset) {
		t.Errorf("err = %v, want ErrBadRotOffset", err)
	}
}

func TestDictSearchBudgetExceeded(t *testing.T) {
	v := newEnv(t, enclave.Config{MemoryBudget: 64, Identity: testIdentity})
	col := paperColumn()
	meta := enclave.ColumnMeta{Table: "t1", Column: "c", Kind: dict.ED1, MaxLen: 16}
	s := v.buildColumn(t, dict.ED1, "t1", "c", col, 16, 0)
	q := v.encRange(t, "t1", "c", search.Eq([]byte("Hans")))
	if _, err := v.enclave.DictSearch(meta, s, nil, q); !errors.Is(err, enclave.ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

// recordingObserver captures the access pattern, as the honest-but-curious
// attacker of paper §3.2 would.
type recordingObserver struct {
	mu      sync.Mutex
	indices []int
}

func (o *recordingObserver) Access(table, column string, index int) {
	o.mu.Lock()
	o.indices = append(o.indices, index)
	o.mu.Unlock()
}

func TestObserverSeesBinarySearchPattern(t *testing.T) {
	obs := &recordingObserver{}
	v := newEnv(t, enclave.Config{Observer: obs, Identity: testIdentity})
	col := paperColumn()
	meta := enclave.ColumnMeta{Table: "t1", Column: "c", Kind: dict.ED1, MaxLen: 16}
	s := v.buildColumn(t, dict.ED1, "t1", "c", col, 16, 0)
	q := v.encRange(t, "t1", "c", search.Eq([]byte("Hans")))
	if _, err := v.enclave.DictSearch(meta, s, nil, q); err != nil {
		t.Fatal(err)
	}
	if len(obs.indices) == 0 {
		t.Fatal("observer saw no accesses")
	}
	// O(log |D|): a 4-entry sorted dictionary needs at most 2*3 probes.
	if len(obs.indices) > 6 {
		t.Errorf("sorted search touched %d entries, want <= 6", len(obs.indices))
	}
}

func TestReencryptValueProducesFreshCiphertext(t *testing.T) {
	v := newEnv(t, enclave.Config{})
	meta := enclave.ColumnMeta{Table: "t1", Column: "c", Kind: dict.ED9, MaxLen: 16}
	key, _ := pae.Derive(v.master, "t1", "c")
	c, _ := pae.NewCipher(key)
	ct, _ := c.Encrypt([]byte("newvalue"))
	out, err := v.enclave.ReencryptValue(meta, ct)
	if err != nil {
		t.Fatalf("ReencryptValue: %v", err)
	}
	if string(out) == string(ct) {
		t.Error("re-encryption returned the identical ciphertext")
	}
	pt, err := c.Decrypt(out)
	if err != nil || string(pt) != "newvalue" {
		t.Errorf("decrypt = %q, %v", pt, err)
	}
}

func TestReencryptValueRejectsOversized(t *testing.T) {
	v := newEnv(t, enclave.Config{})
	meta := enclave.ColumnMeta{Table: "t1", Column: "c", Kind: dict.ED9, MaxLen: 4}
	key, _ := pae.Derive(v.master, "t1", "c")
	c, _ := pae.NewCipher(key)
	ct, _ := c.Encrypt([]byte("waytoolong"))
	if _, err := v.enclave.ReencryptValue(meta, ct); err == nil {
		t.Error("oversized value accepted")
	}
}

func TestMergeColumnsRebuildsValidRows(t *testing.T) {
	v := newEnv(t, enclave.Config{})
	mainCol := [][]byte{[]byte("a"), []byte("b"), []byte("c")}
	deltaCol := [][]byte{[]byte("d"), []byte("b")}
	meta := enclave.ColumnMeta{Table: "t1", Column: "c", Kind: dict.ED5, MaxLen: 8}
	mainSplit := v.buildColumn(t, dict.ED5, "t1", "c", mainCol, 8, 3)
	deltaSplit := v.buildColumn(t, dict.ED9, "t1", "c", deltaCol, 8, 0)

	// Row 1 of main ("b") was deleted; everything else is valid.
	merged, err := v.enclave.MergeColumns(meta, 3,
		enclave.MergeInput{Region: mainSplit, AV: mainSplit.Packed(), Valid: []bool{true, false, true}},
		enclave.MergeInput{Region: deltaSplit, AV: deltaSplit.Packed()},
	)
	if err != nil {
		t.Fatalf("MergeColumns: %v", err)
	}
	key, _ := pae.Derive(v.master, "t1", "c")
	c, _ := pae.NewCipher(key)
	wantRows := [][]byte{[]byte("a"), []byte("c"), []byte("d"), []byte("b")}
	if err := merged.VerifyCorrectness(wantRows, c.Decrypt); err != nil {
		t.Errorf("merged split incorrect: %v", err)
	}
	if merged.Kind != dict.ED5 {
		t.Errorf("merged kind = %v, want ED5", merged.Kind)
	}
}

func TestMergeColumnsEmptyDelta(t *testing.T) {
	v := newEnv(t, enclave.Config{})
	mainCol := [][]byte{[]byte("x"), []byte("y")}
	meta := enclave.ColumnMeta{Table: "t1", Column: "c", Kind: dict.ED1, MaxLen: 8}
	mainSplit := v.buildColumn(t, dict.ED1, "t1", "c", mainCol, 8, 0)
	merged, err := v.enclave.MergeColumns(meta, 0,
		enclave.MergeInput{Region: mainSplit, AV: mainSplit.Packed()},
		enclave.MergeInput{},
	)
	if err != nil {
		t.Fatalf("MergeColumns: %v", err)
	}
	if merged.Rows() != 2 {
		t.Errorf("merged rows = %d, want 2", merged.Rows())
	}
}

func TestProvisionedReportsState(t *testing.T) {
	p, _ := enclave.NewPlatform()
	e, err := p.Launch(enclave.Config{Identity: testIdentity})
	if err != nil {
		t.Fatal(err)
	}
	if e.Provisioned() {
		t.Error("fresh enclave claims provisioned")
	}
	v := newEnv(t, enclave.Config{})
	if !v.enclave.Provisioned() {
		t.Error("provisioned enclave claims unprovisioned")
	}
}

func TestMeasurementStable(t *testing.T) {
	if enclave.Measure("a") == enclave.Measure("b") {
		t.Error("different identities share a measurement")
	}
	if enclave.Measure("a") != enclave.Measure("a") {
		t.Error("measurement not deterministic")
	}
}

// TestConcurrentBuildECalls drives BuildColumn from many goroutines at once:
// the engine's per-table locking allows build and merge ECALLs on different
// tables to overlap, so the enclave's shuffle/rotation randomness must not
// be shared unsynchronized. Run with -race; the splits must also each be
// internally consistent.
func TestConcurrentBuildECalls(t *testing.T) {
	// Single-core hosts serialize goroutines tightly enough to mask the
	// race this guards against; force real thread-level interleaving.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	v := newEnv(t, enclave.Config{})
	var col [][]byte
	for i := 0; i < 200; i++ {
		col = append(col, []byte{byte('a' + i%7), byte('a' + i%13)})
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			kind := []dict.Kind{dict.ED2, dict.ED5, dict.ED8}[g%3]
			for i := 0; i < 5; i++ {
				meta := enclave.ColumnMeta{
					Table:  "tcb",
					Column: []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7"}[g],
					Kind:   kind,
					MaxLen: 4,
				}
				split, err := v.enclave.BuildColumn(meta, 3, col)
				if err != nil {
					errs <- err
					return
				}
				if split.Rows() != len(col) {
					errs <- errors.New("concurrent build: row count mismatch")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
