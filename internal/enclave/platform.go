// Package enclave simulates the Intel SGX trusted execution environment
// that EncDBDB runs its dictionary searches in (paper §2.2, §3.1).
//
// Real SGX provides: (1) an isolated memory region whose contents other
// software cannot read, (2) a measured launch whose measurement can be
// remotely attested through Intel's infrastructure, (3) a secure channel
// bootstrapped from attestation for provisioning secrets, and (4) a strict
// ECALL boundary with per-entry cost. This package models all four in
// software:
//
//   - Enclave holds the provisioned master key and derived column keys in
//     private fields; ciphertexts remain in untrusted memory (search.Region)
//     and are pulled across the boundary one entry at a time.
//   - Platform plays Intel's role as root of trust: it launches enclaves,
//     measures their code identity, and verifies quotes (HMAC over the
//     measurement under a platform key only the Platform holds).
//   - Provisioning runs an X25519 key agreement against the public key bound
//     into the quote, exactly mirroring SGX remote attestation followed by
//     secret deployment over the established channel (paper Fig. 5, steps
//     1-2).
//   - Every ECALL, untrusted-memory load, copied byte and decryption is
//     counted (Stats), and an AccessObserver can record the exact untrusted
//     access pattern an honest-but-curious operating system would observe —
//     the attacker model of paper §3.2 — which the leakage evaluation uses.
package enclave

import (
	"bytes"
	"crypto/ecdh"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"

	"github.com/encdbdb/encdbdb/internal/pae"
)

// Platform simulates the hardware/Intel root of trust: it launches enclaves
// and verifies their quotes. A data owner trusts a Platform the way they
// trust Intel's attestation service.
type Platform struct {
	key []byte // platform attestation key (stands in for Intel's EPID/DCAP keys)
}

// NewPlatform creates a platform with a fresh attestation key.
func NewPlatform() (*Platform, error) {
	key := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, key); err != nil {
		return nil, fmt.Errorf("enclave: platform key: %w", err)
	}
	return &Platform{key: key}, nil
}

// Measurement is the SGX-style enclave measurement (MRENCLAVE): the SHA-256
// hash of the enclave's initial code and data, here represented by its code
// identity string.
type Measurement [32]byte

// Measure computes the measurement for a code identity string. Data owners
// compute the expected measurement themselves from the identity they audited
// (the paper argues the 1129-line enclave is small enough to verify).
func Measure(identity string) Measurement {
	return sha256.Sum256([]byte("encdbdb/enclave/" + identity))
}

// Quote is a remote attestation quote: it binds the enclave's measurement
// and channel public key to a verifier-chosen nonce, authenticated by the
// platform.
type Quote struct {
	Measurement Measurement
	PublicKey   []byte // enclave's X25519 public key for provisioning
	Nonce       []byte
	MAC         []byte
}

// quoteMAC computes the platform's authentication tag over a quote body.
func (p *Platform) quoteMAC(m Measurement, pub, nonce []byte) []byte {
	mac := hmac.New(sha256.New, p.key)
	mac.Write(m[:])
	var lens [8]byte
	lens[0] = byte(len(pub) >> 8)
	lens[1] = byte(len(pub))
	mac.Write(lens[:2])
	mac.Write(pub)
	mac.Write(nonce)
	return mac.Sum(nil)
}

// Errors returned by quote verification and provisioning.
var (
	ErrQuoteMAC         = errors.New("enclave: quote authentication failed")
	ErrQuoteMeasurement = errors.New("enclave: quote measurement mismatch")
	ErrQuoteNonce       = errors.New("enclave: quote nonce mismatch")
)

// VerifyQuote checks that q was issued by this platform for an enclave with
// the expected measurement and the verifier's nonce.
func (p *Platform) VerifyQuote(q Quote, expected Measurement, nonce []byte) error {
	if !hmac.Equal(q.MAC, p.quoteMAC(q.Measurement, q.PublicKey, q.Nonce)) {
		return ErrQuoteMAC
	}
	if q.Measurement != expected {
		return ErrQuoteMeasurement
	}
	if !bytes.Equal(q.Nonce, nonce) {
		return ErrQuoteNonce
	}
	return nil
}

// SealedKey is a master key encrypted to an attested enclave: the data
// owner's half of the provisioning channel.
type SealedKey struct {
	OwnerPublicKey []byte // owner's ephemeral X25519 public key
	Ciphertext     []byte // PAE ciphertext of the master key under the channel key
}

// SealKey encrypts the master database key SK_DB to the enclave whose
// (verified) quote is q, using an ephemeral X25519 key agreement. Only the
// enclave holding the quote's private key can unseal it.
func SealKey(q Quote, master pae.Key) (SealedKey, error) {
	curve := ecdh.X25519()
	enclavePub, err := curve.NewPublicKey(q.PublicKey)
	if err != nil {
		return SealedKey{}, fmt.Errorf("enclave: quote public key: %w", err)
	}
	ownerPriv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return SealedKey{}, fmt.Errorf("enclave: ephemeral key: %w", err)
	}
	shared, err := ownerPriv.ECDH(enclavePub)
	if err != nil {
		return SealedKey{}, fmt.Errorf("enclave: key agreement: %w", err)
	}
	ct, err := pae.Encrypt(channelKey(shared), master)
	if err != nil {
		return SealedKey{}, fmt.Errorf("enclave: seal master key: %w", err)
	}
	return SealedKey{OwnerPublicKey: ownerPriv.PublicKey().Bytes(), Ciphertext: ct}, nil
}

// channelKey derives the provisioning channel's AES key from the X25519
// shared secret.
func channelKey(shared []byte) pae.Key {
	mac := hmac.New(sha256.New, shared)
	mac.Write([]byte("encdbdb/provision/v1"))
	return pae.Key(mac.Sum(nil)[:pae.KeySize])
}
