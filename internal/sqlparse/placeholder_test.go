package sqlparse

import (
	"errors"
	"strings"
	"testing"
)

func TestParsePlaceholders(t *testing.T) {
	sel := mustParse(t, "SELECT c FROM t WHERE c >= ? AND c < ? AND d IN (?, 'x', ?)").(*Select)
	if got := NumParams(sel); got != 4 {
		t.Fatalf("NumParams = %d, want 4", got)
	}
	if sel.Where[0].Value != (Value{Param: 1}) || sel.Where[1].Value != (Value{Param: 2}) {
		t.Errorf("range placeholders = %+v", sel.Where)
	}
	in := sel.Where[2].Values
	if in[0] != (Value{Param: 3}) || in[1] != Lit("x") || in[2] != (Value{Param: 4}) {
		t.Errorf("in placeholders = %+v", in)
	}
}

func TestParsePlaceholderPositions(t *testing.T) {
	for sql, want := range map[string]int{
		"INSERT INTO t VALUES (?, ?)":                2,
		"UPDATE t SET c = ? WHERE d = ?":             2,
		"DELETE FROM t WHERE c BETWEEN ? AND ?":      2,
		"SELECT c FROM t WHERE c = 'literal'":        0,
		"SELECT c FROM t WHERE c BETWEEN 'a' AND ?":  1,
		"INSERT INTO t (a, b) VALUES ('x', ?)":       1,
		"UPDATE t SET a = 'x', b = ? WHERE c IN (?)": 2,
	} {
		st := mustParse(t, sql)
		if got := NumParams(st); got != want {
			t.Errorf("NumParams(%q) = %d, want %d", sql, got, want)
		}
	}
}

func TestBind(t *testing.T) {
	tmpl := mustParse(t, "SELECT c FROM t WHERE c >= ? AND c < ?")
	bound, err := Bind(tmpl, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	sel := bound.(*Select)
	if sel.Where[0].Value != Lit("a") || sel.Where[1].Value != Lit("b") {
		t.Errorf("bound = %+v", sel.Where)
	}
	// The template must stay reusable: its placeholders are untouched.
	if tmpl.(*Select).Where[0].Value != (Value{Param: 1}) {
		t.Errorf("template mutated: %+v", tmpl.(*Select).Where)
	}
	if bound2, err := Bind(tmpl, []string{"x", "y"}); err != nil {
		t.Fatal(err)
	} else if bound2.(*Select).Where[0].Value != Lit("x") {
		t.Errorf("rebind = %+v", bound2.(*Select).Where)
	}
}

func TestBindAllStatementKinds(t *testing.T) {
	for sql, args := range map[string][]string{
		"INSERT INTO t VALUES (?, ?)":           {"a", "b"},
		"UPDATE t SET c = ? WHERE d = ?":        {"a", "b"},
		"DELETE FROM t WHERE c BETWEEN ? AND ?": {"a", "b"},
		"SELECT c FROM t WHERE c IN (?, ?)":     {"a", "b"},
	} {
		st := mustParse(t, sql)
		bound, err := Bind(st, args)
		if err != nil {
			t.Fatalf("Bind(%q): %v", sql, err)
		}
		if NumParams(bound) != 0 {
			t.Errorf("Bind(%q) left placeholders: %+v", sql, bound)
		}
		if NumParams(st) != len(args) {
			t.Errorf("Bind(%q) mutated the template", sql)
		}
	}
}

func TestBindArgCountMismatch(t *testing.T) {
	st := mustParse(t, "SELECT c FROM t WHERE c = ?")
	if _, err := Bind(st, nil); err == nil {
		t.Error("binding 0 args to 1 placeholder succeeded")
	}
	if _, err := Bind(st, []string{"a", "b"}); err == nil {
		t.Error("binding 2 args to 1 placeholder succeeded")
	}
	// No placeholders + no args returns the statement unchanged.
	plain := mustParse(t, "SELECT c FROM t WHERE c = 'x'")
	if bound, err := Bind(plain, nil); err != nil || bound != plain {
		t.Errorf("Bind(no-params) = %v, %v", bound, err)
	}
}

func TestPlaceholderOutsideValuePosition(t *testing.T) {
	for _, sql := range []string{
		"SELECT ? FROM t",
		"CREATE TABLE t (c ED1(?))",
		"SELECT c FROM t WHERE ? = 'x'",
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestSplitScript(t *testing.T) {
	frags := SplitScript("SELECT a FROM t;  INSERT INTO t VALUES ('x;y') ; DROP TABLE t;")
	want := []Fragment{
		{SQL: "SELECT a FROM t", Pos: 0},
		{SQL: "INSERT INTO t VALUES ('x;y')", Pos: 18},
		{SQL: "DROP TABLE t", Pos: 49},
	}
	if len(frags) != len(want) {
		t.Fatalf("fragments = %+v", frags)
	}
	for i, w := range want {
		if frags[i] != w {
			t.Errorf("fragment %d = %+v, want %+v", i, frags[i], w)
		}
	}
}

func TestParseScript(t *testing.T) {
	stmts, err := ParseScript("CREATE TABLE t (c ED1(5)); INSERT INTO t VALUES ('x'); SELECT c FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("statements = %d", len(stmts))
	}
	if _, ok := stmts[1].(*Insert); !ok {
		t.Errorf("stmts[1] = %T", stmts[1])
	}
}

// TestParseScriptErrorCarriesStatementAndOffset pins the batch diagnostics: a
// bad predicate in the middle of a script reports which statement failed and
// the absolute byte offset of the offending token in the whole script.
func TestParseScriptErrorCarriesStatementAndOffset(t *testing.T) {
	script := "SELECT a FROM t; SELECT b FROM t WHERE b !! 'x'; SELECT c FROM t"
	_, err := ParseScript(script)
	if err == nil {
		t.Fatal("expected error")
	}
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("error type %T", err)
	}
	if se.Stmt != 1 {
		t.Errorf("Stmt = %d, want 1", se.Stmt)
	}
	if want := strings.Index(script, "!!"); se.Pos != want {
		t.Errorf("Pos = %d, want absolute offset %d", se.Pos, want)
	}
	if !strings.Contains(err.Error(), "statement 1") {
		t.Errorf("error %q does not name the statement", err)
	}
}

func TestParseCountAdvances(t *testing.T) {
	before := ParseCount()
	mustParse(t, "SELECT c FROM t")
	if ParseCount() != before+1 {
		t.Errorf("ParseCount did not advance by 1")
	}
}
