package sqlparse

import "testing"

// FuzzParse drives the placeholder-aware parser with arbitrary input: it must
// never panic, and anything it accepts must survive NumParams counting and a
// full Bind round (the prepared-statement hot path).
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"CREATE TABLE t1 (fname ED5(30) BSMAX 10, city ED1(20), note PLAIN ED3(40))",
		"SELECT fname, city FROM t1 WHERE fname >= 'A' AND fname < 'F'",
		"SELECT c FROM t WHERE c >= ? AND c < ? AND d IN (?, 'x', ?)",
		"SELECT COUNT(*) FROM t1 WHERE city = ?",
		"SELECT MIN(p), MAX(p) FROM t WHERE q BETWEEN ? AND ? ORDER BY p DESC LIMIT 3",
		"INSERT INTO t1 (fname, city) VALUES (?, 'London')",
		"INSERT INTO t1 VALUES ('O''Brien', ?)",
		"UPDATE t1 SET city = ?, fname = 'Eve' WHERE fname = ?",
		"DELETE FROM t1 WHERE city IN (?, ?)",
		"MERGE TABLE t1 ASYNC",
		"MERGE STATUS t1",
		"DROP TABLE t1;",
		"SELECT a FROM t; INSERT INTO t VALUES ('x;y'); DROP TABLE t",
		"SELECT * FROM t WHERE c = 'unterminated",
		"??;?'?;;",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		st, err := Parse(input)
		if err != nil {
			ParseScript(input) // must not panic either
			return
		}
		n := NumParams(st)
		if n < 0 {
			t.Fatalf("NumParams(%q) = %d", input, n)
		}
		args := make([]string, n)
		for i := range args {
			args[i] = "v"
		}
		bound, err := Bind(st, args)
		if err != nil {
			t.Fatalf("Bind(%q, %d args): %v", input, n, err)
		}
		if NumParams(bound) != 0 {
			t.Fatalf("Bind(%q) left placeholders", input)
		}
	})
}
