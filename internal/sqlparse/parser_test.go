package sqlparse

import (
	"strings"
	"testing"

	"github.com/encdbdb/encdbdb/internal/dict"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	st, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return st
}

func TestParseCreateTable(t *testing.T) {
	st := mustParse(t, "CREATE TABLE t1 (fname ED5(30) BSMAX 10, city ED1(20), note PLAIN ED3(40))")
	ct, ok := st.(*CreateTable)
	if !ok {
		t.Fatalf("got %T, want *CreateTable", st)
	}
	if ct.Table != "t1" {
		t.Errorf("table = %q", ct.Table)
	}
	want := []ColumnSpec{
		{Name: "fname", Kind: dict.ED5, MaxLen: 30, BSMax: 10},
		{Name: "city", Kind: dict.ED1, MaxLen: 20},
		{Name: "note", Kind: dict.ED3, MaxLen: 40, Plain: true},
	}
	if len(ct.Columns) != len(want) {
		t.Fatalf("columns = %d, want %d", len(ct.Columns), len(want))
	}
	for i, w := range want {
		if ct.Columns[i] != w {
			t.Errorf("column %d = %+v, want %+v", i, ct.Columns[i], w)
		}
	}
}

func TestParseCreateTableCaseInsensitiveKeywords(t *testing.T) {
	st := mustParse(t, "create table T2 (C ed1(5))")
	ct := st.(*CreateTable)
	if ct.Table != "t2" || ct.Columns[0].Name != "c" {
		t.Errorf("identifiers not folded: %+v", ct)
	}
	if ct.Columns[0].Kind != dict.ED1 {
		t.Errorf("kind = %v", ct.Columns[0].Kind)
	}
}

func TestParseSelect(t *testing.T) {
	st := mustParse(t, "SELECT fname, city FROM t1 WHERE fname >= 'A' AND fname < 'F' AND city = 'Berlin'")
	sel, ok := st.(*Select)
	if !ok {
		t.Fatalf("got %T, want *Select", st)
	}
	if sel.Table != "t1" || len(sel.Columns) != 2 || sel.Star || sel.Count {
		t.Errorf("select head = %+v", sel)
	}
	want := []Predicate{
		{Column: "fname", Op: OpGe, Value: Lit("A")},
		{Column: "fname", Op: OpLt, Value: Lit("F")},
		{Column: "city", Op: OpEq, Value: Lit("Berlin")},
	}
	if len(sel.Where) != len(want) {
		t.Fatalf("predicates = %d, want %d", len(sel.Where), len(want))
	}
	for i, w := range want {
		if !predEq(sel.Where[i], w) {
			t.Errorf("pred %d = %+v, want %+v", i, sel.Where[i], w)
		}
	}
}

func TestParseSelectStar(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t1").(*Select)
	if !sel.Star || sel.Count || len(sel.Where) != 0 {
		t.Errorf("sel = %+v", sel)
	}
}

func TestParseSelectCount(t *testing.T) {
	sel := mustParse(t, "SELECT COUNT(*) FROM t1 WHERE c = 'x'").(*Select)
	if !sel.Count || sel.Star {
		t.Errorf("sel = %+v", sel)
	}
}

func TestParseSelectBetween(t *testing.T) {
	sel := mustParse(t, "SELECT c FROM t WHERE c BETWEEN 'a' AND 'b'").(*Select)
	want := Predicate{Column: "c", Op: OpBetween, Value: Lit("a"), Value2: Lit("b")}
	if len(sel.Where) != 1 || !predEq(sel.Where[0], want) {
		t.Errorf("where = %+v, want %+v", sel.Where, want)
	}
}

func TestParseInsert(t *testing.T) {
	ins := mustParse(t, "INSERT INTO t1 (fname, city) VALUES ('Ada', 'London')").(*Insert)
	if ins.Table != "t1" {
		t.Errorf("table = %q", ins.Table)
	}
	if len(ins.Columns) != 2 || ins.Columns[0] != "fname" || ins.Columns[1] != "city" {
		t.Errorf("columns = %v", ins.Columns)
	}
	if len(ins.Values) != 2 || ins.Values[0] != Lit("Ada") || ins.Values[1] != Lit("London") {
		t.Errorf("values = %v", ins.Values)
	}
}

func TestParseInsertWithoutColumns(t *testing.T) {
	ins := mustParse(t, "INSERT INTO t1 VALUES ('Ada', 'London')").(*Insert)
	if len(ins.Columns) != 0 || len(ins.Values) != 2 {
		t.Errorf("ins = %+v", ins)
	}
}

func TestParseInsertColumnValueMismatch(t *testing.T) {
	if _, err := Parse("INSERT INTO t1 (a, b) VALUES ('x')"); err == nil {
		t.Error("mismatched insert accepted")
	}
}

func TestParseUpdate(t *testing.T) {
	up := mustParse(t, "UPDATE t1 SET city = 'Paris', fname = 'Eve' WHERE fname = 'Ada'").(*Update)
	if up.Table != "t1" || len(up.Set) != 2 || len(up.Where) != 1 {
		t.Fatalf("up = %+v", up)
	}
	if up.Set[0] != (Assignment{Column: "city", Value: Lit("Paris")}) {
		t.Errorf("set[0] = %+v", up.Set[0])
	}
}

func TestParseDelete(t *testing.T) {
	del := mustParse(t, "DELETE FROM t1 WHERE city = 'Paris'").(*Delete)
	if del.Table != "t1" || len(del.Where) != 1 {
		t.Errorf("del = %+v", del)
	}
}

func TestParseDeleteWithoutWhere(t *testing.T) {
	del := mustParse(t, "DELETE FROM t1").(*Delete)
	if len(del.Where) != 0 {
		t.Errorf("where = %+v", del.Where)
	}
}

func TestParseDropAndMerge(t *testing.T) {
	if st := mustParse(t, "DROP TABLE t1").(*DropTable); st.Table != "t1" {
		t.Errorf("drop table = %q", st.Table)
	}
	if st := mustParse(t, "MERGE TABLE t1").(*MergeTable); st.Table != "t1" || st.Async {
		t.Errorf("merge table = %q async = %v", st.Table, st.Async)
	}
	if st := mustParse(t, "MERGE TABLE t1 ASYNC").(*MergeTable); st.Table != "t1" || !st.Async {
		t.Errorf("merge table async = %+v", st)
	}
	if st := mustParse(t, "merge status t1").(*MergeStatus); st.Table != "t1" {
		t.Errorf("merge status = %q", st.Table)
	}
}

func TestParseStringEscapes(t *testing.T) {
	sel := mustParse(t, "SELECT c FROM t WHERE c = 'O''Brien'").(*Select)
	if sel.Where[0].Value != Lit("O'Brien") {
		t.Errorf("value = %q, want O'Brien", sel.Where[0].Value)
	}
}

func TestParseTrailingSemicolon(t *testing.T) {
	mustParse(t, "SELECT * FROM t1;")
}

func TestParseErrors(t *testing.T) {
	tests := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FORM t",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t WHERE c",
		"SELECT * FROM t WHERE c = ",
		"SELECT * FROM t WHERE c = 42",        // only string literals
		"SELECT * FROM t WHERE c LIKE 'x'",    // unsupported operator
		"SELECT * FROM t WHERE c BETWEEN 'a'", // missing AND
		"CREATE TABLE t",
		"CREATE TABLE t ()",
		"CREATE TABLE t (c ED0(5))",
		"CREATE TABLE t (c ED10(5))",
		"CREATE TABLE t (c VARCHAR(5))",
		"CREATE TABLE t (c ED1)",
		"INSERT INTO t",
		"INSERT t VALUES ('x')",
		"UPDATE t SET",
		"DELETE t1",
		"DROP t1",
		"MERGE t1",
		"MERGE TABLE t1 SYNC",
		"MERGE STATUS",
		"SELECT * FROM t extra",
		"SELECT * FROM t WHERE c = 'unterminated",
		"SELECT * FROM t WHERE c = 'x' AND",
		"~",
	}
	for _, sql := range tests {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestSyntaxErrorHasOffset(t *testing.T) {
	_, err := Parse("SELECT * FROM t WHERE c ~ 'x'")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Errorf("error %q lacks offset", err)
	}
}

func TestParseAggregates(t *testing.T) {
	sel := mustParse(t, "SELECT MIN(price), MAX(price), SUM(qty), AVG(qty) FROM t WHERE item = 'x'").(*Select)
	want := []Aggregate{
		{Func: AggMin, Column: "price"},
		{Func: AggMax, Column: "price"},
		{Func: AggSum, Column: "qty"},
		{Func: AggAvg, Column: "qty"},
	}
	if len(sel.Aggregates) != len(want) {
		t.Fatalf("aggregates = %+v", sel.Aggregates)
	}
	for i, w := range want {
		if sel.Aggregates[i] != w {
			t.Errorf("agg %d = %+v, want %+v", i, sel.Aggregates[i], w)
		}
	}
	if len(sel.Columns) != 0 || sel.Star || sel.Count {
		t.Errorf("sel head = %+v", sel)
	}
}

func TestParseAggregateLikeColumnName(t *testing.T) {
	// min/max without parentheses are ordinary column names.
	sel := mustParse(t, "SELECT min, max FROM t").(*Select)
	if len(sel.Aggregates) != 0 || len(sel.Columns) != 2 {
		t.Errorf("sel = %+v", sel)
	}
}

func TestParseOrderByLimit(t *testing.T) {
	sel := mustParse(t, "SELECT c FROM t WHERE c > 'a' ORDER BY c DESC LIMIT 10").(*Select)
	if sel.OrderBy != "c" || !sel.OrderDesc || sel.Limit != 10 {
		t.Errorf("sel = %+v", sel)
	}
	sel = mustParse(t, "SELECT c FROM t ORDER BY c ASC").(*Select)
	if sel.OrderBy != "c" || sel.OrderDesc || sel.Limit != -1 {
		t.Errorf("sel = %+v", sel)
	}
	sel = mustParse(t, "SELECT c FROM t LIMIT 5").(*Select)
	if sel.OrderBy != "" || sel.Limit != 5 {
		t.Errorf("sel = %+v", sel)
	}
}

func TestParseOrderLimitErrors(t *testing.T) {
	for _, sql := range []string{
		"SELECT c FROM t ORDER c",
		"SELECT c FROM t ORDER BY",
		"SELECT c FROM t LIMIT",
		"SELECT c FROM t LIMIT 'x'",
		"SELECT MIN() FROM t",
		"SELECT MIN(c FROM t",
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}

func TestAggFuncString(t *testing.T) {
	for f, want := range map[AggFunc]string{AggMin: "MIN", AggMax: "MAX", AggSum: "SUM", AggAvg: "AVG"} {
		if f.String() != want {
			t.Errorf("%d.String() = %q", f, f.String())
		}
	}
}

func TestCompareOpString(t *testing.T) {
	ops := map[CompareOp]string{
		OpEq: "=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=", OpBetween: "BETWEEN",
	}
	for op, want := range ops {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
}

// predEq compares predicates including the IN value list.
func predEq(a, b Predicate) bool {
	if a.Column != b.Column || a.Op != b.Op || a.Value != b.Value || a.Value2 != b.Value2 {
		return false
	}
	if len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			return false
		}
	}
	return true
}

func TestParseIn(t *testing.T) {
	sel := mustParse(t, "SELECT c FROM t WHERE c IN ('a', 'b', 'c')").(*Select)
	want := Predicate{Column: "c", Op: OpIn, Values: []Value{Lit("a"), Lit("b"), Lit("c")}}
	if len(sel.Where) != 1 || !predEq(sel.Where[0], want) {
		t.Errorf("where = %+v, want %+v", sel.Where, want)
	}
}

func TestParseInSingleMember(t *testing.T) {
	sel := mustParse(t, "SELECT c FROM t WHERE c IN ('only')").(*Select)
	if len(sel.Where) != 1 || len(sel.Where[0].Values) != 1 {
		t.Errorf("where = %+v", sel.Where)
	}
}

func TestParseInErrors(t *testing.T) {
	for _, sql := range []string{
		"SELECT c FROM t WHERE c IN",
		"SELECT c FROM t WHERE c IN ()",
		"SELECT c FROM t WHERE c IN ('a'",
		"SELECT c FROM t WHERE c IN ('a',)",
	} {
		if _, err := Parse(sql); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", sql)
		}
	}
}
