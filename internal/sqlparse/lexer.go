// Package sqlparse implements the SQL subset that fronts EncDBDB (paper §5:
// "The front-end query language of MonetDB is SQL. We implemented the nine
// encrypted dictionaries as SQL data types in the frontend").
//
// Supported statements:
//
//	CREATE TABLE t1 (fname ED5(30) BSMAX 10, city ED1(20), note PLAIN ED3(40))
//	SELECT fname, city FROM t1 WHERE fname >= 'A' AND fname < 'F'
//	SELECT * FROM t1
//	SELECT COUNT(*) FROM t1 WHERE city = 'Berlin'
//	SELECT fname FROM t1 WHERE fname BETWEEN 'A' AND 'C'
//	INSERT INTO t1 (fname, city) VALUES ('Ada', 'London')
//	INSERT INTO t1 VALUES ('Ada', 'London')
//	UPDATE t1 SET city = 'Paris' WHERE fname = 'Ada'
//	DELETE FROM t1 WHERE city = 'Paris'
//	DROP TABLE t1
//	MERGE TABLE t1            -- fold the delta store (paper §4.3)
//
// WHERE clauses are conjunctions of comparisons (=, <, <=, >, >=, BETWEEN)
// against string literals; the proxy later converts them into the uniform
// encrypted two-sided ranges of paper §4.2 step 5.
//
// Every value position — WHERE comparison operands, BETWEEN bounds, IN-list
// members, INSERT values, and UPDATE SET values — may instead be a '?'
// placeholder. Placeholders are numbered left to right; NumParams reports a
// statement's placeholder count and Bind substitutes arguments, which is how
// the proxy's prepared statements parse once and execute many times.
//
// Multi-statement scripts (semicolon-separated) are handled by SplitScript
// and ParseScript; their syntax errors carry the statement index and the
// absolute byte offset within the script, so a bad predicate in a batch
// pinpoints which statement and where.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota + 1
	tokIdent
	tokString
	tokNumber
	tokSymbol // ( ) , * = < <= > >=
)

type token struct {
	kind tokenKind
	text string // identifiers/keywords normalized to upper case; strings unquoted
	raw  string // original spelling (identifiers fold to lower case, Postgres-style)
	pos  int
}

// SyntaxError reports a parse failure with its byte offset in the input.
// For errors produced by ParseScript, Stmt is the 0-based index of the
// failing statement within the script and Pos is absolute within the whole
// script; for single-statement Parse, Stmt is -1 and Pos is relative to the
// statement.
type SyntaxError struct {
	Pos  int
	Stmt int
	Msg  string
}

func (e *SyntaxError) Error() string {
	if e.Stmt >= 0 {
		return fmt.Sprintf("sql: statement %d: syntax error at offset %d: %s", e.Stmt, e.Pos, e.Msg)
	}
	return fmt.Sprintf("sql: syntax error at offset %d: %s", e.Pos, e.Msg)
}

func errAt(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Stmt: -1, Msg: fmt.Sprintf(format, args...)}
}

// lex tokenizes the input. String literals use single quotes with ”
// escaping. Identifiers and keywords are case-insensitive.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			s, next, err := lexString(input, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, token{kind: tokString, text: s, pos: i})
			i = next
		case c == '(' || c == ')' || c == ',' || c == '*' || c == '=' || c == ';' || c == '?':
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		case c == '<' || c == '>':
			text := string(c)
			if i+1 < len(input) && input[i+1] == '=' {
				text += "="
			}
			toks = append(toks, token{kind: tokSymbol, text: text, pos: i})
			i += len(text)
		case c >= '0' && c <= '9':
			j := i
			for j < len(input) && input[j] >= '0' && input[j] <= '9' {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: input[i:j], pos: i})
			i = j
		case isIdentStart(rune(c)):
			j := i
			for j < len(input) && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			toks = append(toks, token{
				kind: tokIdent,
				text: strings.ToUpper(word),
				raw:  strings.ToLower(word),
				pos:  i,
			})
			i = j
		default:
			return nil, errAt(i, "unexpected character %q", c)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}

// lexString scans a single-quoted string literal starting at input[start].
func lexString(input string, start int) (value string, next int, err error) {
	var sb strings.Builder
	i := start + 1
	for i < len(input) {
		if input[i] != '\'' {
			sb.WriteByte(input[i])
			i++
			continue
		}
		if i+1 < len(input) && input[i+1] == '\'' { // escaped quote
			sb.WriteByte('\'')
			i += 2
			continue
		}
		return sb.String(), i + 1, nil
	}
	return "", 0, errAt(start, "unterminated string literal")
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isIdentPart(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
