package sqlparse

import (
	"strconv"
	"strings"
	"sync/atomic"

	"github.com/encdbdb/encdbdb/internal/dict"
)

// Value is one value position in a statement: either a string literal or a
// '?' placeholder awaiting an argument. Placeholders are numbered 1..N left
// to right; a literal has Param == 0.
type Value struct {
	S     string
	Param int
}

// Lit wraps a literal string value.
func Lit(s string) Value { return Value{S: s} }

// IsParam reports whether the value is an unbound placeholder.
func (v Value) IsParam() bool { return v.Param != 0 }

// Statement is a parsed SQL statement: one of *CreateTable, *Select,
// *Insert, *Update, *Delete, *DropTable, *MergeTable, *MergeStatus.
type Statement interface {
	stmt()
}

// ColumnSpec is one column declaration of a CREATE TABLE statement.
type ColumnSpec struct {
	Name   string
	Kind   dict.Kind
	MaxLen int
	BSMax  int
	Plain  bool
}

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Table   string
	Columns []ColumnSpec
}

func (*CreateTable) stmt() {}

// CompareOp is a WHERE-clause comparison operator.
type CompareOp int

// Comparison operators. Between carries both bounds; In carries a value
// list.
const (
	OpEq CompareOp = iota + 1
	OpLt
	OpLe
	OpGt
	OpGe
	OpBetween
	OpIn
)

// String returns the SQL spelling of the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpBetween:
		return "BETWEEN"
	case OpIn:
		return "IN"
	default:
		return "?"
	}
}

// Predicate is one comparison of the conjunctive WHERE clause.
type Predicate struct {
	Column string
	Op     CompareOp
	Value  Value
	// Value2 is the upper bound for BETWEEN.
	Value2 Value
	// Values is the member list for IN.
	Values []Value
}

// AggFunc is an aggregate function in a SELECT list.
type AggFunc int

// Aggregate functions. COUNT is represented by the Select.Count flag when
// it is COUNT(*); column aggregates use Aggregate entries.
const (
	AggMin AggFunc = iota + 1
	AggMax
	AggSum
	AggAvg
)

// String returns the SQL spelling of the aggregate function.
func (f AggFunc) String() string {
	switch f {
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	default:
		return "?"
	}
}

// Aggregate is one aggregate select item, e.g. MIN(price).
type Aggregate struct {
	Func   AggFunc
	Column string
}

// Select is a SELECT statement.
type Select struct {
	Table string
	// Columns are the projected column names; empty with Star set means
	// all columns.
	Columns []string
	Star    bool
	// Count marks SELECT COUNT(*).
	Count bool
	// Aggregates holds column aggregates (MIN/MAX/SUM/AVG); mutually
	// exclusive with Columns/Star/Count.
	Aggregates []Aggregate
	Where      []Predicate
	// OrderBy optionally names the sort column ("" = unsorted result).
	OrderBy   string
	OrderDesc bool
	// Limit caps the result rows; negative means no limit.
	Limit int
}

func (*Select) stmt() {}

// Insert is an INSERT statement. Columns may be empty (schema order).
type Insert struct {
	Table   string
	Columns []string
	Values  []Value
}

func (*Insert) stmt() {}

// Assignment is one SET clause of an UPDATE.
type Assignment struct {
	Column string
	Value  Value
}

// Update is an UPDATE statement.
type Update struct {
	Table string
	Set   []Assignment
	Where []Predicate
}

func (*Update) stmt() {}

// Delete is a DELETE statement.
type Delete struct {
	Table string
	Where []Predicate
}

func (*Delete) stmt() {}

// DropTable is a DROP TABLE statement.
type DropTable struct {
	Table string
}

func (*DropTable) stmt() {}

// MergeTable is the EncDBDB extension statement MERGE TABLE t [ASYNC],
// triggering a delta-store merge (paper §4.3). The plain form waits for the
// merge to be applied; ASYNC starts a background merge and returns
// immediately — its progress is observable with MERGE STATUS.
type MergeTable struct {
	Table string
	Async bool
}

func (*MergeTable) stmt() {}

// MergeStatus is the EncDBDB extension statement MERGE STATUS t, reporting
// the table's delta/merge lifecycle state (generation, in-flight merge,
// delta sizes).
type MergeStatus struct {
	Table string
}

func (*MergeStatus) stmt() {}

// parses counts Parse invocations process-wide; tests and benchmarks use it
// to prove prepared statements amortize parsing.
var parses atomic.Uint64

// ParseCount returns the number of Parse calls made so far process-wide.
func ParseCount() uint64 { return parses.Load() }

// Parse parses one SQL statement.
func Parse(input string) (Statement, error) {
	parses.Add(1)
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if p.peek().text == ";" {
		p.next()
	}
	if tok := p.peek(); tok.kind != tokEOF {
		return nil, errAt(tok.pos, "unexpected trailing input %q", tok.text)
	}
	return st, nil
}

// Fragment is one statement's text within a multi-statement script, with its
// absolute byte offset in the script.
type Fragment struct {
	SQL string
	Pos int
}

// SplitScript splits a semicolon-separated script into statement fragments.
// Semicolons inside single-quoted string literals do not split (the grammar
// escapes a quote as ”, so plain quote-state toggling stays correct). Empty
// fragments are dropped.
func SplitScript(script string) []Fragment {
	var out []Fragment
	start := 0
	inQuote := false
	flush := func(end int) {
		frag := script[start:end]
		trimmed := strings.TrimSpace(frag)
		if trimmed != "" {
			out = append(out, Fragment{SQL: trimmed, Pos: start + strings.Index(frag, trimmed)})
		}
		start = end + 1
	}
	for i := 0; i < len(script); i++ {
		switch script[i] {
		case '\'':
			inQuote = !inQuote
		case ';':
			if !inQuote {
				flush(i)
			}
		}
	}
	if start <= len(script) {
		flush(len(script))
	}
	return out
}

// ParseScript parses a semicolon-separated script into statements. A syntax
// error identifies the failing statement: its SyntaxError carries the 0-based
// statement index and the absolute byte offset within the whole script.
func ParseScript(script string) ([]Statement, error) {
	frags := SplitScript(script)
	stmts := make([]Statement, 0, len(frags))
	for i, frag := range frags {
		st, err := Parse(frag.SQL)
		if err != nil {
			if se, ok := err.(*SyntaxError); ok {
				return nil, &SyntaxError{Pos: se.Pos + frag.Pos, Stmt: i, Msg: se.Msg}
			}
			return nil, err
		}
		stmts = append(stmts, st)
	}
	return stmts, nil
}

// walkValues visits every value position of a statement in placeholder
// numbering order.
func walkValues(st Statement, f func(*Value)) {
	preds := func(where []Predicate) {
		for i := range where {
			p := &where[i]
			f(&p.Value)
			f(&p.Value2)
			for j := range p.Values {
				f(&p.Values[j])
			}
		}
	}
	switch s := st.(type) {
	case *Select:
		preds(s.Where)
	case *Insert:
		for i := range s.Values {
			f(&s.Values[i])
		}
	case *Update:
		for i := range s.Set {
			f(&s.Set[i].Value)
		}
		preds(s.Where)
	case *Delete:
		preds(s.Where)
	}
}

// NumParams returns the number of '?' placeholders in a statement.
func NumParams(st Statement) int {
	n := 0
	walkValues(st, func(v *Value) {
		if v.IsParam() {
			n++
		}
	})
	return n
}

// Bind returns a deep copy of the statement with every '?' placeholder
// replaced by the corresponding argument (placeholder i takes args[i-1]).
// The argument count must match NumParams exactly; the input statement is
// left untouched, so a prepared template can be bound many times.
func Bind(st Statement, args []string) (Statement, error) {
	want := NumParams(st)
	if len(args) != want {
		return nil, errAt(0, "statement has %d placeholders but %d arguments were bound", want, len(args))
	}
	if want == 0 {
		return st, nil
	}
	out := clone(st)
	walkValues(out, func(v *Value) {
		if v.IsParam() {
			*v = Value{S: args[v.Param-1]}
		}
	})
	return out, nil
}

// clone deep-copies a statement's bindable parts (predicate, insert, and
// assignment values); fixed parts are shared.
func clone(st Statement) Statement {
	clonePreds := func(where []Predicate) []Predicate {
		out := append([]Predicate(nil), where...)
		for i := range out {
			out[i].Values = append([]Value(nil), out[i].Values...)
		}
		return out
	}
	switch s := st.(type) {
	case *Select:
		c := *s
		c.Where = clonePreds(s.Where)
		return &c
	case *Insert:
		c := *s
		c.Values = append([]Value(nil), s.Values...)
		return &c
	case *Update:
		c := *s
		c.Set = append([]Assignment(nil), s.Set...)
		c.Where = clonePreds(s.Where)
		return &c
	case *Delete:
		c := *s
		c.Where = clonePreds(s.Where)
		return &c
	default:
		return st
	}
}

type parser struct {
	toks    []token
	i       int
	nparams int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// expect consumes the next token if it matches the given upper-case keyword
// or symbol text.
func (p *parser) expect(text string) (token, error) {
	t := p.next()
	if t.text != text {
		return t, errAt(t.pos, "expected %q, found %q", text, t.text)
	}
	return t, nil
}

func (p *parser) accept(text string) bool {
	if p.peek().text == text {
		p.next()
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", errAt(t.pos, "expected identifier, found %q", t.text)
	}
	return t.raw, nil
}

// value parses one value position: a string literal or a '?' placeholder.
func (p *parser) value() (Value, error) {
	t := p.next()
	switch {
	case t.kind == tokString:
		return Value{S: t.text}, nil
	case t.kind == tokSymbol && t.text == "?":
		p.nparams++
		return Value{Param: p.nparams}, nil
	default:
		return Value{}, errAt(t.pos, "expected string literal or ?, found %q", t.text)
	}
}

func (p *parser) number() (int, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, errAt(t.pos, "expected number, found %q", t.text)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, errAt(t.pos, "bad number %q", t.text)
	}
	return n, nil
}

func (p *parser) statement() (Statement, error) {
	t := p.peek()
	switch t.text {
	case "CREATE":
		return p.createTable()
	case "SELECT":
		return p.selectStmt()
	case "INSERT":
		return p.insertStmt()
	case "UPDATE":
		return p.updateStmt()
	case "DELETE":
		return p.deleteStmt()
	case "DROP":
		return p.dropTable()
	case "MERGE":
		return p.mergeTable()
	default:
		return nil, errAt(t.pos, "expected statement, found %q", t.text)
	}
}

func (p *parser) createTable() (Statement, error) {
	p.next() // CREATE
	if _, err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	var cols []ColumnSpec
	for {
		col, err := p.columnSpec()
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
		if p.accept(",") {
			continue
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		break
	}
	return &CreateTable{Table: name, Columns: cols}, nil
}

// columnSpec parses `name [PLAIN] EDk(maxlen) [BSMAX n]`.
func (p *parser) columnSpec() (ColumnSpec, error) {
	var spec ColumnSpec
	name, err := p.ident()
	if err != nil {
		return spec, err
	}
	spec.Name = name
	if p.accept("PLAIN") {
		spec.Plain = true
	}
	kindTok := p.next()
	if kindTok.kind != tokIdent {
		return spec, errAt(kindTok.pos, "expected dictionary type, found %q", kindTok.text)
	}
	kind, err := dict.ParseKind(kindTok.text)
	if err != nil {
		return spec, errAt(kindTok.pos, "unknown dictionary type %q (want ED1..ED9)", kindTok.text)
	}
	spec.Kind = kind
	if _, err := p.expect("("); err != nil {
		return spec, err
	}
	if spec.MaxLen, err = p.number(); err != nil {
		return spec, err
	}
	if _, err := p.expect(")"); err != nil {
		return spec, err
	}
	if p.accept("BSMAX") {
		if spec.BSMax, err = p.number(); err != nil {
			return spec, err
		}
	}
	return spec, nil
}

func (p *parser) selectStmt() (Statement, error) {
	p.next() // SELECT
	sel := &Select{Limit: -1}
	switch {
	case p.accept("*"):
		sel.Star = true
	case p.accept("COUNT"):
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		if _, err := p.expect("*"); err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		sel.Count = true
	case p.peekAggregate():
		for {
			agg, err := p.aggregate()
			if err != nil {
				return nil, err
			}
			sel.Aggregates = append(sel.Aggregates, agg)
			if !p.accept(",") {
				break
			}
		}
	default:
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			sel.Columns = append(sel.Columns, col)
			if !p.accept(",") {
				break
			}
		}
	}
	if _, err := p.expect("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	sel.Table = table
	if sel.Where, err = p.whereClause(); err != nil {
		return nil, err
	}
	if err := p.orderLimit(sel); err != nil {
		return nil, err
	}
	return sel, nil
}

// peekAggregate reports whether the next tokens start an aggregate call.
func (p *parser) peekAggregate() bool {
	t := p.peek()
	switch t.text {
	case "MIN", "MAX", "SUM", "AVG":
		return p.toks[p.i+1].text == "("
	default:
		return false
	}
}

// aggregate parses FUNC(column).
func (p *parser) aggregate() (Aggregate, error) {
	var agg Aggregate
	t := p.next()
	switch t.text {
	case "MIN":
		agg.Func = AggMin
	case "MAX":
		agg.Func = AggMax
	case "SUM":
		agg.Func = AggSum
	case "AVG":
		agg.Func = AggAvg
	default:
		return agg, errAt(t.pos, "expected aggregate function, found %q", t.text)
	}
	if _, err := p.expect("("); err != nil {
		return agg, err
	}
	col, err := p.ident()
	if err != nil {
		return agg, err
	}
	agg.Column = col
	if _, err := p.expect(")"); err != nil {
		return agg, err
	}
	return agg, nil
}

// orderLimit parses optional `ORDER BY col [ASC|DESC]` and `LIMIT n`.
func (p *parser) orderLimit(sel *Select) error {
	if p.accept("ORDER") {
		if _, err := p.expect("BY"); err != nil {
			return err
		}
		col, err := p.ident()
		if err != nil {
			return err
		}
		sel.OrderBy = col
		if p.accept("DESC") {
			sel.OrderDesc = true
		} else {
			p.accept("ASC")
		}
	}
	if p.accept("LIMIT") {
		n, err := p.number()
		if err != nil {
			return err
		}
		sel.Limit = n
	}
	return nil
}

// whereClause parses an optional `WHERE pred [AND pred]...`.
func (p *parser) whereClause() ([]Predicate, error) {
	if !p.accept("WHERE") {
		return nil, nil
	}
	var preds []Predicate
	for {
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred)
		if !p.accept("AND") {
			return preds, nil
		}
	}
}

func (p *parser) predicate() (Predicate, error) {
	var pred Predicate
	col, err := p.ident()
	if err != nil {
		return pred, err
	}
	pred.Column = col
	opTok := p.next()
	switch opTok.text {
	case "=":
		pred.Op = OpEq
	case "<":
		pred.Op = OpLt
	case "<=":
		pred.Op = OpLe
	case ">":
		pred.Op = OpGt
	case ">=":
		pred.Op = OpGe
	case "BETWEEN":
		pred.Op = OpBetween
		if pred.Value, err = p.value(); err != nil {
			return pred, err
		}
		if _, err := p.expect("AND"); err != nil {
			return pred, err
		}
		if pred.Value2, err = p.value(); err != nil {
			return pred, err
		}
		return pred, nil
	case "IN":
		pred.Op = OpIn
		if _, err := p.expect("("); err != nil {
			return pred, err
		}
		for {
			v, err := p.value()
			if err != nil {
				return pred, err
			}
			pred.Values = append(pred.Values, v)
			if p.accept(",") {
				continue
			}
			if _, err := p.expect(")"); err != nil {
				return pred, err
			}
			return pred, nil
		}
	default:
		return pred, errAt(opTok.pos, "expected comparison operator, found %q", opTok.text)
	}
	if pred.Value, err = p.value(); err != nil {
		return pred, err
	}
	return pred, nil
}

func (p *parser) insertStmt() (Statement, error) {
	p.next() // INSERT
	if _, err := p.expect("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.accept("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if p.accept(",") {
				continue
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if _, err := p.expect("VALUES"); err != nil {
		return nil, err
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		ins.Values = append(ins.Values, v)
		if p.accept(",") {
			continue
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		break
	}
	if len(ins.Columns) > 0 && len(ins.Columns) != len(ins.Values) {
		return nil, errAt(0, "INSERT has %d columns but %d values", len(ins.Columns), len(ins.Values))
	}
	return ins, nil
}

func (p *parser) updateStmt() (Statement, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("SET"); err != nil {
		return nil, err
	}
	up := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("="); err != nil {
			return nil, err
		}
		val, err := p.value()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, Assignment{Column: col, Value: val})
		if !p.accept(",") {
			break
		}
	}
	if up.Where, err = p.whereClause(); err != nil {
		return nil, err
	}
	return up, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.next() // DELETE
	if _, err := p.expect("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	var err2 error
	if del.Where, err2 = p.whereClause(); err2 != nil {
		return nil, err2
	}
	return del, nil
}

func (p *parser) dropTable() (Statement, error) {
	p.next() // DROP
	if _, err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTable{Table: table}, nil
}

func (p *parser) mergeTable() (Statement, error) {
	p.next() // MERGE
	if p.accept("STATUS") {
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &MergeStatus{Table: table}, nil
	}
	if _, err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &MergeTable{Table: table, Async: p.accept("ASYNC")}, nil
}
