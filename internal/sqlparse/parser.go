package sqlparse

import (
	"strconv"

	"github.com/encdbdb/encdbdb/internal/dict"
)

// Statement is a parsed SQL statement: one of *CreateTable, *Select,
// *Insert, *Update, *Delete, *DropTable, *MergeTable, *MergeStatus.
type Statement interface {
	stmt()
}

// ColumnSpec is one column declaration of a CREATE TABLE statement.
type ColumnSpec struct {
	Name   string
	Kind   dict.Kind
	MaxLen int
	BSMax  int
	Plain  bool
}

// CreateTable is a CREATE TABLE statement.
type CreateTable struct {
	Table   string
	Columns []ColumnSpec
}

func (*CreateTable) stmt() {}

// CompareOp is a WHERE-clause comparison operator.
type CompareOp int

// Comparison operators. Between carries both bounds; In carries a value
// list.
const (
	OpEq CompareOp = iota + 1
	OpLt
	OpLe
	OpGt
	OpGe
	OpBetween
	OpIn
)

// String returns the SQL spelling of the operator.
func (op CompareOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpBetween:
		return "BETWEEN"
	case OpIn:
		return "IN"
	default:
		return "?"
	}
}

// Predicate is one comparison of the conjunctive WHERE clause.
type Predicate struct {
	Column string
	Op     CompareOp
	Value  string
	// Value2 is the upper bound for BETWEEN.
	Value2 string
	// Values is the member list for IN.
	Values []string
}

// AggFunc is an aggregate function in a SELECT list.
type AggFunc int

// Aggregate functions. COUNT is represented by the Select.Count flag when
// it is COUNT(*); column aggregates use Aggregate entries.
const (
	AggMin AggFunc = iota + 1
	AggMax
	AggSum
	AggAvg
)

// String returns the SQL spelling of the aggregate function.
func (f AggFunc) String() string {
	switch f {
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	default:
		return "?"
	}
}

// Aggregate is one aggregate select item, e.g. MIN(price).
type Aggregate struct {
	Func   AggFunc
	Column string
}

// Select is a SELECT statement.
type Select struct {
	Table string
	// Columns are the projected column names; empty with Star set means
	// all columns.
	Columns []string
	Star    bool
	// Count marks SELECT COUNT(*).
	Count bool
	// Aggregates holds column aggregates (MIN/MAX/SUM/AVG); mutually
	// exclusive with Columns/Star/Count.
	Aggregates []Aggregate
	Where      []Predicate
	// OrderBy optionally names the sort column ("" = unsorted result).
	OrderBy   string
	OrderDesc bool
	// Limit caps the result rows; negative means no limit.
	Limit int
}

func (*Select) stmt() {}

// Insert is an INSERT statement. Columns may be empty (schema order).
type Insert struct {
	Table   string
	Columns []string
	Values  []string
}

func (*Insert) stmt() {}

// Assignment is one SET clause of an UPDATE.
type Assignment struct {
	Column string
	Value  string
}

// Update is an UPDATE statement.
type Update struct {
	Table string
	Set   []Assignment
	Where []Predicate
}

func (*Update) stmt() {}

// Delete is a DELETE statement.
type Delete struct {
	Table string
	Where []Predicate
}

func (*Delete) stmt() {}

// DropTable is a DROP TABLE statement.
type DropTable struct {
	Table string
}

func (*DropTable) stmt() {}

// MergeTable is the EncDBDB extension statement MERGE TABLE t [ASYNC],
// triggering a delta-store merge (paper §4.3). The plain form waits for the
// merge to be applied; ASYNC starts a background merge and returns
// immediately — its progress is observable with MERGE STATUS.
type MergeTable struct {
	Table string
	Async bool
}

func (*MergeTable) stmt() {}

// MergeStatus is the EncDBDB extension statement MERGE STATUS t, reporting
// the table's delta/merge lifecycle state (generation, in-flight merge,
// delta sizes).
type MergeStatus struct {
	Table string
}

func (*MergeStatus) stmt() {}

// Parse parses one SQL statement.
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	if p.peek().text == ";" {
		p.next()
	}
	if tok := p.peek(); tok.kind != tokEOF {
		return nil, errAt(tok.pos, "unexpected trailing input %q", tok.text)
	}
	return st, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

// expect consumes the next token if it matches the given upper-case keyword
// or symbol text.
func (p *parser) expect(text string) (token, error) {
	t := p.next()
	if t.text != text {
		return t, errAt(t.pos, "expected %q, found %q", text, t.text)
	}
	return t, nil
}

func (p *parser) accept(text string) bool {
	if p.peek().text == text {
		p.next()
		return true
	}
	return false
}

func (p *parser) ident() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", errAt(t.pos, "expected identifier, found %q", t.text)
	}
	return t.raw, nil
}

func (p *parser) stringLit() (string, error) {
	t := p.next()
	if t.kind != tokString {
		return "", errAt(t.pos, "expected string literal, found %q", t.text)
	}
	return t.text, nil
}

func (p *parser) number() (int, error) {
	t := p.next()
	if t.kind != tokNumber {
		return 0, errAt(t.pos, "expected number, found %q", t.text)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, errAt(t.pos, "bad number %q", t.text)
	}
	return n, nil
}

func (p *parser) statement() (Statement, error) {
	t := p.peek()
	switch t.text {
	case "CREATE":
		return p.createTable()
	case "SELECT":
		return p.selectStmt()
	case "INSERT":
		return p.insertStmt()
	case "UPDATE":
		return p.updateStmt()
	case "DELETE":
		return p.deleteStmt()
	case "DROP":
		return p.dropTable()
	case "MERGE":
		return p.mergeTable()
	default:
		return nil, errAt(t.pos, "expected statement, found %q", t.text)
	}
}

func (p *parser) createTable() (Statement, error) {
	p.next() // CREATE
	if _, err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	var cols []ColumnSpec
	for {
		col, err := p.columnSpec()
		if err != nil {
			return nil, err
		}
		cols = append(cols, col)
		if p.accept(",") {
			continue
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		break
	}
	return &CreateTable{Table: name, Columns: cols}, nil
}

// columnSpec parses `name [PLAIN] EDk(maxlen) [BSMAX n]`.
func (p *parser) columnSpec() (ColumnSpec, error) {
	var spec ColumnSpec
	name, err := p.ident()
	if err != nil {
		return spec, err
	}
	spec.Name = name
	if p.accept("PLAIN") {
		spec.Plain = true
	}
	kindTok := p.next()
	if kindTok.kind != tokIdent {
		return spec, errAt(kindTok.pos, "expected dictionary type, found %q", kindTok.text)
	}
	kind, err := dict.ParseKind(kindTok.text)
	if err != nil {
		return spec, errAt(kindTok.pos, "unknown dictionary type %q (want ED1..ED9)", kindTok.text)
	}
	spec.Kind = kind
	if _, err := p.expect("("); err != nil {
		return spec, err
	}
	if spec.MaxLen, err = p.number(); err != nil {
		return spec, err
	}
	if _, err := p.expect(")"); err != nil {
		return spec, err
	}
	if p.accept("BSMAX") {
		if spec.BSMax, err = p.number(); err != nil {
			return spec, err
		}
	}
	return spec, nil
}

func (p *parser) selectStmt() (Statement, error) {
	p.next() // SELECT
	sel := &Select{Limit: -1}
	switch {
	case p.accept("*"):
		sel.Star = true
	case p.accept("COUNT"):
		if _, err := p.expect("("); err != nil {
			return nil, err
		}
		if _, err := p.expect("*"); err != nil {
			return nil, err
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		sel.Count = true
	case p.peekAggregate():
		for {
			agg, err := p.aggregate()
			if err != nil {
				return nil, err
			}
			sel.Aggregates = append(sel.Aggregates, agg)
			if !p.accept(",") {
				break
			}
		}
	default:
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			sel.Columns = append(sel.Columns, col)
			if !p.accept(",") {
				break
			}
		}
	}
	if _, err := p.expect("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	sel.Table = table
	if sel.Where, err = p.whereClause(); err != nil {
		return nil, err
	}
	if err := p.orderLimit(sel); err != nil {
		return nil, err
	}
	return sel, nil
}

// peekAggregate reports whether the next tokens start an aggregate call.
func (p *parser) peekAggregate() bool {
	t := p.peek()
	switch t.text {
	case "MIN", "MAX", "SUM", "AVG":
		return p.toks[p.i+1].text == "("
	default:
		return false
	}
}

// aggregate parses FUNC(column).
func (p *parser) aggregate() (Aggregate, error) {
	var agg Aggregate
	t := p.next()
	switch t.text {
	case "MIN":
		agg.Func = AggMin
	case "MAX":
		agg.Func = AggMax
	case "SUM":
		agg.Func = AggSum
	case "AVG":
		agg.Func = AggAvg
	default:
		return agg, errAt(t.pos, "expected aggregate function, found %q", t.text)
	}
	if _, err := p.expect("("); err != nil {
		return agg, err
	}
	col, err := p.ident()
	if err != nil {
		return agg, err
	}
	agg.Column = col
	if _, err := p.expect(")"); err != nil {
		return agg, err
	}
	return agg, nil
}

// orderLimit parses optional `ORDER BY col [ASC|DESC]` and `LIMIT n`.
func (p *parser) orderLimit(sel *Select) error {
	if p.accept("ORDER") {
		if _, err := p.expect("BY"); err != nil {
			return err
		}
		col, err := p.ident()
		if err != nil {
			return err
		}
		sel.OrderBy = col
		if p.accept("DESC") {
			sel.OrderDesc = true
		} else {
			p.accept("ASC")
		}
	}
	if p.accept("LIMIT") {
		n, err := p.number()
		if err != nil {
			return err
		}
		sel.Limit = n
	}
	return nil
}

// whereClause parses an optional `WHERE pred [AND pred]...`.
func (p *parser) whereClause() ([]Predicate, error) {
	if !p.accept("WHERE") {
		return nil, nil
	}
	var preds []Predicate
	for {
		pred, err := p.predicate()
		if err != nil {
			return nil, err
		}
		preds = append(preds, pred)
		if !p.accept("AND") {
			return preds, nil
		}
	}
}

func (p *parser) predicate() (Predicate, error) {
	var pred Predicate
	col, err := p.ident()
	if err != nil {
		return pred, err
	}
	pred.Column = col
	opTok := p.next()
	switch opTok.text {
	case "=":
		pred.Op = OpEq
	case "<":
		pred.Op = OpLt
	case "<=":
		pred.Op = OpLe
	case ">":
		pred.Op = OpGt
	case ">=":
		pred.Op = OpGe
	case "BETWEEN":
		pred.Op = OpBetween
		if pred.Value, err = p.stringLit(); err != nil {
			return pred, err
		}
		if _, err := p.expect("AND"); err != nil {
			return pred, err
		}
		if pred.Value2, err = p.stringLit(); err != nil {
			return pred, err
		}
		return pred, nil
	case "IN":
		pred.Op = OpIn
		if _, err := p.expect("("); err != nil {
			return pred, err
		}
		for {
			v, err := p.stringLit()
			if err != nil {
				return pred, err
			}
			pred.Values = append(pred.Values, v)
			if p.accept(",") {
				continue
			}
			if _, err := p.expect(")"); err != nil {
				return pred, err
			}
			return pred, nil
		}
	default:
		return pred, errAt(opTok.pos, "expected comparison operator, found %q", opTok.text)
	}
	if pred.Value, err = p.stringLit(); err != nil {
		return pred, err
	}
	return pred, nil
}

func (p *parser) insertStmt() (Statement, error) {
	p.next() // INSERT
	if _, err := p.expect("INTO"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.accept("(") {
		for {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if p.accept(",") {
				continue
			}
			if _, err := p.expect(")"); err != nil {
				return nil, err
			}
			break
		}
	}
	if _, err := p.expect("VALUES"); err != nil {
		return nil, err
	}
	if _, err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		v, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		ins.Values = append(ins.Values, v)
		if p.accept(",") {
			continue
		}
		if _, err := p.expect(")"); err != nil {
			return nil, err
		}
		break
	}
	if len(ins.Columns) > 0 && len(ins.Columns) != len(ins.Values) {
		return nil, errAt(0, "INSERT has %d columns but %d values", len(ins.Columns), len(ins.Values))
	}
	return ins, nil
}

func (p *parser) updateStmt() (Statement, error) {
	p.next() // UPDATE
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect("SET"); err != nil {
		return nil, err
	}
	up := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect("="); err != nil {
			return nil, err
		}
		val, err := p.stringLit()
		if err != nil {
			return nil, err
		}
		up.Set = append(up.Set, Assignment{Column: col, Value: val})
		if !p.accept(",") {
			break
		}
	}
	if up.Where, err = p.whereClause(); err != nil {
		return nil, err
	}
	return up, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	p.next() // DELETE
	if _, err := p.expect("FROM"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	del := &Delete{Table: table}
	var err2 error
	if del.Where, err2 = p.whereClause(); err2 != nil {
		return nil, err2
	}
	return del, nil
}

func (p *parser) dropTable() (Statement, error) {
	p.next() // DROP
	if _, err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &DropTable{Table: table}, nil
}

func (p *parser) mergeTable() (Statement, error) {
	p.next() // MERGE
	if p.accept("STATUS") {
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &MergeStatus{Table: table}, nil
	}
	if _, err := p.expect("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	return &MergeTable{Table: table, Async: p.accept("ASYNC")}, nil
}
