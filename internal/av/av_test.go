package av

import (
	"math/rand"
	"testing"

	"github.com/encdbdb/encdbdb/internal/ridset"
)

// dictSizes covers the width boundaries the packer must get right: powers
// of two (exact widths), their successors (one more bit, codes that cannot
// fill the width), and the degenerate single-entry dictionary.
var dictSizes = []int{1, 2, 3, 4, 5, 16, 17, 255, 256, 257, 4096, 4097, 65536, 65537}

func randCodes(rng *rand.Rand, n, dictLen int) []uint32 {
	codes := make([]uint32, n)
	for i := range codes {
		codes[i] = uint32(rng.Intn(dictLen))
	}
	return codes
}

// refRangeScan is the obvious per-element implementation the kernels must
// agree with.
func refRangeScan(codes []uint32, ranges []Range) *ridset.Set {
	out := ridset.New(len(codes))
	for i, c := range codes {
		for _, r := range ranges {
			if c >= r.Lo && c <= r.Hi {
				out.Add(uint32(i))
				break
			}
		}
	}
	return out
}

func refBitsetScan(codes []uint32, set []uint64) *ridset.Set {
	out := ridset.New(len(codes))
	for i, c := range codes {
		if int(c) < len(set)*64 && set[c/64]&(1<<(c%64)) != 0 {
			out.Add(uint32(i))
		}
	}
	return out
}

func sameSet(t *testing.T, got, want *ridset.Set, label string) {
	t.Helper()
	g, w := got.Slice(), want.Slice()
	if len(g) != len(w) {
		t.Fatalf("%s: %d matches, want %d", label, len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: match %d = %d, want %d", label, i, g[i], w[i])
		}
	}
}

func TestWidth(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 255: 8, 256: 8, 257: 9, 65536: 16, 65537: 17}
	for d, want := range cases {
		if got := Width(d); got != want {
			t.Errorf("Width(%d) = %d, want %d", d, got, want)
		}
	}
}

func TestPackGetUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range dictSizes {
		for _, n := range []int{0, 1, 63, 64, 65, 200, 1000} {
			codes := randCodes(rng, n, d)
			v := Pack(codes, d)
			if v.Len() != n || v.Bits() != Width(d) || v.DictLen() != d {
				t.Fatalf("|D|=%d n=%d: shape Len=%d Bits=%d DictLen=%d", d, n, v.Len(), v.Bits(), v.DictLen())
			}
			back := v.Unpack()
			for i, c := range codes {
				if back[i] != c {
					t.Fatalf("|D|=%d n=%d: Unpack[%d] = %d, want %d", d, n, i, back[i], c)
				}
				if got := v.Get(i); got != c {
					t.Fatalf("|D|=%d n=%d: Get(%d) = %d, want %d", d, n, i, got, c)
				}
			}
		}
	}
}

func TestSetOverwrites(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	codes := randCodes(rng, 130, 37)
	v := Pack(codes, 37)
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(len(codes))
		c := uint32(rng.Intn(37))
		v.Set(i, c)
		codes[i] = c
		if got := v.Get(i); got != c {
			t.Fatalf("Get(%d) = %d after Set, want %d", i, got, c)
		}
	}
	for i, c := range codes {
		if v.Get(i) != c {
			t.Fatalf("Get(%d) = %d, want %d (neighbor clobbered by Set)", i, v.Get(i), c)
		}
	}
}

// TestScanRangesMatchesReference is the central equivalence property:
// packed scan ≡ unpacked scan for random codes, widths and ranges,
// including the |D| = 2^k and 2^k+1 width boundaries.
func TestScanRangesMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, d := range dictSizes {
		for _, n := range []int{1, 64, 100, 1000} {
			codes := randCodes(rng, n, d)
			v := Pack(codes, d)
			for trial := 0; trial < 20; trial++ {
				nr := 1 + rng.Intn(2) // the searches emit at most two ranges
				ranges := make([]Range, nr)
				for i := range ranges {
					lo := uint32(rng.Intn(d))
					hi := lo + uint32(rng.Intn(d-int(lo)))
					ranges[i] = Range{Lo: lo, Hi: hi}
				}
				// Occasionally include degenerate and overshooting ranges.
				switch trial {
				case 17:
					ranges[0] = Range{Lo: 5, Hi: 2} // empty
				case 18:
					ranges[0] = Range{Lo: 0, Hi: uint32(2 * d)} // clamps
				case 19:
					ranges[0] = Range{Lo: uint32(2 * d), Hi: uint32(3 * d)} // past max
				}
				out := ridset.New(n)
				v.ScanRanges(out, 0, (n+63)/64, ranges)
				sameSet(t, out, refRangeScan(codes, ranges), "ranges")
			}
		}
	}
}

func TestScanBitsetMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, d := range dictSizes {
		for _, n := range []int{1, 64, 100, 1000} {
			codes := randCodes(rng, n, d)
			v := Pack(codes, d)
			for trial := 0; trial < 10; trial++ {
				set := make([]uint64, (d+63)/64)
				for k := 0; k < 1+rng.Intn(d); k++ {
					u := rng.Intn(d)
					set[u/64] |= 1 << (u % 64)
				}
				out := ridset.New(n)
				v.ScanBitset(out, 0, (n+63)/64, set)
				sameSet(t, out, refBitsetScan(codes, set), "bitset")
			}
		}
	}
}

// TestScanShardsCompose checks that scanning disjoint group ranges into one
// set — the parallel scan's emit pattern — equals a single full scan.
func TestScanShardsCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	codes := randCodes(rng, 1000, 300)
	v := Pack(codes, 300)
	ranges := []Range{{Lo: 10, Hi: 99}, {Lo: 200, Hi: 250}}
	groups := (len(codes) + 63) / 64
	sharded := ridset.New(len(codes))
	for g := 0; g < groups; g += 3 {
		hi := g + 3
		if hi > groups {
			hi = groups
		}
		v.ScanRanges(sharded, g, hi, ranges)
	}
	sameSet(t, sharded, refRangeScan(codes, ranges), "sharded")
}

func TestFromWordsValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	codes := randCodes(rng, 100, 1000)
	v := Pack(codes, 1000)
	good, err := FromWords(v.Words(), v.Len(), v.Bits(), v.DictLen())
	if err != nil {
		t.Fatalf("FromWords round trip: %v", err)
	}
	for i, c := range codes {
		if good.Get(i) != c {
			t.Fatalf("FromWords Get(%d) = %d, want %d", i, good.Get(i), c)
		}
	}
	if _, err := FromWords(v.Words(), v.Len(), v.Bits()+1, v.DictLen()); err == nil {
		t.Error("wrong width accepted")
	}
	if _, err := FromWords(v.Words()[:len(v.Words())-1], v.Len(), v.Bits(), v.DictLen()); err == nil {
		t.Error("short word slice accepted")
	}
	stray := append([]uint64(nil), v.Words()...)
	stray[len(stray)-1] |= 1 << 63 // phantom row 127 of a 100-row vector
	if _, err := FromWords(stray, v.Len(), v.Bits(), v.DictLen()); err == nil {
		t.Error("stray tail bits accepted")
	}
}

func TestZeroWidthVector(t *testing.T) {
	v := Pack(make([]uint32, 70), 1)
	if v.Bits() != 0 || v.MemBytes() != 0 {
		t.Fatalf("|D|=1 vector: bits=%d mem=%d, want 0/0", v.Bits(), v.MemBytes())
	}
	out := ridset.New(70)
	v.ScanRanges(out, 0, 2, []Range{{Lo: 0, Hi: 0}})
	if out.Len() != 70 {
		t.Errorf("range [0,0] over zero-width vector matched %d rows, want 70", out.Len())
	}
	out = ridset.New(70)
	v.ScanRanges(out, 0, 2, []Range{{Lo: 1, Hi: 5}})
	if out.Len() != 0 {
		t.Errorf("range [1,5] over zero-width vector matched %d rows, want 0", out.Len())
	}
	out = ridset.New(70)
	v.ScanBitset(out, 0, 2, []uint64{1})
	if out.Len() != 70 {
		t.Errorf("bitset {0} over zero-width vector matched %d rows, want 70", out.Len())
	}
}
