package av

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/encdbdb/encdbdb/internal/ridset"
)

// benchRows matches the compression experiment's scale: large enough that
// the scan is memory-bound, small enough for the CI smoke run.
const benchRows = 1 << 20

// benchWidths mirrors the |D| sweep of the compression experiment.
var benchWidths = []int{16, 256, 4096, 65536}

// unpackedRangeScan is the pre-packing baseline: one comparison chain per
// element over a []uint32, as parallelScan's match closure performed.
func unpackedRangeScan(out *ridset.Set, codes []uint32, ranges []Range) {
	for i, c := range codes {
		for _, r := range ranges {
			if c >= r.Lo && c <= r.Hi {
				out.Add(uint32(i))
				break
			}
		}
	}
}

func benchSetup(dictLen int) ([]uint32, *Vector, []Range) {
	rng := rand.New(rand.NewSource(int64(dictLen)))
	codes := randCodes(rng, benchRows, dictLen)
	// ~10% selectivity, one range — the common sorted-dictionary case.
	lo := uint32(dictLen / 4)
	hi := lo + uint32(dictLen/10)
	return codes, Pack(codes, dictLen), []Range{{Lo: lo, Hi: hi}}
}

func BenchmarkPackedRangeScan(b *testing.B) {
	for _, d := range benchWidths {
		codes, v, ranges := benchSetup(d)
		_ = codes
		b.Run(fmt.Sprintf("dict%d_w%d", d, v.Bits()), func(b *testing.B) {
			groups := (v.Len() + GroupRows - 1) / GroupRows
			out := ridset.New(v.Len())
			b.SetBytes(int64(v.MemBytes()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.ScanRanges(out, 0, groups, ranges)
			}
		})
	}
}

func BenchmarkPackedRangeScanBaselineUint32(b *testing.B) {
	for _, d := range benchWidths {
		codes, v, ranges := benchSetup(d)
		b.Run(fmt.Sprintf("dict%d_w%d", d, v.Bits()), func(b *testing.B) {
			out := ridset.New(len(codes))
			b.SetBytes(int64(4 * len(codes)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				unpackedRangeScan(out, codes, ranges)
			}
		})
	}
}

func BenchmarkPackedBitsetScan(b *testing.B) {
	for _, d := range benchWidths {
		_, v, _ := benchSetup(d)
		rng := rand.New(rand.NewSource(7))
		set := make([]uint64, (d+63)/64)
		for k := 0; k < d/10+1; k++ {
			u := rng.Intn(d)
			set[u/64] |= 1 << (u % 64)
		}
		b.Run(fmt.Sprintf("dict%d_w%d", d, v.Bits()), func(b *testing.B) {
			groups := (v.Len() + GroupRows - 1) / GroupRows
			out := ridset.New(v.Len())
			b.SetBytes(int64(v.MemBytes()))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v.ScanBitset(out, 0, groups, set)
			}
		})
	}
}

func BenchmarkPackedPack(b *testing.B) {
	for _, d := range []int{256, 65536} {
		codes, v, _ := benchSetup(d)
		b.Run(fmt.Sprintf("dict%d_w%d", d, v.Bits()), func(b *testing.B) {
			b.SetBytes(int64(4 * len(codes)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = Pack(codes, d)
			}
		})
	}
}
