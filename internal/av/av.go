// Package av implements the compressed attribute vector of the paper's
// column store: each ValueID is stored in w = ceil(log2 |D|) bits instead of
// a 4-byte uint32, and scan predicates are evaluated with SWAR
// (SIMD-within-a-register) kernels that process 64 rows per iteration.
//
// The layout is bit-sliced ("vertical", in the style of BitWeaving/V): rows
// are grouped in blocks of 64, and a group stores w consecutive uint64
// words, word j holding bit j of all 64 codes (bit r of word j = bit j of
// row 64g+r's code). A range predicate lo <= code <= hi is then evaluated
// with the classic bit-serial comparator — a handful of AND/OR/ANDNOT word
// operations per slice, most-significant slice first, with early exit once
// every row's comparison is decided — producing exactly one 64-bit match
// word per group. That word ORs directly into a ridset.Set, whose words
// cover the same 64-row blocks, so the packed scan plugs into the engine's
// 64-aligned parallel shard layout with no per-element emit path at all.
package av

import (
	"fmt"
	"math/bits"

	"github.com/encdbdb/encdbdb/internal/ridset"
)

// GroupRows is the scan granularity: codes are packed (and match words
// emitted) in blocks of 64 rows, matching both the uint64 word size and the
// 64-aligned shard boundaries of the parallel attribute-vector scan.
const GroupRows = 64

// Width returns the number of bits needed to store any ValueID of a
// dictionary with dictLen entries: ceil(log2 dictLen), and 0 when a single
// entry (or none) makes every code trivially zero.
func Width(dictLen int) int {
	if dictLen <= 1 {
		return 0
	}
	return bits.Len(uint(dictLen - 1))
}

// Vector is a bit-packed attribute vector over a fixed dictionary size.
// It is immutable after Pack in normal operation (Set exists for tests and
// repair tooling) and safe for concurrent readers.
type Vector struct {
	n    int // rows
	w    int // bits per code = Width(dict)
	dict int // |D| the codes were validated against
	// words is group-major: words[g*w+j] is bit-slice j of rows
	// [64g, 64g+64).
	words []uint64
}

// Range is an inclusive ValueID range [Lo, Hi] as produced by the sorted and
// rotated dictionary searches.
type Range struct {
	Lo uint32
	Hi uint32
}

// Codes is a read-only sequence of ValueIDs; both *Vector and the Ints
// adapter implement it. The enclave's merge input consumes this shape so a
// packed main store and the delta store's identity []uint32 vector share one
// ECALL signature.
type Codes interface {
	Len() int
	At(i int) uint32
}

// Ints adapts a plain []uint32 ValueID slice to the Codes interface.
type Ints []uint32

// Len returns the number of codes.
func (s Ints) Len() int { return len(s) }

// At returns code i.
func (s Ints) At(i int) uint32 { return s[i] }

// Pack bit-packs codes for a dictionary of dictLen entries. Codes are
// truncated to Width(dictLen) bits; the caller is responsible for having
// validated code < dictLen (dict.FromData and dict.Build do).
func Pack(codes []uint32, dictLen int) *Vector {
	v := &Vector{n: len(codes), w: Width(dictLen), dict: dictLen}
	if v.w == 0 || v.n == 0 {
		return v
	}
	v.words = make([]uint64, v.groups()*v.w)
	mask := v.codeMask()
	for i, c := range codes {
		base := (i / GroupRows) * v.w
		bit := uint64(1) << uint(i%GroupRows)
		c &= mask
		for c != 0 {
			j := bits.TrailingZeros32(c)
			v.words[base+j] |= bit
			c &= c - 1
		}
	}
	return v
}

// FromWords reconstructs a vector from its serialized form: the raw slice
// words of n rows packed at w bits for a dictionary of dictLen entries. It
// validates the structural invariants an untrusted file could violate.
func FromWords(words []uint64, n, w, dictLen int) (*Vector, error) {
	if n < 0 || w < 0 || w > 32 {
		return nil, fmt.Errorf("av: invalid shape n=%d w=%d", n, w)
	}
	if w != Width(dictLen) {
		return nil, fmt.Errorf("av: width %d does not match |D|=%d (want %d)", w, dictLen, Width(dictLen))
	}
	want := 0
	if n > 0 {
		want = ((n + GroupRows - 1) / GroupRows) * w
	}
	if len(words) != want {
		return nil, fmt.Errorf("av: %d words for %d rows at %d bits, want %d", len(words), n, w, want)
	}
	if rem := n % GroupRows; rem != 0 && w > 0 {
		// Bits beyond the final row would alias phantom rows in Unpack
		// and the scan kernels; a well-formed producer never sets them.
		stray := ^((uint64(1) << uint(rem)) - 1)
		for j, s := range words[len(words)-w:] {
			if s&stray != 0 {
				return nil, fmt.Errorf("av: slice %d has bits beyond row %d", j, n)
			}
		}
	}
	if len(words) == 0 {
		words = nil
	}
	return &Vector{n: n, w: w, dict: dictLen, words: words}, nil
}

// Len returns the number of rows.
func (v *Vector) Len() int { return v.n }

// Bits returns the per-code width in bits.
func (v *Vector) Bits() int { return v.w }

// DictLen returns the dictionary size the vector was packed against.
func (v *Vector) DictLen() int { return v.dict }

// Words returns the raw bit-slice words (group-major). Exposed for
// serialization; callers must not modify them.
func (v *Vector) Words() []uint64 { return v.words }

// MemBytes returns the memory footprint of the packed codes. The unpacked
// equivalent is 4*Len() bytes.
func (v *Vector) MemBytes() int { return len(v.words) * 8 }

// groups returns the number of 64-row groups.
func (v *Vector) groups() int { return (v.n + GroupRows - 1) / GroupRows }

// codeMask returns the w-bit mask codes are truncated to.
func (v *Vector) codeMask() uint32 { return uint32((uint64(1) << uint(v.w)) - 1) }

// groupMask returns the valid-row mask of group g (all ones except in the
// final partial group).
func (v *Vector) groupMask(g int) uint64 {
	if (g+1)*GroupRows <= v.n {
		return ^uint64(0)
	}
	return (uint64(1) << uint(v.n-g*GroupRows)) - 1
}

// Get returns code i, reassembled from the bit slices.
func (v *Vector) Get(i int) uint32 {
	if v.w == 0 {
		return 0
	}
	base := (i / GroupRows) * v.w
	shift := uint(i % GroupRows)
	var c uint32
	for j := 0; j < v.w; j++ {
		c |= uint32((v.words[base+j]>>shift)&1) << uint(j)
	}
	return c
}

// At is Get under the Codes interface.
func (v *Vector) At(i int) uint32 { return v.Get(i) }

// Set overwrites code i (truncated to the vector's width). It exists for
// tests that corrupt a split deliberately; production vectors are immutable
// after Pack. Not safe for use concurrent with readers.
func (v *Vector) Set(i int, code uint32) {
	if v.w == 0 {
		return
	}
	base := (i / GroupRows) * v.w
	bit := uint64(1) << uint(i%GroupRows)
	code &= v.codeMask()
	for j := 0; j < v.w; j++ {
		if code&(1<<uint(j)) != 0 {
			v.words[base+j] |= bit
		} else {
			v.words[base+j] &^= bit
		}
	}
}

// Unpack materializes the codes as a fresh []uint32.
func (v *Vector) Unpack() []uint32 {
	if v.n == 0 {
		return nil
	}
	out := make([]uint32, v.n)
	for g := 0; g < v.groups(); g++ {
		base := g * v.w
		rows := v.n - g*GroupRows
		if rows > GroupRows {
			rows = GroupRows
		}
		dst := out[g*GroupRows : g*GroupRows+rows]
		for j := 0; j < v.w; j++ {
			s := v.words[base+j]
			for s != 0 {
				r := bits.TrailingZeros64(s)
				dst[r] |= 1 << uint(j)
				s &= s - 1
			}
		}
	}
	return out
}

// ScanRanges evaluates the disjunction of the inclusive ValueID ranges over
// the row groups [gLo, gHi) and ORs the per-group 64-bit match words into
// out, whose universe must cover [0, Len()). Distinct group ranges touch
// disjoint words of out, so shards of the parallel scan may run
// concurrently against the same set.
func (v *Vector) ScanRanges(out *ridset.Set, gLo, gHi int, ranges []Range) {
	// Clamp once: codes hold at most w bits, so a range reaching past the
	// largest representable code is truncated and a range starting past it
	// can never match.
	maxCode := uint32(0)
	if v.w > 0 {
		maxCode = v.codeMask()
	}
	// The dictionary searches emit at most two ranges; keep that common
	// case allocation-free.
	var buf [2]Range
	active := buf[:0]
	if len(ranges) > len(buf) {
		active = make([]Range, 0, len(ranges))
	}
	zeroMatch := false // does some range cover code 0 (the w==0 case)?
	for _, r := range ranges {
		if r.Lo > r.Hi || r.Lo > maxCode {
			continue
		}
		if r.Hi > maxCode {
			r.Hi = maxCode
		}
		if r.Lo == 0 {
			zeroMatch = true
		}
		active = append(active, r)
	}
	if len(active) == 0 {
		return
	}
	if v.w == 0 {
		// Every code is 0: all rows match iff some range covers 0.
		if !zeroMatch {
			return
		}
		for g := gLo; g < gHi; g++ {
			out.OrWord(g, v.groupMask(g))
		}
		return
	}
	for g := gLo; g < gHi; g++ {
		sl := v.words[g*v.w : g*v.w+v.w]
		var m uint64
		for _, r := range active {
			m |= scanRangeGroup(sl, r.Lo, r.Hi)
			if m == ^uint64(0) {
				break
			}
		}
		if m &= v.groupMask(g); m != 0 {
			out.OrWord(g, m)
		}
	}
}

// scanRangeGroup is the SWAR comparator: one 64-row group against one
// inclusive range. It walks the bit slices most-significant first, tracking
// per-row "still equal to the bound so far" masks for both bounds; a row
// leaves the undecided set the moment its code diverges from a bound, and
// the loop exits early once no row is undecided — for random codes that
// resolves after a handful of slices regardless of width.
func scanRangeGroup(sl []uint64, lo, hi uint32) uint64 {
	eqLo, eqHi := ^uint64(0), ^uint64(0)
	var ltLo, gtHi uint64
	for j := len(sl) - 1; j >= 0; j-- {
		s := sl[j]
		if (lo>>uint(j))&1 == 1 {
			ltLo |= eqLo &^ s
			eqLo &= s
		} else {
			eqLo &^= s
		}
		if (hi>>uint(j))&1 == 1 {
			eqHi &= s
		} else {
			gtHi |= eqHi & s
			eqHi &^= s
		}
		if eqLo|eqHi == 0 {
			break
		}
	}
	// code >= lo is "not below lo", code <= hi is "not above hi"; rows
	// still equal to a bound after all slices are inside the range.
	return ^(ltLo | gtHi)
}

// ScanBitset evaluates ValueID-set membership over the row groups
// [gLo, gHi) and ORs the per-group match words into out. set is a bitmap
// over ValueIDs (bit u = ValueID u matches) as built from an unsorted
// dictionary search's ID list. The group's 64 codes are reassembled with
// one in-register 64x64 bit-matrix transpose of the slice words — a cost
// independent of the code width — then probed against the bitmap.
func (v *Vector) ScanBitset(out *ridset.Set, gLo, gHi int, set []uint64) {
	if len(set) == 0 {
		return
	}
	if v.w == 0 {
		if set[0]&1 == 0 {
			return
		}
		for g := gLo; g < gHi; g++ {
			out.OrWord(g, v.groupMask(g))
		}
		return
	}
	limit := uint64(len(set) * 64)
	for g := gLo; g < gHi; g++ {
		// transpose64 mirrors about the anti-diagonal — (row, bit) maps
		// to (63-bit, 63-row) — so loading slice j at row 63-j makes
		// row 63-r come out as exactly code r, unmirrored.
		var a [GroupRows]uint64
		sl := v.words[g*v.w : g*v.w+v.w]
		for j, s := range sl {
			a[GroupRows-1-j] = s
		}
		transpose64(&a)
		var m uint64
		for r := 0; r < GroupRows; r++ {
			c := a[GroupRows-1-r]
			// c can reach 2^w-1 > |D|-1 when |D| is not a power of
			// two; such codes never appear in validated vectors but
			// the bounds check keeps corrupt input safe.
			if c < limit && set[c/64]&(1<<(c%64)) != 0 {
				m |= 1 << uint(r)
			}
		}
		if m &= v.groupMask(g); m != 0 {
			out.OrWord(g, m)
		}
	}
}

// transpose64 transposes the 64x64 bit matrix held row-major in a, using
// the classic recursive block-swap (Hacker's Delight §7-3). Feeding it a
// group's slice words (row j = bit-slice j) yields the group's codes (row r
// = code of row r), which is how ScanBitset unpacks 64 codes in ~6 passes
// of register operations regardless of width.
func transpose64(a *[GroupRows]uint64) {
	j := uint(32)
	m := uint64(0x00000000FFFFFFFF)
	for j != 0 {
		for k := 0; k < GroupRows; k = (k + int(j) + 1) &^ int(j) {
			t := (a[k] ^ (a[k+int(j)] >> j)) & m
			a[k] ^= t
			a[k+int(j)] ^= t << j
		}
		j >>= 1
		m ^= m << j
	}
}
