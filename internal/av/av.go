// Package av implements the compressed attribute vector of the paper's
// column store: each ValueID is stored in w = ceil(log2 |D|) bits instead of
// a 4-byte uint32, and scan predicates are evaluated with SWAR
// (SIMD-within-a-register) kernels that process 64 rows per iteration.
//
// The base layout is bit-sliced ("vertical", in the style of BitWeaving/V):
// rows are grouped in blocks of 64, and a group stores w consecutive uint64
// words, word j holding bit j of all 64 codes (bit r of word j = bit j of
// row 64g+r's code). A range predicate lo <= code <= hi is then evaluated
// with the classic bit-serial comparator — a handful of AND/OR/ANDNOT word
// operations per slice, most-significant slice first, with early exit once
// every row's comparison is decided — producing exactly one 64-bit match
// word per group. That word combines directly into a ridset.Set, whose words
// cover the same 64-row blocks, so the packed scan plugs into the engine's
// 64-aligned parallel shard layout with no per-element emit path at all.
//
// On top of the uniform layout, PackEncoded adds two lightweight group
// encodings chosen per 1024-row block from block statistics:
//
//   - frame of reference (EncFoR): the block minimum is subtracted and the
//     residuals are bit-sliced at the narrowed width ceil(log2(max-min+1)),
//     which shrinks clustered blocks (e.g. the identity vectors of sealed
//     delta runs) far below the global width;
//   - run length (EncRLE): blocks with few value runs (sorted or clustered
//     columns) store (ValueID, end-row) runs and range scans evaluate each
//     run once — O(runs) instead of O(rows) — filling whole match words per
//     run.
//
// Every kernel exists in two combine modes: the Or entry points (ScanRanges,
// ScanBitset) OR match words into a result set, and the fused Into entry
// points (ScanRangesInto, ScanBitsetInto) AND them into an accumulator
// word-by-word, skipping any group whose accumulator word is already zero —
// the engine's fused conjunction pipeline evaluates multi-predicate queries
// and row validity in a single pass through each group.
package av

import (
	"fmt"
	"math/bits"

	"github.com/encdbdb/encdbdb/internal/ridset"
)

// GroupRows is the scan granularity: codes are packed (and match words
// emitted) in blocks of 64 rows, matching both the uint64 word size and the
// 64-aligned shard boundaries of the parallel attribute-vector scan.
const GroupRows = 64

// BlockGroups is the number of 64-row groups per encoding block: encoding
// decisions (packed vs FoR vs RLE) are made per block of BlockRows rows, so
// per-block metadata stays amortized while clustered regions of a column can
// still pick their own representation.
const BlockGroups = 16

// BlockRows is the encoding-block granularity in rows.
const BlockRows = GroupRows * BlockGroups

// rleMaxRuns caps the run count of an RLE block so the O(runs) kernels never
// degenerate past the slice kernels on noisy data.
const rleMaxRuns = BlockRows / 8

// Encoding identifies the per-block representation of an encoded vector.
type Encoding uint8

// The block encodings. EncPacked is the uniform bit-sliced layout at the
// global width; EncFoR bit-slices base-subtracted residuals at a narrowed
// width; EncRLE stores value runs.
const (
	EncPacked Encoding = iota
	EncFoR
	EncRLE
)

// String names an encoding for stats and bench output.
func (e Encoding) String() string {
	switch e {
	case EncPacked:
		return "packed"
	case EncFoR:
		return "for"
	case EncRLE:
		return "rle"
	default:
		return fmt.Sprintf("Encoding(%d)", uint8(e))
	}
}

// Block is one encoding block's metadata: its representation, slice width W
// and FoR base (EncPacked/EncFoR), and its extent in the vector's backing
// arrays — Off/N index words for sliced blocks and runs for RLE blocks.
// Blocks tile the backing arrays in order, so Off is also derivable; it is
// stored (and validated) to keep the serialized form self-describing.
type Block struct {
	Enc  Encoding
	W    uint8
	Base uint32
	Off  uint32
	N    uint32
}

// blockMetaBytes is the in-memory footprint charged per block by MemBytes.
const blockMetaBytes = 16

// Run is one RLE run: rows [prev.End, End) of the block (block-local,
// cumulative) hold ValueID VID.
type Run struct {
	VID uint32
	End uint32
}

// Width returns the number of bits needed to store any ValueID of a
// dictionary with dictLen entries: ceil(log2 dictLen), and 0 when a single
// entry (or none) makes every code trivially zero.
func Width(dictLen int) int {
	if dictLen <= 1 {
		return 0
	}
	return bits.Len(uint(dictLen - 1))
}

// Vector is a bit-packed attribute vector over a fixed dictionary size.
// It is immutable after Pack in normal operation (Set exists for tests and
// repair tooling) and safe for concurrent readers.
type Vector struct {
	n    int // rows
	w    int // bits per code = Width(dict)
	dict int // |D| the codes were validated against
	// words holds the bit slices. Uniform vectors (blocks == nil) are
	// group-major: words[g*w+j] is bit-slice j of rows [64g, 64g+64).
	// Encoded vectors lay each sliced block's groups out consecutively at
	// that block's width, starting at the block's Off.
	words []uint64
	// blocks is the per-block encoding metadata of an encoded vector, nil
	// for the uniform layout produced by Pack.
	blocks []Block
	// runs backs the RLE blocks of an encoded vector.
	runs []Run
}

// Range is an inclusive ValueID range [Lo, Hi] as produced by the sorted and
// rotated dictionary searches.
type Range struct {
	Lo uint32
	Hi uint32
}

// Codes is a read-only sequence of ValueIDs; both *Vector and the Ints
// adapter implement it. The enclave's merge input consumes this shape so a
// packed main store and the delta store's identity []uint32 vector share one
// ECALL signature.
type Codes interface {
	Len() int
	At(i int) uint32
}

// Ints adapts a plain []uint32 ValueID slice to the Codes interface.
type Ints []uint32

// Len returns the number of codes.
func (s Ints) Len() int { return len(s) }

// At returns code i.
func (s Ints) At(i int) uint32 { return s[i] }

// Pack bit-packs codes for a dictionary of dictLen entries into the uniform
// (single-width, no per-block encodings) layout. Codes are truncated to
// Width(dictLen) bits; the caller is responsible for having validated
// code < dictLen (dict.FromData and dict.Build do).
func Pack(codes []uint32, dictLen int) *Vector {
	v := &Vector{n: len(codes), w: Width(dictLen), dict: dictLen}
	if v.w == 0 || v.n == 0 {
		return v
	}
	v.words = make([]uint64, v.groups()*v.w)
	packSlices(v.words, codes, 0, v.w, v.codeMask())
	return v
}

// PackEncoded bit-packs codes like Pack and additionally selects a
// lightweight encoding per 1024-row block from block statistics: run-length
// encoding when the block has few value runs and the runs are cheaper than
// slices, frame-of-reference narrowing when the block's value spread needs
// fewer bits than the global width, and the uniform packed layout otherwise.
// If no block benefits, the canonical uniform vector is returned.
func PackEncoded(codes []uint32, dictLen int) *Vector {
	w := Width(dictLen)
	n := len(codes)
	if w == 0 || n == 0 {
		return Pack(codes, dictLen)
	}
	nblocks := (n + BlockRows - 1) / BlockRows
	encoded := false
	type stat struct {
		min, max uint32
		runs     int
	}
	stats := make([]stat, nblocks)
	for b := range stats {
		cs := codes[b*BlockRows : min(n, (b+1)*BlockRows)]
		st := stat{min: cs[0], max: cs[0], runs: 1}
		for i := 1; i < len(cs); i++ {
			c := cs[i]
			if c < st.min {
				st.min = c
			}
			if c > st.max {
				st.max = c
			}
			if c != cs[i-1] {
				st.runs++
			}
		}
		stats[b] = st
		if blockEncoding(st.runs, st.min, st.max, len(cs), w) != EncPacked {
			encoded = true
		}
	}
	if !encoded {
		return Pack(codes, dictLen)
	}

	v := &Vector{n: n, w: w, dict: dictLen, blocks: make([]Block, nblocks)}
	for b, st := range stats {
		cs := codes[b*BlockRows : min(n, (b+1)*BlockRows)]
		groups := (len(cs) + GroupRows - 1) / GroupRows
		switch blockEncoding(st.runs, st.min, st.max, len(cs), w) {
		case EncRLE:
			off := len(v.runs)
			end := uint32(0)
			for i := range cs {
				if i > 0 && cs[i] != cs[i-1] {
					v.runs = append(v.runs, Run{VID: cs[i-1], End: end})
				}
				end++
			}
			v.runs = append(v.runs, Run{VID: cs[len(cs)-1], End: end})
			v.blocks[b] = Block{Enc: EncRLE, Off: uint32(off), N: uint32(len(v.runs) - off)}
		case EncFoR:
			bw := bits.Len(uint(st.max - st.min))
			off := len(v.words)
			v.words = append(v.words, make([]uint64, groups*bw)...)
			packSlices(v.words[off:], cs, st.min, bw, (1<<uint(bw))-1)
			v.blocks[b] = Block{Enc: EncFoR, W: uint8(bw), Base: st.min, Off: uint32(off), N: uint32(groups * bw)}
		default:
			off := len(v.words)
			v.words = append(v.words, make([]uint64, groups*w)...)
			packSlices(v.words[off:], cs, 0, w, v.codeMask())
			v.blocks[b] = Block{Enc: EncPacked, W: uint8(w), Off: uint32(off), N: uint32(groups * w)}
		}
	}
	return v
}

// blockEncoding is the selection heuristic: RLE when the runs are both few
// enough for the O(runs) kernels and strictly smaller than the best slice
// representation, then FoR when the spread narrows the width, else packed.
func blockEncoding(runs int, lo, hi uint32, rows, w int) Encoding {
	groups := (rows + GroupRows - 1) / GroupRows
	sliceWidth := w
	if bw := bits.Len(uint(hi - lo)); bw < w {
		sliceWidth = bw
	}
	if runs <= rleMaxRuns && runs < groups*sliceWidth {
		return EncRLE
	}
	if sliceWidth < w {
		return EncFoR
	}
	return EncPacked
}

// packSlices writes codes (less base, masked to width bw) into dst in the
// bit-sliced group-major layout: group g's slice j at dst[g*bw+j].
func packSlices(dst []uint64, codes []uint32, base uint32, bw int, mask uint32) {
	for i, c := range codes {
		gbase := (i / GroupRows) * bw
		bit := uint64(1) << uint(i%GroupRows)
		c = (c - base) & mask
		for c != 0 {
			j := bits.TrailingZeros32(c)
			dst[gbase+j] |= bit
			c &= c - 1
		}
	}
}

// FromWords reconstructs a uniform vector from its serialized form: the raw
// slice words of n rows packed at w bits for a dictionary of dictLen
// entries. It validates the structural invariants an untrusted file could
// violate.
func FromWords(words []uint64, n, w, dictLen int) (*Vector, error) {
	if n < 0 || w < 0 || w > 32 {
		return nil, fmt.Errorf("av: invalid shape n=%d w=%d", n, w)
	}
	if w != Width(dictLen) {
		return nil, fmt.Errorf("av: width %d does not match |D|=%d (want %d)", w, dictLen, Width(dictLen))
	}
	want := 0
	if n > 0 {
		want = ((n + GroupRows - 1) / GroupRows) * w
	}
	if len(words) != want {
		return nil, fmt.Errorf("av: %d words for %d rows at %d bits, want %d", len(words), n, w, want)
	}
	if rem := n % GroupRows; rem != 0 && w > 0 {
		// Bits beyond the final row would alias phantom rows in Unpack
		// and the scan kernels; a well-formed producer never sets them.
		stray := ^((uint64(1) << uint(rem)) - 1)
		for j, s := range words[len(words)-w:] {
			if s&stray != 0 {
				return nil, fmt.Errorf("av: slice %d has bits beyond row %d", j, n)
			}
		}
	}
	if len(words) == 0 {
		words = nil
	}
	return &Vector{n: n, w: w, dict: dictLen, words: words}, nil
}

// FromEncoded reconstructs an encoded vector from its serialized parts. An
// empty block list means the uniform layout and delegates to FromWords;
// otherwise every block's shape — encoding tag, width, sequential tiling of
// the backing arrays, run coverage and monotonicity, and stray bits beyond
// the final row — is validated, since the parts may come from an untrusted
// file.
func FromEncoded(words []uint64, blocks []Block, runs []Run, n, w, dictLen int) (*Vector, error) {
	if len(blocks) == 0 {
		if len(runs) != 0 {
			return nil, fmt.Errorf("av: %d runs without blocks", len(runs))
		}
		return FromWords(words, n, w, dictLen)
	}
	if n <= 0 || w <= 0 || w > 32 || w != Width(dictLen) {
		return nil, fmt.Errorf("av: invalid encoded shape n=%d w=%d |D|=%d", n, w, dictLen)
	}
	if want := (n + BlockRows - 1) / BlockRows; len(blocks) != want {
		return nil, fmt.Errorf("av: %d blocks for %d rows, want %d", len(blocks), n, want)
	}
	wordOff, runOff := 0, 0
	for b, blk := range blocks {
		rows := min(n-b*BlockRows, BlockRows)
		groups := (rows + GroupRows - 1) / GroupRows
		switch blk.Enc {
		case EncPacked, EncFoR:
			if blk.Enc == EncPacked && (int(blk.W) != w || blk.Base != 0) {
				return nil, fmt.Errorf("av: block %d packed at width %d base %d, want %d/0", b, blk.W, blk.Base, w)
			}
			if blk.Enc == EncFoR && (int(blk.W) >= w || int(blk.Base) >= dictLen) {
				return nil, fmt.Errorf("av: block %d FoR width %d base %d invalid for w=%d |D|=%d", b, blk.W, blk.Base, w, dictLen)
			}
			if int(blk.Off) != wordOff || int(blk.N) != groups*int(blk.W) {
				return nil, fmt.Errorf("av: block %d words [%d,+%d) do not tile (want off %d, n %d)",
					b, blk.Off, blk.N, wordOff, groups*int(blk.W))
			}
			wordOff += int(blk.N)
			if wordOff > len(words) {
				return nil, fmt.Errorf("av: block %d exceeds %d backing words", b, len(words))
			}
			if rem := rows % GroupRows; rem != 0 && blk.W > 0 {
				stray := ^((uint64(1) << uint(rem)) - 1)
				for j, s := range words[wordOff-int(blk.W) : wordOff] {
					if s&stray != 0 {
						return nil, fmt.Errorf("av: block %d slice %d has bits beyond row %d", b, j, rows)
					}
				}
			}
		case EncRLE:
			if int(blk.Off) != runOff || blk.N == 0 {
				return nil, fmt.Errorf("av: block %d runs [%d,+%d) do not tile (want off %d)", b, blk.Off, blk.N, runOff)
			}
			runOff += int(blk.N)
			if runOff > len(runs) {
				return nil, fmt.Errorf("av: block %d exceeds %d backing runs", b, len(runs))
			}
			prev := uint32(0)
			for i, r := range runs[blk.Off:runOff] {
				if r.End <= prev || int(r.VID) >= dictLen {
					return nil, fmt.Errorf("av: block %d run %d (vid %d, end %d) invalid", b, i, r.VID, r.End)
				}
				prev = r.End
			}
			if int(prev) != rows {
				return nil, fmt.Errorf("av: block %d runs cover %d rows, want %d", b, prev, rows)
			}
		default:
			return nil, fmt.Errorf("av: block %d has unknown encoding %d", b, blk.Enc)
		}
	}
	if wordOff != len(words) || runOff != len(runs) {
		return nil, fmt.Errorf("av: blocks cover %d/%d words and %d/%d runs", wordOff, len(words), runOff, len(runs))
	}
	return &Vector{n: n, w: w, dict: dictLen, words: words, blocks: blocks, runs: runs}, nil
}

// Len returns the number of rows.
func (v *Vector) Len() int { return v.n }

// Bits returns the per-code width in bits (the global width; FoR blocks
// store fewer).
func (v *Vector) Bits() int { return v.w }

// DictLen returns the dictionary size the vector was packed against.
func (v *Vector) DictLen() int { return v.dict }

// Words returns the raw bit-slice words. Exposed for serialization; callers
// must not modify them.
func (v *Vector) Words() []uint64 { return v.words }

// Blocks returns the per-block encoding metadata, nil for uniform vectors.
// Exposed for serialization and encoding stats; callers must not modify it.
func (v *Vector) Blocks() []Block { return v.blocks }

// Runs returns the RLE backing runs, nil for uniform vectors. Exposed for
// serialization; callers must not modify it.
func (v *Vector) Runs() []Run { return v.runs }

// MemBytes returns the memory footprint of the packed codes including
// per-block encoding metadata. The unpacked equivalent is 4*Len() bytes.
func (v *Vector) MemBytes() int {
	return len(v.words)*8 + len(v.runs)*8 + len(v.blocks)*blockMetaBytes
}

// groups returns the number of 64-row groups.
func (v *Vector) groups() int { return (v.n + GroupRows - 1) / GroupRows }

// codeMask returns the w-bit mask codes are truncated to.
func (v *Vector) codeMask() uint32 { return uint32((uint64(1) << uint(v.w)) - 1) }

// groupMask returns the valid-row mask of group g: all ones except in the
// final partial group. Every kernel's match words pass through exactly one
// emit point that applies it (emitOr/emitAnd, or span bounds that cannot
// exceed Len() by construction), so individual kernels never re-implement
// the trailing-group masking.
func (v *Vector) groupMask(g int) uint64 {
	if (g+1)*GroupRows <= v.n {
		return ^uint64(0)
	}
	return (uint64(1) << uint(v.n-g*GroupRows)) - 1
}

// emitOr is the single OR-mode emit point: the raw match word of group g is
// masked to the group's valid rows and ORed into out.
func (v *Vector) emitOr(out *ridset.Set, g int, m uint64) {
	if m &= v.groupMask(g); m != 0 {
		out.OrWord(g, m)
	}
}

// emitAnd is the single AND-mode emit point: the raw match word of group g
// is masked to the group's valid rows and ANDed into the accumulator. It
// reports whether the accumulator word remains non-empty.
func (v *Vector) emitAnd(acc *ridset.Set, g int, m uint64) bool {
	acc.AndWord(g, m&v.groupMask(g))
	return acc.Word(g) != 0
}

// blockOf returns the metadata of block b, synthesizing the uniform layout's
// implicit block for vectors produced by Pack.
func (v *Vector) blockOf(b int) Block {
	if v.blocks != nil {
		return v.blocks[b]
	}
	off := b * BlockGroups * v.w
	n := min(v.groups()-b*BlockGroups, BlockGroups) * v.w
	return Block{Enc: EncPacked, W: uint8(v.w), Off: uint32(off), N: uint32(n)}
}

// Get returns code i, reassembled from the block's representation.
func (v *Vector) Get(i int) uint32 {
	if v.w == 0 {
		return 0
	}
	if v.blocks == nil {
		return getSlices(v.words[(i/GroupRows)*v.w:], i%GroupRows, v.w)
	}
	blk := v.blocks[i/BlockRows]
	local := i % BlockRows
	switch blk.Enc {
	case EncRLE:
		for _, r := range v.runs[blk.Off : blk.Off+blk.N] {
			if uint32(local) < r.End {
				return r.VID
			}
		}
		return 0 // unreachable on validated vectors: runs cover the block
	default:
		return blk.Base + getSlices(v.words[int(blk.Off)+(local/GroupRows)*int(blk.W):], local%GroupRows, int(blk.W))
	}
}

// getSlices reassembles the code at row r (within its group) from w slice
// words.
func getSlices(sl []uint64, r, w int) uint32 {
	var c uint32
	for j := 0; j < w; j++ {
		c |= uint32((sl[j]>>uint(r))&1) << uint(j)
	}
	return c
}

// At is Get under the Codes interface.
func (v *Vector) At(i int) uint32 { return v.Get(i) }

// Set overwrites code i (truncated to the vector's width). It exists for
// tests that corrupt a split deliberately; production vectors are immutable
// after Pack. Encoded vectors are re-packed into the uniform layout first,
// since a point write cannot preserve block encodings in place. Not safe for
// use concurrent with readers.
func (v *Vector) Set(i int, code uint32) {
	if v.w == 0 {
		return
	}
	if v.blocks != nil {
		*v = *Pack(v.Unpack(), v.dict)
	}
	base := (i / GroupRows) * v.w
	bit := uint64(1) << uint(i%GroupRows)
	code &= v.codeMask()
	for j := 0; j < v.w; j++ {
		if code&(1<<uint(j)) != 0 {
			v.words[base+j] |= bit
		} else {
			v.words[base+j] &^= bit
		}
	}
}

// Unpack materializes the codes as a fresh []uint32.
func (v *Vector) Unpack() []uint32 {
	if v.n == 0 {
		return nil
	}
	out := make([]uint32, v.n)
	if v.w == 0 {
		return out
	}
	for b := 0; b*BlockRows < v.n; b++ {
		blk := v.blockOf(b)
		rows := min(v.n-b*BlockRows, BlockRows)
		dst := out[b*BlockRows : b*BlockRows+rows]
		if blk.Enc == EncRLE {
			start := 0
			for _, r := range v.runs[blk.Off : blk.Off+blk.N] {
				for ; start < int(r.End); start++ {
					dst[start] = r.VID
				}
			}
			continue
		}
		w := int(blk.W)
		for g := 0; g*GroupRows < rows; g++ {
			sl := v.words[int(blk.Off)+g*w : int(blk.Off)+(g+1)*w]
			gdst := dst[g*GroupRows : min(len(dst), (g+1)*GroupRows)]
			for i := range gdst {
				gdst[i] = blk.Base
			}
			for j, s := range sl {
				for s != 0 {
					r := bits.TrailingZeros64(s)
					gdst[r] += 1 << uint(j)
					s &= s - 1
				}
			}
		}
	}
	return out
}
