package av

import (
	"github.com/encdbdb/encdbdb/internal/ridset"
)

// The scan kernels. Every predicate shape (range disjunction, ValueID-set
// membership) exists in two combine modes over the same per-block dispatch:
//
//   - Or mode (ScanRanges, ScanBitset): the per-group match words are ORed
//     into out. Distinct group ranges touch disjoint words of out, so shards
//     of the parallel scan may run concurrently against the same set.
//   - Into mode (ScanRangesInto, ScanBitsetInto): the match words are ANDed
//     into an accumulator, fusing this predicate into a running conjunction.
//     Groups whose accumulator word is already zero are skipped without
//     evaluating the predicate — the early-out that makes fused conjunctions
//     cheaper the more selective the preceding predicates were. Within the
//     scanned window, accumulator bits of rows >= Len() are always cleared,
//     so a full-window fused scan leaves the boundary word exact. The bool
//     result reports whether any accumulator word in the window is still
//     non-zero, letting callers short-circuit the remaining predicates.
//
// Both modes share the single tail-masking emit points (emitOr/emitAnd); the
// only kernel path that bypasses them — the RLE span fill — cannot produce a
// row >= Len() by construction, since run ends never exceed the block's rows.

// ScanRanges evaluates the disjunction of the inclusive ValueID ranges over
// the row groups [gLo, gHi) and ORs the per-group 64-bit match words into
// out, whose universe must cover [0, Len()).
func (v *Vector) ScanRanges(out *ridset.Set, gLo, gHi int, ranges []Range) {
	v.scanRanges(out, gLo, gHi, ranges, false)
}

// ScanRangesInto fuses the range disjunction into acc: each group's match
// word is ANDed into the accumulator word, with zero-word early-out. It
// reports whether any word of [gLo, gHi) remains non-zero.
func (v *Vector) ScanRangesInto(acc *ridset.Set, gLo, gHi int, ranges []Range) bool {
	return v.scanRanges(acc, gLo, gHi, ranges, true)
}

func (v *Vector) scanRanges(set *ridset.Set, gLo, gHi int, ranges []Range, and bool) bool {
	// Clamp once: codes hold at most w bits, so a range reaching past the
	// largest representable code is truncated and a range starting past it
	// can never match.
	maxCode := uint32(0)
	if v.w > 0 {
		maxCode = v.codeMask()
	}
	// The dictionary searches emit at most two ranges; keep that common
	// case allocation-free.
	var buf [2]Range
	active := buf[:0]
	if len(ranges) > len(buf) {
		active = make([]Range, 0, len(ranges))
	}
	zeroMatch := false // does some range cover code 0 (the w==0 case)?
	for _, r := range ranges {
		if r.Lo > r.Hi || r.Lo > maxCode {
			continue
		}
		if r.Hi > maxCode {
			r.Hi = maxCode
		}
		if r.Lo == 0 {
			zeroMatch = true
		}
		active = append(active, r)
	}
	if len(active) == 0 {
		if and {
			return zeroWindow(set, gLo, gHi)
		}
		return false
	}
	if v.w == 0 {
		// Every code is 0: all rows match iff some range covers 0.
		return v.scanConst(set, gLo, gHi, zeroMatch, and)
	}
	if v.blocks == nil {
		any := false
		for g := gLo; g < gHi; g++ {
			if and && set.Word(g) == 0 {
				continue
			}
			m := rangesGroupWord(v.words[g*v.w:g*v.w+v.w], active)
			if and {
				if v.emitAnd(set, g, m) {
					any = true
				}
			} else {
				v.emitOr(set, g, m)
			}
		}
		return any
	}
	any := false
	for b := gLo / BlockGroups; b*BlockGroups < gHi; b++ {
		blk := v.blocks[b]
		bgLo, bgHi := v.blockWindow(b, gLo, gHi)
		if blk.Enc == EncRLE {
			if v.scanRuns(set, b, blk, bgLo, bgHi, func(vid uint32) bool {
				return rangesContain(active, vid)
			}, and) {
				any = true
			}
			continue
		}
		if v.scanSliceRanges(set, blk, bgLo, bgHi, active, and) {
			any = true
		}
	}
	return any
}

// scanSliceRanges evaluates the range disjunction over one packed or FoR
// block, translating the ranges into the block's base-subtracted code space.
func (v *Vector) scanSliceRanges(set *ridset.Set, blk Block, gLo, gHi int, active []Range, and bool) bool {
	var buf [2]Range
	tact := buf[:0]
	if len(active) > len(buf) {
		tact = make([]Range, 0, len(active))
	}
	maxStored := uint32((uint64(1) << uint(blk.W)) - 1)
	for _, r := range active {
		if r.Hi < blk.Base {
			continue
		}
		var lo uint32
		if r.Lo > blk.Base {
			lo = r.Lo - blk.Base
		}
		if lo > maxStored {
			continue
		}
		hi := r.Hi - blk.Base
		if hi > maxStored {
			hi = maxStored
		}
		tact = append(tact, Range{Lo: lo, Hi: hi})
	}
	if len(tact) == 0 {
		if and {
			return zeroWindow(set, gLo, gHi)
		}
		return false
	}
	if blk.W == 0 {
		// A constant FoR block: every row holds Base, and a surviving
		// translated range proves some query range covers it.
		return v.scanConst(set, gLo, gHi, true, and)
	}
	w, g0 := int(blk.W), (gLo/BlockGroups)*BlockGroups
	any := false
	for g := gLo; g < gHi; g++ {
		if and && set.Word(g) == 0 {
			continue
		}
		off := int(blk.Off) + (g-g0)*w
		m := rangesGroupWord(v.words[off:off+w], tact)
		if and {
			if v.emitAnd(set, g, m) {
				any = true
			}
		} else {
			v.emitOr(set, g, m)
		}
	}
	return any
}

// rangesGroupWord evaluates the range disjunction over one group's slices.
func rangesGroupWord(sl []uint64, active []Range) uint64 {
	var m uint64
	for _, r := range active {
		m |= scanRangeGroup(sl, r.Lo, r.Hi)
		if m == ^uint64(0) {
			break
		}
	}
	return m
}

// scanRangeGroup is the SWAR comparator: one 64-row group against one
// inclusive range. It walks the bit slices most-significant first, tracking
// per-row "still equal to the bound so far" masks for both bounds; a row
// leaves the undecided set the moment its code diverges from a bound, and
// the loop exits early once no row is undecided — for random codes that
// resolves after a handful of slices regardless of width.
func scanRangeGroup(sl []uint64, lo, hi uint32) uint64 {
	eqLo, eqHi := ^uint64(0), ^uint64(0)
	var ltLo, gtHi uint64
	for j := len(sl) - 1; j >= 0; j-- {
		s := sl[j]
		if (lo>>uint(j))&1 == 1 {
			ltLo |= eqLo &^ s
			eqLo &= s
		} else {
			eqLo &^= s
		}
		if (hi>>uint(j))&1 == 1 {
			eqHi &= s
		} else {
			gtHi |= eqHi & s
			eqHi &^= s
		}
		if eqLo|eqHi == 0 {
			break
		}
	}
	// code >= lo is "not below lo", code <= hi is "not above hi"; rows
	// still equal to a bound after all slices are inside the range.
	return ^(ltLo | gtHi)
}

// ScanBitset evaluates ValueID-set membership over the row groups
// [gLo, gHi) and ORs the per-group match words into out. set is a bitmap
// over ValueIDs (bit u = ValueID u matches) as built from an unsorted
// dictionary search's ID list. The group's 64 codes are reassembled with
// one in-register 64x64 bit-matrix transpose of the slice words — a cost
// independent of the code width — then probed against the bitmap.
func (v *Vector) ScanBitset(out *ridset.Set, gLo, gHi int, set []uint64) {
	v.scanBitset(out, gLo, gHi, set, false)
}

// ScanBitsetInto fuses the membership test into acc: each group's match word
// is ANDed into the accumulator word, with zero-word early-out (which also
// skips that group's transpose entirely). It reports whether any word of
// [gLo, gHi) remains non-zero.
func (v *Vector) ScanBitsetInto(acc *ridset.Set, gLo, gHi int, set []uint64) bool {
	return v.scanBitset(acc, gLo, gHi, set, true)
}

func (v *Vector) scanBitset(set *ridset.Set, gLo, gHi int, bset []uint64, and bool) bool {
	if len(bset) == 0 {
		if and {
			return zeroWindow(set, gLo, gHi)
		}
		return false
	}
	if v.w == 0 {
		return v.scanConst(set, gLo, gHi, bset[0]&1 != 0, and)
	}
	limit := uint64(len(bset) * 64)
	if v.blocks == nil {
		any := false
		for g := gLo; g < gHi; g++ {
			if and && set.Word(g) == 0 {
				continue
			}
			m := bitsetGroupWord(v.words[g*v.w:g*v.w+v.w], 0, bset, limit)
			if and {
				if v.emitAnd(set, g, m) {
					any = true
				}
			} else {
				v.emitOr(set, g, m)
			}
		}
		return any
	}
	any := false
	for b := gLo / BlockGroups; b*BlockGroups < gHi; b++ {
		blk := v.blocks[b]
		bgLo, bgHi := v.blockWindow(b, gLo, gHi)
		if blk.Enc == EncRLE {
			if v.scanRuns(set, b, blk, bgLo, bgHi, func(vid uint32) bool {
				return uint64(vid) < limit && bset[vid/64]&(1<<(vid%64)) != 0
			}, and) {
				any = true
			}
			continue
		}
		if blk.W == 0 {
			c := uint64(blk.Base)
			hit := c < limit && bset[c/64]&(1<<(c%64)) != 0
			if v.scanConst(set, bgLo, bgHi, hit, and) {
				any = true
			}
			continue
		}
		w, g0 := int(blk.W), (bgLo/BlockGroups)*BlockGroups
		for g := bgLo; g < bgHi; g++ {
			if and && set.Word(g) == 0 {
				continue
			}
			off := int(blk.Off) + (g-g0)*w
			m := bitsetGroupWord(v.words[off:off+w], blk.Base, bset, limit)
			if and {
				if v.emitAnd(set, g, m) {
					any = true
				}
			} else {
				v.emitOr(set, g, m)
			}
		}
	}
	return any
}

// bitsetGroupWord reassembles one group's 64 codes from w slice words via
// transpose, offsets them by the block base, and probes each against the
// membership bitmap.
func bitsetGroupWord(sl []uint64, base uint32, bset []uint64, limit uint64) uint64 {
	// transpose64 mirrors about the anti-diagonal — (row, bit) maps
	// to (63-bit, 63-row) — so loading slice j at row 63-j makes
	// row 63-r come out as exactly code r, unmirrored.
	var a [GroupRows]uint64
	for j, s := range sl {
		a[GroupRows-1-j] = s
	}
	transpose64(&a)
	var m uint64
	for r := 0; r < GroupRows; r++ {
		c := uint64(base) + a[GroupRows-1-r]
		// c can reach past |D|-1 when |D| is not a power of two; such
		// codes never appear in validated vectors but the bounds check
		// keeps corrupt input safe.
		if c < limit && bset[c/64]&(1<<(c%64)) != 0 {
			m |= 1 << uint(r)
		}
	}
	return m
}

// transpose64 transposes the 64x64 bit matrix held row-major in a, using
// the classic recursive block-swap (Hacker's Delight §7-3). Feeding it a
// group's slice words (row j = bit-slice j) yields the group's codes (row r
// = code of row r), which is how the bitset kernels unpack 64 codes in ~6
// passes of register operations regardless of width.
func transpose64(a *[GroupRows]uint64) {
	j := uint(32)
	m := uint64(0x00000000FFFFFFFF)
	for j != 0 {
		for k := 0; k < GroupRows; k = (k + int(j) + 1) &^ int(j) {
			t := (a[k] ^ (a[k+int(j)] >> j)) & m
			a[k] ^= t
			a[k+int(j)] ^= t << j
		}
		j >>= 1
		m ^= m << j
	}
}

// scanRuns evaluates a predicate over one RLE block: each run's ValueID is
// tested once, making the block O(runs + touched words) instead of O(rows).
// Or mode fills whole row spans per matching run; Into mode walks the window
// group by group with a monotone run cursor so the zero-word early-out still
// skips dead groups.
func (v *Vector) scanRuns(set *ridset.Set, b int, blk Block, gLo, gHi int, match func(uint32) bool, and bool) bool {
	runs := v.runs[blk.Off : blk.Off+blk.N]
	rowBase := b * BlockRows
	if !and {
		winLo, winHi := gLo*GroupRows, gHi*GroupRows
		start := rowBase
		for _, r := range runs {
			end := rowBase + int(r.End)
			if end > winLo && match(r.VID) {
				lo, hi := start, end
				if lo < winLo {
					lo = winLo
				}
				if hi > winHi {
					hi = winHi
				}
				orSpan(set, lo, hi)
			}
			if end >= winHi {
				break
			}
			start = end
		}
		return false
	}
	cur := 0
	any := false
	for g := gLo; g < gHi; g++ {
		if set.Word(g) == 0 {
			continue
		}
		lo := g*GroupRows - rowBase // block-local row window of group g
		hi := lo + GroupRows
		if rows := min(v.n-rowBase, BlockRows); hi > rows {
			hi = rows
		}
		for cur < len(runs) && int(runs[cur].End) <= lo {
			cur++
		}
		var m uint64
		start := lo
		for i := cur; i < len(runs) && start < hi; i++ {
			end := int(runs[i].End)
			if end > hi {
				end = hi
			}
			if match(runs[i].VID) {
				m |= spanWordMask(start-lo, end-lo)
			}
			start = end
		}
		if v.emitAnd(set, g, m) {
			any = true
		}
	}
	return any
}

// scanConst combines an all-rows-match (or no-rows-match) verdict over the
// window — the w==0 and constant-block paths.
func (v *Vector) scanConst(set *ridset.Set, gLo, gHi int, matchAll, and bool) bool {
	if !and {
		if matchAll {
			for g := gLo; g < gHi; g++ {
				set.OrWord(g, v.groupMask(g))
			}
		}
		return false
	}
	if !matchAll {
		return zeroWindow(set, gLo, gHi)
	}
	any := false
	for g := gLo; g < gHi; g++ {
		if v.emitAnd(set, g, ^uint64(0)) {
			any = true
		}
	}
	return any
}

// blockWindow intersects the scan window [gLo, gHi) with block b's groups.
func (v *Vector) blockWindow(b, gLo, gHi int) (int, int) {
	lo, hi := b*BlockGroups, (b+1)*BlockGroups
	if g := v.groups(); hi > g {
		hi = g
	}
	if lo < gLo {
		lo = gLo
	}
	if hi > gHi {
		hi = gHi
	}
	return lo, hi
}

// rangesContain reports whether vid falls in any of the ranges.
func rangesContain(ranges []Range, vid uint32) bool {
	for _, r := range ranges {
		if vid >= r.Lo && vid <= r.Hi {
			return true
		}
	}
	return false
}

// zeroWindow clears every accumulator word of [gLo, gHi) — the Into-mode
// result of a predicate that cannot match.
func zeroWindow(set *ridset.Set, gLo, gHi int) bool {
	for g := gLo; g < gHi; g++ {
		set.AndWord(g, 0)
	}
	return false
}

// spanWordMask returns the word mask with bits [a, b) set, 0 <= a < b <= 64.
func spanWordMask(a, b int) uint64 {
	return (^uint64(0) >> uint(GroupRows-(b-a))) << uint(a)
}

// orSpan ORs the row span [lo, hi) into the set word-parallel. Spans come
// from RLE runs clamped to the scan window, so they never reach past the
// vector's rows and stay within the window's words.
func orSpan(set *ridset.Set, lo, hi int) {
	if lo >= hi {
		return
	}
	wl, wh := lo/GroupRows, (hi-1)/GroupRows
	if wl == wh {
		set.OrWord(wl, spanWordMask(lo%GroupRows, (hi-1)%GroupRows+1))
		return
	}
	set.OrWord(wl, ^uint64(0)<<uint(lo%GroupRows))
	for w := wl + 1; w < wh; w++ {
		set.OrWord(w, ^uint64(0))
	}
	set.OrWord(wh, spanWordMask(0, (hi-1)%GroupRows+1))
}
