package av

import (
	"math/rand"
	"testing"

	"github.com/encdbdb/encdbdb/internal/ridset"
)

// codeGens produces the value distributions the encoding selector must
// handle: uniform noise (stays packed), sorted and few-valued clustered
// columns (RLE), narrow-spread clustered blocks (FoR), ascending identities
// (FoR via per-block min), constants, and a mix that switches distribution
// per block so one vector carries several encodings at once.
var codeGens = []struct {
	name string
	gen  func(rng *rand.Rand, n, dictLen int) []uint32
}{
	{"uniform", randCodes},
	{"sorted", func(rng *rand.Rand, n, d int) []uint32 {
		codes := randCodes(rng, n, d)
		for i := 1; i < n; i++ {
			for j := i; j > 0 && codes[j] < codes[j-1]; j-- {
				codes[j], codes[j-1] = codes[j-1], codes[j]
			}
		}
		return codes
	}},
	{"runs", func(rng *rand.Rand, n, d int) []uint32 {
		codes := make([]uint32, n)
		cur := uint32(rng.Intn(d))
		for i := range codes {
			if rng.Intn(97) == 0 {
				cur = uint32(rng.Intn(d))
			}
			codes[i] = cur
		}
		return codes
	}},
	{"narrow", func(rng *rand.Rand, n, d int) []uint32 {
		codes := make([]uint32, n)
		for i := range codes {
			base := uint32((i / BlockRows * 37) % d)
			span := d - int(base)
			if span > 5 {
				span = 5
			}
			codes[i] = base + uint32(rng.Intn(span))
		}
		return codes
	}},
	{"identity", func(rng *rand.Rand, n, d int) []uint32 {
		codes := make([]uint32, n)
		for i := range codes {
			codes[i] = uint32(i % d)
		}
		return codes
	}},
	{"const", func(rng *rand.Rand, n, d int) []uint32 {
		codes := make([]uint32, n)
		c := uint32(rng.Intn(d))
		for i := range codes {
			codes[i] = c
		}
		return codes
	}},
	{"mixed", func(rng *rand.Rand, n, d int) []uint32 {
		codes := make([]uint32, n)
		for i := range codes {
			switch (i / BlockRows) % 3 {
			case 0:
				codes[i] = uint32(rng.Intn(d))
			case 1:
				codes[i] = uint32((i / 131) % d)
			default:
				codes[i] = uint32(i%3) % uint32(d)
			}
		}
		return codes
	}},
}

var encSizes = []int{1, 63, 64, 65, BlockRows - 1, BlockRows, BlockRows + 1, 3*BlockRows + 200}

func TestPackEncodedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, d := range []int{1, 2, 17, 256, 4097, 65537} {
		for _, n := range encSizes {
			for _, gen := range codeGens {
				codes := gen.gen(rng, n, d)
				v := PackEncoded(codes, d)
				if v.Len() != n || v.Bits() != Width(d) || v.DictLen() != d {
					t.Fatalf("%s |D|=%d n=%d: shape Len=%d Bits=%d DictLen=%d",
						gen.name, d, n, v.Len(), v.Bits(), v.DictLen())
				}
				back := v.Unpack()
				for i, c := range codes {
					if back[i] != c {
						t.Fatalf("%s |D|=%d n=%d: Unpack[%d] = %d, want %d", gen.name, d, n, i, back[i], c)
					}
					if got := v.Get(i); got != c {
						t.Fatalf("%s |D|=%d n=%d: Get(%d) = %d, want %d", gen.name, d, n, i, got, c)
					}
				}
			}
		}
	}
}

// TestPackEncodedSelection pins the heuristic's headline cases: sorted and
// constant columns become RLE, ascending identities become 10-bit FoR
// blocks, and uniform noise keeps the canonical uniform layout (so v2 files
// and FromWords stay byte-compatible).
func TestPackEncodedSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n, d := 4*BlockRows, 1<<16

	if v := PackEncoded(randCodes(rng, n, d), d); v.Blocks() != nil {
		t.Error("uniform noise picked block encodings; want canonical uniform layout")
	}

	sorted := codeGens[1].gen(rng, n, 100) // few distinct values, sorted
	v := PackEncoded(sorted, d)
	if v.Blocks() == nil {
		t.Fatal("sorted few-valued column stayed uniform")
	}
	for b, blk := range v.Blocks() {
		if blk.Enc != EncRLE {
			t.Errorf("sorted column block %d = %v, want rle", b, blk.Enc)
		}
	}

	ident := make([]uint32, n)
	for i := range ident {
		ident[i] = uint32(i)
	}
	v = PackEncoded(ident, n)
	if v.Blocks() == nil {
		t.Fatal("identity column stayed uniform")
	}
	for b, blk := range v.Blocks() {
		if blk.Enc != EncFoR || blk.W != 10 || blk.Base != uint32(b*BlockRows) {
			t.Errorf("identity block %d = {%v w=%d base=%d}, want FoR w=10 base=%d",
				b, blk.Enc, blk.W, blk.Base, b*BlockRows)
		}
	}
	if got, full := v.MemBytes(), Pack(ident, n).MemBytes(); got >= full {
		t.Errorf("FoR identity vector costs %dB, packed %dB — no narrowing", got, full)
	}
}

// TestEncodedScanMatchesReference re-runs the central kernel equivalence
// over every encoding distribution: PackEncoded's scans must agree with the
// per-element reference (and hence with Pack's scans) for ranges and bitsets
// alike, over full and partial group windows.
func TestEncodedScanMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, d := range []int{2, 300, 4097} {
		for _, n := range []int{65, BlockRows, 3*BlockRows + 200} {
			for _, gen := range codeGens {
				codes := gen.gen(rng, n, d)
				v := PackEncoded(codes, d)
				groups := (n + 63) / 64
				for trial := 0; trial < 10; trial++ {
					gLo, gHi := 0, groups
					if trial >= 5 { // partial windows
						gLo = rng.Intn(groups)
						gHi = gLo + 1 + rng.Intn(groups-gLo)
					}
					lo := uint32(rng.Intn(d))
					hi := lo + uint32(rng.Intn(d-int(lo)))
					ranges := []Range{{Lo: lo, Hi: hi}}
					out := ridset.New(n)
					v.ScanRanges(out, gLo, gHi, ranges)
					want := windowOnly(refRangeScan(codes, ranges), gLo, gHi)
					sameSet(t, out, want, gen.name+"/ranges")

					set := make([]uint64, (d+63)/64)
					for k := 0; k < 1+rng.Intn(8); k++ {
						u := rng.Intn(d)
						set[u/64] |= 1 << (u % 64)
					}
					out = ridset.New(n)
					v.ScanBitset(out, gLo, gHi, set)
					want = windowOnly(refBitsetScan(codes, set), gLo, gHi)
					sameSet(t, out, want, gen.name+"/bitset")
				}
			}
		}
	}
}

// TestScanIntoMatchesTwoPass is the fused-kernel property at the av layer:
// ANDing a predicate into an accumulator must equal scanning it into a fresh
// set and intersecting afterwards — for every encoding, window, and a
// randomly pre-populated accumulator — and the returned any-flag must mirror
// whether the window kept rows.
func TestScanIntoMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for _, d := range []int{2, 300, 4097} {
		for _, n := range []int{65, BlockRows + 70, 2*BlockRows + 200} {
			for _, gen := range codeGens {
				codes := gen.gen(rng, n, d)
				v := PackEncoded(codes, d)
				groups := (n + 63) / 64
				for trial := 0; trial < 10; trial++ {
					gLo := rng.Intn(groups)
					gHi := gLo + 1 + rng.Intn(groups-gLo)
					acc0 := ridset.New(n)
					for i := 0; i < n; i++ {
						if rng.Intn(3) > 0 {
							acc0.Add(uint32(i))
						}
					}
					lo := uint32(rng.Intn(d))
					hi := lo + uint32(rng.Intn(d-int(lo)))
					ranges := []Range{{Lo: lo, Hi: hi}}

					fused := acc0.Clone()
					any := v.ScanRangesInto(fused, gLo, gHi, ranges)
					two := ridset.New(n)
					v.ScanRanges(two, gLo, gHi, ranges)
					want := acc0.Clone()
					intersectWindow(want, two, gLo, gHi)
					sameSet(t, fused, want, gen.name+"/rangesInto")
					if any != windowHasRows(fused, gLo, gHi) {
						t.Fatalf("%s: rangesInto any=%v, window rows=%v", gen.name, any, !any)
					}

					set := make([]uint64, (d+63)/64)
					for k := 0; k < 1+rng.Intn(8); k++ {
						u := rng.Intn(d)
						set[u/64] |= 1 << (u % 64)
					}
					fused = acc0.Clone()
					any = v.ScanBitsetInto(fused, gLo, gHi, set)
					two = ridset.New(n)
					v.ScanBitset(two, gLo, gHi, set)
					want = acc0.Clone()
					intersectWindow(want, two, gLo, gHi)
					sameSet(t, fused, want, gen.name+"/bitsetInto")
					if any != windowHasRows(fused, gLo, gHi) {
						t.Fatalf("%s: bitsetInto any=%v, window rows=%v", gen.name, any, !any)
					}
				}
			}
		}
	}
}

// TestFromEncodedValidates round-trips an encoded vector through its
// serialized parts and rejects the structural corruptions a hostile file
// could carry.
func TestFromEncodedValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	n, d := 2*BlockRows+200, 4097
	codes := codeGens[6].gen(rng, n, d) // mixed: all three encodings
	v := PackEncoded(codes, d)
	if v.Blocks() == nil {
		t.Fatal("mixed distribution stayed uniform; selection test gap")
	}
	good, err := FromEncoded(v.Words(), v.Blocks(), v.Runs(), n, v.Bits(), d)
	if err != nil {
		t.Fatalf("FromEncoded round trip: %v", err)
	}
	for i, c := range codes {
		if good.Get(i) != c {
			t.Fatalf("FromEncoded Get(%d) = %d, want %d", i, good.Get(i), c)
		}
	}

	// Uniform fallback: no blocks delegates to FromWords.
	u := Pack(codes, d)
	if _, err := FromEncoded(u.Words(), nil, nil, n, u.Bits(), d); err != nil {
		t.Fatalf("uniform FromEncoded: %v", err)
	}
	if _, err := FromEncoded(u.Words(), nil, []Run{{VID: 0, End: 1}}, n, u.Bits(), d); err == nil {
		t.Error("runs without blocks accepted")
	}

	corrupt := func(name string, mut func(words []uint64, blocks []Block, runs []Run) ([]uint64, []Block, []Run)) {
		w := append([]uint64(nil), v.Words()...)
		b := append([]Block(nil), v.Blocks()...)
		r := append([]Run(nil), v.Runs()...)
		w, b, r = mut(w, b, r)
		if _, err := FromEncoded(w, b, r, n, v.Bits(), d); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	corrupt("wrong block count", func(w []uint64, b []Block, r []Run) ([]uint64, []Block, []Run) {
		return w, b[:len(b)-1], r
	})
	corrupt("unknown encoding tag", func(w []uint64, b []Block, r []Run) ([]uint64, []Block, []Run) {
		b[0].Enc = Encoding(9)
		return w, b, r
	})
	corrupt("non-tiling word offset", func(w []uint64, b []Block, r []Run) ([]uint64, []Block, []Run) {
		for i := range b {
			if b[i].Enc != EncRLE {
				b[i].Off++
				break
			}
		}
		return w, b, r
	})
	corrupt("FoR width not narrower", func(w []uint64, b []Block, r []Run) ([]uint64, []Block, []Run) {
		for i := range b {
			if b[i].Enc == EncFoR {
				b[i].W = uint8(v.Bits())
				break
			}
		}
		return w, b, r
	})
	corrupt("run end regression", func(w []uint64, b []Block, r []Run) ([]uint64, []Block, []Run) {
		for i := range b {
			if b[i].Enc == EncRLE && b[i].N >= 2 {
				r[b[i].Off+1].End = r[b[i].Off].End
				return w, b, r
			}
		}
		t.Fatal("no multi-run RLE block to corrupt")
		return w, b, r
	})
	corrupt("runs not covering block", func(w []uint64, b []Block, r []Run) ([]uint64, []Block, []Run) {
		for i := range b {
			if b[i].Enc == EncRLE {
				r[b[i].Off+b[i].N-1].End--
				return w, b, r
			}
		}
		return w, b, r
	})
	corrupt("run VID out of dictionary", func(w []uint64, b []Block, r []Run) ([]uint64, []Block, []Run) {
		for i := range b {
			if b[i].Enc == EncRLE {
				r[b[i].Off].VID = uint32(d)
				return w, b, r
			}
		}
		return w, b, r
	})
}

// TestEncodedSetRepacks checks the test hook on encoded vectors: a point
// write re-packs to the uniform layout without disturbing neighbors.
func TestEncodedSetRepacks(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	codes := codeGens[4].gen(rng, BlockRows+100, BlockRows+100) // identity: FoR blocks
	v := PackEncoded(codes, len(codes))
	if v.Blocks() == nil {
		t.Fatal("identity vector stayed uniform")
	}
	v.Set(70, 3)
	codes[70] = 3
	if v.Blocks() != nil {
		t.Error("Set left block encodings in place")
	}
	for i, c := range codes {
		if v.Get(i) != c {
			t.Fatalf("Get(%d) = %d after Set, want %d", i, v.Get(i), c)
		}
	}
}

// TestKernelsRespectUniverse asserts the central tail-mask contract: no
// kernel, over any encoding, may set a bit at or beyond Len() — the ridset
// tail invariant depends on it.
func TestKernelsRespectUniverse(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for _, gen := range codeGens {
		n, d := BlockRows+37, 300 // partial final group and partial block
		codes := gen.gen(rng, n, d)
		v := PackEncoded(codes, d)
		groups := (n + 63) / 64
		// Oversized universe: rows [n, universe) must stay untouched by Or
		// kernels and be cleared inside the window by Into kernels.
		out := ridset.New(n + 64)
		v.ScanRanges(out, 0, groups, []Range{{Lo: 0, Hi: uint32(d)}})
		acc := ridset.Full(n + 64)
		v.ScanRangesInto(acc, 0, groups, []Range{{Lo: 0, Hi: uint32(d)}})
		for r := n; r < n+64; r++ {
			if out.Contains(uint32(r)) {
				t.Fatalf("%s: Or kernel set phantom row %d (n=%d)", gen.name, r, n)
			}
			if r < groups*64 && acc.Contains(uint32(r)) {
				t.Fatalf("%s: Into kernel kept phantom row %d (n=%d)", gen.name, r, n)
			}
		}
	}
}

// windowOnly restricts a reference set to the groups [gLo, gHi).
func windowOnly(s *ridset.Set, gLo, gHi int) *ridset.Set {
	out := ridset.New(s.Universe())
	s.ForEach(func(r uint32) {
		if int(r) >= gLo*64 && int(r) < gHi*64 {
			out.Add(r)
		}
	})
	return out
}

// intersectWindow ANDs other into s on the groups [gLo, gHi), leaving the
// rest of s untouched — the reference semantics of the Into kernels.
func intersectWindow(s, other *ridset.Set, gLo, gHi int) {
	for g := gLo; g < gHi; g++ {
		s.AndWord(g, other.Word(g))
	}
}

// windowHasRows reports whether s holds any row in the groups [gLo, gHi).
func windowHasRows(s *ridset.Set, gLo, gHi int) bool {
	for g := gLo; g < gHi; g++ {
		if s.Word(g) != 0 {
			return true
		}
	}
	return false
}
