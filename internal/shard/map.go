package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Strategy names the partitioning function a Map uses.
const (
	// StrategyHash spreads the insert stream over all shards with a 64-bit
	// mix of the logical RecordID — the default, balanced under any insert
	// pattern.
	StrategyHash = "hash"
	// StrategyRange assigns contiguous RecordID ranges: shard i owns
	// [Bounds[i-1], Bounds[i]) with implicit 0 and +inf at the ends. Useful
	// when later rows should land on later shards (time-ordered data).
	StrategyRange = "range"
)

// Desc describes one shard of a Map.
type Desc struct {
	// Name is the shard's stable identity in errors, metrics, and the
	// topology display.
	Name string `json:"name"`
	// Addr is the shard's provider address (host:port), informational for
	// embedded backends.
	Addr string `json:"addr"`
}

// Map is the shard-map catalog: the versioned description of the fleet and
// how the insert stream partitions across it. It serializes to JSON in the
// proxy's data directory so a restarted proxy routes exactly like its
// predecessor.
type Map struct {
	// Version counts catalog revisions; Save bumps it so a newer file always
	// wins over a stale one.
	Version int `json:"version"`
	// Strategy selects the partitioner: StrategyHash or StrategyRange.
	Strategy string `json:"strategy"`
	// Shards lists the fleet in routing order. Order matters: the hash
	// partitioner indexes into it, scatter results merge in its order.
	Shards []Desc `json:"shards"`
	// Bounds are the range strategy's split points: len(Shards)-1 ascending
	// logical RecordIDs, where shard i owns [Bounds[i-1], Bounds[i]).
	// Unused (and empty) under the hash strategy.
	Bounds []uint64 `json:"bounds,omitempty"`
}

// NewHashMap builds a hash-partitioned map over the given provider
// addresses, naming shards shard0..shardN-1.
func NewHashMap(addrs []string) *Map {
	m := &Map{Version: 1, Strategy: StrategyHash}
	for i, a := range addrs {
		m.Shards = append(m.Shards, Desc{Name: fmt.Sprintf("shard%d", i), Addr: a})
	}
	return m
}

// NewRangeMap builds a range-partitioned map: bounds are the len(addrs)-1
// ascending split points of the logical RecordID space.
func NewRangeMap(addrs []string, bounds []uint64) *Map {
	m := NewHashMap(addrs)
	m.Strategy = StrategyRange
	m.Bounds = append([]uint64(nil), bounds...)
	return m
}

// Validate checks the catalog's invariants.
func (m *Map) Validate() error {
	if len(m.Shards) == 0 {
		return fmt.Errorf("shard: map has no shards")
	}
	seen := make(map[string]bool, len(m.Shards))
	for i, s := range m.Shards {
		if s.Name == "" {
			return fmt.Errorf("shard: shard %d has no name", i)
		}
		if seen[s.Name] {
			return fmt.Errorf("shard: duplicate shard name %q", s.Name)
		}
		seen[s.Name] = true
	}
	switch m.Strategy {
	case StrategyHash:
		if len(m.Bounds) != 0 {
			return fmt.Errorf("shard: hash strategy takes no bounds")
		}
	case StrategyRange:
		if len(m.Bounds) != len(m.Shards)-1 {
			return fmt.Errorf("shard: range strategy over %d shards needs %d bounds, got %d",
				len(m.Shards), len(m.Shards)-1, len(m.Bounds))
		}
		for i := 1; i < len(m.Bounds); i++ {
			if m.Bounds[i] <= m.Bounds[i-1] {
				return fmt.Errorf("shard: bounds must ascend (bound %d = %d <= %d)", i, m.Bounds[i], m.Bounds[i-1])
			}
		}
	default:
		return fmt.Errorf("shard: unknown strategy %q", m.Strategy)
	}
	return nil
}

// Partitioner returns the map's routing function.
func (m *Map) Partitioner() (Partitioner, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.Strategy == StrategyRange {
		return rangePartitioner{bounds: m.Bounds}, nil
	}
	return hashPartitioner{n: len(m.Shards)}, nil
}

// MapFileName is the catalog's file name inside a data directory.
const MapFileName = "shardmap.json"

// LoadMap reads and validates a serialized catalog. path may be the catalog
// file itself or a data directory containing MapFileName.
func LoadMap(path string) (*Map, error) {
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		path = filepath.Join(path, MapFileName)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: read map: %w", err)
	}
	var m Map
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("shard: parse map %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("shard: %s: %w", path, err)
	}
	return &m, nil
}

// Save atomically writes the catalog (bumping Version first) into dir, or to
// an explicit file path ending in .json. The write-then-rename keeps a crash
// from ever leaving a torn catalog behind.
func (m *Map) Save(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if filepath.Ext(path) != ".json" {
		if err := os.MkdirAll(path, 0o755); err != nil {
			return err
		}
		path = filepath.Join(path, MapFileName)
	}
	m.Version++
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Partitioner maps a logical RecordID — the proxy-side per-table insert
// sequence number — to the index of its owning shard.
type Partitioner interface {
	Owner(rid uint64) int
}

// hashPartitioner spreads RecordIDs with the splitmix64 finalizer: cheap,
// stateless, and uniform even on the sequential IDs the insert path
// produces.
type hashPartitioner struct{ n int }

func (h hashPartitioner) Owner(rid uint64) int {
	z := rid + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return int(z % uint64(h.n))
}

// rangePartitioner assigns contiguous RecordID ranges by binary search over
// the split points.
type rangePartitioner struct{ bounds []uint64 }

func (r rangePartitioner) Owner(rid uint64) int {
	lo, hi := 0, len(r.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if rid >= r.bounds[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
