package shard

import (
	"context"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/proxy"
)

func TestMapSaveLoadRoundtrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data", "proxy") // Save must create it
	m := NewHashMap([]string{"h1:7687", "h2:7687", "h3:7687"})
	if err := m.Save(dir); err != nil {
		t.Fatalf("Save(dir): %v", err)
	}
	if m.Version != 2 {
		t.Errorf("Save must bump Version: got %d, want 2", m.Version)
	}
	for _, path := range []string{dir, filepath.Join(dir, MapFileName)} {
		got, err := LoadMap(path)
		if err != nil {
			t.Fatalf("LoadMap(%s): %v", path, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("LoadMap(%s) = %+v, want %+v", path, got, m)
		}
	}
	// A missing catalog is ErrNotExist so callers can fall through to -shards.
	if _, err := LoadMap(filepath.Join(dir, "nope")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("LoadMap(missing) err = %v, want ErrNotExist", err)
	}

	rm := NewRangeMap([]string{"a:1", "b:1"}, []uint64{100})
	file := filepath.Join(t.TempDir(), "catalog.json")
	if err := rm.Save(file); err != nil {
		t.Fatalf("Save(file): %v", err)
	}
	got, err := LoadMap(file)
	if err != nil {
		t.Fatalf("LoadMap(file): %v", err)
	}
	if !reflect.DeepEqual(got, rm) {
		t.Errorf("range roundtrip = %+v, want %+v", got, rm)
	}
}

func TestMapValidate(t *testing.T) {
	cases := []struct {
		name string
		m    *Map
	}{
		{"empty", &Map{Strategy: StrategyHash}},
		{"unnamed shard", &Map{Strategy: StrategyHash, Shards: []Desc{{Addr: "a:1"}}}},
		{"duplicate name", &Map{Strategy: StrategyHash, Shards: []Desc{{Name: "s"}, {Name: "s"}}}},
		{"unknown strategy", &Map{Strategy: "modulo", Shards: []Desc{{Name: "s"}}}},
		{"hash with bounds", &Map{Strategy: StrategyHash, Shards: []Desc{{Name: "s"}}, Bounds: []uint64{1}}},
		{"range bound count", NewRangeMap([]string{"a", "b", "c"}, []uint64{5})},
		{"range bounds not ascending", NewRangeMap([]string{"a", "b", "c"}, []uint64{9, 9})},
	}
	for _, tc := range cases {
		if err := tc.m.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tc.name)
		}
	}
	if err := NewHashMap([]string{"a", "b"}).Validate(); err != nil {
		t.Errorf("valid hash map: %v", err)
	}
	if err := NewRangeMap([]string{"a", "b", "c"}, []uint64{10, 20}).Validate(); err != nil {
		t.Errorf("valid range map: %v", err)
	}
}

func TestHashPartitionerBalance(t *testing.T) {
	const shards, rids = 4, 100_000
	m := NewHashMap([]string{"a", "b", "c", "d"})
	part, err := m.Partitioner()
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, shards)
	for rid := uint64(0); rid < rids; rid++ {
		i := part.Owner(rid)
		if i < 0 || i >= shards {
			t.Fatalf("Owner(%d) = %d out of range", rid, i)
		}
		counts[i]++
	}
	for i, n := range counts {
		// A uniform split is 25%; sequential RecordIDs must not skew any
		// shard past 20-30%.
		if n < rids/5 || n > 3*rids/10 {
			t.Errorf("shard %d owns %d of %d rids — hash is skewed: %v", i, n, rids, counts)
		}
	}
}

func TestRangePartitionerBounds(t *testing.T) {
	m := NewRangeMap([]string{"a", "b", "c"}, []uint64{10, 20})
	part, err := m.Partitioner()
	if err != nil {
		t.Fatal(err)
	}
	for rid, want := range map[uint64]int{0: 0, 9: 0, 10: 1, 19: 1, 20: 2, 1 << 40: 2} {
		if got := part.Owner(rid); got != want {
			t.Errorf("Owner(%d) = %d, want %d", rid, got, want)
		}
	}
}

// stubBackend is a minimal proxy.Executor whose Select serves fixed cells for
// one column "c" and whose failures are switchable at runtime.
type stubBackend struct {
	rows    []string
	fail    atomic.Bool
	selects atomic.Int64
	inserts atomic.Int64
}

func (s *stubBackend) err() error {
	if s.fail.Load() {
		return errors.New("connection refused")
	}
	return nil
}

func (s *stubBackend) Select(ctx context.Context, q engine.Query) (*engine.Result, error) {
	s.selects.Add(1)
	if err := s.err(); err != nil {
		return nil, err
	}
	rows := s.rows
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	cells := make([][]byte, len(rows))
	for i, r := range rows {
		cells[i] = []byte(r)
	}
	if q.CountOnly {
		return &engine.Result{Count: len(rows)}, nil
	}
	return &engine.Result{
		Count:   len(rows),
		Columns: []engine.ResultColumn{{Table: "t", Column: "c", Cells: cells}},
	}, nil
}

func (s *stubBackend) Insert(context.Context, string, engine.Row) error {
	s.inserts.Add(1)
	return s.err()
}

func (s *stubBackend) Schema(string) (engine.Schema, error) { return engine.Schema{}, s.err() }
func (s *stubBackend) CreateTable(engine.Schema) error      { return s.err() }
func (s *stubBackend) DropTable(string) error               { return s.err() }
func (s *stubBackend) Delete(context.Context, string, []engine.Filter) (int, error) {
	return 0, s.err()
}
func (s *stubBackend) Update(context.Context, string, []engine.Filter, engine.Row) (int, error) {
	return 0, s.err()
}
func (s *stubBackend) Merge(context.Context, string) error { return s.err() }
func (s *stubBackend) MergeAsync(context.Context, string) (bool, error) {
	return false, s.err()
}
func (s *stubBackend) MergeStatus(context.Context, string) (engine.MergeInfo, error) {
	return engine.MergeInfo{}, s.err()
}

func newStubFleet(t *testing.T, m *Map, stubs ...*stubBackend) *Executor {
	t.Helper()
	backends := make([]proxy.Executor, len(stubs))
	for i, s := range stubs {
		backends[i] = s
	}
	e, err := NewExecutor(m, backends, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestInsertRouting pins the logical-RecordID routing: under a range map with
// a split at 3, the first three inserts land on shard0 and the rest on
// shard1, deterministically.
func TestInsertRouting(t *testing.T) {
	s0, s1 := &stubBackend{}, &stubBackend{}
	e := newStubFleet(t, NewRangeMap([]string{"a", "b"}, []uint64{3}), s0, s1)
	for i := 0; i < 5; i++ {
		if err := e.Insert(context.Background(), "t", engine.Row{}); err != nil {
			t.Fatal(err)
		}
	}
	if got0, got1 := s0.inserts.Load(), s1.inserts.Load(); got0 != 3 || got1 != 2 {
		t.Errorf("inserts routed %d/%d, want 3/2", got0, got1)
	}
}

// TestChainStreamLimitShortCircuit proves a satisfied LIMIT ends the shard
// chain early: when shard0 alone covers the limit, shard1 is never contacted.
func TestChainStreamLimitShortCircuit(t *testing.T) {
	s0 := &stubBackend{rows: []string{"a", "b", "c"}}
	s1 := &stubBackend{rows: []string{"d", "e"}}
	e := newStubFleet(t, NewHashMap([]string{"a", "b"}), s0, s1)
	st, err := e.SelectStream(context.Background(), engine.Query{Table: "t", Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	delivered := 0
	for {
		chunk, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		delivered += chunk.Count
	}
	if delivered != 2 {
		t.Errorf("delivered %d rows, want 2", delivered)
	}
	if n := s1.selects.Load(); n != 0 {
		t.Errorf("shard1 was contacted %d times; LIMIT must short-circuit the fan-out", n)
	}
}

// TestScatterFailureTyped pins the failure contract: a failing shard turns
// every scatter into a *Error naming it, repeat failures wrap ErrShardDown,
// topology reflects the outage, and recovery clears it.
func TestScatterFailureTyped(t *testing.T) {
	s0 := &stubBackend{rows: []string{"a"}}
	s1 := &stubBackend{rows: []string{"b"}}
	e := newStubFleet(t, NewHashMap([]string{"a:1", "b:1"}), s0, s1)
	ctx := context.Background()

	s1.fail.Store(true)
	_, err := e.Select(ctx, engine.Query{Table: "t"})
	var se *Error
	if !errors.As(err, &se) {
		t.Fatalf("scatter err = %v, want *Error", err)
	}
	if se.Shard != "shard1" || se.Addr != "b:1" || se.Op != "select" {
		t.Errorf("error identity = %+v", se)
	}
	if errors.Is(err, ErrShardDown) {
		t.Error("first failure must carry the raw cause, not ErrShardDown")
	}

	_, err = e.Select(ctx, engine.Query{Table: "t"})
	if !errors.Is(err, ErrShardDown) {
		t.Errorf("repeat failure err = %v, want ErrShardDown", err)
	}
	top := e.Topology()
	if top[0].Healthy != true || top[1].Healthy != false {
		t.Errorf("topology = %+v, want shard0 up / shard1 down", top)
	}
	if top[1].Errors == 0 || top[1].LastError == "" {
		t.Errorf("down shard must report its error: %+v", top[1])
	}

	s1.fail.Store(false)
	if _, err := e.Select(ctx, engine.Query{Table: "t"}); err != nil {
		t.Errorf("scatter after recovery: %v", err)
	}
	if top := e.Topology(); !top[1].Healthy {
		t.Errorf("shard1 still down after recovery: %+v", top[1])
	}
}

// TestSingleShardPassthrough pins the bit-identity guarantee's mechanism: a
// one-shard fleet hands the backend's result through untouched.
func TestSingleShardPassthrough(t *testing.T) {
	s0 := &stubBackend{rows: []string{"x", "y"}}
	e := newStubFleet(t, NewHashMap([]string{"only"}), s0)
	res, err := e.Select(context.Background(), engine.Query{Table: "t"})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := s0.Select(context.Background(), engine.Query{Table: "t"})
	if !reflect.DeepEqual(res.Columns, want.Columns) || res.Count != want.Count {
		t.Errorf("single-shard Select = %+v, want passthrough %+v", res, want)
	}
}
