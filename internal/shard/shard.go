// Package shard implements EncDBDB's horizontal sharding layer: a shard-map
// catalog describing N named shards, pluggable partitioning of the insert
// stream across them, and a scatter-gather executor that presents the fleet
// as one proxy.Executor.
//
// Sharding is purely a trusted-side routing and merging concern. The paper's
// per-column key derivation (SK_DB -> column keys via HKDF) means every shard
// receives ciphertexts under the same column keys but never needs a key of
// its own, and the provider-visible protocol is unchanged: each shard sees
// exactly the single-node stream of encrypted ranges and ciphertext cells it
// would see as a standalone deployment — one that happens to hold a subset
// of the rows. Nothing a shard observes reveals how many siblings it has.
//
// Routing rules:
//
//   - INSERT routes to the owner of the row's logical RecordID — the
//     proxy-side per-table insert sequence — under the map's partitioner
//     (hash by default, contiguous ranges optionally).
//   - SELECT fans out to every shard and merges: counts sum, streamed rows
//     chain in shard order, and the proxy combines ordered and aggregated
//     results from per-shard partials (see internal/proxy).
//   - UPDATE and DELETE broadcast: predicates are PAE-encrypted under fresh
//     IVs, so the trusted side cannot value-route them; affected counts sum.
//   - DDL (CREATE/DROP TABLE) broadcasts; every shard holds every schema.
//
// The degenerate one-shard map routes everything to its only backend and is
// bit-identical to driving that backend directly.
package shard

import (
	"errors"
	"fmt"
)

// ErrShardDown marks an operation that failed against a shard already known
// to be unhealthy (its previous call failed and no success has been seen
// since). Errors from the first failure carry the raw cause instead — the
// sentinel distinguishes "still down" from "just went down".
var ErrShardDown = errors.New("shard: shard unavailable")

// Error is the typed per-shard failure every scatter-gather operation
// returns: it names the shard (and its address, when known) so callers can
// tell which member of the fleet failed while the others kept answering.
type Error struct {
	// Shard and Addr identify the failing shard.
	Shard string
	Addr  string
	// Op is the operation that failed (wire-style op name, e.g. "select").
	Op string
	// Err is the underlying cause. When the shard was already marked
	// unhealthy before this attempt, Err wraps ErrShardDown.
	Err error
}

// Error formats the failure with its shard identity.
func (e *Error) Error() string {
	if e.Addr != "" && e.Addr != e.Shard {
		return fmt.Sprintf("shard %s (%s): %s: %v", e.Shard, e.Addr, e.Op, e.Err)
	}
	return fmt.Sprintf("shard %s: %s: %v", e.Shard, e.Op, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }
