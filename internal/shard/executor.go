package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/metrics"
	"github.com/encdbdb/encdbdb/internal/proxy"
)

// Options configure NewExecutor.
type Options struct {
	// Metrics, when set, registers the encdbdb_shard_* families on it.
	Metrics *metrics.Registry
	// Partitioner overrides the map's partitioner (nil = derive from the
	// map's strategy).
	Partitioner Partitioner
}

// Executor presents a fleet of shards as one proxy.Executor: writes route to
// the owning shard, reads scatter-gather, and every per-shard failure comes
// back as a typed *Error naming the shard. It also implements the proxy's
// optional fast paths — BatchInserter (per-shard sub-batches), StreamExecutor
// (shard-chained streaming with LIMIT short-circuit), and ShardStreamer (the
// per-shard cursors the proxy's distributed merge consumes).
type Executor struct {
	m        *Map
	backends []proxy.Executor
	part     Partitioner
	met      *shardMetrics
	health   []*health

	// seq is the per-table logical RecordID sequence inserts are routed by.
	mu  sync.Mutex
	seq map[string]*atomic.Uint64
}

// Statically ensure the fleet satisfies the full executor surface.
var (
	_ proxy.Executor       = (*Executor)(nil)
	_ proxy.BatchInserter  = (*Executor)(nil)
	_ proxy.StreamExecutor = (*Executor)(nil)
	_ proxy.ShardStreamer  = (*Executor)(nil)
)

// NewExecutor builds the scatter-gather executor over one backend per shard
// of m, in map order. Backends are any proxy.Executor — wire.Pool clients in
// production, embedded engines in tests.
func NewExecutor(m *Map, backends []proxy.Executor, opts Options) (*Executor, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if len(backends) != len(m.Shards) {
		return nil, fmt.Errorf("shard: map has %d shards but %d backends given", len(m.Shards), len(backends))
	}
	part := opts.Partitioner
	if part == nil {
		var err error
		if part, err = m.Partitioner(); err != nil {
			return nil, err
		}
	}
	e := &Executor{
		m:        m,
		backends: backends,
		part:     part,
		health:   make([]*health, len(backends)),
		seq:      make(map[string]*atomic.Uint64),
	}
	for i := range e.health {
		e.health[i] = &health{}
	}
	if opts.Metrics != nil {
		e.met = newShardMetrics(opts.Metrics, m, func() float64 {
			n := 0
			for _, h := range e.health {
				if h.down() {
					n++
				}
			}
			return float64(n)
		})
	}
	return e, nil
}

// Map returns the executor's catalog.
func (e *Executor) Map() *Map { return e.m }

// Topology reports every shard's health and lifetime dispatch counters — the
// rows of the proxy's `topology` command.
func (e *Executor) Topology() []Status {
	out := make([]Status, len(e.m.Shards))
	for i, s := range e.m.Shards {
		h := e.health[i]
		st := Status{
			Name:     s.Name,
			Addr:     s.Addr,
			Healthy:  !h.down(),
			Requests: h.requests.Load(),
			Errors:   h.errors.Load(),
		}
		if v, ok := h.lastErr.Load().(string); ok {
			st.LastError = v
		}
		out[i] = st
	}
	return out
}

// call runs one operation against shard i, recording health and metrics and
// wrapping any failure in the typed per-shard error. Context cancellation is
// the caller's doing, not the shard's, and never counts against its health.
func (e *Executor) call(i int, op string, fn func(proxy.Executor) error) error {
	wasDown := e.health[i].down()
	started := e.met.now()
	err := fn(e.backends[i])
	ctxErr := err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
	if !ctxErr {
		if e.health[i].record(err) {
			e.met.wentDown()
		}
	}
	e.met.request(i, started, err != nil && !ctxErr)
	if err == nil {
		return nil
	}
	if ctxErr {
		return err
	}
	if wasDown {
		err = fmt.Errorf("%w (%v)", ErrShardDown, err)
	}
	return &Error{Shard: e.m.Shards[i].Name, Addr: e.m.Shards[i].Addr, Op: op, Err: err}
}

// scatter fans fn out to every shard in parallel and returns the first
// failure in shard order (deterministic regardless of completion order).
func (e *Executor) scatter(op string, fn func(i int, b proxy.Executor) error) error {
	e.met.scatter(len(e.backends))
	if len(e.backends) == 1 {
		return e.call(0, op, func(b proxy.Executor) error { return fn(0, b) })
	}
	errs := make([]error, len(e.backends))
	var wg sync.WaitGroup
	for i := range e.backends {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = e.call(i, op, func(b proxy.Executor) error { return fn(i, b) })
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// seqFor returns the table's logical RecordID counter.
func (e *Executor) seqFor(table string) *atomic.Uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.seq[table]
	if !ok {
		s = &atomic.Uint64{}
		e.seq[table] = s
	}
	return s
}

// Schema asks the shards in map order, failing over past unreachable ones:
// every shard holds every schema, so the first answer wins. A semantic error
// (unknown table) is the fleet's answer and is returned from the first shard
// that gave it.
func (e *Executor) Schema(table string) (engine.Schema, error) {
	var first error
	for i := range e.backends {
		var s engine.Schema
		err := e.call(i, "schema", func(b proxy.Executor) error {
			var err error
			s, err = b.Schema(table)
			return err
		})
		if err == nil {
			return s, nil
		}
		if first == nil {
			first = err
		}
	}
	return engine.Schema{}, first
}

// CreateTable broadcasts the DDL to every shard. Shards past a failure are
// still attempted so the fleet stays as converged as possible; the first
// failing shard's error is returned. Cross-shard DDL is not atomic — see
// docs/sharding.md for the repair story.
func (e *Executor) CreateTable(s engine.Schema) error {
	return e.broadcastDDL("create_table", func(b proxy.Executor) error { return b.CreateTable(s) })
}

// DropTable broadcasts the DDL to every shard (see CreateTable).
func (e *Executor) DropTable(name string) error {
	return e.broadcastDDL("drop_table", func(b proxy.Executor) error { return b.DropTable(name) })
}

func (e *Executor) broadcastDDL(op string, fn func(proxy.Executor) error) error {
	e.met.scatter(len(e.backends))
	var first error
	for i := range e.backends {
		if err := e.call(i, op, fn); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Insert routes the row to the owner of the table's next logical RecordID.
func (e *Executor) Insert(ctx context.Context, table string, row engine.Row) error {
	rid := e.seqFor(table).Add(1) - 1
	i := e.part.Owner(rid)
	e.met.scatter(1)
	return e.call(i, "insert", func(b proxy.Executor) error { return b.Insert(ctx, table, row) })
}

// InsertBatch partitions the batch by owner and dispatches the per-shard
// sub-batches in parallel — shards with a BatchInserter fast path get one
// call, the rest a row loop. Rows keep their batch order within each shard.
func (e *Executor) InsertBatch(ctx context.Context, table string, rows []engine.Row) error {
	seq := e.seqFor(table)
	parts := make([][]engine.Row, len(e.backends))
	for _, row := range rows {
		rid := seq.Add(1) - 1
		i := e.part.Owner(rid)
		parts[i] = append(parts[i], row)
	}
	targets := 0
	for _, p := range parts {
		if len(p) > 0 {
			targets++
		}
	}
	e.met.scatter(targets)
	errs := make([]error, len(e.backends))
	var wg sync.WaitGroup
	for i := range e.backends {
		if len(parts[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = e.call(i, "insert_batch", func(b proxy.Executor) error {
				if bi, ok := b.(proxy.BatchInserter); ok {
					return bi.InsertBatch(ctx, table, parts[i])
				}
				for _, row := range parts[i] {
					if err := b.Insert(ctx, table, row); err != nil {
						return err
					}
				}
				return nil
			})
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// Delete broadcasts the predicate — encrypted bounds carry fresh IVs, so the
// trusted side cannot value-route writes — and sums the affected counts.
func (e *Executor) Delete(ctx context.Context, table string, filters []engine.Filter) (int, error) {
	var total atomic.Int64
	err := e.scatter("delete", func(i int, b proxy.Executor) error {
		n, err := b.Delete(ctx, table, filters)
		total.Add(int64(n))
		return err
	})
	if err != nil {
		return 0, err
	}
	return int(total.Load()), nil
}

// Update broadcasts like Delete and sums the affected counts.
func (e *Executor) Update(ctx context.Context, table string, filters []engine.Filter, set engine.Row) (int, error) {
	var total atomic.Int64
	err := e.scatter("update", func(i int, b proxy.Executor) error {
		n, err := b.Update(ctx, table, filters, set)
		total.Add(int64(n))
		return err
	})
	if err != nil {
		return 0, err
	}
	return int(total.Load()), nil
}

// Select scatters the query and gathers one merged result: counts sum, row
// results concatenate in shard order (each shard's rows stay in its RecordID
// order), and a pushed-down LIMIT re-applies to the merged rows. The
// single-shard configuration passes the backend's result through untouched.
func (e *Executor) Select(ctx context.Context, q engine.Query) (*engine.Result, error) {
	if len(e.backends) == 1 {
		e.met.scatter(1)
		var res *engine.Result
		err := e.call(0, "select", func(b proxy.Executor) error {
			var err error
			res, err = b.Select(ctx, q)
			return err
		})
		return res, err
	}
	results := make([]*engine.Result, len(e.backends))
	err := e.scatter("select", func(i int, b proxy.Executor) error {
		var err error
		results[i], err = b.Select(ctx, q)
		return err
	})
	if err != nil {
		return nil, err
	}
	return mergeResults(results, q)
}

// mergeResults concatenates per-shard results in shard order. RecordIDs are
// shard-local and carried through for debugging only; cross-shard identity
// is not meaningful.
func mergeResults(results []*engine.Result, q engine.Query) (*engine.Result, error) {
	out := &engine.Result{}
	for _, r := range results {
		out.Count += r.Count
	}
	if q.CountOnly {
		return out, nil
	}
	for si, r := range results {
		if r.Count == 0 && len(r.Columns) == 0 {
			continue
		}
		if len(out.Columns) == 0 {
			out.Columns = make([]engine.ResultColumn, len(r.Columns))
			for i, c := range r.Columns {
				out.Columns[i] = engine.ResultColumn{Table: c.Table, Column: c.Column}
			}
		}
		if len(r.Columns) != len(out.Columns) {
			return nil, fmt.Errorf("shard: shard %d returned %d columns, want %d", si, len(r.Columns), len(out.Columns))
		}
		out.RecordIDs = append(out.RecordIDs, r.RecordIDs...)
		for i, c := range r.Columns {
			if c.Column != out.Columns[i].Column {
				return nil, fmt.Errorf("shard: shard %d column %d is %q, want %q", si, i, c.Column, out.Columns[i].Column)
			}
			out.Columns[i].Cells = append(out.Columns[i].Cells, c.Cells...)
		}
	}
	if q.Limit > 0 && !q.CountOnly && out.Count > q.Limit {
		out.Count = q.Limit
		out.RecordIDs = out.RecordIDs[:min(len(out.RecordIDs), q.Limit)]
		for i := range out.Columns {
			out.Columns[i].Cells = out.Columns[i].Cells[:q.Limit]
		}
	}
	return out, nil
}

// Merge runs a blocking merge on every shard.
func (e *Executor) Merge(ctx context.Context, table string) error {
	return e.scatter("merge", func(i int, b proxy.Executor) error { return b.Merge(ctx, table) })
}

// MergeAsync starts a background merge on every shard; started reports
// whether any shard newly started one.
func (e *Executor) MergeAsync(ctx context.Context, table string) (bool, error) {
	var started atomic.Bool
	err := e.scatter("merge_async", func(i int, b proxy.Executor) error {
		s, err := b.MergeAsync(ctx, table)
		if s {
			started.Store(true)
		}
		return err
	})
	return started.Load(), err
}

// MergeStatus gathers every shard's status into one fleet view: store sizes,
// completed merges, and generations sum; Merging reports any in-flight
// merge; LastError surfaces the first shard's failure text.
func (e *Executor) MergeStatus(ctx context.Context, table string) (engine.MergeInfo, error) {
	infos := make([]engine.MergeInfo, len(e.backends))
	err := e.scatter("merge_status", func(i int, b proxy.Executor) error {
		var err error
		infos[i], err = b.MergeStatus(ctx, table)
		return err
	})
	if err != nil {
		return engine.MergeInfo{}, err
	}
	var out engine.MergeInfo
	for _, in := range infos {
		out.Generation += in.Generation
		out.Merging = out.Merging || in.Merging
		out.MainRows += in.MainRows
		out.DeltaRows += in.DeltaRows
		out.DeltaBytes += in.DeltaBytes
		out.SealedRuns += in.SealedRuns
		out.Merges += in.Merges
		if out.LastError == "" {
			out.LastError = in.LastError
		}
	}
	return out, nil
}

// SelectStream chains the per-shard streams in shard order, opening each
// shard's cursor only when the previous shard is exhausted. A pushed-down
// LIMIT therefore short-circuits the fan-out: once the delivered rows reach
// q.Limit the remaining shards are never contacted.
func (e *Executor) SelectStream(ctx context.Context, q engine.Query) (engine.ResultStream, error) {
	if len(e.backends) == 1 {
		e.met.scatter(1)
		var st engine.ResultStream
		err := e.call(0, "select_stream", func(b proxy.Executor) error {
			var err error
			st, err = openStream(ctx, b, q)
			return err
		})
		return st, err
	}
	return &chainStream{e: e, ctx: ctx, q: q}, nil
}

// openStream opens one backend's stream, falling back to a materialized
// Select for executors without the streaming fast path.
func openStream(ctx context.Context, b proxy.Executor, q engine.Query) (engine.ResultStream, error) {
	if se, ok := b.(proxy.StreamExecutor); ok {
		return se.SelectStream(ctx, q)
	}
	res, err := b.Select(ctx, q)
	if err != nil {
		return nil, err
	}
	return engine.MaterializedStream(res), nil
}

// ShardStreams exposes one lazily-opened cursor per shard — the surface the
// proxy's distributed merge (ordered k-way merge, partial aggregates)
// consumes. Opening and chunk errors count against the shard's health like
// any other dispatch.
func (e *Executor) ShardStreams(ctx context.Context, q engine.Query) []proxy.ShardStream {
	out := make([]proxy.ShardStream, len(e.backends))
	for i := range e.backends {
		out[i] = proxy.ShardStream{
			Shard: e.m.Shards[i].Name,
			Open: func() (engine.ResultStream, error) {
				var st engine.ResultStream
				err := e.call(i, "select_stream", func(b proxy.Executor) error {
					var err error
					st, err = openStream(ctx, b, q)
					return err
				})
				if err != nil {
					return nil, err
				}
				return &shardStream{e: e, i: i, inner: st}, nil
			},
		}
	}
	return out
}

// shardStream wraps one shard's cursor so mid-stream failures carry the
// shard's identity and feed its health state.
type shardStream struct {
	e     *Executor
	i     int
	inner engine.ResultStream
}

func (s *shardStream) Next() (*engine.Result, error) {
	chunk, err := s.inner.Next()
	if err != nil && err != io.EOF {
		err = s.e.wrapStreamErr(s.i, err)
	}
	return chunk, err
}

func (s *shardStream) Count() int   { return s.inner.Count() }
func (s *shardStream) Close() error { return s.inner.Close() }

// wrapStreamErr records a mid-stream failure against the shard and types it.
func (e *Executor) wrapStreamErr(i int, err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	if e.health[i].record(err) {
		e.met.wentDown()
	}
	return &Error{Shard: e.m.Shards[i].Name, Addr: e.m.Shards[i].Addr, Op: "select_stream", Err: err}
}

// chainStream is the multi-shard streaming cursor: shard i+1's stream opens
// only after shard i's is drained, and a satisfied LIMIT ends the chain
// before the remaining shards are touched.
type chainStream struct {
	e   *Executor
	ctx context.Context
	q   engine.Query

	next      int // next shard index to open
	cur       engine.ResultStream
	curShard  int
	delivered int
	seen      int // rows observed across opened shards (see Count)
	done      bool
}

func (c *chainStream) Next() (*engine.Result, error) {
	for {
		if c.done {
			return nil, io.EOF
		}
		if c.q.Limit > 0 && c.delivered >= c.q.Limit {
			c.Close()
			return nil, io.EOF
		}
		if c.cur == nil {
			if c.next >= len(c.e.backends) {
				c.done = true
				return nil, io.EOF
			}
			i := c.next
			c.next++
			var st engine.ResultStream
			err := c.e.call(i, "select_stream", func(b proxy.Executor) error {
				var err error
				st, err = openStream(c.ctx, b, c.q)
				return err
			})
			if err != nil {
				c.done = true
				return nil, err
			}
			c.cur, c.curShard = st, i
			c.seen += st.Count()
		}
		chunk, err := c.cur.Next()
		if err == io.EOF {
			c.cur.Close()
			c.cur = nil
			continue
		}
		if err != nil {
			err = c.e.wrapStreamErr(c.curShard, err)
			c.Close()
			return nil, err
		}
		if c.q.Limit > 0 && c.delivered+chunk.Count > c.q.Limit {
			chunk = truncateChunk(chunk, c.q.Limit-c.delivered)
		}
		c.delivered += chunk.Count
		return chunk, nil
	}
}

// truncateChunk shallow-copies a chunk down to need rows; the cell slices
// keep aliasing the source chunk's buffers, valid until the next Next per
// the ResultStream contract.
func truncateChunk(chunk *engine.Result, need int) *engine.Result {
	out := &engine.Result{Count: need}
	if len(chunk.RecordIDs) >= need {
		out.RecordIDs = chunk.RecordIDs[:need]
	}
	for _, col := range chunk.Columns {
		out.Columns = append(out.Columns, engine.ResultColumn{
			Table: col.Table, Column: col.Column, Cells: col.Cells[:need],
		})
	}
	return out
}

// Count reports the matching rows observed on the shards opened so far — a
// chain that has not fanned out yet cannot know the fleet-wide total without
// defeating the lazy fan-out. The proxy's cursor never consults it; callers
// that need an exact total should drain the stream or issue a CountOnly
// query.
func (c *chainStream) Count() int { return c.seen }

// Close releases the current shard's stream and ends the chain.
func (c *chainStream) Close() error {
	if c.cur != nil {
		c.cur.Close()
		c.cur = nil
	}
	c.done = true
	return nil
}
