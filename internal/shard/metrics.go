package shard

import (
	"sync/atomic"
	"time"

	"github.com/encdbdb/encdbdb/internal/metrics"
)

// fanoutBuckets sizes the fan-out width histogram: fleets are small, so the
// buckets are the interesting widths themselves.
var fanoutBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16}

// shardMetrics is the scatter-gather layer's instrumentation: per-shard
// request/error counts and latency, fan-out width per scatter, and health
// transitions. Per-shard children are resolved once at construction so the
// request path pays only atomic adds; a nil *shardMetrics makes every method
// a no-op, mirroring the wire server's pattern.
type shardMetrics struct {
	reqByShard []*metrics.Counter
	errByShard []*metrics.Counter
	latByShard []*metrics.Histogram
	fanout     *metrics.Histogram
	downTotal  *metrics.Counter
}

// newShardMetrics registers the encdbdb_shard_* families on reg for the
// shards of m, plus an unhealthy-count gauge sampled from health at scrape
// time.
func newShardMetrics(reg *metrics.Registry, m *Map, unhealthy func() float64) *shardMetrics {
	sm := &shardMetrics{
		fanout: reg.NewHistogram("encdbdb_shard_fanout_width",
			"Shards touched per scatter-gather operation.", fanoutBuckets...),
		downTotal: reg.NewCounter("encdbdb_shard_down_transitions_total",
			"Times a shard transitioned from healthy to unhealthy."),
	}
	reqs := reg.NewCounterVec("encdbdb_shard_requests_total", "Requests dispatched, by shard.", "shard")
	errs := reg.NewCounterVec("encdbdb_shard_errors_total", "Requests that failed, by shard.", "shard")
	lat := reg.NewHistogramVec("encdbdb_shard_request_seconds", "Per-shard request latency.", metrics.DefBuckets, "shard")
	for _, s := range m.Shards {
		sm.reqByShard = append(sm.reqByShard, reqs.With(s.Name))
		sm.errByShard = append(sm.errByShard, errs.With(s.Name))
		sm.latByShard = append(sm.latByShard, lat.With(s.Name))
	}
	reg.NewGaugeFunc("encdbdb_shard_unhealthy",
		"Shards currently marked unhealthy (last call failed).", unhealthy)
	return sm
}

// now returns the dispatch timestamp, skipping the clock read when metrics
// are off.
func (sm *shardMetrics) now() time.Time {
	if sm == nil {
		return time.Time{}
	}
	return time.Now()
}

// request records one per-shard dispatch outcome.
func (sm *shardMetrics) request(shard int, started time.Time, errored bool) {
	if sm == nil {
		return
	}
	sm.reqByShard[shard].Inc()
	if errored {
		sm.errByShard[shard].Inc()
	}
	sm.latByShard[shard].Observe(time.Since(started).Seconds())
}

// scatter records the width of one fan-out.
func (sm *shardMetrics) scatter(width int) {
	if sm == nil {
		return
	}
	sm.fanout.Observe(float64(width))
}

// wentDown records a healthy-to-unhealthy transition.
func (sm *shardMetrics) wentDown() {
	if sm == nil {
		return
	}
	sm.downTotal.Inc()
}

// health is one shard's sticky availability state, updated lock-free from
// whichever goroutine completes a call against the shard.
type health struct {
	// failures counts consecutive failures (0 = healthy); requests and
	// errors are lifetime totals for the topology display.
	failures atomic.Int64
	requests atomic.Uint64
	errors   atomic.Uint64
	lastErr  atomic.Value // string
}

// record folds one call outcome into the state, reporting whether this
// failure was the transition that marked the shard down.
func (h *health) record(err error) (wentDown bool) {
	h.requests.Add(1)
	if err == nil {
		h.failures.Store(0)
		return false
	}
	h.errors.Add(1)
	h.lastErr.Store(err.Error())
	return h.failures.Add(1) == 1
}

// down reports whether the shard's last call failed.
func (h *health) down() bool { return h.failures.Load() > 0 }

// Status is one shard's row in the topology display.
type Status struct {
	Name string
	Addr string
	// Healthy is false while the shard's most recent call failed.
	Healthy bool
	// Requests and Errors are lifetime dispatch totals.
	Requests uint64
	Errors   uint64
	// LastError is the most recent failure's text ("" if none ever).
	LastError string
}
