// Package ridset provides a bitmap set of RecordIDs over a fixed universe
// [0, n). The engine's query pipeline produces one set per filter (the
// attribute-vector scans emit directly into it), intersects them for the
// conjunction, and applies row validity — all as word-parallel bitmap
// operations instead of the repeated O(n) sorted-slice merges the pipeline
// used before. A set over n rows costs n/8 bytes regardless of how many
// RecordIDs it holds, so per-filter allocations on the hot path collapse to
// a single fixed-size buffer.
package ridset

import "math/bits"

const wordBits = 64

// Set is a bitmap of RecordIDs drawn from the universe [0, Universe()).
// Bits beyond the universe are always zero — every mutating operation
// maintains that invariant, so popcounts and word-wise combinations never
// see stray bits.
//
// A Set is not safe for concurrent mutation, with one deliberate exception:
// concurrent writers that own disjoint 64-aligned index ranges (as the
// attribute-vector scan shards do) may Add into the same Set, because they
// touch disjoint words.
type Set struct {
	words []uint64
	n     int
}

// New returns an empty set over the universe [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Full returns the set holding every RecordID in [0, n).
func Full(n int) *Set {
	s := New(n)
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.maskTail()
	return s
}

// FromSorted builds a set over [0, n) from an ascending RecordID list.
// RecordIDs outside the universe are ignored.
func FromSorted(rids []uint32, n int) *Set {
	s := New(n)
	for _, r := range rids {
		if int(r) < n {
			s.words[r/wordBits] |= 1 << (r % wordBits)
		}
	}
	return s
}

// maskTail clears the bits of the last word that lie beyond the universe.
func (s *Set) maskTail() {
	if rem := s.n % wordBits; rem != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << rem) - 1
	}
}

// Universe returns the exclusive upper bound of the RecordID domain.
func (s *Set) Universe() int { return s.n }

// Grow extends the universe to [0, n). Shrinking is not supported; a smaller
// n is a no-op.
func (s *Set) Grow(n int) {
	if n <= s.n {
		return
	}
	need := (n + wordBits - 1) / wordBits
	for len(s.words) < need {
		s.words = append(s.words, 0)
	}
	s.n = n
}

// Add inserts RecordID r. The caller must ensure r < Universe().
func (s *Set) Add(r uint32) {
	s.words[r/wordBits] |= 1 << (r % wordBits)
}

// OrWord ORs a 64-bit match word into word i of the bitmap: RecordIDs
// [64i, 64i+64). It is the emit path of the packed attribute-vector scan
// kernels, which produce one match word per 64-row group; like Add, writers
// owning disjoint word indexes may call it concurrently. Bits beyond the
// universe are cleared, preserving the tail invariant.
func (s *Set) OrWord(i int, w uint64) {
	s.words[i] |= w
	if i == len(s.words)-1 {
		s.maskTail()
	}
}

// Word returns word i of the bitmap: the membership bits of RecordIDs
// [64i, 64i+64). The fused scan kernels read it to skip groups whose
// accumulator word is already empty.
func (s *Set) Word(i int) uint64 { return s.words[i] }

// Words returns the number of 64-bit words covering the universe.
func (s *Set) Words() int { return len(s.words) }

// AndWord ANDs a 64-bit match word into word i of the bitmap — the
// accumulator path of the fused scan kernels, which conjoin each predicate's
// match word in-register instead of materializing a set per predicate and
// intersecting afterwards. Like OrWord, writers owning disjoint word indexes
// may call it concurrently. ANDing only clears bits, so the tail invariant
// holds without re-masking.
func (s *Set) AndWord(i int, w uint64) {
	s.words[i] &= w
}

// AndNotWord clears the bits of a 64-bit match word from word i of the
// bitmap — the fused complement of AndWord for kernels that compute the
// NON-matching rows of a group (e.g. folding a deletion word into an
// accumulator). Clearing preserves the tail invariant.
func (s *Set) AndNotWord(i int, w uint64) {
	s.words[i] &^= w
}

// Remove deletes RecordID r if present. RecordIDs outside the universe are
// ignored.
func (s *Set) Remove(r uint32) {
	if int(r) < s.n {
		s.words[r/wordBits] &^= 1 << (r % wordBits)
	}
}

// Contains reports whether RecordID r is in the set.
func (s *Set) Contains(r uint32) bool {
	return int(r) < s.n && s.words[r/wordBits]&(1<<(r%wordBits)) != 0
}

// Len returns the number of RecordIDs in the set.
func (s *Set) Len() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Empty reports whether the set holds no RecordIDs.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	return &Set{words: append([]uint64(nil), s.words...), n: s.n}
}

// IntersectWith keeps only the RecordIDs also present in o. The receiver's
// universe is unchanged; RecordIDs beyond o's universe are dropped, matching
// intersection semantics over the smaller domain.
func (s *Set) IntersectWith(o *Set) {
	common := len(s.words)
	if len(o.words) < common {
		common = len(o.words)
	}
	for i := 0; i < common; i++ {
		s.words[i] &= o.words[i]
	}
	for i := common; i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// UnionWith adds every RecordID of o. The receiver's universe grows to cover
// o's if needed.
func (s *Set) UnionWith(o *Set) {
	s.Grow(o.n)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// AndNot removes every RecordID of o from the receiver.
func (s *Set) AndNot(o *Set) {
	common := len(s.words)
	if len(o.words) < common {
		common = len(o.words)
	}
	for i := 0; i < common; i++ {
		s.words[i] &^= o.words[i]
	}
}

// AndShifted keeps only the RecordIDs whose counterpart off positions higher
// is present in o: s &= (o >> off). It is OrShifted's read-side mirror: where
// OrShifted splices a store-local result upward into a table-wide set, this
// projects a table-wide bitmap (typically row validity) downward onto a
// store-local accumulator — RecordID r of the receiver survives iff o holds
// off+r. Bits beyond o's universe read as zero.
func (s *Set) AndShifted(o *Set, off int) {
	if off < 0 {
		panic("ridset: negative shift")
	}
	wordOff, bitOff := off/wordBits, uint(off%wordBits)
	for i := range s.words {
		var w uint64
		if j := i + wordOff; j < len(o.words) {
			w = o.words[j] >> bitOff
			if bitOff != 0 && j+1 < len(o.words) {
				w |= o.words[j+1] << (wordBits - bitOff)
			}
		}
		s.words[i] &= w
	}
}

// ClearFrom removes every RecordID >= r, leaving [0, r) untouched. The fused
// scan uses it to seed its accumulator with the main store's validity words
// while keeping the delta region zero until the delta phase fills it.
func (s *Set) ClearFrom(r int) {
	if r < 0 {
		r = 0
	}
	b := r / wordBits
	if b >= len(s.words) {
		return
	}
	if rem := r % wordBits; rem != 0 {
		s.words[b] &= (1 << rem) - 1
		b++
	}
	for i := b; i < len(s.words); i++ {
		s.words[i] = 0
	}
}

// OrShifted adds every RecordID of o offset upward by off: s |= (o << off).
// The engine uses it to splice a delta-store result (RecordIDs local to the
// delta) into a table-wide set behind the main store's rows. The receiver's
// universe grows to fit.
func (s *Set) OrShifted(o *Set, off int) {
	if off < 0 {
		panic("ridset: negative shift")
	}
	s.Grow(o.n + off)
	wordOff, bitOff := off/wordBits, uint(off%wordBits)
	if bitOff == 0 {
		for i, w := range o.words {
			s.words[i+wordOff] |= w
		}
		s.maskTail()
		return
	}
	var carry uint64
	for i, w := range o.words {
		s.words[i+wordOff] |= w<<bitOff | carry
		carry = w >> (wordBits - bitOff)
	}
	if carry != 0 {
		s.words[wordOff+len(o.words)] |= carry
	}
	s.maskTail()
}

// Slice returns the RecordIDs in ascending order, or nil if the set is
// empty. The result is sized exactly by a popcount pass, so it is the only
// allocation of a query's emit path.
func (s *Set) Slice() []uint32 {
	total := s.Len()
	if total == 0 {
		return nil
	}
	out := make([]uint32, 0, total)
	for i, w := range s.words {
		base := uint32(i * wordBits)
		for w != 0 {
			out = append(out, base+uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return out
}

// ForEach calls fn for every RecordID in ascending order.
func (s *Set) ForEach(fn func(uint32)) {
	for i, w := range s.words {
		base := uint32(i * wordBits)
		for w != 0 {
			fn(base + uint32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
}
