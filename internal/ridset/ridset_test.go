package ridset_test

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/encdbdb/encdbdb/internal/ridset"
)

// Reference implementations: the sorted-slice merges the engine used before
// the bitmap representation. The property tests assert the bitmap ops agree
// with them on random inputs.

func refUnion(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func refIntersect(a, b []uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// randomSorted draws a random ascending duplicate-free RecordID list over
// [0, n).
func randomSorted(rng *rand.Rand, n int, density float64) []uint32 {
	var out []uint32
	for i := 0; i < n; i++ {
		if rng.Float64() < density {
			out = append(out, uint32(i))
		}
	}
	return out
}

func TestBasicOps(t *testing.T) {
	s := ridset.New(130)
	if !s.Empty() || s.Len() != 0 || s.Universe() != 130 {
		t.Fatalf("fresh set: empty=%v len=%d n=%d", s.Empty(), s.Len(), s.Universe())
	}
	for _, r := range []uint32{0, 63, 64, 129} {
		s.Add(r)
		if !s.Contains(r) {
			t.Fatalf("Contains(%d) = false after Add", r)
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if got := s.Slice(); !reflect.DeepEqual(got, []uint32{0, 63, 64, 129}) {
		t.Fatalf("Slice = %v", got)
	}
	s.Remove(64)
	if s.Contains(64) || s.Len() != 3 {
		t.Fatalf("Remove(64) failed: len=%d", s.Len())
	}
	s.Remove(1000) // out of universe: no-op
	if s.Contains(200) {
		t.Fatal("Contains beyond universe must be false")
	}
}

func TestFullMasksTail(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 200} {
		f := ridset.Full(n)
		if f.Len() != n {
			t.Errorf("Full(%d).Len() = %d", n, f.Len())
		}
		if n > 0 && !f.Contains(uint32(n-1)) {
			t.Errorf("Full(%d) missing %d", n, n-1)
		}
		if f.Contains(uint32(n)) {
			t.Errorf("Full(%d) contains %d", n, n)
		}
	}
}

func TestGrowKeepsBits(t *testing.T) {
	s := ridset.New(10)
	s.Add(3)
	s.Grow(500)
	if s.Universe() != 500 || !s.Contains(3) || s.Len() != 1 {
		t.Fatalf("after grow: n=%d len=%d", s.Universe(), s.Len())
	}
	s.Grow(100) // shrink is a no-op
	if s.Universe() != 500 {
		t.Fatalf("shrink changed universe to %d", s.Universe())
	}
}

func TestSliceNilWhenEmpty(t *testing.T) {
	if got := ridset.New(100).Slice(); got != nil {
		t.Fatalf("empty Slice = %v, want nil", got)
	}
}

func TestIntersectUnionAndNotProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		a := randomSorted(rng, n, rng.Float64())
		b := randomSorted(rng, n, rng.Float64())

		sa, sb := ridset.FromSorted(a, n), ridset.FromSorted(b, n)

		got := sa.Clone()
		got.IntersectWith(sb)
		if want := refIntersect(a, b); !reflect.DeepEqual(got.Slice(), want) {
			t.Fatalf("trial %d: intersect = %v, want %v", trial, got.Slice(), want)
		}

		got = sa.Clone()
		got.UnionWith(sb)
		want := refUnion(a, b)
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(got.Slice(), want) {
			t.Fatalf("trial %d: union = %v, want %v", trial, got.Slice(), want)
		}

		got = sa.Clone()
		got.AndNot(sb)
		var diff []uint32
		inter := refIntersect(a, b)
		k := 0
		for _, r := range a {
			for k < len(inter) && inter[k] < r {
				k++
			}
			if k >= len(inter) || inter[k] != r {
				diff = append(diff, r)
			}
		}
		if !reflect.DeepEqual(got.Slice(), diff) {
			t.Fatalf("trial %d: andnot = %v, want %v", trial, got.Slice(), diff)
		}
	}
}

func TestIntersectMismatchedUniverses(t *testing.T) {
	a := ridset.FromSorted([]uint32{1, 70, 200}, 300)
	b := ridset.FromSorted([]uint32{1, 70}, 80)
	a.IntersectWith(b)
	if got := a.Slice(); !reflect.DeepEqual(got, []uint32{1, 70}) {
		t.Fatalf("intersect over smaller universe = %v", got)
	}
	c := ridset.FromSorted([]uint32{5}, 10)
	d := ridset.FromSorted([]uint32{5, 500}, 600)
	c.UnionWith(d)
	if c.Universe() != 600 || !c.Contains(500) || c.Len() != 2 {
		t.Fatalf("union grew wrong: n=%d len=%d", c.Universe(), c.Len())
	}
}

func TestOrShiftedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		mainN := rng.Intn(300)
		deltaN := 1 + rng.Intn(150)
		off := mainN // the engine's use: delta rows sit behind main rows
		if trial%3 == 0 {
			off = rng.Intn(300) // arbitrary offsets must work too
		}
		a := randomSorted(rng, mainN, 0.3)
		b := randomSorted(rng, deltaN, 0.5)

		s := ridset.FromSorted(a, mainN)
		s.OrShifted(ridset.FromSorted(b, deltaN), off)

		shifted := make([]uint32, len(b))
		for i, r := range b {
			shifted[i] = r + uint32(off)
		}
		want := refUnion(a, shifted)
		if len(want) == 0 {
			want = nil
		}
		if !reflect.DeepEqual(s.Slice(), want) {
			t.Fatalf("trial %d (off=%d): orshifted = %v, want %v", trial, off, s.Slice(), want)
		}
		if s.Universe() < deltaN+off {
			t.Fatalf("trial %d: universe %d < %d", trial, s.Universe(), deltaN+off)
		}
	}
}

func TestForEachMatchesSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := ridset.FromSorted(randomSorted(rng, 500, 0.2), 500)
	var got []uint32
	s.ForEach(func(r uint32) { got = append(got, r) })
	if !reflect.DeepEqual(got, s.Slice()) {
		t.Fatalf("ForEach = %v, Slice = %v", got, s.Slice())
	}
}

// TestWordOps covers the word-level accessors the fused scan kernels build
// on: Word/Words read the bitmap, AndWord/AndNotWord combine match words in
// place, and both clearing ops preserve the tail invariant by construction.
func TestWordOps(t *testing.T) {
	s := ridset.New(130)
	if s.Words() != 3 {
		t.Fatalf("Words() = %d over 130 rows, want 3", s.Words())
	}
	s.OrWord(0, 0xFF)
	s.OrWord(1, 0xF0F0)
	if s.Word(0) != 0xFF || s.Word(1) != 0xF0F0 || s.Word(2) != 0 {
		t.Fatalf("Word readback = %x/%x/%x", s.Word(0), s.Word(1), s.Word(2))
	}
	s.AndWord(0, 0x0F)
	if s.Word(0) != 0x0F {
		t.Fatalf("AndWord: word 0 = %x, want 0x0F", s.Word(0))
	}
	s.AndNotWord(1, 0xF000)
	if s.Word(1) != 0x00F0 {
		t.Fatalf("AndNotWord: word 1 = %x, want 0x00F0", s.Word(1))
	}
}

// TestAndShiftedProperty: s.AndShifted(o, off) keeps RecordID r iff o holds
// off+r — the read-side mirror of OrShifted, checked against a per-element
// reference over random offsets including non-64-aligned ones.
func TestAndShiftedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		on := 1 + rng.Intn(400)
		off := rng.Intn(200)
		s := ridset.FromSorted(randomSorted(rng, n, 0.5), n)
		o := ridset.FromSorted(randomSorted(rng, on, 0.5), on)
		want := make(map[uint32]bool)
		s.ForEach(func(r uint32) {
			if o.Contains(r + uint32(off)) {
				want[r] = true
			}
		})
		s.AndShifted(o, off)
		if s.Len() != len(want) {
			t.Fatalf("n=%d on=%d off=%d: %d rows, want %d", n, on, off, s.Len(), len(want))
		}
		s.ForEach(func(r uint32) {
			if !want[r] {
				t.Fatalf("n=%d on=%d off=%d: unexpected row %d", n, on, off, r)
			}
		})
	}
}

// TestClearFrom: every RecordID >= r is removed, [0, r) is untouched, and
// out-of-range cut points are no-ops.
func TestClearFrom(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(300)
		s := ridset.FromSorted(randomSorted(rng, n, 0.5), n)
		before := s.Slice()
		cut := rng.Intn(n + 100)
		s.ClearFrom(cut)
		var want []uint32
		for _, r := range before {
			if int(r) < cut {
				want = append(want, r)
			}
		}
		if !reflect.DeepEqual(s.Slice(), want) {
			t.Fatalf("n=%d cut=%d: got %v, want %v", n, cut, s.Slice(), want)
		}
	}
	s := ridset.Full(100)
	s.ClearFrom(-5)
	if s.Len() != 0 {
		t.Error("negative cut did not clear everything")
	}
}
