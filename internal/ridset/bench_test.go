package ridset_test

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/encdbdb/encdbdb/internal/ridset"
)

// BenchmarkRidsetVsSortedMerge documents the win that justified moving the
// engine's RecordID pipeline from ascending []uint32 slices to bitmaps: the
// sorted-slice merge walks every element and allocates a fresh output slice
// per combination, while the bitmap op is one word-parallel pass over
// n/64 words with no allocation. Run with:
//
//	go test -bench RidsetVsSortedMerge -benchmem ./internal/ridset
//
// The gap widens with match density — exactly the regime of the paper's
// low-cardinality C2 columns, where a range filter matches a large slice of
// a 10.9 M-row attribute vector.
func BenchmarkRidsetVsSortedMerge(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		for _, density := range []float64{0.01, 0.3} {
			rng := rand.New(rand.NewSource(42))
			a := randomSorted(rng, n, density)
			c := randomSorted(rng, n, density)
			sa, sc := ridset.FromSorted(a, n), ridset.FromSorted(c, n)
			name := fmt.Sprintf("n=%d/density=%.2f", n, density)

			b.Run("intersect/sorted-merge/"+name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					refIntersect(a, c)
				}
			})
			b.Run("intersect/ridset/"+name, func(b *testing.B) {
				acc := sa.Clone()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					acc.IntersectWith(sc)
				}
			})
			b.Run("union/sorted-merge/"+name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					refUnion(a, c)
				}
			})
			b.Run("union/ridset/"+name, func(b *testing.B) {
				acc := sa.Clone()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					acc.UnionWith(sc)
				}
			})
		}
	}
}

// BenchmarkSliceEmit measures the one remaining allocation of the emit path:
// converting the final bitmap back to the ascending RecordID list the wire
// format carries.
func BenchmarkSliceEmit(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	s := ridset.FromSorted(randomSorted(rng, 1_000_000, 0.05), 1_000_000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Slice()
	}
}
