package engine_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/search"
)

// limitEnv builds a one-column table with main-store rows plus delta inserts,
// so a pushed-down LIMIT exercises both the match-set truncation and the
// delta-region early exit.
func limitEnv(t *testing.T, opts ...engine.Option) (*env, engine.ColumnDef) {
	t.Helper()
	v := newEnvWith(t, opts...)
	def := engine.ColumnDef{Name: "c", Kind: dict.ED1, MaxLen: 8}
	if err := v.db.CreateTable(engine.Schema{Table: "lim", Columns: []engine.ColumnDef{def}}); err != nil {
		t.Fatal(err)
	}
	var col [][]byte
	for i := 0; i < 60; i++ {
		col = append(col, fmt.Appendf(nil, "v%03d", i))
	}
	v.loadColumn(t, "lim", def, col)
	ctx := context.Background()
	for i := 60; i < 80; i++ {
		row := engine.Row{"c": v.encryptValue(t, "lim", "c", fmt.Sprintf("v%03d", i))}
		if err := v.db.Insert(ctx, "lim", row); err != nil {
			t.Fatal(err)
		}
	}
	return v, def
}

// TestSelectLimitPushdown pins that Query.Limit returns exactly the first
// Limit matches in RecordID order — the same prefix a client-side cutoff of
// the unlimited result would keep — on both the fused and two-pass paths.
func TestSelectLimitPushdown(t *testing.T) {
	for _, fused := range []bool{true, false} {
		t.Run(fmt.Sprintf("fused=%v", fused), func(t *testing.T) {
			v, def := limitEnv(t, engine.WithFusedScan(fused))
			ctx := context.Background()
			f := v.filter(t, "lim", def, search.Closed([]byte("v000"), []byte("v099")))
			full, err := v.db.Select(ctx, engine.Query{Table: "lim", Filters: []engine.Filter{f}})
			if err != nil {
				t.Fatal(err)
			}
			if full.Count != 80 {
				t.Fatalf("full Count = %d, want 80", full.Count)
			}
			for _, limit := range []int{1, 10, 60, 65, 80, 200} {
				got, err := v.db.Select(ctx, engine.Query{
					Table: "lim", Filters: []engine.Filter{f}, Limit: limit,
				})
				if err != nil {
					t.Fatal(err)
				}
				want := min(limit, full.Count)
				if got.Count != want || len(got.RecordIDs) != want {
					t.Fatalf("limit %d: Count = %d, rids = %d, want %d", limit, got.Count, len(got.RecordIDs), want)
				}
				for i := 0; i < want; i++ {
					if got.RecordIDs[i] != full.RecordIDs[i] {
						t.Fatalf("limit %d: rid[%d] = %d, want %d", limit, i, got.RecordIDs[i], full.RecordIDs[i])
					}
					if string(got.Columns[0].Cells[i]) != string(full.Columns[0].Cells[i]) {
						t.Fatalf("limit %d: cell %d differs from unlimited prefix", limit, i)
					}
				}
			}
		})
	}
}

// TestSelectLimitStream: the streaming cursor stops at the pushed-down limit
// and reports the truncated count.
func TestSelectLimitStream(t *testing.T) {
	v, def := limitEnv(t, engine.WithStreamChunk(7))
	ctx := context.Background()
	f := v.filter(t, "lim", def, search.Closed([]byte("v000"), []byte("v099")))
	st, err := v.db.SelectStream(ctx, engine.Query{
		Table: "lim", Filters: []engine.Filter{f}, Limit: 25,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Count() != 25 {
		t.Fatalf("stream Count = %d, want 25", st.Count())
	}
	_, cells := drainStream(t, st)
	if len(cells["c"]) != 25 {
		t.Fatalf("streamed %d rows, want 25", len(cells["c"]))
	}
}

// TestSelectLimitCountOnly: a count query reports the full cardinality even
// when Limit is set — LIMIT bounds result rows, not the count's value.
func TestSelectLimitCountOnly(t *testing.T) {
	v, def := limitEnv(t)
	f := v.filter(t, "lim", def, search.Closed([]byte("v000"), []byte("v099")))
	res, err := v.db.Select(context.Background(), engine.Query{
		Table: "lim", Filters: []engine.Filter{f}, CountOnly: true, Limit: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 80 {
		t.Fatalf("CountOnly with Limit = %d, want 80", res.Count)
	}
}
