package engine

import (
	"context"
	"fmt"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/ridset"
)

// MergeInfo is the observable state of a table's delta/merge lifecycle —
// what MERGE STATUS reports to remote clients.
type MergeInfo struct {
	// Generation counts main-store versions: it starts at 0 and every
	// completed merge swap bumps it.
	Generation uint64
	// Merging reports an in-flight merge pipeline (sealing, enclave
	// rebuild, or swap).
	Merging bool
	// MainRows and DeltaRows describe the current version's store sizes;
	// DeltaBytes and SealedRuns the delta chain feeding the next merge.
	MainRows   int
	DeltaRows  int
	DeltaBytes int
	SealedRuns int
	// Merges counts completed merges; LastError is the most recent merge
	// failure ("" if the last merge succeeded).
	Merges    uint64
	LastError string
}

// MergeStatus reports the table's delta/merge lifecycle state.
func (db *DB) MergeStatus(ctx context.Context, tableName string) (MergeInfo, error) {
	if err := ctxErr(ctx); err != nil {
		return MergeInfo{}, err
	}
	t, err := db.lookup(tableName)
	if err != nil {
		return MergeInfo{}, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return MergeInfo{
		Generation: t.gen,
		Merging:    t.merging.Load(),
		MainRows:   t.mainRows,
		DeltaRows:  t.deltaRows,
		DeltaBytes: t.deltaBytesLocked(),
		SealedRuns: t.sealedRunsLocked(),
		Merges:     t.merges,
		LastError:  t.lastMergeErr,
	}, nil
}

// Merge folds each column's delta chain into its main store (paper §4.3):
// inside the enclave, the valid rows of the main store and every sealed
// delta run are reconstructed, re-encrypted under fresh IVs, and rebuilt
// under the column's encrypted dictionary with a fresh rotation/shuffle, so
// the new main store carries no linkable relation to the old stores.
// Invalidated rows are garbage collected. Plain columns are rebuilt locally
// with the same algorithms.
//
// The call is synchronous — it returns when the merge has been applied —
// but the table is locked only for two brief critical sections (sealing the
// tail, swapping the rebuilt store in); the enclave rebuild itself runs
// off-lock, so concurrent Selects and writers on this table proceed
// throughout. Writes that land during the rebuild survive it: the swap
// replays validity changes onto the new store and keeps the runs and tail
// accrued since sealing as the new delta chain. At most one merge per table
// runs at a time; a second Merge waits its turn.
func (db *DB) Merge(ctx context.Context, tableName string) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	t, err := db.lookup(tableName)
	if err != nil {
		return err
	}
	t.mergeMu.Lock()
	defer t.mergeMu.Unlock()
	return db.mergePass(tableName, t)
}

// MergeAsync starts a background merge and returns immediately. It reports
// false if a merge is already in flight (the table will be merged anyway)
// and an error if the table does not exist, is not queryable, or the
// database is closed. The merge's own outcome is observable through
// MergeStatus.
func (db *DB) MergeAsync(ctx context.Context, tableName string) (started bool, err error) {
	if err := ctxErr(ctx); err != nil {
		return false, err
	}
	t, err := db.lookup(tableName)
	if err != nil {
		return false, err
	}
	if err := t.readyCheck(); err != nil {
		return false, err
	}
	if !t.mergeMu.TryLock() {
		return false, nil
	}
	// Admission and wg.Add are one step under closeMu, so Close's drain
	// always covers a merge it raced with.
	db.closeMu.Lock()
	if db.closed.Load() {
		db.closeMu.Unlock()
		t.mergeMu.Unlock()
		return false, ErrClosed
	}
	db.wg.Add(1)
	go func() {
		defer db.wg.Done()
		defer t.mergeMu.Unlock()
		db.mergePass(tableName, t) //nolint:errcheck // recorded in lastMergeErr
	}()
	db.closeMu.Unlock()
	return true, nil
}

// maybeAutoMerge applies the auto-merge policy after a write commit: when
// the delta chain crosses the configured row or byte threshold, a
// background merge is kicked off (a no-op if one is already running).
func (db *DB) maybeAutoMerge(tableName string, t *table) {
	if db.opts.autoMergeRows <= 0 && db.opts.autoMergeBytes <= 0 {
		return
	}
	if db.closed.Load() || t.merging.Load() {
		return
	}
	t.mu.RLock()
	rows := t.deltaRows
	bytes := t.deltaBytesLocked()
	t.mu.RUnlock()
	if (db.opts.autoMergeRows > 0 && rows >= db.opts.autoMergeRows) ||
		(db.opts.autoMergeBytes > 0 && bytes >= db.opts.autoMergeBytes) {
		db.MergeAsync(context.Background(), tableName) //nolint:errcheck // best-effort policy trigger
	}
}

// mergePass runs one merge pipeline and records its outcome in
// lastMergeErr so MergeStatus surfaces synchronous and background failures
// alike; the caller holds mergeMu.
func (db *DB) mergePass(tableName string, t *table) error {
	t.merging.Store(true)
	defer t.merging.Store(false)
	start := db.metrics.mergeStarted()
	defer db.metrics.mergeFinished(start)
	err := db.runMerge(tableName, t)
	if err != nil {
		t.mu.Lock()
		t.lastMergeErr = err.Error()
		t.mu.Unlock()
	}
	return err
}

// runMerge is the merge pipeline body; the caller holds mergeMu.
func (db *DB) runMerge(tableName string, t *table) error {
	if db.opts.blockingMerge {
		// Legacy baseline: the whole pipeline under one write lock. The
		// checkpoint gate wraps it entirely — lock order is gate first.
		endGate := db.gateCheckpoint(tableName)
		defer endGate()
		t.mu.Lock()
		if err := t.ready(); err != nil {
			t.mu.Unlock()
			return err
		}
		t.sealTailLocked(0)
		base := t.versionLocked()
		merged, newRows, err := db.rebuild(tableName, base)
		if err != nil {
			t.mu.Unlock()
			return err
		}
		db.swapLocked(t, base, merged, newRows)
		gen := t.gen
		t.mu.Unlock()
		return db.checkpointMerged(tableName, gen)
	}

	// 1. Seal: freeze the current tail into a run and pin the version the
	// rebuild will consume. Brief critical section.
	t.mu.Lock()
	if err := t.ready(); err != nil {
		t.mu.Unlock()
		return err
	}
	t.sealTailLocked(0)
	base := t.versionLocked()
	t.mu.Unlock()
	if h := db.mergeHooks.afterSeal; h != nil {
		h(tableName)
	}

	// 2. Rebuild off-lock: the enclave reconstructs and re-encrypts the
	// pinned stores while reads and writes proceed against the live table.
	merged, newRows, err := db.rebuild(tableName, base)
	if err != nil {
		return err
	}
	if h := db.mergeHooks.beforeSwap; h != nil {
		h(tableName)
	}

	// 3. Swap: install the new main store and replay what accrued during
	// the rebuild. Brief critical section — except when a commit log is
	// installed: the swap compacts the RecordID space, making every earlier
	// log record unreplayable onto the new store, so the exclusive append
	// gate is held from just before the swap until the checkpoint has
	// durably cut the post-swap image. Writers on this table stall for the
	// image write; queries proceed throughout.
	endGate := db.gateCheckpoint(tableName)
	defer endGate()
	t.mu.Lock()
	db.swapLocked(t, base, merged, newRows)
	gen := t.gen
	t.mu.Unlock()
	return db.checkpointMerged(tableName, gen)
}

// rebuild produces the new main store of every column from the pinned base
// version: the valid rows of the main store and all sealed runs, compacted
// in RecordID order. It takes no locks — base is immutable.
func (db *DB) rebuild(tableName string, base *version) (map[string]*dict.Split, int, error) {
	mainValid := validBools(base.valid, 0, base.mainRows)
	merged := make(map[string]*dict.Split, len(base.cols))
	newRows := -1
	for name, cv := range base.cols {
		var (
			s   *dict.Split
			err error
		)
		if cv.def.Plain {
			s, err = mergePlain(base, cv, mainValid)
		} else {
			inputs := make([]enclave.MergeInput, 0, 1+len(cv.sealed))
			inputs = append(inputs, enclave.MergeInput{
				Region: cv.main, AV: cv.main.Packed(), Valid: mainValid,
			})
			off := base.mainRows
			for _, run := range cv.sealed {
				inputs = append(inputs, enclave.MergeInput{
					Region: run, AV: run.packed, Valid: validBools(base.valid, off, run.rows()),
				})
				off += run.rows()
			}
			s, err = db.encl.MergeColumns(db.columnMetaVersion(cv), cv.def.BSMax, inputs...)
		}
		if err != nil {
			return nil, 0, fmt.Errorf("engine: merge %q.%q: %w", tableName, name, err)
		}
		if newRows >= 0 && s.Rows() != newRows {
			return nil, 0, fmt.Errorf("engine: merge %q: column %q rebuilt %d rows, want %d",
				tableName, name, s.Rows(), newRows)
		}
		merged[name] = s
		newRows = s.Rows()
	}
	return merged, newRows, nil
}

// swapLocked installs the rebuilt main stores and reconciles the state that
// accrued since base was sealed: rows invalidated during the rebuild are
// re-invalidated at their compacted positions in the new store, and the
// delta runs and tail appended during the rebuild carry over (with their
// validity bits) as the new version's delta chain. The caller holds the
// table write lock and mergeMu.
func (db *DB) swapLocked(t *table, base *version, merged map[string]*dict.Split, newRows int) {
	// Rows [0, baseRows) were fed to the rebuild; everything past them is
	// delta appended during the rebuild and survives the swap.
	baseRows := base.rows()
	surviving := t.mainRows + t.deltaRows - baseRows
	cur := t.valid

	valid := ridset.New(newRows + surviving)
	newRID := 0
	for j := 0; j < baseRows; j++ {
		if !base.valid.Contains(uint32(j)) {
			continue // garbage collected by the rebuild
		}
		if cur.Contains(uint32(j)) {
			valid.Add(uint32(newRID))
		}
		newRID++
	}
	for i := 0; i < surviving; i++ {
		if cur.Contains(uint32(baseRows + i)) {
			valid.Add(uint32(newRows + i))
		}
	}

	baseSealed := base.sealedRuns()
	for name, c := range t.cols {
		c.main = merged[name]
		c.sealed = append([]*deltaRun(nil), c.sealed[baseSealed:]...)
		c.imported = c.imported || newRows > 0
	}
	t.mainRows = newRows
	t.deltaRows = surviving
	t.valid = valid
	t.gen++
	t.merges++
	t.lastMergeErr = ""
}

// mergePlain rebuilds a plain column locally from the valid rows of the
// pinned base version.
func mergePlain(base *version, cv *colVersion, mainValid []bool) (*dict.Split, error) {
	var col [][]byte
	mainAV := cv.main.AVCodes()
	for j := 0; j < base.mainRows; j++ {
		if mainValid[j] {
			col = append(col, cv.main.Entry(int(mainAV[j])))
		}
	}
	off := base.mainRows
	for _, run := range cv.sealed {
		for j := 0; j < run.rows(); j++ {
			if base.valid.Contains(uint32(off + j)) {
				col = append(col, run.entries[j])
			}
		}
		off += run.rows()
	}
	rnd, err := newBuildRand()
	if err != nil {
		return nil, err
	}
	return dict.Build(col, dict.Params{
		Kind:   cv.def.Kind,
		MaxLen: cv.def.MaxLen,
		BSMax:  cv.def.BSMax,
		Plain:  true,
		Rand:   rnd,
	})
}
