package engine_test

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/search"
)

// mergeEnv builds a one-column table with main-store rows, delta rows, and a
// deletion, so a merge has every kind of work to do.
func mergeEnv(t *testing.T, opts ...engine.Option) (*env, engine.ColumnDef, []string) {
	t.Helper()
	return mergeEnvKind(t, dict.ED5, opts...)
}

func mergeEnvKind(t *testing.T, kind dict.Kind, opts ...engine.Option) (*env, engine.ColumnDef, []string) {
	t.Helper()
	v := newEnvWith(t, opts...)
	def := engine.ColumnDef{Name: "c", Kind: kind, MaxLen: 8}
	if kind.Repetition() == dict.RepSmoothing {
		def.BSMax = 4
	}
	if err := v.db.CreateTable(engine.Schema{Table: "t", Columns: []engine.ColumnDef{def}}); err != nil {
		t.Fatal(err)
	}
	var model []string
	var col [][]byte
	for i := 0; i < 40; i++ {
		s := fmt.Sprintf("m%03d", i%10)
		model = append(model, s)
		col = append(col, []byte(s))
	}
	v.loadColumn(t, "t", def, col)
	for i := 0; i < 25; i++ {
		s := fmt.Sprintf("d%03d", i%7)
		if err := v.db.Insert(context.Background(), "t", engine.Row{"c": v.encryptValue(t, "t", "c", s)}); err != nil {
			t.Fatal(err)
		}
		model = append(model, s)
	}
	// Delete one main-store value and one delta value.
	for _, victim := range []string{"m003", "d002"} {
		if _, err := v.db.Delete(context.Background(), "t", []engine.Filter{v.filter(t, "t", def, search.Eq([]byte(victim)))}); err != nil {
			t.Fatal(err)
		}
		var kept []string
		for _, m := range model {
			if m != victim {
				kept = append(kept, m)
			}
		}
		model = kept
	}
	sort.Strings(model)
	return v, def, model
}

// allRows returns the sorted decrypted projection of every valid row.
func allRows(t *testing.T, v *env, def engine.ColumnDef) []string {
	t.Helper()
	res, err := v.db.Select(context.Background(), engine.Query{Table: "t", Project: []string{"c"}})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	got := v.decryptCells(t, res.Columns[0], def.Plain)
	sort.Strings(got)
	return got
}

// TestSelectDuringBackgroundMerge is the non-blocking regression test: a
// Select issued while a merge is mid-rebuild must start AND finish without
// waiting for the rebuild. The merge is parked between seal and swap on a
// hook channel, so if the Select shared a lock with the rebuild the test
// would time out.
func TestSelectDuringBackgroundMerge(t *testing.T) {
	v, def, model := mergeEnv(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	v.db.SetMergeHooks(nil, func(string) {
		once.Do(func() { close(entered) })
		<-release
	})

	mergeDone := make(chan error, 1)
	go func() { mergeDone <- v.db.Merge(context.Background(), "t") }()
	<-entered // rebuild finished, swap parked — the merge is in flight

	type selRes struct {
		rows []string
		err  error
	}
	selDone := make(chan selRes, 1)
	go func() {
		res, err := v.db.Select(context.Background(), engine.Query{Table: "t", Project: []string{"c"}})
		if err != nil {
			selDone <- selRes{err: err}
			return
		}
		rows := v.decryptCells(t, res.Columns[0], def.Plain)
		sort.Strings(rows)
		selDone <- selRes{rows: rows}
	}()
	select {
	case sr := <-selDone:
		if sr.err != nil {
			t.Fatalf("Select during merge: %v", sr.err)
		}
		if fmt.Sprint(sr.rows) != fmt.Sprint(model) {
			t.Errorf("rows during merge = %v, want %v", sr.rows, model)
		}
	case <-time.After(10 * time.Second):
		close(release)
		t.Fatal("Select blocked behind the in-flight merge")
	}

	// Writers must get through as well while the swap is parked.
	if err := v.db.Insert(context.Background(), "t", engine.Row{"c": v.encryptValue(t, "t", "c", "w000")}); err != nil {
		t.Fatalf("Insert during merge: %v", err)
	}
	model = append(model, "w000")
	sort.Strings(model)

	close(release)
	if err := <-mergeDone; err != nil {
		t.Fatalf("Merge: %v", err)
	}
	// The insert that landed during the rebuild survived the swap.
	if got := allRows(t, v, def); fmt.Sprint(got) != fmt.Sprint(model) {
		t.Errorf("rows after merge = %v, want %v", got, model)
	}
}

// TestWritesDuringRebuildAreReplayed pins down the swap's delta replay:
// inserts, a delete of a merged row, and a delete of a fresh row all land
// while the rebuild is parked, and all must be reflected after the swap.
func TestWritesDuringRebuildAreReplayed(t *testing.T) {
	v, def, model := mergeEnv(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	v.db.SetMergeHooks(func(string) {
		once.Do(func() { close(entered) })
		<-release
	}, nil)

	mergeDone := make(chan error, 1)
	go func() { mergeDone <- v.db.Merge(context.Background(), "t") }()
	<-entered // sealed, rebuild not yet run

	apply := func(victim string) {
		if _, err := v.db.Delete(context.Background(), "t", []engine.Filter{v.filter(t, "t", def, search.Eq([]byte(victim)))}); err != nil {
			t.Fatal(err)
		}
		var kept []string
		for _, m := range model {
			if m != victim {
				kept = append(kept, m)
			}
		}
		model = kept
	}
	for _, s := range []string{"x001", "x002", "x003"} {
		if err := v.db.Insert(context.Background(), "t", engine.Row{"c": v.encryptValue(t, "t", "c", s)}); err != nil {
			t.Fatal(err)
		}
		model = append(model, s)
	}
	apply("m005") // rows being rebuilt right now
	apply("x002") // a row appended after the seal
	if n, err := v.db.Update(context.Background(), "t", []engine.Filter{v.filter(t, "t", def, search.Eq([]byte("d004")))},
		engine.Row{"c": v.encryptValue(t, "t", "c", "u004")}); err != nil {
		t.Fatal(err)
	} else if n == 0 {
		t.Fatal("update matched nothing")
	}
	var kept []string
	for _, m := range model {
		if m == "d004" {
			m = "u004"
		}
		kept = append(kept, m)
	}
	model = kept
	sort.Strings(model)

	close(release)
	if err := <-mergeDone; err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if got := allRows(t, v, def); fmt.Sprint(got) != fmt.Sprint(model) {
		t.Errorf("rows after merge = %v, want %v", got, model)
	}
	// A second, quiet merge compacts the replayed state too.
	if err := v.db.Merge(context.Background(), "t"); err != nil {
		t.Fatalf("second Merge: %v", err)
	}
	if got := allRows(t, v, def); fmt.Sprint(got) != fmt.Sprint(model) {
		t.Errorf("rows after second merge = %v, want %v", got, model)
	}
}

// TestConcurrentMergeBitIdentical is the stress half of the acceptance
// criteria: with the dataset frozen, a merge is semantically a no-op, so
// every Select running concurrently with a background merge storm must
// return exactly the rows sequential execution returns. Run with -race.
func TestConcurrentMergeBitIdentical(t *testing.T) {
	for _, kind := range []dict.Kind{dict.ED1, dict.ED5, dict.ED9} {
		t.Run(kind.String(), func(t *testing.T) {
			v, def, model := mergeEnvKind(t, kind)
			queries := []search.Range{
				search.Eq([]byte("m004")),
				search.Closed([]byte("d000"), []byte("d999")),
				search.Closed([]byte("a"), []byte("z")),
			}
			var want [][]string
			for _, q := range queries {
				res, err := v.db.Select(context.Background(), engine.Query{
					Table:   "t",
					Filters: []engine.Filter{v.filter(t, "t", def, q)},
					Project: []string{"c"},
				})
				if err != nil {
					t.Fatal(err)
				}
				rows := v.decryptCells(t, res.Columns[0], def.Plain)
				sort.Strings(rows)
				want = append(want, rows)
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup
			errs := make(chan error, 8)
			wg.Add(1)
			go func() { // merge storm
				defer wg.Done()
				for i := 0; i < 6; i++ {
					if err := v.db.Merge(context.Background(), "t"); err != nil {
						errs <- err
						return
					}
				}
				close(stop)
			}()
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						qi := (r + i) % len(queries)
						res, err := v.db.Select(context.Background(), engine.Query{
							Table:   "t",
							Filters: []engine.Filter{v.filter(t, "t", def, queries[qi])},
							Project: []string{"c"},
						})
						if err != nil {
							errs <- err
							return
						}
						rows := v.decryptCells(t, res.Columns[0], def.Plain)
						sort.Strings(rows)
						if fmt.Sprint(rows) != fmt.Sprint(want[qi]) {
							errs <- fmt.Errorf("reader %d query %d: got %v, want %v", r, qi, rows, want[qi])
							return
						}
					}
				}(r)
			}
			wg.Wait()
			select {
			case err := <-errs:
				t.Fatal(err)
			default:
			}
			if got := allRows(t, v, def); fmt.Sprint(got) != fmt.Sprint(model) {
				t.Errorf("rows after storm = %v, want %v", got, model)
			}
		})
	}
}

// TestSealedRunsAnswerQueries covers the packed sealed-run path: with a tiny
// seal threshold, inserts accumulate into multiple sealed runs plus a tail,
// and queries must see main, sealed, and tail rows alike.
func TestSealedRunsAnswerQueries(t *testing.T) {
	v := newEnvWith(t, engine.WithSealThreshold(4))
	def := engine.ColumnDef{Name: "c", Kind: dict.ED1, MaxLen: 8}
	if err := v.db.CreateTable(engine.Schema{Table: "t", Columns: []engine.ColumnDef{def}}); err != nil {
		t.Fatal(err)
	}
	v.loadColumn(t, "t", def, bcol("a01", "a02"))
	model := []string{"a01", "a02"}
	for i := 0; i < 11; i++ {
		s := fmt.Sprintf("b%02d", i)
		if err := v.db.Insert(context.Background(), "t", engine.Row{"c": v.encryptValue(t, "t", "c", s)}); err != nil {
			t.Fatal(err)
		}
		model = append(model, s)
	}
	runs, err := v.db.SealedRuns("t")
	if err != nil {
		t.Fatal(err)
	}
	if runs != 2 { // 11 delta rows at threshold 4: two sealed runs + 3-row tail
		t.Errorf("sealed runs = %d, want 2", runs)
	}
	if got := allRows(t, v, def); fmt.Sprint(got) != fmt.Sprint(model) {
		t.Errorf("rows = %v, want %v", got, model)
	}
	// Range hitting main + both sealed runs + tail; then delete from a
	// sealed run and re-check.
	res, err := v.db.Select(context.Background(), engine.Query{
		Table:     "t",
		Filters:   []engine.Filter{v.filter(t, "t", def, search.Closed([]byte("a02"), []byte("b09")))},
		CountOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 11 {
		t.Errorf("range count = %d, want 11", res.Count)
	}
	if _, err := v.db.Delete(context.Background(), "t", []engine.Filter{v.filter(t, "t", def, search.Eq([]byte("b01")))}); err != nil {
		t.Fatal(err)
	}
	if err := v.db.Merge(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, m := range model {
		if m != "b01" {
			kept = append(kept, m)
		}
	}
	if got := allRows(t, v, def); fmt.Sprint(got) != fmt.Sprint(kept) {
		t.Errorf("rows after merge = %v, want %v", got, kept)
	}
	if runs, _ = v.db.SealedRuns("t"); runs != 0 {
		t.Errorf("sealed runs after merge = %d, want 0", runs)
	}
}

// TestAutoMergePolicy checks WithAutoMerge: crossing the row threshold kicks
// a background merge that empties the delta chain without any explicit
// Merge call.
func TestAutoMergePolicy(t *testing.T) {
	v := newEnvWith(t, engine.WithAutoMerge(8, 0))
	def := engine.ColumnDef{Name: "c", Kind: dict.ED1, MaxLen: 8}
	if err := v.db.CreateTable(engine.Schema{Table: "t", Columns: []engine.ColumnDef{def}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := v.db.Insert(context.Background(), "t", engine.Row{"c": v.encryptValue(t, "t", "c", fmt.Sprintf("v%02d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, err := v.db.MergeStatus(context.Background(), "t")
		if err != nil {
			t.Fatal(err)
		}
		if info.Merges > 0 && !info.Merging && info.DeltaRows == 0 {
			if info.MainRows != 8 {
				t.Errorf("main rows after auto-merge = %d, want 8", info.MainRows)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-merge never ran: %+v", info)
		}
		time.Sleep(time.Millisecond)
	}
	if err := v.db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := v.db.MergeAsync(context.Background(), "t"); err != engine.ErrClosed {
		t.Errorf("MergeAsync after Close = %v, want ErrClosed", err)
	}
}

// TestMergeAsyncReportsInFlight checks the started flag: while one merge is
// parked, a second MergeAsync must decline rather than queue or block.
func TestMergeAsyncReportsInFlight(t *testing.T) {
	v, _, _ := mergeEnv(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	v.db.SetMergeHooks(nil, func(string) {
		once.Do(func() { close(entered) })
		<-release
	})
	started, err := v.db.MergeAsync(context.Background(), "t")
	if err != nil || !started {
		t.Fatalf("first MergeAsync = %v, %v", started, err)
	}
	<-entered
	if info, err := v.db.MergeStatus(context.Background(), "t"); err != nil || !info.Merging {
		t.Errorf("status mid-merge = %+v, %v; want Merging", info, err)
	}
	started, err = v.db.MergeAsync(context.Background(), "t")
	if err != nil {
		t.Fatalf("second MergeAsync: %v", err)
	}
	if started {
		t.Error("second MergeAsync claimed to start while one was in flight")
	}
	close(release)
	if err := v.db.Close(); err != nil {
		t.Fatal(err)
	}
	if info, err := v.db.MergeStatus(context.Background(), "t"); err != nil || info.Merges != 1 || info.Merging {
		t.Errorf("final status = %+v, %v; want exactly one completed merge", info, err)
	}
}

// TestUpdateDoesNotAliasSetBuffers: mutating the caller's set buffer after
// Update returns must not corrupt stored rows.
func TestUpdateDoesNotAliasSetBuffers(t *testing.T) {
	v := newEnv(t)
	def := engine.ColumnDef{Name: "c", Kind: dict.ED1, MaxLen: 8, Plain: true}
	if err := v.db.CreateTable(engine.Schema{Table: "t", Columns: []engine.ColumnDef{def}}); err != nil {
		t.Fatal(err)
	}
	v.loadColumn(t, "t", def, bcol("old"))
	buf := []byte("new")
	if _, err := v.db.Update(context.Background(), "t",
		[]engine.Filter{v.filter(t, "t", def, search.Eq([]byte("old")))},
		engine.Row{"c": buf}); err != nil {
		t.Fatal(err)
	}
	copy(buf, "XXX") // caller reuses its buffer
	if got := allRows(t, v, def); fmt.Sprint(got) != "[new]" {
		t.Errorf("rows = %v, want [new] (Update aliased the caller's buffer)", got)
	}
}
