package engine_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/search"
)

// TestFusedScanMatchesTwoPass runs an identical workload — bulk-loaded main
// stores, delta inserts past the seal threshold, deletes and updates — against
// databases sharing one enclave but differing only in scan strategy, and
// requires every query to return identical RecordID sets:
//
//   - the fused accumulator path at the default, single and odd worker counts,
//   - the two-pass path (per-filter sets + IntersectWith + validity AND),
//   - the unpacked []uint32 baseline.
//
// The column data is shaped so the engine-built splits cover all three block
// encodings (clustered values → RLE on sorted dictionaries, random values →
// packed/FoR), and the kind matrix covers sorted, rotated and unsorted
// dictionaries so both the range and membership kernels run under fusion.
func TestFusedScanMatchesTwoPass(t *testing.T) {
	const sealRows = 64
	base := newEnvWith(t, engine.WithSealThreshold(sealRows))
	envs := map[string]*env{
		"fused": base,
		"fused-1worker": {
			db:     engine.New(base.db.Enclave(), engine.WithSealThreshold(sealRows), engine.WithWorkers(1)),
			master: base.master,
		},
		"fused-3workers": {
			db:     engine.New(base.db.Enclave(), engine.WithSealThreshold(sealRows), engine.WithWorkers(3)),
			master: base.master,
		},
		"two-pass": {
			db:     engine.New(base.db.Enclave(), engine.WithSealThreshold(sealRows), engine.WithFusedScan(false)),
			master: base.master,
		},
		"unpacked": {
			db: engine.New(base.db.Enclave(), engine.WithSealThreshold(sealRows),
				engine.WithPackedScan(false), engine.WithAVMode(search.AVBitset)),
			master: base.master,
		},
	}
	order := []string{"fused", "fused-1worker", "fused-3workers", "two-pass", "unpacked"}

	rng := rand.New(rand.NewSource(41))
	kindPairs := [][2]dict.Kind{
		{dict.ED1, dict.ED9},
		{dict.ED5, dict.ED2},
		{dict.ED3, dict.ED7},
	}
	for pi, kinds := range kindPairs {
		table := fmt.Sprintf("fz%d", pi)
		defA := engine.ColumnDef{Name: "a", Kind: kinds[0], MaxLen: 8, BSMax: 3}
		defB := engine.ColumnDef{Name: "b", Kind: kinds[1], MaxLen: 8, BSMax: 3}
		schema := engine.Schema{Table: table, Columns: []engine.ColumnDef{defA, defB}}

		// Column a: random draws (packed/FoR blocks); column b: clustered
		// runs (RLE blocks on sorted dictionaries).
		var colA, colB [][]byte
		for i := 0; i < 400; i++ {
			colA = append(colA, []byte(fmt.Sprintf("v%03d", rng.Intn(30))))
			colB = append(colB, []byte(fmt.Sprintf("c%02d", i/16)))
		}
		for _, name := range order {
			v := envs[name]
			if err := v.db.CreateTable(schema); err != nil {
				t.Fatal(err)
			}
			// loadColumn's fixed build seed makes the splits identical
			// across variants.
			v.loadColumn(t, table, defA, colA)
			v.loadColumn(t, table, defB, colB)
		}

		// Same mutation stream everywhere: enough inserts to seal multiple
		// delta runs and leave a tail, plus deletes and updates touching
		// main and delta rows alike.
		for i := 0; i < 150; i++ {
			a, b := fmt.Sprintf("v%03d", rng.Intn(30)), fmt.Sprintf("c%02d", rng.Intn(32))
			for _, name := range order {
				v := envs[name]
				row := engine.Row{
					"a": v.encryptValue(t, table, "a", a),
					"b": v.encryptValue(t, table, "b", b),
				}
				if err := v.db.Insert(context.Background(), table, row); err != nil {
					t.Fatalf("%s insert: %v", name, err)
				}
			}
		}
		for i := 0; i < 6; i++ {
			victim := search.Eq([]byte(fmt.Sprintf("v%03d", rng.Intn(30))))
			var want int
			for vi, name := range order {
				v := envs[name]
				n, err := v.db.Delete(context.Background(), table, []engine.Filter{base.filter(t, table, defA, victim)})
				if err != nil {
					t.Fatalf("%s delete: %v", name, err)
				}
				if vi == 0 {
					want = n
				} else if n != want {
					t.Fatalf("%s deleted %d rows, %s deleted %d", name, n, order[0], want)
				}
			}
		}
		for i := 0; i < 3; i++ {
			target := search.Eq([]byte(fmt.Sprintf("c%02d", rng.Intn(25))))
			upd := fmt.Sprintf("v%03d", 200+i)
			for _, name := range order {
				v := envs[name]
				set := engine.Row{"a": v.encryptValue(t, table, "a", upd)}
				if _, err := v.db.Update(context.Background(), table, []engine.Filter{base.filter(t, table, defB, target)}, set); err != nil {
					t.Fatalf("%s update: %v", name, err)
				}
			}
		}

		queries := make([][]engine.Filter, 0, 24)
		randRange := func(def engine.ColumnDef, prefix string, span int) engine.Filter {
			lo := fmt.Sprintf("%s%03d", prefix, rng.Intn(span))
			hi := fmt.Sprintf("%s%03d", prefix, rng.Intn(span))
			if lo > hi {
				lo, hi = hi, lo
			}
			return base.filter(t, table, def, search.Range{
				Start: []byte(lo), End: []byte(hi),
				StartIncl: rng.Intn(2) == 0, EndIncl: rng.Intn(2) == 0,
			})
		}
		for trial := 0; trial < 8; trial++ {
			fa, fb := randRange(defA, "v", 35), randRange(defB, "c", 35)
			queries = append(queries,
				[]engine.Filter{fa},
				[]engine.Filter{fb},
				[]engine.Filter{fa, fb},
			)
		}
		// Conjunctions guaranteed empty at the dictionary level, and a
		// three-filter conjunction.
		queries = append(queries,
			[]engine.Filter{base.filter(t, table, defA, search.Eq([]byte("zzz")))},
			[]engine.Filter{randRange(defA, "v", 35), base.filter(t, table, defB, search.Eq([]byte("zzz")))},
			[]engine.Filter{randRange(defA, "v", 35), randRange(defB, "c", 35), randRange(defA, "v", 35)},
		)

		for qi, filters := range queries {
			want, err := base.db.Select(context.Background(), engine.Query{Table: table, Filters: filters})
			if err != nil {
				t.Fatalf("table %s query %d fused select: %v", table, qi, err)
			}
			for _, name := range order[1:] {
				got, err := envs[name].db.Select(context.Background(), engine.Query{Table: table, Filters: filters})
				if err != nil {
					t.Fatalf("table %s query %d %s select: %v", table, qi, name, err)
				}
				if !reflect.DeepEqual(want.RecordIDs, got.RecordIDs) {
					t.Fatalf("table %s (kinds %v/%v) query %d: fused %v != %s %v",
						table, kinds[0], kinds[1], qi, want.RecordIDs, name, got.RecordIDs)
				}
			}
		}
	}
}
