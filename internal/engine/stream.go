package engine

import (
	"context"
	"io"
)

// defaultStreamChunk is the default number of rows rendered per SelectStream
// chunk.
const defaultStreamChunk = 1024

type streamChunkOption int

func (o streamChunkOption) apply(opts *options) {
	if o > 0 {
		opts.streamChunk = int(o)
	}
}

// WithStreamChunk sets how many rows SelectStream renders per chunk
// (default 1024). Smaller chunks lower first-row latency and per-chunk
// memory; larger chunks amortize per-chunk overhead.
func WithStreamChunk(rows int) Option { return streamChunkOption(rows) }

// ResultStream delivers one Select's result in row chunks. Next returns the
// chunks in RecordID order and io.EOF after the last one; each chunk is a
// self-contained Result whose Count is the chunk's row count. Streams must be
// closed, though closing an engine cursor only releases references.
//
// A chunk — including every cell slice it carries — is valid only until the
// next Next or Close call. Implementations may recycle the backing memory
// (the wire client backs each chunk with a pooled frame buffer); a consumer
// that needs data past that window must copy it out first.
type ResultStream interface {
	// Next returns the next chunk, or io.EOF when the stream is exhausted.
	Next() (*Result, error)
	// Count returns the total number of matching rows across all chunks.
	Count() int
	// Close releases the stream's resources. It is idempotent.
	Close() error
}

// SelectStream evaluates a query like Select but streams the rendered result:
// the filter phase runs up front against a pinned version (the match set is a
// cheap bitmap), while the expensive rendering — dictionary lookups per
// projected cell — happens lazily, one chunk of rows per Next call. The
// context is re-checked on every chunk, so cancelling it mid-result stops the
// remaining rendering work.
func (db *DB) SelectStream(ctx context.Context, q Query) (ResultStream, error) {
	v, rids, err := db.selectMatch(ctx, q)
	if err != nil {
		return nil, err
	}
	cur := &Cursor{ctx: ctx, table: q.Table, v: v, rids: rids, chunk: db.opts.streamChunk}
	if q.CountOnly {
		// A count-only stream has no row chunks; Count carries the answer.
		cur.pos = len(rids)
		return cur, nil
	}
	if cur.project, err = v.project(q); err != nil {
		return nil, err
	}
	return cur, nil
}

// MaterializedStream adapts an already-materialized Result to the
// ResultStream interface as a single chunk — the shape of the streaming
// fallback against providers that can only materialize.
func MaterializedStream(res *Result) ResultStream {
	return &materializedStream{res: res}
}

type materializedStream struct {
	res  *Result
	done bool
}

func (m *materializedStream) Next() (*Result, error) {
	if m.done || m.res == nil {
		return nil, io.EOF
	}
	m.done = true
	if m.res.Count == 0 {
		return nil, io.EOF
	}
	return m.res, nil
}

func (m *materializedStream) Count() int {
	if m.res == nil {
		return 0
	}
	return m.res.Count
}

func (m *materializedStream) Close() error {
	m.done = true
	return nil
}

// Cursor is the engine's pull-based ResultStream: it pins one version and
// renders the match set chunk by chunk on demand, entirely lock-free (the
// pinned version is immutable), so a slow consumer never blocks writers or
// merges.
type Cursor struct {
	ctx     context.Context
	table   string
	v       *version
	project []string
	rids    []uint32
	pos     int
	chunk   int
}

// Next renders and returns the next chunk of rows, or io.EOF when done.
func (c *Cursor) Next() (*Result, error) {
	if err := ctxErr(c.ctx); err != nil {
		return nil, err
	}
	if c.pos >= len(c.rids) {
		return nil, io.EOF
	}
	end := c.pos + c.chunk
	if end > len(c.rids) {
		end = len(c.rids)
	}
	rids := c.rids[c.pos:end]
	c.pos = end
	res := &Result{RecordIDs: rids, Count: len(rids)}
	for _, name := range c.project {
		res.Columns = append(res.Columns, ResultColumn{
			Table:  c.table,
			Column: name,
			Cells:  c.v.render(c.v.cols[name], rids),
		})
	}
	return res, nil
}

// Count returns the total number of matching rows.
func (c *Cursor) Count() int { return len(c.rids) }

// Close drops the cursor's version reference so the pinned stores can be
// collected.
func (c *Cursor) Close() error {
	c.v = nil
	c.rids = c.rids[len(c.rids):]
	c.pos = 0
	return nil
}
