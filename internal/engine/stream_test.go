package engine_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"testing"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/search"
)

// drainStream collects a stream's chunks into one flat row list per column.
func drainStream(t *testing.T, st engine.ResultStream) (chunks int, cells map[string][][]byte) {
	t.Helper()
	cells = make(map[string][][]byte)
	for {
		chunk, err := st.Next()
		if err == io.EOF {
			return chunks, cells
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		chunks++
		if chunk.Count != len(chunk.RecordIDs) {
			t.Fatalf("chunk Count = %d, rids = %d", chunk.Count, len(chunk.RecordIDs))
		}
		for _, rc := range chunk.Columns {
			cells[rc.Column] = append(cells[rc.Column], rc.Cells...)
		}
	}
}

// TestSelectStreamMatchesSelect pins that streaming returns exactly the rows
// a materialized Select does, in the same order, across multiple chunks.
func TestSelectStreamMatchesSelect(t *testing.T) {
	v := newEnvWith(t, engine.WithStreamChunk(8))
	def := engine.ColumnDef{Name: "c", Kind: dict.ED5, MaxLen: 8, BSMax: 3}
	schema := engine.Schema{Table: "s1", Columns: []engine.ColumnDef{def}}
	if err := v.db.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	var col [][]byte
	for i := 0; i < 100; i++ {
		col = append(col, fmt.Appendf(nil, "v%03d", i%37))
	}
	v.loadColumn(t, "s1", def, col)

	f := v.filter(t, "s1", def, search.Closed([]byte("v000"), []byte("v020")))
	q := engine.Query{Table: "s1", Filters: []engine.Filter{f}}
	ctx := context.Background()

	want, err := v.db.Select(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	st, err := v.db.SelectStream(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Count() != want.Count {
		t.Fatalf("stream Count = %d, want %d", st.Count(), want.Count)
	}
	chunks, cells := drainStream(t, st)
	if want.Count > 8 && chunks < 2 {
		t.Fatalf("chunks = %d for %d rows with chunk size 8", chunks, want.Count)
	}
	got := cells["c"]
	if len(got) != want.Count {
		t.Fatalf("streamed %d cells, want %d", len(got), want.Count)
	}
	for i, cell := range want.Columns[0].Cells {
		if string(got[i]) != string(cell) {
			t.Fatalf("cell %d differs between stream and select", i)
		}
	}
}

// TestSelectStreamCountOnly: a count-only stream has no chunks but carries
// the total.
func TestSelectStreamCountOnly(t *testing.T) {
	v := newEnv(t)
	fname, _ := v.standardTable(t, dict.ED1, dict.ED1)
	f := v.filter(t, "t1", fname, search.Eq([]byte("Jessica")))
	st, err := v.db.SelectStream(context.Background(), engine.Query{
		Table: "t1", Filters: []engine.Filter{f}, CountOnly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Count() != 3 {
		t.Fatalf("Count = %d, want 3", st.Count())
	}
	if _, err := st.Next(); err != io.EOF {
		t.Fatalf("Next = %v, want io.EOF", err)
	}
}

// TestSelectContextCancelled: a cancelled context fails Select with
// context.Canceled before any scan work runs.
func TestSelectContextCancelled(t *testing.T) {
	v := newEnv(t)
	fname, _ := v.standardTable(t, dict.ED1, dict.ED1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := v.filter(t, "t1", fname, search.Eq([]byte("Jessica")))
	_, err := v.db.Select(ctx, engine.Query{Table: "t1", Filters: []engine.Filter{f}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Select err = %v, want context.Canceled", err)
	}
}

// TestSelectStreamCancelledMidway: cancelling between chunks surfaces
// context.Canceled from the next chunk fetch.
func TestSelectStreamCancelledMidway(t *testing.T) {
	v := newEnvWith(t, engine.WithStreamChunk(2))
	fname, _ := v.standardTable(t, dict.ED1, dict.ED1)
	ctx, cancel := context.WithCancel(context.Background())
	f := v.filter(t, "t1", fname, search.Closed([]byte("A"), []byte("Z")))
	st, err := v.db.SelectStream(ctx, engine.Query{Table: "t1", Filters: []engine.Filter{f}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Next(); err != nil {
		t.Fatalf("first chunk: %v", err)
	}
	cancel()
	if _, err := st.Next(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next after cancel = %v, want context.Canceled", err)
	}
}

// TestWriteContextCancelled: the write paths check the context up front.
func TestWriteContextCancelled(t *testing.T) {
	v := newEnv(t)
	fname, _ := v.standardTable(t, dict.ED1, dict.ED1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	row := engine.Row{"fname": v.encryptValue(t, "t1", "fname", "Zed"), "city": v.encryptValue(t, "t1", "city", "Bonn")}
	if err := v.db.Insert(ctx, "t1", row); !errors.Is(err, context.Canceled) {
		t.Fatalf("Insert err = %v", err)
	}
	f := v.filter(t, "t1", fname, search.Eq([]byte("Jessica")))
	if _, err := v.db.Delete(ctx, "t1", []engine.Filter{f}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Delete err = %v", err)
	}
	if _, err := v.db.Update(ctx, "t1", []engine.Filter{f}, row); !errors.Is(err, context.Canceled) {
		t.Fatalf("Update err = %v", err)
	}
	if err := v.db.Merge(ctx, "t1"); !errors.Is(err, context.Canceled) {
		t.Fatalf("Merge err = %v", err)
	}
}

// TestSelectStreamSeesDeltaAndDeletes: the stream path applies validity and
// covers main + delta chain like Select.
func TestSelectStreamSeesDeltaAndDeletes(t *testing.T) {
	ctx := context.Background()
	v := newEnvWith(t, engine.WithStreamChunk(2))
	fname, city := v.standardTable(t, dict.ED5, dict.ED9)
	for _, name := range []string{"Nora", "Nellie"} {
		row := engine.Row{
			"fname": v.encryptValue(t, "t1", "fname", name),
			"city":  v.encryptValue(t, "t1", "city", "Oslo"),
		}
		if err := v.db.Insert(ctx, "t1", row); err != nil {
			t.Fatal(err)
		}
	}
	// Delete one main-store row (Ella).
	if _, err := v.db.Delete(ctx, "t1", []engine.Filter{v.filter(t, "t1", fname, search.Eq([]byte("Ella")))}); err != nil {
		t.Fatal(err)
	}
	st, err := v.db.SelectStream(ctx, engine.Query{
		Table:   "t1",
		Filters: []engine.Filter{v.filter(t, "t1", fname, search.Closed([]byte("A"), []byte("Zz")))},
		Project: []string{"city"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, cells := drainStream(t, st)
	got := v.decryptCells(t, engine.ResultColumn{Table: "t1", Column: "city", Cells: cells["city"]}, false)
	want := map[string]int{"Berlin": 2, "Waterloo": 1, "Karlsruhe": 2, "Oslo": 2}
	counts := map[string]int{}
	for _, c := range got {
		counts[c]++
	}
	for k, n := range want {
		if counts[k] != n {
			t.Fatalf("city %q count = %d, want %d (all: %v)", k, counts[k], n, counts)
		}
	}
	if len(got) != 7 {
		t.Fatalf("rows = %d, want 7", len(got))
	}
	_ = city
}
