// Package engine implements the EncDBDB database engine: tables whose
// columns are protected by per-column encrypted dictionaries, the query
// evaluation pipeline of paper §4.2 (Fig. 5 steps 6-13), and the delta-store
// mechanism for dynamic data of paper §4.3.
//
// The engine runs entirely in the untrusted realm. It never holds plaintext
// for encrypted columns: dictionary searches are delegated to the enclave,
// attribute vector searches operate on plaintext ValueIDs (which is exactly
// what the paper's attacker may see), and result rendering copies ciphertext
// cells that only the trusted proxy can decrypt.
package engine

import (
	"errors"
	"fmt"

	"github.com/encdbdb/encdbdb/internal/dict"
)

// ColumnDef declares one column of a table.
type ColumnDef struct {
	// Name is the column name, unique within the table.
	Name string
	// Kind is the encrypted dictionary protecting the column.
	Kind dict.Kind
	// MaxLen is the maximum value length in bytes (VARCHAR(n) semantics).
	MaxLen int
	// BSMax is the frequency-smoothing bucket bound, required for ED4-ED6.
	BSMax int
	// Plain stores the column as a PlainDBDB-style plaintext dictionary
	// using identical algorithms without encryption or enclave use. The
	// paper supports plaintext dictionaries alongside encrypted ones and
	// uses them as the PlainDBDB baseline.
	Plain bool
}

// Validate checks the definition for internal consistency.
func (c ColumnDef) Validate() error {
	if c.Name == "" {
		return errors.New("engine: column name must not be empty")
	}
	if !c.Kind.Valid() {
		return fmt.Errorf("engine: column %q: invalid dictionary kind", c.Name)
	}
	if c.MaxLen <= 0 {
		return fmt.Errorf("engine: column %q: max length must be positive", c.Name)
	}
	if c.Kind.Repetition() == dict.RepSmoothing && c.BSMax < 1 {
		return fmt.Errorf("engine: column %q: %v requires bsmax >= 1", c.Name, c.Kind)
	}
	return nil
}

// Schema declares a table.
type Schema struct {
	Table   string
	Columns []ColumnDef
}

// Validate checks the schema for internal consistency.
func (s Schema) Validate() error {
	if s.Table == "" {
		return errors.New("engine: table name must not be empty")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("engine: table %q has no columns", s.Table)
	}
	seen := make(map[string]bool, len(s.Columns))
	for _, c := range s.Columns {
		if err := c.Validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("engine: table %q: duplicate column %q", s.Table, c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// Column returns the definition of the named column.
func (s Schema) Column(name string) (ColumnDef, bool) {
	for _, c := range s.Columns {
		if c.Name == name {
			return c, true
		}
	}
	return ColumnDef{}, false
}
