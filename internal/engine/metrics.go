package engine

import (
	"time"

	"github.com/encdbdb/encdbdb/internal/metrics"
)

// engineMetrics is the engine's instrumentation: query and merge activity as
// counters/histograms, merge backlog as scrape-time sampled gauges. As with
// the wire layer, a nil *engineMetrics is valid and turns every method into a
// no-op, so databases built without WithMetrics pay nothing on the query
// path.
type engineMetrics struct {
	selects        *metrics.Counter
	scanRows       *metrics.Counter
	pins           *metrics.Counter
	merges         *metrics.Counter
	mergeSeconds   *metrics.Histogram
	mergesInflight *metrics.Gauge
}

// newEngineMetrics registers the engine families on reg. The backlog gauges
// are sampled at scrape time under the per-table read locks, so one scrape
// sees each table's row/byte backlog consistently without the write path
// pushing updates.
func newEngineMetrics(reg *metrics.Registry, db *DB) *engineMetrics {
	m := &engineMetrics{
		selects:        reg.NewCounter("encdbdb_engine_selects_total", "Select match phases evaluated (materialized and streamed)."),
		scanRows:       reg.NewCounter("encdbdb_engine_scan_rows_total", "Rows in scope of select match phases (pinned main plus delta rows)."),
		pins:           reg.NewCounter("encdbdb_engine_version_pins_total", "Table version pins taken by readers."),
		merges:         reg.NewCounter("encdbdb_engine_merges_total", "Merge pipelines finished, including failed ones."),
		mergeSeconds:   reg.NewHistogram("encdbdb_engine_merge_seconds", "Merge pipeline duration: seal, enclave rebuild, swap."),
		mergesInflight: reg.NewGauge("encdbdb_engine_merges_inflight", "Merge pipelines currently running."),
	}
	reg.NewGaugeFunc("encdbdb_engine_merge_backlog_rows", "Delta-store rows awaiting merge, summed over tables.",
		func() float64 { return float64(db.backlog(func(t *table) int { return t.deltaRows })) })
	reg.NewGaugeFunc("encdbdb_engine_merge_backlog_bytes", "Delta-store payload bytes awaiting merge, summed over tables.",
		func() float64 { return float64(db.backlog(func(t *table) int { return t.deltaBytesLocked() })) })
	return m
}

// backlog sums a per-table quantity over all registered tables, taking each
// table's read lock briefly.
func (db *DB) backlog(f func(t *table) int) int {
	db.mu.RLock()
	tables := make([]*table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.RUnlock()
	total := 0
	for _, t := range tables {
		t.mu.RLock()
		total += f(t)
		t.mu.RUnlock()
	}
	return total
}

// selectPinned records one match phase against a pinned version: the select
// count, the pin, and the rows the scan has in scope.
func (m *engineMetrics) selectPinned(rows int) {
	if m == nil {
		return
	}
	m.selects.Inc()
	m.pins.Inc()
	m.scanRows.Add(uint64(rows))
}

// mergeStarted marks a merge pipeline entering; it returns the start time
// for mergeFinished.
func (m *engineMetrics) mergeStarted() time.Time {
	if m == nil {
		return time.Time{}
	}
	m.mergesInflight.Inc()
	return time.Now()
}

// mergeFinished records one finished merge pipeline.
func (m *engineMetrics) mergeFinished(start time.Time) {
	if m == nil {
		return
	}
	m.mergesInflight.Dec()
	m.merges.Inc()
	m.mergeSeconds.Observe(time.Since(start).Seconds())
}
