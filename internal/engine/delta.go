package engine

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	mrand "math/rand"
	"sync"

	"github.com/encdbdb/encdbdb/internal/av"
	"github.com/encdbdb/encdbdb/internal/ridset"
)

// deltaStore is the active tail of the write-optimized store of paper §4.3:
// an append-only ED9 dictionary (one entry per inserted row, unsorted by
// arrival, frequency hiding by construction) whose attribute vector is the
// identity AV[i] = i by construction — it is never materialized; consumers
// compute codes on the fly. Inserting into it leaks neither order nor
// frequency. Appends happen only under the table write lock; readers work
// against length-capped captures of entries, which appends never rewrite
// below the captured length.
type deltaStore struct {
	entries [][]byte
	bytes   int
}

func newDeltaStore() *deltaStore {
	return &deltaStore{}
}

// Len returns the number of tail rows (implements search.Region).
func (d *deltaStore) Len() int { return len(d.entries) }

// Load returns tail entry i (implements search.Region).
func (d *deltaStore) Load(i int) []byte { return d.entries[i] }

// append adds one re-encrypted value.
func (d *deltaStore) append(payload []byte) {
	d.entries = append(d.entries, payload)
	d.bytes += len(payload)
}

// sizeBytes returns the storage footprint of the tail. The identity
// attribute vector is implicit and costs nothing.
func (d *deltaStore) sizeBytes() int { return d.bytes }

// deltaRun is a sealed, immutable delta run: the frozen entries of a former
// tail plus the bit-packed identity attribute vector built at seal time,
// which lets the word-parallel packed membership kernel answer the
// attribute-vector phase instead of the O(rows) per-probe linear path the
// tail uses.
type deltaRun struct {
	entries [][]byte
	bytes   int
	packed  *av.Vector

	// identOnce/ident lazily mirror the identity codes as a []uint32 for
	// the unpacked baseline scan path (WithPackedScan(false)); like
	// dict.Split's AVCodes mirror, the cost is paid only if that path runs
	// and is excluded from sizeBytes.
	identOnce sync.Once
	ident     []uint32
}

// sealRun freezes a tail into an immutable run. The identity codes are
// materialized once, only to feed the packer; the packed vector is the run's
// lasting representation. Identity codes ascend strictly, so PackEncoded's
// per-block frame-of-reference narrows every full block to 10 bits
// regardless of the run's total width.
func sealRun(d *deltaStore) *deltaRun {
	n := len(d.entries)
	return &deltaRun{
		entries: d.entries[:n:n],
		bytes:   d.bytes,
		packed:  av.PackEncoded(identCodes(n), n),
	}
}

// rows returns the run's row count.
func (r *deltaRun) rows() int { return len(r.entries) }

// Len returns the run's row count (implements search.Region).
func (r *deltaRun) Len() int { return len(r.entries) }

// Load returns run entry i (implements search.Region).
func (r *deltaRun) Load(i int) []byte { return r.entries[i] }

// sizeBytes returns the storage footprint of the run including its packed
// attribute vector.
func (r *deltaRun) sizeBytes() int { return r.bytes + r.packed.MemBytes() }

// identCodes returns the run's identity codes as a plain []uint32,
// materializing and caching them on first use.
func (r *deltaRun) identCodes() []uint32 {
	r.identOnce.Do(func() { r.ident = identCodes(len(r.entries)) })
	return r.ident
}

// identCodes materializes the identity ValueID vector 0..n-1 — the unpacked
// mirror of a delta run's attribute vector, computed on demand for the
// baseline (unpacked) scan entry points.
func identCodes(n int) []uint32 {
	codes := make([]uint32, n)
	for i := range codes {
		codes[i] = uint32(i)
	}
	return codes
}

// sealTailLocked seals every column's active tail into a run if the tail
// has reached threshold rows (0 seals any non-empty tail). All columns seal
// together so run boundaries align across the table. The caller holds the
// table write lock.
func (t *table) sealTailLocked(threshold int) {
	n := t.tailLenLocked()
	if n == 0 || n < threshold {
		return
	}
	for _, c := range t.cols {
		run := sealRun(c.tail)
		// Append into a fresh slice so a pinned version's captured chain
		// header never observes in-place growth.
		chain := make([]*deltaRun, 0, len(c.sealed)+1)
		chain = append(chain, c.sealed...)
		c.sealed = append(chain, run)
		c.tail = newDeltaStore()
	}
}

// Row is one inserted row: column name to value. Values of encrypted columns
// are PAE ciphertexts under the column key (produced by the proxy); values
// of plain columns are plaintext.
type Row map[string][]byte

// prepareRow validates a row and produces the payloads to store: encrypted
// values are re-encrypted inside the enclave with a fresh IV so the stored
// ciphertext cannot be linked to the insert message (paper §4.3); plain
// values are length-checked and defensively copied. No table state is read
// or written, so preparation runs outside the table lock — write critical
// sections stay brief.
func (db *DB) prepareRow(t *table, row Row) (map[string][]byte, error) {
	payloads := make(map[string][]byte, len(t.cols))
	for name, c := range t.cols {
		v, ok := row[name]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrMissingColumn, name)
		}
		if c.def.Plain {
			if len(v) > c.def.MaxLen {
				return nil, fmt.Errorf("engine: value for %q exceeds max length %d", name, c.def.MaxLen)
			}
			payloads[name] = append([]byte(nil), v...)
			continue
		}
		fresh, err := db.encl.ReencryptValue(db.columnMeta(c), v)
		if err != nil {
			return nil, fmt.Errorf("engine: insert %q: %w", name, err)
		}
		payloads[name] = fresh
	}
	return payloads, nil
}

// commitRowsLocked appends fully prepared rows to the tail and installs the
// grown copy-on-write validity bitmap. It cannot fail — preparation already
// validated everything — which is what makes multi-row writes atomic. The
// caller holds the table write lock.
func (db *DB) commitRowsLocked(t *table, payloads []map[string][]byte) {
	for _, p := range payloads {
		for name, c := range t.cols {
			c.tail.append(p[name])
		}
	}
	n := t.mainRows + t.deltaRows
	valid := t.valid.Clone()
	valid.Grow(n + len(payloads))
	for i := range payloads {
		valid.Add(uint32(n + i))
	}
	t.deltaRows += len(payloads)
	t.valid = valid
	t.sealTailLocked(db.opts.sealRows)
}

// Insert appends a row to the table's delta stores. Only this table is
// write-locked, and only for the bitmap update and tail append — enclave
// re-encryption happens before the lock — so traffic on other tables and
// concurrent reads of this one proceed.
func (db *DB) Insert(ctx context.Context, tableName string, row Row) error {
	if err := ctxErr(ctx); err != nil {
		return err
	}
	t, err := db.lookup(tableName)
	if err != nil {
		return err
	}
	if err := t.readyCheck(); err != nil {
		return err
	}
	payloads, err := db.prepareRow(t, row)
	if err != nil {
		return err
	}
	return db.commitInsert(tableName, t, []map[string][]byte{payloads})
}

// commitInsert is the shared tail of Insert and InsertBatch: under the
// commit log's append gate and the table write lock, it logs one write
// record carrying the prepared payloads, applies it in memory, and — after
// releasing both — awaits log durability before acknowledging.
func (db *DB) commitInsert(tableName string, t *table, payloads []map[string][]byte) error {
	end := db.gateWrite(tableName)
	t.mu.Lock()
	if err := t.ready(); err != nil {
		t.mu.Unlock()
		end()
		return err
	}
	commit, err := db.logWriteLocked(t, tableName, nil, payloads)
	if err != nil {
		t.mu.Unlock()
		end()
		return err
	}
	db.commitRowsLocked(t, payloads)
	t.mu.Unlock()
	end()
	if commit != nil {
		if err := commit(); err != nil {
			return err
		}
	}
	db.maybeAutoMerge(tableName, t)
	return nil
}

// InsertBatch appends rows under a single table write-lock acquisition —
// the provider-side half of the proxy's bulk-load fast path. The batch is
// all-or-nothing: every row is validated and re-encrypted before any table
// state changes, so a bad row leaves the table untouched.
func (db *DB) InsertBatch(ctx context.Context, tableName string, rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	if err := ctxErr(ctx); err != nil {
		return err
	}
	t, err := db.lookup(tableName)
	if err != nil {
		return err
	}
	if err := t.readyCheck(); err != nil {
		return err
	}
	payloads := make([]map[string][]byte, len(rows))
	for i, row := range rows {
		if payloads[i], err = db.prepareRow(t, row); err != nil {
			return fmt.Errorf("engine: batch row %d: %w", i, err)
		}
	}
	return db.commitInsert(tableName, t, payloads)
}

// Delete invalidates all rows matching the filters and returns how many rows
// it removed. Deletions are realized as validity-bit updates (paper §4.3):
// one word-parallel AndNot into a fresh copy-on-write bitmap. Match and
// invalidation happen atomically under the table write lock so a concurrent
// merge swap cannot remap RecordIDs in between.
func (db *DB) Delete(ctx context.Context, tableName string, filters []Filter) (int, error) {
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	t, err := db.lookup(tableName)
	if err != nil {
		return 0, err
	}
	end := db.gateWrite(tableName)
	t.mu.Lock()
	if err := t.ready(); err != nil {
		t.mu.Unlock()
		end()
		return 0, err
	}
	match, err := db.matchValidLocked(ctx, t, filters)
	if err != nil {
		t.mu.Unlock()
		end()
		return 0, err
	}
	removed := match.Len()
	var rids []uint32
	if db.cl != nil {
		rids = match.Slice()
	}
	commit, err := db.logWriteLocked(t, tableName, rids, nil)
	if err != nil {
		t.mu.Unlock()
		end()
		return 0, err
	}
	valid := t.valid.Clone()
	valid.AndNot(match)
	t.valid = valid
	t.mu.Unlock()
	end()
	if commit != nil {
		if err := commit(); err != nil {
			return 0, err
		}
	}
	return removed, nil
}

// Update rewrites all rows matching the filters: the old row is invalidated
// and a new row — the old cells with the set values substituted — is
// appended to the delta store. Match, render, invalidate and append happen
// atomically under the table write lock, and the whole statement is
// all-or-nothing: every replacement row is validated and re-encrypted
// before any state changes. Returns the number of updated rows.
func (db *DB) Update(ctx context.Context, tableName string, filters []Filter, set Row) (int, error) {
	if err := ctxErr(ctx); err != nil {
		return 0, err
	}
	t, err := db.lookup(tableName)
	if err != nil {
		return 0, err
	}
	end := db.gateWrite(tableName)
	t.mu.Lock()
	if err := t.ready(); err != nil {
		t.mu.Unlock()
		end()
		return 0, err
	}
	match, err := db.matchValidLocked(ctx, t, filters)
	if err != nil {
		t.mu.Unlock()
		end()
		return 0, err
	}
	rids := match.Slice()
	if len(rids) == 0 {
		t.mu.Unlock()
		end()
		return 0, nil
	}
	// Render the full matching rows (all columns) before invalidating.
	v := t.versionLocked()
	rows := make([]Row, len(rids))
	for i := range rows {
		rows[i] = make(Row, len(t.cols))
	}
	for name, cv := range v.cols {
		cells := v.render(cv, rids)
		for i, cell := range cells {
			rows[i][name] = append([]byte(nil), cell...)
		}
	}
	for _, row := range rows {
		for name, val := range set {
			// Copy defensively: set aliases caller buffers, and the row
			// maps outlive this statement inside prepareRow's plain path.
			row[name] = append([]byte(nil), val...)
		}
	}
	payloads := make([]map[string][]byte, len(rows))
	for i, row := range rows {
		if payloads[i], err = db.prepareRow(t, row); err != nil {
			t.mu.Unlock()
			end()
			return 0, err
		}
	}
	// One record carries both halves of the statement, so replay applies
	// the invalidations and the replacement rows atomically.
	commit, err := db.logWriteLocked(t, tableName, rids, payloads)
	if err != nil {
		t.mu.Unlock()
		end()
		return 0, err
	}
	valid := t.valid.Clone()
	valid.AndNot(match)
	t.valid = valid
	db.commitRowsLocked(t, payloads)
	t.mu.Unlock()
	end()
	if commit != nil {
		if err := commit(); err != nil {
			return 0, err
		}
	}
	db.maybeAutoMerge(tableName, t)
	return len(rids), nil
}

// matchValidLocked evaluates filters and applies validity; the caller holds
// at least the table's read lock.
func (db *DB) matchValidLocked(ctx context.Context, t *table, filters []Filter) (*ridset.Set, error) {
	return db.matchValid(ctx, t.versionLocked(), filters, 0)
}

// newBuildRand seeds a math/rand generator from crypto randomness for the
// security-relevant shuffles and rotations of plain rebuilds. A failure of
// the system randomness source is propagated — degrading to a fixed seed
// would make the shuffle predictable.
func newBuildRand() (*mrand.Rand, error) {
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err != nil {
		return nil, fmt.Errorf("engine: seeding build shuffle: %w", err)
	}
	return mrand.New(mrand.NewSource(int64(binary.LittleEndian.Uint64(seed[:])))), nil
}
