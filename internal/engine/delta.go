package engine

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	mrand "math/rand"

	"github.com/encdbdb/encdbdb/internal/av"
	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/ridset"
)

// deltaStore is the write-optimized store of paper §4.3: an append-only ED9
// dictionary (one entry per inserted row, unsorted by arrival, frequency
// hiding by construction) with an identity attribute vector. Inserting into
// it leaks neither order nor frequency.
type deltaStore struct {
	entries [][]byte
	avCache []uint32
	bytes   int
}

func newDeltaStore() *deltaStore {
	return &deltaStore{}
}

// Len returns the number of delta rows (implements search.Region).
func (d *deltaStore) Len() int { return len(d.entries) }

// Load returns delta entry i (implements search.Region).
func (d *deltaStore) Load(i int) []byte { return d.entries[i] }

// entry is Load under the rendering path's name.
func (d *deltaStore) entry(i int) []byte { return d.entries[i] }

// append adds one re-encrypted value.
func (d *deltaStore) append(payload []byte) {
	d.entries = append(d.entries, payload)
	d.avCache = append(d.avCache, uint32(len(d.avCache)))
	d.bytes += len(payload)
}

// av returns the identity attribute vector (AV[i] = i for ED9 appends).
func (d *deltaStore) av() []uint32 { return d.avCache }

// sizeBytes returns the storage footprint of the delta store.
func (d *deltaStore) sizeBytes() int { return d.bytes + 4*len(d.avCache) }

// reset clears the delta store after a merge.
func (d *deltaStore) reset() {
	d.entries = nil
	d.avCache = nil
	d.bytes = 0
}

// Row is one inserted row: column name to value. Values of encrypted columns
// are PAE ciphertexts under the column key (produced by the proxy); values
// of plain columns are plaintext.
type Row map[string][]byte

// Insert appends a row to the table's delta stores. Each encrypted value is
// re-encrypted inside the enclave with a fresh IV before being stored, so
// the stored ciphertext cannot be linked to the insert message (paper §4.3).
// Only this table is write-locked; traffic on other tables proceeds.
func (db *DB) Insert(tableName string, row Row) error {
	t, err := db.lookup(tableName)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return db.insertLocked(t, row)
}

// InsertBatch appends rows under a single table write-lock acquisition —
// the provider-side half of the proxy's bulk-load fast path (one lock
// round trip and one validity-bitmap growth cadence instead of per-row
// acquisitions). Rows apply in order; on error, rows preceding the failing
// one remain inserted.
func (db *DB) InsertBatch(tableName string, rows []Row) error {
	if len(rows) == 0 {
		return nil
	}
	t, err := db.lookup(tableName)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, row := range rows {
		if err := db.insertLocked(t, row); err != nil {
			return fmt.Errorf("engine: batch row %d: %w", i, err)
		}
	}
	return nil
}

// insertLocked appends one row; the caller holds the table's write lock.
func (db *DB) insertLocked(t *table, row Row) error {
	if err := t.ready(); err != nil {
		return err
	}
	// Validate the row is complete before mutating anything.
	payloads := make(map[string][]byte, len(t.cols))
	for name, c := range t.cols {
		v, ok := row[name]
		if !ok {
			return fmt.Errorf("%w: %q", ErrMissingColumn, name)
		}
		if c.def.Plain {
			if len(v) > c.def.MaxLen {
				return fmt.Errorf("engine: value for %q exceeds max length %d", name, c.def.MaxLen)
			}
			payloads[name] = append([]byte(nil), v...)
			continue
		}
		fresh, err := db.encl.ReencryptValue(db.columnMeta(c), v)
		if err != nil {
			return fmt.Errorf("engine: insert %q: %w", name, err)
		}
		payloads[name] = fresh
	}
	for name, c := range t.cols {
		c.delta.append(payloads[name])
	}
	t.deltaRows++
	n := t.mainRows + t.deltaRows
	t.valid.Grow(n)
	t.valid.Add(uint32(n - 1))
	return nil
}

// Delete invalidates all rows matching the filters and returns how many rows
// it removed. Deletions are realized as validity-bit updates (paper §4.3):
// one word-parallel AndNot of the match bitmap. Match and invalidation
// happen atomically under the table write lock so a concurrent merge cannot
// remap RecordIDs in between.
func (db *DB) Delete(tableName string, filters []Filter) (int, error) {
	t, err := db.lookup(tableName)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.ready(); err != nil {
		return 0, err
	}
	match, err := db.matchValidLocked(t, filters)
	if err != nil {
		return 0, err
	}
	removed := match.Len()
	t.valid.AndNot(match)
	return removed, nil
}

// Update rewrites all rows matching the filters: the old row is invalidated
// and a new row — the old cells with the set values substituted — is
// appended to the delta store. Match, render, invalidate and append happen
// atomically under the table write lock. Returns the number of updated rows.
func (db *DB) Update(tableName string, filters []Filter, set Row) (int, error) {
	t, err := db.lookup(tableName)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.ready(); err != nil {
		return 0, err
	}
	match, err := db.matchValidLocked(t, filters)
	if err != nil {
		return 0, err
	}
	rids := match.Slice()
	if len(rids) == 0 {
		return 0, nil
	}
	// Render the full matching rows (all columns) before invalidating.
	rows := make([]Row, len(rids))
	for i := range rows {
		rows[i] = make(Row, len(t.cols))
	}
	for name, c := range t.cols {
		cells := t.render(c, rids)
		for i, cell := range cells {
			rows[i][name] = append([]byte(nil), cell...)
		}
	}
	t.valid.AndNot(match)
	for _, row := range rows {
		for name, v := range set {
			row[name] = v
		}
		if err := db.insertLocked(t, row); err != nil {
			return 0, err
		}
	}
	return len(rids), nil
}

// matchValidLocked evaluates filters and applies validity; the caller holds
// at least the table's read lock.
func (db *DB) matchValidLocked(t *table, filters []Filter) (*ridset.Set, error) {
	match, err := db.matchRows(t, filters)
	if err != nil {
		return nil, err
	}
	match.IntersectWith(t.valid)
	return match, nil
}

// Merge folds each column's delta store into its main store (paper §4.3):
// inside the enclave, the valid rows of both stores are reconstructed,
// re-encrypted under fresh IVs, and rebuilt under the column's encrypted
// dictionary with a fresh rotation/shuffle, so the new main store carries no
// linkable relation to the old stores. Invalidated rows are garbage
// collected. Plain columns are rebuilt locally with the same algorithms.
// Only this table is locked for the duration; a long enclave rebuild stalls
// no other table.
func (db *DB) Merge(tableName string) error {
	t, err := db.lookup(tableName)
	if err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.ready(); err != nil {
		return err
	}
	mainValid := t.validBools(0, t.mainRows)
	deltaValid := t.validBools(t.mainRows, t.deltaRows)
	merged := make(map[string]*dict.Split, len(t.cols))
	var newRows int
	for name, c := range t.cols {
		var (
			s   *dict.Split
			err error
		)
		if c.def.Plain {
			s, err = mergePlain(t, c, mainValid, deltaValid)
		} else {
			s, err = db.encl.MergeColumns(db.columnMeta(c), c.def.BSMax,
				enclave.MergeInput{Region: c.main, AV: c.main.Packed(), Valid: mainValid},
				enclave.MergeInput{Region: c.delta, AV: av.Ints(c.delta.av()), Valid: deltaValid},
			)
		}
		if err != nil {
			return fmt.Errorf("engine: merge %q.%q: %w", tableName, name, err)
		}
		merged[name] = s
		newRows = s.Rows()
	}
	for name, c := range t.cols {
		c.main = merged[name]
		c.imported = c.imported || newRows > 0
		c.delta.reset()
	}
	t.mainRows = newRows
	t.deltaRows = 0
	t.valid = ridset.Full(newRows)
	return nil
}

// mergePlain rebuilds a plain column locally from its valid rows.
func mergePlain(t *table, c *column, mainValid, deltaValid []bool) (*dict.Split, error) {
	var col [][]byte
	mainAV := c.main.AVCodes()
	for j := 0; j < t.mainRows; j++ {
		if mainValid[j] {
			col = append(col, c.main.Entry(int(mainAV[j])))
		}
	}
	for j := 0; j < t.deltaRows; j++ {
		if deltaValid[j] {
			col = append(col, c.delta.entry(j))
		}
	}
	return dict.Build(col, dict.Params{
		Kind:   c.def.Kind,
		MaxLen: c.def.MaxLen,
		BSMax:  c.def.BSMax,
		Plain:  true,
		Rand:   newBuildRand(),
	})
}

// newBuildRand seeds a math/rand generator from crypto randomness for the
// security-relevant shuffles and rotations of plain rebuilds.
func newBuildRand() *mrand.Rand {
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// fixed seed rather than aborting a merge.
		return mrand.New(mrand.NewSource(1))
	}
	return mrand.New(mrand.NewSource(int64(binary.LittleEndian.Uint64(seed[:]))))
}
