package engine_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/pae"
	"github.com/encdbdb/encdbdb/internal/search"
)

// env wires a provisioned enclave, a database, and owner-side key material —
// everything the trusted side (data owner + proxy) would hold.
type env struct {
	db     *engine.DB
	master pae.Key
}

func newEnv(t testing.TB) *env {
	t.Helper()
	return newEnvWith(t)
}

func newEnvWith(t testing.TB, opts ...engine.Option) *env {
	t.Helper()
	p, err := enclave.NewPlatform()
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	e, err := p.Launch(enclave.Config{Identity: "engine-test"})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	master := pae.MustGen()
	q := e.Quote([]byte("n"))
	sealed, err := enclave.SealKey(q, master)
	if err != nil {
		t.Fatalf("SealKey: %v", err)
	}
	if err := e.Provision(sealed); err != nil {
		t.Fatalf("Provision: %v", err)
	}
	return &env{db: engine.New(e, opts...), master: master}
}

func (v *env) cipher(t testing.TB, table, column string) *pae.Cipher {
	t.Helper()
	key, err := pae.Derive(v.master, table, column)
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	c, err := pae.NewCipher(key)
	if err != nil {
		t.Fatalf("NewCipher: %v", err)
	}
	return c
}

// loadColumn builds and imports a column as the data owner would.
func (v *env) loadColumn(t testing.TB, table string, def engine.ColumnDef, col [][]byte) {
	t.Helper()
	p := dict.Params{
		Kind:   def.Kind,
		MaxLen: def.MaxLen,
		BSMax:  def.BSMax,
		Plain:  def.Plain,
		Rand:   rand.New(rand.NewSource(123)),
	}
	if !def.Plain {
		p.Cipher = v.cipher(t, table, def.Name)
	}
	s, err := dict.Build(col, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if err := v.db.ImportColumn(table, def.Name, s); err != nil {
		t.Fatalf("ImportColumn: %v", err)
	}
}

// filter builds an encrypted (or plain) filter like the proxy would.
func (v *env) filter(t testing.TB, table string, def engine.ColumnDef, q search.Range) engine.Filter {
	t.Helper()
	if def.Plain {
		return engine.SingleRange(def.Name, enclave.EncRange{
			Start: q.Start, End: q.End, StartIncl: q.StartIncl, EndIncl: q.EndIncl,
		})
	}
	c := v.cipher(t, table, def.Name)
	s, err := c.Encrypt(q.Start)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	e, err := c.Encrypt(q.End)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	return engine.SingleRange(def.Name, enclave.EncRange{
		Start: s, End: e, StartIncl: q.StartIncl, EndIncl: q.EndIncl,
	})
}

// decryptCells decrypts a result column.
func (v *env) decryptCells(t testing.TB, rc engine.ResultColumn, plain bool) []string {
	t.Helper()
	out := make([]string, len(rc.Cells))
	if plain {
		for i, cell := range rc.Cells {
			out[i] = string(cell)
		}
		return out
	}
	c := v.cipher(t, rc.Table, rc.Column)
	for i, cell := range rc.Cells {
		pt, err := c.Decrypt(cell)
		if err != nil {
			t.Fatalf("decrypt cell %d: %v", i, err)
		}
		out[i] = string(pt)
	}
	return out
}

func bcol(vals ...string) [][]byte {
	out := make([][]byte, len(vals))
	for i, v := range vals {
		out[i] = []byte(v)
	}
	return out
}

// fnameDef/cityDef form the standard two-column test table.
func fnameDef(kind dict.Kind) engine.ColumnDef {
	return engine.ColumnDef{Name: "fname", Kind: kind, MaxLen: 16, BSMax: 3}
}

func cityDef(kind dict.Kind) engine.ColumnDef {
	return engine.ColumnDef{Name: "city", Kind: kind, MaxLen: 16, BSMax: 3}
}

func (v *env) standardTable(t testing.TB, fnameKind, cityKind dict.Kind) (fname, city engine.ColumnDef) {
	t.Helper()
	fname, city = fnameDef(fnameKind), cityDef(cityKind)
	schema := engine.Schema{Table: "t1", Columns: []engine.ColumnDef{fname, city}}
	if err := v.db.CreateTable(schema); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	v.loadColumn(t, "t1", fname, bcol("Hans", "Jessica", "Archie", "Ella", "Jessica", "Jessica"))
	v.loadColumn(t, "t1", city, bcol("Berlin", "Waterloo", "Karlsruhe", "Berlin", "Berlin", "Karlsruhe"))
	return fname, city
}

func TestSelectSingleFilterAllKinds(t *testing.T) {
	for _, k := range []dict.Kind{dict.ED1, dict.ED2, dict.ED3, dict.ED4, dict.ED5, dict.ED6, dict.ED7, dict.ED8, dict.ED9} {
		t.Run(k.String(), func(t *testing.T) {
			v := newEnv(t)
			fname, _ := v.standardTable(t, k, dict.ED1)
			res, err := v.db.Select(context.Background(), engine.Query{
				Table:   "t1",
				Filters: []engine.Filter{v.filter(t, "t1", fname, search.Closed([]byte("Archie"), []byte("Hans")))},
				Project: []string{"fname"},
			})
			if err != nil {
				t.Fatalf("Select: %v", err)
			}
			got := v.decryptCells(t, res.Columns[0], false)
			want := []string{"Hans", "Archie", "Ella"}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("cells = %v, want %v", got, want)
			}
		})
	}
}

func TestSelectConjunction(t *testing.T) {
	v := newEnv(t)
	fname, city := v.standardTable(t, dict.ED5, dict.ED2)
	// fname == Jessica AND city == Berlin -> rows 1,4 have Jessica; of
	// those, city Berlin only at row 4.
	res, err := v.db.Select(context.Background(), engine.Query{
		Table: "t1",
		Filters: []engine.Filter{
			v.filter(t, "t1", fname, search.Eq([]byte("Jessica"))),
			v.filter(t, "t1", city, search.Eq([]byte("Berlin"))),
		},
		Project: []string{"city"},
	})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if res.Count != 1 || res.RecordIDs[0] != 4 {
		t.Fatalf("RecordIDs = %v, want [4]", res.RecordIDs)
	}
	got := v.decryptCells(t, res.Columns[0], false)
	if len(got) != 1 || got[0] != "Berlin" {
		t.Errorf("cells = %v, want [Berlin]", got)
	}
}

func TestSelectProjectionPrefiltersOtherColumn(t *testing.T) {
	// Filter on one column, project another (paper step 12: rid prefilters
	// other columns of the same table).
	v := newEnv(t)
	fname, _ := v.standardTable(t, dict.ED1, dict.ED9)
	res, err := v.db.Select(context.Background(), engine.Query{
		Table:   "t1",
		Filters: []engine.Filter{v.filter(t, "t1", fname, search.Eq([]byte("Jessica")))},
		Project: []string{"city"},
	})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	got := v.decryptCells(t, res.Columns[0], false)
	want := []string{"Waterloo", "Berlin", "Karlsruhe"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("cells = %v, want %v", got, want)
	}
}

func TestSelectNoFiltersReturnsAll(t *testing.T) {
	v := newEnv(t)
	v.standardTable(t, dict.ED1, dict.ED1)
	res, err := v.db.Select(context.Background(), engine.Query{Table: "t1"})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if res.Count != 6 {
		t.Errorf("Count = %d, want 6", res.Count)
	}
	if len(res.Columns) != 2 {
		t.Errorf("projected %d columns, want 2 (all)", len(res.Columns))
	}
}

func TestSelectCountOnly(t *testing.T) {
	v := newEnv(t)
	fname, _ := v.standardTable(t, dict.ED4, dict.ED1)
	res, err := v.db.Select(context.Background(), engine.Query{
		Table:     "t1",
		Filters:   []engine.Filter{v.filter(t, "t1", fname, search.Eq([]byte("Jessica")))},
		CountOnly: true,
	})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if res.Count != 3 || len(res.Columns) != 0 {
		t.Errorf("Count = %d Columns = %d, want 3 and none", res.Count, len(res.Columns))
	}
}

func TestSelectPlainColumns(t *testing.T) {
	for _, k := range []dict.Kind{dict.ED1, dict.ED2, dict.ED3, dict.ED5, dict.ED8, dict.ED9} {
		t.Run(k.String(), func(t *testing.T) {
			v := newEnv(t)
			def := engine.ColumnDef{Name: "c", Kind: k, MaxLen: 16, BSMax: 3, Plain: true}
			schema := engine.Schema{Table: "p", Columns: []engine.ColumnDef{def}}
			if err := v.db.CreateTable(schema); err != nil {
				t.Fatalf("CreateTable: %v", err)
			}
			v.loadColumn(t, "p", def, bcol("b", "d", "a", "c", "b"))
			res, err := v.db.Select(context.Background(), engine.Query{
				Table:   "p",
				Filters: []engine.Filter{v.filter(t, "p", def, search.Closed([]byte("b"), []byte("c")))},
			})
			if err != nil {
				t.Fatalf("Select: %v", err)
			}
			got := v.decryptCells(t, res.Columns[0], true)
			want := []string{"b", "c", "b"}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("cells = %v, want %v", got, want)
			}
		})
	}
}

func TestSelectMixedKindsInOneTable(t *testing.T) {
	// The paper: "EncDBDB is able to process all dictionary types together,
	// even if they are mixed in one table."
	v := newEnv(t)
	defs := []engine.ColumnDef{
		{Name: "a", Kind: dict.ED1, MaxLen: 8},
		{Name: "b", Kind: dict.ED5, MaxLen: 8, BSMax: 2},
		{Name: "c", Kind: dict.ED9, MaxLen: 8},
		{Name: "d", Kind: dict.ED3, MaxLen: 8, Plain: true},
	}
	if err := v.db.CreateTable(engine.Schema{Table: "mix", Columns: defs}); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	col := bcol("x", "y", "x", "z")
	for _, def := range defs {
		v.loadColumn(t, "mix", def, col)
	}
	for _, def := range defs {
		res, err := v.db.Select(context.Background(), engine.Query{
			Table:   "mix",
			Filters: []engine.Filter{v.filter(t, "mix", def, search.Eq([]byte("x")))},
			Project: []string{def.Name},
		})
		if err != nil {
			t.Fatalf("Select on %q: %v", def.Name, err)
		}
		if res.Count != 2 {
			t.Errorf("column %q: count = %d, want 2", def.Name, res.Count)
		}
	}
}

func TestSelectErrors(t *testing.T) {
	v := newEnv(t)
	fname, _ := v.standardTable(t, dict.ED1, dict.ED1)

	if _, err := v.db.Select(context.Background(), engine.Query{Table: "nope"}); !errors.Is(err, engine.ErrNoSuchTable) {
		t.Errorf("unknown table: err = %v", err)
	}
	if _, err := v.db.Select(context.Background(), engine.Query{
		Table:   "t1",
		Filters: []engine.Filter{{Column: "nope"}},
	}); !errors.Is(err, engine.ErrNoSuchColumn) {
		t.Errorf("unknown filter column: err = %v", err)
	}
	if _, err := v.db.Select(context.Background(), engine.Query{
		Table:   "t1",
		Filters: []engine.Filter{v.filter(t, "t1", fname, search.Eq([]byte("x")))},
		Project: []string{"nope"},
	}); !errors.Is(err, engine.ErrNoSuchColumn) {
		t.Errorf("unknown projection: err = %v", err)
	}
}

func TestCreateTableValidation(t *testing.T) {
	v := newEnv(t)
	tests := []struct {
		name   string
		schema engine.Schema
	}{
		{name: "empty table name", schema: engine.Schema{Columns: []engine.ColumnDef{fnameDef(dict.ED1)}}},
		{name: "no columns", schema: engine.Schema{Table: "x"}},
		{name: "bad kind", schema: engine.Schema{Table: "x", Columns: []engine.ColumnDef{{Name: "c", MaxLen: 4}}}},
		{name: "no maxlen", schema: engine.Schema{Table: "x", Columns: []engine.ColumnDef{{Name: "c", Kind: dict.ED1}}}},
		{name: "smoothing without bsmax", schema: engine.Schema{Table: "x", Columns: []engine.ColumnDef{{Name: "c", Kind: dict.ED4, MaxLen: 4}}}},
		{name: "duplicate columns", schema: engine.Schema{Table: "x", Columns: []engine.ColumnDef{fnameDef(dict.ED1), fnameDef(dict.ED1)}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := v.db.CreateTable(tt.schema); err == nil {
				t.Error("CreateTable accepted an invalid schema")
			}
		})
	}
	if err := v.db.CreateTable(engine.Schema{Table: "ok", Columns: []engine.ColumnDef{fnameDef(dict.ED1)}}); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	if err := v.db.CreateTable(engine.Schema{Table: "ok", Columns: []engine.ColumnDef{fnameDef(dict.ED1)}}); !errors.Is(err, engine.ErrTableExists) {
		t.Errorf("duplicate table: err = %v", err)
	}
}

func TestImportColumnRowMismatch(t *testing.T) {
	v := newEnv(t)
	a := engine.ColumnDef{Name: "a", Kind: dict.ED1, MaxLen: 8}
	b := engine.ColumnDef{Name: "b", Kind: dict.ED1, MaxLen: 8}
	if err := v.db.CreateTable(engine.Schema{Table: "t", Columns: []engine.ColumnDef{a, b}}); err != nil {
		t.Fatal(err)
	}
	v.loadColumn(t, "t", a, bcol("x", "y"))
	s, err := dict.Build(bcol("z"), dict.Params{
		Kind: dict.ED1, MaxLen: 8, Cipher: v.cipher(t, "t", "b"),
		Rand: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.db.ImportColumn("t", "b", s); !errors.Is(err, engine.ErrRowMismatch) {
		t.Errorf("err = %v, want ErrRowMismatch", err)
	}
}

func TestImportColumnKindMismatch(t *testing.T) {
	v := newEnv(t)
	a := engine.ColumnDef{Name: "a", Kind: dict.ED1, MaxLen: 8}
	if err := v.db.CreateTable(engine.Schema{Table: "t", Columns: []engine.ColumnDef{a}}); err != nil {
		t.Fatal(err)
	}
	s, err := dict.Build(bcol("x"), dict.Params{
		Kind: dict.ED3, MaxLen: 8, Cipher: v.cipher(t, "t", "a"),
		Rand: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.db.ImportColumn("t", "a", s); err == nil {
		t.Error("kind mismatch accepted")
	}
}

func TestSelectPartiallyImportedTableFails(t *testing.T) {
	// A table with no bulk-imported columns is queryable (pure delta mode),
	// but importing only some columns leaves it inconsistent.
	v := newEnv(t)
	a := engine.ColumnDef{Name: "a", Kind: dict.ED1, MaxLen: 8}
	b := engine.ColumnDef{Name: "b", Kind: dict.ED1, MaxLen: 8}
	if err := v.db.CreateTable(engine.Schema{Table: "t", Columns: []engine.ColumnDef{a, b}}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.db.Select(context.Background(), engine.Query{Table: "t", CountOnly: true}); err != nil {
		t.Errorf("empty table not queryable: %v", err)
	}
	v.loadColumn(t, "t", a, bcol("x", "y"))
	if _, err := v.db.Select(context.Background(), engine.Query{Table: "t"}); !errors.Is(err, engine.ErrNotImported) {
		t.Errorf("err = %v, want ErrNotImported", err)
	}
	v.loadColumn(t, "t", b, bcol("p", "q"))
	if _, err := v.db.Select(context.Background(), engine.Query{Table: "t"}); err != nil {
		t.Errorf("fully imported table not queryable: %v", err)
	}
}

func TestImportAfterInsertFails(t *testing.T) {
	v := newEnv(t)
	a := engine.ColumnDef{Name: "a", Kind: dict.ED1, MaxLen: 8}
	if err := v.db.CreateTable(engine.Schema{Table: "t", Columns: []engine.ColumnDef{a}}); err != nil {
		t.Fatal(err)
	}
	if err := v.db.Insert(context.Background(), "t", engine.Row{"a": v.encryptValue(t, "t", "a", "x")}); err != nil {
		t.Fatal(err)
	}
	s, err := dict.Build(bcol("z"), dict.Params{
		Kind: dict.ED1, MaxLen: 8, Cipher: v.cipher(t, "t", "a"),
		Rand: rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.db.ImportColumn("t", "a", s); err == nil {
		t.Error("bulk import after insert accepted")
	}
}

func TestInsertAndQueryDelta(t *testing.T) {
	v := newEnv(t)
	fname, city := v.standardTable(t, dict.ED5, dict.ED1)
	row := engine.Row{
		"fname": v.encryptValue(t, "t1", "fname", "Jessica"),
		"city":  v.encryptValue(t, "t1", "city", "Toronto"),
	}
	if err := v.db.Insert(context.Background(), "t1", row); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	res, err := v.db.Select(context.Background(), engine.Query{
		Table:   "t1",
		Filters: []engine.Filter{v.filter(t, "t1", fname, search.Eq([]byte("Jessica")))},
		Project: []string{"city"},
	})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	got := v.decryptCells(t, res.Columns[0], false)
	want := []string{"Waterloo", "Berlin", "Karlsruhe", "Toronto"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("cells = %v, want %v", got, want)
	}
	_ = city
}

func (v *env) encryptValue(t testing.TB, table, column, value string) []byte {
	t.Helper()
	ct, err := v.cipher(t, table, column).Encrypt([]byte(value))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	return ct
}

func TestInsertBatch(t *testing.T) {
	v := newEnv(t)
	fname, _ := v.standardTable(t, dict.ED5, dict.ED1)
	rows := make([]engine.Row, 10)
	for i := range rows {
		rows[i] = engine.Row{
			"fname": v.encryptValue(t, "t1", "fname", "Batch"),
			"city":  v.encryptValue(t, "t1", "city", fmt.Sprintf("City%d", i)),
		}
	}
	if err := v.db.InsertBatch(context.Background(), "t1", rows); err != nil {
		t.Fatalf("InsertBatch: %v", err)
	}
	res, err := v.db.Select(context.Background(), engine.Query{
		Table:     "t1",
		Filters:   []engine.Filter{v.filter(t, "t1", fname, search.Eq([]byte("Batch")))},
		CountOnly: true,
	})
	if err != nil || res.Count != 10 {
		t.Fatalf("count = %v, %v; want 10", res, err)
	}
	if err := v.db.InsertBatch(context.Background(), "t1", nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := v.db.InsertBatch(context.Background(), "missing", rows); err == nil {
		t.Error("batch into missing table accepted")
	}
	// A bad row anywhere aborts the whole batch: every row is validated
	// and re-encrypted before any table state changes (all-or-nothing).
	bad := []engine.Row{
		{"fname": v.encryptValue(t, "t1", "fname", "B2"), "city": v.encryptValue(t, "t1", "city", "C")},
		{"fname": v.encryptValue(t, "t1", "fname", "B2")}, // missing city
	}
	before, _ := v.db.Rows("t1")
	if err := v.db.InsertBatch(context.Background(), "t1", bad); !errors.Is(err, engine.ErrMissingColumn) {
		t.Errorf("err = %v, want ErrMissingColumn", err)
	}
	if after, _ := v.db.Rows("t1"); after != before {
		t.Errorf("rows = %d, want %d (failed batch must leave the table untouched)", after, before)
	}
	res, err = v.db.Select(context.Background(), engine.Query{
		Table:     "t1",
		Filters:   []engine.Filter{v.filter(t, "t1", fname, search.Eq([]byte("B2")))},
		CountOnly: true,
	})
	if err != nil || res.Count != 0 {
		t.Errorf("count = %v, %v; want 0 (no partial batch visible)", res, err)
	}
}

func TestInsertMissingColumn(t *testing.T) {
	v := newEnv(t)
	v.standardTable(t, dict.ED1, dict.ED1)
	err := v.db.Insert(context.Background(), "t1", engine.Row{"fname": v.encryptValue(t, "t1", "fname", "X")})
	if !errors.Is(err, engine.ErrMissingColumn) {
		t.Errorf("err = %v, want ErrMissingColumn", err)
	}
	if n, _ := v.db.Rows("t1"); n != 6 {
		t.Errorf("failed insert changed row count to %d", n)
	}
}

func TestDeleteHidesRows(t *testing.T) {
	v := newEnv(t)
	fname, _ := v.standardTable(t, dict.ED1, dict.ED1)
	n, err := v.db.Delete(context.Background(), "t1", []engine.Filter{v.filter(t, "t1", fname, search.Eq([]byte("Jessica")))})
	if err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if n != 3 {
		t.Errorf("deleted %d rows, want 3", n)
	}
	res, err := v.db.Select(context.Background(), engine.Query{Table: "t1", CountOnly: true})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	if res.Count != 3 {
		t.Errorf("remaining rows = %d, want 3", res.Count)
	}
}

func TestUpdateRewritesRows(t *testing.T) {
	v := newEnv(t)
	fname, city := v.standardTable(t, dict.ED5, dict.ED1)
	n, err := v.db.Update(context.Background(), "t1",
		[]engine.Filter{v.filter(t, "t1", fname, search.Eq([]byte("Hans")))},
		engine.Row{"city": v.encryptValue(t, "t1", "city", "Potsdam")},
	)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if n != 1 {
		t.Fatalf("updated %d rows, want 1", n)
	}
	res, err := v.db.Select(context.Background(), engine.Query{
		Table:   "t1",
		Filters: []engine.Filter{v.filter(t, "t1", fname, search.Eq([]byte("Hans")))},
		Project: []string{"city"},
	})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	got := v.decryptCells(t, res.Columns[0], false)
	if len(got) != 1 || got[0] != "Potsdam" {
		t.Errorf("city after update = %v, want [Potsdam]", got)
	}
	_ = city
}

func TestMergeFoldsDeltaAndGarbageCollects(t *testing.T) {
	v := newEnv(t)
	fname, _ := v.standardTable(t, dict.ED5, dict.ED2)
	// Delete one row, insert two.
	if _, err := v.db.Delete(context.Background(), "t1", []engine.Filter{v.filter(t, "t1", fname, search.Eq([]byte("Hans")))}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Zara", "Anna"} {
		err := v.db.Insert(context.Background(), "t1", engine.Row{
			"fname": v.encryptValue(t, "t1", "fname", name),
			"city":  v.encryptValue(t, "t1", "city", "Ottawa"),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := v.db.Merge(context.Background(), "t1"); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	// 6 - 1 + 2 = 7 rows, all in the main store now.
	if n, _ := v.db.Rows("t1"); n != 7 {
		t.Errorf("rows after merge = %d, want 7", n)
	}
	res, err := v.db.Select(context.Background(), engine.Query{Table: "t1", Project: []string{"fname"}})
	if err != nil {
		t.Fatalf("Select: %v", err)
	}
	got := v.decryptCells(t, res.Columns[0], false)
	sort.Strings(got)
	want := []string{"Anna", "Archie", "Ella", "Jessica", "Jessica", "Jessica", "Zara"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("rows after merge = %v, want %v", got, want)
	}
	// Searches still work on the merged store.
	res, err = v.db.Select(context.Background(), engine.Query{
		Table:     "t1",
		Filters:   []engine.Filter{v.filter(t, "t1", fname, search.Eq([]byte("Zara")))},
		CountOnly: true,
	})
	if err != nil {
		t.Fatalf("Select after merge: %v", err)
	}
	if res.Count != 1 {
		t.Errorf("Zara count = %d, want 1", res.Count)
	}
}

func TestMergePlainColumns(t *testing.T) {
	v := newEnv(t)
	def := engine.ColumnDef{Name: "c", Kind: dict.ED2, MaxLen: 8, Plain: true}
	if err := v.db.CreateTable(engine.Schema{Table: "p", Columns: []engine.ColumnDef{def}}); err != nil {
		t.Fatal(err)
	}
	v.loadColumn(t, "p", def, bcol("m", "n"))
	if err := v.db.Insert(context.Background(), "p", engine.Row{"c": []byte("o")}); err != nil {
		t.Fatal(err)
	}
	if err := v.db.Merge(context.Background(), "p"); err != nil {
		t.Fatalf("Merge: %v", err)
	}
	res, err := v.db.Select(context.Background(), engine.Query{
		Table:   "p",
		Filters: []engine.Filter{v.filter(t, "p", def, search.Closed([]byte("m"), []byte("o")))},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 3 {
		t.Errorf("count = %d, want 3", res.Count)
	}
}

func TestDropTable(t *testing.T) {
	v := newEnv(t)
	v.standardTable(t, dict.ED1, dict.ED1)
	if err := v.db.DropTable("t1"); err != nil {
		t.Fatalf("DropTable: %v", err)
	}
	if err := v.db.DropTable("t1"); !errors.Is(err, engine.ErrNoSuchTable) {
		t.Errorf("second drop: err = %v", err)
	}
	if n := len(v.db.Tables()); n != 0 {
		t.Errorf("tables remaining = %d", n)
	}
}

func TestStorageBytesGrowsWithDelta(t *testing.T) {
	v := newEnv(t)
	v.standardTable(t, dict.ED1, dict.ED1)
	before, err := v.db.StorageBytes("t1")
	if err != nil {
		t.Fatal(err)
	}
	if before == 0 {
		t.Fatal("storage = 0")
	}
	err = v.db.Insert(context.Background(), "t1", engine.Row{
		"fname": v.encryptValue(t, "t1", "fname", "New"),
		"city":  v.encryptValue(t, "t1", "city", "Town"),
	})
	if err != nil {
		t.Fatal(err)
	}
	after, _ := v.db.StorageBytes("t1")
	if after <= before {
		t.Errorf("storage did not grow: %d -> %d", before, after)
	}
}

func TestEngineRandomizedAgainstOracle(t *testing.T) {
	// End-to-end property test: random columns, random operations, random
	// range queries; the engine must agree with a plaintext model.
	rng := rand.New(rand.NewSource(2024))
	kinds := []dict.Kind{dict.ED1, dict.ED2, dict.ED3, dict.ED4, dict.ED5, dict.ED6, dict.ED7, dict.ED8, dict.ED9}
	for trial := 0; trial < 6; trial++ {
		v := newEnv(t)
		kind := kinds[rng.Intn(len(kinds))]
		def := engine.ColumnDef{Name: "c", Kind: kind, MaxLen: 8, BSMax: 2}
		if err := v.db.CreateTable(engine.Schema{Table: "t", Columns: []engine.ColumnDef{def}}); err != nil {
			t.Fatal(err)
		}
		n := 5 + rng.Intn(60)
		model := make([]string, n)
		for i := range model {
			model[i] = fmt.Sprintf("v%02d", rng.Intn(12))
		}
		col := make([][]byte, n)
		for i, s := range model {
			col[i] = []byte(s)
		}
		v.loadColumn(t, "t", def, col)

		for op := 0; op < 10; op++ {
			switch rng.Intn(3) {
			case 0: // insert
				val := fmt.Sprintf("v%02d", rng.Intn(12))
				err := v.db.Insert(context.Background(), "t", engine.Row{"c": v.encryptValue(t, "t", "c", val)})
				if err != nil {
					t.Fatal(err)
				}
				model = append(model, val)
			case 1: // delete by equality
				val := fmt.Sprintf("v%02d", rng.Intn(12))
				if _, err := v.db.Delete(context.Background(), "t", []engine.Filter{v.filter(t, "t", def, search.Eq([]byte(val)))}); err != nil {
					t.Fatal(err)
				}
				var kept []string
				for _, m := range model {
					if m != val {
						kept = append(kept, m)
					}
				}
				model = kept
			case 2: // occasionally merge
				if rng.Intn(2) == 0 {
					if err := v.db.Merge(context.Background(), "t"); err != nil {
						t.Fatal(err)
					}
				}
			}
			// Verify with a random range query.
			lo := fmt.Sprintf("v%02d", rng.Intn(12))
			hi := fmt.Sprintf("v%02d", rng.Intn(12))
			if lo > hi {
				lo, hi = hi, lo
			}
			q := search.Closed([]byte(lo), []byte(hi))
			res, err := v.db.Select(context.Background(), engine.Query{
				Table:   "t",
				Filters: []engine.Filter{v.filter(t, "t", def, q)},
				Project: []string{"c"},
			})
			if err != nil {
				t.Fatal(err)
			}
			got := v.decryptCells(t, res.Columns[0], false)
			sort.Strings(got)
			var want []string
			for _, m := range model {
				if m >= lo && m <= hi {
					want = append(want, m)
				}
			}
			sort.Strings(want)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("trial %d op %d kind %v query [%s,%s]:\ngot  %v\nwant %v",
					trial, op, kind, lo, hi, got, want)
			}
		}
	}
}

func TestResultCellsAreCiphertexts(t *testing.T) {
	// The untrusted engine must return ciphertexts, never plaintext.
	v := newEnv(t)
	fname, _ := v.standardTable(t, dict.ED1, dict.ED1)
	res, err := v.db.Select(context.Background(), engine.Query{
		Table:   "t1",
		Filters: []engine.Filter{v.filter(t, "t1", fname, search.Eq([]byte("Hans")))},
		Project: []string{"fname"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range res.Columns[0].Cells {
		if bytes.Contains(cell, []byte("Hans")) {
			t.Fatal("result cell contains plaintext")
		}
		if len(cell) < pae.Overhead {
			t.Fatal("result cell shorter than PAE overhead")
		}
	}
}
