// Package engine is the untrusted provider-side column store of the paper's
// architecture: versioned copy-on-write tables whose encrypted dictionaries
// are searched inside the enclave while the attribute-vector phase scans
// bit-packed vectors (internal/av) in plain Go.
//
// A table is a chain of immutable pieces plus one mutable tip: a
// generation-stamped main store, sealed delta runs, an append-only active
// tail, and a copy-on-write validity bitmap. Select pins that version under
// a brief read lock and scans lock-free; writers extend the tail; Merge is
// a three-stage pipeline (seal, enclave rebuild off-lock, swap with replay)
// that is semantically invisible to concurrent queries. Locking is sharded
// per table, so cross-table work never serializes.
//
// Conjunctive filters are evaluated fused by default: one accumulator
// bitmap seeded from the validity bitmap, every compiled predicate ANDing
// its match words into it, the main store scanned morsel-at-a-time by a
// bounded worker pool (WithWorkers). WithMetrics instruments the query and
// merge paths on a metrics.Registry; without it the engine pays zero
// instrumentation overhead.
package engine

import (
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"
	"sync/atomic"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/metrics"
	"github.com/encdbdb/encdbdb/internal/ridset"
	"github.com/encdbdb/encdbdb/internal/search"
)

// Errors returned by the engine.
var (
	ErrNoSuchTable    = errors.New("engine: no such table")
	ErrNoSuchColumn   = errors.New("engine: no such column")
	ErrTableExists    = errors.New("engine: table already exists")
	ErrRowMismatch    = errors.New("engine: column row counts differ")
	ErrNotImported    = errors.New("engine: column has no imported data")
	ErrAlreadyLoaded  = errors.New("engine: column already imported")
	ErrMissingColumn  = errors.New("engine: row is missing a column value")
	ErrEnclaveMissing = errors.New("engine: encrypted columns require an enclave")
	ErrClosed         = errors.New("engine: database closed")
)

// defaultSealRows is the default tail size at which an active delta run is
// sealed into an immutable run with a bit-packed attribute vector.
const defaultSealRows = 4096

// Option configures a DB.
type Option interface {
	apply(*options)
}

type options struct {
	avMode         search.AVMode
	workers        int
	reorder        bool
	packedScan     bool
	fusedScan      bool
	sealRows       int
	autoMergeRows  int
	autoMergeBytes int
	blockingMerge  bool
	streamChunk    int
	metricsReg     *metrics.Registry
}

type avModeOption search.AVMode

func (o avModeOption) apply(opts *options) { opts.avMode = search.AVMode(o) }

// WithAVMode selects the attribute-vector membership strategy for unsorted
// dictionaries (ablation A1). The default is search.AVSortedProbe.
func WithAVMode(m search.AVMode) Option { return avModeOption(m) }

type workersOption int

func (o workersOption) apply(opts *options) { opts.workers = int(o) }

// WithWorkers fixes the evaluation parallelism: both the attribute vector
// scan fan-out and the number of conjunctive filters searched concurrently.
// The default (0) uses GOMAXPROCS.
func WithWorkers(n int) Option { return workersOption(n) }

type reorderOption bool

func (o reorderOption) apply(opts *options) { opts.reorder = bool(o) }

// WithFilterReorder toggles the query optimizer's cheapest-first filter
// ordering (default on). Disabled, filters run in the order given — useful
// for measuring the optimizer's effect.
func WithFilterReorder(on bool) Option { return reorderOption(on) }

type packedScanOption bool

func (o packedScanOption) apply(opts *options) { opts.packedScan = bool(o) }

// WithPackedScan toggles the bit-packed SWAR attribute-vector scan kernels
// for main-store and sealed-delta-run searches (default on). Disabled, scans
// unpack the codes and run the original []uint32 entry points under the
// configured AVMode — the baseline for the compression ablation. The active
// tail run always uses the direct identity path: its attribute vector is
// AV[i] = i by construction, so the matching rows are the ValueIDs
// themselves.
func WithPackedScan(on bool) Option { return packedScanOption(on) }

type fusedScanOption bool

func (o fusedScanOption) apply(opts *options) { opts.fusedScan = bool(o) }

// WithFusedScan toggles the fused single-pass conjunction pipeline (default
// on): predicates and row validity are ANDed into one accumulator during the
// first scan, with morsel-driven parallelism across the main store, instead
// of materializing one set per filter and intersecting afterwards. Disabled
// — or whenever the packed kernels are disabled via WithPackedScan(false) —
// queries evaluate on the two-pass baseline path, which the scan benchmark
// and the fused property tests compare against.
func WithFusedScan(on bool) Option { return fusedScanOption(on) }

type sealRowsOption int

func (o sealRowsOption) apply(opts *options) {
	if o > 0 {
		opts.sealRows = int(o)
	}
}

// WithSealThreshold sets the tail size (rows) at which the active delta run
// is sealed into an immutable run with a bit-packed attribute vector
// (default 4096). Sealed runs answer the attribute-vector phase with the
// word-parallel packed kernels instead of a per-row probe, so only the small
// unsealed tail pays the linear path.
func WithSealThreshold(rows int) Option { return sealRowsOption(rows) }

type autoMergeOption struct{ rows, bytes int }

func (o autoMergeOption) apply(opts *options) {
	opts.autoMergeRows = o.rows
	opts.autoMergeBytes = o.bytes
}

// WithAutoMerge enables the background auto-merge policy: after a write
// commits, if the table's delta store holds at least maxRows rows or
// maxBytes payload bytes (a bound of 0 disables that trigger), a background
// merge is started unless one is already running. The merge runs off-lock:
// concurrent Selects and writers proceed against the pinned version while
// the enclave rebuilds, exactly as with an explicit MergeAsync.
func WithAutoMerge(maxRows, maxBytes int) Option {
	return autoMergeOption{rows: maxRows, bytes: maxBytes}
}

type blockingMergeOption bool

func (o blockingMergeOption) apply(opts *options) { opts.blockingMerge = bool(o) }

// WithBlockingMerge restores the legacy merge behaviour that holds the table
// write lock for the entire enclave rebuild, stalling every concurrent
// Select and writer on the table. It exists as the baseline for the merge
// benchmark's blocking-vs-background comparison; production configurations
// should keep the default (false).
func WithBlockingMerge(on bool) Option { return blockingMergeOption(on) }

type metricsOption struct{ reg *metrics.Registry }

func (o metricsOption) apply(opts *options) { opts.metricsReg = o.reg }

// WithMetrics registers the engine's metric families (select/scan counters,
// merge durations and backlog gauges — see docs/metrics.md) on reg and
// records into them. Without it the engine runs with zero instrumentation
// overhead.
func WithMetrics(reg *metrics.Registry) Option { return metricsOption{reg: reg} }

// DB is an EncDBDB database instance at the DBaaS provider: a set of tables
// plus the enclave used for protected dictionary searches.
//
// Locking is sharded per table and versioned within a table: DB.mu guards
// only the tables registry, and each table's store state is a set of
// immutable pieces (generation-stamped main store, sealed delta runs, a
// copy-on-write validity bitmap) plus an append-only tail. Readers pin a
// version under a brief critical section and then scan entirely lock-free,
// so a long Select never blocks writers and an in-flight background merge
// never blocks either. The enclave itself is internally synchronized and
// safe for concurrent ECALLs.
type DB struct {
	encl    *enclave.Enclave
	opts    options
	metrics *engineMetrics

	// cl is the durability hook (nil for a volatile database). Installed
	// via SetCommitLog before traffic starts; every write path appends to
	// it before applying, under the per-table append gate.
	cl CommitLog

	mu     sync.RWMutex
	tables map[string]*table

	// closeMu orders background-merge admission against Close: closed and
	// wg.Add are read/written together under it, so a merge admitted
	// before Close is always covered by Close's wg.Wait. closed is also
	// mirrored atomically for lock-free fast-path checks.
	closeMu sync.Mutex
	closed  atomic.Bool
	wg      sync.WaitGroup

	// mergeHooks are test instrumentation points inside the background
	// merge pipeline (nil in production). Installed before traffic starts.
	mergeHooks struct {
		afterSeal  func(table string)
		beforeSwap func(table string)
	}
}

// table is the per-table store: one column store per column plus the shared
// versioned state (paper §4.3). mu serializes writers against each other and
// guards the brief version-pin critical section; everything a pinned version
// references is immutable, so readers touch mu only long enough to capture
// pointers. schema and the cols map are fixed at CreateTable and may be read
// without it.
type table struct {
	schema Schema
	cols   map[string]*column

	mu  sync.RWMutex
	gen uint64 // main-store generation; bumped by every merge swap
	// mainRows is the main store's row count; deltaRows the rows across
	// all sealed runs plus the active tail.
	mainRows  int
	deltaRows int
	// valid is the row validity bitmap over [0, mainRows+deltaRows):
	// RecordIDs below mainRows are main-store rows, the rest delta rows.
	// Deletions clear bits (paper §4.3); query results are ANDed with it.
	// The bitmap is copy-on-write: every mutation installs a fresh copy,
	// so a pinned version's bitmap epoch is frozen.
	valid *ridset.Set

	// mergeMu admits one merge pipeline at a time; merging mirrors it for
	// lock-free status reads. lastMergeErr (under mu) surfaces background
	// merge failures through MergeStatus.
	mergeMu      sync.Mutex
	merging      atomic.Bool
	merges       uint64
	lastMergeErr string
}

// column pairs the read-optimized main store with the write-optimized delta
// chain: zero or more sealed immutable runs plus the active append-only
// tail. All store pointers are guarded by the table's mu; the pieces they
// reference are immutable once published.
type column struct {
	table string
	def   ColumnDef
	main  *dict.Split
	// sealed is the chain of sealed delta runs, oldest first. The slice is
	// replaced (never mutated in place below its published length) so a
	// pinned version's captured header stays valid.
	sealed []*deltaRun
	tail   *deltaStore
	// imported marks a bulk-loaded main store; tables may also start
	// empty and grow purely through the delta store.
	imported bool
}

// New creates a database backed by the given enclave. A nil enclave is
// allowed for plaintext-only databases (the PlainDBDB baseline).
func New(encl *enclave.Enclave, opts ...Option) *DB {
	o := options{
		avMode:      search.AVSortedProbe,
		reorder:     true,
		packedScan:  true,
		fusedScan:   true,
		sealRows:    defaultSealRows,
		streamChunk: defaultStreamChunk,
	}
	for _, opt := range opts {
		opt.apply(&o)
	}
	db := &DB{encl: encl, opts: o, tables: make(map[string]*table)}
	if o.metricsReg != nil {
		db.metrics = newEngineMetrics(o.metricsReg, db)
	}
	return db
}

// Enclave returns the enclave backing this database (nil for plaintext-only
// databases). The data owner uses it for attestation and provisioning.
func (db *DB) Enclave() *enclave.Enclave { return db.encl }

// Close stops accepting new background merges and waits for in-flight ones
// to finish. Queries and writes remain possible afterwards; only the
// asynchronous merge machinery shuts down.
func (db *DB) Close() error {
	db.closeMu.Lock()
	db.closed.Store(true)
	db.closeMu.Unlock()
	db.wg.Wait()
	return nil
}

// lookup resolves a table name under the registry lock. The caller locks the
// returned table as needed; a table concurrently dropped from the registry
// stays usable until its last in-flight operation releases it.
func (db *DB) lookup(name string) (*table, error) {
	db.mu.RLock()
	t, ok := db.tables[name]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	return t, nil
}

// CreateTable registers a table schema with empty column stores.
func (db *DB) CreateTable(s Schema) error { return db.createTable(s, true) }

// createTable is CreateTable with logging control: recovery replay and
// snapshot Restore install tables without emitting commit-log records (the
// former because the record already exists, the latter because the restore
// is made durable by a checkpoint instead).
func (db *DB) createTable(s Schema, logged bool) error {
	if err := s.Validate(); err != nil {
		return err
	}
	t := &table{schema: s, cols: make(map[string]*column, len(s.Columns)), valid: ridset.New(0)}
	for _, def := range s.Columns {
		if !def.Plain && db.encl == nil {
			return fmt.Errorf("%w: column %q", ErrEnclaveMissing, def.Name)
		}
		t.cols[def.Name] = &column{
			table: s.Table,
			def:   def,
			main:  dict.Empty(def.Kind, def.MaxLen, def.BSMax, def.Plain),
			tail:  newDeltaStore(),
		}
	}
	var end func()
	if logged && db.cl != nil {
		end = db.cl.BeginWrite(s.Table)
		defer end()
	}
	db.mu.Lock()
	if _, ok := db.tables[s.Table]; ok {
		db.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrTableExists, s.Table)
	}
	var commit func() error
	if logged && db.cl != nil {
		// Log inside the registry critical section, after the existence
		// check: two racing creates cannot both emit a create record.
		sc := s
		c, err := db.cl.Append(&LogRecord{Type: RecordCreate, Table: s.Table, Schema: &sc})
		if err != nil {
			db.mu.Unlock()
			return err
		}
		commit = c
	}
	db.tables[s.Table] = t
	db.mu.Unlock()
	if commit != nil {
		return commit()
	}
	return nil
}

// DropTable removes a table from the registry. In-flight operations holding
// the table finish against the orphaned store.
func (db *DB) DropTable(name string) error { return db.dropTable(name, true) }

// dropTable is DropTable with logging control (unlogged for replay and for
// rolling back a failed Restore).
func (db *DB) dropTable(name string, logged bool) error {
	var end func()
	if logged && db.cl != nil {
		end = db.cl.BeginWrite(name)
		defer end()
	}
	db.mu.Lock()
	if _, ok := db.tables[name]; !ok {
		db.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoSuchTable, name)
	}
	var commit func() error
	if logged && db.cl != nil {
		c, err := db.cl.Append(&LogRecord{Type: RecordDrop, Table: name})
		if err != nil {
			db.mu.Unlock()
			return err
		}
		commit = c
	}
	delete(db.tables, name)
	db.mu.Unlock()
	if commit != nil {
		return commit()
	}
	return nil
}

// Tables lists the registered table names.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	return names
}

// Schema returns the schema of the named table.
func (db *DB) Schema(name string) (Schema, error) {
	t, err := db.lookup(name)
	if err != nil {
		return Schema{}, err
	}
	return t.schema, nil
}

// ImportColumn installs a pre-built split as the main store of a column —
// the data owner's bulk deployment (paper Fig. 5 step 4). Every column of a
// table must be imported with the same row count; the first import fixes it.
func (db *DB) ImportColumn(tableName, columnName string, s *dict.Split) error {
	t, err := db.lookup(tableName)
	if err != nil {
		return err
	}
	c, ok := t.cols[columnName]
	if !ok {
		return fmt.Errorf("%w: %q.%q", ErrNoSuchColumn, tableName, columnName)
	}
	end := db.gateWrite(tableName)
	defer end()
	commit, err := db.importColumnLocked(t, c, tableName, columnName, s)
	if err != nil {
		return err
	}
	if commit != nil {
		return commit()
	}
	return nil
}

// importColumnLocked validates and installs the split under the table write
// lock, logging an import record (the serialized split, so replay needs no
// enclave) before the install.
func (db *DB) importColumnLocked(t *table, c *column, tableName, columnName string, s *dict.Split) (func() error, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c.imported {
		return nil, fmt.Errorf("%w: %q.%q", ErrAlreadyLoaded, tableName, columnName)
	}
	if t.deltaRows > 0 {
		return nil, fmt.Errorf("engine: cannot bulk import %q.%q after inserts", tableName, columnName)
	}
	// A merge pipeline sets merging before it seals, and sealing takes
	// this lock — so any import that passes this check completes strictly
	// before the base version is pinned, and the swap's replay bookkeeping
	// never sees imported rows it mistakes for mid-rebuild appends.
	if t.merging.Load() {
		return nil, fmt.Errorf("engine: cannot bulk import %q.%q during an in-flight merge", tableName, columnName)
	}
	if s.Kind != c.def.Kind || s.Plain != c.def.Plain {
		return nil, fmt.Errorf("engine: split kind %v/plain=%v does not match column %q (%v/plain=%v)",
			s.Kind, s.Plain, columnName, c.def.Kind, c.def.Plain)
	}
	loaded := t.importedRows()
	if loaded >= 0 && s.Rows() != loaded {
		return nil, fmt.Errorf("%w: %q.%q has %d rows, table has %d",
			ErrRowMismatch, tableName, columnName, s.Rows(), loaded)
	}
	var commit func() error
	if db.cl != nil {
		data := s.Data()
		c2, err := db.cl.Append(&LogRecord{
			Type: RecordImport, Table: tableName, Gen: t.gen,
			Column: columnName, Split: &data,
		})
		if err != nil {
			return nil, err
		}
		commit = c2
	}
	c.main = s
	c.imported = true
	if loaded < 0 {
		t.mainRows = s.Rows()
		t.valid = ridset.Full(s.Rows())
	}
	return commit, nil
}

// ImportPlaintextColumn is the trusted-setup bulk load variant of paper
// §4.2: the uploaded plaintext column is split and encrypted inside the
// enclave, then installed as the main store. Use only when the provider is
// trusted during setup; the standard path (ImportColumn) never exposes
// plaintext to the provider.
func (db *DB) ImportPlaintextColumn(tableName, columnName string, values [][]byte) error {
	t, err := db.lookup(tableName)
	if err != nil {
		return err
	}
	c, ok := t.cols[columnName]
	if !ok {
		return fmt.Errorf("%w: %q.%q", ErrNoSuchColumn, tableName, columnName)
	}
	var split *dict.Split
	if c.def.Plain {
		var rnd *mrand.Rand
		if rnd, err = newBuildRand(); err == nil {
			split, err = dict.Build(values, dict.Params{
				Kind:   c.def.Kind,
				MaxLen: c.def.MaxLen,
				BSMax:  c.def.BSMax,
				Plain:  true,
				Rand:   rnd,
			})
		}
	} else {
		if db.encl == nil {
			return fmt.Errorf("%w: column %q", ErrEnclaveMissing, columnName)
		}
		split, err = db.encl.BuildColumn(db.columnMeta(c), c.def.BSMax, values)
	}
	if err != nil {
		return fmt.Errorf("engine: trusted setup %q.%q: %w", tableName, columnName, err)
	}
	return db.ImportColumn(tableName, columnName, split)
}

// importedRows returns the row count fixed by previous imports, or -1 if no
// column is imported yet.
func (t *table) importedRows() int {
	for _, c := range t.cols {
		if c.imported {
			return c.main.Rows()
		}
	}
	return -1
}

// ready reports whether the table is queryable: either no column was bulk
// imported (the table grows purely through inserts) or every column was.
// The caller holds at least the table's read lock.
func (t *table) ready() error {
	imported := 0
	for _, c := range t.cols {
		if c.imported {
			imported++
		}
	}
	if imported == 0 || imported == len(t.cols) {
		return nil
	}
	for name, c := range t.cols {
		if !c.imported {
			return fmt.Errorf("%w: %q", ErrNotImported, name)
		}
	}
	return nil
}

// readyCheck verifies readiness under a brief read lock.
func (t *table) readyCheck() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.ready()
}

// validBools renders count validity flags starting at RecordID start as the
// []bool shape the snapshot format and the enclave merge ECALL consume.
func validBools(valid *ridset.Set, start, count int) []bool {
	if count == 0 {
		return nil
	}
	out := make([]bool, count)
	for i := range out {
		out[i] = valid.Contains(uint32(start + i))
	}
	return out
}

// anyCol returns one column as the representative for per-table shape
// invariants that hold identically across columns by construction — every
// write appends to all columns together, so sealed-run counts and tail
// lengths always align. The caller holds at least the table's read lock.
func (t *table) anyCol() *column {
	for _, c := range t.cols {
		return c
	}
	return nil
}

// sealedRunsLocked returns the table's sealed-run chain length; the caller
// holds at least the table's read lock.
func (t *table) sealedRunsLocked() int {
	if c := t.anyCol(); c != nil {
		return len(c.sealed)
	}
	return 0
}

// tailLenLocked returns the active tail's row count; the caller holds at
// least the table's read lock.
func (t *table) tailLenLocked() int {
	if c := t.anyCol(); c != nil {
		return len(c.tail.entries)
	}
	return 0
}

// deltaBytesLocked sums the delta-chain payload bytes across all columns.
// The caller holds at least the table's read lock.
func (t *table) deltaBytesLocked() int {
	total := 0
	for _, c := range t.cols {
		for _, r := range c.sealed {
			total += r.bytes
		}
		total += c.tail.bytes
	}
	return total
}

// Rows returns the table's total row count including invalidated rows.
func (db *DB) Rows(tableName string) (int, error) {
	t, err := db.lookup(tableName)
	if err != nil {
		return 0, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.mainRows + t.deltaRows, nil
}

// StorageBytes returns the summed storage footprint of all column stores of
// a table (paper Table 6 accounting). Sealed delta runs include their
// bit-packed attribute vectors; the active tail's identity vector is
// implicit and costs nothing.
func (db *DB) StorageBytes(tableName string) (int, error) {
	t, err := db.lookup(tableName)
	if err != nil {
		return 0, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	total := 0
	for _, c := range t.cols {
		if c.main != nil {
			total += c.main.SizeBytes()
		}
		for _, r := range c.sealed {
			total += r.sizeBytes()
		}
		total += c.tail.sizeBytes()
	}
	return total, nil
}
