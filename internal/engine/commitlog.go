package engine

import (
	"fmt"

	"github.com/encdbdb/encdbdb/internal/dict"
)

// RecordType classifies a commit-log record.
type RecordType uint8

// Log record types. Write records carry the appended row payloads and/or the
// invalidated RecordIDs of one engine write statement; the DDL records carry
// the schema, the drop, or one bulk-imported column split.
const (
	RecordCreate RecordType = iota + 1
	RecordDrop
	RecordImport
	RecordWrite
)

// LogRecord is one logical mutation of a table, in the exact order the
// mutation was applied to the in-memory store. Records are self-contained
// for replay: row payloads are the post-re-encryption ciphertexts (or plain
// values) as stored in the delta tail, so replay needs no enclave and no
// provisioned keys.
type LogRecord struct {
	// LSN is the log sequence number, assigned by the log on append.
	LSN uint64
	// Type selects which of the payload fields below are meaningful.
	Type RecordType
	// Table names the mutated table; Gen is the table's main-store
	// generation at append time. A checkpoint image plus the records whose
	// LSN exceeds the checkpoint watermark at the recorded generation
	// reproduces the table exactly; a generation mismatch during replay
	// means the log and image diverged and recovery must fail loudly.
	Table string
	Gen   uint64

	// Write fields. Base is the RecordID the first appended row receives
	// (the table's total row count at append time) — replay validates it so
	// applying a record twice or out of order is impossible. Removed lists
	// the RecordIDs invalidated by the statement; Rows the fully prepared
	// payloads appended by it, column name to stored value.
	Base    uint32
	Removed []uint32
	Rows    []map[string][]byte

	// Create payload.
	Schema *Schema
	// Import payload.
	Column string
	Split  *dict.SplitData
}

// CommitLog is the durability hook the engine threads its write path
// through. The engine calls Append under the table (or registry) write lock,
// after all validation and immediately before applying the mutation in
// memory — so per-table log order is exactly apply order — and calls the
// returned commit function after releasing the lock to await durability per
// the log's sync policy before acknowledging the client.
//
// BeginWrite/BeginCheckpoint form a per-table gate: writers hold the shared
// side across append+apply, checkpoints hold the exclusive side across
// swap+image-cut, so a checkpoint observes either all or none of a write.
// Lock order is gate first, then table lock; the engine never acquires the
// gate while holding a table lock.
type CommitLog interface {
	// BeginWrite enters the shared side of the table's append gate; the
	// returned function leaves it.
	BeginWrite(table string) func()
	// Append assigns the record its LSN and buffers it. The returned commit
	// function blocks until the record is durable per the sync policy (a
	// no-op under relaxed policies). An Append error means nothing was
	// logged and the engine must not apply the mutation.
	Append(rec *LogRecord) (commit func() error, err error)
	// BeginCheckpoint enters the exclusive side of the table's append gate,
	// waiting out in-flight writers and blocking new ones.
	BeginCheckpoint(table string) func()
	// Checkpoint durably cuts a new storage image for the table at
	// generation gen and truncates the table's replay obligation to the
	// current log position. The caller holds the exclusive gate.
	Checkpoint(table string, gen uint64, snap *TableSnapshot) error
}

// SetCommitLog installs the durability hook. It must be called before the
// database serves traffic (recovery replays through the public write API,
// so the hook is installed only after replay completes); it is not safe to
// install or swap concurrently with writes.
func (db *DB) SetCommitLog(cl CommitLog) { db.cl = cl }

// gateWrite enters the commit log's shared append gate for the table,
// returning a no-op release when no log is installed.
func (db *DB) gateWrite(table string) func() {
	if db.cl == nil {
		return func() {}
	}
	return db.cl.BeginWrite(table)
}

// gateCheckpoint enters the commit log's exclusive append gate for the
// table, returning a no-op release when no log is installed.
func (db *DB) gateCheckpoint(table string) func() {
	if db.cl == nil {
		return func() {}
	}
	return db.cl.BeginCheckpoint(table)
}

// checkpointMerged cuts a durable image of the table's post-swap state —
// the merge pipeline's durability step, since a merge compacts the RecordID
// space and makes every earlier log record unreplayable onto the new image.
// The caller holds the exclusive append gate and mergeMu, so the snapshot
// taken here is exactly the post-swap version.
func (db *DB) checkpointMerged(tableName string, gen uint64) error {
	if db.cl == nil {
		return nil
	}
	snap, err := db.Snapshot(tableName)
	if err != nil {
		return fmt.Errorf("engine: checkpoint %q: %w", tableName, err)
	}
	if err := db.cl.Checkpoint(tableName, gen, snap); err != nil {
		return fmt.Errorf("engine: checkpoint %q: %w", tableName, err)
	}
	return nil
}

// logWriteLocked appends one write record — removed RecordIDs and/or
// prepared row payloads — before the in-memory apply. The caller holds the
// table write lock; the returned commit function (nil when no log is
// installed or the record is empty) is invoked after the lock is released.
func (db *DB) logWriteLocked(t *table, tableName string, removed []uint32, payloads []map[string][]byte) (func() error, error) {
	if db.cl == nil || (len(removed) == 0 && len(payloads) == 0) {
		return nil, nil
	}
	rec := &LogRecord{
		Type:    RecordWrite,
		Table:   tableName,
		Gen:     t.gen,
		Base:    uint32(t.mainRows + t.deltaRows),
		Removed: removed,
		Rows:    payloads,
	}
	return db.cl.Append(rec)
}

// ApplyRecord replays one log record against the store through the same
// code paths normal traffic uses, minus crypto and logging: payloads are
// already re-encrypted, and replay runs before SetCommitLog installs the
// hook. Replay is idempotence-checked rather than idempotent — a write
// record whose Base does not equal the table's current row count is
// rejected, so applying a record twice or out of order fails loudly instead
// of corrupting the store.
func (db *DB) ApplyRecord(rec *LogRecord) error {
	switch rec.Type {
	case RecordCreate:
		if rec.Schema == nil {
			return fmt.Errorf("engine: replay lsn %d: create record without schema", rec.LSN)
		}
		return db.CreateTable(*rec.Schema)
	case RecordDrop:
		return db.DropTable(rec.Table)
	case RecordImport:
		if rec.Split == nil {
			return fmt.Errorf("engine: replay lsn %d: import record without split", rec.LSN)
		}
		s, err := dict.FromData(*rec.Split)
		if err != nil {
			return fmt.Errorf("engine: replay lsn %d: %w", rec.LSN, err)
		}
		return db.ImportColumn(rec.Table, rec.Column, s)
	case RecordWrite:
		return db.applyWrite(rec)
	default:
		return fmt.Errorf("engine: replay lsn %d: unknown record type %d", rec.LSN, rec.Type)
	}
}

// applyWrite re-applies a write record: invalidations first, then appends —
// the order Update used when the record was written (Insert and Delete
// records carry only one of the two).
func (db *DB) applyWrite(rec *LogRecord) error {
	t, err := db.lookup(rec.Table)
	if err != nil {
		return fmt.Errorf("engine: replay lsn %d: %w", rec.LSN, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.mainRows + t.deltaRows
	if len(rec.Rows) > 0 && int(rec.Base) != n {
		return fmt.Errorf("engine: replay lsn %d: record base %d, table has %d rows",
			rec.LSN, rec.Base, n)
	}
	for i, row := range rec.Rows {
		for name := range t.cols {
			if _, ok := row[name]; !ok {
				return fmt.Errorf("engine: replay lsn %d: row %d: %w: %q",
					rec.LSN, i, ErrMissingColumn, name)
			}
		}
	}
	if len(rec.Removed) > 0 {
		valid := t.valid.Clone()
		for _, r := range rec.Removed {
			if int(r) >= n {
				return fmt.Errorf("engine: replay lsn %d: removed RecordID %d out of range %d",
					rec.LSN, r, n)
			}
			valid.Remove(r)
		}
		t.valid = valid
	}
	if len(rec.Rows) > 0 {
		db.commitRowsLocked(t, rec.Rows)
	}
	return nil
}
