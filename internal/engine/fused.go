package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/encdbdb/encdbdb/internal/av"
	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/ridset"
	"github.com/encdbdb/encdbdb/internal/search"
)

// morselGroups is the work unit of the fused main-store scan: 128 groups =
// 8192 rows per morsel. Small enough that skewed predicate selectivity
// cannot idle workers for long, large enough that the atomic claim and the
// per-morsel context check are noise.
const morselGroups = 128

// matchValid evaluates the conjunction of all filters AND row validity over
// a pinned version. It dispatches between the fused single-pass pipeline
// (default) and the two-pass baseline of matchRows + IntersectWith, which
// remains live for WithFusedScan(false), for the unpacked-scan ablation, and
// as the reference the fused property tests compare against.
//
// limit (0 = none) is the LIMIT-pushdown hint: a caller that will keep only
// the first limit matches in RecordID order allows the fused path to stop
// scanning delta regions once the rows before them already satisfy the cap.
// The returned set may therefore overshoot limit but never misses a row the
// truncated prefix needs.
func (db *DB) matchValid(ctx context.Context, v *version, filters []Filter, limit int) (*ridset.Set, error) {
	if db.opts.fusedScan && db.opts.packedScan {
		return db.matchRowsFused(ctx, v, filters, limit)
	}
	match, err := db.matchRows(ctx, v, filters)
	if err != nil {
		return nil, err
	}
	match.IntersectWith(v.valid)
	return match, nil
}

// fusedFilter is one filter compiled by the dictionary phase: the per-store
// results of every dictionary search, ready for the scan phase. The main
// store's ranges or ValueIDs are compiled into a PackedPred; each delta
// region keeps its matching ValueID list (delta searches always use ED9
// semantics, so the result is a list).
type fusedFilter struct {
	cv       *colVersion
	mainPred search.PackedPred
	runIDs   [][]uint32
	tailIDs  []uint32
}

// matchRowsFused is the fused conjunction pipeline: one dictionary phase
// compiling every filter, then a single morsel-driven pass over the main
// store evaluating all predicates per 64-row group directly against a
// validity-seeded accumulator, then the delta regions the same way. Compared
// to the two-pass matchRows + validity intersection it never materializes a
// per-filter set, never rescans for the intersection, and skips every group
// an earlier predicate (or a deletion) already emptied.
//
// Parallelism is morsel-driven: workers claim 128-group chunks of the main
// store from an atomic counter, so all cores cooperate on one scan and a
// filter with skewed selectivity cannot idle them the way the per-filter
// fan-out could.
//
// Semantics match matchRows + IntersectWith(valid) with one caveat: the
// dictionary phase runs for every planned filter up front (bailing only when
// a filter is dictionary-level empty), so a dictionary error on a later
// filter surfaces even when the conjunction would have emptied mid-scan —
// the two-pass parallel path has the same property for its fan-out searches.
func (db *DB) matchRowsFused(ctx context.Context, v *version, filters []Filter, limit int) (*ridset.Set, error) {
	n := v.rows()
	if len(filters) == 0 {
		return v.valid.Clone(), nil
	}

	// Dictionary phase, sequential in planned order: preserves the planner's
	// error order, and a dictionary-level empty filter (no ValueID can
	// match anywhere in the chain) short-circuits the remaining searches
	// exactly like the two-pass path's empty-set bail.
	planned := db.planFilters(v, filters)
	preds := make([]*fusedFilter, 0, len(planned))
	for _, f := range planned {
		ff, err := db.compileFilter(ctx, v, f)
		if err != nil {
			return nil, err
		}
		if ff == nil {
			return ridset.New(n), nil
		}
		preds = append(preds, ff)
	}

	// The accumulator starts as the validity bitmap over the main store, so
	// deleted rows are dead from the first predicate on; the delta portion
	// stays zero until the delta phase splices each region in.
	acc := v.valid.Clone()
	acc.ClearFrom(v.mainRows)
	if v.mainRows > 0 {
		if err := db.fusedMainScan(ctx, v, preds, acc); err != nil {
			return nil, err
		}
	}
	if v.deltaRows > 0 {
		if err := db.fusedDeltaScan(ctx, v, preds, acc, limit); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// compileFilter runs the dictionary phase of one filter against the main
// store and every delta region, returning the compiled predicate — or nil if
// the filter is dictionary-level empty, which empties the whole conjunction.
func (db *DB) compileFilter(ctx context.Context, v *version, f Filter) (*fusedFilter, error) {
	cv, ok := v.cols[f.Column]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchColumn, f.Column)
	}
	ff := &fusedFilter{cv: cv, runIDs: make([][]uint32, len(cv.sealed))}
	var (
		mainRanges []search.VidRange
		mainIDs    []uint32
	)
	unsorted := cv.main.Kind.Order() == dict.OrderUnsorted
	for _, rng := range f.Ranges {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		if cv.main.Rows() > 0 {
			res, err := db.mainDictSearch(cv, rng)
			if err != nil {
				return nil, err
			}
			mainRanges = append(mainRanges, res.Ranges...)
			mainIDs = append(mainIDs, res.IDs...)
		}
		for i, run := range cv.sealed {
			ids, err := db.deltaDictSearch(cv, run, rng)
			if err != nil {
				return nil, err
			}
			ff.runIDs[i] = append(ff.runIDs[i], ids...)
		}
		if cv.tail.Len() > 0 {
			ids, err := db.deltaDictSearch(cv, cv.tail, rng)
			if err != nil {
				return nil, err
			}
			ff.tailIDs = append(ff.tailIDs, ids...)
		}
	}
	if unsorted {
		ff.mainPred = search.CompileListPred(cv.main.Packed(), mainIDs)
	} else {
		ff.mainPred = search.CompileRangesPred(cv.main.Packed(), mainRanges)
	}
	empty := len(mainRanges) == 0 && len(mainIDs) == 0 && len(ff.tailIDs) == 0
	for _, ids := range ff.runIDs {
		empty = empty && len(ids) == 0
	}
	if empty {
		return nil, nil
	}
	return ff, nil
}

// fusedMainScan runs the morsel-driven fused pass over the main store:
// workers claim group morsels from a shared counter and evaluate the whole
// conjunction on each before claiming the next. Morsels are disjoint group
// ranges, hence disjoint accumulator words, so the workers share acc without
// synchronization; a predicate that empties the morsel stops the remaining
// predicates for that morsel.
func (db *DB) fusedMainScan(ctx context.Context, v *version, preds []*fusedFilter, acc *ridset.Set) error {
	groups := (v.mainRows + av.GroupRows - 1) / av.GroupRows
	morsels := (groups + morselGroups - 1) / morselGroups
	workers := db.opts.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > morsels {
		workers = morsels
	}
	scan := func(gLo, gHi int) {
		for _, ff := range preds {
			if !ff.mainPred.ScanInto(acc, gLo, gHi) {
				return
			}
		}
	}
	if workers <= 1 {
		for m := 0; m < morsels; m++ {
			if err := ctxErr(ctx); err != nil {
				return err
			}
			scan(m*morselGroups, min(groups, (m+1)*morselGroups))
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				m := int(next.Add(1)) - 1
				if m >= morsels || ctxErr(ctx) != nil {
					return
				}
				scan(m*morselGroups, min(groups, (m+1)*morselGroups))
			}
		}()
	}
	wg.Wait()
	return ctxErr(ctx)
}

// fusedDeltaScan evaluates the conjunction over each delta region with a
// region-local accumulator — a conjunction distributes over the disjoint row
// regions of the store chain, and region offsets are not 64-aligned, so each
// region is evaluated in its own coordinate space and spliced into the
// table-wide accumulator once. Sealed runs evaluate through the same fused
// membership kernel as the main store (over the run's bit-packed identity
// vector); the active tail exploits AV[i] = i directly.
//
// With a LIMIT-pushdown hint the scan stops before any region whose rows can
// no longer reach the truncated prefix: regions hold strictly increasing
// RecordIDs, so once the accumulator already carries limit matches below a
// region's offset, nothing that region contributes survives the cut.
func (db *DB) fusedDeltaScan(ctx context.Context, v *version, preds []*fusedFilter, acc *ridset.Set, limit int) error {
	cv0 := preds[0].cv
	off := v.mainRows
	for ri := range cv0.sealed {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		if limit > 0 && acc.Len() >= limit {
			return nil
		}
		rows := cv0.sealed[ri].rows()
		reg := ridset.Full(rows)
		reg.AndShifted(v.valid, off)
		for _, ff := range preds {
			if reg.Empty() {
				break
			}
			if !search.AttrVectListPackedInto(ff.cv.sealed[ri].packed, ff.runIDs[ri], reg, 1) {
				break
			}
		}
		acc.OrShifted(reg, off)
		off += rows
	}
	rows := cv0.tail.Len()
	if rows == 0 || (limit > 0 && acc.Len() >= limit) {
		return nil
	}
	reg := ridset.Full(rows)
	reg.AndShifted(v.valid, off)
	for _, ff := range preds {
		if reg.Empty() {
			break
		}
		// The tail's attribute vector is the identity, so the matching
		// ValueIDs are the matching rows.
		fs := ridset.New(rows)
		for _, id := range ff.tailIDs {
			if int(id) < rows {
				fs.Add(id)
			}
		}
		reg.IntersectWith(fs)
	}
	acc.OrShifted(reg, off)
	return nil
}

// mainDictSearch runs the dictionary-search phase on the main store — inside
// the enclave for encrypted columns, locally for plain ones.
func (db *DB) mainDictSearch(cv *colVersion, q enclave.EncRange) (enclave.SearchResult, error) {
	if cv.def.Plain {
		return db.plainDictSearch(cv.def, cv.main, cv.main.EncRndOffset, q)
	}
	return db.encl.DictSearch(db.columnMetaVersion(cv), cv.main, cv.main.EncRndOffset, q)
}
