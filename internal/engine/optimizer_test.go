package engine_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/search"
)

// optimizerTable loads a two-column table: a cheap sorted column and an
// expensive unsorted one, with n rows.
func optimizerTable(t *testing.T, v *env, n int, opts ...engine.Option) (cheap, costly engine.ColumnDef) {
	t.Helper()
	cheap = engine.ColumnDef{Name: "cheap", Kind: dict.ED1, MaxLen: 8}
	costly = engine.ColumnDef{Name: "costly", Kind: dict.ED9, MaxLen: 8}
	if err := v.db.CreateTable(engine.Schema{Table: "opt", Columns: []engine.ColumnDef{cheap, costly}}); err != nil {
		t.Fatal(err)
	}
	colA := make([][]byte, n)
	colB := make([][]byte, n)
	for i := range colA {
		colA[i] = []byte(fmt.Sprintf("a%05d", i%50))
		colB[i] = []byte(fmt.Sprintf("b%05d", i))
	}
	v.loadColumn(t, "opt", cheap, colA)
	v.loadColumn(t, "opt", costly, colB)
	return cheap, costly
}

func TestOptimizerShortCircuitsUnsortedScan(t *testing.T) {
	v := newEnvWith(t)
	cheap, costly := optimizerTable(t, v, 500)

	// The cheap equality filter matches nothing; with reordering the ED9
	// linear scan (500 loads) must never run, regardless of the order the
	// filters were written in.
	filters := []engine.Filter{
		v.filter(t, "opt", costly, search.Closed([]byte("b00000"), []byte("b99999"))),
		v.filter(t, "opt", cheap, search.Eq([]byte("nomatch"))),
	}
	v.db.Enclave().ResetStats()
	res, err := v.db.Select(context.Background(), engine.Query{Table: "opt", Filters: filters, CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Fatalf("count = %d, want 0", res.Count)
	}
	if loads := v.db.Enclave().Stats().Loads; loads > 32 {
		t.Errorf("optimizer ran %d loads, want only the cheap binary search", loads)
	}
}

func TestOptimizerDisabledRunsInGivenOrder(t *testing.T) {
	v := newEnvWith(t, engine.WithFilterReorder(false))
	cheap, costly := optimizerTable(t, v, 500)
	filters := []engine.Filter{
		v.filter(t, "opt", costly, search.Closed([]byte("b00000"), []byte("b99999"))),
		v.filter(t, "opt", cheap, search.Eq([]byte("nomatch"))),
	}
	v.db.Enclave().ResetStats()
	if _, err := v.db.Select(context.Background(), engine.Query{Table: "opt", Filters: filters, CountOnly: true}); err != nil {
		t.Fatal(err)
	}
	if loads := v.db.Enclave().Stats().Loads; loads < 500 {
		t.Errorf("without reordering the unsorted scan should run first, loads = %d", loads)
	}
}

func TestOptimizerPreservesResults(t *testing.T) {
	v := newEnvWith(t)
	cheap, costly := optimizerTable(t, v, 300)
	// Both filters match: result must be identical regardless of plan.
	filters := []engine.Filter{
		v.filter(t, "opt", costly, search.Closed([]byte("b00000"), []byte("b00149"))),
		v.filter(t, "opt", cheap, search.Closed([]byte("a00000"), []byte("a00024"))),
	}
	res, err := v.db.Select(context.Background(), engine.Query{Table: "opt", Filters: filters, CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	// Rows 0..149 where i%50 < 25: i in [0,24], [50,74], [100,124] = 75.
	if res.Count != 75 {
		t.Errorf("count = %d, want 75", res.Count)
	}
}

func TestOptimizerUnknownColumnStillErrors(t *testing.T) {
	v := newEnvWith(t)
	optimizerTable(t, v, 50)
	_, err := v.db.Select(context.Background(), engine.Query{Table: "opt", Filters: []engine.Filter{
		{Column: "nope"},
		{Column: "cheap"},
	}})
	if err == nil {
		t.Error("unknown filter column accepted")
	}
}
