package engine

import (
	"fmt"
	"sort"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/ordenc"
	"github.com/encdbdb/encdbdb/internal/search"
)

// Filter is one encrypted predicate on a column: the union (OR) of one or
// more two-sided ranges. Plain equality and range predicates carry exactly
// one range; IN-lists carry one equality range per member. For encrypted
// columns the bounds are PAE ciphertexts produced by the proxy; for plain
// columns they are raw plaintext bounds. The proxy has already normalized
// every filter type into this uniform shape (paper §4.2 step 5).
type Filter struct {
	Column string
	Ranges []enclave.EncRange
}

// SingleRange builds the common one-range filter.
func SingleRange(column string, r enclave.EncRange) Filter {
	return Filter{Column: column, Ranges: []enclave.EncRange{r}}
}

// Query is a decomposed single-table query: conjunctive range filters plus a
// projection list (paper Fig. 5 step 6 output).
type Query struct {
	Table   string
	Filters []Filter
	// Project lists the columns to render. Empty means all columns in
	// schema order.
	Project []string
	// CountOnly suppresses result rendering and returns only the match
	// count (the paper notes counts are straightforward on top of range
	// search).
	CountOnly bool
}

// ResultColumn is one rendered output column: ciphertext cells for encrypted
// columns (step 12: eC = (eD_j | j = AV_i, i in rid)), plaintext cells for
// plain columns.
type ResultColumn struct {
	Table  string
	Column string
	Cells  [][]byte
}

// Result is the provider-side query result returned to the proxy.
type Result struct {
	RecordIDs []uint32
	Columns   []ResultColumn
	Count     int
}

// Select evaluates a query: each filter runs the two-phase search on its
// column (dictionary search in the enclave, attribute vector search in the
// untrusted realm), the per-filter RecordID lists are intersected, validity
// is applied, and the projected columns are rendered (paper Fig. 5 steps
// 6-13).
func (db *DB) Select(q Query) (*Result, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[q.Table]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchTable, q.Table)
	}
	if err := t.ready(); err != nil {
		return nil, err
	}

	rids, err := db.matchRows(t, q.Filters)
	if err != nil {
		return nil, err
	}
	rids = t.filterValid(rids)

	res := &Result{RecordIDs: rids, Count: len(rids)}
	if q.CountOnly {
		return res, nil
	}
	project := q.Project
	if len(project) == 0 {
		for _, def := range t.schema.Columns {
			project = append(project, def.Name)
		}
	}
	for _, name := range project {
		c, ok := t.cols[name]
		if !ok {
			return nil, fmt.Errorf("%w: %q.%q", ErrNoSuchColumn, q.Table, name)
		}
		res.Columns = append(res.Columns, ResultColumn{
			Table:  q.Table,
			Column: name,
			Cells:  t.render(c, rids),
		})
	}
	return res, nil
}

// matchRows evaluates the conjunction of all filters and returns the
// ascending RecordID list. With no filters, all rows match.
func (db *DB) matchRows(t *table, filters []Filter) ([]uint32, error) {
	if len(filters) == 0 {
		all := make([]uint32, t.mainRows+t.deltaRows)
		for i := range all {
			all[i] = uint32(i)
		}
		return all, nil
	}
	var acc []uint32
	for i, f := range db.planFilters(t, filters) {
		rids, err := db.filterRows(t, f)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			acc = rids
		} else {
			acc = intersectSorted(acc, rids)
		}
		if len(acc) == 0 {
			return nil, nil
		}
	}
	return acc, nil
}

// planFilters is the query optimizer of the pipeline (paper Fig. 5 step 6:
// "the query optimizer selects a query plan"): filters are evaluated
// cheapest dictionary search first, so an empty intermediate result
// short-circuits the expensive linear scans of unsorted dictionaries.
// Filters on unknown columns keep their position and fail in filterRows
// with a proper error.
func (db *DB) planFilters(t *table, filters []Filter) []Filter {
	if !db.opts.reorder || len(filters) < 2 {
		return filters
	}
	cost := func(f Filter) int {
		c, ok := t.cols[f.Column]
		if !ok {
			return 0 // surface ErrNoSuchColumn first
		}
		// Delta stores always scan linearly but are small by design.
		perRange := c.delta.Len()
		if c.def.Kind.Order() == dict.OrderUnsorted {
			perRange += c.main.Len()
		} else {
			perRange += bitsLen(c.main.Len())
		}
		return perRange * len(f.Ranges)
	}
	out := append([]Filter(nil), filters...)
	sort.SliceStable(out, func(a, b int) bool { return cost(out[a]) < cost(out[b]) })
	return out
}

// bitsLen approximates log2(n)+1 for plan costing.
func bitsLen(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}

// filterRows runs one filter against the main store and the delta store and
// concatenates the RecordID lists (delta RecordIDs are offset by the main
// row count). The paper's delta-store design executes every read query on
// both stores and merges the results (§4.3). Multi-range filters (IN-lists)
// take the union of the per-range results.
func (db *DB) filterRows(t *table, f Filter) ([]uint32, error) {
	c, ok := t.cols[f.Column]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchColumn, f.Column)
	}
	var acc []uint32
	for i, rng := range f.Ranges {
		rids, err := db.searchMain(c, rng)
		if err != nil {
			return nil, err
		}
		deltaRids, err := db.searchDelta(c, rng)
		if err != nil {
			return nil, err
		}
		for _, r := range deltaRids {
			rids = append(rids, r+uint32(t.mainRows))
		}
		if i == 0 {
			acc = rids
		} else {
			acc = unionSorted(acc, rids)
		}
	}
	return acc, nil
}

// searchMain performs the two-phase search on the main store.
func (db *DB) searchMain(c *column, q enclave.EncRange) ([]uint32, error) {
	s := c.main
	if s.Rows() == 0 {
		return nil, nil
	}
	if c.def.Plain {
		return db.plainSearch(c.def, s, s.EncRndOffset, s.AV, q)
	}
	meta := db.columnMeta(c)
	res, err := db.encl.DictSearch(meta, s, s.EncRndOffset, q)
	if err != nil {
		return nil, err
	}
	if c.def.Kind.Order() == dict.OrderUnsorted {
		return search.AttrVectList(s.AV, res.IDs, s.Len(), db.opts.avMode, db.opts.workers), nil
	}
	return search.AttrVectRanges(s.AV, res.Ranges, db.opts.workers), nil
}

// searchDelta performs the search on the write-optimized delta store, which
// always uses ED9 semantics (unsorted, frequency hiding; paper §4.3).
func (db *DB) searchDelta(c *column, q enclave.EncRange) ([]uint32, error) {
	d := c.delta
	if d.Len() == 0 {
		return nil, nil
	}
	if c.def.Plain {
		pq, err := plainRange(c.def, q)
		if err != nil {
			return nil, err
		}
		ids, err := search.UnsortedDict(d, search.PlainDecryptor{}, pq)
		if err != nil {
			return nil, err
		}
		return search.AttrVectList(d.av(), ids, d.Len(), db.opts.avMode, db.opts.workers), nil
	}
	meta := db.columnMeta(c)
	meta.Kind = dict.ED9
	res, err := db.encl.DictSearch(meta, d, nil, q)
	if err != nil {
		return nil, err
	}
	return search.AttrVectList(d.av(), res.IDs, d.Len(), db.opts.avMode, db.opts.workers), nil
}

// plainSearch runs the PlainDBDB search path: identical algorithms, no
// enclave, plaintext bounds.
func (db *DB) plainSearch(def ColumnDef, region search.Region, rotOffset []byte, av []uint32, q enclave.EncRange) ([]uint32, error) {
	pq, err := plainRange(def, q)
	if err != nil {
		return nil, err
	}
	dec := search.PlainDecryptor{}
	switch def.Kind.Order() {
	case dict.OrderSorted:
		vr, ok, err := search.SortedDict(region, dec, pq)
		if err != nil || !ok {
			return nil, err
		}
		return search.AttrVectRanges(av, []search.VidRange{vr}, db.opts.workers), nil
	case dict.OrderRotated:
		if _, err := dict.DecodeRotOffset(rotOffset); err != nil {
			return nil, err
		}
		enc, err := ordenc.NewEncoder(def.MaxLen)
		if err != nil {
			return nil, err
		}
		ranges, err := search.RotatedDict(region, dec, enc, pq)
		if err != nil {
			return nil, err
		}
		return search.AttrVectRanges(av, ranges, db.opts.workers), nil
	default:
		ids, err := search.UnsortedDict(region, dec, pq)
		if err != nil {
			return nil, err
		}
		return search.AttrVectList(av, ids, region.Len(), db.opts.avMode, db.opts.workers), nil
	}
}

// plainRange validates and converts a plaintext-bound filter. Bounds follow
// the same rules as column values (length limit, no NUL bytes) so the
// rotated search's order encoding stays consistent with plaintext order.
func plainRange(def ColumnDef, q enclave.EncRange) (search.Range, error) {
	for _, b := range [][]byte{q.Start, q.End} {
		if len(b) > def.MaxLen {
			return search.Range{}, fmt.Errorf("engine: bound %q exceeds column width %d", b, def.MaxLen)
		}
		for _, ch := range b {
			if ch == 0 {
				return search.Range{}, fmt.Errorf("engine: bound contains NUL byte")
			}
		}
	}
	return search.Range{Start: q.Start, End: q.End, StartIncl: q.StartIncl, EndIncl: q.EndIncl}, nil
}

// columnMeta builds the enclave metadata for a column (paper Fig. 5 step 7).
func (db *DB) columnMeta(c *column) enclave.ColumnMeta {
	return enclave.ColumnMeta{
		Table:  c.table,
		Column: c.def.Name,
		Kind:   c.def.Kind,
		MaxLen: c.def.MaxLen,
	}
}

// filterValid drops RecordIDs whose validity flag is cleared (deleted rows).
func (t *table) filterValid(rids []uint32) []uint32 {
	out := rids[:0]
	for _, r := range rids {
		if int(r) < t.mainRows {
			if t.mainValid[r] {
				out = append(out, r)
			}
			continue
		}
		if t.deltaValid[int(r)-t.mainRows] {
			out = append(out, r)
		}
	}
	return out
}

// render reconstructs the projected cells for the matched rows by undoing
// the split: cell = D[AV[rid]] (paper Fig. 5 step 12). Cells remain
// ciphertexts for encrypted columns.
func (t *table) render(c *column, rids []uint32) [][]byte {
	cells := make([][]byte, len(rids))
	for i, r := range rids {
		if int(r) < t.mainRows {
			cells[i] = c.main.Entry(int(c.main.AV[r]))
			continue
		}
		cells[i] = c.delta.entry(int(r) - t.mainRows)
	}
	return cells
}

// unionSorted merges two ascending RecordID lists, dropping duplicates.
func unionSorted(a, b []uint32) []uint32 {
	out := make([]uint32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// intersectSorted intersects two ascending RecordID lists.
func intersectSorted(a, b []uint32) []uint32 {
	var out []uint32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
