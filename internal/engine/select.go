package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/ordenc"
	"github.com/encdbdb/encdbdb/internal/ridset"
	"github.com/encdbdb/encdbdb/internal/search"
)

// Filter is one encrypted predicate on a column: the union (OR) of one or
// more two-sided ranges. Plain equality and range predicates carry exactly
// one range; IN-lists carry one equality range per member. For encrypted
// columns the bounds are PAE ciphertexts produced by the proxy; for plain
// columns they are raw plaintext bounds. The proxy has already normalized
// every filter type into this uniform shape (paper §4.2 step 5).
type Filter struct {
	Column string
	Ranges []enclave.EncRange
}

// SingleRange builds the common one-range filter.
func SingleRange(column string, r enclave.EncRange) Filter {
	return Filter{Column: column, Ranges: []enclave.EncRange{r}}
}

// Query is a decomposed single-table query: conjunctive range filters plus a
// projection list (paper Fig. 5 step 6 output).
type Query struct {
	Table   string
	Filters []Filter
	// Project lists the columns to render. Empty means all columns in
	// schema order.
	Project []string
	// CountOnly suppresses result rendering and returns only the match
	// count (the paper notes counts are straightforward on top of range
	// search).
	CountOnly bool
	// Limit caps the result at the first Limit matching rows in RecordID
	// order (0 = unlimited). The engine stops scanning delta regions once
	// the main store alone satisfies the cap, and the streaming cursor never
	// renders rows past it. Ignored for CountOnly queries: a count reports
	// the full match cardinality.
	Limit int
}

// ResultColumn is one rendered output column: ciphertext cells for encrypted
// columns (step 12: eC = (eD_j | j = AV_i, i in rid)), plaintext cells for
// plain columns.
type ResultColumn struct {
	Table  string
	Column string
	Cells  [][]byte
}

// Result is the provider-side query result returned to the proxy.
type Result struct {
	RecordIDs []uint32
	Columns   []ResultColumn
	Count     int
}

// Select evaluates a query: each filter runs the two-phase search on its
// column (dictionary search in the enclave, attribute vector search in the
// untrusted realm), the per-filter RecordID sets are intersected, validity
// is applied, and the projected columns are rendered (paper Fig. 5 steps
// 6-13). The table is locked only for the brief version pin; the search and
// rendering run lock-free against the pinned version, so a long scan never
// blocks writers or an in-flight background merge — and vice versa.
//
// The context is honored between scan chunks: cancelling it mid-scan
// abandons the remaining per-filter searches and rendering and returns
// ctx.Err(). SelectStream is the chunked variant that streams the rendered
// rows instead of materializing them.
func (db *DB) Select(ctx context.Context, q Query) (*Result, error) {
	v, rids, err := db.selectMatch(ctx, q)
	if err != nil {
		return nil, err
	}
	res := &Result{RecordIDs: rids, Count: len(rids)}
	if q.CountOnly {
		return res, nil
	}
	project, err := v.project(q)
	if err != nil {
		return nil, err
	}
	for _, name := range project {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		res.Columns = append(res.Columns, ResultColumn{
			Table:  q.Table,
			Column: name,
			Cells:  v.render(v.cols[name], rids),
		})
	}
	return res, nil
}

// selectMatch runs the filter phase of a query: pin a version, evaluate the
// conjunction, apply validity. It returns the pinned version and the matching
// RecordIDs, shared by Select and SelectStream.
func (db *DB) selectMatch(ctx context.Context, q Query) (*version, []uint32, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, nil, err
	}
	t, err := db.lookup(q.Table)
	if err != nil {
		return nil, nil, err
	}
	v, err := t.pin()
	if err != nil {
		return nil, nil, err
	}
	db.metrics.selectPinned(v.rows())
	limit := q.Limit
	if q.CountOnly {
		limit = 0
	}
	match, err := db.matchValid(ctx, v, q.Filters, limit)
	if err != nil {
		return nil, nil, err
	}
	rids := match.Slice()
	// LIMIT pushdown: the match set is in RecordID order, so the first Limit
	// entries are exactly the rows a client-side cutoff would keep — rendering
	// (and for the fused path, delta scanning) never touches the rest.
	if limit > 0 && len(rids) > limit {
		rids = rids[:limit]
	}
	return v, rids, nil
}

// project resolves a query's projection list against the pinned version:
// empty means all columns in schema order. Every returned name is verified to
// exist, so later render calls cannot fail.
func (v *version) project(q Query) ([]string, error) {
	project := q.Project
	if len(project) == 0 {
		project = make([]string, 0, len(v.cols))
		for _, def := range v.schema.Columns {
			project = append(project, def.Name)
		}
	}
	for _, name := range project {
		if _, ok := v.cols[name]; !ok {
			return nil, fmt.Errorf("%w: %q.%q", ErrNoSuchColumn, q.Table, name)
		}
	}
	return project, nil
}

// ctxErr reports a context's cancellation state without blocking — the check
// the scan loops run between chunks.
func ctxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

// matchRows evaluates the conjunction of all filters as a bitmap over the
// pinned version's RecordID universe. With no filters, all rows match.
//
// The cheapest filter (per planFilters) always runs first and alone: if it
// matches nothing the conjunction is empty and the expensive searches never
// run — the short-circuit the optimizer's ordering exists for. Otherwise the
// remaining filters fan out across workers (paper §4.2 places the attribute
// vector phase in the untrusted realm precisely so it can use all the
// parallelism of the column store), the per-filter scan parallelism is
// divided among them so total parallelism stays bounded by workers, and
// their sets are folded in planned order with the same per-filter
// error/empty short-circuit the sequential loop applies — so outcomes
// (results *and* errors) are identical regardless of worker count; the
// parallel path merely wastes the searches the sequential one would have
// skipped.
func (db *DB) matchRows(ctx context.Context, v *version, filters []Filter) (*ridset.Set, error) {
	n := v.rows()
	if len(filters) == 0 {
		return ridset.Full(n), nil
	}
	planned := db.planFilters(v, filters)
	acc, err := db.filterRows(ctx, v, planned[0], db.opts.workers)
	if err != nil {
		return nil, err
	}
	rest := planned[1:]
	if len(rest) == 0 || acc.Empty() {
		return acc, nil
	}

	workers := db.opts.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		for _, f := range rest {
			set, err := db.filterRows(ctx, v, f, 1)
			if err != nil {
				return nil, err
			}
			acc.IntersectWith(set)
			if acc.Empty() {
				return acc, nil
			}
		}
		return acc, nil
	}

	total := workers
	if workers > len(rest) {
		workers = len(rest)
	}
	scanWorkers := total / workers
	if scanWorkers < 1 {
		scanWorkers = 1
	}
	sets := make([]*ridset.Set, len(rest))
	errs := make([]error, len(rest))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				sets[i], errs[i] = db.filterRows(ctx, v, rest[i], scanWorkers)
			}
		}()
	}
	for i := range rest {
		next <- i
	}
	close(next)
	wg.Wait()
	// Fold in planned order with the sequential loop's exact semantics: an
	// error surfaces only if every earlier filter succeeded and kept the
	// conjunction non-empty, so workers>1 cannot change a query's outcome.
	for i := range rest {
		if errs[i] != nil {
			return nil, errs[i]
		}
		acc.IntersectWith(sets[i])
		if acc.Empty() {
			return acc, nil
		}
	}
	return acc, nil
}

// planFilters is the query optimizer of the pipeline (paper Fig. 5 step 6:
// "the query optimizer selects a query plan"): filters are evaluated
// cheapest dictionary search first, so an empty intermediate result
// short-circuits the expensive linear scans of unsorted dictionaries.
// Filters on unknown columns keep their position and fail in filterRows
// with a proper error.
func (db *DB) planFilters(v *version, filters []Filter) []Filter {
	if !db.opts.reorder || len(filters) < 2 {
		return filters
	}
	cost := func(f Filter) int {
		cv, ok := v.cols[f.Column]
		if !ok {
			return 0 // surface ErrNoSuchColumn first
		}
		// Delta runs always scan linearly but are small by design.
		perRange := cv.sealedRows + cv.tail.Len()
		if cv.def.Kind.Order() == dict.OrderUnsorted {
			perRange += cv.main.Len()
		} else {
			perRange += bitsLen(cv.main.Len())
		}
		return perRange * len(f.Ranges)
	}
	out := append([]Filter(nil), filters...)
	sort.SliceStable(out, func(a, b int) bool { return cost(out[a]) < cost(out[b]) })
	return out
}

// bitsLen approximates log2(n)+1 for plan costing.
func bitsLen(n int) int {
	b := 0
	for n > 0 {
		b++
		n >>= 1
	}
	return b
}

// filterRows runs one filter against the main store and the delta chain and
// merges the RecordID sets (delta RecordIDs are offset by the main row
// count). The paper's delta-store design executes every read query on both
// stores and merges the results (§4.3). Multi-range filters (IN-lists) OR
// the per-range sets into the same bitmap. scanWorkers bounds the attribute
// vector scan parallelism for this filter — matchRows splits the total
// worker budget among concurrently evaluated filters. The context is checked
// between per-range scan chunks, so a cancelled query stops before the next
// dictionary search or attribute-vector scan starts.
func (db *DB) filterRows(ctx context.Context, v *version, f Filter, scanWorkers int) (*ridset.Set, error) {
	cv, ok := v.cols[f.Column]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchColumn, f.Column)
	}
	acc := ridset.New(v.rows())
	for _, rng := range f.Ranges {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		main, err := db.searchMain(cv, rng, scanWorkers)
		if err != nil {
			return nil, err
		}
		if main != nil {
			acc.UnionWith(main)
		}
		if err := db.searchDelta(ctx, acc, v, cv, rng, scanWorkers); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// searchMain performs the two-phase search on the main store, emitting a
// bitmap over the main store's RecordIDs: the dictionary search runs inside
// the enclave (or locally for plain columns), then the attribute-vector
// scan evaluates its result in the untrusted realm.
func (db *DB) searchMain(cv *colVersion, q enclave.EncRange, scanWorkers int) (*ridset.Set, error) {
	s := cv.main
	if s.Rows() == 0 {
		return nil, nil
	}
	res, err := db.mainDictSearch(cv, q)
	if err != nil {
		return nil, err
	}
	return db.scanMainAV(s, res, scanWorkers), nil
}

// scanMainAV runs the attribute-vector phase on the main store. The default
// path hands the dictionary-search result to the bit-packed SWAR kernels,
// which replaced the per-element match-closure scan for the common range
// case; WithPackedScan(false) keeps the original []uint32 entry points live
// for the baseline and ablations.
func (db *DB) scanMainAV(s *dict.Split, res enclave.SearchResult, scanWorkers int) *ridset.Set {
	if s.Kind.Order() == dict.OrderUnsorted {
		if db.opts.packedScan {
			return search.AttrVectListPackedSet(s.Packed(), res.IDs, scanWorkers)
		}
		return search.AttrVectListSet(s.AVCodes(), res.IDs, s.Len(), db.opts.avMode, scanWorkers)
	}
	if db.opts.packedScan {
		return search.AttrVectRangesPackedSet(s.Packed(), res.Ranges, scanWorkers)
	}
	return search.AttrVectRangesSet(s.AVCodes(), res.Ranges, scanWorkers)
}

// searchDelta performs the search on the write-optimized delta chain, which
// always uses ED9 semantics (unsorted, frequency hiding; paper §4.3), and
// ORs the matches into acc at their table-wide RecordIDs. Sealed runs answer
// the attribute-vector phase with the bit-packed membership kernel built at
// seal time; the active tail exploits its identity attribute vector
// directly — the matching ValueIDs are the matching rows — so only the
// small unsealed portion pays a per-element path.
func (db *DB) searchDelta(ctx context.Context, acc *ridset.Set, v *version, cv *colVersion, q enclave.EncRange, scanWorkers int) error {
	off := v.mainRows
	for _, run := range cv.sealed {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		ids, err := db.deltaDictSearch(cv, run, q)
		if err != nil {
			return err
		}
		if len(ids) > 0 {
			var set *ridset.Set
			if db.opts.packedScan {
				set = search.AttrVectListPackedSet(run.packed, ids, scanWorkers)
			} else {
				set = search.AttrVectListSet(run.identCodes(), ids, run.rows(), db.opts.avMode, scanWorkers)
			}
			acc.OrShifted(set, off)
		}
		off += run.rows()
	}
	if cv.tail.Len() == 0 {
		return nil
	}
	ids, err := db.deltaDictSearch(cv, cv.tail, q)
	if err != nil {
		return err
	}
	for _, id := range ids {
		acc.Add(uint32(off + int(id)))
	}
	return nil
}

// deltaDictSearch runs the dictionary-search phase on one delta region
// under ED9 semantics, returning the matching ValueIDs.
func (db *DB) deltaDictSearch(cv *colVersion, region search.Region, q enclave.EncRange) ([]uint32, error) {
	if cv.def.Plain {
		pq, err := plainRange(cv.def, q)
		if err != nil {
			return nil, err
		}
		return search.UnsortedDict(region, search.PlainDecryptor{}, pq)
	}
	meta := db.columnMetaVersion(cv)
	meta.Kind = dict.ED9
	res, err := db.encl.DictSearch(meta, region, nil, q)
	if err != nil {
		return nil, err
	}
	return res.IDs, nil
}

// plainDictSearch runs the PlainDBDB dictionary-search phase: identical
// algorithms, no enclave, plaintext bounds. The result feeds the same
// attribute-vector scan as the encrypted path.
func (db *DB) plainDictSearch(def ColumnDef, region search.Region, rotOffset []byte, q enclave.EncRange) (enclave.SearchResult, error) {
	pq, err := plainRange(def, q)
	if err != nil {
		return enclave.SearchResult{}, err
	}
	dec := search.PlainDecryptor{}
	switch def.Kind.Order() {
	case dict.OrderSorted:
		vr, ok, err := search.SortedDict(region, dec, pq)
		if err != nil || !ok {
			return enclave.SearchResult{}, err
		}
		return enclave.SearchResult{Ranges: []search.VidRange{vr}}, nil
	case dict.OrderRotated:
		if _, err := dict.DecodeRotOffset(rotOffset); err != nil {
			return enclave.SearchResult{}, err
		}
		enc, err := ordenc.NewEncoder(def.MaxLen)
		if err != nil {
			return enclave.SearchResult{}, err
		}
		ranges, err := search.RotatedDict(region, dec, enc, pq)
		if err != nil {
			return enclave.SearchResult{}, err
		}
		return enclave.SearchResult{Ranges: ranges}, nil
	default:
		ids, err := search.UnsortedDict(region, dec, pq)
		if err != nil {
			return enclave.SearchResult{}, err
		}
		return enclave.SearchResult{IDs: ids}, nil
	}
}

// plainRange validates and converts a plaintext-bound filter. Bounds follow
// the same rules as column values (length limit, no NUL bytes) so the
// rotated search's order encoding stays consistent with plaintext order.
func plainRange(def ColumnDef, q enclave.EncRange) (search.Range, error) {
	for _, b := range [][]byte{q.Start, q.End} {
		if len(b) > def.MaxLen {
			return search.Range{}, fmt.Errorf("engine: bound %q exceeds column width %d", b, def.MaxLen)
		}
		for _, ch := range b {
			if ch == 0 {
				return search.Range{}, fmt.Errorf("engine: bound contains NUL byte")
			}
		}
	}
	return search.Range{Start: q.Start, End: q.End, StartIncl: q.StartIncl, EndIncl: q.EndIncl}, nil
}

// columnMeta builds the enclave metadata for a column (paper Fig. 5 step 7).
func (db *DB) columnMeta(c *column) enclave.ColumnMeta {
	return enclave.ColumnMeta{
		Table:  c.table,
		Column: c.def.Name,
		Kind:   c.def.Kind,
		MaxLen: c.def.MaxLen,
	}
}

// columnMetaVersion is columnMeta for a pinned column version.
func (db *DB) columnMetaVersion(cv *colVersion) enclave.ColumnMeta {
	return enclave.ColumnMeta{
		Table:  cv.table,
		Column: cv.def.Name,
		Kind:   cv.def.Kind,
		MaxLen: cv.def.MaxLen,
	}
}
