package engine_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/search"
)

// TestPackedScanMatchesUnpackedQueries runs the same encrypted query sweep
// against two databases sharing one enclave and identical splits — one on
// the default bit-packed SWAR scan path, one forced onto the legacy
// []uint32 path — and requires identical RecordID sets for every kind and
// query. This pins the engine-level wiring of the kernels, on top of the
// kernel-level properties in internal/av and internal/search.
func TestPackedScanMatchesUnpackedQueries(t *testing.T) {
	packed := newEnv(t)
	legacy := &env{
		db:     engine.New(packed.db.Enclave(), engine.WithPackedScan(false), engine.WithAVMode(search.AVBitset)),
		master: packed.master,
	}

	rng := rand.New(rand.NewSource(99))
	var col [][]byte
	for i := 0; i < 500; i++ {
		col = append(col, []byte(fmt.Sprintf("v%03d", rng.Intn(40))))
	}
	for _, kind := range []dict.Kind{dict.ED1, dict.ED2, dict.ED3, dict.ED5, dict.ED7, dict.ED9} {
		table := fmt.Sprintf("pk%d", int(kind))
		def := engine.ColumnDef{Name: "c", Kind: kind, MaxLen: 8, BSMax: 3}
		for _, v := range []*env{packed, legacy} {
			if err := v.db.CreateTable(engine.Schema{Table: table, Columns: []engine.ColumnDef{def}}); err != nil {
				t.Fatal(err)
			}
			// loadColumn's fixed build seed makes both splits identical.
			v.loadColumn(t, table, def, col)
		}
		for trial := 0; trial < 12; trial++ {
			a := fmt.Sprintf("v%03d", rng.Intn(45))
			b := fmt.Sprintf("v%03d", rng.Intn(45))
			if a > b {
				a, b = b, a
			}
			q := search.Range{Start: []byte(a), End: []byte(b), StartIncl: trial%2 == 0, EndIncl: trial%3 != 0}
			f := packed.filter(t, table, def, q)
			resP, err := packed.db.Select(context.Background(), engine.Query{Table: table, Filters: []engine.Filter{f}})
			if err != nil {
				t.Fatalf("%v packed select: %v", kind, err)
			}
			resL, err := legacy.db.Select(context.Background(), engine.Query{Table: table, Filters: []engine.Filter{f}})
			if err != nil {
				t.Fatalf("%v legacy select: %v", kind, err)
			}
			if !reflect.DeepEqual(resP.RecordIDs, resL.RecordIDs) {
				t.Fatalf("%v query [%s,%s]: packed %v != legacy %v",
					kind, a, b, resP.RecordIDs, resL.RecordIDs)
			}
		}
	}
}
