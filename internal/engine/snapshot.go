package engine

import (
	"fmt"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/ridset"
)

// ColumnSnapshot is the serializable state of one column store. Delta is the
// flattened delta chain — sealed runs in order followed by the active tail —
// in RecordID order; the sealed/tail boundary is a runtime performance
// detail and is not persisted.
type ColumnSnapshot struct {
	Name  string
	Main  dict.SplitData
	Delta [][]byte
}

// TableSnapshot is the serializable state of one table: schema, validity
// vectors and all column stores. The storage package persists it to disk
// (the paper's in-memory database uses disk as secondary storage for
// persistency, §2.1); the wire package ships it for bulk deployment. The
// validity vectors keep their []bool wire shape even though the engine
// tracks validity as a bitmap, so existing snapshots stay readable.
type TableSnapshot struct {
	Schema     Schema
	MainValid  []bool
	DeltaValid []bool
	Columns    []ColumnSnapshot
}

// Snapshot captures the full state of a table. It pins a version like a
// query does, so an in-flight background merge or concurrent writers never
// block it — the snapshot is consistent as of the pin.
func (db *DB) Snapshot(tableName string) (*TableSnapshot, error) {
	t, err := db.lookup(tableName)
	if err != nil {
		return nil, err
	}
	t.mu.RLock()
	v := t.versionLocked()
	t.mu.RUnlock()
	snap := &TableSnapshot{
		Schema:     t.schema,
		MainValid:  validBools(v.valid, 0, v.mainRows),
		DeltaValid: validBools(v.valid, v.mainRows, v.deltaRows),
	}
	for _, def := range t.schema.Columns {
		cv := v.cols[def.Name]
		cs := ColumnSnapshot{Name: def.Name, Main: cv.main.Data()}
		for _, run := range cv.sealed {
			cs.Delta = append(cs.Delta, run.entries...)
		}
		cs.Delta = append(cs.Delta, cv.tail...)
		snap.Columns = append(snap.Columns, cs)
	}
	return snap, nil
}

// Restore installs a snapshot as a new table. The table must not exist.
// With a commit log installed, the restore is made durable by cutting a
// checkpoint image of the snapshot (no per-row records are logged); the
// restore is acknowledged only once the image is on disk, and a failed
// checkpoint rolls the in-memory table back out.
func (db *DB) Restore(snap *TableSnapshot) error {
	if err := snap.Schema.Validate(); err != nil {
		return err
	}
	if len(snap.Columns) != len(snap.Schema.Columns) {
		return fmt.Errorf("engine: snapshot has %d column stores for %d schema columns",
			len(snap.Columns), len(snap.Schema.Columns))
	}
	endGate := db.gateCheckpoint(snap.Schema.Table)
	defer endGate()
	if err := db.createTable(snap.Schema, false); err != nil {
		return err
	}
	restore := func() error {
		t, err := db.lookup(snap.Schema.Table)
		if err != nil {
			return err
		}
		t.mu.Lock()
		defer t.mu.Unlock()
		mainRows := -1
		for _, cs := range snap.Columns {
			c, ok := t.cols[cs.Name]
			if !ok {
				return fmt.Errorf("%w: %q", ErrNoSuchColumn, cs.Name)
			}
			s, err := dict.FromData(cs.Main)
			if err != nil {
				return fmt.Errorf("engine: restore %q: %w", cs.Name, err)
			}
			if s.Kind != c.def.Kind || s.Plain != c.def.Plain {
				return fmt.Errorf("engine: restore %q: split kind mismatch", cs.Name)
			}
			if mainRows >= 0 && s.Rows() != mainRows {
				return fmt.Errorf("%w: %q", ErrRowMismatch, cs.Name)
			}
			mainRows = s.Rows()
			c.main = s
			c.imported = s.Rows() > 0
			for _, e := range cs.Delta {
				c.tail.append(e)
			}
			if len(cs.Delta) != len(snap.DeltaValid) {
				return fmt.Errorf("engine: restore %q: %d delta rows, %d validity flags",
					cs.Name, len(cs.Delta), len(snap.DeltaValid))
			}
		}
		if mainRows != len(snap.MainValid) {
			return fmt.Errorf("engine: snapshot has %d main rows but %d validity flags",
				mainRows, len(snap.MainValid))
		}
		t.mainRows = mainRows
		t.deltaRows = len(snap.DeltaValid)
		valid := ridset.New(mainRows + t.deltaRows)
		for i, ok := range snap.MainValid {
			if ok {
				valid.Add(uint32(i))
			}
		}
		for i, ok := range snap.DeltaValid {
			if ok {
				valid.Add(uint32(mainRows + i))
			}
		}
		t.valid = valid
		// A restored delta beyond the seal threshold gets its packed runs
		// immediately, exactly as if the rows had arrived through inserts.
		t.sealTailLocked(db.opts.sealRows)
		return nil
	}
	if err := restore(); err != nil {
		// Leave no half-restored table behind.
		_ = db.dropTable(snap.Schema.Table, false)
		return err
	}
	if db.cl != nil {
		if err := db.cl.Checkpoint(snap.Schema.Table, 0, snap); err != nil {
			_ = db.dropTable(snap.Schema.Table, false)
			return fmt.Errorf("engine: restore %q: checkpoint: %w", snap.Schema.Table, err)
		}
	}
	return nil
}
