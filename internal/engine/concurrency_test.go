package engine_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/search"
)

// TestConcurrentReadersAndWriters exercises the engine under parallel
// selects, inserts, deletes and merges. Run with -race to validate the
// locking discipline; assertions check only invariants that hold under any
// interleaving.
func TestConcurrentReadersAndWriters(t *testing.T) {
	v := newEnv(t)
	def := engine.ColumnDef{Name: "c", Kind: dict.ED5, MaxLen: 8, BSMax: 3}
	if err := v.db.CreateTable(engine.Schema{Table: "cc", Columns: []engine.ColumnDef{def}}); err != nil {
		t.Fatal(err)
	}
	var seedRows [][]byte
	for i := 0; i < 50; i++ {
		seedRows = append(seedRows, []byte(fmt.Sprintf("v%03d", i%10)))
	}
	v.loadColumn(t, "cc", def, seedRows)

	const (
		readers = 3
		writers = 2
		rounds  = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers+1)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				q := search.Eq([]byte(fmt.Sprintf("v%03d", i%10)))
				f := v.filter(t, "cc", def, q)
				if _, err := v.db.Select(context.Background(), engine.Query{Table: "cc", Filters: []engine.Filter{f}, CountOnly: true}); err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				val := fmt.Sprintf("w%d_%03d", w, i)
				if err := v.db.Insert(context.Background(), "cc", engine.Row{"c": v.encryptValue(t, "cc", "c", val)}); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := v.db.Merge(context.Background(), "cc"); err != nil {
				errs <- fmt.Errorf("merger: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// All writes must be present afterwards.
	res, err := v.db.Select(context.Background(), engine.Query{Table: "cc", CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	want := len(seedRows) + writers*rounds
	if res.Count != want {
		t.Errorf("final count = %d, want %d", res.Count, want)
	}
}

// TestConcurrentDeleteUpdateMerge interleaves the write operations whose
// match/mutate sequences must be atomic against merges: every update
// preserves the row count, every delete removes exactly the rows it
// reported.
func TestConcurrentDeleteUpdateMerge(t *testing.T) {
	v := newEnv(t)
	def := engine.ColumnDef{Name: "c", Kind: dict.ED1, MaxLen: 12}
	if err := v.db.CreateTable(engine.Schema{Table: "dm", Columns: []engine.ColumnDef{def}}); err != nil {
		t.Fatal(err)
	}
	var seedRows [][]byte
	for i := 0; i < 60; i++ {
		seedRows = append(seedRows, []byte(fmt.Sprintf("keep%03d", i)))
	}
	v.loadColumn(t, "dm", def, seedRows)

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		deleted int
	)
	errs := make(chan error, 8)
	// Updaters rewrite values (count-preserving).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				f := v.filter(t, "dm", def, search.Eq([]byte(fmt.Sprintf("keep%03d", w*10+i))))
				set := engine.Row{"c": v.encryptValue(t, "dm", "c", fmt.Sprintf("upd%d_%03d", w, i))}
				if _, err := v.db.Update(context.Background(), "dm", []engine.Filter{f}, set); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// A deleter removes a disjoint value range and tallies removals.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 40; i < 50; i++ {
			f := v.filter(t, "dm", def, search.Eq([]byte(fmt.Sprintf("keep%03d", i))))
			n, err := v.db.Delete(context.Background(), "dm", []engine.Filter{f})
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			deleted += n
			mu.Unlock()
		}
	}()
	// A merger runs throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := v.db.Merge(context.Background(), "dm"); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res, err := v.db.Select(context.Background(), engine.Query{Table: "dm", CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	want := len(seedRows) - deleted
	mu.Unlock()
	if res.Count != want {
		t.Errorf("final count = %d, want %d (updates preserve, deletes removed %d)",
			res.Count, want, deleted)
	}
	if deleted != 10 {
		t.Errorf("deleted = %d, want 10", deleted)
	}
}

// TestConcurrentCrossTableStress drives simultaneous Select, Insert, and
// Merge traffic where every goroutine targets a *different* table: with
// per-table locking none of them contend, and -race validates that the
// registry/table lock split leaves no unsynchronized state. A roaming reader
// additionally selects from every table to cross goroutine/table pairs.
func TestConcurrentCrossTableStress(t *testing.T) {
	v := newEnv(t)
	const tables = 4
	def := engine.ColumnDef{Name: "c", Kind: dict.ED5, MaxLen: 10, BSMax: 3}
	for i := 0; i < tables; i++ {
		name := fmt.Sprintf("x%d", i)
		if err := v.db.CreateTable(engine.Schema{Table: name, Columns: []engine.ColumnDef{def}}); err != nil {
			t.Fatal(err)
		}
		var rows [][]byte
		for j := 0; j < 30; j++ {
			rows = append(rows, []byte(fmt.Sprintf("v%03d", j%6)))
		}
		v.loadColumn(t, name, def, rows)
	}

	const rounds = 15
	var wg sync.WaitGroup
	errs := make(chan error, 3*tables+1)
	for i := 0; i < tables; i++ {
		name := fmt.Sprintf("x%d", i)
		// One selector per table.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				f := v.filter(t, name, def, search.Eq([]byte(fmt.Sprintf("v%03d", j%6))))
				if _, err := v.db.Select(context.Background(), engine.Query{Table: name, Filters: []engine.Filter{f}}); err != nil {
					errs <- fmt.Errorf("select %s: %w", name, err)
					return
				}
			}
		}()
		// One inserter per table.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				row := engine.Row{"c": v.encryptValue(t, name, "c", fmt.Sprintf("i%d_%02d", i, j))}
				if err := v.db.Insert(context.Background(), name, row); err != nil {
					errs <- fmt.Errorf("insert %s: %w", name, err)
					return
				}
			}
		}(i)
		// One merger per table.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				if err := v.db.Merge(context.Background(), name); err != nil {
					errs <- fmt.Errorf("merge %s: %w", name, err)
					return
				}
			}
		}()
	}
	// A roaming reader hits every table.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < rounds*tables; j++ {
			name := fmt.Sprintf("x%d", j%tables)
			if _, err := v.db.Select(context.Background(), engine.Query{Table: name, CountOnly: true}); err != nil {
				errs <- fmt.Errorf("roam %s: %w", name, err)
				return
			}
		}
	}()
	// A stats poller hammers the enclave's boundary counters — now
	// atomics bumped lock-free by every concurrent dictionary probe —
	// while the searches above run; -race validates the counter paths,
	// and interleaved resets must never make a snapshot go backwards
	// between resets or trip anything racy.
	wg.Add(1)
	go func() {
		defer wg.Done()
		encl := v.db.Enclave()
		var prev uint64
		for j := 0; j < rounds*tables; j++ {
			s := encl.Stats()
			if s.Loads < prev {
				errs <- fmt.Errorf("stats went backwards: loads %d after %d", s.Loads, prev)
				return
			}
			prev = s.Loads
			if j%16 == 15 {
				encl.ResetStats()
				prev = 0
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Every table must hold its seed rows plus its inserter's rows.
	for i := 0; i < tables; i++ {
		name := fmt.Sprintf("x%d", i)
		res, err := v.db.Select(context.Background(), engine.Query{Table: name, CountOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		if want := 30 + rounds; res.Count != want {
			t.Errorf("table %s final count = %d, want %d", name, res.Count, want)
		}
	}
}

// TestParallelFilterEquivalence is the property test for the parallel
// conjunction path: on random multi-filter conjunctions, an engine
// evaluating filters sequentially (workers=1) and one fanning them out
// (workers=8) must return identical RecordID lists — set intersection is
// order-independent, and the bitmap emit paths must not perturb that.
func TestParallelFilterEquivalence(t *testing.T) {
	seq := newEnvWith(t, engine.WithWorkers(1))
	par := newEnvWith(t, engine.WithWorkers(8))
	rng := rand.New(rand.NewSource(99))

	defs := []engine.ColumnDef{
		{Name: "a", Kind: dict.ED1, MaxLen: 8},
		{Name: "b", Kind: dict.ED5, MaxLen: 8, BSMax: 3},
		{Name: "c", Kind: dict.ED9, MaxLen: 8},
	}
	const rows = 200
	cols := make(map[string][][]byte, len(defs))
	for _, def := range defs {
		var col [][]byte
		for i := 0; i < rows; i++ {
			col = append(col, []byte(fmt.Sprintf("%s%02d", def.Name, rng.Intn(20))))
		}
		cols[def.Name] = col
	}
	// A few delta rows so both stores participate; drawn once so both
	// engines hold identical data.
	deltaRows := make([]map[string]string, 10)
	for i := range deltaRows {
		deltaRows[i] = make(map[string]string, len(defs))
		for _, def := range defs {
			deltaRows[i][def.Name] = fmt.Sprintf("%s%02d", def.Name, rng.Intn(20))
		}
	}
	for _, v := range []*env{seq, par} {
		if err := v.db.CreateTable(engine.Schema{Table: "pf", Columns: defs}); err != nil {
			t.Fatal(err)
		}
		for _, def := range defs {
			v.loadColumn(t, "pf", def, cols[def.Name])
		}
		for _, dr := range deltaRows {
			row := engine.Row{}
			for name, val := range dr {
				row[name] = v.encryptValue(t, "pf", name, val)
			}
			if err := v.db.Insert(context.Background(), "pf", row); err != nil {
				t.Fatal(err)
			}
		}
	}

	randRange := func(def engine.ColumnDef) search.Range {
		lo, hi := rng.Intn(20), rng.Intn(20)
		if lo > hi {
			lo, hi = hi, lo
		}
		return search.Range{
			Start: []byte(fmt.Sprintf("%s%02d", def.Name, lo)), StartIncl: true,
			End: []byte(fmt.Sprintf("%s%02d", def.Name, hi)), EndIncl: true,
		}
	}
	for trial := 0; trial < 40; trial++ {
		nf := 1 + rng.Intn(3)
		ranges := make([]search.Range, 0, nf)
		picked := make([]engine.ColumnDef, 0, nf)
		for i := 0; i < nf; i++ {
			def := defs[rng.Intn(len(defs))]
			picked = append(picked, def)
			ranges = append(ranges, randRange(def))
		}
		var got [2][]uint32
		for vi, v := range []*env{seq, par} {
			filters := make([]engine.Filter, nf)
			for i := range filters {
				filters[i] = v.filter(t, "pf", picked[i], ranges[i])
			}
			res, err := v.db.Select(context.Background(), engine.Query{Table: "pf", Filters: filters, CountOnly: true})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			got[vi] = res.RecordIDs
		}
		if !reflect.DeepEqual(got[0], got[1]) {
			t.Fatalf("trial %d: sequential %v != parallel %v", trial, got[0], got[1])
		}
	}
}

// TestParallelFilterErrorConsistency pins the error semantics of the
// parallel conjunction: a filter the sequential path would never evaluate
// (because an earlier filter emptied the conjunction) must not surface an
// error from the parallel path either, and an error the sequential path
// would hit must surface identically. Reordering is disabled so the filter
// positions are fixed.
func TestParallelFilterErrorConsistency(t *testing.T) {
	for _, workers := range []int{1, 8} {
		v := newEnvWith(t, engine.WithWorkers(workers), engine.WithFilterReorder(false))
		def := engine.ColumnDef{Name: "c", Kind: dict.ED1, MaxLen: 8}
		if err := v.db.CreateTable(engine.Schema{Table: "ec", Columns: []engine.ColumnDef{def}}); err != nil {
			t.Fatal(err)
		}
		v.loadColumn(t, "ec", def, bcol("a", "b", "c"))

		matchSome := v.filter(t, "ec", def, search.Eq([]byte("a")))
		matchNone := v.filter(t, "ec", def, search.Eq([]byte("zz")))
		badColumn := engine.Filter{Column: "nosuch", Ranges: matchSome.Ranges}

		// Empty result before the bad filter: both paths return 0 rows, no error.
		res, err := v.db.Select(context.Background(), engine.Query{
			Table:     "ec",
			Filters:   []engine.Filter{matchSome, matchNone, badColumn},
			CountOnly: true,
		})
		if err != nil {
			t.Errorf("workers=%d: error surfaced past an empty conjunction: %v", workers, err)
		} else if res.Count != 0 {
			t.Errorf("workers=%d: count = %d, want 0", workers, res.Count)
		}

		// Bad filter before the conjunction empties: both paths error.
		_, err = v.db.Select(context.Background(), engine.Query{
			Table:     "ec",
			Filters:   []engine.Filter{matchSome, badColumn, matchNone},
			CountOnly: true,
		})
		if err == nil {
			t.Errorf("workers=%d: expected ErrNoSuchColumn, got nil", workers)
		}
	}
}

// TestConcurrentDistinctTables checks independent tables do not contend
// incorrectly.
func TestConcurrentDistinctTables(t *testing.T) {
	v := newEnv(t)
	const tables = 4
	for i := 0; i < tables; i++ {
		name := fmt.Sprintf("t%d", i)
		def := engine.ColumnDef{Name: "c", Kind: dict.ED1, MaxLen: 8}
		if err := v.db.CreateTable(engine.Schema{Table: name, Columns: []engine.ColumnDef{def}}); err != nil {
			t.Fatal(err)
		}
		v.loadColumn(t, name, def, [][]byte{[]byte("x"), []byte("y")})
	}
	var wg sync.WaitGroup
	errs := make(chan error, tables)
	for i := 0; i < tables; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", i)
			def := engine.ColumnDef{Name: "c", Kind: dict.ED1, MaxLen: 8}
			for j := 0; j < 20; j++ {
				f := v.filter(t, name, def, search.Eq([]byte("x")))
				res, err := v.db.Select(context.Background(), engine.Query{Table: name, Filters: []engine.Filter{f}, CountOnly: true})
				if err != nil {
					errs <- err
					return
				}
				if res.Count != 1 {
					errs <- fmt.Errorf("table %s count = %d", name, res.Count)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
