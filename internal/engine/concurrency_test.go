package engine_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/search"
)

// TestConcurrentReadersAndWriters exercises the engine under parallel
// selects, inserts, deletes and merges. Run with -race to validate the
// locking discipline; assertions check only invariants that hold under any
// interleaving.
func TestConcurrentReadersAndWriters(t *testing.T) {
	v := newEnv(t)
	def := engine.ColumnDef{Name: "c", Kind: dict.ED5, MaxLen: 8, BSMax: 3}
	if err := v.db.CreateTable(engine.Schema{Table: "cc", Columns: []engine.ColumnDef{def}}); err != nil {
		t.Fatal(err)
	}
	var seedRows [][]byte
	for i := 0; i < 50; i++ {
		seedRows = append(seedRows, []byte(fmt.Sprintf("v%03d", i%10)))
	}
	v.loadColumn(t, "cc", def, seedRows)

	const (
		readers = 3
		writers = 2
		rounds  = 25
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers+1)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				q := search.Eq([]byte(fmt.Sprintf("v%03d", i%10)))
				f := v.filter(t, "cc", def, q)
				if _, err := v.db.Select(engine.Query{Table: "cc", Filters: []engine.Filter{f}, CountOnly: true}); err != nil {
					errs <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
			}
		}(r)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				val := fmt.Sprintf("w%d_%03d", w, i)
				if err := v.db.Insert("cc", engine.Row{"c": v.encryptValue(t, "cc", "c", val)}); err != nil {
					errs <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 4; i++ {
			if err := v.db.Merge("cc"); err != nil {
				errs <- fmt.Errorf("merger: %w", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// All writes must be present afterwards.
	res, err := v.db.Select(engine.Query{Table: "cc", CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	want := len(seedRows) + writers*rounds
	if res.Count != want {
		t.Errorf("final count = %d, want %d", res.Count, want)
	}
}

// TestConcurrentDeleteUpdateMerge interleaves the write operations whose
// match/mutate sequences must be atomic against merges: every update
// preserves the row count, every delete removes exactly the rows it
// reported.
func TestConcurrentDeleteUpdateMerge(t *testing.T) {
	v := newEnv(t)
	def := engine.ColumnDef{Name: "c", Kind: dict.ED1, MaxLen: 12}
	if err := v.db.CreateTable(engine.Schema{Table: "dm", Columns: []engine.ColumnDef{def}}); err != nil {
		t.Fatal(err)
	}
	var seedRows [][]byte
	for i := 0; i < 60; i++ {
		seedRows = append(seedRows, []byte(fmt.Sprintf("keep%03d", i)))
	}
	v.loadColumn(t, "dm", def, seedRows)

	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		deleted int
	)
	errs := make(chan error, 8)
	// Updaters rewrite values (count-preserving).
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				f := v.filter(t, "dm", def, search.Eq([]byte(fmt.Sprintf("keep%03d", w*10+i))))
				set := engine.Row{"c": v.encryptValue(t, "dm", "c", fmt.Sprintf("upd%d_%03d", w, i))}
				if _, err := v.db.Update("dm", []engine.Filter{f}, set); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// A deleter removes a disjoint value range and tallies removals.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 40; i < 50; i++ {
			f := v.filter(t, "dm", def, search.Eq([]byte(fmt.Sprintf("keep%03d", i))))
			n, err := v.db.Delete("dm", []engine.Filter{f})
			if err != nil {
				errs <- err
				return
			}
			mu.Lock()
			deleted += n
			mu.Unlock()
		}
	}()
	// A merger runs throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := v.db.Merge("dm"); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	res, err := v.db.Select(engine.Query{Table: "dm", CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	want := len(seedRows) - deleted
	mu.Unlock()
	if res.Count != want {
		t.Errorf("final count = %d, want %d (updates preserve, deletes removed %d)",
			res.Count, want, deleted)
	}
	if deleted != 10 {
		t.Errorf("deleted = %d, want 10", deleted)
	}
}

// TestConcurrentDistinctTables checks independent tables do not contend
// incorrectly.
func TestConcurrentDistinctTables(t *testing.T) {
	v := newEnv(t)
	const tables = 4
	for i := 0; i < tables; i++ {
		name := fmt.Sprintf("t%d", i)
		def := engine.ColumnDef{Name: "c", Kind: dict.ED1, MaxLen: 8}
		if err := v.db.CreateTable(engine.Schema{Table: name, Columns: []engine.ColumnDef{def}}); err != nil {
			t.Fatal(err)
		}
		v.loadColumn(t, name, def, [][]byte{[]byte("x"), []byte("y")})
	}
	var wg sync.WaitGroup
	errs := make(chan error, tables)
	for i := 0; i < tables; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", i)
			def := engine.ColumnDef{Name: "c", Kind: dict.ED1, MaxLen: 8}
			for j := 0; j < 20; j++ {
				f := v.filter(t, name, def, search.Eq([]byte("x")))
				res, err := v.db.Select(engine.Query{Table: name, Filters: []engine.Filter{f}, CountOnly: true})
				if err != nil {
					errs <- err
					return
				}
				if res.Count != 1 {
					errs <- fmt.Errorf("table %s count = %d", name, res.Count)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
