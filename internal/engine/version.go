package engine

import (
	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/ridset"
)

// version is an immutable, pinned view of a table: the generation-stamped
// main stores, the sealed delta runs, a length-capped capture of each active
// tail, and the copy-on-write validity bitmap epoch current at pin time.
// Everything a version references is frozen — the main store is swapped
// (never mutated) by merges, sealed runs are immutable by construction, tail
// captures are three-index slices whose elements are never rewritten, and
// every validity mutation installs a fresh bitmap — so a reader holding a
// version scans entirely lock-free while writers and background merges
// proceed (paper §4.3 delta design, taken off the lock).
type version struct {
	schema    Schema
	gen       uint64
	mainRows  int
	deltaRows int
	valid     *ridset.Set
	cols      map[string]*colVersion
}

// colVersion is one column's pinned stores.
type colVersion struct {
	table string
	def   ColumnDef
	main  *dict.Split
	// sealed is the captured chain of sealed runs, oldest first.
	sealed []*deltaRun
	// sealedRows is the total row count across sealed (cached for render
	// and cost estimation).
	sealedRows int
	// tail is the captured prefix of the active run's entries.
	tail tailRegion
}

// tailRegion adapts a captured tail entry slice to search.Region.
type tailRegion [][]byte

// Len returns the number of captured tail rows (implements search.Region).
func (t tailRegion) Len() int { return len(t) }

// Load returns tail entry i (implements search.Region).
func (t tailRegion) Load(i int) []byte { return t[i] }

// pin captures the current version under a brief read-lock critical section
// and verifies the table is queryable. The returned version is safe for
// lock-free use for as long as the caller likes.
func (t *table) pin() (*version, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if err := t.ready(); err != nil {
		return nil, err
	}
	return t.versionLocked(), nil
}

// versionLocked builds the current version; the caller holds at least the
// table's read lock.
func (t *table) versionLocked() *version {
	v := &version{
		schema:    t.schema,
		gen:       t.gen,
		mainRows:  t.mainRows,
		deltaRows: t.deltaRows,
		valid:     t.valid,
		cols:      make(map[string]*colVersion, len(t.cols)),
	}
	for name, c := range t.cols {
		cv := &colVersion{table: c.table, def: c.def, main: c.main, sealed: c.sealed}
		for _, r := range c.sealed {
			cv.sealedRows += r.rows()
		}
		n := len(c.tail.entries)
		cv.tail = tailRegion(c.tail.entries[:n:n])
		v.cols[name] = cv
	}
	return v
}

// rows returns the version's total row count.
func (v *version) rows() int { return v.mainRows + v.deltaRows }

// sealedRuns returns the pinned sealed-run chain length, identical across
// columns by construction.
func (v *version) sealedRuns() int {
	for _, cv := range v.cols {
		return len(cv.sealed)
	}
	return 0
}

// entry resolves RecordID r of this column version to its stored payload:
// the main store below mainRows, then the sealed runs in chain order, then
// the tail (paper Fig. 5 step 12 applied across the store chain).
func (cv *colVersion) entry(mainRows int, r int) []byte {
	if r < mainRows {
		return cv.main.Entry(int(cv.main.VID(r)))
	}
	i := r - mainRows
	for _, run := range cv.sealed {
		if i < run.rows() {
			return run.entries[i]
		}
		i -= run.rows()
	}
	return cv.tail[i]
}

// render reconstructs the projected cells for the matched rows by undoing
// the split: cell = D[AV[rid]] (paper Fig. 5 step 12). Cells remain
// ciphertexts for encrypted columns.
func (v *version) render(cv *colVersion, rids []uint32) [][]byte {
	cells := make([][]byte, len(rids))
	for i, r := range rids {
		cells[i] = cv.entry(v.mainRows, int(r))
	}
	return cells
}
