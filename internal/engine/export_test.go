package engine

// SetMergeHooks installs test instrumentation inside the background merge
// pipeline: afterSeal runs once the tail is sealed and the base version
// pinned (the rebuild is about to start, no lock held), beforeSwap runs when
// the rebuilt stores are ready but not yet installed. Blocking merges
// (WithBlockingMerge) skip the hooks — they would run under the table lock.
// Install hooks before starting traffic; nil clears a hook.
func (db *DB) SetMergeHooks(afterSeal, beforeSwap func(table string)) {
	db.mergeHooks.afterSeal = afterSeal
	db.mergeHooks.beforeSwap = beforeSwap
}

// SealedRuns reports the current sealed-run chain length of a table, for
// tests asserting the sealing policy.
func (db *DB) SealedRuns(tableName string) (int, error) {
	t, err := db.lookup(tableName)
	if err != nil {
		return 0, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sealedRunsLocked(), nil
}
