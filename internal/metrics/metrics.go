// Package metrics is a dependency-free metrics registry for the EncDBDB
// provider: atomic counters, gauges, and fixed-bucket histograms, exposed in
// the Prometheus text exposition format (version 0.0.4) over an opt-in HTTP
// endpoint.
//
// The package exists so the hot layers — the wire server's request loop, the
// engine's scan and merge pipelines, the enclave's boundary counters — can
// record per-operation throughput and latency without taking any lock or
// allocating on the request path: a Counter increment is one atomic add, a
// Histogram observation is one binary search over a small fixed bound slice
// plus two atomic adds. All coordination costs are paid at registration time
// (startup) and at scrape time (WriteText), never per request.
//
// A Registry owns a set of metric families. Families are identified by name
// and rendered in registration order; labeled families (CounterVec,
// HistogramVec) render their series sorted by label value, so the exposition
// output is deterministic and can be golden-tested. Registering the same
// name twice panics — registration happens once at startup, and a duplicate
// is a programming error that would silently corrupt the exposition
// otherwise.
//
// The exposition endpoint is deliberately read-only and side-effect free:
// scraping never resets a counter, so rates are computed by the scraper
// (rate(), increase()) as Prometheus expects. Gauge families registered via
// GaugeFunc are sampled at scrape time under whatever locks the callback
// takes, which keeps cross-subsystem totals (merge backlog across tables,
// live enclave stats) consistent without the subsystems pushing updates.
package metrics

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. The zero value is unusable;
// obtain counters from a Registry.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metric is one registered family, rendered by WriteText.
type metric interface {
	write(w io.Writer, name string) error
}

// family pairs a registered metric with its exposition metadata.
type family struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram"
	m    metric
}

// Registry is an ordered collection of metric families. All methods are safe
// for concurrent use; the per-metric operations (Inc, Observe, ...) never
// touch the registry lock.
type Registry struct {
	mu     sync.Mutex
	fams   []family
	byName map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]struct{})}
}

// register validates and stores a family; duplicate names panic.
func (r *Registry) register(name, help, typ string, m metric) {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", name))
	}
	r.byName[name] = struct{}{}
	r.fams = append(r.fams, family{name: name, help: help, typ: typ, m: m})
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", (*counterMetric)(c))
	return c
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", (*gaugeMetric)(g))
	return g
}

// NewGaugeFunc registers a gauge whose value is sampled by calling fn at
// scrape time — the shape for values that already live elsewhere (enclave
// stats, per-table backlog sums) and would be wasteful to push on every
// update.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", gaugeFuncMetric(fn))
}

// NewCounterFunc registers a counter whose value is sampled by calling fn
// at scrape time. fn must be monotonically non-decreasing — the shape for
// cumulative totals maintained elsewhere (pool statistics, library-internal
// atomics) that would be wasteful to mirror on every update.
func (r *Registry) NewCounterFunc(name, help string, fn func() uint64) {
	r.register(name, help, "counter", counterFuncMetric(fn))
}

// NewCounterVec registers a counter family partitioned by the given label
// names.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{labels: checkLabels(name, labels), children: make(map[string]*Counter)}
	r.register(name, help, "counter", v)
	return v
}

// NewHistogram registers a histogram with the given ascending upper bounds
// (a final +Inf bucket is implicit). Passing no bounds uses DefBuckets.
func (r *Registry) NewHistogram(name, help string, bounds ...float64) *Histogram {
	h := newHistogram(name, bounds)
	r.register(name, help, "histogram", h)
	return h
}

// NewHistogramVec registers a histogram family partitioned by the given
// label names, all children sharing one bound layout.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{
		name:     name,
		bounds:   bounds,
		labels:   checkLabels(name, labels),
		children: make(map[string]*Histogram),
	}
	r.register(name, help, "histogram", v)
	return v
}

// WriteText renders every family in the Prometheus text exposition format,
// in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]family(nil), r.fams...)
	r.mu.Unlock()
	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		if err := f.m.write(w, f.name); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns an HTTP handler serving the exposition — mount it at
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w) //nolint:errcheck // a broken scrape connection is the scraper's problem
	})
}

// counterMetric renders a *Counter.
type counterMetric Counter

func (c *counterMetric) write(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %d\n", name, (*Counter)(c).Value())
	return err
}

// gaugeMetric renders a *Gauge.
type gaugeMetric Gauge

func (g *gaugeMetric) write(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %d\n", name, (*Gauge)(g).Value())
	return err
}

// gaugeFuncMetric renders a sampled gauge.
type gaugeFuncMetric func() float64

func (f gaugeFuncMetric) write(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(f()))
	return err
}

// counterFuncMetric renders a sampled counter.
type counterFuncMetric func() uint64

func (f counterFuncMetric) write(w io.Writer, name string) error {
	_, err := fmt.Fprintf(w, "%s %d\n", name, f())
	return err
}

// CounterVec is a counter family partitioned by label values. With returns
// the child for a label-value tuple, creating it on first use; callers on
// hot paths should resolve children once and keep them.
type CounterVec struct {
	labels []string

	mu       sync.RWMutex
	children map[string]*Counter
}

// With returns the counter for the given label values (one per label name,
// in registration order).
func (v *CounterVec) With(values ...string) *Counter {
	key := labelKey(v.labels, values)
	v.mu.RLock()
	c := v.children[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[key]; c == nil {
		c = &Counter{}
		v.children[key] = c
	}
	return c
}

func (v *CounterVec) write(w io.Writer, name string) error {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	kids := make(map[string]*Counter, len(v.children))
	for k, c := range v.children {
		kids[k] = c
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s{%s} %d\n", name, k, kids[k].Value()); err != nil {
			return err
		}
	}
	return nil
}

// checkLabels validates label names at registration time.
func checkLabels(metric string, labels []string) []string {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: vec %q needs at least one label", metric))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, metric))
		}
	}
	return labels
}

// labelKey renders a label-value tuple as the exposition's label body —
// usable both as the map key and verbatim in the output line.
func labelKey(labels, values []string) string {
	if len(values) != len(labels) {
		panic(fmt.Sprintf("metrics: got %d label values for %d labels", len(values), len(labels)))
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// validName reports whether s is a legal metric or label name.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// formatFloat renders a float the way the exposition format expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
