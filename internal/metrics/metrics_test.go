package metrics

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exact text exposition output: family order
// follows registration, vec series sort by label value, histograms render
// cumulative buckets plus _sum and _count. Scrapers parse this byte format;
// a silent change here breaks every dashboard.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("test_requests_total", "Total requests.")
	c.Add(3)
	g := r.NewGauge("test_inflight", "In-flight requests.")
	g.Set(2)
	g.Dec()
	r.NewGaugeFunc("test_backlog_rows", "Sampled backlog.", func() float64 { return 7.5 })
	v := r.NewCounterVec("test_ops_total", "Per-op requests.", "op")
	v.With("select").Add(2)
	v.With("insert").Inc()
	h := r.NewHistogram("test_latency_seconds", "Request latency.", 0.001, 0.01, 0.1)
	h.Observe(0.0005)
	h.Observe(0.02)
	h.Observe(5)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total 3
# HELP test_inflight In-flight requests.
# TYPE test_inflight gauge
test_inflight 1
# HELP test_backlog_rows Sampled backlog.
# TYPE test_backlog_rows gauge
test_backlog_rows 7.5
# HELP test_ops_total Per-op requests.
# TYPE test_ops_total counter
test_ops_total{op="insert"} 1
test_ops_total{op="select"} 2
# HELP test_latency_seconds Request latency.
# TYPE test_latency_seconds histogram
test_latency_seconds_bucket{le="0.001"} 1
test_latency_seconds_bucket{le="0.01"} 1
test_latency_seconds_bucket{le="0.1"} 2
test_latency_seconds_bucket{le="+Inf"} 3
test_latency_seconds_sum 5.0205
test_latency_seconds_count 3
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestHandlerContentType checks the HTTP endpoint serves the exposition
// format with the content type Prometheus scrapers negotiate on.
func TestHandlerContentType(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("test_total", "x").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "test_total 1") {
		t.Errorf("body missing counter line:\n%s", rec.Body.String())
	}
}

// TestConcurrentUpdates is the concurrency property test: G goroutines each
// perform N increments/observations; the final exposition must account for
// every single one (no lost updates in the atomic paths), under -race.
func TestConcurrentUpdates(t *testing.T) {
	const workers = 8
	const perWorker = 10_000
	r := NewRegistry()
	c := r.NewCounter("c_total", "")
	g := r.NewGauge("g", "")
	v := r.NewCounterVec("v_total", "", "op")
	h := r.NewHistogram("h_seconds", "", 0.001, 0.01, 0.1, 1)
	hv := r.NewHistogramVec("hv_seconds", "", []float64{0.01, 1}, "op")

	ops := []string{"select", "insert", "delete"}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				v.With(ops[i%len(ops)]).Inc()
				h.Observe(float64(i%200) / 100)
				hv.With(ops[(w+i)%len(ops)]).Observe(0.5)
			}
		}(w)
	}
	// Concurrent scrapes must not race with the writers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WriteText(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	const total = workers * perWorker
	if got := c.Value(); got != total {
		t.Errorf("counter = %d, want %d", got, total)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	var vecSum uint64
	for _, op := range ops {
		vecSum += v.With(op).Value()
	}
	if vecSum != total {
		t.Errorf("vec sum = %d, want %d", vecSum, total)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	// Per-worker observation sum: sum_{i<perWorker} (i%200)/100, times workers.
	var per float64
	for i := 0; i < perWorker; i++ {
		per += float64(i%200) / 100
	}
	if got, want := h.Sum(), per*workers; math.Abs(got-want) > 1e-6*want {
		t.Errorf("histogram sum = %v, want %v", got, want)
	}
	var hvSum uint64
	for _, op := range ops {
		hvSum += hv.With(op).Count()
	}
	if hvSum != total {
		t.Errorf("histogram vec count = %d, want %d", hvSum, total)
	}
}

// TestQuantile checks the bucket-interpolation estimate on a known
// distribution.
func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("q_seconds", "", 0.1, 0.2, 0.4, 0.8)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	// 100 observations uniform in (0, 0.1]: everything lands in bucket 0.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 1000)
	}
	if q := h.Quantile(0.5); q < 0.04 || q > 0.06 {
		t.Errorf("p50 = %v, want ~0.05", q)
	}
	h.Observe(100) // one outlier in +Inf; p99.9 must clamp to largest bound
	if q := h.Quantile(0.9999); q != 0.8 {
		t.Errorf("clamped quantile = %v, want 0.8", q)
	}
}

// TestDuplicatePanics pins the registration contract.
func TestDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup_total", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.NewGauge("dup_total", "")
}

// TestLabelEscaping checks quote/backslash/newline escapes in label values.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("esc_total", "", "q")
	v.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{q="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped series missing; got:\n%s", b.String())
	}
}
