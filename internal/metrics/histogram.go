package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// DefBuckets are the default latency bounds in seconds: 100µs to 10s in
// roughly 2.5x steps, matching the spread between a point query answered
// from the multiplexed hot path (~tens of µs) and a full-table scan or
// merge-delayed tail under saturation.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram counts observations in fixed cumulative buckets. Observe is
// lock-free: a binary search over the bound slice plus atomic adds, so the
// wire server can time every request without contention.
type Histogram struct {
	bounds []float64       // ascending upper bounds; +Inf implicit
	counts []atomic.Uint64 // len(bounds)+1, per-bucket (non-cumulative)
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(name string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value (for latency histograms, in seconds).
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts by
// linear interpolation within the target bucket — the same estimate
// Prometheus's histogram_quantile computes. With no observations it returns
// NaN; quantiles landing in the +Inf bucket return the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(c)
			return lo + (h.bounds[i]-lo)*frac
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// write renders the cumulative bucket lines plus _sum and _count.
func (h *Histogram) write(w io.Writer, name string) error {
	return h.writeLabeled(w, name, "")
}

// writeLabeled renders the histogram with extra (already-rendered) labels
// prepended to each bucket's le label — shared by Histogram and
// HistogramVec children.
func (h *Histogram) writeLabeled(w io.Writer, name, labels string) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, formatFloat(b), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, cum); err != nil {
		return err
	}
	var suffix string
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, formatFloat(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, cum)
	return err
}

// HistogramVec is a histogram family partitioned by label values, all
// children sharing one bound layout.
type HistogramVec struct {
	name   string
	bounds []float64
	labels []string

	mu       sync.RWMutex
	children map[string]*Histogram
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := labelKey(v.labels, values)
	v.mu.RLock()
	h := v.children[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.children[key]; h == nil {
		h = newHistogram(v.name, v.bounds)
		v.children[key] = h
	}
	return h
}

func (v *HistogramVec) write(w io.Writer, name string) error {
	v.mu.RLock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	kids := make(map[string]*Histogram, len(v.children))
	for k, h := range v.children {
		kids[k] = h
	}
	v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		if err := kids[k].writeLabeled(w, name, k); err != nil {
			return err
		}
	}
	return nil
}

// addFloat atomically adds v to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}
