package dict

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/encdbdb/encdbdb/internal/pae"
)

// quickColumn generates random NUL-free columns for testing/quick: a small
// vocabulary drives high duplication, the adversarial regime for the
// repetition options.
type quickColumn [][]byte

// Generate implements quick.Generator.
func (quickColumn) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size*4 + 1)
	u := 1 + r.Intn(size/2+1)
	vocab := make([][]byte, u)
	for i := range vocab {
		l := 1 + r.Intn(6)
		v := make([]byte, l)
		for j := range v {
			v[j] = byte('a' + r.Intn(6))
		}
		vocab[i] = v
	}
	col := make(quickColumn, n)
	for i := range col {
		col[i] = vocab[r.Intn(u)]
	}
	return reflect.ValueOf(col)
}

// quickKind generates a random encrypted dictionary kind.
type quickKind Kind

// Generate implements quick.Generator.
func (quickKind) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickKind(ED1 + Kind(r.Intn(9))))
}

func TestQuickSplitCorrectnessAllKinds(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(col quickColumn, k quickKind, bsmaxSeed uint8) bool {
		p := Params{
			Kind:   Kind(k),
			MaxLen: 8,
			BSMax:  1 + int(bsmaxSeed%7),
			Plain:  true,
			Rand:   rng,
		}
		s, err := Build(col, p)
		if err != nil {
			return false
		}
		return s.VerifyCorrectness(col, func(b []byte) ([]byte, error) { return b, nil }) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestQuickSplitDataRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	cipher, err := pae.NewCipher(pae.MustGen())
	if err != nil {
		t.Fatal(err)
	}
	f := func(col quickColumn, k quickKind) bool {
		s, err := Build(col, Params{
			Kind: Kind(k), MaxLen: 8, BSMax: 3, Cipher: cipher, Rand: rng,
		})
		if err != nil {
			return false
		}
		back, err := FromData(s.Data())
		if err != nil {
			return false
		}
		if back.Len() != s.Len() || back.Rows() != s.Rows() || back.Kind != s.Kind {
			return false
		}
		for i := 0; i < s.Len(); i++ {
			if string(back.Entry(i)) != string(s.Entry(i)) {
				return false
			}
		}
		return back.VerifyCorrectness(col, cipher.Decrypt) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestQuickFromDataRejectsCorruptRefs(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	col := quickColumn{[]byte("aa"), []byte("bb"), []byte("aa")}
	s, err := Build(col, Params{Kind: ED1, MaxLen: 8, Plain: true, Rand: rng})
	if err != nil {
		t.Fatal(err)
	}
	f := func(off, length uint32, avVid uint32) bool {
		d := s.Data()
		// Copy the mutable slices so each trial is independent.
		d.Head = append([]EntryRef(nil), d.Head...)
		d.AV = append([]uint32(nil), d.AV...)
		d.Head[0] = EntryRef{Off: off, Len: length}
		d.AV[0] = avVid
		back, err := FromData(d)
		if err != nil {
			return true // rejected: fine
		}
		// Accepted: every access must stay in bounds.
		if int(avVid) >= back.Len() {
			return false
		}
		for i := 0; i < back.Len(); i++ {
			_ = back.Entry(i)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
