package dict

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/encdbdb/encdbdb/internal/ordenc"
	"github.com/encdbdb/encdbdb/internal/pae"
)

// paperColumn is the example column of paper Figure 3 (a).
func paperColumn() [][]byte {
	return [][]byte{
		[]byte("Hans"), []byte("Jessica"), []byte("Archie"),
		[]byte("Ella"), []byte("Jessica"), []byte("Jessica"),
	}
}

func testParams(t *testing.T, k Kind, plain bool) Params {
	t.Helper()
	p := Params{
		Kind:   k,
		MaxLen: 16,
		Plain:  plain,
		Rand:   rand.New(rand.NewSource(42)),
	}
	if k.Repetition() == RepSmoothing {
		p.BSMax = 3
	}
	if !plain {
		c, err := pae.NewCipher(pae.MustGen())
		if err != nil {
			t.Fatalf("NewCipher: %v", err)
		}
		p.Cipher = c
	}
	return p
}

func identity(b []byte) ([]byte, error) { return b, nil }

func decryptor(t *testing.T, p Params) func([]byte) ([]byte, error) {
	t.Helper()
	if p.Plain {
		return identity
	}
	return p.Cipher.Decrypt
}

func allKinds() []Kind {
	return []Kind{ED1, ED2, ED3, ED4, ED5, ED6, ED7, ED8, ED9}
}

func TestKindProperties(t *testing.T) {
	tests := []struct {
		kind Kind
		rep  Repetition
		ord  Order
	}{
		{ED1, RepRevealing, OrderSorted},
		{ED2, RepRevealing, OrderRotated},
		{ED3, RepRevealing, OrderUnsorted},
		{ED4, RepSmoothing, OrderSorted},
		{ED5, RepSmoothing, OrderRotated},
		{ED6, RepSmoothing, OrderUnsorted},
		{ED7, RepHiding, OrderSorted},
		{ED8, RepHiding, OrderRotated},
		{ED9, RepHiding, OrderUnsorted},
	}
	for _, tt := range tests {
		if got := tt.kind.Repetition(); got != tt.rep {
			t.Errorf("%v.Repetition() = %v, want %v", tt.kind, got, tt.rep)
		}
		if got := tt.kind.Order(); got != tt.ord {
			t.Errorf("%v.Order() = %v, want %v", tt.kind, got, tt.ord)
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, k := range allKinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if got, err := ParseKind("ed5"); err != nil || got != ED5 {
		t.Errorf("ParseKind(ed5) = %v, %v; want ED5", got, err)
	}
	for _, bad := range []string{"", "ED0", "ED10", "plain", "XX3"} {
		if _, err := ParseKind(bad); err == nil {
			t.Errorf("ParseKind(%q) succeeded, want error", bad)
		}
	}
}

func TestBuildAllKindsCorrectness(t *testing.T) {
	col := paperColumn()
	for _, k := range allKinds() {
		for _, plain := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v/plain=%v", k, plain), func(t *testing.T) {
				p := testParams(t, k, plain)
				s, err := Build(col, p)
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				if err := s.VerifyCorrectness(col, decryptor(t, p)); err != nil {
					t.Fatalf("VerifyCorrectness: %v", err)
				}
			})
		}
	}
}

func TestBuildDictionarySizes(t *testing.T) {
	// Paper Table 3: |D| = |un(C)| for revealing, |D| = |AV| for hiding.
	col := paperColumn() // 6 rows, 4 unique values
	tests := []struct {
		kind Kind
		want int
	}{
		{ED1, 4}, {ED2, 4}, {ED3, 4},
		{ED7, 6}, {ED8, 6}, {ED9, 6},
	}
	for _, tt := range tests {
		t.Run(tt.kind.String(), func(t *testing.T) {
			s, err := Build(col, testParams(t, tt.kind, true))
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if s.Len() != tt.want {
				t.Errorf("|D| = %d, want %d", s.Len(), tt.want)
			}
		})
	}
}

func TestBuildSmoothingDictionarySizeBounds(t *testing.T) {
	// For smoothing, |un(C)| <= |D| <= |AV|.
	col := paperColumn()
	for _, k := range []Kind{ED4, ED5, ED6} {
		s, err := Build(col, testParams(t, k, true))
		if err != nil {
			t.Fatalf("Build(%v): %v", k, err)
		}
		if s.Len() < 4 || s.Len() > 6 {
			t.Errorf("%v: |D| = %d, want within [4, 6]", k, s.Len())
		}
	}
}

func TestBuildSortedOrder(t *testing.T) {
	// ED1/ED4/ED7 must store dictionary entries in lexicographic order.
	col := paperColumn()
	for _, k := range []Kind{ED1, ED4, ED7} {
		p := testParams(t, k, true)
		s, err := Build(col, p)
		if err != nil {
			t.Fatalf("Build(%v): %v", k, err)
		}
		for i := 1; i < s.Len(); i++ {
			if string(s.Entry(i-1)) > string(s.Entry(i)) {
				t.Errorf("%v: entries %d,%d out of order: %q > %q", k, i-1, i, s.Entry(i-1), s.Entry(i))
			}
		}
	}
}

func TestBuildRotatedOrder(t *testing.T) {
	// A rotated dictionary must be sorted when logically unrotated.
	col := paperColumn()
	for _, k := range []Kind{ED2, ED5, ED8} {
		p := testParams(t, k, true)
		s, err := Build(col, p)
		if err != nil {
			t.Fatalf("Build(%v): %v", k, err)
		}
		off, err := DecodeRotOffset(s.EncRndOffset)
		if err != nil {
			t.Fatalf("DecodeRotOffset: %v", err)
		}
		n := s.Len()
		if int(off) >= n {
			t.Fatalf("%v: offset %d out of range for |D|=%d", k, off, n)
		}
		for j := 1; j < n; j++ {
			prev := s.Entry((j - 1 + int(off)) % n)
			cur := s.Entry((j + int(off)) % n)
			if string(prev) > string(cur) {
				t.Errorf("%v: unrotated order broken at %d: %q > %q", k, j, prev, cur)
			}
		}
	}
}

func TestBuildPaperFigure3Example(t *testing.T) {
	// Figure 3 (b): ED1 of the example column is the sorted unique list
	// Archie, Ella, Hans, Jessica with AV = 2,3,0,1,3,3.
	col := paperColumn()
	s, err := Build(col, testParams(t, ED1, true))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	wantDict := []string{"Archie", "Ella", "Hans", "Jessica"}
	for i, w := range wantDict {
		if string(s.Entry(i)) != w {
			t.Errorf("D[%d] = %q, want %q", i, s.Entry(i), w)
		}
	}
	wantAV := []uint32{2, 3, 0, 1, 3, 3}
	for j, w := range wantAV {
		if s.VID(j) != w {
			t.Errorf("AV[%d] = %d, want %d", j, s.VID(j), w)
		}
	}
}

func TestBuildEncryptedEntriesAreProbabilistic(t *testing.T) {
	// ED7 stores one entry per row; equal plaintexts must still produce
	// distinct ciphertexts.
	col := paperColumn()
	p := testParams(t, ED7, false)
	s, err := Build(col, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	seen := make(map[string]bool)
	for i := 0; i < s.Len(); i++ {
		ct := string(s.Entry(i))
		if seen[ct] {
			t.Fatal("duplicate ciphertext in frequency-hiding dictionary")
		}
		seen[ct] = true
	}
}

func TestBuildRejectsInvalidParams(t *testing.T) {
	col := paperColumn()
	base := func() Params { return testParams(t, ED1, true) }

	t.Run("invalid kind", func(t *testing.T) {
		p := base()
		p.Kind = 0
		if _, err := Build(col, p); err == nil {
			t.Error("want error for invalid kind")
		}
	})
	t.Run("nil rand", func(t *testing.T) {
		p := base()
		p.Rand = nil
		if _, err := Build(col, p); err == nil {
			t.Error("want error for nil Rand")
		}
	})
	t.Run("missing cipher", func(t *testing.T) {
		p := base()
		p.Plain = false
		p.Cipher = nil
		if _, err := Build(col, p); err == nil {
			t.Error("want error for missing cipher")
		}
	})
	t.Run("missing bsmax", func(t *testing.T) {
		p := testParams(t, ED5, true)
		p.BSMax = 0
		if _, err := Build(col, p); err == nil {
			t.Error("want error for missing bsmax")
		}
	})
	t.Run("oversized value", func(t *testing.T) {
		p := base()
		p.MaxLen = 3
		if _, err := Build(col, p); !errors.Is(err, ordenc.ErrTooLong) {
			t.Errorf("err = %v, want ErrTooLong", err)
		}
	})
	t.Run("nul byte", func(t *testing.T) {
		p := base()
		if _, err := Build([][]byte{{0}}, p); !errors.Is(err, ordenc.ErrNULByte) {
			t.Errorf("err = %v, want ErrNULByte", err)
		}
	})
}

func TestBuildEmptyColumn(t *testing.T) {
	for _, k := range allKinds() {
		p := testParams(t, k, true)
		s, err := Build(nil, p)
		if err != nil {
			t.Fatalf("Build(%v, empty): %v", k, err)
		}
		if s.Len() != 0 || s.Rows() != 0 {
			t.Errorf("%v: empty column produced |D|=%d |AV|=%d", k, s.Len(), s.Rows())
		}
	}
}

func TestBuildSingleValueColumn(t *testing.T) {
	col := [][]byte{[]byte("x"), []byte("x"), []byte("x")}
	for _, k := range allKinds() {
		p := testParams(t, k, true)
		s, err := Build(col, p)
		if err != nil {
			t.Fatalf("Build(%v): %v", k, err)
		}
		if err := s.VerifyCorrectness(col, identity); err != nil {
			t.Errorf("%v: %v", k, err)
		}
	}
}

func TestGetRndBucketSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for occ := 1; occ <= 50; occ++ {
		for _, bsmax := range []int{1, 2, 3, 10, 100} {
			sizes := getRndBucketSizes(occ, bsmax, rng)
			total := 0
			for i, sz := range sizes {
				if sz < 1 || sz > bsmax {
					t.Fatalf("occ=%d bsmax=%d: size[%d]=%d out of [1,%d]", occ, bsmax, i, sz, bsmax)
				}
				total += sz
			}
			if total != occ {
				t.Fatalf("occ=%d bsmax=%d: sizes sum to %d", occ, bsmax, total)
			}
		}
	}
}

func TestGetRndBucketSizesBSMaxOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sizes := getRndBucketSizes(5, 1, rng)
	if len(sizes) != 5 {
		t.Fatalf("bsmax=1 should create one bucket per occurrence, got %d", len(sizes))
	}
}

func TestBuildSmoothingExpectedDictSize(t *testing.T) {
	// Paper Table 3: E[|D|] ~ sum over values of 2*occ/(1+bsmax).
	// With a single value occurring 10000 times and bsmax=10, expect
	// ~1818 buckets; allow generous statistical slack.
	const occ, bsmax = 10000, 10
	col := make([][]byte, occ)
	for i := range col {
		col[i] = []byte("v")
	}
	p := testParams(t, ED4, true)
	p.BSMax = bsmax
	s, err := Build(col, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	want := 2.0 * occ / (1 + bsmax)
	if got := float64(s.Len()); got < want*0.85 || got > want*1.15 {
		t.Errorf("|D| = %v, want ~%v (+-15%%)", got, want)
	}
}

func TestSplitAccessors(t *testing.T) {
	col := paperColumn()
	p := testParams(t, ED1, false)
	s, err := Build(col, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if s.Rows() != len(col) {
		t.Errorf("Rows() = %d, want %d", s.Rows(), len(col))
	}
	if len(s.Head()) != s.Len() {
		t.Errorf("len(Head()) = %d, want %d", len(s.Head()), s.Len())
	}
	// The attribute vector is bit-packed: |D| = 4 needs 2 bits per code,
	// one 64-row group of 2 slice words for the 6 rows.
	wantSize := s.DictSizeBytes() + s.Packed().MemBytes()
	if s.SizeBytes() != wantSize {
		t.Errorf("SizeBytes() = %d, want %d", s.SizeBytes(), wantSize)
	}
	if s.Packed().Bits() != 2 || s.Packed().MemBytes() != 16 {
		t.Errorf("packed AV: bits=%d mem=%d, want 2 bits in 16 bytes",
			s.Packed().Bits(), s.Packed().MemBytes())
	}
	var total int
	for i := 0; i < s.Len(); i++ {
		total += len(s.Entry(i))
	}
	if total != len(s.Tail()) {
		t.Errorf("entries cover %d bytes, tail has %d", total, len(s.Tail()))
	}
}

func TestVerifyCorrectnessDetectsCorruption(t *testing.T) {
	col := paperColumn()
	p := testParams(t, ED1, true)
	s, err := Build(col, p)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s.setVID(0, s.VID(1)) // break the split for row 0 (Hans -> Jessica's vid)
	if err := s.VerifyCorrectness(col, identity); err == nil {
		t.Error("VerifyCorrectness accepted a corrupted split")
	}
}

func TestVerifyCorrectnessDetectsOutOfRangeVid(t *testing.T) {
	// A fifth unique value makes |D| = 5, so the 3-bit packed codes can
	// represent out-of-range ValueIDs (5..7) — exactly the corruption a
	// split loaded from a hostile source could carry.
	col := append(paperColumn(), []byte("Zoe"))
	s, err := Build(col, testParams(t, ED1, true))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s.setVID(2, uint32(s.Len()))
	if err := s.VerifyCorrectness(col, identity); err == nil {
		t.Error("VerifyCorrectness accepted an out-of-range ValueID")
	}
}

func TestDecodeRotOffsetRejectsBadLength(t *testing.T) {
	if _, err := DecodeRotOffset([]byte{1, 2, 3}); err == nil {
		t.Error("want error for short offset")
	}
}

// randomColumn builds a column of n values drawn from u distinct strings.
func randomColumn(rng *rand.Rand, n, u, maxLen int) [][]byte {
	vocab := make([][]byte, u)
	for i := range vocab {
		l := 1 + rng.Intn(maxLen)
		v := make([]byte, l)
		for j := range v {
			v[j] = byte('a' + rng.Intn(26))
		}
		vocab[i] = v
	}
	col := make([][]byte, n)
	for i := range col {
		col[i] = vocab[rng.Intn(u)]
	}
	return col
}

func TestBuildPropertyRandomColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		u := 1 + rng.Intn(20)
		col := randomColumn(rng, n, u, 8)
		for _, k := range allKinds() {
			p := Params{
				Kind:   k,
				MaxLen: 8,
				BSMax:  1 + rng.Intn(5),
				Plain:  true,
				Rand:   rng,
			}
			s, err := Build(col, p)
			if err != nil {
				t.Fatalf("trial %d %v: Build: %v", trial, k, err)
			}
			if err := s.VerifyCorrectness(col, identity); err != nil {
				t.Fatalf("trial %d %v: %v", trial, k, err)
			}
		}
	}
}

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range allKinds() {
		if !strings.HasPrefix(k.String(), "ED") {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if Kind(0).String() == "ED0" {
		t.Error("invalid kind should not pretty-print as EDx")
	}
	for _, s := range []fmt.Stringer{RepRevealing, RepSmoothing, RepHiding, OrderSorted, OrderRotated, OrderUnsorted} {
		if s.String() == "" {
			t.Errorf("%T has empty String()", s)
		}
	}
}

func BenchmarkBuildED1_10k(b *testing.B) {
	benchBuild(b, ED1, false)
}

func BenchmarkBuildED5_10k(b *testing.B) {
	benchBuild(b, ED5, false)
}

func BenchmarkBuildED9_10k(b *testing.B) {
	benchBuild(b, ED9, false)
}

func benchBuild(b *testing.B, k Kind, plain bool) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	col := randomColumn(rng, 10000, 500, 12)
	c, _ := pae.NewCipher(pae.MustGen())
	p := Params{Kind: k, MaxLen: 12, BSMax: 10, Plain: plain, Cipher: c, Rand: rng}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(col, p); err != nil {
			b.Fatal(err)
		}
	}
}
