package dict

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"github.com/encdbdb/encdbdb/internal/av"
	"github.com/encdbdb/encdbdb/internal/ordenc"
	"github.com/encdbdb/encdbdb/internal/pae"
)

// Params configures a column split (the paper's EncDB operation).
type Params struct {
	// Kind selects which of the nine encrypted dictionaries to build.
	Kind Kind
	// MaxLen is the column's maximum value length in bytes (e.g. 30 for
	// VARCHAR(30)). Values are validated against it.
	MaxLen int
	// BSMax is the maximum bucket size for frequency smoothing kinds
	// (paper Algorithm 5). Required for ED4–ED6; ignored otherwise.
	BSMax int
	// Plain builds a PlainDBDB-style split: identical algorithms, entries
	// stored unencrypted, rotation offset stored unencrypted.
	Plain bool
	// Cipher encrypts dictionary entries under the column key SK_D.
	// Required unless Plain is set.
	Cipher *pae.Cipher
	// Rand supplies the randomness for bucket sizes, rotation offsets,
	// shuffles and the tail layout. Security-relevant in production (the
	// facade seeds it from crypto/rand); injectable for deterministic
	// tests.
	Rand *rand.Rand
}

// Build performs the EncDB operation: it splits col into a dictionary and an
// attribute vector according to p.Kind, applies the repetition and order
// options, and encrypts the dictionary entries (paper §4.1).
func Build(col [][]byte, p Params) (*Split, error) {
	if !p.Kind.Valid() {
		return nil, fmt.Errorf("dict: invalid kind %d", int(p.Kind))
	}
	if p.Rand == nil {
		return nil, errors.New("dict: Params.Rand is required")
	}
	if !p.Plain && p.Cipher == nil {
		return nil, errors.New("dict: Params.Cipher is required for encrypted splits")
	}
	if p.Kind.Repetition() == RepSmoothing && p.BSMax < 1 {
		return nil, fmt.Errorf("dict: bsmax must be >= 1 for %v, got %d", p.Kind, p.BSMax)
	}
	enc, err := ordenc.NewEncoder(p.MaxLen)
	if err != nil {
		return nil, err
	}
	for j, v := range col {
		if err := enc.Validate(v); err != nil {
			return nil, fmt.Errorf("dict: row %d: %w", j, err)
		}
	}

	groups := groupByValue(col)
	buckets := makeBuckets(groups, p)
	split := &Split{
		Kind:   p.Kind,
		Plain:  p.Plain,
		MaxLen: p.MaxLen,
		BSMax:  smoothingBSMax(p),
	}

	phys, rotOffset := physicalOrder(len(buckets), p.Kind.Order(), p.Rand)
	if p.Kind.Order() == OrderRotated {
		if err := split.attachRotOffset(rotOffset, p); err != nil {
			return nil, err
		}
	}

	// Assign ValueIDs into a scratch vector, then bit-pack it; the scratch
	// is discarded so a resident split costs at most ceil(log2 |D|) bits
	// per row — less where PackEncoded's block statistics pick a
	// frame-of-reference or run-length representation (sorted and
	// clustered columns).
	codes := make([]uint32, len(col))
	assignAttributeVector(codes, groups, buckets, phys, p.Rand)
	split.packed = av.PackEncoded(codes, len(buckets))
	if err := split.layOutEntries(groups, buckets, phys, p); err != nil {
		return nil, err
	}
	return split, nil
}

// smoothingBSMax returns the effective per-ValueID frequency bound recorded
// on the split: bsmax for smoothing kinds, 1 for hiding kinds (frequency
// hiding is smoothing with bsmax = 1, §4.1), and 0 for revealing kinds.
func smoothingBSMax(p Params) int {
	switch p.Kind.Repetition() {
	case RepSmoothing:
		return p.BSMax
	case RepHiding:
		return 1
	default:
		return 0
	}
}

// group is one unique value and the rows where it occurs (oc(C, v)).
type group struct {
	value []byte
	rows  []int
}

// groupByValue returns the unique values of col in lexicographic order, each
// with its occurrence row indices in ascending order.
func groupByValue(col [][]byte) []group {
	idx := make([]int, len(col))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return string(col[idx[a]]) < string(col[idx[b]])
	})
	var groups []group
	for _, j := range idx {
		n := len(groups)
		if n > 0 && string(groups[n-1].value) == string(col[j]) {
			groups[n-1].rows = append(groups[n-1].rows, j)
			continue
		}
		groups = append(groups, group{value: col[j], rows: []int{j}})
	}
	return groups
}

// bucket is one dictionary entry slot: a value and how many attribute-vector
// rows it may absorb. Buckets are produced in lexicographic value order, so
// the bucket index is the entry's logical (sorted) position.
type bucket struct {
	groupIdx int // index into groups
	capacity int
}

// makeBuckets expands each unique value into dictionary entry slots
// according to the repetition option:
//
//   - revealing: one bucket of capacity |oc(C,v)| per unique value,
//   - smoothing: getRndBucketSizes buckets (Algorithm 5),
//   - hiding: |oc(C,v)| buckets of capacity 1 (smoothing with bsmax = 1).
func makeBuckets(groups []group, p Params) []bucket {
	var buckets []bucket
	for gi, g := range groups {
		switch p.Kind.Repetition() {
		case RepRevealing:
			buckets = append(buckets, bucket{groupIdx: gi, capacity: len(g.rows)})
		case RepSmoothing:
			sizes := getRndBucketSizes(len(g.rows), p.BSMax, p.Rand)
			// The order of repetitions within a value is random
			// (EncDB 4); shuffling the sizes realizes that.
			p.Rand.Shuffle(len(sizes), func(a, b int) { sizes[a], sizes[b] = sizes[b], sizes[a] })
			for _, sz := range sizes {
				buckets = append(buckets, bucket{groupIdx: gi, capacity: sz})
			}
		case RepHiding:
			for range g.rows {
				buckets = append(buckets, bucket{groupIdx: gi, capacity: 1})
			}
		}
	}
	return buckets
}

// getRndBucketSizes implements paper Algorithm 5: it draws bucket sizes
// uniformly from [1, bsmax] until they cover occ occurrences, then shrinks
// the last bucket so the total matches exactly. Every returned size is in
// [1, bsmax] and the sizes sum to occ.
func getRndBucketSizes(occ, bsmax int, rng *rand.Rand) []int {
	var (
		sizes     []int
		total     int
		prevTotal int
	)
	for total < occ {
		rnd := 1 + rng.Intn(bsmax)
		sizes = append(sizes, rnd)
		prevTotal = total
		total += rnd
	}
	if len(sizes) > 0 {
		sizes[len(sizes)-1] = occ - prevTotal
	}
	return sizes
}

// physicalOrder maps logical (sorted) bucket indices to physical ValueIDs
// according to the order option. For rotated order it also returns the
// random rotation offset: logical index j is stored at physical index
// (j + off) mod n, exactly as EncDB 2 specifies.
func physicalOrder(n int, o Order, rng *rand.Rand) (phys []int, rotOffset uint64) {
	phys = make([]int, n)
	switch o {
	case OrderSorted:
		for i := range phys {
			phys[i] = i
		}
	case OrderRotated:
		off := 0
		if n > 0 {
			off = rng.Intn(n)
		}
		for j := range phys {
			phys[j] = (j + off) % n
		}
		rotOffset = uint64(off)
	case OrderUnsorted:
		copy(phys, rng.Perm(n))
	}
	return phys, rotOffset
}

// assignAttributeVector fills av so the split is correct per Definition 1:
// each row of a value receives one of the value's physical ValueIDs, each
// ValueID used exactly as often as its bucket capacity, with the assignment
// randomized across the value's occurrences.
func assignAttributeVector(av []uint32, groups []group, buckets []bucket, phys []int, rng *rand.Rand) {
	// Bucket ranges per group; buckets are grouped by groupIdx in order.
	start := 0
	for gi, g := range groups {
		end := start
		for end < len(buckets) && buckets[end].groupIdx == gi {
			end++
		}
		pool := make([]uint32, 0, len(g.rows))
		for bi := start; bi < end; bi++ {
			for c := 0; c < buckets[bi].capacity; c++ {
				pool = append(pool, uint32(phys[bi]))
			}
		}
		rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
		for k, row := range g.rows {
			av[row] = pool[k]
		}
		start = end
	}
}

// attachRotOffset stores the rotation offset: PAE-encrypted for encrypted
// splits (EncDB 2 attaches encRndOffset to eD), plain 8-byte big-endian for
// PlainDBDB splits.
func (s *Split) attachRotOffset(off uint64, p Params) error {
	raw := rotOffsetPlain(off)
	if p.Plain {
		s.EncRndOffset = raw
		return nil
	}
	ct, err := p.Cipher.Encrypt(raw)
	if err != nil {
		return fmt.Errorf("dict: encrypt rotation offset: %w", err)
	}
	s.EncRndOffset = ct
	return nil
}

// layOutEntries encrypts each bucket's value and writes the payloads into
// the tail in random order, with head references in physical dictionary
// order (paper §5: the tail stores values sequentially in a random order,
// the head holds fixed-size offsets ordered by the selected dictionary).
func (s *Split) layOutEntries(groups []group, buckets []bucket, phys []int, p Params) error {
	n := len(buckets)
	s.head = make([]EntryRef, n)
	payloads := make([][]byte, n) // indexed by physical ValueID
	tailSize := 0
	for logical, b := range buckets {
		v := groups[b.groupIdx].value
		var payload []byte
		if p.Plain {
			payload = append([]byte(nil), v...)
		} else {
			ct, err := p.Cipher.Encrypt(v)
			if err != nil {
				return fmt.Errorf("dict: encrypt entry: %w", err)
			}
			payload = ct
		}
		payloads[phys[logical]] = payload
		tailSize += len(payload)
	}
	s.tail = make([]byte, 0, tailSize)
	for _, physIdx := range p.Rand.Perm(n) {
		pl := payloads[physIdx]
		s.head[physIdx] = EntryRef{Off: uint32(len(s.tail)), Len: uint32(len(pl))}
		s.tail = append(s.tail, pl...)
	}
	return nil
}
