package dict

import (
	"encoding/binary"
	"fmt"
	"sync"

	"github.com/encdbdb/encdbdb/internal/av"
)

// EntryRef locates one dictionary entry's payload inside the tail.
type EntryRef struct {
	Off uint32
	Len uint32
}

// entryRefSize is the serialized size of an EntryRef, used for storage
// accounting (paper Table 6) and the on-disk format.
const entryRefSize = 8

// Split is the result of splitting a column into a dictionary and an
// attribute vector under one of the nine encrypted dictionaries. Dictionary
// entries are PAE ciphertexts (or raw values for the PlainDBDB baseline),
// stored as a head of fixed-size references in dictionary order pointing
// into a randomly ordered variable-length tail (paper §5).
type Split struct {
	// Kind is the encrypted dictionary type used for the split.
	Kind Kind
	// Plain marks a PlainDBDB-style split: identical structure and
	// algorithms, but entries are stored unencrypted.
	Plain bool
	// MaxLen is the column's maximum value length in bytes.
	MaxLen int
	// BSMax is the maximum bucket size for frequency-smoothing kinds
	// (0 otherwise).
	BSMax int
	// EncRndOffset is the PAE-encrypted rotation offset for rotated kinds
	// (an 8-byte big-endian integer for plain splits), nil otherwise.
	EncRndOffset []byte

	// packed is the attribute vector — row j's ValueID — bit-packed at
	// ceil(log2 |D|) bits per code (see internal/av). The SWAR scan
	// kernels run on it directly; legacy []uint32 consumers go through
	// AVCodes.
	packed *av.Vector

	head []EntryRef
	tail []byte

	// avMu guards the lazily materialized unpacked copy used by the
	// baseline scan paths, ablations and analysis tooling.
	avMu    sync.Mutex
	avCodes []uint32
}

// Len returns the number of dictionary entries |D|.
func (s *Split) Len() int { return len(s.head) }

// Rows returns the number of rows |AV| (= |C|).
func (s *Split) Rows() int {
	if s.packed == nil {
		return 0
	}
	return s.packed.Len()
}

// Packed returns the bit-packed attribute vector the scan kernels consume.
func (s *Split) Packed() *av.Vector {
	if s.packed == nil {
		s.packed = av.Pack(nil, 0)
	}
	return s.packed
}

// VID returns the ValueID of row j.
func (s *Split) VID(j int) uint32 { return s.packed.Get(j) }

// AVCodes returns the attribute vector as a plain []uint32, materializing
// and caching it on first use. The packed vector is the authoritative
// representation; this unpacked mirror exists for the baseline scan entry
// points, the AV-mode ablations, and analysis tooling, which pay its 4
// bytes/row only if they run. Callers must not modify the returned slice.
func (s *Split) AVCodes() []uint32 {
	s.avMu.Lock()
	defer s.avMu.Unlock()
	if s.avCodes == nil && s.Rows() > 0 {
		s.avCodes = s.packed.Unpack()
	}
	return s.avCodes
}

// avMirror returns the unpacked codes without populating the cache: the
// cached copy if one already exists, otherwise a fresh transient unpack.
// Serialization paths use it so a Snapshot of a large table does not pin a
// 4-byte-per-row mirror next to the packed vector for the split's lifetime.
func (s *Split) avMirror() []uint32 {
	s.avMu.Lock()
	defer s.avMu.Unlock()
	if s.avCodes != nil {
		return s.avCodes
	}
	return s.packed.Unpack()
}

// setVID overwrites row j's ValueID in both representations. Test hook for
// corrupting splits deliberately; vid is truncated to the packed width.
func (s *Split) setVID(j int, vid uint32) {
	s.avMu.Lock()
	defer s.avMu.Unlock()
	s.packed.Set(j, vid)
	if s.avCodes != nil {
		s.avCodes[j] = s.packed.Get(j)
	}
}

// Entry returns the payload of dictionary entry i: a PAE ciphertext, or the
// raw value for plain splits. The returned slice aliases the tail and must
// not be modified.
func (s *Split) Entry(i int) []byte {
	ref := s.head[i]
	return s.tail[ref.Off : ref.Off+ref.Len]
}

// Load is Entry under the name required by the enclave's untrusted-memory
// interface (search.Region), letting a Split be handed to the enclave
// directly as the region backing a dictionary search.
func (s *Split) Load(i int) []byte { return s.Entry(i) }

// Head returns the entry reference table (dictionary order). Exposed for
// serialization; callers must not modify it.
func (s *Split) Head() []EntryRef { return s.head }

// Tail returns the raw tail bytes. Exposed for serialization; callers must
// not modify it.
func (s *Split) Tail() []byte { return s.tail }

// DictSizeBytes returns the storage size of the dictionary alone
// (head references plus tail payloads plus the encrypted rotation offset).
func (s *Split) DictSizeBytes() int {
	return len(s.head)*entryRefSize + len(s.tail) + len(s.EncRndOffset)
}

// MemBytes returns the in-memory footprint of the split column: dictionary
// plus the bit-packed attribute vector (ceil(log2 |D|) bits per row; the
// unpacked equivalent is 4*Rows() bytes). The lazily cached unpacked mirror
// is excluded — it only materializes on baseline/ablation paths.
func (s *Split) MemBytes() int {
	return s.DictSizeBytes() + s.Packed().MemBytes()
}

// SizeBytes returns the total storage size of the split column — the
// quantity compared in paper Table 6. Since the v2 storage format persists
// the attribute vector in its packed form, this equals MemBytes.
func (s *Split) SizeBytes() int {
	return s.MemBytes()
}

// Empty returns a split with zero rows and zero dictionary entries, used as
// the initial main store of a freshly created table whose data arrives
// exclusively through the delta store.
func Empty(kind Kind, maxLen, bsmax int, plain bool) *Split {
	return &Split{Kind: kind, Plain: plain, MaxLen: maxLen, BSMax: bsmax, packed: av.Pack(nil, 0)}
}

// SplitData is the exported, serializable form of a Split, used by the
// on-disk column store format and the client/server wire protocol.
type SplitData struct {
	Kind         Kind
	Plain        bool
	MaxLen       int
	BSMax        int
	EncRndOffset []byte
	AV           []uint32
	Head         []EntryRef
	Tail         []byte
}

// Data returns the serializable form of s. The AV field is the unpacked
// []uint32 interchange shape — stable across storage format versions and
// wire peers; the storage layer re-packs it for the v2 on-disk layout. It
// is materialized transiently (not cached on s), so snapshotting a large
// table does not inflate the split's resident footprint. The returned
// slices alias s and must not be modified.
func (s *Split) Data() SplitData {
	return SplitData{
		Kind:         s.Kind,
		Plain:        s.Plain,
		MaxLen:       s.MaxLen,
		BSMax:        s.BSMax,
		EncRndOffset: s.EncRndOffset,
		AV:           s.avMirror(),
		Head:         s.head,
		Tail:         s.tail,
	}
}

// FromData reconstructs a Split from its serialized form, validating the
// structural invariants an untrusted file or peer could violate.
func FromData(d SplitData) (*Split, error) {
	if !d.Kind.Valid() {
		return nil, fmt.Errorf("dict: invalid kind %d", int(d.Kind))
	}
	if d.MaxLen <= 0 {
		return nil, fmt.Errorf("dict: invalid max length %d", d.MaxLen)
	}
	for i, ref := range d.Head {
		end := uint64(ref.Off) + uint64(ref.Len)
		if end > uint64(len(d.Tail)) {
			return nil, fmt.Errorf("dict: entry %d reference [%d,%d) exceeds tail size %d",
				i, ref.Off, end, len(d.Tail))
		}
	}
	for j, vid := range d.AV {
		if int(vid) >= len(d.Head) {
			return nil, fmt.Errorf("dict: row %d references ValueID %d >= |D|=%d", j, vid, len(d.Head))
		}
	}
	if d.Kind.Order() == OrderRotated && len(d.Head) > 0 && len(d.EncRndOffset) == 0 {
		return nil, fmt.Errorf("dict: rotated dictionary lacks rotation offset")
	}
	return &Split{
		Kind:         d.Kind,
		Plain:        d.Plain,
		MaxLen:       d.MaxLen,
		BSMax:        d.BSMax,
		EncRndOffset: d.EncRndOffset,
		packed:       av.PackEncoded(d.AV, len(d.Head)),
		head:         d.Head,
		tail:         d.Tail,
	}, nil
}

// rotOffsetPlain encodes a rotation offset for plain splits.
func rotOffsetPlain(off uint64) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint64(b, off)
	return b
}

// DecodeRotOffset decodes an 8-byte big-endian rotation offset as produced
// for plain splits or decrypted from EncRndOffset inside the enclave.
func DecodeRotOffset(b []byte) (uint64, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("dict: rotation offset has %d bytes, want 8", len(b))
	}
	return binary.BigEndian.Uint64(b), nil
}

// VerifyCorrectness checks split correctness per Definition 1: for every row
// j, decrypt(D[AV[j]]) must equal col[j]. decrypt is applied to each entry
// payload; pass an identity function for plain splits. Intended for tests
// and the data owner's post-build sanity check.
func (s *Split) VerifyCorrectness(col [][]byte, decrypt func([]byte) ([]byte, error)) error {
	if len(col) != s.Rows() {
		return fmt.Errorf("dict: column has %d rows, split has %d", len(col), s.Rows())
	}
	// Decrypt each dictionary entry once, then check all rows.
	plain := make([][]byte, s.Len())
	for i := range plain {
		v, err := decrypt(s.Entry(i))
		if err != nil {
			return fmt.Errorf("dict: decrypt entry %d: %w", i, err)
		}
		plain[i] = v
	}
	codes := s.avMirror()
	for j, vid := range codes {
		if int(vid) >= len(plain) {
			return fmt.Errorf("dict: row %d references ValueID %d >= |D|=%d", j, vid, len(plain))
		}
		if string(plain[vid]) != string(col[j]) {
			return fmt.Errorf("dict: row %d: D[%d]=%q != C[%d]=%q", j, vid, plain[vid], j, col[j])
		}
	}
	if err := s.verifyRepetition(plain, codes); err != nil {
		return err
	}
	return nil
}

// verifyRepetition checks the repetition option's structural invariants on
// the decrypted dictionary (paper Table 3).
func (s *Split) verifyRepetition(plain [][]byte, codes []uint32) error {
	counts := make(map[string]int, len(plain))
	for _, v := range plain {
		counts[string(v)]++
	}
	vidUse := make([]int, len(plain))
	for _, vid := range codes {
		vidUse[vid]++
	}
	switch s.Kind.Repetition() {
	case RepRevealing:
		for v, c := range counts {
			if c != 1 {
				return fmt.Errorf("dict: revealing split stores %q %d times", v, c)
			}
		}
	case RepSmoothing:
		for i, use := range vidUse {
			if use < 1 || use > s.BSMax {
				return fmt.Errorf("dict: smoothing bucket %d used %d times, want 1..%d", i, use, s.BSMax)
			}
		}
	case RepHiding:
		if len(plain) != s.Rows() {
			return fmt.Errorf("dict: hiding split has |D|=%d != |AV|=%d", len(plain), s.Rows())
		}
		for i, use := range vidUse {
			if use != 1 {
				return fmt.Errorf("dict: hiding ValueID %d used %d times, want 1", i, use)
			}
		}
	}
	return nil
}
