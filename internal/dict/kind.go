// Package dict implements EncDBDB's dictionary encoding core: the split of a
// column into a dictionary and an attribute vector (paper §2.1, Definition
// 1), and the nine encrypted dictionary construction algorithms EncDB 1–9
// (paper §4.1).
//
// An encrypted dictionary is defined by one option from each of two
// dimensions (paper Table 2):
//
//	              sorted   rotated  unsorted
//	revealing      ED1       ED2      ED3
//	smoothing      ED4       ED5      ED6
//	hiding         ED7       ED8      ED9
//
// The repetition option controls how often each plaintext value is inserted
// into the dictionary (frequency leakage and |D|, Table 3); the order option
// controls the arrangement of dictionary entries (order leakage and search
// complexity, Table 4).
//
// Following the paper's implementation (§5), dictionaries are stored as a
// fixed-size head (offset/length references in dictionary order) pointing
// into a variable-length tail whose payloads are laid out in random order.
package dict

import (
	"fmt"
	"strings"
)

// Kind identifies one of the nine encrypted dictionary types.
type Kind int

// The nine encrypted dictionaries of paper Table 2.
const (
	ED1 Kind = iota + 1 // frequency revealing, sorted
	ED2                 // frequency revealing, rotated
	ED3                 // frequency revealing, unsorted
	ED4                 // frequency smoothing, sorted
	ED5                 // frequency smoothing, rotated
	ED6                 // frequency smoothing, unsorted
	ED7                 // frequency hiding, sorted
	ED8                 // frequency hiding, rotated
	ED9                 // frequency hiding, unsorted
)

// Repetition is the repetition dimension of an encrypted dictionary: how
// often values are repeated in D, which bounds the frequency leakage.
type Repetition int

// Repetition options (paper Table 3).
const (
	RepRevealing Repetition = iota + 1 // each unique value once: full frequency leakage
	RepSmoothing                       // random buckets of size <= bsmax: bounded leakage
	RepHiding                          // one entry per row: no frequency leakage
)

// Order is the order dimension of an encrypted dictionary: the arrangement
// of values in D, which bounds the order leakage.
type Order int

// Order options (paper Table 4).
const (
	OrderSorted   Order = iota + 1 // lexicographically sorted: full order leakage
	OrderRotated                   // sorted then rotated by a random offset: bounded leakage
	OrderUnsorted                  // randomly shuffled: no order leakage
)

// Valid reports whether k is one of ED1–ED9.
func (k Kind) Valid() bool { return k >= ED1 && k <= ED9 }

// Repetition returns k's repetition option.
func (k Kind) Repetition() Repetition {
	switch k {
	case ED1, ED2, ED3:
		return RepRevealing
	case ED4, ED5, ED6:
		return RepSmoothing
	default:
		return RepHiding
	}
}

// Order returns k's order option.
func (k Kind) Order() Order {
	switch k {
	case ED1, ED4, ED7:
		return OrderSorted
	case ED2, ED5, ED8:
		return OrderRotated
	default:
		return OrderUnsorted
	}
}

// String returns the paper's name for k ("ED1" … "ED9").
func (k Kind) String() string {
	if !k.Valid() {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return fmt.Sprintf("ED%d", int(k))
}

// ParseKind parses "ED1" … "ED9" (case-insensitive).
func ParseKind(s string) (Kind, error) {
	u := strings.ToUpper(strings.TrimSpace(s))
	if len(u) == 3 && strings.HasPrefix(u, "ED") && u[2] >= '1' && u[2] <= '9' {
		return Kind(u[2]-'1') + ED1, nil
	}
	return 0, fmt.Errorf("dict: unknown encrypted dictionary kind %q", s)
}

// String returns a human-readable name for the repetition option.
func (r Repetition) String() string {
	switch r {
	case RepRevealing:
		return "frequency revealing"
	case RepSmoothing:
		return "frequency smoothing"
	case RepHiding:
		return "frequency hiding"
	default:
		return fmt.Sprintf("Repetition(%d)", int(r))
	}
}

// String returns a human-readable name for the order option.
func (o Order) String() string {
	switch o {
	case OrderSorted:
		return "sorted"
	case OrderRotated:
		return "rotated"
	case OrderUnsorted:
		return "unsorted"
	default:
		return fmt.Sprintf("Order(%d)", int(o))
	}
}
