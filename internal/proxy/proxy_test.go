package proxy_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/pae"
	"github.com/encdbdb/encdbdb/internal/proxy"
)

// newStack wires a provisioned enclave, an engine, and a proxy — the full
// trusted/untrusted split of paper Figure 2, in process.
func newStack(t testing.TB) *proxy.Proxy {
	t.Helper()
	plat, err := enclave.NewPlatform()
	if err != nil {
		t.Fatalf("NewPlatform: %v", err)
	}
	encl, err := plat.Launch(enclave.Config{Identity: "proxy-test"})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	master := pae.MustGen()
	sealed, err := enclave.SealKey(encl.Quote(nil), master)
	if err != nil {
		t.Fatalf("SealKey: %v", err)
	}
	if err := encl.Provision(sealed); err != nil {
		t.Fatalf("Provision: %v", err)
	}
	db := engine.New(encl)
	p, err := proxy.New(master, db)
	if err != nil {
		t.Fatalf("proxy.New: %v", err)
	}
	return p
}

func mustExec(t testing.TB, p *proxy.Proxy, sql string) *proxy.Result {
	t.Helper()
	res, err := p.Execute(context.Background(), sql)
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return res
}

// seed creates the standard demo table through SQL inserts (delta store) and
// returns the proxy. Every value ends up queryable even before a merge.
func seed(t testing.TB, fnameType, cityType string) *proxy.Proxy {
	t.Helper()
	p := newStack(t)
	mustExec(t, p, fmt.Sprintf("CREATE TABLE t1 (fname %s, city %s)", fnameType, cityType))
	rows := [][2]string{
		{"Hans", "Berlin"},
		{"Jessica", "Waterloo"},
		{"Archie", "Karlsruhe"},
		{"Ella", "Berlin"},
		{"Jessica", "Berlin"},
		{"Jessica", "Karlsruhe"},
	}
	for _, r := range rows {
		mustExec(t, p, fmt.Sprintf("INSERT INTO t1 VALUES ('%s', '%s')", r[0], r[1]))
	}
	return p
}

func sortedRows(res *proxy.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		out[i] = strings.Join(r, "|")
	}
	sort.Strings(out)
	return out
}

func TestEndToEndRangeQuery(t *testing.T) {
	types := []string{"ED1(16)", "ED2(16)", "ED3(16)", "ED4(16) BSMAX 3", "ED5(16) BSMAX 3",
		"ED6(16) BSMAX 3", "ED7(16)", "ED8(16)", "ED9(16)", "PLAIN ED1(16)", "PLAIN ED5(16) BSMAX 2"}
	for _, ty := range types {
		t.Run(ty, func(t *testing.T) {
			p := seed(t, ty, "ED1(16)")
			res := mustExec(t, p, "SELECT fname FROM t1 WHERE fname >= 'Archie' AND fname <= 'Hans'")
			got := sortedRows(res)
			want := []string{"Archie", "Ella", "Hans"}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("rows = %v, want %v", got, want)
			}
		})
	}
}

func TestEndToEndPaperExampleQuery(t *testing.T) {
	// The paper's running example: SELECT FName FROM t1 WHERE FName < 'Ella'
	// is converted to >= -inf AND < 'Ella'.
	p := seed(t, "ED5(16) BSMAX 3", "ED1(16)")
	res := mustExec(t, p, "SELECT fname FROM t1 WHERE fname < 'Ella'")
	got := sortedRows(res)
	want := []string{"Archie"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("rows = %v, want %v", got, want)
	}
}

func TestEndToEndConjunctionAcrossColumns(t *testing.T) {
	p := seed(t, "ED2(16)", "ED9(16)")
	res := mustExec(t, p, "SELECT fname, city FROM t1 WHERE fname = 'Jessica' AND city = 'Berlin'")
	if len(res.Rows) != 1 || res.Rows[0][0] != "Jessica" || res.Rows[0][1] != "Berlin" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestEndToEndTwoPredicatesSameColumnMerge(t *testing.T) {
	// fname >= 'E' AND fname < 'I' must become a single filter.
	p := seed(t, "ED1(16)", "ED1(16)")
	res := mustExec(t, p, "SELECT fname FROM t1 WHERE fname >= 'E' AND fname < 'I'")
	got := sortedRows(res)
	want := []string{"Ella", "Hans"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("rows = %v, want %v", got, want)
	}
}

func TestEndToEndBetween(t *testing.T) {
	p := seed(t, "ED8(16)", "ED1(16)")
	res := mustExec(t, p, "SELECT fname FROM t1 WHERE fname BETWEEN 'E' AND 'J'")
	got := sortedRows(res)
	want := []string{"Ella", "Hans"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("rows = %v, want %v", got, want)
	}
}

func TestEndToEndCount(t *testing.T) {
	p := seed(t, "ED4(16) BSMAX 2", "ED1(16)")
	res := mustExec(t, p, "SELECT COUNT(*) FROM t1 WHERE city = 'Berlin'")
	if res.Kind != proxy.KindCount || res.Count != 3 {
		t.Errorf("res = %+v, want count 3", res)
	}
}

func TestEndToEndSelectStar(t *testing.T) {
	p := seed(t, "ED1(16)", "ED1(16)")
	res := mustExec(t, p, "SELECT * FROM t1")
	if len(res.Rows) != 6 || len(res.Columns) != 2 {
		t.Errorf("rows=%d cols=%d, want 6x2", len(res.Rows), len(res.Columns))
	}
}

func TestEndToEndUpdateDelete(t *testing.T) {
	p := seed(t, "ED5(16) BSMAX 3", "ED1(16)")
	up := mustExec(t, p, "UPDATE t1 SET city = 'Potsdam' WHERE fname = 'Hans'")
	if up.Affected != 1 {
		t.Fatalf("update affected = %d, want 1", up.Affected)
	}
	res := mustExec(t, p, "SELECT city FROM t1 WHERE fname = 'Hans'")
	if len(res.Rows) != 1 || res.Rows[0][0] != "Potsdam" {
		t.Fatalf("rows = %v", res.Rows)
	}
	del := mustExec(t, p, "DELETE FROM t1 WHERE fname = 'Jessica'")
	if del.Affected != 3 {
		t.Fatalf("delete affected = %d, want 3", del.Affected)
	}
	cnt := mustExec(t, p, "SELECT COUNT(*) FROM t1")
	if cnt.Count != 3 {
		t.Errorf("count after delete = %d, want 3", cnt.Count)
	}
}

func TestEndToEndMergeKeepsResults(t *testing.T) {
	p := seed(t, "ED5(16) BSMAX 3", "ED9(16)")
	before := sortedRows(mustExec(t, p, "SELECT fname, city FROM t1"))
	mustExec(t, p, "MERGE TABLE t1")
	after := sortedRows(mustExec(t, p, "SELECT fname, city FROM t1"))
	if fmt.Sprint(before) != fmt.Sprint(after) {
		t.Errorf("merge changed results:\nbefore %v\nafter  %v", before, after)
	}
	// And range queries still work post-merge.
	res := mustExec(t, p, "SELECT fname FROM t1 WHERE fname > 'H'")
	got := sortedRows(res)
	want := []string{"Hans", "Jessica", "Jessica", "Jessica"}
	// 'Hans' > 'H' lexicographically, so it is included.
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("rows = %v, want %v", got, want)
	}
}

func TestEndToEndMergeAsyncAndStatus(t *testing.T) {
	p := seed(t, "ED5(16) BSMAX 3", "ED9(16)")
	before := sortedRows(mustExec(t, p, "SELECT fname, city FROM t1"))

	status := mustExec(t, p, "MERGE STATUS t1")
	if status.Kind != proxy.KindRows || len(status.Rows) != 1 {
		t.Fatalf("status = %+v, want one row", status)
	}
	col := func(res *proxy.Result, name string) string {
		for i, c := range res.Columns {
			if c == name {
				return res.Rows[0][i]
			}
		}
		t.Fatalf("status lacks column %q (have %v)", name, res.Columns)
		return ""
	}
	if got := col(status, "delta_rows"); got != "6" {
		t.Errorf("delta_rows before merge = %s, want 6", got)
	}
	if got := col(status, "generation"); got != "0" {
		t.Errorf("generation before merge = %s, want 0", got)
	}

	mustExec(t, p, "MERGE TABLE t1 ASYNC")
	// Poll until the background merge lands; the statement itself must not
	// have waited for it, but the test needs the final state.
	deadline := time.Now().Add(10 * time.Second)
	for {
		status = mustExec(t, p, "MERGE STATUS t1")
		if col(status, "merging") == "false" && col(status, "merges") != "0" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background merge never completed: %+v", status.Rows)
		}
		time.Sleep(time.Millisecond)
	}
	if got := col(status, "delta_rows"); got != "0" {
		t.Errorf("delta_rows after merge = %s, want 0", got)
	}
	if got := col(status, "generation"); got != "1" {
		t.Errorf("generation after merge = %s, want 1", got)
	}
	if got := col(status, "main_rows"); got != "6" {
		t.Errorf("main_rows after merge = %s, want 6", got)
	}
	if got := col(status, "last_error"); got != "" {
		t.Errorf("last_error = %q, want empty", got)
	}
	after := sortedRows(mustExec(t, p, "SELECT fname, city FROM t1"))
	if fmt.Sprint(before) != fmt.Sprint(after) {
		t.Errorf("async merge changed results:\nbefore %v\nafter  %v", before, after)
	}
}

func TestEndToEndDropTable(t *testing.T) {
	p := seed(t, "ED1(16)", "ED1(16)")
	mustExec(t, p, "DROP TABLE t1")
	if _, err := p.Execute(context.Background(), "SELECT * FROM t1"); err == nil {
		t.Error("query on dropped table succeeded")
	}
}

func TestInsertRejectsOversizedValue(t *testing.T) {
	p := newStack(t)
	mustExec(t, p, "CREATE TABLE s (c ED1(4))")
	if _, err := p.Execute(context.Background(), "INSERT INTO s VALUES ('toolongvalue')"); err == nil {
		t.Error("oversized insert accepted")
	}
}

func TestQueryRejectsOversizedBound(t *testing.T) {
	p := newStack(t)
	mustExec(t, p, "CREATE TABLE s (c ED1(4))")
	mustExec(t, p, "INSERT INTO s VALUES ('ab')")
	if _, err := p.Execute(context.Background(), "SELECT c FROM s WHERE c = 'toolongvalue'"); err == nil {
		t.Error("oversized bound accepted")
	}
}

func TestExecuteSyntaxError(t *testing.T) {
	p := newStack(t)
	if _, err := p.Execute(context.Background(), "SELEKT"); err == nil {
		t.Error("syntax error not reported")
	}
}

func TestNewProxyValidation(t *testing.T) {
	if _, err := proxy.New(pae.Key("short"), nil); err == nil {
		t.Error("bad master key accepted")
	}
	if _, err := proxy.New(pae.MustGen(), nil); err == nil {
		t.Error("nil executor accepted")
	}
}

func TestInsertWithColumnList(t *testing.T) {
	p := newStack(t)
	mustExec(t, p, "CREATE TABLE s (a ED1(8), b ED1(8))")
	mustExec(t, p, "INSERT INTO s (b, a) VALUES ('bee', 'ay')")
	res := mustExec(t, p, "SELECT a, b FROM s")
	if len(res.Rows) != 1 || res.Rows[0][0] != "ay" || res.Rows[0][1] != "bee" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestEmptyStringValue(t *testing.T) {
	p := newStack(t)
	mustExec(t, p, "CREATE TABLE s (c ED1(8))")
	mustExec(t, p, "INSERT INTO s VALUES ('')")
	mustExec(t, p, "INSERT INTO s VALUES ('x')")
	res := mustExec(t, p, "SELECT c FROM s WHERE c = ''")
	if len(res.Rows) != 1 || res.Rows[0][0] != "" {
		t.Errorf("rows = %v, want one empty value", res.Rows)
	}
	all := mustExec(t, p, "SELECT c FROM s WHERE c >= ''")
	if len(all.Rows) != 2 {
		t.Errorf(">= '' matched %d rows, want 2", len(all.Rows))
	}
}
