package proxy

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/sqlparse"
)

// ShardStream is one shard's contribution to a scattered SELECT: a lazily
// opened cursor over that shard's matching rows. Open dials the shard only
// when called, so consumers that stop early (a satisfied LIMIT) never touch
// the remaining shards.
type ShardStream struct {
	// Shard names the owning shard for errors and diagnostics.
	Shard string
	// Open starts the shard's cursor. Failures are typed per-shard errors
	// from the sharding layer.
	Open func() (engine.ResultStream, error)
}

// ShardStreamer is the optional Executor surface a sharded fleet exposes so
// the proxy can run its distributed merge: instead of one concatenated
// fleet-wide result, the proxy gets one cursor per shard and combines them on
// the trusted side — ordered k-way merge for ORDER BY, partial aggregates
// for MIN/MAX/SUM/AVG. Executors without it are served by the materialized
// Select path.
type ShardStreamer interface {
	ShardStreams(ctx context.Context, q engine.Query) []ShardStream
}

// distributedSelect is the life of a distributed ORDER BY or aggregate
// SELECT: scatter the encrypted query, and per shard — in parallel — drain
// the shard's cursor and decrypt. ORDER BY sorts each shard's rows locally
// and k-way-merges the sorted runs (stopping at LIMIT); aggregates fold each
// shard's chunks into a constant-size partial and combine the partials. A
// one-shard fleet degenerates to exactly the single-node plan: one sorted
// run is its own merge, one partial its own total.
func (p *Proxy) distributedSelect(ctx context.Context, ss ShardStreamer, s *sqlparse.Select, schema engine.Schema) (*Result, error) {
	q, extraSort, err := p.selectPlan(s, schema)
	if err != nil {
		return nil, err
	}
	project := q.Project
	if len(project) == 0 {
		for _, def := range schema.Columns {
			project = append(project, def.Name)
		}
	}
	dec, err := p.decoders(schema, project)
	if err != nil {
		return nil, err
	}
	if len(s.Aggregates) > 0 {
		return p.scatterAggregate(ctx, ss, s, q, project, dec)
	}
	return p.scatterOrdered(ctx, ss, s, q, project, dec, extraSort)
}

// scatterShards runs fn against every shard's stream concurrently and
// returns the first failure in shard order.
func scatterShards(streams []ShardStream, fn func(i int, st engine.ResultStream) error) error {
	errs := make([]error, len(streams))
	var wg sync.WaitGroup
	for i, sh := range streams {
		wg.Add(1)
		go func(i int, sh ShardStream) {
			defer wg.Done()
			st, err := sh.Open()
			if err != nil {
				errs[i] = err
				return
			}
			defer st.Close()
			errs[i] = fn(i, st)
		}(i, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// decodeChunk decrypts one engine chunk into projection-ordered rows.
func decodeChunk(chunk *engine.Result, project []string, dec []func([]byte) (string, error)) ([][]string, error) {
	if len(chunk.Columns) != len(project) {
		return nil, fmt.Errorf("proxy: chunk has %d columns, want %d", len(chunk.Columns), len(project))
	}
	rows := make([][]string, chunk.Count)
	for ri := range rows {
		rows[ri] = make([]string, len(project))
	}
	for ci := range project {
		cells := chunk.Columns[ci].Cells
		if len(cells) != chunk.Count {
			return nil, fmt.Errorf("proxy: column %q chunk has %d cells, want %d", project[ci], len(cells), chunk.Count)
		}
		for ri, cell := range cells {
			v, err := dec[ci](cell)
			if err != nil {
				return nil, fmt.Errorf("proxy: decrypt %q: %w", project[ci], err)
			}
			rows[ri][ci] = v
		}
	}
	return rows, nil
}

// scatterOrdered runs the distributed ORDER BY: per shard, decrypt and sort
// the matching rows into a run; then merge the runs. Each run is sorted with
// the same stable comparator the single-node path uses, and the merge takes
// strictly-smaller keys only, so equal keys resolve to the earlier shard and,
// within a shard, to storage order — deterministic regardless of which shard
// answers first.
func (p *Proxy) scatterOrdered(ctx context.Context, ss ShardStreamer, s *sqlparse.Select, q engine.Query, project []string, dec []func([]byte) (string, error), extraSort bool) (*Result, error) {
	idx := -1
	for i, c := range project {
		if c == s.OrderBy {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("%w: %q", engine.ErrNoSuchColumn, s.OrderBy)
	}
	streams := ss.ShardStreams(ctx, q)
	runs := make([][][]string, len(streams))
	err := scatterShards(streams, func(i int, st engine.ResultStream) error {
		for {
			chunk, err := st.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			rows, err := decodeChunk(chunk, project, dec)
			if err != nil {
				return err
			}
			runs[i] = append(runs[i], rows...)
		}
		sort.SliceStable(runs[i], func(a, b int) bool {
			if s.OrderDesc {
				return runs[i][a][idx] > runs[i][b][idx]
			}
			return runs[i][a][idx] < runs[i][b][idx]
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, run := range runs {
		total += len(run)
	}
	want := total
	if s.Limit >= 0 && s.Limit < want {
		want = s.Limit
	}
	merged := make([][]string, 0, want)
	heads := make([]int, len(runs))
	for len(merged) < want {
		best := -1
		for i, run := range runs {
			if heads[i] >= len(run) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			a, b := run[heads[i]][idx], runs[best][heads[best]][idx]
			if (s.OrderDesc && a > b) || (!s.OrderDesc && a < b) {
				best = i
			}
		}
		merged = append(merged, runs[best][heads[best]])
		heads[best]++
	}
	out := &Result{Kind: KindRows, Columns: append([]string(nil), project...), Rows: merged, Count: total}
	if s.Limit >= 0 && total > s.Limit {
		out.Count = len(out.Rows)
	}
	if extraSort {
		for i := range out.Rows {
			out.Rows[i] = append(out.Rows[i][:idx], out.Rows[i][idx+1:]...)
		}
		out.Columns = append(out.Columns[:idx], out.Columns[idx+1:]...)
	}
	return out, nil
}

// partial is one shard's constant-size aggregate contribution: the matching
// row count plus, per aggregate, a running sum (SUM/AVG) or best value
// (MIN/MAX).
type partial struct {
	n    int
	sums []int64
	best []string
	has  []bool
}

// scatterAggregate folds every shard's chunks into a partial — never
// materializing a shard's full result — and combines the partials into the
// single aggregate row.
func (p *Proxy) scatterAggregate(ctx context.Context, ss ShardStreamer, s *sqlparse.Select, q engine.Query, project []string, dec []func([]byte) (string, error)) (*Result, error) {
	colIdx := make(map[string]int, len(project))
	for i, c := range project {
		colIdx[c] = i
	}
	for _, a := range s.Aggregates {
		if _, ok := colIdx[a.Column]; !ok {
			return nil, fmt.Errorf("%w: %q", engine.ErrNoSuchColumn, a.Column)
		}
	}
	streams := ss.ShardStreams(ctx, q)
	parts := make([]partial, len(streams))
	err := scatterShards(streams, func(i int, st engine.ResultStream) error {
		pt := partial{
			sums: make([]int64, len(s.Aggregates)),
			best: make([]string, len(s.Aggregates)),
			has:  make([]bool, len(s.Aggregates)),
		}
		for {
			chunk, err := st.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			rows, err := decodeChunk(chunk, project, dec)
			if err != nil {
				return err
			}
			pt.n += len(rows)
			for ai, a := range s.Aggregates {
				ci := colIdx[a.Column]
				for _, row := range rows {
					v := row[ci]
					switch a.Func {
					case sqlparse.AggMin, sqlparse.AggMax:
						if !pt.has[ai] ||
							(a.Func == sqlparse.AggMin && v < pt.best[ai]) ||
							(a.Func == sqlparse.AggMax && v > pt.best[ai]) {
							pt.best[ai], pt.has[ai] = v, true
						}
					default: // SUM, AVG
						n, err := numericCell(a, v)
						if err != nil {
							return err
						}
						pt.sums[ai] += n
					}
				}
			}
		}
		parts[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return combinePartials(s.Aggregates, parts), nil
}

// combinePartials merges per-shard partials into the final aggregate row,
// mirroring the single-node aggregate's shape: SUM and AVG sum the partial
// sums (AVG divides by the fleet-wide count), MIN/MAX take the best partial
// best, and zero matching rows yield empty values.
func combinePartials(aggs []sqlparse.Aggregate, parts []partial) *Result {
	total := 0
	for _, pt := range parts {
		total += pt.n
	}
	out := &Result{Kind: KindRows, Count: 1, Rows: [][]string{{}}}
	for ai, a := range aggs {
		out.Columns = append(out.Columns, fmt.Sprintf("%s(%s)", strings.ToLower(a.Func.String()), a.Column))
		if total == 0 {
			out.Rows[0] = append(out.Rows[0], "")
			continue
		}
		switch a.Func {
		case sqlparse.AggMin, sqlparse.AggMax:
			var best string
			seen := false
			for _, pt := range parts {
				if !pt.has[ai] {
					continue
				}
				if !seen ||
					(a.Func == sqlparse.AggMin && pt.best[ai] < best) ||
					(a.Func == sqlparse.AggMax && pt.best[ai] > best) {
					best, seen = pt.best[ai], true
				}
			}
			out.Rows[0] = append(out.Rows[0], best)
		case sqlparse.AggSum:
			var sum int64
			for _, pt := range parts {
				sum += pt.sums[ai]
			}
			out.Rows[0] = append(out.Rows[0], strconv.FormatInt(sum, 10))
		default: // AVG
			var sum int64
			for _, pt := range parts {
				sum += pt.sums[ai]
			}
			out.Rows[0] = append(out.Rows[0], strconv.FormatFloat(float64(sum)/float64(total), 'f', -1, 64))
		}
	}
	return out
}
