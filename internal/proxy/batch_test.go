package proxy_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"github.com/encdbdb/encdbdb/internal/proxy"
)

func TestExecBatchMixedStatements(t *testing.T) {
	p := newStack(t)
	sqls := []string{
		"CREATE TABLE bt (c ED1(8))",
		"INSERT INTO bt VALUES ('a')",
		"INSERT INTO bt VALUES ('b')",
		"INSERT INTO bt VALUES ('c')",
		"SELECT COUNT(*) FROM bt",
		"INSERT INTO bt VALUES ('d')",
	}
	results, err := p.ExecBatch(context.Background(), sqls)
	if err != nil {
		t.Fatalf("ExecBatch: %v", err)
	}
	if len(results) != len(sqls) {
		t.Fatalf("got %d results for %d statements", len(results), len(sqls))
	}
	if results[0].Kind != proxy.KindOK {
		t.Errorf("result 0 = %+v, want OK", results[0])
	}
	for i := 1; i <= 3; i++ {
		if results[i].Kind != proxy.KindAffected || results[i].Affected != 1 {
			t.Errorf("result %d = %+v, want 1 affected", i, results[i])
		}
	}
	if results[4].Kind != proxy.KindCount || results[4].Count != 3 {
		t.Errorf("count mid-batch = %+v, want 3 (inserts before the select must be applied)", results[4])
	}
	res, err := p.Execute(context.Background(), "SELECT COUNT(*) FROM bt")
	if err != nil || res.Count != 4 {
		t.Fatalf("final count = %+v, %v; want 4", res, err)
	}
}

func TestExecBatchGroupsPerTable(t *testing.T) {
	p := newStack(t)
	var sqls []string
	sqls = append(sqls, "CREATE TABLE g1 (c ED1(8))", "CREATE TABLE g2 (c ED1(8))")
	for i := 0; i < 5; i++ {
		sqls = append(sqls, fmt.Sprintf("INSERT INTO g1 VALUES ('a%d')", i))
	}
	for i := 0; i < 5; i++ {
		sqls = append(sqls, fmt.Sprintf("INSERT INTO g2 VALUES ('b%d')", i))
	}
	results, err := p.ExecBatch(context.Background(), sqls)
	if err != nil {
		t.Fatalf("ExecBatch: %v", err)
	}
	if len(results) != len(sqls) {
		t.Fatalf("got %d results for %d statements", len(results), len(sqls))
	}
	for _, table := range []string{"g1", "g2"} {
		res, err := p.Execute(context.Background(), "SELECT COUNT(*) FROM "+table)
		if err != nil || res.Count != 5 {
			t.Fatalf("%s count = %+v, %v", table, res, err)
		}
	}
}

func TestExecBatchParseErrorReportsStatement(t *testing.T) {
	p := newStack(t)
	_, err := p.ExecBatch(context.Background(), []string{"CREATE TABLE pe (c ED1(8))", "NOT SQL"})
	if err == nil || !strings.Contains(err.Error(), "statement 1") {
		t.Fatalf("err = %v, want statement 1 position", err)
	}
	// Parse errors are detected up front: nothing may have executed.
	if _, err := p.Execute(context.Background(), "SELECT COUNT(*) FROM pe"); err == nil {
		t.Fatal("table was created despite a parse error later in the batch")
	}
}

func TestExecBatchStopsAtRuntimeError(t *testing.T) {
	p := newStack(t)
	results, err := p.ExecBatch(context.Background(), []string{
		"CREATE TABLE re (c ED1(4))",
		"INSERT INTO re VALUES ('ok')",
		"INSERT INTO missing VALUES ('x')",
		"INSERT INTO re VALUES ('no')",
	})
	if err == nil {
		t.Fatal("batch with a failing statement succeeded")
	}
	if len(results) < 1 || results[0].Kind != proxy.KindOK {
		t.Fatalf("results before failure = %+v", results)
	}
	res, qerr := p.Execute(context.Background(), "SELECT COUNT(*) FROM re")
	if qerr != nil || res.Count != 1 {
		t.Fatalf("count = %+v, %v; want 1 (statement after the failure must not run)", res, qerr)
	}
}
