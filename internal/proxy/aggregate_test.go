package proxy_test

import (
	"context"
	"fmt"
	"testing"

	"github.com/encdbdb/encdbdb/internal/proxy"
)

// seedNumeric creates a table with zero-padded numeric prices.
func seedNumeric(t testing.TB) *proxy.Proxy {
	t.Helper()
	p := newStack(t)
	mustExec(t, p, "CREATE TABLE orders (item ED1(16), price ED5(8) BSMAX 4)")
	rows := [][2]string{
		{"apple", "00000300"},
		{"banana", "00000150"},
		{"cherry", "00000700"},
		{"apple", "00000250"},
	}
	for _, r := range rows {
		mustExec(t, p, fmt.Sprintf("INSERT INTO orders VALUES ('%s', '%s')", r[0], r[1]))
	}
	return p
}

func TestAggregateMinMax(t *testing.T) {
	p := seedNumeric(t)
	res := mustExec(t, p, "SELECT MIN(price), MAX(price) FROM orders")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0] != "00000150" || res.Rows[0][1] != "00000700" {
		t.Errorf("min/max = %v, want 00000150/00000700", res.Rows[0])
	}
	if res.Columns[0] != "min(price)" || res.Columns[1] != "max(price)" {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestAggregateSumAvg(t *testing.T) {
	p := seedNumeric(t)
	res := mustExec(t, p, "SELECT SUM(price), AVG(price) FROM orders WHERE item = 'apple'")
	if res.Rows[0][0] != "550" {
		t.Errorf("sum = %q, want 550", res.Rows[0][0])
	}
	if res.Rows[0][1] != "275" {
		t.Errorf("avg = %q, want 275", res.Rows[0][1])
	}
}

func TestAggregateSumRejectsNonNumeric(t *testing.T) {
	p := seedNumeric(t)
	if _, err := p.Execute(context.Background(), "SELECT SUM(item) FROM orders"); err == nil {
		t.Error("SUM over non-numeric column succeeded")
	}
}

func TestAggregateEmptyResult(t *testing.T) {
	p := seedNumeric(t)
	res := mustExec(t, p, "SELECT MIN(price) FROM orders WHERE item = 'durian'")
	if len(res.Rows) != 1 || res.Rows[0][0] != "" {
		t.Errorf("rows = %v, want one empty cell", res.Rows)
	}
}

func TestOrderBy(t *testing.T) {
	p := seedNumeric(t)
	res := mustExec(t, p, "SELECT item, price FROM orders ORDER BY price")
	want := []string{"banana", "apple", "apple", "cherry"}
	for i, w := range want {
		if res.Rows[i][0] != w {
			t.Fatalf("row %d = %v, want item %q (rows: %v)", i, res.Rows[i], w, res.Rows)
		}
	}
}

func TestOrderByDesc(t *testing.T) {
	p := seedNumeric(t)
	res := mustExec(t, p, "SELECT price FROM orders ORDER BY price DESC LIMIT 1")
	if len(res.Rows) != 1 || res.Rows[0][0] != "00000700" {
		t.Errorf("rows = %v, want the max price only", res.Rows)
	}
}

func TestOrderByUnprojectedColumn(t *testing.T) {
	// Sorting by a column that is not in the projection: it is rendered
	// internally and stripped again.
	p := seedNumeric(t)
	res := mustExec(t, p, "SELECT item FROM orders ORDER BY price DESC")
	if len(res.Columns) != 1 || res.Columns[0] != "item" {
		t.Fatalf("columns = %v, want [item]", res.Columns)
	}
	want := []string{"cherry", "apple", "apple", "banana"}
	for i, w := range want {
		if res.Rows[i][0] != w {
			t.Fatalf("row %d = %v, want %q", i, res.Rows[i], w)
		}
	}
}

func TestLimit(t *testing.T) {
	p := seedNumeric(t)
	res := mustExec(t, p, "SELECT item FROM orders LIMIT 2")
	if len(res.Rows) != 2 {
		t.Errorf("rows = %d, want 2", len(res.Rows))
	}
	res = mustExec(t, p, "SELECT item FROM orders LIMIT 0")
	if len(res.Rows) != 0 {
		t.Errorf("rows = %d, want 0", len(res.Rows))
	}
	res = mustExec(t, p, "SELECT item FROM orders LIMIT 99")
	if len(res.Rows) != 4 {
		t.Errorf("rows = %d, want all 4", len(res.Rows))
	}
}

func TestOrderByUnknownColumn(t *testing.T) {
	p := seedNumeric(t)
	if _, err := p.Execute(context.Background(), "SELECT item FROM orders ORDER BY nope"); err == nil {
		t.Error("unknown ORDER BY column accepted")
	}
}

func TestInList(t *testing.T) {
	p := seedNumeric(t)
	res := mustExec(t, p, "SELECT item FROM orders WHERE item IN ('banana', 'cherry') ORDER BY item")
	if len(res.Rows) != 2 || res.Rows[0][0] != "banana" || res.Rows[1][0] != "cherry" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestInListWithDuplicateMembersAndRows(t *testing.T) {
	p := seedNumeric(t)
	// 'apple' occurs twice in the table; duplicate IN members must not
	// duplicate rows.
	res := mustExec(t, p, "SELECT item FROM orders WHERE item IN ('apple', 'apple')")
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v, want the two apple rows once each", res.Rows)
	}
}

func TestInListIntersectsRangePredicate(t *testing.T) {
	p := seedNumeric(t)
	res := mustExec(t, p, "SELECT item FROM orders WHERE item IN ('apple', 'cherry') AND item < 'b'")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v, want 2 apples", res.Rows)
	}
	for _, r := range res.Rows {
		if r[0] != "apple" {
			t.Errorf("row = %v, want apple", r)
		}
	}
}

func TestTwoInListsIntersect(t *testing.T) {
	p := seedNumeric(t)
	res := mustExec(t, p, "SELECT item FROM orders WHERE item IN ('apple', 'banana') AND item IN ('banana', 'cherry')")
	if len(res.Rows) != 1 || res.Rows[0][0] != "banana" {
		t.Errorf("rows = %v, want [banana]", res.Rows)
	}
}

func TestInListNoSurvivors(t *testing.T) {
	p := seedNumeric(t)
	res := mustExec(t, p, "SELECT COUNT(*) FROM orders WHERE item IN ('apple') AND item IN ('cherry')")
	if res.Count != 0 {
		t.Errorf("count = %d, want 0", res.Count)
	}
}

func TestInListAcrossColumnsAndKinds(t *testing.T) {
	p := seedNumeric(t)
	res := mustExec(t, p, "SELECT item FROM orders WHERE price IN ('00000150', '00000700') ORDER BY item")
	if len(res.Rows) != 2 || res.Rows[0][0] != "banana" || res.Rows[1][0] != "cherry" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestInListRejectsOversizedMember(t *testing.T) {
	p := seedNumeric(t)
	if _, err := p.Execute(context.Background(), "SELECT item FROM orders WHERE item IN ('waaaaaaaaaaaaaaaaaaytoolong')"); err == nil {
		t.Error("oversized IN member accepted")
	}
}

func TestAggregateWithRangeFilter(t *testing.T) {
	// Aggregation composes with encrypted range filters: the provider
	// evaluates the range, the proxy aggregates the decrypted result.
	p := seedNumeric(t)
	res := mustExec(t, p, "SELECT SUM(price) FROM orders WHERE price >= '00000200' AND price <= '00000400'")
	if res.Rows[0][0] != "550" { // 300 + 250
		t.Errorf("sum = %q, want 550", res.Rows[0][0])
	}
}
