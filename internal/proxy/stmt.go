package proxy

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/sqlparse"
)

// ErrStmtClosed is returned by executions of a closed prepared statement.
var ErrStmtClosed = errors.New("proxy: prepared statement closed")

// Stmt is a prepared statement: the SQL is parsed once, the table's schema
// is resolved once (one round trip against a remote provider), the statement
// is validated against it, and the per-column ciphers are derived up front.
// Each Exec/Query binds that execution's arguments into a copy of the parsed
// template and encrypts them with fresh IVs — repeated executions skip
// parsing and schema resolution entirely, which is the per-query crypto and
// planning work the paper's proxy re-pays on every call.
//
// A Stmt is safe for concurrent use. Its cached schema reflects the table at
// Prepare time; re-prepare after DDL that changes the table.
type Stmt struct {
	p        *Proxy
	template sqlparse.Statement
	nparams  int

	// schema is the cached resolution for table-bearing statements.
	schema    engine.Schema
	hasSchema bool

	closed atomic.Bool
}

// Prepare parses one SQL statement into a reusable prepared statement. The
// statement may contain '?' placeholders in any value position; executions
// supply the arguments. Statement-shape errors (bad syntax, unknown table,
// unknown columns) surface here rather than at execution time.
func (p *Proxy) Prepare(ctx context.Context, sql string) (*Stmt, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	s := &Stmt{p: p, template: st, nparams: sqlparse.NumParams(st)}
	if table, ok := stmtTable(st); ok {
		if s.schema, err = p.exec.Schema(table); err != nil {
			return nil, err
		}
		s.hasSchema = true
		if err := p.validateStmt(st, s.schema); err != nil {
			return nil, err
		}
		// Derive every encrypted column's cipher now so executions only
		// encrypt.
		for _, def := range s.schema.Columns {
			if def.Plain {
				continue
			}
			if _, err := p.cipher(table, def.Name); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}

// stmtTable names the table a statement resolves its schema against; DDL and
// merge statements need none (false).
func stmtTable(st sqlparse.Statement) (string, bool) {
	switch s := st.(type) {
	case *sqlparse.Select:
		return s.Table, true
	case *sqlparse.Insert:
		return s.Table, true
	case *sqlparse.Update:
		return s.Table, true
	case *sqlparse.Delete:
		return s.Table, true
	default:
		return "", false
	}
}

// validateStmt checks a statement's column references against the schema so
// a prepared statement fails fast at Prepare time.
func (p *Proxy) validateStmt(st sqlparse.Statement, schema engine.Schema) error {
	checkCol := func(name string) error {
		if _, ok := schema.Column(name); !ok {
			return fmt.Errorf("%w: %q", engine.ErrNoSuchColumn, name)
		}
		return nil
	}
	checkWhere := func(where []sqlparse.Predicate) error {
		for _, pred := range where {
			if err := checkCol(pred.Column); err != nil {
				return err
			}
		}
		return nil
	}
	switch s := st.(type) {
	case *sqlparse.Select:
		for _, c := range s.Columns {
			if err := checkCol(c); err != nil {
				return err
			}
		}
		for _, a := range s.Aggregates {
			if err := checkCol(a.Column); err != nil {
				return err
			}
		}
		if s.OrderBy != "" {
			if err := checkCol(s.OrderBy); err != nil {
				return err
			}
		}
		return checkWhere(s.Where)
	case *sqlparse.Insert:
		for _, c := range s.Columns {
			if err := checkCol(c); err != nil {
				return err
			}
		}
		cols := len(s.Columns)
		if cols == 0 {
			cols = len(schema.Columns)
		}
		if cols != len(s.Values) {
			return fmt.Errorf("proxy: INSERT has %d columns but %d values", cols, len(s.Values))
		}
		return nil
	case *sqlparse.Update:
		for _, a := range s.Set {
			if err := checkCol(a.Column); err != nil {
				return err
			}
		}
		return checkWhere(s.Where)
	case *sqlparse.Delete:
		return checkWhere(s.Where)
	default:
		return nil
	}
}

// NumParams returns the number of '?' placeholders the statement binds.
func (s *Stmt) NumParams() int { return s.nparams }

// bind renders args into a bound copy of the template.
func (s *Stmt) bind(args []any) (sqlparse.Statement, error) {
	if s.closed.Load() {
		return nil, ErrStmtClosed
	}
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	return sqlparse.Bind(s.template, vals)
}

// schemaRef returns the cached schema for execute, or nil for schema-less
// statements.
func (s *Stmt) schemaRef() *engine.Schema {
	if !s.hasSchema {
		return nil
	}
	return &s.schema
}

// Exec runs the prepared statement with the given arguments, returning a
// materialized result.
func (s *Stmt) Exec(ctx context.Context, args ...any) (*Result, error) {
	st, err := s.bind(args)
	if err != nil {
		return nil, err
	}
	return s.p.execute(ctx, st, s.schemaRef())
}

// Query runs a prepared SELECT with the given arguments, returning a
// streaming cursor.
func (s *Stmt) Query(ctx context.Context, args ...any) (*Rows, error) {
	st, err := s.bind(args)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("proxy: Query requires a SELECT statement, got %T (use Exec)", st)
	}
	return s.p.queryRows(ctx, sel, s.schema)
}

// Close releases the prepared statement. Closing is idempotent; executions
// after Close fail with ErrStmtClosed.
func (s *Stmt) Close() error {
	s.closed.Store(true)
	return nil
}
