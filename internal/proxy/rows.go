package proxy

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"

	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/sqlparse"
)

// ErrRowsClosed is returned by Scan after Close or after Next returned
// false.
var ErrRowsClosed = errors.New("proxy: rows closed")

// Rows is a streaming cursor over a SELECT result. Rows are decrypted
// incrementally as they are consumed, chunk by chunk, instead of
// materializing the whole result: against the embedded engine the rows are
// rendered lazily from a pinned version, against a remote provider they
// arrive as chunked result frames.
//
// Usage follows database/sql:
//
//	rows, err := sess.Query(ctx, "SELECT a, b FROM t WHERE a >= ?", lo)
//	defer rows.Close()
//	for rows.Next() {
//	    var a, b string
//	    if err := rows.Scan(&a, &b); err != nil { ... }
//	}
//	if err := rows.Err(); err != nil { ... }
//
// Cancelling the query's context mid-iteration stops the underlying scan
// (locally and over the wire) and surfaces context.Canceled through Err.
type Rows struct {
	cols []string
	// dec decodes one stored cell per column (decrypt or pass-through).
	dec    []func([]byte) (string, error)
	stream engine.ResultStream

	// chunk is the current engine chunk being served; row indexes into it.
	// Per the engine.ResultStream contract its cells are valid only until
	// the next stream.Next call — over a v3 wire connection they alias a
	// pooled frame buffer that recycles — so every cell must be decoded to
	// an owned string before the cursor advances past it.
	chunk *engine.Result
	row   int

	// mat serves an already-materialized, already-decrypted result (the
	// path queries with ORDER BY, aggregates, or COUNT take).
	mat    *Result
	matRow int

	// limit is the number of rows still allowed out (-1 = unlimited); the
	// streaming path applies LIMIT client-side by stopping early.
	limit int

	cur    []string
	err    error
	closed bool
}

// Columns returns the result column names in projection order.
func (r *Rows) Columns() []string { return append([]string(nil), r.cols...) }

// Next advances to the next row, fetching and decrypting the next chunk when
// the current one is exhausted. It returns false at the end of the result or
// on error — check Err afterwards.
func (r *Rows) Next() bool {
	if r.closed || r.err != nil {
		return false
	}
	if r.limit == 0 {
		r.close()
		return false
	}
	if r.mat != nil {
		if r.matRow >= len(r.mat.Rows) {
			r.close()
			return false
		}
		r.cur = r.mat.Rows[r.matRow]
		r.matRow++
		if r.limit > 0 {
			r.limit--
		}
		return true
	}
	for r.chunk == nil || r.row >= r.chunk.Count {
		chunk, err := r.stream.Next()
		if err == io.EOF {
			r.close()
			return false
		}
		if err != nil {
			r.err = err
			r.close()
			return false
		}
		r.chunk, r.row = chunk, 0
	}
	row, err := r.decodeRow(r.chunk, r.row)
	if err != nil {
		r.err = err
		r.close()
		return false
	}
	r.cur = row
	r.row++
	if r.limit > 0 {
		r.limit--
	}
	return true
}

// decodeRow decrypts row i of a chunk into projection order. Every decoder
// copies its cell (decrypt writes fresh plaintext; the pass-through does a
// string conversion), so the returned row owns its memory and survives the
// chunk buffer's recycling when the stream advances.
func (r *Rows) decodeRow(chunk *engine.Result, i int) ([]string, error) {
	if len(chunk.Columns) != len(r.cols) {
		return nil, fmt.Errorf("proxy: chunk has %d columns, want %d", len(chunk.Columns), len(r.cols))
	}
	out := make([]string, len(r.cols))
	for ci := range r.cols {
		cells := chunk.Columns[ci].Cells
		if i >= len(cells) {
			return nil, fmt.Errorf("proxy: column %q chunk has %d cells, want > %d", r.cols[ci], len(cells), i)
		}
		v, err := r.dec[ci](cells[i])
		if err != nil {
			return nil, fmt.Errorf("proxy: decrypt %q: %w", r.cols[ci], err)
		}
		out[ci] = v
	}
	return out, nil
}

// Row returns the current row (valid after a true Next). The slice is owned
// by the caller until the next Next call.
func (r *Rows) Row() []string { return r.cur }

// Scan copies the current row's values into dest pointers, one per column.
func (r *Rows) Scan(dest ...*string) error {
	if r.cur == nil {
		if r.err != nil {
			return r.err
		}
		return ErrRowsClosed
	}
	if len(dest) != len(r.cur) {
		return fmt.Errorf("proxy: Scan got %d destinations for %d columns", len(dest), len(r.cur))
	}
	for i, d := range dest {
		if d == nil {
			return fmt.Errorf("proxy: Scan destination %d is nil", i)
		}
		*d = r.cur[i]
	}
	return nil
}

// Err returns the error that terminated iteration, if any. Successful
// exhaustion and Close leave it nil.
func (r *Rows) Err() error { return r.err }

// Close releases the cursor. Against a remote provider an unfinished stream
// is cancelled server-side; the connection stays usable. Close is idempotent
// and implied by exhausting Next.
func (r *Rows) Close() error {
	r.close()
	return nil
}

func (r *Rows) close() {
	if r.closed {
		return
	}
	r.closed = true
	r.cur = nil
	if r.stream != nil {
		r.stream.Close()
	}
}

// Iter adapts the cursor to a Go 1.23 range-over-func sequence:
//
//	for row := range rows.Iter() { ... }
//	if err := rows.Err(); err != nil { ... }
//
// The cursor closes itself when the loop ends (normally or via break); check
// Err afterwards as with manual Next iteration.
func (r *Rows) Iter() iter.Seq[[]string] {
	return func(yield func([]string) bool) {
		defer r.Close()
		for r.Next() {
			if !yield(r.cur) {
				return
			}
		}
	}
}

// All drains the cursor into a materialized slice and closes it.
func (r *Rows) All() ([][]string, error) {
	defer r.Close()
	var out [][]string
	for r.Next() {
		out = append(out, r.cur)
	}
	return out, r.Err()
}

// Query parses and runs one SELECT, returning a streaming cursor. '?'
// placeholders are bound from args. Plain projections stream end-to-end;
// SELECTs that need the whole result on the trusted side first — ORDER BY,
// aggregates, COUNT(*) — materialize internally and iterate the finished
// result, so the cursor API is uniform.
func (p *Proxy) Query(ctx context.Context, sql string, args ...any) (*Rows, error) {
	st, err := parseAndBind(sql, args)
	if err != nil {
		return nil, err
	}
	sel, ok := st.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("proxy: Query requires a SELECT statement, got %T (use Exec)", st)
	}
	schema, err := p.exec.Schema(sel.Table)
	if err != nil {
		return nil, err
	}
	return p.queryRows(ctx, sel, schema)
}

// queryRows runs a bound SELECT as a cursor.
func (p *Proxy) queryRows(ctx context.Context, sel *sqlparse.Select, schema engine.Schema) (*Rows, error) {
	if !streamable(sel) {
		res, err := p.selectStmt(ctx, sel, schema)
		if err != nil {
			return nil, err
		}
		return materializedRows(res), nil
	}
	q, _, err := p.selectPlan(sel, schema)
	if err != nil {
		return nil, err
	}
	project := q.Project
	if len(project) == 0 {
		for _, def := range schema.Columns {
			project = append(project, def.Name)
		}
	}
	dec, err := p.decoders(schema, project)
	if err != nil {
		return nil, err
	}
	var stream engine.ResultStream
	if se, ok := p.exec.(StreamExecutor); ok {
		stream, err = se.SelectStream(ctx, q)
	} else {
		var res *engine.Result
		res, err = p.exec.Select(ctx, q)
		if err == nil {
			stream = engine.MaterializedStream(res)
		}
	}
	if err != nil {
		return nil, err
	}
	return &Rows{cols: project, dec: dec, stream: stream, limit: sel.Limit}, nil
}

// streamable reports whether a SELECT can stream: anything that must see the
// whole result on the trusted side first (sorting, aggregation, counting)
// cannot.
func streamable(sel *sqlparse.Select) bool {
	return !sel.Count && len(sel.Aggregates) == 0 && sel.OrderBy == ""
}

// decoders builds the per-column cell decoders for a projection.
func (p *Proxy) decoders(schema engine.Schema, project []string) ([]func([]byte) (string, error), error) {
	dec := make([]func([]byte) (string, error), len(project))
	for i, name := range project {
		def, ok := schema.Column(name)
		if !ok {
			return nil, fmt.Errorf("%w: %q", engine.ErrNoSuchColumn, name)
		}
		if def.Plain {
			dec[i] = func(cell []byte) (string, error) { return string(cell), nil }
			continue
		}
		c, err := p.cipher(schema.Table, name)
		if err != nil {
			return nil, err
		}
		dec[i] = func(cell []byte) (string, error) {
			v, err := c.Decrypt(cell)
			if err != nil {
				return "", err
			}
			return string(v), nil
		}
	}
	return dec, nil
}

// materializedRows wraps a decrypted Result as a cursor. Counts become a
// single-row result with one "count" column so Query has a uniform shape.
func materializedRows(res *Result) *Rows {
	if res.Kind == KindCount {
		return &Rows{
			mat: &Result{
				Kind:    KindRows,
				Columns: []string{"count"},
				Rows:    [][]string{{fmt.Sprint(res.Count)}},
			},
			cols:  []string{"count"},
			limit: -1,
		}
	}
	return &Rows{mat: res, cols: append([]string(nil), res.Columns...), limit: -1}
}
