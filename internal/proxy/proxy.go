// Package proxy implements EncDBDB's trusted proxy (paper §3.1, §4.2 steps
// 5 and 14): the component on the data owner's side that holds the master
// key SK_DB, rewrites application SQL into encrypted range queries, and
// decrypts results.
//
// Every WHERE predicate — equality, inequality, one- or two-sided range —
// is converted into one uniform, closed, two-sided range per column with
// -infinity / +infinity sentinels where a bound is absent, and the bounds
// are encrypted with PAE under fresh IVs. The untrusted provider therefore
// can distinguish neither the query type nor repeated queries.
package proxy

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/pae"
	"github.com/encdbdb/encdbdb/internal/search"
	"github.com/encdbdb/encdbdb/internal/sqlparse"
)

// Executor is the provider-side surface the proxy drives. *engine.DB
// implements it for embedded deployments; the wire client and pool implement
// it for remote ones. Data-plane operations take a context that is honored
// end-to-end: the embedded engine checks it between scan chunks, and the
// wire client relays cancellation to the server. Metadata and DDL operations
// (Schema, CreateTable, DropTable) are quick and stay context-free.
type Executor interface {
	Schema(table string) (engine.Schema, error)
	CreateTable(s engine.Schema) error
	DropTable(name string) error
	Select(ctx context.Context, q engine.Query) (*engine.Result, error)
	Insert(ctx context.Context, table string, row engine.Row) error
	Delete(ctx context.Context, table string, filters []engine.Filter) (int, error)
	Update(ctx context.Context, table string, filters []engine.Filter, set engine.Row) (int, error)
	Merge(ctx context.Context, table string) error
	// MergeAsync starts a background merge and returns immediately; started
	// is false when a merge is already in flight. MergeStatus reports the
	// table's delta/merge lifecycle so clients can observe the background
	// work they triggered.
	MergeAsync(ctx context.Context, table string) (started bool, err error)
	MergeStatus(ctx context.Context, table string) (engine.MergeInfo, error)
}

// BatchInserter is an optional Executor fast path: insert many rows into
// one table in a single call. For remote executors (wire.Client, wire.Pool)
// that is one round trip instead of one per row; the embedded engine takes
// its table write lock once instead of per row.
type BatchInserter interface {
	InsertBatch(ctx context.Context, table string, rows []engine.Row) error
}

// StreamExecutor is an optional Executor fast path: evaluate a Select and
// deliver the result in chunks instead of materializing it. The embedded
// engine renders lazily from a pinned version; the wire client receives
// chunked result frames. Executors without it are served by a materialized
// Select wrapped as a single chunk.
type StreamExecutor interface {
	SelectStream(ctx context.Context, q engine.Query) (engine.ResultStream, error)
}

// Statically ensure the embedded engine satisfies the executor surface and
// the fast paths.
var (
	_ Executor       = (*engine.DB)(nil)
	_ BatchInserter  = (*engine.DB)(nil)
	_ StreamExecutor = (*engine.DB)(nil)
)

// ResultKind tells callers how to interpret a Result.
type ResultKind int

// Result kinds.
const (
	// KindRows carries decrypted result rows.
	KindRows ResultKind = iota + 1
	// KindCount carries a COUNT(*) result.
	KindCount
	// KindAffected carries the row count of a write statement.
	KindAffected
	// KindOK carries no payload (DDL statements).
	KindOK
)

// Result is a decrypted, application-facing query result.
type Result struct {
	Kind     ResultKind
	Columns  []string
	Rows     [][]string
	Count    int
	Affected int
}

// Proxy is the trusted query gateway.
//
// Statements are parameterizable: every value position may be a '?'
// placeholder bound at execution time from the args of Execute, Query, or a
// prepared statement's Exec/Query. Binding happens on the trusted side —
// arguments are encrypted exactly like inline literals, so the provider's
// view is identical either way.
type Proxy struct {
	master pae.Key
	exec   Executor

	// ciphers caches derived per-column ciphers (keyed table+NUL+column) so
	// repeated statements skip the HKDF derivation — shared by ad-hoc and
	// prepared execution.
	cmu     sync.RWMutex
	ciphers map[string]*pae.Cipher
}

// New creates a proxy holding the data owner's master key.
func New(master pae.Key, exec Executor) (*Proxy, error) {
	if len(master) != pae.KeySize {
		return nil, pae.ErrBadKeySize
	}
	if exec == nil {
		return nil, errors.New("proxy: executor must not be nil")
	}
	return &Proxy{master: master, exec: exec, ciphers: make(map[string]*pae.Cipher)}, nil
}

// bindArgs renders Query/Exec arguments to the string values the engine
// stores. Only types with one obvious encoding are accepted.
func bindArgs(args []any) ([]string, error) {
	if len(args) == 0 {
		return nil, nil
	}
	out := make([]string, len(args))
	for i, a := range args {
		switch v := a.(type) {
		case string:
			out[i] = v
		case []byte:
			out[i] = string(v)
		case int:
			out[i] = strconv.Itoa(v)
		case int64:
			out[i] = strconv.FormatInt(v, 10)
		case uint64:
			out[i] = strconv.FormatUint(v, 10)
		case fmt.Stringer:
			out[i] = v.String()
		default:
			return nil, fmt.Errorf("proxy: unsupported argument %d type %T", i+1, a)
		}
	}
	return out, nil
}

// parseAndBind parses one statement and binds its placeholders.
func parseAndBind(sql string, args []any) (sqlparse.Statement, error) {
	st, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	vals, err := bindArgs(args)
	if err != nil {
		return nil, err
	}
	return sqlparse.Bind(st, vals)
}

// Execute parses and runs one SQL statement, returning a decrypted,
// materialized result. '?' placeholders in the statement are bound from args
// in order. For large SELECT results prefer Query, which streams.
func (p *Proxy) Execute(ctx context.Context, sql string, args ...any) (*Result, error) {
	st, err := parseAndBind(sql, args)
	if err != nil {
		return nil, err
	}
	return p.execute(ctx, st, nil)
}

// ExecBatch runs several statements in order, returning one result per
// statement. Runs of consecutive INSERTs into the same table ship through
// the executor's BatchInserter fast path when available, so bulk loads cost
// one round trip per run instead of one per row. On error, the returned
// slice holds the results of the statements completed before the failure.
func (p *Proxy) ExecBatch(ctx context.Context, sqls []string) ([]*Result, error) {
	stmts := make([]sqlparse.Statement, len(sqls))
	for i, sql := range sqls {
		st, err := sqlparse.Parse(sql)
		if err != nil {
			return nil, fmt.Errorf("proxy: statement %d: %w", i, err)
		}
		stmts[i] = st
	}
	return p.execStmts(ctx, stmts)
}

// ExecScript splits a semicolon-separated script, parses it as a whole —
// syntax errors name the failing statement and its absolute byte offset in
// the script — and executes it like ExecBatch.
func (p *Proxy) ExecScript(ctx context.Context, script string) ([]*Result, error) {
	stmts, err := sqlparse.ParseScript(script)
	if err != nil {
		return nil, err
	}
	return p.execStmts(ctx, stmts)
}

// execStmts executes parsed statements in order with the batched-INSERT
// fast path.
func (p *Proxy) execStmts(ctx context.Context, stmts []sqlparse.Statement) ([]*Result, error) {
	bi, _ := p.exec.(BatchInserter)
	results := make([]*Result, 0, len(stmts))
	for i := 0; i < len(stmts); {
		ins, ok := stmts[i].(*sqlparse.Insert)
		if !ok || bi == nil {
			res, err := p.execute(ctx, stmts[i], nil)
			if err != nil {
				return results, fmt.Errorf("proxy: statement %d: %w", i, err)
			}
			results = append(results, res)
			i++
			continue
		}
		j := i + 1
		for j < len(stmts) {
			next, ok := stmts[j].(*sqlparse.Insert)
			if !ok || next.Table != ins.Table {
				break
			}
			j++
		}
		schema, err := p.exec.Schema(ins.Table)
		if err != nil {
			return results, fmt.Errorf("proxy: statement %d: %w", i, err)
		}
		rows := make([]engine.Row, 0, j-i)
		for k := i; k < j; k++ {
			// The fast path bypasses execute(), so it must re-apply its
			// unbound-placeholder guard: a '?' must never silently insert
			// its zero value.
			if n := sqlparse.NumParams(stmts[k]); n > 0 {
				return results, fmt.Errorf("proxy: statement %d: statement has %d unbound placeholders", k, n)
			}
			row, err := p.insertRow(schema, stmts[k].(*sqlparse.Insert))
			if err != nil {
				return results, fmt.Errorf("proxy: statement %d: %w", k, err)
			}
			rows = append(rows, row)
		}
		if err := bi.InsertBatch(ctx, ins.Table, rows); err != nil {
			return results, err
		}
		for k := i; k < j; k++ {
			results = append(results, &Result{Kind: KindAffected, Affected: 1})
		}
		i = j
	}
	return results, nil
}

// execute runs one parsed, fully bound statement. schema, when non-nil, is a
// prepared statement's cached resolution and skips the per-call lookup.
func (p *Proxy) execute(ctx context.Context, st sqlparse.Statement, schema *engine.Schema) (*Result, error) {
	if n := sqlparse.NumParams(st); n > 0 {
		return nil, fmt.Errorf("proxy: statement has %d unbound placeholders", n)
	}
	schemaFor := func(table string) (engine.Schema, error) {
		if schema != nil && schema.Table == table {
			return *schema, nil
		}
		return p.exec.Schema(table)
	}
	switch s := st.(type) {
	case *sqlparse.CreateTable:
		return p.createTable(s)
	case *sqlparse.Select:
		sc, err := schemaFor(s.Table)
		if err != nil {
			return nil, err
		}
		return p.selectStmt(ctx, s, sc)
	case *sqlparse.Insert:
		sc, err := schemaFor(s.Table)
		if err != nil {
			return nil, err
		}
		return p.insert(ctx, s, sc)
	case *sqlparse.Update:
		sc, err := schemaFor(s.Table)
		if err != nil {
			return nil, err
		}
		return p.update(ctx, s, sc)
	case *sqlparse.Delete:
		sc, err := schemaFor(s.Table)
		if err != nil {
			return nil, err
		}
		return p.delete(ctx, s, sc)
	case *sqlparse.DropTable:
		if err := p.exec.DropTable(s.Table); err != nil {
			return nil, err
		}
		return &Result{Kind: KindOK}, nil
	case *sqlparse.MergeTable:
		if s.Async {
			if _, err := p.exec.MergeAsync(ctx, s.Table); err != nil {
				return nil, err
			}
			return &Result{Kind: KindOK}, nil
		}
		if err := p.exec.Merge(ctx, s.Table); err != nil {
			return nil, err
		}
		return &Result{Kind: KindOK}, nil
	case *sqlparse.MergeStatus:
		info, err := p.exec.MergeStatus(ctx, s.Table)
		if err != nil {
			return nil, err
		}
		return mergeStatusResult(info), nil
	default:
		return nil, fmt.Errorf("proxy: unsupported statement %T", st)
	}
}

// mergeStatusResult renders a MergeInfo as a one-row result.
func mergeStatusResult(info engine.MergeInfo) *Result {
	return &Result{
		Kind: KindRows,
		Columns: []string{
			"generation", "merging", "main_rows", "delta_rows",
			"delta_bytes", "sealed_runs", "merges", "last_error",
		},
		Rows: [][]string{{
			strconv.FormatUint(info.Generation, 10),
			strconv.FormatBool(info.Merging),
			strconv.Itoa(info.MainRows),
			strconv.Itoa(info.DeltaRows),
			strconv.Itoa(info.DeltaBytes),
			strconv.Itoa(info.SealedRuns),
			strconv.FormatUint(info.Merges, 10),
			info.LastError,
		}},
		Count: 1,
	}
}

func (p *Proxy) createTable(s *sqlparse.CreateTable) (*Result, error) {
	schema := engine.Schema{Table: s.Table}
	for _, c := range s.Columns {
		schema.Columns = append(schema.Columns, engine.ColumnDef{
			Name:   c.Name,
			Kind:   c.Kind,
			MaxLen: c.MaxLen,
			BSMax:  c.BSMax,
			Plain:  c.Plain,
		})
	}
	if err := p.exec.CreateTable(schema); err != nil {
		return nil, err
	}
	return &Result{Kind: KindOK}, nil
}

// selectPlan converts a parsed SELECT into the provider-side query plus the
// bookkeeping the trusted side needs afterwards.
func (p *Proxy) selectPlan(s *sqlparse.Select, schema engine.Schema) (q engine.Query, extraSort bool, err error) {
	filters, err := p.Filters(schema, s.Where)
	if err != nil {
		return engine.Query{}, false, err
	}
	q = engine.Query{Table: s.Table, Filters: filters, CountOnly: s.Count}
	switch {
	case s.Count:
	case len(s.Aggregates) > 0:
		q.Project = aggregateColumns(s.Aggregates)
	case !s.Star:
		q.Project = s.Columns
	}
	// The sort column must be rendered even if not requested; it is
	// stripped again after sorting.
	if s.OrderBy != "" && len(s.Aggregates) == 0 && !s.Star && !s.Count && !contains(q.Project, s.OrderBy) {
		q.Project = append(append([]string(nil), q.Project...), s.OrderBy)
		extraSort = true
	}
	// LIMIT pushes down to the provider only when nothing on the trusted
	// side reorders or aggregates the result first — the first n rows in
	// RecordID order are then exactly the n rows the client would keep.
	if s.Limit > 0 && !s.Count && len(s.Aggregates) == 0 && s.OrderBy == "" {
		q.Limit = s.Limit
	}
	return q, extraSort, nil
}

func (p *Proxy) selectStmt(ctx context.Context, s *sqlparse.Select, schema engine.Schema) (*Result, error) {
	// Against a sharded executor, ORDER BY and aggregates combine per-shard
	// partials instead of concatenating the fleet-wide ciphertext result
	// first (COUNT needs no help: the executor sums shard counts itself).
	if ss, ok := p.exec.(ShardStreamer); ok && !s.Count && (s.OrderBy != "" || len(s.Aggregates) > 0) {
		return p.distributedSelect(ctx, ss, s, schema)
	}
	q, extraSort, err := p.selectPlan(s, schema)
	if err != nil {
		return nil, err
	}
	res, err := p.exec.Select(ctx, q)
	if err != nil {
		return nil, err
	}
	if s.Count {
		return &Result{Kind: KindCount, Count: res.Count}, nil
	}
	out, err := p.decryptResult(schema, res)
	if err != nil {
		return nil, err
	}
	if len(s.Aggregates) > 0 {
		return aggregate(s.Aggregates, out)
	}
	if err := orderAndLimit(s, out, extraSort); err != nil {
		return nil, err
	}
	return out, nil
}

// aggregateColumns lists the distinct columns the aggregates reference.
func aggregateColumns(aggs []sqlparse.Aggregate) []string {
	var cols []string
	for _, a := range aggs {
		if !contains(cols, a.Column) {
			cols = append(cols, a.Column)
		}
	}
	return cols
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// aggregate computes MIN/MAX/SUM/AVG over the decrypted result at the
// trusted side. The paper notes these "are easier to support than range
// searches" (§4.2); performing them after decryption keeps the provider's
// view unchanged. SUM and AVG require decimal integer values (store
// numbers zero-padded so lexicographic range filters work too).
func aggregate(aggs []sqlparse.Aggregate, rows *Result) (*Result, error) {
	colIdx := make(map[string]int, len(rows.Columns))
	for i, c := range rows.Columns {
		colIdx[c] = i
	}
	out := &Result{Kind: KindRows, Count: 1, Rows: [][]string{{}}}
	for _, a := range aggs {
		out.Columns = append(out.Columns, fmt.Sprintf("%s(%s)", strings.ToLower(a.Func.String()), a.Column))
		idx, ok := colIdx[a.Column]
		if !ok {
			return nil, fmt.Errorf("%w: %q", engine.ErrNoSuchColumn, a.Column)
		}
		val, err := aggregateOne(a, rows.Rows, idx)
		if err != nil {
			return nil, err
		}
		out.Rows[0] = append(out.Rows[0], val)
	}
	return out, nil
}

func aggregateOne(a sqlparse.Aggregate, rows [][]string, idx int) (string, error) {
	if len(rows) == 0 {
		return "", nil
	}
	switch a.Func {
	case sqlparse.AggMin, sqlparse.AggMax:
		best := rows[0][idx]
		for _, r := range rows[1:] {
			v := r[idx]
			if (a.Func == sqlparse.AggMin && v < best) || (a.Func == sqlparse.AggMax && v > best) {
				best = v
			}
		}
		return best, nil
	default: // SUM, AVG
		var sum int64
		for _, r := range rows {
			n, err := numericCell(a, r[idx])
			if err != nil {
				return "", err
			}
			sum += n
		}
		if a.Func == sqlparse.AggSum {
			return strconv.FormatInt(sum, 10), nil
		}
		return strconv.FormatFloat(float64(sum)/float64(len(rows)), 'f', -1, 64), nil
	}
}

// numericCell parses one SUM/AVG input value. Numbers are stored zero-padded
// so lexicographic range filters work; the padding is stripped before
// parsing, with the all-zero value spelled out as 0.
func numericCell(a sqlparse.Aggregate, v string) (int64, error) {
	n, err := strconv.ParseInt(strings.TrimLeft(v, "0"), 10, 64)
	if err != nil {
		if strings.Trim(v, "0") == "" && v != "" {
			return 0, nil // all-zero value
		}
		return 0, fmt.Errorf("proxy: %s(%s): value %q is not numeric", a.Func, a.Column, v)
	}
	return n, nil
}

// orderAndLimit applies ORDER BY and LIMIT at the trusted side, then strips
// a sort column that was rendered only for ordering.
func orderAndLimit(s *sqlparse.Select, out *Result, extraSort bool) error {
	if s.OrderBy != "" {
		idx := -1
		for i, c := range out.Columns {
			if c == s.OrderBy {
				idx = i
				break
			}
		}
		if idx < 0 {
			return fmt.Errorf("%w: %q", engine.ErrNoSuchColumn, s.OrderBy)
		}
		sort.SliceStable(out.Rows, func(a, b int) bool {
			if s.OrderDesc {
				return out.Rows[a][idx] > out.Rows[b][idx]
			}
			return out.Rows[a][idx] < out.Rows[b][idx]
		})
		if extraSort {
			for i := range out.Rows {
				out.Rows[i] = append(out.Rows[i][:idx], out.Rows[i][idx+1:]...)
			}
			out.Columns = append(out.Columns[:idx], out.Columns[idx+1:]...)
		}
	}
	if s.Limit >= 0 && len(out.Rows) > s.Limit {
		out.Rows = out.Rows[:s.Limit]
		out.Count = len(out.Rows)
	}
	return nil
}

func (p *Proxy) insert(ctx context.Context, s *sqlparse.Insert, schema engine.Schema) (*Result, error) {
	row, err := p.insertRow(schema, s)
	if err != nil {
		return nil, err
	}
	if err := p.exec.Insert(ctx, s.Table, row); err != nil {
		return nil, err
	}
	return &Result{Kind: KindAffected, Affected: 1}, nil
}

// insertRow validates and encrypts one INSERT statement's values into an
// engine row.
func (p *Proxy) insertRow(schema engine.Schema, s *sqlparse.Insert) (engine.Row, error) {
	cols := s.Columns
	if len(cols) == 0 {
		for _, def := range schema.Columns {
			cols = append(cols, def.Name)
		}
	}
	if len(cols) != len(s.Values) {
		return nil, fmt.Errorf("proxy: INSERT has %d columns but %d values", len(cols), len(s.Values))
	}
	row := make(engine.Row, len(cols))
	for i, name := range cols {
		def, ok := schema.Column(name)
		if !ok {
			return nil, fmt.Errorf("%w: %q", engine.ErrNoSuchColumn, name)
		}
		v := []byte(s.Values[i].S)
		if err := validateValue(def, v); err != nil {
			return nil, err
		}
		cell, err := p.encryptCell(s.Table, def, v)
		if err != nil {
			return nil, err
		}
		row[name] = cell
	}
	return row, nil
}

func (p *Proxy) update(ctx context.Context, s *sqlparse.Update, schema engine.Schema) (*Result, error) {
	filters, err := p.Filters(schema, s.Where)
	if err != nil {
		return nil, err
	}
	set := make(engine.Row, len(s.Set))
	for _, a := range s.Set {
		def, ok := schema.Column(a.Column)
		if !ok {
			return nil, fmt.Errorf("%w: %q", engine.ErrNoSuchColumn, a.Column)
		}
		v := []byte(a.Value.S)
		if err := validateValue(def, v); err != nil {
			return nil, err
		}
		cell, err := p.encryptCell(s.Table, def, v)
		if err != nil {
			return nil, err
		}
		set[a.Column] = cell
	}
	n, err := p.exec.Update(ctx, s.Table, filters, set)
	if err != nil {
		return nil, err
	}
	return &Result{Kind: KindAffected, Affected: n}, nil
}

func (p *Proxy) delete(ctx context.Context, s *sqlparse.Delete, schema engine.Schema) (*Result, error) {
	filters, err := p.Filters(schema, s.Where)
	if err != nil {
		return nil, err
	}
	n, err := p.exec.Delete(ctx, s.Table, filters)
	if err != nil {
		return nil, err
	}
	return &Result{Kind: KindAffected, Affected: n}, nil
}

// encryptCell encrypts one value for an encrypted column; plain columns pass
// through.
func (p *Proxy) encryptCell(table string, def engine.ColumnDef, v []byte) ([]byte, error) {
	if def.Plain {
		return v, nil
	}
	c, err := p.cipher(table, def.Name)
	if err != nil {
		return nil, err
	}
	return c.Encrypt(v)
}

// cipher returns the column's derived cipher, caching it so repeated
// statements (prepared or ad-hoc) pay the key derivation once.
func (p *Proxy) cipher(table, column string) (*pae.Cipher, error) {
	k := table + "\x00" + column
	p.cmu.RLock()
	c := p.ciphers[k]
	p.cmu.RUnlock()
	if c != nil {
		return c, nil
	}
	key, err := pae.Derive(p.master, table, column)
	if err != nil {
		return nil, err
	}
	c, err = pae.NewCipher(key)
	if err != nil {
		return nil, err
	}
	p.cmu.Lock()
	p.ciphers[k] = c
	p.cmu.Unlock()
	return c, nil
}

// decryptResult turns the provider's ciphertext cells into plaintext rows
// (paper step 14).
func (p *Proxy) decryptResult(schema engine.Schema, res *engine.Result) (*Result, error) {
	out := &Result{Kind: KindRows, Count: res.Count}
	if len(res.Columns) == 0 {
		return out, nil
	}
	out.Rows = make([][]string, res.Count)
	for i := range out.Rows {
		out.Rows[i] = make([]string, len(res.Columns))
	}
	for ci, rc := range res.Columns {
		out.Columns = append(out.Columns, rc.Column)
		def, ok := schema.Column(rc.Column)
		if !ok {
			return nil, fmt.Errorf("%w: %q", engine.ErrNoSuchColumn, rc.Column)
		}
		if len(rc.Cells) != res.Count {
			return nil, fmt.Errorf("proxy: column %q has %d cells, want %d", rc.Column, len(rc.Cells), res.Count)
		}
		if def.Plain {
			for ri, cell := range rc.Cells {
				out.Rows[ri][ci] = string(cell)
			}
			continue
		}
		c, err := p.cipher(rc.Table, rc.Column)
		if err != nil {
			return nil, err
		}
		for ri, cell := range rc.Cells {
			v, err := c.Decrypt(cell)
			if err != nil {
				return nil, fmt.Errorf("proxy: decrypt %q row %d: %w", rc.Column, ri, err)
			}
			out.Rows[ri][ci] = string(v)
		}
	}
	return out, nil
}

// validateValue enforces column value rules at the trusted side for friendly
// errors (the enclave re-validates).
func validateValue(def engine.ColumnDef, v []byte) error {
	if len(v) > def.MaxLen {
		return fmt.Errorf("proxy: value %q exceeds %s(%d)", v, def.Kind, def.MaxLen)
	}
	for _, b := range v {
		if b == 0 {
			return fmt.Errorf("proxy: value for %q contains NUL byte", def.Name)
		}
	}
	return nil
}

// Filters converts the conjunctive WHERE predicates into one encrypted
// filter per referenced column. Range/equality predicates on the same
// column are intersected into a single two-sided range (the paper's example
// rewrites `FName < 'Ella'` into `FName >= -inf AND FName < 'Ella'`;
// conversely two user bounds merge into one range); IN-lists become the
// union of per-member equality ranges, each intersected with the column's
// range constraints.
func (p *Proxy) Filters(schema engine.Schema, preds []sqlparse.Predicate) ([]engine.Filter, error) {
	type colState struct {
		def      engine.ColumnDef
		r        search.Range
		hasIn    bool
		inValues [][]byte
	}
	var order []string
	states := make(map[string]*colState)
	for _, pred := range preds {
		def, ok := schema.Column(pred.Column)
		if !ok {
			return nil, fmt.Errorf("%w: %q", engine.ErrNoSuchColumn, pred.Column)
		}
		cs, ok := states[pred.Column]
		if !ok {
			cs = &colState{def: def, r: fullRange(def)}
			states[pred.Column] = cs
			order = append(order, pred.Column)
		}
		if pred.Op == sqlparse.OpIn {
			members, err := inMembers(def, pred)
			if err != nil {
				return nil, err
			}
			if !cs.hasIn {
				cs.hasIn = true
				cs.inValues = members
			} else {
				cs.inValues = intersectValues(cs.inValues, members)
			}
			continue
		}
		pr, err := predicateRange(def, pred)
		if err != nil {
			return nil, err
		}
		cs.r = intersectRanges(cs.r, pr)
	}
	filters := make([]engine.Filter, 0, len(order))
	for _, name := range order {
		cs := states[name]
		ranges := []search.Range{cs.r}
		if cs.hasIn {
			ranges = ranges[:0]
			for _, v := range cs.inValues {
				r := intersectRanges(search.Eq(v), cs.r)
				if !r.Empty() {
					ranges = append(ranges, r)
				}
			}
			if len(ranges) == 0 {
				// Contradictory predicates: an explicitly empty range
				// keeps the provider's view uniform.
				ranges = []search.Range{{Start: []byte{0x01}, End: []byte{0x01}}}
			}
		}
		f, err := p.encryptFilter(schema.Table, cs.def, ranges)
		if err != nil {
			return nil, err
		}
		filters = append(filters, f)
	}
	return filters, nil
}

// inMembers validates and deduplicates an IN list.
func inMembers(def engine.ColumnDef, pred sqlparse.Predicate) ([][]byte, error) {
	seen := make(map[string]bool, len(pred.Values))
	var out [][]byte
	for _, m := range pred.Values {
		v := []byte(m.S)
		if err := validateValue(def, v); err != nil {
			return nil, err
		}
		if !seen[m.S] {
			seen[m.S] = true
			out = append(out, v)
		}
	}
	return out, nil
}

// intersectValues keeps the values present in both lists (conjunction of
// two IN predicates), preserving the first list's order.
func intersectValues(a, b [][]byte) [][]byte {
	inB := make(map[string]bool, len(b))
	for _, v := range b {
		inB[string(v)] = true
	}
	var out [][]byte
	for _, v := range a {
		if inB[string(v)] {
			out = append(out, v)
		}
	}
	return out
}

// fullRange is the column's [-inf, +inf] range: the empty string is the
// minimum NUL-free value, the all-0xFF string of the column width the
// maximum.
func fullRange(def engine.ColumnDef) search.Range {
	maxVal := make([]byte, def.MaxLen)
	for i := range maxVal {
		maxVal[i] = 0xFF
	}
	return search.Range{Start: nil, End: maxVal, StartIncl: true, EndIncl: true}
}

// predicateRange converts one SQL predicate into a range.
func predicateRange(def engine.ColumnDef, pred sqlparse.Predicate) (search.Range, error) {
	v := []byte(pred.Value.S)
	if err := validateValue(def, v); err != nil {
		return search.Range{}, err
	}
	full := fullRange(def)
	switch pred.Op {
	case sqlparse.OpEq:
		return search.Eq(v), nil
	case sqlparse.OpLt:
		return search.Range{Start: full.Start, End: v, StartIncl: true}, nil
	case sqlparse.OpLe:
		return search.Range{Start: full.Start, End: v, StartIncl: true, EndIncl: true}, nil
	case sqlparse.OpGt:
		return search.Range{Start: v, End: full.End, EndIncl: true}, nil
	case sqlparse.OpGe:
		return search.Range{Start: v, End: full.End, StartIncl: true, EndIncl: true}, nil
	case sqlparse.OpBetween:
		v2 := []byte(pred.Value2.S)
		if err := validateValue(def, v2); err != nil {
			return search.Range{}, err
		}
		return search.Closed(v, v2), nil
	default:
		return search.Range{}, fmt.Errorf("proxy: unsupported operator %v", pred.Op)
	}
}

// intersectRanges computes the conjunction of two ranges on one column.
func intersectRanges(a, b search.Range) search.Range {
	out := a
	switch c := bytes.Compare(a.Start, b.Start); {
	case c < 0:
		out.Start, out.StartIncl = b.Start, b.StartIncl
	case c == 0:
		out.StartIncl = a.StartIncl && b.StartIncl
	}
	switch c := bytes.Compare(a.End, b.End); {
	case c > 0:
		out.End, out.EndIncl = b.End, b.EndIncl
	case c == 0:
		out.EndIncl = a.EndIncl && b.EndIncl
	}
	return out
}

// encryptFilter encrypts the final per-column range set (plain columns keep
// plaintext bounds).
func (p *Proxy) encryptFilter(table string, def engine.ColumnDef, ranges []search.Range) (engine.Filter, error) {
	f := engine.Filter{Column: def.Name, Ranges: make([]enclave.EncRange, 0, len(ranges))}
	var c *pae.Cipher
	if !def.Plain {
		var err error
		if c, err = p.cipher(table, def.Name); err != nil {
			return engine.Filter{}, err
		}
	}
	for _, r := range ranges {
		enc := enclave.EncRange{StartIncl: r.StartIncl, EndIncl: r.EndIncl}
		if def.Plain {
			enc.Start, enc.End = r.Start, r.End
		} else {
			var err error
			if enc.Start, err = c.Encrypt(r.Start); err != nil {
				return engine.Filter{}, err
			}
			if enc.End, err = c.Encrypt(r.End); err != nil {
				return engine.Filter{}, err
			}
		}
		f.Ranges = append(f.Ranges, enc)
	}
	return f, nil
}
