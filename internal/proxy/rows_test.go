package proxy_test

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"testing"
)

// TestQueryStreamsRows: a plain projection streams and matches Execute.
func TestQueryStreamsRows(t *testing.T) {
	ctx := context.Background()
	p := seed(t, "ED5(16) BSMAX 3", "ED1(16)")
	rows, err := p.Query(ctx, "SELECT fname, city FROM t1 WHERE fname >= ? AND fname <= ?", "A", "Zz")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if got := rows.Columns(); !reflect.DeepEqual(got, []string{"fname", "city"}) {
		t.Fatalf("columns = %v", got)
	}
	var got []string
	for rows.Next() {
		var fname, city string
		if err := rows.Scan(&fname, &city); err != nil {
			t.Fatal(err)
		}
		got = append(got, fname+"|"+city)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	want := sortedRows(mustExec(t, p, "SELECT fname, city FROM t1"))
	sort.Strings(got)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("rows = %v, want %v", got, want)
	}
}

// TestQueryIter drives the Go 1.23 range-over-func adapter.
func TestQueryIter(t *testing.T) {
	p := seed(t, "ED1(16)", "ED1(16)")
	rows, err := p.Query(context.Background(), "SELECT fname FROM t1 WHERE city = ?", "Berlin")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for row := range rows.Iter() {
		if len(row) != 1 {
			t.Fatalf("row = %v", row)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("rows = %d, want 3", n)
	}
	// Break mid-iteration closes cleanly.
	rows2, err := p.Query(context.Background(), "SELECT fname FROM t1")
	if err != nil {
		t.Fatal(err)
	}
	for range rows2.Iter() {
		break
	}
	if err := rows2.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestQueryLimitStreams: LIMIT without ORDER BY stops the stream early.
func TestQueryLimitStreams(t *testing.T) {
	p := seed(t, "ED1(16)", "ED1(16)")
	rows, err := p.Query(context.Background(), "SELECT fname FROM t1 LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	got, err := rows.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("rows = %d, want 2", len(got))
	}
}

// TestQueryMaterializedPaths: ORDER BY, aggregates, and COUNT go through the
// materialized path but keep the cursor shape.
func TestQueryMaterializedPaths(t *testing.T) {
	ctx := context.Background()
	p := seed(t, "ED1(16)", "ED1(16)")

	rows, err := p.Query(ctx, "SELECT fname FROM t1 ORDER BY fname DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	got, err := rows.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0][0] < got[1][0] {
		t.Fatalf("ordered rows = %v", got)
	}

	rows, err = p.Query(ctx, "SELECT COUNT(*) FROM t1 WHERE city = ?", "Berlin")
	if err != nil {
		t.Fatal(err)
	}
	got, err = rows.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != "3" {
		t.Fatalf("count rows = %v", got)
	}

	rows, err = p.Query(ctx, "SELECT MIN(fname), MAX(fname) FROM t1")
	if err != nil {
		t.Fatal(err)
	}
	got, err = rows.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0][0] != "Archie" || got[0][1] != "Jessica" {
		t.Fatalf("aggregate rows = %v", got)
	}
}

// TestQueryRejectsNonSelect: writes must go through Exec.
func TestQueryRejectsNonSelect(t *testing.T) {
	p := seed(t, "ED1(16)", "ED1(16)")
	if _, err := p.Query(context.Background(), "DELETE FROM t1"); err == nil {
		t.Fatal("Query accepted a DELETE")
	}
}

// TestQueryScanErrors: Scan shape errors are reported without corrupting the
// cursor.
func TestQueryScanErrors(t *testing.T) {
	p := seed(t, "ED1(16)", "ED1(16)")
	rows, err := p.Query(context.Background(), "SELECT fname, city FROM t1")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	var only string
	if err := rows.Scan(&only); err == nil {
		t.Fatal("Scan before Next succeeded")
	}
	if !rows.Next() {
		t.Fatal(rows.Err())
	}
	if err := rows.Scan(&only); err == nil {
		t.Fatal("Scan with wrong arity succeeded")
	}
	var a, b string
	if err := rows.Scan(&a, &b); err != nil {
		t.Fatal(err)
	}
	if a == "" || b == "" {
		t.Fatalf("scan = %q, %q", a, b)
	}
}

// TestQueryManyRowsStreams pushes enough rows through Query to span several
// engine chunks.
func TestQueryManyRowsStreams(t *testing.T) {
	ctx := context.Background()
	p := newStack(t)
	mustExec(t, p, "CREATE TABLE big (v ED1(8))")
	var sqls []string
	for i := 0; i < 300; i++ {
		sqls = append(sqls, fmt.Sprintf("INSERT INTO big VALUES ('v%05d')", i))
	}
	if _, err := p.ExecBatch(ctx, sqls); err != nil {
		t.Fatal(err)
	}
	rows, err := p.Query(ctx, "SELECT v FROM big WHERE v >= ? AND v <= ?", "v", "w")
	if err != nil {
		t.Fatal(err)
	}
	got, err := rows.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 300 {
		t.Fatalf("rows = %d, want 300", len(got))
	}
}
