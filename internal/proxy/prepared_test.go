package proxy_test

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/pae"
	"github.com/encdbdb/encdbdb/internal/proxy"
	"github.com/encdbdb/encdbdb/internal/sqlparse"
)

// TestExecuteWithPlaceholders pins parameter binding end-to-end: bound
// arguments behave exactly like inline literals across statement kinds.
func TestExecuteWithPlaceholders(t *testing.T) {
	ctx := context.Background()
	p := seed(t, "ED5(16) BSMAX 3", "ED1(16)")

	res, err := p.Execute(ctx, "SELECT fname FROM t1 WHERE fname >= ? AND fname < ?", "A", "F")
	if err != nil {
		t.Fatal(err)
	}
	if got := sortedRows(res); !reflect.DeepEqual(got, []string{"Archie", "Ella"}) {
		t.Fatalf("rows = %v", got)
	}

	if _, err := p.Execute(ctx, "INSERT INTO t1 VALUES (?, ?)", "Nora", "Oslo"); err != nil {
		t.Fatal(err)
	}
	res, err = p.Execute(ctx, "SELECT COUNT(*) FROM t1 WHERE city = ?", "Oslo")
	if err != nil || res.Count != 1 {
		t.Fatalf("count = %v, %v", res, err)
	}

	if res, err = p.Execute(ctx, "UPDATE t1 SET city = ? WHERE fname = ?", "Bonn", "Nora"); err != nil || res.Affected != 1 {
		t.Fatalf("update = %v, %v", res, err)
	}
	if res, err = p.Execute(ctx, "DELETE FROM t1 WHERE city IN (?)", "Bonn"); err != nil || res.Affected != 1 {
		t.Fatalf("delete = %v, %v", res, err)
	}
}

// TestExecuteArgCountMismatch: binding errors carry the expected counts.
func TestExecuteArgCountMismatch(t *testing.T) {
	p := seed(t, "ED1(16)", "ED1(16)")
	_, err := p.Execute(context.Background(), "SELECT fname FROM t1 WHERE fname = ?")
	if err == nil || !strings.Contains(err.Error(), "placeholders") {
		t.Fatalf("err = %v, want placeholder-count error", err)
	}
	_, err = p.Execute(context.Background(), "SELECT fname FROM t1 WHERE fname = ?", "a", "b")
	if err == nil {
		t.Fatal("extra argument accepted")
	}
	_, err = p.Execute(context.Background(), "SELECT fname FROM t1 WHERE fname = ?", 3.14)
	if err == nil || !strings.Contains(err.Error(), "unsupported argument") {
		t.Fatalf("float argument: err = %v", err)
	}
}

// TestExecuteIntArgs: integer arguments render as decimal strings.
func TestExecuteIntArgs(t *testing.T) {
	ctx := context.Background()
	p := newStack(t)
	mustExec(t, p, "CREATE TABLE n (v ED1(8))")
	if _, err := p.Execute(ctx, "INSERT INTO n VALUES (?)", 42); err != nil {
		t.Fatal(err)
	}
	res, err := p.Execute(ctx, "SELECT COUNT(*) FROM n WHERE v = ?", int64(42))
	if err != nil || res.Count != 1 {
		t.Fatalf("count = %v, %v", res, err)
	}
}

// countingExecutor wraps an Executor counting Schema resolutions.
type countingExecutor struct {
	proxy.Executor
	schemaCalls atomic.Int64
}

func (c *countingExecutor) Schema(table string) (engine.Schema, error) {
	c.schemaCalls.Add(1)
	return c.Executor.Schema(table)
}

// newCountingStack builds a proxy whose executor counts schema lookups.
func newCountingStack(t testing.TB) (*proxy.Proxy, *countingExecutor) {
	t.Helper()
	plat, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	encl, err := plat.Launch(enclave.Config{Identity: "proxy-test"})
	if err != nil {
		t.Fatal(err)
	}
	master := pae.MustGen()
	sealed, err := enclave.SealKey(encl.Quote(nil), master)
	if err != nil {
		t.Fatal(err)
	}
	if err := encl.Provision(sealed); err != nil {
		t.Fatal(err)
	}
	ce := &countingExecutor{Executor: engine.New(encl)}
	p, err := proxy.New(master, ce)
	if err != nil {
		t.Fatal(err)
	}
	return p, ce
}

// TestPreparedAmortizesParseAndSchema is the acceptance pin: a prepared
// parameterized SELECT executed many times parses at most once and resolves
// the schema at most once; ad-hoc execution pays both per call.
func TestPreparedAmortizesParseAndSchema(t *testing.T) {
	ctx := context.Background()
	p, ce := newCountingStack(t)
	if _, err := p.Execute(ctx, "CREATE TABLE t (c ED1(8))"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(ctx, "INSERT INTO t VALUES ('x')"); err != nil {
		t.Fatal(err)
	}

	stmt, err := p.Prepare(ctx, "SELECT c FROM t WHERE c >= ? AND c <= ?")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()

	const execs = 10_000
	parsesBefore := sqlparse.ParseCount()
	schemaBefore := ce.schemaCalls.Load()
	for i := 0; i < execs; i++ {
		res, err := stmt.Exec(ctx, "a", "z")
		if err != nil {
			t.Fatal(err)
		}
		if res.Count != 1 {
			t.Fatalf("count = %d", res.Count)
		}
	}
	if parses := sqlparse.ParseCount() - parsesBefore; parses > 1 {
		t.Errorf("%d executions parsed %d times, want <= 1", execs, parses)
	}
	if schemas := ce.schemaCalls.Load() - schemaBefore; schemas > 1 {
		t.Errorf("%d executions resolved the schema %d times, want <= 1", execs, schemas)
	}
}

// TestPreparedQueryStreams: Stmt.Query returns a working cursor.
func TestPreparedQueryStreams(t *testing.T) {
	ctx := context.Background()
	p := seed(t, "ED5(16) BSMAX 3", "ED1(16)")
	stmt, err := p.Prepare(ctx, "SELECT fname, city FROM t1 WHERE city = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for want, city := range map[int]string{3: "Berlin", 2: "Karlsruhe", 1: "Waterloo"} {
		rows, err := stmt.Query(ctx, city)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for rows.Next() {
			var fname, got string
			if err := rows.Scan(&fname, &got); err != nil {
				t.Fatal(err)
			}
			if got != city {
				t.Fatalf("city = %q, want %q", got, city)
			}
			n++
		}
		if err := rows.Err(); err != nil {
			t.Fatal(err)
		}
		rows.Close()
		if n != want {
			t.Fatalf("city %q rows = %d, want %d", city, n, want)
		}
	}
}

// TestPrepareValidatesAtPrepareTime: shape errors surface from Prepare, not
// first execution.
func TestPrepareValidatesAtPrepareTime(t *testing.T) {
	ctx := context.Background()
	p := seed(t, "ED1(16)", "ED1(16)")
	if _, err := p.Prepare(ctx, "SELECT nope FROM t1"); err == nil {
		t.Error("unknown projection column accepted")
	}
	if _, err := p.Prepare(ctx, "SELECT fname FROM t1 WHERE nope = ?"); err == nil {
		t.Error("unknown predicate column accepted")
	}
	if _, err := p.Prepare(ctx, "SELECT fname FROM missing"); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := p.Prepare(ctx, "INSERT INTO t1 VALUES (?)"); err == nil {
		t.Error("INSERT arity mismatch accepted")
	}
	stmt, err := p.Prepare(ctx, "SELECT fname FROM t1 WHERE city = ?")
	if err != nil {
		t.Fatal(err)
	}
	stmt.Close()
	if _, err := stmt.Exec(ctx, "Berlin"); !errors.Is(err, proxy.ErrStmtClosed) {
		t.Errorf("exec after close = %v", err)
	}
}

// TestPreparedConcurrentUse runs one Stmt from many goroutines.
func TestPreparedConcurrentUse(t *testing.T) {
	ctx := context.Background()
	p := seed(t, "ED5(16) BSMAX 3", "ED1(16)")
	stmt, err := p.Prepare(ctx, "SELECT COUNT(*) FROM t1 WHERE city = ?")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := stmt.Exec(ctx, "Berlin")
				if err != nil {
					errs <- err
					return
				}
				if res.Count != 3 {
					errs <- fmt.Errorf("count = %d, want 3", res.Count)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestExecScriptOffsets: a bad statement mid-script is reported with its
// index and absolute offset.
func TestExecScriptOffsets(t *testing.T) {
	p := seed(t, "ED1(16)", "ED1(16)")
	script := "SELECT fname FROM t1; SELECT fname FROM t1 WHERE fname !! 'x'"
	_, err := p.ExecScript(context.Background(), script)
	if err == nil {
		t.Fatal("expected error")
	}
	var se *sqlparse.SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("err type %T: %v", err, err)
	}
	if se.Stmt != 1 || se.Pos != strings.Index(script, "!!") {
		t.Fatalf("err = stmt %d pos %d, want stmt 1 pos %d", se.Stmt, se.Pos, strings.Index(script, "!!"))
	}
	// A valid script executes with the batched-INSERT fast path.
	results, err := p.ExecScript(context.Background(),
		"INSERT INTO t1 VALUES ('A', 'B'); INSERT INTO t1 VALUES ('C', 'D'); SELECT COUNT(*) FROM t1")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 || results[2].Count != 8 {
		t.Fatalf("results = %+v", results)
	}
}

// TestBatchRejectsUnboundPlaceholders: the batched-INSERT fast path must
// apply the same unbound-placeholder guard as single-statement execution —
// a '?' must never silently insert its zero value.
func TestBatchRejectsUnboundPlaceholders(t *testing.T) {
	ctx := context.Background()
	p := newStack(t)
	mustExec(t, p, "CREATE TABLE b (c ED1(8))")
	for _, batch := range [][]string{
		{"INSERT INTO b VALUES (?)"},
		{"INSERT INTO b VALUES ('ok')", "INSERT INTO b VALUES (?)"},
	} {
		if _, err := p.ExecBatch(ctx, batch); err == nil || !strings.Contains(err.Error(), "unbound placeholders") {
			t.Errorf("ExecBatch(%q) err = %v, want unbound-placeholder error", batch, err)
		}
	}
	if _, err := p.ExecScript(ctx, "INSERT INTO b VALUES (?)"); err == nil || !strings.Contains(err.Error(), "unbound placeholders") {
		t.Errorf("ExecScript err = %v, want unbound-placeholder error", err)
	}
	res, err := p.Execute(ctx, "SELECT COUNT(*) FROM b")
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 0 {
		t.Fatalf("phantom rows inserted: count = %d", res.Count)
	}
}
