package search_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/ordenc"
	"github.com/encdbdb/encdbdb/internal/pae"
	"github.com/encdbdb/encdbdb/internal/search"
)

const testMaxLen = 8

func allKinds() []dict.Kind {
	return []dict.Kind{
		dict.ED1, dict.ED2, dict.ED3,
		dict.ED4, dict.ED5, dict.ED6,
		dict.ED7, dict.ED8, dict.ED9,
	}
}

// fixture bundles a built split with everything a search needs.
type fixture struct {
	col   [][]byte
	split *dict.Split
	dec   search.Decryptor
	enc   *ordenc.Encoder
}

func buildFixture(t testing.TB, col [][]byte, k dict.Kind, encrypted bool, rng *rand.Rand) *fixture {
	t.Helper()
	p := dict.Params{Kind: k, MaxLen: testMaxLen, BSMax: 3, Plain: !encrypted, Rand: rng}
	var dec search.Decryptor = search.PlainDecryptor{}
	if encrypted {
		c, err := pae.NewCipher(pae.MustGen())
		if err != nil {
			t.Fatalf("NewCipher: %v", err)
		}
		p.Cipher = c
		dec = c
	}
	s, err := dict.Build(col, p)
	if err != nil {
		t.Fatalf("Build(%v): %v", k, err)
	}
	enc, err := ordenc.NewEncoder(testMaxLen)
	if err != nil {
		t.Fatalf("NewEncoder: %v", err)
	}
	return &fixture{col: col, split: s, dec: dec, enc: enc}
}

// oracleRows returns the RecordIDs matching q by direct plaintext scan of
// the original column — the ground truth every search must reproduce.
func oracleRows(col [][]byte, q search.Range) []uint32 {
	var out []uint32
	for j, v := range col {
		if q.Contains(v) {
			out = append(out, uint32(j))
		}
	}
	return out
}

// searchRows runs the full two-phase search appropriate for the fixture's
// dictionary kind and returns the matching RecordIDs.
func searchRows(t testing.TB, f *fixture, q search.Range) []uint32 {
	t.Helper()
	switch f.split.Kind.Order() {
	case dict.OrderSorted:
		vr, ok, err := search.SortedDict(f.split, f.dec, q)
		if err != nil {
			t.Fatalf("SortedDict: %v", err)
		}
		if !ok {
			return nil
		}
		return search.AttrVectRanges(f.split.AVCodes(), []search.VidRange{vr}, 1)
	case dict.OrderRotated:
		ranges, err := search.RotatedDict(f.split, f.dec, f.enc, q)
		if err != nil {
			t.Fatalf("RotatedDict: %v", err)
		}
		return search.AttrVectRanges(f.split.AVCodes(), ranges, 1)
	default:
		vids, err := search.UnsortedDict(f.split, f.dec, q)
		if err != nil {
			t.Fatalf("UnsortedDict: %v", err)
		}
		return search.AttrVectList(f.split.AVCodes(), vids, f.split.Len(), search.AVSortedProbe, 1)
	}
}

func equalIDs(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRangeContains(t *testing.T) {
	tests := []struct {
		name string
		r    search.Range
		v    string
		want bool
	}{
		{name: "inside closed", r: search.Closed([]byte("b"), []byte("d")), v: "c", want: true},
		{name: "at start incl", r: search.Closed([]byte("b"), []byte("d")), v: "b", want: true},
		{name: "at end incl", r: search.Closed([]byte("b"), []byte("d")), v: "d", want: true},
		{name: "below", r: search.Closed([]byte("b"), []byte("d")), v: "a", want: false},
		{name: "above", r: search.Closed([]byte("b"), []byte("d")), v: "e", want: false},
		{name: "at start excl", r: search.Range{Start: []byte("b"), End: []byte("d"), EndIncl: true}, v: "b", want: false},
		{name: "at end excl", r: search.Range{Start: []byte("b"), End: []byte("d"), StartIncl: true}, v: "d", want: false},
		{name: "eq", r: search.Eq([]byte("x")), v: "x", want: true},
		{name: "eq other", r: search.Eq([]byte("x")), v: "y", want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.r.Contains([]byte(tt.v)); got != tt.want {
				t.Errorf("Contains(%q) = %v, want %v", tt.v, got, tt.want)
			}
		})
	}
}

func TestRangeEmpty(t *testing.T) {
	tests := []struct {
		name string
		r    search.Range
		want bool
	}{
		{name: "normal", r: search.Closed([]byte("a"), []byte("b")), want: false},
		{name: "point", r: search.Eq([]byte("a")), want: false},
		{name: "inverted", r: search.Closed([]byte("b"), []byte("a")), want: true},
		{name: "point excl start", r: search.Range{Start: []byte("a"), End: []byte("a"), EndIncl: true}, want: true},
		{name: "point excl end", r: search.Range{Start: []byte("a"), End: []byte("a"), StartIncl: true}, want: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.r.Empty(); got != tt.want {
				t.Errorf("Empty() = %v, want %v", got, tt.want)
			}
		})
	}
}

func paperColumn() [][]byte {
	return [][]byte{
		[]byte("Hans"), []byte("Jessica"), []byte("Archie"),
		[]byte("Ella"), []byte("Jessica"), []byte("Jessica"),
	}
}

func TestPaperSearchExample(t *testing.T) {
	// Paper §2.1: searching [Archie, Hans] in the example column returns
	// RecordIDs {0, 2, 3} for our row order (Hans, Jessica, Archie, Ella,
	// Jessica, Jessica): Hans@0, Archie@2, Ella@3.
	rng := rand.New(rand.NewSource(5))
	for _, k := range allKinds() {
		t.Run(k.String(), func(t *testing.T) {
			f := buildFixture(t, paperColumn(), k, true, rng)
			got := searchRows(t, f, search.Closed([]byte("Archie"), []byte("Hans")))
			want := []uint32{0, 2, 3}
			if !equalIDs(got, want) {
				t.Errorf("search = %v, want %v", got, want)
			}
		})
	}
}

func TestSearchEqualityQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, k := range allKinds() {
		f := buildFixture(t, paperColumn(), k, true, rng)
		got := searchRows(t, f, search.Eq([]byte("Jessica")))
		want := []uint32{1, 4, 5}
		if !equalIDs(got, want) {
			t.Errorf("%v: equality search = %v, want %v", k, got, want)
		}
	}
}

func TestSearchNoMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range allKinds() {
		f := buildFixture(t, paperColumn(), k, true, rng)
		for _, q := range []search.Range{
			search.Eq([]byte("Zoe")),                // above all
			search.Eq([]byte("Aaron")),              // below all
			search.Eq([]byte("Emma")),               // between entries
			search.Closed([]byte("F"), []byte("G")), // gap range
		} {
			if got := searchRows(t, f, q); len(got) != 0 {
				t.Errorf("%v: query %q-%q matched %v, want none", k, q.Start, q.End, got)
			}
		}
	}
}

func TestSearchOpenBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	col := paperColumn()
	for _, k := range allKinds() {
		f := buildFixture(t, col, k, true, rng)
		tests := []struct {
			name string
			q    search.Range
		}{
			{name: "lt", q: search.Range{Start: nil, End: []byte("Hans"), StartIncl: true}},
			{name: "le", q: search.Range{Start: nil, End: []byte("Hans"), StartIncl: true, EndIncl: true}},
			{name: "gt", q: search.Range{Start: []byte("Ella"), End: bytes.Repeat([]byte{0xFF}, testMaxLen), EndIncl: true}},
			{name: "ge", q: search.Range{Start: []byte("Ella"), End: bytes.Repeat([]byte{0xFF}, testMaxLen), StartIncl: true, EndIncl: true}},
		}
		for _, tt := range tests {
			got := searchRows(t, f, tt.q)
			want := oracleRows(col, tt.q)
			if !equalIDs(got, want) {
				t.Errorf("%v/%s: got %v, want %v", k, tt.name, got, want)
			}
		}
	}
}

func TestSearchEmptyDictionary(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, k := range allKinds() {
		f := buildFixture(t, nil, k, true, rng)
		if got := searchRows(t, f, search.Eq([]byte("x"))); len(got) != 0 {
			t.Errorf("%v: empty dictionary matched %v", k, got)
		}
	}
}

func TestSearchEmptyRange(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, k := range allKinds() {
		f := buildFixture(t, paperColumn(), k, true, rng)
		q := search.Range{Start: []byte("Hans"), End: []byte("Hans")} // both exclusive
		if got := searchRows(t, f, q); len(got) != 0 {
			t.Errorf("%v: empty range matched %v", k, got)
		}
	}
}

// randomColumn builds n values over u distinct random strings.
func randomColumn(rng *rand.Rand, n, u int) [][]byte {
	vocab := make([][]byte, u)
	for i := range vocab {
		l := 1 + rng.Intn(testMaxLen)
		v := make([]byte, l)
		for j := range v {
			v[j] = byte('a' + rng.Intn(4)) // tiny alphabet: many duplicates & adjacent values
		}
		vocab[i] = v
	}
	col := make([][]byte, n)
	for i := range col {
		col[i] = vocab[rng.Intn(u)]
	}
	return col
}

// randomRange picks query bounds near actual column values half the time.
func randomRange(rng *rand.Rand, col [][]byte) search.Range {
	pick := func() []byte {
		if len(col) > 0 && rng.Intn(2) == 0 {
			return col[rng.Intn(len(col))]
		}
		l := 1 + rng.Intn(testMaxLen)
		v := make([]byte, l)
		for j := range v {
			v[j] = byte('a' + rng.Intn(5))
		}
		return v
	}
	a, b := pick(), pick()
	if bytes.Compare(a, b) > 0 {
		a, b = b, a
	}
	return search.Range{Start: a, End: b, StartIncl: rng.Intn(2) == 0, EndIncl: rng.Intn(2) == 0}
}

func TestSearchMatchesOracleProperty(t *testing.T) {
	// The central invariant: for every ED, every search returns exactly
	// the RecordIDs a plaintext scan of the original column returns.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		col := randomColumn(rng, 1+rng.Intn(120), 1+rng.Intn(12))
		for _, k := range allKinds() {
			encrypted := trial%2 == 0
			f := buildFixture(t, col, k, encrypted, rng)
			for qi := 0; qi < 8; qi++ {
				q := randomRange(rng, col)
				got := searchRows(t, f, q)
				want := oracleRows(col, q)
				if !equalIDs(got, want) {
					t.Fatalf("trial %d %v encrypted=%v q=[%q,%q] incl=%v,%v:\ngot  %v\nwant %v",
						trial, k, encrypted, q.Start, q.End, q.StartIncl, q.EndIncl, got, want)
				}
			}
		}
	}
}

func TestRotatedSearchAllOffsets(t *testing.T) {
	// Exhaustively exercise every rotation offset for a column with a
	// repeated minimum and maximum — the wrap-run corner case of ED5/ED8.
	col := [][]byte{
		[]byte("aa"), []byte("aa"), []byte("aa"),
		[]byte("bb"), []byte("cc"),
		[]byte("dd"), []byte("dd"),
	}
	queries := []search.Range{
		search.Eq([]byte("aa")),
		search.Eq([]byte("dd")),
		search.Eq([]byte("bb")),
		search.Closed([]byte("aa"), []byte("bb")),
		search.Closed([]byte("cc"), []byte("dd")),
		search.Closed([]byte("aa"), []byte("dd")),
		search.Closed([]byte("a"), []byte("z")),
		search.Range{Start: []byte("aa"), End: []byte("dd")}, // both exclusive
	}
	// Many trials make the builder draw many distinct rotation offsets,
	// including offsets inside the run of duplicates.
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		for _, k := range []dict.Kind{dict.ED2, dict.ED5, dict.ED8} {
			f := buildFixture(t, col, k, false, rng)
			for _, q := range queries {
				got := searchRows(t, f, q)
				want := oracleRows(col, q)
				if !equalIDs(got, want) {
					t.Fatalf("trial %d %v q=[%q,%q]: got %v, want %v", trial, k, q.Start, q.End, got, want)
				}
			}
		}
	}
}

func TestRotatedSearchSingleUniqueValue(t *testing.T) {
	col := [][]byte{[]byte("only"), []byte("only"), []byte("only")}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		for _, k := range []dict.Kind{dict.ED2, dict.ED5, dict.ED8} {
			f := buildFixture(t, col, k, true, rng)
			if got := searchRows(t, f, search.Eq([]byte("only"))); len(got) != 3 {
				t.Fatalf("%v: matched %v, want all 3 rows", k, got)
			}
			if got := searchRows(t, f, search.Eq([]byte("other"))); len(got) != 0 {
				t.Fatalf("%v: matched %v, want none", k, got)
			}
		}
	}
}

func TestRotatedDictReturnsAtMostTwoRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 40; trial++ {
		col := randomColumn(rng, 1+rng.Intn(60), 1+rng.Intn(8))
		for _, k := range []dict.Kind{dict.ED2, dict.ED5, dict.ED8} {
			f := buildFixture(t, col, k, false, rng)
			for qi := 0; qi < 5; qi++ {
				q := randomRange(rng, col)
				ranges, err := search.RotatedDict(f.split, f.dec, f.enc, q)
				if err != nil {
					t.Fatal(err)
				}
				if len(ranges) > 2 {
					t.Fatalf("%v: %d vid ranges returned, want <= 2", k, len(ranges))
				}
			}
		}
	}
}

func TestSearchRejectsTamperedDictionary(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, k := range []dict.Kind{dict.ED1, dict.ED2, dict.ED3} {
		f := buildFixture(t, paperColumn(), k, true, rng)
		f.split.Tail()[0] ^= 0xFF // corrupt first tail byte
		q := search.Closed([]byte("A"), []byte("z"))
		var err error
		switch k.Order() {
		case dict.OrderSorted:
			_, _, err = search.SortedDict(f.split, f.dec, q)
		case dict.OrderRotated:
			_, err = search.RotatedDict(f.split, f.dec, f.enc, q)
		default:
			_, err = search.UnsortedDict(f.split, f.dec, q)
		}
		if err == nil {
			t.Errorf("%v: search over tampered dictionary succeeded", k)
		}
	}
}

func TestAttrVectModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		dictLen := 1 + rng.Intn(50)
		av := make([]uint32, n)
		for i := range av {
			av[i] = uint32(rng.Intn(dictLen))
		}
		var vids []uint32
		for v := 0; v < dictLen; v++ {
			if rng.Intn(3) == 0 {
				vids = append(vids, uint32(v))
			}
		}
		want := search.AttrVectList(av, vids, dictLen, search.AVSortedProbe, 1)
		for _, mode := range []search.AVMode{search.AVNestedLoop, search.AVBitset} {
			got := search.AttrVectList(av, vids, dictLen, mode, 1)
			if !equalIDs(got, want) {
				t.Fatalf("mode %d disagrees: got %v, want %v", mode, got, want)
			}
		}
	}
}

func TestAttrVectParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	av := make([]uint32, 10000)
	for i := range av {
		av[i] = uint32(rng.Intn(100))
	}
	ranges := []search.VidRange{{Lo: 10, Hi: 20}, {Lo: 80, Hi: 99}}
	serial := search.AttrVectRanges(av, ranges, 1)
	for _, workers := range []int{0, 2, 3, 8, 64} {
		got := search.AttrVectRanges(av, ranges, workers)
		if !equalIDs(got, serial) {
			t.Fatalf("workers=%d: parallel scan disagrees with serial", workers)
		}
	}
}

func TestAttrVectEmptyInputs(t *testing.T) {
	if got := search.AttrVectRanges(nil, []search.VidRange{{Lo: 0, Hi: 1}}, 0); got != nil {
		t.Errorf("empty AV: got %v", got)
	}
	if got := search.AttrVectRanges([]uint32{1}, nil, 0); got != nil {
		t.Errorf("no ranges: got %v", got)
	}
	if got := search.AttrVectList(nil, []uint32{1}, 2, search.AVBitset, 0); got != nil {
		t.Errorf("empty AV list: got %v", got)
	}
	if got := search.AttrVectList([]uint32{1}, nil, 2, search.AVBitset, 0); got != nil {
		t.Errorf("no vids: got %v", got)
	}
}

func TestVidRangeCount(t *testing.T) {
	if got := (search.VidRange{Lo: 3, Hi: 7}).Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	if got := (search.VidRange{Lo: 2, Hi: 2}).Count(); got != 1 {
		t.Errorf("Count = %d, want 1", got)
	}
}

func TestSortedDictProbeComplexity(t *testing.T) {
	// O(log |D|) loads for sorted search, O(|D|) for unsorted.
	rng := rand.New(rand.NewSource(18))
	col := randomColumn(rng, 1024, 600)
	fSorted := buildFixture(t, col, dict.ED1, false, rng)
	fUnsorted := buildFixture(t, col, dict.ED3, false, rng)

	cr := &countingRegion{Region: fSorted.split}
	if _, _, err := search.SortedDict(cr, fSorted.dec, search.Eq(col[0])); err != nil {
		t.Fatal(err)
	}
	// Two binary searches over |D| <= 1024 entries: <= 2*ceil(log2(1024))+2.
	if cr.loads > 2*11 {
		t.Errorf("sorted search probed %d entries for |D|=%d, want O(log)", cr.loads, fSorted.split.Len())
	}

	cu := &countingRegion{Region: fUnsorted.split}
	if _, err := search.UnsortedDict(cu, fUnsorted.dec, search.Eq(col[0])); err != nil {
		t.Fatal(err)
	}
	if cu.loads != fUnsorted.split.Len() {
		t.Errorf("unsorted search probed %d entries, want |D|=%d", cu.loads, fUnsorted.split.Len())
	}
}

type countingRegion struct {
	search.Region
	loads int
}

func (c *countingRegion) Load(i int) []byte {
	c.loads++
	return c.Region.Load(i)
}

func (c *countingRegion) Len() int { return c.Region.Len() }

func TestRotatedDictProbeComplexity(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	col := randomColumn(rng, 1024, 600)
	f := buildFixture(t, col, dict.ED2, false, rng)
	cr := &countingRegion{Region: f.split}
	if _, err := search.RotatedDict(cr, f.dec, f.enc, search.Eq(col[0])); err != nil {
		t.Fatal(err)
	}
	// Pivot + wrap-run probe + two binary searches (ED2 has no duplicates,
	// so the wrap-run scan stops after one probe).
	if cr.loads > 2*11+4 {
		t.Errorf("rotated search probed %d entries for |D|=%d, want O(log)", cr.loads, f.split.Len())
	}
}

func benchColumn(n, u int) ([][]byte, *rand.Rand) {
	rng := rand.New(rand.NewSource(20))
	vocab := make([][]byte, u)
	for i := range vocab {
		vocab[i] = []byte(fmt.Sprintf("val%05d", i))
	}
	col := make([][]byte, n)
	for i := range col {
		col[i] = vocab[rng.Intn(u)]
	}
	return col, rng
}

func BenchmarkSortedDictSearch10k(b *testing.B) {
	col, rng := benchColumn(10000, 2000)
	f := buildFixture(b, col, dict.ED1, true, rng)
	q := search.Eq(col[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := search.SortedDict(f.split, f.dec, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRotatedDictSearch10k(b *testing.B) {
	col, rng := benchColumn(10000, 2000)
	f := buildFixture(b, col, dict.ED2, true, rng)
	q := search.Eq(col[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.RotatedDict(f.split, f.dec, f.enc, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnsortedDictSearch10k(b *testing.B) {
	col, rng := benchColumn(10000, 2000)
	f := buildFixture(b, col, dict.ED3, true, rng)
	q := search.Eq(col[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := search.UnsortedDict(f.split, f.dec, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAttrVectRanges1M(b *testing.B) {
	av := make([]uint32, 1_000_000)
	rng := rand.New(rand.NewSource(21))
	for i := range av {
		av[i] = uint32(rng.Intn(10000))
	}
	ranges := []search.VidRange{{Lo: 100, Hi: 200}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		search.AttrVectRanges(av, ranges, 0)
	}
}
