package search

// UnsortedDict implements EnclDictSearch 3 (and 6 and 9; paper Algorithm 4):
// a linear scan over the whole dictionary. Every entry is loaded into the
// enclave, decrypted, and compared against the range; matching ValueIDs are
// returned in ascending order. The scan costs O(|D|) loads and decryptions
// but reveals neither order nor, combined with the hiding repetition,
// frequency information.
func UnsortedDict(r Region, dec Decryptor, q Range) ([]uint32, error) {
	n := r.Len()
	if n == 0 || q.Empty() {
		return nil, nil
	}
	var vids []uint32
	for i := 0; i < n; i++ {
		v, err := loadPlain(r, dec, i)
		if err != nil {
			return nil, err
		}
		if q.Contains(v) {
			vids = append(vids, uint32(i))
		}
	}
	return vids, nil
}
