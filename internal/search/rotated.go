package search

import (
	"bytes"

	"github.com/encdbdb/encdbdb/internal/fixint"
	"github.com/encdbdb/encdbdb/internal/ordenc"
)

// RotatedDict implements EnclDictSearch 2 (and 5 and 8; paper Algorithms 2
// and 3): range search over a sorted dictionary that was rotated by a secret
// random offset.
//
// Following Algorithm 3, every comparison happens in a transformed domain
// that is invariant under the rotation: with r = ENCODE(Dec(eD[0])) and
// N = 256^maxLen, each value v maps to T(v) = (ENCODE(v) - r) mod N. In
// that domain the stored dictionary is monotonically increasing, so two
// plain binary searches locate the range bounds without ever touching the
// rotation offset — the access pattern is therefore independent of
// rndOffset, which a naive "unrotate then search" would leak on its first
// probe.
//
// One corner case needs care for the frequency smoothing and hiding kinds
// (paper §4.1, ED5): a run of entries whose plaintext equals Dec(eD[0]) may
// wrap around the array end. Those trailing entries all have T = 0 and
// break monotonicity; RotatedDict detects the run, excludes it from the
// binary searches, and appends it to the result iff its plaintext falls
// into the queried range.
//
// The result is at most two inclusive ValueID ranges (matching the paper's
// two-range output shape): one when the match region is contiguous, two
// when the queried plaintext interval spans the rotation point.
func RotatedDict(r Region, dec Decryptor, enc *ordenc.Encoder, q Range) ([]VidRange, error) {
	n := r.Len()
	if n == 0 || q.Empty() {
		return nil, nil
	}

	first, err := loadPlain(r, dec, 0)
	if err != nil {
		return nil, err
	}
	// d0 is the pivot plaintext; keep a copy since loadPlain's buffer may
	// be reused by subsequent loads.
	d0 := append([]byte(nil), first...)

	// Detect the wrapped run: trailing entries equal to d0.
	tailRun := 0
	for i := n - 1; i >= 1; i-- {
		v, err := loadPlain(r, dec, i)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(v, d0) {
			break
		}
		tailRun++
	}
	m := n - tailRun // searchable prefix [0, m) is sorted in the transformed domain

	width := enc.MaxLen()
	rBase := enc.Encode(d0)
	tq := transformedQuery{
		enc:   enc,
		rBase: rBase,
		start: enc.Transform(q.Start, rBase, fixint.New(width)),
		end:   enc.Transform(q.End, rBase, fixint.New(width)),
		q:     q,
		buf:   fixint.New(width),
	}

	lo, err := tq.lowestAdmitted(r, dec, m)
	if err != nil {
		return nil, err
	}
	hi, err := tq.highestAdmitted(r, dec, m)
	if err != nil {
		return nil, err
	}

	var out []VidRange
	if tq.start.Cmp(tq.end) <= 0 {
		// The plaintext interval does not span the rotation point:
		// matches are contiguous in [0, m).
		if lo < m && hi >= lo {
			out = append(out, VidRange{Lo: uint32(lo), Hi: uint32(hi)})
		}
	} else {
		// The interval spans the rotation point: matches are a suffix
		// (values >= start) and a prefix (values <= end) of [0, m).
		if hi >= 0 {
			out = append(out, VidRange{Lo: 0, Hi: uint32(hi)})
		}
		if lo < m {
			out = append(out, VidRange{Lo: uint32(lo), Hi: uint32(m - 1)})
		}
	}

	if tailRun > 0 && q.Contains(d0) {
		out = appendTailRun(out, m, n)
	}
	return out, nil
}

// transformedQuery carries the rotation-invariant representation of the
// query bounds plus a scratch buffer for per-probe transforms.
type transformedQuery struct {
	enc   *ordenc.Encoder
	rBase fixint.Value
	start fixint.Value
	end   fixint.Value
	q     Range
	buf   fixint.Value
}

// lowestAdmitted returns the smallest index in [0, m) whose transformed
// value satisfies the lower bound, or m if none does.
func (t *transformedQuery) lowestAdmitted(r Region, dec Decryptor, m int) (int, error) {
	lo, hi := 0, m
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		v, err := loadPlain(r, dec, mid)
		if err != nil {
			return 0, err
		}
		tv := t.enc.Transform(v, t.rBase, t.buf)
		c := tv.Cmp(t.start)
		if c > 0 || (c == 0 && t.q.StartIncl) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// highestAdmitted returns the largest index in [0, m) whose transformed
// value satisfies the upper bound, or -1 if none does.
func (t *transformedQuery) highestAdmitted(r Region, dec Decryptor, m int) (int, error) {
	lo, hi := 0, m
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		v, err := loadPlain(r, dec, mid)
		if err != nil {
			return 0, err
		}
		tv := t.enc.Transform(v, t.rBase, t.buf)
		c := tv.Cmp(t.end)
		if c < 0 || (c == 0 && t.q.EndIncl) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1, nil
}

// appendTailRun adds the wrapped run [m, n-1] to the result, merging it with
// a range that already ends at m-1 so the output stays within two ranges.
// The run's plaintext equals Dec(eD[0]) = the minimum of the transformed
// domain, so whenever the run matches, position 0 matches as well and the
// merge below cannot produce more than two disjoint ranges.
func appendTailRun(out []VidRange, m, n int) []VidRange {
	for i := range out {
		if out[i].Hi == uint32(m-1) {
			out[i].Hi = uint32(n - 1)
			return out
		}
	}
	return append(out, VidRange{Lo: uint32(m), Hi: uint32(n - 1)})
}
