// Package search implements EncDBDB's two-phase range search (paper §4.1):
// the dictionary searches EnclDictSearch 1–9, which the enclave executes
// against ciphertexts held in untrusted memory, and the attribute vector
// searches AttrVectSearch 1–9, which run in the untrusted realm.
//
// The dictionary searches are grouped by order option, since the repetition
// options share their search algorithms (EnclDictSearch 4 equals
// EnclDictSearch 1, etc.; paper §4.1):
//
//   - SortedDict   — ED1/ED4/ED7: leftmost + rightmost binary search
//     (Algorithm 1), O(log |D|) loads and decryptions.
//   - RotatedDict  — ED2/ED5/ED8: binary search in the rotation-invariant
//     transformed domain (Algorithms 2 and 3), including the corner case
//     where a run of equal plaintexts wraps around the rotation point.
//   - UnsortedDict — ED3/ED6/ED9: linear scan (Algorithm 4), O(|D|) loads
//     and decryptions.
//
// All functions access ciphertexts exclusively through the Region and
// Decryptor interfaces so the enclave can meter and observe every untrusted
// memory access, and so the PlainDBDB baseline can reuse the identical
// algorithms with an identity Decryptor.
package search

import (
	"bytes"
	"errors"
	"fmt"
)

// Region is an indexed sequence of dictionary entry payloads residing in
// untrusted memory. Load returns the payload of entry i; the enclave copies
// it inside the boundary before decrypting.
type Region interface {
	// Len returns the number of entries |D|.
	Len() int
	// Load returns entry i. The returned slice must stay valid until the
	// next Load call and must not be modified.
	Load(i int) []byte
}

// Decryptor authenticates and decrypts one dictionary entry payload. It is
// *pae.Cipher for encrypted dictionaries and PlainDecryptor for PlainDBDB.
type Decryptor interface {
	Decrypt(ciphertext []byte) ([]byte, error)
}

// PlainDecryptor is the identity Decryptor used for plaintext dictionaries.
type PlainDecryptor struct{}

// Decrypt returns the payload unchanged.
func (PlainDecryptor) Decrypt(ct []byte) ([]byte, error) { return ct, nil }

// Range is a plaintext search range with per-bound inclusivity. The proxy
// normalizes every filter (equality, inequality, one- and two-sided ranges)
// into this closed/open two-sided form so the untrusted provider cannot
// distinguish query types (paper §4.2 step 5).
type Range struct {
	Start     []byte
	End       []byte
	StartIncl bool
	EndIncl   bool
}

// Eq returns the range matching exactly v.
func Eq(v []byte) Range {
	return Range{Start: v, End: v, StartIncl: true, EndIncl: true}
}

// Closed returns the inclusive range [start, end].
func Closed(start, end []byte) Range {
	return Range{Start: start, End: end, StartIncl: true, EndIncl: true}
}

// Contains reports whether v falls into r.
func (r Range) Contains(v []byte) bool {
	cs := bytes.Compare(v, r.Start)
	if cs < 0 || (cs == 0 && !r.StartIncl) {
		return false
	}
	ce := bytes.Compare(v, r.End)
	if ce > 0 || (ce == 0 && !r.EndIncl) {
		return false
	}
	return true
}

// Empty reports whether r cannot match any value.
func (r Range) Empty() bool {
	c := bytes.Compare(r.Start, r.End)
	return c > 0 || (c == 0 && !(r.StartIncl && r.EndIncl))
}

// VidRange is an inclusive range of ValueIDs [Lo, Hi] returned by the sorted
// and rotated dictionary searches.
type VidRange struct {
	Lo uint32
	Hi uint32
}

// Count returns the number of ValueIDs covered by v.
func (v VidRange) Count() int { return int(v.Hi) - int(v.Lo) + 1 }

// ErrDecrypt wraps decryption failures during a dictionary search; it
// indicates tampered ciphertexts or a wrong column key.
var ErrDecrypt = errors.New("search: dictionary entry failed to decrypt")

// loadPlain loads entry i from the region and decrypts it.
func loadPlain(r Region, dec Decryptor, i int) ([]byte, error) {
	v, err := dec.Decrypt(r.Load(i))
	if err != nil {
		return nil, fmt.Errorf("%w: entry %d: %v", ErrDecrypt, i, err)
	}
	return v, nil
}

// startAdmits reports whether value v satisfies the range's lower bound.
func startAdmits(q Range, v []byte) bool {
	c := bytes.Compare(v, q.Start)
	return c > 0 || (c == 0 && q.StartIncl)
}

// endAdmits reports whether value v satisfies the range's upper bound.
func endAdmits(q Range, v []byte) bool {
	c := bytes.Compare(v, q.End)
	return c < 0 || (c == 0 && q.EndIncl)
}
