package search

// SortedDict implements EnclDictSearch 1 (and 4 and 7; paper Algorithm 1):
// a leftmost binary search for the range start and a rightmost binary search
// for the range end over a lexicographically sorted dictionary. It returns
// the inclusive ValueID range of matching entries and false if no entry
// matches. Only O(log |D|) entries are loaded into the enclave and
// decrypted; required enclave memory is constant and independent of |D|.
func SortedDict(r Region, dec Decryptor, q Range) (VidRange, bool, error) {
	n := r.Len()
	if n == 0 || q.Empty() {
		return VidRange{}, false, nil
	}
	lo, err := lowestAdmitted(r, dec, q, 0, n)
	if err != nil {
		return VidRange{}, false, err
	}
	if lo == n {
		return VidRange{}, false, nil // all entries below the range
	}
	hi, err := highestAdmitted(r, dec, q, 0, n)
	if err != nil {
		return VidRange{}, false, err
	}
	if hi < lo {
		return VidRange{}, false, nil // range falls between two entries
	}
	return VidRange{Lo: uint32(lo), Hi: uint32(hi)}, true, nil
}

// lowestAdmitted returns the smallest index i in [lo, hi) whose value
// satisfies the range's lower bound, or hi if none does (leftmost binary
// search, BinarySearchLM).
func lowestAdmitted(r Region, dec Decryptor, q Range, lo, hi int) (int, error) {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		v, err := loadPlain(r, dec, mid)
		if err != nil {
			return 0, err
		}
		if startAdmits(q, v) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// highestAdmitted returns the largest index i in [lo, hi) whose value
// satisfies the range's upper bound, or lo-1 if none does (rightmost binary
// search, BinarySearchRM).
func highestAdmitted(r Region, dec Decryptor, q Range, lo, hi int) (int, error) {
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		v, err := loadPlain(r, dec, mid)
		if err != nil {
			return 0, err
		}
		if endAdmits(q, v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1, nil
}
