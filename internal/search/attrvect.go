package search

import (
	"runtime"
	"sort"
	"sync"
)

// AVMode selects the membership test used by AttrVectSearch for unsorted
// dictionaries (ED3/ED6/ED9), where the dictionary search returns a list of
// ValueIDs rather than ranges. The paper's algorithm compares every
// attribute vector entry with every returned ValueID (O(|AV|·|vid|)); this
// repository defaults to a sorted-list binary search and also offers a
// bitset, both preserved side by side for ablation A1 (see DESIGN.md).
type AVMode int

const (
	// AVSortedProbe binary-searches a sorted copy of the ValueID list for
	// each attribute vector entry: O(|AV|·log|vid|). The default.
	AVSortedProbe AVMode = iota + 1
	// AVNestedLoop is the paper's literal algorithm: compare each entry
	// against each ValueID, O(|AV|·|vid|), with early exit on match.
	AVNestedLoop
	// AVBitset materializes a |D|-bit set of matching ValueIDs, then
	// scans the attribute vector with O(1) probes.
	AVBitset
)

// Parallelism picks the worker count for attribute vector scans: the paper
// notes the scan "is parallelizable with a speedup expected to be linear in
// the number of threads". Zero or negative means GOMAXPROCS.
func parallelism(p int) int {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	return p
}

// AttrVectRanges implements AttrVectSearch 1/2/4/5/7/8: it scans the
// attribute vector and returns, in ascending order, the RecordIDs whose
// ValueID falls into any of the given inclusive ranges (at most two ranges
// are produced by the dictionary searches). workers <= 0 uses GOMAXPROCS.
func AttrVectRanges(av []uint32, ranges []VidRange, workers int) []uint32 {
	if len(av) == 0 || len(ranges) == 0 {
		return nil
	}
	match := func(vid uint32) bool {
		for _, r := range ranges {
			if vid >= r.Lo && vid <= r.Hi {
				return true
			}
		}
		return false
	}
	return parallelScan(av, workers, match)
}

// AttrVectList implements AttrVectSearch 3/6/9: it returns, in ascending
// order, the RecordIDs whose ValueID appears in vids. dictLen is |D|,
// needed by the bitset mode. workers <= 0 uses GOMAXPROCS.
func AttrVectList(av []uint32, vids []uint32, dictLen int, mode AVMode, workers int) []uint32 {
	if len(av) == 0 || len(vids) == 0 {
		return nil
	}
	var match func(uint32) bool
	switch mode {
	case AVNestedLoop:
		match = func(vid uint32) bool {
			for _, u := range vids {
				if vid == u {
					return true
				}
			}
			return false
		}
	case AVBitset:
		bits := make([]uint64, (dictLen+63)/64)
		for _, u := range vids {
			bits[u/64] |= 1 << (u % 64)
		}
		match = func(vid uint32) bool {
			return bits[vid/64]&(1<<(vid%64)) != 0
		}
	default: // AVSortedProbe
		sorted := vids
		if !sort.SliceIsSorted(sorted, func(a, b int) bool { return sorted[a] < sorted[b] }) {
			sorted = append([]uint32(nil), vids...)
			sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		}
		match = func(vid uint32) bool {
			i := sort.Search(len(sorted), func(k int) bool { return sorted[k] >= vid })
			return i < len(sorted) && sorted[i] == vid
		}
	}
	return parallelScan(av, workers, match)
}

// parallelScan shards av across workers, collects matching indices per
// shard, and concatenates the shard results in order so RecordIDs come back
// ascending.
func parallelScan(av []uint32, workers int, match func(uint32) bool) []uint32 {
	w := parallelism(workers)
	if w > len(av) {
		w = len(av)
	}
	if w <= 1 {
		return scanChunk(av, 0, match)
	}
	results := make([][]uint32, w)
	chunk := (len(av) + w - 1) / w
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo := i * chunk
		hi := lo + chunk
		if hi > len(av) {
			hi = len(av)
		}
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			results[i] = scanChunk(av[lo:hi], uint32(lo), match)
		}(i, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, r := range results {
		total += len(r)
	}
	if total == 0 {
		return nil
	}
	out := make([]uint32, 0, total)
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}

// scanChunk scans one shard, offsetting indices by base.
func scanChunk(av []uint32, base uint32, match func(uint32) bool) []uint32 {
	var out []uint32
	for j, vid := range av {
		if match(vid) {
			out = append(out, base+uint32(j))
		}
	}
	return out
}
