package search

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"github.com/encdbdb/encdbdb/internal/av"
	"github.com/encdbdb/encdbdb/internal/ridset"
)

// AVMode selects the membership test used by AttrVectSearch for unsorted
// dictionaries (ED3/ED6/ED9), where the dictionary search returns a list of
// ValueIDs rather than ranges. The paper's algorithm compares every
// attribute vector entry with every returned ValueID (O(|AV|·|vid|)); this
// repository defaults to a sorted-list binary search and also offers a
// bitset, both preserved side by side for ablation A1 (see DESIGN.md).
type AVMode int

const (
	// AVSortedProbe binary-searches a sorted copy of the ValueID list for
	// each attribute vector entry: O(|AV|·log|vid|). The default.
	AVSortedProbe AVMode = iota + 1
	// AVNestedLoop is the paper's literal algorithm: compare each entry
	// against each ValueID, O(|AV|·|vid|), with early exit on match.
	AVNestedLoop
	// AVBitset materializes a |D|-bit set of matching ValueIDs, then
	// scans the attribute vector with O(1) probes.
	AVBitset
)

// Parallelism picks the worker count for attribute vector scans: the paper
// notes the scan "is parallelizable with a speedup expected to be linear in
// the number of threads". Zero or negative means GOMAXPROCS.
func parallelism(p int) int {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	return p
}

// AttrVectRangesSet implements AttrVectSearch 1/2/4/5/7/8: it scans the
// attribute vector and emits, into a bitmap over [0, |AV|), the RecordIDs
// whose ValueID falls into any of the given inclusive ranges (at most two
// ranges are produced by the dictionary searches). workers <= 0 uses
// GOMAXPROCS.
func AttrVectRangesSet(av []uint32, ranges []VidRange, workers int) *ridset.Set {
	out := ridset.New(len(av))
	if len(av) == 0 || len(ranges) == 0 {
		return out
	}
	match := func(vid uint32) bool {
		for _, r := range ranges {
			if vid >= r.Lo && vid <= r.Hi {
				return true
			}
		}
		return false
	}
	parallelScan(out, av, workers, match)
	return out
}

// AttrVectListSet implements AttrVectSearch 3/6/9: it emits, into a bitmap
// over [0, |AV|), the RecordIDs whose ValueID appears in vids. dictLen is
// |D|, needed by the bitset mode. workers <= 0 uses GOMAXPROCS.
func AttrVectListSet(av []uint32, vids []uint32, dictLen int, mode AVMode, workers int) *ridset.Set {
	out := ridset.New(len(av))
	if len(av) == 0 || len(vids) == 0 {
		return out
	}
	var match func(uint32) bool
	switch mode {
	case AVNestedLoop:
		match = func(vid uint32) bool {
			for _, u := range vids {
				if vid == u {
					return true
				}
			}
			return false
		}
	case AVBitset:
		bits := make([]uint64, (dictLen+63)/64)
		for _, u := range vids {
			bits[u/64] |= 1 << (u % 64)
		}
		match = func(vid uint32) bool {
			return bits[vid/64]&(1<<(vid%64)) != 0
		}
	default: // AVSortedProbe
		sorted := vids
		if !slices.IsSorted(sorted) {
			sorted = slices.Clone(vids)
			slices.Sort(sorted)
		}
		match = func(vid uint32) bool {
			_, ok := slices.BinarySearch(sorted, vid)
			return ok
		}
	}
	parallelScan(out, av, workers, match)
	return out
}

// AttrVectRangesPackedSet is the bit-packed fast path of AttrVectSearch
// 1/2/4/5/7/8: the SWAR kernels of internal/av evaluate the range
// disjunction on 64 packed codes per iteration and OR match words directly
// into the bitmap — no per-element unpacking and no match-closure dispatch.
// The unpacked AttrVectRangesSet remains beside it for the baseline and the
// ablations. workers <= 0 uses GOMAXPROCS.
func AttrVectRangesPackedSet(v *av.Vector, ranges []VidRange, workers int) *ridset.Set {
	out := ridset.New(v.Len())
	if v.Len() == 0 || len(ranges) == 0 {
		return out
	}
	rs := make([]av.Range, len(ranges))
	for i, r := range ranges {
		rs[i] = av.Range{Lo: r.Lo, Hi: r.Hi}
	}
	packedShards(v.Len(), workers, func(gLo, gHi int) {
		v.ScanRanges(out, gLo, gHi, rs)
	})
	return out
}

// AttrVectListPackedSet is the bit-packed fast path of AttrVectSearch
// 3/6/9: the ValueID list becomes a |D|-bit membership bitmap, and the
// packed kernel reassembles each group's 64 codes in registers before
// probing it. workers <= 0 uses GOMAXPROCS.
func AttrVectListPackedSet(v *av.Vector, vids []uint32, workers int) *ridset.Set {
	out := ridset.New(v.Len())
	if v.Len() == 0 || len(vids) == 0 {
		return out
	}
	set := make([]uint64, (v.DictLen()+63)/64)
	for _, u := range vids {
		if int(u) < v.DictLen() {
			set[u/64] |= 1 << (u % 64)
		}
	}
	packedShards(v.Len(), workers, func(gLo, gHi int) {
		v.ScanBitset(out, gLo, gHi, set)
	})
	return out
}

// PackedPred is a predicate compiled against one packed attribute vector:
// either a range disjunction (sorted/rotated dictionaries) or a ValueID
// membership bitmap (unsorted dictionaries). Compiling once separates the
// per-query setup (range conversion, bitmap build) from the per-morsel scan
// calls of the fused conjunction pipeline, which evaluates every compiled
// predicate over one group range before moving to the next morsel.
type PackedPred struct {
	v      *av.Vector
	ranges []av.Range
	bitset []uint64
	list   bool
}

// CompileRangesPred compiles a range-disjunction predicate over v. An empty
// range list compiles to a predicate matching no rows.
func CompileRangesPred(v *av.Vector, ranges []VidRange) PackedPred {
	rs := make([]av.Range, len(ranges))
	for i, r := range ranges {
		rs[i] = av.Range{Lo: r.Lo, Hi: r.Hi}
	}
	return PackedPred{v: v, ranges: rs}
}

// CompileListPred compiles a ValueID-membership predicate over v. An empty
// ValueID list compiles to a predicate matching no rows.
func CompileListPred(v *av.Vector, vids []uint32) PackedPred {
	var set []uint64
	if len(vids) > 0 {
		set = make([]uint64, (v.DictLen()+63)/64)
		for _, u := range vids {
			if int(u) < v.DictLen() {
				set[u/64] |= 1 << (u % 64)
			}
		}
	}
	return PackedPred{v: v, bitset: set, list: true}
}

// Groups returns the number of 64-row groups of the compiled vector — the
// morsel domain of a fused scan.
func (p PackedPred) Groups() int {
	return (p.v.Len() + av.GroupRows - 1) / av.GroupRows
}

// ScanInto fuses the predicate into acc over the row groups [gLo, gHi):
// match words are ANDed in word-by-word with zero-word early-out. It reports
// whether any accumulator word of the window remains non-zero, so a caller
// evaluating a conjunction can stop at the first predicate that empties the
// morsel. Distinct group windows touch disjoint accumulator words, so morsel
// workers may call it concurrently against the same accumulator.
func (p PackedPred) ScanInto(acc *ridset.Set, gLo, gHi int) bool {
	if p.list {
		return p.v.ScanBitsetInto(acc, gLo, gHi, p.bitset)
	}
	return p.v.ScanRangesInto(acc, gLo, gHi, p.ranges)
}

// Scan ORs the predicate's matches over [gLo, gHi) into out — the two-pass
// baseline counterpart of ScanInto.
func (p PackedPred) Scan(out *ridset.Set, gLo, gHi int) {
	if p.list {
		p.v.ScanBitset(out, gLo, gHi, p.bitset)
		return
	}
	p.v.ScanRanges(out, gLo, gHi, p.ranges)
}

// AttrVectRangesPackedInto fuses the bit-packed range scan of AttrVectSearch
// 1/2/4/5/7/8 into an existing accumulator (typically already carrying row
// validity and the preceding conjuncts) instead of materializing a set and
// intersecting afterwards. It reports whether the scanned window kept any
// rows. workers <= 0 uses GOMAXPROCS.
func AttrVectRangesPackedInto(v *av.Vector, ranges []VidRange, acc *ridset.Set, workers int) bool {
	return packedInto(CompileRangesPred(v, ranges), acc, workers)
}

// AttrVectListPackedInto fuses the bit-packed membership scan of
// AttrVectSearch 3/6/9 into an existing accumulator — the delta path's
// sealed-run kernels AND directly into the region accumulator through here.
// It reports whether the scanned window kept any rows. workers <= 0 uses
// GOMAXPROCS.
func AttrVectListPackedInto(v *av.Vector, vids []uint32, acc *ridset.Set, workers int) bool {
	return packedInto(CompileListPred(v, vids), acc, workers)
}

// packedInto runs a compiled predicate's fused scan across all groups,
// sharded like the Or-mode scans: shards own whole groups, hence disjoint
// accumulator words.
func packedInto(p PackedPred, acc *ridset.Set, workers int) bool {
	if p.v.Len() == 0 {
		return false
	}
	var any atomic.Bool
	packedShards(p.v.Len(), workers, func(gLo, gHi int) {
		if p.ScanInto(acc, gLo, gHi) {
			any.Store(true)
		}
	})
	return any.Load()
}

// packedShards distributes the packed vector's 64-row groups across workers.
// Each shard owns whole groups, hence disjoint words of the output set, so
// the kernels emit without synchronization — the same invariant the
// unpacked parallelScan maintains via 64-aligned chunk boundaries.
func packedShards(rows, workers int, scan func(gLo, gHi int)) {
	groups := (rows + av.GroupRows - 1) / av.GroupRows
	w := parallelism(workers)
	if w > groups {
		w = groups
	}
	if w <= 1 {
		scan(0, groups)
		return
	}
	per := (groups + w - 1) / w
	var wg sync.WaitGroup
	for lo := 0; lo < groups; lo += per {
		hi := lo + per
		if hi > groups {
			hi = groups
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			scan(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// AttrVectRanges is AttrVectRangesSet rendered to an ascending RecordID
// slice, kept for callers outside the engine's bitmap pipeline.
func AttrVectRanges(av []uint32, ranges []VidRange, workers int) []uint32 {
	return AttrVectRangesSet(av, ranges, workers).Slice()
}

// AttrVectList is AttrVectListSet rendered to an ascending RecordID slice,
// kept for callers outside the engine's bitmap pipeline.
func AttrVectList(av []uint32, vids []uint32, dictLen int, mode AVMode, workers int) []uint32 {
	return AttrVectListSet(av, vids, dictLen, mode, workers).Slice()
}

// parallelScan shards av across workers, each emitting matches into the
// shared bitmap. Shard boundaries are aligned to 64 RecordIDs so every
// worker owns a disjoint word range of the set and no synchronization is
// needed beyond the final WaitGroup join.
func parallelScan(out *ridset.Set, av []uint32, workers int, match func(uint32) bool) {
	w := parallelism(workers)
	if maxShards := (len(av) + 63) / 64; w > maxShards {
		w = maxShards
	}
	if w <= 1 {
		scanChunk(out, av, 0, match)
		return
	}
	chunk := ((len(av)+w-1)/w + 63) &^ 63
	var wg sync.WaitGroup
	for lo := 0; lo < len(av); lo += chunk {
		hi := lo + chunk
		if hi > len(av) {
			hi = len(av)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			scanChunk(out, av[lo:hi], uint32(lo), match)
		}(lo, hi)
	}
	wg.Wait()
}

// scanChunk scans one shard, offsetting RecordIDs by base.
func scanChunk(out *ridset.Set, av []uint32, base uint32, match func(uint32) bool) {
	for j, vid := range av {
		if match(vid) {
			out.Add(base + uint32(j))
		}
	}
}
