package search_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/encdbdb/encdbdb/internal/av"
	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/search"
)

// quickScenario is a generated (column, query) pair over a tiny alphabet so
// boundaries, duplicates and wrap runs occur constantly.
type quickScenario struct {
	col   [][]byte
	query search.Range
}

// Generate implements quick.Generator.
func (quickScenario) Generate(r *rand.Rand, size int) reflect.Value {
	value := func() []byte {
		l := 1 + r.Intn(4)
		v := make([]byte, l)
		for j := range v {
			v[j] = byte('a' + r.Intn(3))
		}
		return v
	}
	n := r.Intn(size*3 + 1)
	u := 1 + r.Intn(6)
	vocab := make([][]byte, u)
	for i := range vocab {
		vocab[i] = value()
	}
	col := make([][]byte, n)
	for i := range col {
		col[i] = vocab[r.Intn(u)]
	}
	a, b := value(), value()
	if bytes.Compare(a, b) > 0 {
		a, b = b, a
	}
	return reflect.ValueOf(quickScenario{
		col: col,
		query: search.Range{
			Start:     a,
			End:       b,
			StartIncl: r.Intn(2) == 0,
			EndIncl:   r.Intn(2) == 0,
		},
	})
}

func TestQuickSearchMatchesOracleEveryKind(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(sc quickScenario, kindSeed uint8) bool {
		kind := dict.ED1 + dict.Kind(kindSeed%9)
		fix := buildFixture(t, sc.col, kind, kindSeed%2 == 0, rng)
		got := searchRows(t, fix, sc.query)
		want := oracleRows(sc.col, sc.query)
		return equalIDs(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickRotatedRangesDisjointAndSorted(t *testing.T) {
	// Structural invariant of RotatedDict's output: at most two ranges,
	// disjoint, within bounds.
	rng := rand.New(rand.NewSource(42))
	f := func(sc quickScenario) bool {
		fix := buildFixture(t, sc.col, dict.ED5, false, rng)
		ranges, err := search.RotatedDict(fix.split, fix.dec, fix.enc, sc.query)
		if err != nil {
			return false
		}
		if len(ranges) > 2 {
			return false
		}
		n := uint32(fix.split.Len())
		for _, vr := range ranges {
			if vr.Lo > vr.Hi || vr.Hi >= n {
				return false
			}
		}
		if len(ranges) == 2 {
			a, b := ranges[0], ranges[1]
			if a.Lo > b.Lo {
				a, b = b, a
			}
			if a.Hi >= b.Lo { // overlap
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickAttrVectModesAgree(t *testing.T) {
	f := func(avSeed []uint16, vidSeed []uint16, dictLenSeed uint8) bool {
		dictLen := 1 + int(dictLenSeed)
		av := make([]uint32, len(avSeed))
		for i, v := range avSeed {
			av[i] = uint32(int(v) % dictLen)
		}
		vids := make([]uint32, 0, len(vidSeed))
		seen := make(map[uint32]bool)
		for _, v := range vidSeed {
			u := uint32(int(v) % dictLen)
			if !seen[u] {
				seen[u] = true
				vids = append(vids, u)
			}
		}
		a := search.AttrVectList(av, vids, dictLen, search.AVSortedProbe, 1)
		b := search.AttrVectList(av, vids, dictLen, search.AVNestedLoop, 1)
		c := search.AttrVectList(av, vids, dictLen, search.AVBitset, 2)
		return equalIDs(a, b) && equalIDs(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickPackedScansAgreeWithUnpacked is the packed ≡ unpacked property
// at the search-entry-point level: the SWAR kernels over a bit-packed
// vector must emit exactly the RecordIDs of the []uint32 scans, for random
// codes, dictionary sizes (including the 2^k / 2^k+1 width boundaries via
// the random dictLen), ranges, membership lists and worker counts.
func TestQuickPackedScansAgreeWithUnpacked(t *testing.T) {
	f := func(avSeed []uint16, vidSeed []uint16, dictLenSeed uint16, loSeed, hiSeed uint16, workerSeed uint8) bool {
		dictLen := 1 + int(dictLenSeed)%5000
		codes := make([]uint32, len(avSeed))
		for i, v := range avSeed {
			codes[i] = uint32(int(v) % dictLen)
		}
		vec := av.Pack(codes, dictLen)
		workers := 1 + int(workerSeed%4)

		lo := uint32(int(loSeed) % dictLen)
		hi := uint32(int(hiSeed) % dictLen)
		if lo > hi {
			lo, hi = hi, lo
		}
		// Two ranges, the second possibly wrapping past |D| (as rotated
		// searches produce before clamping).
		ranges := []search.VidRange{{Lo: lo, Hi: hi}, {Lo: hi, Hi: hi + 3}}
		a := search.AttrVectRangesSet(codes, ranges, 1).Slice()
		b := search.AttrVectRangesPackedSet(vec, ranges, workers).Slice()
		if !equalIDs(a, b) {
			return false
		}

		vids := make([]uint32, 0, len(vidSeed))
		for _, v := range vidSeed {
			vids = append(vids, uint32(int(v)%dictLen))
		}
		c := search.AttrVectList(codes, vids, dictLen, search.AVSortedProbe, 1)
		d := search.AttrVectListPackedSet(vec, vids, workers).Slice()
		return equalIDs(c, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
