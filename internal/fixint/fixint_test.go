package fixint

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestNew(t *testing.T) {
	tests := []struct {
		give int
		want int
	}{
		{give: 0, want: 0},
		{give: 1, want: 1},
		{give: 16, want: 16},
		{give: -3, want: 0},
	}
	for _, tt := range tests {
		v := New(tt.give)
		if v.Width() != tt.want {
			t.Errorf("New(%d).Width() = %d, want %d", tt.give, v.Width(), tt.want)
		}
		if !v.IsZero() {
			t.Errorf("New(%d) is not zero", tt.give)
		}
	}
}

func TestFromBytes(t *testing.T) {
	tests := []struct {
		name  string
		give  []byte
		width int
		want  []byte
	}{
		{name: "exact", give: []byte{1, 2}, width: 2, want: []byte{1, 2}},
		{name: "pad", give: []byte{7}, width: 3, want: []byte{0, 0, 7}},
		{name: "truncate", give: []byte{9, 1, 2}, width: 2, want: []byte{1, 2}},
		{name: "empty", give: nil, width: 2, want: []byte{0, 0}},
		{name: "zero width", give: []byte{5}, width: 0, want: []byte{}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := FromBytes(tt.give, tt.width)
			if got.Cmp(Value(tt.want)) != 0 {
				t.Errorf("FromBytes(%v, %d) = %v, want %v", tt.give, tt.width, got, tt.want)
			}
		})
	}
}

func TestFromUint64(t *testing.T) {
	tests := []struct {
		give  uint64
		width int
		want  Value
	}{
		{give: 0, width: 4, want: Value{0, 0, 0, 0}},
		{give: 1, width: 4, want: Value{0, 0, 0, 1}},
		{give: 0x0102, width: 4, want: Value{0, 0, 1, 2}},
		{give: 0x0102, width: 1, want: Value{2}}, // reduced mod 256
		{give: ^uint64(0), width: 8, want: Max(8)},
	}
	for _, tt := range tests {
		got := FromUint64(tt.give, tt.width)
		if got.Cmp(tt.want) != 0 {
			t.Errorf("FromUint64(%#x, %d) = %v, want %v", tt.give, tt.width, got, tt.want)
		}
	}
}

func TestSubModWraparound(t *testing.T) {
	tests := []struct {
		name string
		a, b uint64
		want uint64
	}{
		{name: "no borrow", a: 10, b: 3, want: 7},
		{name: "equal", a: 42, b: 42, want: 0},
		{name: "wrap", a: 3, b: 10, want: 0x100000000 - 7},
		{name: "wrap from zero", a: 0, b: 1, want: 0xFFFFFFFF},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := FromUint64(tt.a, 4).Sub(FromUint64(tt.b, 4))
			if want := FromUint64(tt.want, 4); got.Cmp(want) != 0 {
				t.Errorf("%d - %d = %v, want %v", tt.a, tt.b, got, want)
			}
		})
	}
}

func TestAddModWraparound(t *testing.T) {
	got := Max(3).Add(FromUint64(1, 3))
	if !got.IsZero() {
		t.Errorf("max + 1 = %v, want 0", got)
	}
}

func TestIncDec(t *testing.T) {
	v := Max(2).Clone()
	if v.Inc(); !v.IsZero() {
		t.Errorf("Inc(max) = %v, want 0", v)
	}
	if v.Dec(); v.Cmp(Max(2)) != 0 {
		t.Errorf("Dec(0) = %v, want max", v)
	}
	w := FromUint64(41, 2)
	if w.Inc(); w.Cmp(FromUint64(42, 2)) != 0 {
		t.Errorf("Inc(41) = %v, want 42", w)
	}
}

func TestCmpCheckedWidthMismatch(t *testing.T) {
	if _, err := New(2).CmpChecked(New(3)); err != ErrWidthMismatch {
		t.Errorf("CmpChecked width mismatch: err = %v, want ErrWidthMismatch", err)
	}
}

func TestCmpPanicsOnWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Cmp with mismatched widths did not panic")
		}
	}()
	New(2).Cmp(New(3))
}

func TestCloneIndependence(t *testing.T) {
	v := FromUint64(7, 2)
	c := v.Clone()
	c.Inc()
	if v.Cmp(FromUint64(7, 2)) != 0 {
		t.Errorf("mutating clone changed original: %v", v)
	}
}

func TestZeroWidth(t *testing.T) {
	a, b := New(0), New(0)
	if a.Cmp(b) != 0 {
		t.Error("zero-width values should be equal")
	}
	if got := a.Sub(b); got.Width() != 0 {
		t.Errorf("zero-width Sub has width %d", got.Width())
	}
	if !a.Inc().IsZero() {
		t.Error("zero-width Inc should remain zero")
	}
}

// modulus returns 256^width.
func modulus(width int) *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), uint(8*width))
}

func TestSubModMatchesBigInt(t *testing.T) {
	const width = 9
	mod := modulus(width)
	f := func(a, b [width]byte) bool {
		va, vb := Value(a[:]).Clone(), Value(b[:]).Clone()
		got := va.Sub(vb).Big()
		want := new(big.Int).Sub(va.Big(), vb.Big())
		want.Mod(want, mod)
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddModMatchesBigInt(t *testing.T) {
	const width = 9
	mod := modulus(width)
	f := func(a, b [width]byte) bool {
		va, vb := Value(a[:]).Clone(), Value(b[:]).Clone()
		got := va.Add(vb).Big()
		want := new(big.Int).Add(va.Big(), vb.Big())
		want.Mod(want, mod)
		return got.Cmp(want) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCmpMatchesBigInt(t *testing.T) {
	const width = 7
	f := func(a, b [width]byte) bool {
		va, vb := Value(a[:]), Value(b[:])
		return va.Cmp(vb) == va.Big().Cmp(vb.Big())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubThenAddRoundTrips(t *testing.T) {
	const width = 6
	f := func(a, b [width]byte) bool {
		va, vb := Value(a[:]), Value(b[:])
		return va.Sub(vb).Add(vb).Cmp(va) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAliasedDst(t *testing.T) {
	a := FromUint64(100, 4)
	b := FromUint64(58, 4)
	a.SubMod(b, a) // dst aliases receiver
	if a.Cmp(FromUint64(42, 4)) != 0 {
		t.Errorf("aliased SubMod = %v, want 42", a)
	}
	b.AddMod(b, b) // dst aliases both
	if b.Cmp(FromUint64(116, 4)) != 0 {
		t.Errorf("aliased AddMod = %v, want 116", b)
	}
}

func BenchmarkSubMod16(b *testing.B) {
	x, y, dst := Max(16), FromUint64(12345, 16), New(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.SubMod(y, dst)
	}
}

func BenchmarkCmp16(b *testing.B) {
	x, y := Max(16), FromUint64(12345, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Cmp(y)
	}
}
