// Package fixint implements fixed-width, big-endian, unsigned modular
// integers.
//
// EncDBDB's rotated dictionary search (paper Algorithm 3) compares values in
// a transformed domain: every value v is mapped to (encode(v) - r) mod N,
// where r is the encoding of the first dictionary entry and N is one past
// the largest value that fits the column. The original system linked a
// general-purpose C++ big-integer library into the enclave for this; because
// ENCODE right-pads values to the column's maximum byte length L, the
// modulus is always N = 256^L, and the entire arithmetic reduces to
// fixed-width byte-string operations:
//
//   - encode(v)            = v right-padded with zero bytes to L bytes,
//   - (x - r) mod 256^L    = big-endian subtraction with borrow (wraparound),
//   - order comparison     = lexicographic byte comparison.
//
// This package provides those primitives plus addition, increment and
// conversions, all property-tested against math/big. Widths are arbitrary;
// a Value of width L represents an element of Z_(256^L).
package fixint

import (
	"bytes"
	"errors"
	"fmt"
	"math/big"
)

// Value is a fixed-width big-endian unsigned integer. The width (in bytes)
// is len(v); all operations require equal widths. The zero-length Value
// represents the single element of Z_1 (always zero).
type Value []byte

// ErrWidthMismatch is returned when two operands have different widths.
var ErrWidthMismatch = errors.New("fixint: operand widths differ")

// New returns a zero Value of the given byte width.
func New(width int) Value {
	if width < 0 {
		width = 0
	}
	return make(Value, width)
}

// FromBytes returns a Value of the given width holding b interpreted as a
// big-endian integer. If b is longer than width, it is reduced mod 256^width
// (the leading bytes are dropped); if shorter, it is left-padded with zeros.
func FromBytes(b []byte, width int) Value {
	v := New(width)
	if len(b) > width {
		b = b[len(b)-width:]
	}
	copy(v[width-len(b):], b)
	return v
}

// FromUint64 returns a Value of the given width holding x mod 256^width.
func FromUint64(x uint64, width int) Value {
	v := New(width)
	for i := len(v) - 1; i >= 0 && x > 0; i-- {
		v[i] = byte(x)
		x >>= 8
	}
	return v
}

// Width returns the width of v in bytes.
func (v Value) Width() int { return len(v) }

// Clone returns an independent copy of v.
func (v Value) Clone() Value {
	c := make(Value, len(v))
	copy(c, v)
	return c
}

// IsZero reports whether v represents zero.
func (v Value) IsZero() bool {
	for _, b := range v {
		if b != 0 {
			return false
		}
	}
	return true
}

// Cmp compares v and u as unsigned integers, returning -1, 0, or +1.
// It panics if widths differ; use CmpChecked for an error-returning variant.
func (v Value) Cmp(u Value) int {
	if len(v) != len(u) {
		panic(fmt.Sprintf("fixint: Cmp width mismatch %d != %d", len(v), len(u)))
	}
	return bytes.Compare(v, u)
}

// CmpChecked is Cmp with an error instead of a panic on width mismatch.
func (v Value) CmpChecked(u Value) (int, error) {
	if len(v) != len(u) {
		return 0, ErrWidthMismatch
	}
	return bytes.Compare(v, u), nil
}

// SubMod sets dst = (v - u) mod 256^width and returns dst. dst may alias v
// or u. It panics if widths differ.
func (v Value) SubMod(u Value, dst Value) Value {
	if len(v) != len(u) || len(dst) != len(v) {
		panic(fmt.Sprintf("fixint: SubMod width mismatch %d/%d/%d", len(v), len(u), len(dst)))
	}
	var borrow uint16
	for i := len(v) - 1; i >= 0; i-- {
		d := uint16(v[i]) - uint16(u[i]) - borrow
		dst[i] = byte(d)
		borrow = (d >> 8) & 1 // 1 if the subtraction wrapped below zero
	}
	return dst
}

// Sub returns (v - u) mod 256^width as a fresh Value.
func (v Value) Sub(u Value) Value { return v.SubMod(u, New(len(v))) }

// AddMod sets dst = (v + u) mod 256^width and returns dst. dst may alias v
// or u. It panics if widths differ.
func (v Value) AddMod(u Value, dst Value) Value {
	if len(v) != len(u) || len(dst) != len(v) {
		panic(fmt.Sprintf("fixint: AddMod width mismatch %d/%d/%d", len(v), len(u), len(dst)))
	}
	var carry uint16
	for i := len(v) - 1; i >= 0; i-- {
		s := uint16(v[i]) + uint16(u[i]) + carry
		dst[i] = byte(s)
		carry = s >> 8
	}
	return dst
}

// Add returns (v + u) mod 256^width as a fresh Value.
func (v Value) Add(u Value) Value { return v.AddMod(u, New(len(v))) }

// Inc increments v in place modulo 256^width and returns v.
func (v Value) Inc() Value {
	for i := len(v) - 1; i >= 0; i-- {
		v[i]++
		if v[i] != 0 {
			break
		}
	}
	return v
}

// Dec decrements v in place modulo 256^width and returns v.
func (v Value) Dec() Value {
	for i := len(v) - 1; i >= 0; i-- {
		v[i]--
		if v[i] != 0xFF {
			break
		}
	}
	return v
}

// Max returns the maximum representable Value of the given width
// (all bytes 0xFF), i.e. 256^width - 1.
func Max(width int) Value {
	v := New(width)
	for i := range v {
		v[i] = 0xFF
	}
	return v
}

// Big returns v as a math/big.Int. Intended for tests and diagnostics.
func (v Value) Big() *big.Int { return new(big.Int).SetBytes(v) }

// String returns a hexadecimal representation of v.
func (v Value) String() string { return fmt.Sprintf("0x%x", []byte(v)) }
