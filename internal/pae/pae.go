// Package pae implements the probabilistic authenticated encryption scheme
// used throughout EncDBDB (paper §2.3): AES-128 in GCM mode with random
// 96-bit initialization vectors, plus the hierarchical key derivation of
// §4.2 (the per-dictionary key SK_D is derived from the database master key
// SK_DB, the table name and the column name).
//
// Ciphertexts are self-contained: IV || GCM(ciphertext || tag). Decryption
// authenticates and returns the original plaintext, or an error if the
// ciphertext was tampered with or produced under a different key.
package pae

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

const (
	// KeySize is the AES-128 key size in bytes.
	KeySize = 16
	// ivSize is the GCM nonce size in bytes.
	ivSize = 12
	// tagSize is the GCM authentication tag size in bytes.
	tagSize = 16
	// Overhead is the ciphertext expansion per value: IV plus GCM tag.
	Overhead = ivSize + tagSize
)

var (
	// ErrAuth is returned when a ciphertext fails authentication, e.g.
	// because it was modified or encrypted under a different key.
	ErrAuth = errors.New("pae: message authentication failed")
	// ErrCiphertextTooShort is returned for ciphertexts shorter than the
	// fixed IV+tag overhead.
	ErrCiphertextTooShort = errors.New("pae: ciphertext too short")
	// ErrBadKeySize is returned when a key is not KeySize bytes long.
	ErrBadKeySize = errors.New("pae: key must be 16 bytes")
)

// Key is a symmetric PAE key.
type Key []byte

// Gen generates a fresh random key (the paper's PAE Gen(1^λ)).
func Gen() (Key, error) {
	k := make(Key, KeySize)
	if _, err := io.ReadFull(rand.Reader, k); err != nil {
		return nil, fmt.Errorf("pae: generate key: %w", err)
	}
	return k, nil
}

// MustGen is Gen for contexts where key generation cannot reasonably fail
// (tests, examples). It panics on error.
func MustGen() Key {
	k, err := Gen()
	if err != nil {
		panic(err)
	}
	return k
}

// Derive derives the column-specific key SK_D from the master key SK_DB, a
// table name and a column name (paper §4.2 step 3). Derivation is
// deterministic: the proxy and the enclave independently compute the same
// SK_D. It is implemented as HMAC-SHA-256(SK_DB, label) truncated to the
// AES-128 key size, with an injective encoding of the label parts.
func Derive(master Key, table, column string) (Key, error) {
	if len(master) != KeySize {
		return nil, ErrBadKeySize
	}
	mac := hmac.New(sha256.New, master)
	writeLenPrefixed(mac, "encdbdb/column-key/v1")
	writeLenPrefixed(mac, table)
	writeLenPrefixed(mac, column)
	return Key(mac.Sum(nil)[:KeySize]), nil
}

// writeLenPrefixed writes a length-prefixed string, making the (table,
// column) encoding injective so that e.g. ("ab","c") != ("a","bc").
func writeLenPrefixed(w io.Writer, s string) {
	var hdr [4]byte
	hdr[0] = byte(len(s) >> 24)
	hdr[1] = byte(len(s) >> 16)
	hdr[2] = byte(len(s) >> 8)
	hdr[3] = byte(len(s))
	w.Write(hdr[:]) //nolint:errcheck // hash writers never fail
	io.WriteString(w, s)
}

// Cipher is a reusable encryptor/decryptor for a single key. Creating the
// AES block cipher and GCM instance once and reusing it is significantly
// faster than re-deriving them per value; dictionary searches decrypt up to
// |D| values per query.
type Cipher struct {
	aead cipher.AEAD
}

// NewCipher constructs a Cipher for the given key.
func NewCipher(key Key) (*Cipher, error) {
	if len(key) != KeySize {
		return nil, ErrBadKeySize
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("pae: new cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("pae: new gcm: %w", err)
	}
	return &Cipher{aead: aead}, nil
}

// Encrypt encrypts plaintext under a fresh random IV (the paper's PAE Enc).
// Repeated encryptions of equal plaintexts yield distinct ciphertexts except
// with negligible probability.
func (c *Cipher) Encrypt(plaintext []byte) ([]byte, error) {
	out := make([]byte, ivSize, ivSize+len(plaintext)+tagSize)
	if _, err := io.ReadFull(rand.Reader, out[:ivSize]); err != nil {
		return nil, fmt.Errorf("pae: generate iv: %w", err)
	}
	return c.aead.Seal(out, out[:ivSize], plaintext, nil), nil
}

// Decrypt authenticates and decrypts a ciphertext produced by Encrypt (the
// paper's PAE Dec). The result is a fresh slice.
func (c *Cipher) Decrypt(ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < Overhead {
		return nil, ErrCiphertextTooShort
	}
	pt, err := c.aead.Open(nil, ciphertext[:ivSize], ciphertext[ivSize:], nil)
	if err != nil {
		return nil, ErrAuth
	}
	return pt, nil
}

// DecryptInto authenticates and decrypts ciphertext, appending the plaintext
// to dst and returning the extended slice. It allows callers on the hot path
// (the enclave's dictionary scan) to reuse a buffer across decryptions.
func (c *Cipher) DecryptInto(dst, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < Overhead {
		return nil, ErrCiphertextTooShort
	}
	out, err := c.aead.Open(dst, ciphertext[:ivSize], ciphertext[ivSize:], nil)
	if err != nil {
		return nil, ErrAuth
	}
	return out, nil
}

// CiphertextLen returns the ciphertext length for a plaintext of length n.
func CiphertextLen(n int) int { return n + Overhead }

// Encrypt is a convenience wrapper constructing a throwaway Cipher.
func Encrypt(key Key, plaintext []byte) ([]byte, error) {
	c, err := NewCipher(key)
	if err != nil {
		return nil, err
	}
	return c.Encrypt(plaintext)
}

// Decrypt is a convenience wrapper constructing a throwaway Cipher.
func Decrypt(key Key, ciphertext []byte) ([]byte, error) {
	c, err := NewCipher(key)
	if err != nil {
		return nil, err
	}
	return c.Decrypt(ciphertext)
}
