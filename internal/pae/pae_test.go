package pae

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestGenKeySize(t *testing.T) {
	k, err := Gen()
	if err != nil {
		t.Fatalf("Gen: %v", err)
	}
	if len(k) != KeySize {
		t.Errorf("key size = %d, want %d", len(k), KeySize)
	}
}

func TestGenKeysDiffer(t *testing.T) {
	a, b := MustGen(), MustGen()
	if bytes.Equal(a, b) {
		t.Error("two generated keys are equal")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	c, err := NewCipher(MustGen())
	if err != nil {
		t.Fatalf("NewCipher: %v", err)
	}
	tests := []struct {
		name string
		give []byte
	}{
		{name: "empty", give: []byte{}},
		{name: "short", give: []byte("x")},
		{name: "ascii", give: []byte("Jessica")},
		{name: "binary", give: []byte{0, 1, 2, 255, 254}},
		{name: "long", give: bytes.Repeat([]byte("warehouse"), 100)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ct, err := c.Encrypt(tt.give)
			if err != nil {
				t.Fatalf("Encrypt: %v", err)
			}
			if len(ct) != CiphertextLen(len(tt.give)) {
				t.Errorf("ciphertext len = %d, want %d", len(ct), CiphertextLen(len(tt.give)))
			}
			pt, err := c.Decrypt(ct)
			if err != nil {
				t.Fatalf("Decrypt: %v", err)
			}
			if !bytes.Equal(pt, tt.give) {
				t.Errorf("round trip = %q, want %q", pt, tt.give)
			}
		})
	}
}

func TestEncryptIsProbabilistic(t *testing.T) {
	c, _ := NewCipher(MustGen())
	a, _ := c.Encrypt([]byte("same plaintext"))
	b, _ := c.Encrypt([]byte("same plaintext"))
	if bytes.Equal(a, b) {
		t.Error("two encryptions of the same plaintext are identical")
	}
}

func TestDecryptRejectsTampering(t *testing.T) {
	c, _ := NewCipher(MustGen())
	ct, _ := c.Encrypt([]byte("sensitive"))
	for i := range ct {
		bad := append([]byte(nil), ct...)
		bad[i] ^= 0x01
		if _, err := c.Decrypt(bad); !errors.Is(err, ErrAuth) {
			t.Errorf("tampering byte %d: err = %v, want ErrAuth", i, err)
		}
	}
}

func TestDecryptRejectsWrongKey(t *testing.T) {
	c1, _ := NewCipher(MustGen())
	c2, _ := NewCipher(MustGen())
	ct, _ := c1.Encrypt([]byte("secret"))
	if _, err := c2.Decrypt(ct); !errors.Is(err, ErrAuth) {
		t.Errorf("wrong key: err = %v, want ErrAuth", err)
	}
}

func TestDecryptRejectsShortCiphertext(t *testing.T) {
	c, _ := NewCipher(MustGen())
	for _, n := range []int{0, 1, Overhead - 1} {
		if _, err := c.Decrypt(make([]byte, n)); !errors.Is(err, ErrCiphertextTooShort) {
			t.Errorf("len %d: err = %v, want ErrCiphertextTooShort", n, err)
		}
	}
}

func TestNewCipherRejectsBadKey(t *testing.T) {
	for _, n := range []int{0, 15, 17, 32} {
		if _, err := NewCipher(make(Key, n)); !errors.Is(err, ErrBadKeySize) {
			t.Errorf("key len %d: err = %v, want ErrBadKeySize", n, err)
		}
	}
}

func TestDeriveDeterministic(t *testing.T) {
	master := MustGen()
	a, err := Derive(master, "t1", "c1")
	if err != nil {
		t.Fatalf("Derive: %v", err)
	}
	b, _ := Derive(master, "t1", "c1")
	if !bytes.Equal(a, b) {
		t.Error("Derive is not deterministic")
	}
	if len(a) != KeySize {
		t.Errorf("derived key size = %d, want %d", len(a), KeySize)
	}
}

func TestDeriveSeparatesColumns(t *testing.T) {
	master := MustGen()
	tests := []struct {
		name             string
		table1, col1     string
		table2, col2     string
		wantDistinctKeys bool
	}{
		{name: "different column", table1: "t", col1: "a", table2: "t", col2: "b", wantDistinctKeys: true},
		{name: "different table", table1: "t1", col1: "a", table2: "t2", col2: "a", wantDistinctKeys: true},
		{name: "boundary shift", table1: "ab", col1: "c", table2: "a", col2: "bc", wantDistinctKeys: true},
		{name: "same", table1: "t", col1: "a", table2: "t", col2: "a", wantDistinctKeys: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			k1, _ := Derive(master, tt.table1, tt.col1)
			k2, _ := Derive(master, tt.table2, tt.col2)
			if got := !bytes.Equal(k1, k2); got != tt.wantDistinctKeys {
				t.Errorf("distinct keys = %v, want %v", got, tt.wantDistinctKeys)
			}
		})
	}
}

func TestDeriveRejectsBadMaster(t *testing.T) {
	if _, err := Derive(make(Key, 5), "t", "c"); !errors.Is(err, ErrBadKeySize) {
		t.Errorf("err = %v, want ErrBadKeySize", err)
	}
}

func TestDeriveDiffersFromMaster(t *testing.T) {
	master := MustGen()
	d, _ := Derive(master, "t", "c")
	if bytes.Equal(master, d) {
		t.Error("derived key equals master key")
	}
}

func TestDecryptInto(t *testing.T) {
	c, _ := NewCipher(MustGen())
	ct, _ := c.Encrypt([]byte("hello"))
	buf := make([]byte, 0, 64)
	out, err := c.DecryptInto(buf, ct)
	if err != nil {
		t.Fatalf("DecryptInto: %v", err)
	}
	if !bytes.Equal(out, []byte("hello")) {
		t.Errorf("DecryptInto = %q, want %q", out, "hello")
	}
}

func TestConvenienceWrappers(t *testing.T) {
	key := MustGen()
	ct, err := Encrypt(key, []byte("v"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	pt, err := Decrypt(key, ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if !bytes.Equal(pt, []byte("v")) {
		t.Errorf("round trip = %q", pt)
	}
}

func TestRoundTripProperty(t *testing.T) {
	c, _ := NewCipher(MustGen())
	f := func(pt []byte) bool {
		ct, err := c.Encrypt(pt)
		if err != nil {
			return false
		}
		got, err := c.Decrypt(ct)
		if err != nil {
			return false
		}
		return bytes.Equal(got, pt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncrypt12B(b *testing.B) {
	c, _ := NewCipher(MustGen())
	pt := []byte("warehouse-12")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encrypt(pt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt12B(b *testing.B) {
	c, _ := NewCipher(MustGen())
	ct, _ := c.Encrypt([]byte("warehouse-12"))
	buf := make([]byte, 0, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		if _, err = c.DecryptInto(buf[:0], ct); err != nil {
			b.Fatal(err)
		}
	}
}
