package ordenc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/encdbdb/encdbdb/internal/fixint"
)

func mustEncoder(t *testing.T, maxLen int) *Encoder {
	t.Helper()
	e, err := NewEncoder(maxLen)
	if err != nil {
		t.Fatalf("NewEncoder(%d): %v", maxLen, err)
	}
	return e
}

func TestNewEncoderRejectsBadMaxLen(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := NewEncoder(n); !errors.Is(err, ErrBadMaxLen) {
			t.Errorf("NewEncoder(%d): err = %v, want ErrBadMaxLen", n, err)
		}
	}
}

func TestValidate(t *testing.T) {
	e := mustEncoder(t, 4)
	tests := []struct {
		name    string
		give    []byte
		wantErr error
	}{
		{name: "empty", give: []byte{}},
		{name: "fits", give: []byte("abcd")},
		{name: "short", give: []byte("a")},
		{name: "too long", give: []byte("abcde"), wantErr: ErrTooLong},
		{name: "nul", give: []byte{'a', 0, 'b'}, wantErr: ErrNULByte},
		{name: "leading nul", give: []byte{0}, wantErr: ErrNULByte},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := e.Validate(tt.give)
			if tt.wantErr == nil && err != nil {
				t.Errorf("Validate(%q) = %v, want nil", tt.give, err)
			}
			if tt.wantErr != nil && !errors.Is(err, tt.wantErr) {
				t.Errorf("Validate(%q) = %v, want %v", tt.give, err, tt.wantErr)
			}
		})
	}
}

func TestEncodePaperExample(t *testing.T) {
	// The paper encodes "AB" for a VARCHAR(5) column as the digit pair of
	// each character followed by right padding. With base-256 digits the
	// analogous property is: ENCODE("AB") = 'A','B',0,0,0 as a big-endian
	// integer, and ENCODE("AB") < ENCODE("BA").
	e := mustEncoder(t, 5)
	ab, ba := e.Encode([]byte("AB")), e.Encode([]byte("BA"))
	if want := (fixint.Value{'A', 'B', 0, 0, 0}); ab.Cmp(want) != 0 {
		t.Errorf("Encode(AB) = %v, want %v", ab, want)
	}
	if ab.Cmp(ba) != -1 {
		t.Error("ENCODE(AB) should be < ENCODE(BA)")
	}
}

func TestEncodePreservesOrderTable(t *testing.T) {
	e := mustEncoder(t, 6)
	tests := []struct {
		a, b string
		want int
	}{
		{a: "A", b: "B", want: -1},
		{a: "AB", b: "ABA", want: -1}, // prefix sorts first
		{a: "ABA", b: "AB", want: 1},
		{a: "same", b: "same", want: 0},
		{a: "", b: "a", want: -1},
		{a: "zz", b: "za", want: 1},
	}
	for _, tt := range tests {
		got := e.Encode([]byte(tt.a)).Cmp(e.Encode([]byte(tt.b)))
		if got != tt.want {
			t.Errorf("Encode(%q).Cmp(Encode(%q)) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

// randomValue returns a NUL-free value of length <= maxLen.
func randomValue(rng *rand.Rand, maxLen int) []byte {
	n := rng.Intn(maxLen + 1)
	v := make([]byte, n)
	for i := range v {
		v[i] = byte(1 + rng.Intn(255))
	}
	return v
}

func TestEncodeOrderMatchesBytesCompareProperty(t *testing.T) {
	const maxLen = 10
	e := mustEncoder(t, maxLen)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		a, b := randomValue(rng, maxLen), randomValue(rng, maxLen)
		got := e.Encode(a).Cmp(e.Encode(b))
		want := bytes.Compare(a, b)
		if got != want {
			t.Fatalf("order mismatch for %q vs %q: encode %d, bytes %d", a, b, got, want)
		}
	}
}

func TestTransformPreservesRotatedOrder(t *testing.T) {
	// For any r, the transform must order values by their "modular distance"
	// above r: values >= r come first (in order), then values < r.
	const maxLen = 8
	e := mustEncoder(t, maxLen)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		r := e.Encode(randomValue(rng, maxLen))
		a, b := randomValue(rng, maxLen), randomValue(rng, maxLen)
		ta := e.Transform(a, r, fixint.New(maxLen))
		tb := e.Transform(b, r, fixint.New(maxLen))

		ea, eb := e.Encode(a), e.Encode(b)
		aAbove, bAbove := ea.Cmp(r) >= 0, eb.Cmp(r) >= 0
		var want int
		switch {
		case aAbove == bAbove:
			want = ea.Cmp(eb)
		case aAbove:
			want = -1
		default:
			want = 1
		}
		if got := ta.Cmp(tb); got != want {
			t.Fatalf("transform order mismatch: a=%q b=%q r=%v got %d want %d", a, b, r, got, want)
		}
	}
}

func TestTransformOfRIsZero(t *testing.T) {
	e := mustEncoder(t, 5)
	v := []byte("pivot")
	r := e.Encode(v)
	if tr := e.Transform(v, r, fixint.New(5)); !tr.IsZero() {
		t.Errorf("Transform(v, Encode(v)) = %v, want 0", tr)
	}
}

func TestEncodeIntoReusesBuffer(t *testing.T) {
	e := mustEncoder(t, 4)
	dst := fixint.FromBytes([]byte{9, 9, 9, 9}, 4)
	got := e.EncodeInto([]byte("ab"), dst)
	if want := (fixint.Value{'a', 'b', 0, 0}); got.Cmp(want) != 0 {
		t.Errorf("EncodeInto = %v, want %v (stale bytes not cleared?)", got, want)
	}
}

func TestColumnMax(t *testing.T) {
	e := mustEncoder(t, 3)
	if got := e.ColumnMax(); got.Cmp(fixint.Max(3)) != 0 {
		t.Errorf("ColumnMax = %v, want all-0xFF", got)
	}
	// Every encodable value must be <= ColumnMax.
	if e.Encode([]byte{0xFF, 0xFF, 0xFF}).Cmp(e.ColumnMax()) != 0 {
		t.Error("max value should encode to ColumnMax")
	}
}

func TestCompare(t *testing.T) {
	f := func(a, b []byte) bool {
		return Compare(a, b) == bytes.Compare(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkTransform(b *testing.B) {
	e, _ := NewEncoder(12)
	r := e.Encode([]byte("rotationbase"))
	dst := fixint.New(12)
	v := []byte("benchvalue")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Transform(v, r, dst)
	}
}
