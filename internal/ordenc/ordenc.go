// Package ordenc implements the ENCODE operation of EncDBDB's rotated
// dictionary search (paper Algorithm 3).
//
// ENCODE converts string values of a fixed maximal length L into an integer
// representation that preserves lexicographical order: each byte is a base-256
// digit and the value is right-padded with zero bytes to L bytes. The column
// maximum is the all-0xFF string of length L, so the modulus used by the
// rotated search is N = 256^L, and the transform
//
//	T_r(v) = (ENCODE(v) - r) mod N
//
// maps a rotated-sorted dictionary back to a monotonically increasing
// sequence (except for a possible wrapped run of values equal to the
// dictionary's first entry, which internal/search handles explicitly).
//
// Because right padding makes a trailing NUL byte indistinguishable from no
// byte at all, values must not contain NUL bytes; Validate enforces this,
// mirroring VARCHAR semantics.
package ordenc

import (
	"errors"
	"fmt"

	"github.com/encdbdb/encdbdb/internal/fixint"
)

var (
	// ErrTooLong is returned when a value exceeds the column's maximum length.
	ErrTooLong = errors.New("ordenc: value exceeds column maximum length")
	// ErrNULByte is returned when a value contains a NUL byte.
	ErrNULByte = errors.New("ordenc: value contains NUL byte")
	// ErrBadMaxLen is returned for non-positive column maximum lengths.
	ErrBadMaxLen = errors.New("ordenc: column maximum length must be positive")
)

// Encoder encodes values of one column with a fixed maximum byte length.
type Encoder struct {
	maxLen int
}

// NewEncoder returns an Encoder for a column whose values are at most maxLen
// bytes long (e.g. 30 for a VARCHAR(30) column).
func NewEncoder(maxLen int) (*Encoder, error) {
	if maxLen <= 0 {
		return nil, ErrBadMaxLen
	}
	return &Encoder{maxLen: maxLen}, nil
}

// MaxLen returns the column maximum length in bytes.
func (e *Encoder) MaxLen() int { return e.maxLen }

// Validate checks that v fits the column: at most maxLen bytes, no NUL bytes.
func (e *Encoder) Validate(v []byte) error {
	if len(v) > e.maxLen {
		return fmt.Errorf("%w: %d > %d", ErrTooLong, len(v), e.maxLen)
	}
	for i, b := range v {
		if b == 0 {
			return fmt.Errorf("%w at index %d", ErrNULByte, i)
		}
	}
	return nil
}

// Encode returns ENCODE(v): v right-padded with zeros to maxLen bytes,
// interpreted as a big-endian integer. The caller must have validated v.
func (e *Encoder) Encode(v []byte) fixint.Value {
	out := fixint.New(e.maxLen)
	copy(out, v)
	return out
}

// EncodeInto writes ENCODE(v) into dst, which must have width maxLen.
// It avoids per-value allocation on the search hot path.
func (e *Encoder) EncodeInto(v []byte, dst fixint.Value) fixint.Value {
	copy(dst, v)
	for i := len(v); i < len(dst); i++ {
		dst[i] = 0
	}
	return dst
}

// ColumnMax returns ENCODE of the maximum value that fits the column: the
// all-0xFF string of length maxLen (Algorithm 3, line 3). N = ColumnMax + 1
// = 256^maxLen is the modulus of the rotation transform; since N is a power
// of 256, "mod N" is fixint's natural fixed-width wraparound.
func (e *Encoder) ColumnMax() fixint.Value { return fixint.Max(e.maxLen) }

// Transform computes T_r(v) = (ENCODE(v) - r) mod 256^maxLen into dst and
// returns it. r must be an encoded value of width maxLen.
func (e *Encoder) Transform(v []byte, r fixint.Value, dst fixint.Value) fixint.Value {
	e.EncodeInto(v, dst)
	return dst.SubMod(r, dst)
}

// Compare compares two raw (unencoded, unpadded) values in plaintext order.
// For NUL-free values this equals the order of their encodings.
func Compare(a, b []byte) int {
	switch {
	case string(a) < string(b):
		return -1
	case string(a) > string(b):
		return 1
	default:
		return 0
	}
}
