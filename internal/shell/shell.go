// Package shell holds the pieces the interactive commands (encdbdb,
// encdbdb-proxy) share: Ctrl-C-driven query cancellation and result
// rendering.
package shell

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"sync"

	"github.com/encdbdb/encdbdb/internal/proxy"
)

// Interrupter turns Ctrl-C into context cancellation for the statement
// currently executing, instead of killing the shell: while a query is in
// flight (between Begin and End) an interrupt cancels its context — the
// engine abandons the scan between chunks, remote providers are told to stop
// over the wire — and at the prompt it just prints a hint.
type Interrupter struct {
	mu     sync.Mutex
	cancel context.CancelFunc
	out    io.Writer
}

// NewInterrupter installs the SIGINT handler. out receives the at-prompt
// hint (defaults to os.Stderr when nil).
func NewInterrupter(out io.Writer) *Interrupter {
	if out == nil {
		out = os.Stderr
	}
	in := &Interrupter{out: out}
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	go func() {
		for range ch {
			in.mu.Lock()
			if in.cancel != nil {
				in.cancel()
				fmt.Fprintln(in.out, "cancelling query...")
			} else {
				fmt.Fprintln(in.out, `(interrupt — type \quit to exit)`)
			}
			in.mu.Unlock()
		}
	}()
	return in
}

// Begin returns the context for one statement execution; until End is
// called, Ctrl-C cancels it.
func (in *Interrupter) Begin() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	in.mu.Lock()
	in.cancel = cancel
	in.mu.Unlock()
	return ctx
}

// End leaves query mode: subsequent interrupts hit the prompt, not a
// finished query's context.
func (in *Interrupter) End() {
	in.mu.Lock()
	if in.cancel != nil {
		in.cancel()
		in.cancel = nil
	}
	in.mu.Unlock()
}

// PrintResult renders one decrypted result like the classic shells do.
func PrintResult(w io.Writer, res *proxy.Result) {
	switch res.Kind {
	case proxy.KindOK:
		fmt.Fprintln(w, "ok")
	case proxy.KindCount:
		fmt.Fprintf(w, "count: %d\n", res.Count)
	case proxy.KindAffected:
		fmt.Fprintf(w, "affected: %d\n", res.Affected)
	default:
		if len(res.Columns) > 0 {
			fmt.Fprintln(w, strings.Join(res.Columns, " | "))
		}
		for _, row := range res.Rows {
			fmt.Fprintln(w, strings.Join(row, " | "))
		}
		fmt.Fprintf(w, "(%d rows)\n", len(res.Rows))
	}
}
