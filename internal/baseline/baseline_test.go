package baseline

import (
	"fmt"
	"testing"

	"github.com/encdbdb/encdbdb/internal/pae"
	"github.com/encdbdb/encdbdb/internal/search"
)

func bcol(vals ...string) [][]byte {
	out := make([][]byte, len(vals))
	for i, v := range vals {
		out[i] = []byte(v)
	}
	return out
}

func TestMonetDBSimDeduplicatesSmallDictionaries(t *testing.T) {
	m := NewMonetDBSim(bcol("a", "b", "a", "c", "b", "a"))
	if m.DictLen() != 3 {
		t.Errorf("dict len = %d, want 3 (deduplicated)", m.DictLen())
	}
	if m.Rows() != 6 {
		t.Errorf("rows = %d, want 6", m.Rows())
	}
}

func TestMonetDBSimStopsDeduplicatingWhenLarge(t *testing.T) {
	// Push the dictionary past 64 kB with unique values, then re-insert a
	// known value: it must be stored again (duplicate).
	var col [][]byte
	for i := 0; i < 5000; i++ {
		col = append(col, []byte(fmt.Sprintf("value-%04d-padding-padding", i))) // 25 B each
	}
	col = append(col, col[0])
	m := NewMonetDBSim(col)
	if m.DictLen() != 5001 {
		t.Errorf("dict len = %d, want 5001 (duplicate stored after threshold)", m.DictLen())
	}
}

func TestMonetDBSimRangeSearch(t *testing.T) {
	m := NewMonetDBSim(bcol("Hans", "Jessica", "Archie", "Ella", "Jessica", "Jessica"))
	got := m.RangeSearch(search.Closed([]byte("Archie"), []byte("Hans")))
	want := []uint32{0, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("rids = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rids = %v, want %v", got, want)
		}
	}
}

func TestMonetDBSimGet(t *testing.T) {
	m := NewMonetDBSim(bcol("x", "y", "x"))
	if string(m.Get(2)) != "x" {
		t.Errorf("Get(2) = %q", m.Get(2))
	}
}

func TestMonetDBSimSizeMatchesPaperFormula(t *testing.T) {
	// Table 6 reproduction at small scale: dict bytes + 4 B per row.
	col := bcol("aaaa", "bbbb", "aaaa", "cccc")
	m := NewMonetDBSim(col)
	want := 3*4 + 4*4
	if m.SizeBytes() != want {
		t.Errorf("size = %d, want %d", m.SizeBytes(), want)
	}
}

func TestFileSizes(t *testing.T) {
	col := bcol("abc", "de", "")
	if got := PlaintextFileSize(col); got != 5 {
		t.Errorf("plaintext size = %d, want 5", got)
	}
	if got := EncryptedFileSize(col); got != 5+3*pae.Overhead {
		t.Errorf("encrypted size = %d, want %d", got, 5+3*pae.Overhead)
	}
}

func TestEqual(t *testing.T) {
	if !Equal(bcol("a", "b"), bcol("a", "b")) {
		t.Error("equal columns reported unequal")
	}
	if Equal(bcol("a"), bcol("a", "b")) {
		t.Error("different lengths reported equal")
	}
	if Equal(bcol("a"), bcol("b")) {
		t.Error("different values reported equal")
	}
}

func TestMonetDBSimEmptyColumn(t *testing.T) {
	m := NewMonetDBSim(nil)
	if m.Rows() != 0 || m.DictLen() != 0 || m.SizeBytes() != 0 {
		t.Errorf("empty column: rows=%d dict=%d size=%d", m.Rows(), m.DictLen(), m.SizeBytes())
	}
	if got := m.RangeSearch(search.Eq([]byte("x"))); got != nil {
		t.Errorf("search on empty = %v", got)
	}
}
