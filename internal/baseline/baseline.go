// Package baseline implements the two comparison systems of the paper's
// evaluation (§6.3):
//
//   - MonetDBSim, a MonetDB-style plaintext column store: string columns use
//     an insertion-ordered dictionary with hash-based deduplication (below a
//     size threshold) and an offset attribute vector, and a range scan
//     performs a linear number of *string* comparisons over the column —
//     the behaviour §6.3 identifies as the reason EncDBDB outperforms it
//     ("MonetDB's attribute vector search performs a linear number of
//     string comparisons").
//   - The storage accounting for the "plaintext file" and "encrypted file"
//     rows of Table 6.
//
// The PlainDBDB baseline needs no code here: every encrypted dictionary has
// a plaintext twin built into the engine (ColumnDef.Plain).
package baseline

import (
	"bytes"

	"github.com/encdbdb/encdbdb/internal/pae"
	"github.com/encdbdb/encdbdb/internal/search"
)

// dedupLimit mirrors MonetDB's behaviour of deduplicating string
// dictionaries only while they are small (§5: "the dictionary does not
// contain duplicates if it is small (below 64 kB)").
const dedupLimit = 64 << 10

// MonetDBSim is a plaintext, insertion-ordered, dictionary-encoded column.
type MonetDBSim struct {
	dict      [][]byte
	dictBytes int
	av        []uint32
	index     map[string]uint32 // hash table with collision handling via Go map
}

// NewMonetDBSim builds the column store for a plaintext column.
func NewMonetDBSim(col [][]byte) *MonetDBSim {
	m := &MonetDBSim{index: make(map[string]uint32)}
	for _, v := range col {
		m.append(v)
	}
	return m
}

// append inserts one value, deduplicating only while the dictionary is
// below the size threshold.
func (m *MonetDBSim) append(v []byte) {
	if m.index != nil {
		if id, ok := m.index[string(v)]; ok {
			m.av = append(m.av, id)
			return
		}
	}
	id := uint32(len(m.dict))
	m.dict = append(m.dict, v)
	m.dictBytes += len(v)
	m.av = append(m.av, id)
	if m.index != nil {
		m.index[string(v)] = id
		if m.dictBytes > dedupLimit {
			// Dictionary grew past the threshold: MonetDB stops
			// consulting the collision list and may store duplicates.
			m.index = nil
		}
	}
}

// Rows returns the number of rows.
func (m *MonetDBSim) Rows() int { return len(m.av) }

// DictLen returns the dictionary entry count (may include duplicates for
// large dictionaries, as in MonetDB).
func (m *MonetDBSim) DictLen() int { return len(m.dict) }

// SizeBytes returns the storage footprint: dictionary payloads plus a
// 4-byte offset per row. This reproduces the paper's MonetDB numbers
// (Table 6: C2 = 13,361 uniques x 10 B + 10.9 M x 4 B = 43 MB).
func (m *MonetDBSim) SizeBytes() int { return m.dictBytes + 4*len(m.av) }

// RangeSearch returns the RecordIDs whose value falls into q. Faithful to
// the modelled engine, it materializes each row's string through the
// dictionary and compares strings linearly over the whole column.
func (m *MonetDBSim) RangeSearch(q search.Range) []uint32 {
	var out []uint32
	for j, id := range m.av {
		if q.Contains(m.dict[id]) {
			out = append(out, uint32(j))
		}
	}
	return out
}

// Get returns the value of row j (for result rendering).
func (m *MonetDBSim) Get(j int) []byte { return m.dict[m.av[j]] }

// PlaintextFileSize is Table 6's "plaintext file": all values
// uncompressed, one per record.
func PlaintextFileSize(col [][]byte) int {
	total := 0
	for _, v := range col {
		total += len(v)
	}
	return total
}

// EncryptedFileSize is Table 6's "encrypted file": every value individually
// PAE-encrypted, i.e. the plaintext file plus the per-value IV+tag
// overhead.
func EncryptedFileSize(col [][]byte) int {
	total := 0
	for _, v := range col {
		total += pae.CiphertextLen(len(v))
	}
	return total
}

// Equal reports whether two columns hold identical values (test helper for
// store comparisons).
func Equal(a, b [][]byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}
