package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/engine"
)

// Protocol v3 replaces gob with a hand-rolled binary codec on the hot
// data-plane messages. Every v3 frame payload opens with a codec byte:
//
//	codecGob — the body is one self-contained gob document of the request
//	  or response envelope. The path for the rare control ops whose types
//	  are not worth a hand encoding (attestation quotes, sealed keys, bulk
//	  column imports), and the compatibility valve for anything else.
//	codecBin — the body is the binary encoding below: no reflection, no
//	  type descriptors, and on decode no copies — byte fields alias the
//	  frame payload.
//
// Binary primitives: unsigned varints for all integers and lengths,
// single bytes for tags and bools, length-prefixed bytes with a +1 nil
// bias (0 encodes a nil slice, n+1 a slice of n bytes), and
// length-prefixed UTF-8 for strings. Envelope fields that are zero are
// omitted behind a presence bitmask, mirroring gob's omit-zero semantics
// so the two codecs answer identically.
//
// The same encoding functions run twice per message — once against a
// counting sink to learn the frame length, once against the connection's
// buffered writer — so the frame header never needs a scratch buffer copy
// and the two passes cannot disagree without being detected (the writer
// checks the byte count it produced against the announced length).

// Codec tags (first payload byte of every v3 frame).
const (
	codecGob = 0x00
	codecBin = 0x01
)

// reqNeedsGob reports whether a request must travel as a gob document:
// its op carries enclave types (quotes, sealed keys) or bulk split data
// the binary codec does not encode. Batches inherit the requirement from
// their sub-requests.
func reqNeedsGob(req *request) bool {
	switch req.Op {
	case opQuote, opProvision, opImportColumn:
		return true
	case opBatch:
		for i := range req.Subs {
			if reqNeedsGob(&req.Subs[i]) {
				return true
			}
		}
	}
	return false
}

// Request presence bits.
const (
	reqHasQuery = 1 << iota
	reqHasRow
	reqHasFilters
	reqHasSet
	reqHasSchema
	reqHasSubs
)

// Response presence bits.
const (
	respHasErr = 1 << iota
	respHasSchema
	respHasResult
	respHasTables
	respHasMerge
	respHasSubs
	respMore
)

// binSink is the write half of the binary codec. The encode functions are
// written once against this interface and run against both implementations:
// binCounter sizes a message, binWriter emits it.
type binSink interface {
	byte(b byte)
	uvarint(v uint64)
	bytes(b []byte)
	str(s string)
}

// binCounter sizes a message without writing anything.
type binCounter struct {
	n int
}

func (c *binCounter) reset()    { c.n = 0 }
func (c *binCounter) byte(byte) { c.n++ }
func (c *binCounter) uvarint(v uint64) {
	c.n++
	for v >= 0x80 {
		c.n++
		v >>= 7
	}
}
func (c *binCounter) bytes(b []byte) {
	if b == nil {
		c.n++
		return
	}
	c.uvarint(uint64(len(b)) + 1)
	c.n += len(b)
}
func (c *binCounter) str(s string) {
	c.uvarint(uint64(len(s)))
	c.n += len(s)
}

// binWriter emits a message into a bufio.Writer, counting what it writes.
// Write errors are sticky and surface once at the end via err().
type binWriter struct {
	bw      *bufio.Writer
	n       int
	failed  error
	scratch [binary.MaxVarintLen64]byte
}

func (w *binWriter) reset(bw *bufio.Writer) {
	w.bw = bw
	w.n = 0
	w.failed = nil
}

func (w *binWriter) err() error { return w.failed }

func (w *binWriter) byte(b byte) {
	if w.failed != nil {
		return
	}
	if err := w.bw.WriteByte(b); err != nil {
		w.failed = err
		return
	}
	w.n++
}

func (w *binWriter) uvarint(v uint64) {
	if w.failed != nil {
		return
	}
	n := binary.PutUvarint(w.scratch[:], v)
	m, err := w.bw.Write(w.scratch[:n])
	w.n += m
	if err != nil {
		w.failed = err
	}
}

func (w *binWriter) bytes(b []byte) {
	if b == nil {
		w.byte(0)
		return
	}
	w.uvarint(uint64(len(b)) + 1)
	if w.failed != nil {
		return
	}
	m, err := w.bw.Write(b)
	w.n += m
	if err != nil {
		w.failed = err
	}
}

func (w *binWriter) str(s string) {
	w.uvarint(uint64(len(s)))
	if w.failed != nil {
		return
	}
	m, err := w.bw.WriteString(s)
	w.n += m
	if err != nil {
		w.failed = err
	}
}

// boolByte encodes a bool as one byte.
func boolByte(s binSink, v bool) {
	if v {
		s.byte(1)
	} else {
		s.byte(0)
	}
}

// --- encoding ---

func encRequest(s binSink, req *request) {
	s.byte(byte(req.Op))
	s.str(req.Table)
	s.str(req.Column)
	s.uvarint(req.Cancel)
	var flags byte
	if req.Query.Table != "" || len(req.Query.Filters) > 0 || len(req.Query.Project) > 0 ||
		req.Query.CountOnly || req.Query.Limit > 0 {
		flags |= reqHasQuery
	}
	if len(req.Row) > 0 {
		flags |= reqHasRow
	}
	if len(req.Filters) > 0 {
		flags |= reqHasFilters
	}
	if len(req.Set) > 0 {
		flags |= reqHasSet
	}
	if req.Schema.Table != "" || len(req.Schema.Columns) > 0 {
		flags |= reqHasSchema
	}
	if len(req.Subs) > 0 {
		flags |= reqHasSubs
	}
	s.byte(flags)
	if flags&reqHasQuery != 0 {
		encQuery(s, &req.Query)
	}
	if flags&reqHasRow != 0 {
		encRow(s, req.Row)
	}
	if flags&reqHasFilters != 0 {
		encFilters(s, req.Filters)
	}
	if flags&reqHasSet != 0 {
		encRow(s, req.Set)
	}
	if flags&reqHasSchema != 0 {
		encSchema(s, &req.Schema)
	}
	if flags&reqHasSubs != 0 {
		s.uvarint(uint64(len(req.Subs)))
		for i := range req.Subs {
			encRequest(s, &req.Subs[i])
		}
	}
}

func encQuery(s binSink, q *engine.Query) {
	s.str(q.Table)
	encFilters(s, q.Filters)
	s.uvarint(uint64(len(q.Project)))
	for _, p := range q.Project {
		s.str(p)
	}
	boolByte(s, q.CountOnly)
	s.uvarint(uint64(q.Limit))
}

func encFilters(s binSink, fs []engine.Filter) {
	s.uvarint(uint64(len(fs)))
	for i := range fs {
		s.str(fs[i].Column)
		s.uvarint(uint64(len(fs[i].Ranges)))
		for j := range fs[i].Ranges {
			r := &fs[i].Ranges[j]
			s.bytes(r.Start)
			s.bytes(r.End)
			var incl byte
			if r.StartIncl {
				incl |= 1
			}
			if r.EndIncl {
				incl |= 2
			}
			s.byte(incl)
		}
	}
}

func encRow(s binSink, row engine.Row) {
	s.uvarint(uint64(len(row)))
	for name, val := range row {
		s.str(name)
		s.bytes(val)
	}
}

func encSchema(s binSink, sc *engine.Schema) {
	s.str(sc.Table)
	s.uvarint(uint64(len(sc.Columns)))
	for i := range sc.Columns {
		c := &sc.Columns[i]
		s.str(c.Name)
		s.uvarint(uint64(c.Kind))
		s.uvarint(uint64(c.MaxLen))
		s.uvarint(uint64(c.BSMax))
		boolByte(s, c.Plain)
	}
}

func encResponse(s binSink, resp *response) {
	var flags byte
	if resp.Err != "" {
		flags |= respHasErr
	}
	if resp.Schema.Table != "" || len(resp.Schema.Columns) > 0 {
		flags |= respHasSchema
	}
	if resp.Result != nil {
		flags |= respHasResult
	}
	if len(resp.Tables) > 0 {
		flags |= respHasTables
	}
	if resp.Merge != (engine.MergeInfo{}) {
		flags |= respHasMerge
	}
	if len(resp.Subs) > 0 {
		flags |= respHasSubs
	}
	if resp.More {
		flags |= respMore
	}
	s.byte(flags)
	s.uvarint(uint64(resp.N))
	if flags&respHasErr != 0 {
		s.str(resp.Err)
	}
	if flags&respHasSchema != 0 {
		encSchema(s, &resp.Schema)
	}
	if flags&respHasResult != 0 {
		encResult(s, resp.Result)
	}
	if flags&respHasTables != 0 {
		s.uvarint(uint64(len(resp.Tables)))
		for _, t := range resp.Tables {
			s.str(t)
		}
	}
	if flags&respHasMerge != 0 {
		encMerge(s, &resp.Merge)
	}
	if flags&respHasSubs != 0 {
		s.uvarint(uint64(len(resp.Subs)))
		for i := range resp.Subs {
			encResponse(s, &resp.Subs[i])
		}
	}
}

func encResult(s binSink, res *engine.Result) {
	s.uvarint(uint64(res.Count))
	s.uvarint(uint64(len(res.RecordIDs)))
	for _, rid := range res.RecordIDs {
		s.uvarint(uint64(rid))
	}
	s.uvarint(uint64(len(res.Columns)))
	for i := range res.Columns {
		c := &res.Columns[i]
		s.str(c.Table)
		s.str(c.Column)
		s.uvarint(uint64(len(c.Cells)))
		for _, cell := range c.Cells {
			s.bytes(cell)
		}
	}
}

func encMerge(s binSink, m *engine.MergeInfo) {
	s.uvarint(m.Generation)
	boolByte(s, m.Merging)
	s.uvarint(uint64(m.MainRows))
	s.uvarint(uint64(m.DeltaRows))
	s.uvarint(uint64(m.DeltaBytes))
	s.uvarint(uint64(m.SealedRuns))
	s.uvarint(m.Merges)
	s.str(m.LastError)
}

// --- decoding ---

// errCorruptFrame reports a frame body that does not parse as its announced
// codec — truncated, trailing garbage, or lengths pointing past the end.
var errCorruptFrame = errors.New("wire: corrupt binary frame")

// binReader decodes the binary codec from one frame payload. Errors are
// sticky: after the first malformed read every accessor returns zero values
// and err() reports the failure, so decode functions need no per-field
// checks. Bytes fields alias the payload — see the ownership rules in
// docs/wire-protocol.md.
type binReader struct {
	buf    []byte
	pos    int
	failed error
}

func (d *binReader) reset(buf []byte) {
	d.buf = buf
	d.pos = 0
	d.failed = nil
}

func (d *binReader) fail() {
	if d.failed == nil {
		d.failed = errCorruptFrame
	}
}

// err reports the first decode failure, including trailing bytes after a
// complete message (frame and message boundaries must coincide).
func (d *binReader) err() error {
	if d.failed == nil && d.pos != len(d.buf) {
		return errCorruptFrame
	}
	return d.failed
}

func (d *binReader) byte() byte {
	if d.failed != nil || d.pos >= len(d.buf) {
		d.fail()
		return 0
	}
	b := d.buf[d.pos]
	d.pos++
	return b
}

func (d *binReader) uvarint() uint64 {
	if d.failed != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.pos:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.pos += n
	return v
}

// length reads a count that the remaining payload must be able to satisfy
// at at least one byte per element — the bound that keeps a hostile length
// prefix from driving a huge allocation.
func (d *binReader) length() int {
	v := d.uvarint()
	if d.failed != nil || v > uint64(len(d.buf)-d.pos) {
		d.fail()
		return 0
	}
	return int(v)
}

// bytes returns the next length-prefixed byte field, aliasing the payload.
func (d *binReader) bytes() []byte {
	v := d.uvarint()
	if d.failed != nil {
		return nil
	}
	if v == 0 {
		return nil
	}
	n := int(v - 1)
	if v > uint64(len(d.buf)-d.pos)+1 {
		d.fail()
		return nil
	}
	b := d.buf[d.pos : d.pos+n : d.pos+n]
	d.pos += n
	return b
}

// strBytes returns the raw bytes of the next string field, aliasing the
// payload; callers intern or copy it.
func (d *binReader) strBytes() []byte {
	n := d.length()
	if d.failed != nil {
		return nil
	}
	b := d.buf[d.pos : d.pos+n : d.pos+n]
	d.pos += n
	return b
}

func (d *binReader) str() string { return string(d.strBytes()) }

func (d *binReader) bool() bool { return d.byte() != 0 }

// intern caches the small, recurring identifier strings of a connection —
// table, column, and projection names — so steady-state decoding allocates
// no strings. The cache is bounded: a peer inventing unbounded identifiers
// pays its own allocations instead of growing ours.
type intern struct {
	m map[string]string
}

const internLimit = 1024

func (in *intern) get(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if in.m == nil {
		in.m = make(map[string]string, 16)
	}
	if s, ok := in.m[string(b)]; ok { // no alloc: compiler-optimized lookup
		return s
	}
	s := string(b)
	if len(in.m) < internLimit {
		in.m[s] = s
	}
	return s
}

// decRequest decodes a binary request body into req, reusing req's
// capacity (filter and range slices, row maps, sub-request slices) from
// previous decodes. Identifier strings are interned in in; byte values
// alias the payload d was reset with.
func decRequest(d *binReader, req *request, in *intern) {
	req.Op = op(d.byte())
	req.Table = in.get(d.strBytes())
	req.Column = in.get(d.strBytes())
	req.Cancel = d.uvarint()
	flags := d.byte()
	if flags&reqHasQuery != 0 {
		decQuery(d, &req.Query, in)
	}
	if flags&reqHasRow != 0 {
		req.Row = decRow(d, req.Row, in)
	}
	if flags&reqHasFilters != 0 {
		req.Filters = decFilters(d, req.Filters, in)
	}
	if flags&reqHasSet != 0 {
		req.Set = decRow(d, req.Set, in)
	}
	if flags&reqHasSchema != 0 {
		decSchema(d, &req.Schema, in)
	}
	if flags&reqHasSubs != 0 {
		n := d.length()
		if cap(req.Subs) >= n {
			req.Subs = req.Subs[:n]
		} else {
			req.Subs = make([]request, n)
		}
		for i := range req.Subs {
			resetRequest(&req.Subs[i])
			decRequest(d, &req.Subs[i], in)
		}
	}
}

func decQuery(d *binReader, q *engine.Query, in *intern) {
	q.Table = in.get(d.strBytes())
	q.Filters = decFilters(d, q.Filters, in)
	n := d.length()
	if cap(q.Project) >= n {
		q.Project = q.Project[:n]
	} else {
		q.Project = make([]string, n)
	}
	for i := range q.Project {
		q.Project[i] = in.get(d.strBytes())
	}
	q.CountOnly = d.bool()
	q.Limit = int(d.uvarint())
}

func decFilters(d *binReader, fs []engine.Filter, in *intern) []engine.Filter {
	n := d.length()
	if cap(fs) >= n {
		fs = fs[:n]
	} else {
		fs = make([]engine.Filter, n)
	}
	for i := range fs {
		fs[i].Column = in.get(d.strBytes())
		m := d.length()
		rs := fs[i].Ranges
		if cap(rs) >= m {
			rs = rs[:m]
		} else {
			rs = make([]enclave.EncRange, m)
		}
		for j := range rs {
			rs[j].Start = d.bytes()
			rs[j].End = d.bytes()
			incl := d.byte()
			rs[j].StartIncl = incl&1 != 0
			rs[j].EndIncl = incl&2 != 0
		}
		fs[i].Ranges = rs
	}
	return fs
}

func decRow(d *binReader, row engine.Row, in *intern) engine.Row {
	n := d.length()
	if row == nil {
		row = make(engine.Row, n)
	} else {
		clear(row)
	}
	for i := 0; i < n; i++ {
		name := in.get(d.strBytes())
		row[name] = d.bytes()
	}
	return row
}

func decSchema(d *binReader, sc *engine.Schema, in *intern) {
	sc.Table = in.get(d.strBytes())
	n := d.length()
	if cap(sc.Columns) >= n {
		sc.Columns = sc.Columns[:n]
	} else {
		sc.Columns = make([]engine.ColumnDef, n)
	}
	for i := range sc.Columns {
		c := &sc.Columns[i]
		c.Name = in.get(d.strBytes())
		c.Kind = dict.Kind(d.uvarint())
		c.MaxLen = int(d.uvarint())
		c.BSMax = int(d.uvarint())
		c.Plain = d.bool()
	}
}

// decResponse decodes a binary response body into resp (assumed zero).
// Result cells alias the payload; aliases reports whether any such alias
// was created, so the caller knows whether the frame buffer must outlive
// the response.
func decResponse(d *binReader, resp *response) (aliases bool) {
	flags := d.byte()
	resp.N = int(d.uvarint())
	if flags&respHasErr != 0 {
		resp.Err = d.str()
	}
	if flags&respHasSchema != 0 {
		var in intern
		decSchema(d, &resp.Schema, &in)
	}
	if flags&respHasResult != 0 {
		resp.Result = decResult(d)
		aliases = true
	}
	if flags&respHasTables != 0 {
		n := d.length()
		resp.Tables = make([]string, n)
		for i := range resp.Tables {
			resp.Tables[i] = d.str()
		}
	}
	if flags&respHasMerge != 0 {
		decMerge(d, &resp.Merge)
	}
	if flags&respHasSubs != 0 {
		n := d.length()
		resp.Subs = make([]response, n)
		for i := range resp.Subs {
			if decResponse(d, &resp.Subs[i]) {
				aliases = true
			}
		}
	}
	resp.More = flags&respMore != 0
	return aliases
}

func decResult(d *binReader) *engine.Result {
	res := &engine.Result{Count: int(d.uvarint())}
	if n := d.length(); n > 0 {
		res.RecordIDs = make([]uint32, n)
		for i := range res.RecordIDs {
			res.RecordIDs[i] = uint32(d.uvarint())
		}
	}
	if n := d.length(); n > 0 {
		res.Columns = make([]engine.ResultColumn, n)
		for i := range res.Columns {
			c := &res.Columns[i]
			c.Table = d.str()
			c.Column = d.str()
			if m := d.length(); m > 0 {
				c.Cells = make([][]byte, m)
				for j := range c.Cells {
					c.Cells[j] = d.bytes()
				}
			}
		}
	}
	return res
}

func decMerge(d *binReader, m *engine.MergeInfo) {
	m.Generation = d.uvarint()
	m.Merging = d.bool()
	m.MainRows = int(d.uvarint())
	m.DeltaRows = int(d.uvarint())
	m.DeltaBytes = int(d.uvarint())
	m.SealedRuns = int(d.uvarint())
	m.Merges = d.uvarint()
	m.LastError = d.str()
}

// resetRequest clears a request for pooled reuse, keeping the capacity of
// its slices and maps. Byte fields that aliased a released frame payload
// are dropped; identifier strings are interned and safe to drop lazily.
func resetRequest(req *request) {
	req.Op = 0
	req.Table = ""
	req.Column = ""
	req.Cancel = 0
	req.Nonce = nil
	req.Sealed = enclave.SealedKey{}
	req.Split = dict.SplitData{}
	req.Schema.Table = ""
	req.Schema.Columns = req.Schema.Columns[:0]
	req.Query.Table = ""
	req.Query.Filters = req.Query.Filters[:0]
	req.Query.Project = req.Query.Project[:0]
	req.Query.CountOnly = false
	req.Query.Limit = 0
	if req.Row != nil {
		clear(req.Row)
	}
	if req.Set != nil {
		clear(req.Set)
	}
	req.Filters = req.Filters[:0]
	req.Subs = req.Subs[:0]
}

// resetResponse clears a response for pooled reuse.
func resetResponse(resp *response) {
	resp.Err = ""
	resp.Quote = enclave.Quote{}
	resp.Schema.Table = ""
	resp.Schema.Columns = resp.Schema.Columns[:0]
	resp.Result = nil
	resp.N = 0
	resp.Tables = nil
	resp.Merge = engine.MergeInfo{}
	resp.Subs = resp.Subs[:0]
	resp.More = false
}

// decodeError wraps a codec failure with the frame's announced codec for
// the connection log.
func decodeError(tag byte, err error) error {
	return fmt.Errorf("wire: decode codec 0x%02x frame: %w", tag, err)
}
