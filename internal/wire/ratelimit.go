package wire

import (
	"errors"
	"math"
	"time"
)

// ErrRateLimited is the rate-limiting rejection: the connection exceeded its
// WithConnRate request budget, so the server shed the request before any work
// started. Like ErrServerBusy it crosses the wire as a typed sentinel —
// clients get errors.Is(err, ErrRateLimited) == true — but unlike busy
// rejections it is not absorbed by WithBusyRetry: a limited client is asked
// to slow down, not to try again immediately.
var ErrRateLimited = errors.New("wire: rate limited")

// WithConnRate caps each connection's sustained request rate at rps requests
// per second via a per-connection token bucket (burst capacity = one second
// of budget, at least one request). Requests over budget are shed immediately
// with ErrRateLimited — no server-side work starts, so shedding is always
// safe. Cancellation frames are exempt: a throttled client must still be able
// to cancel what it already has in flight. rps <= 0 (the default) disables
// the limiter.
func WithConnRate(rps float64) ServerOption {
	return func(s *Server) {
		if rps > 0 {
			s.connRate = rps
		}
	}
}

// tokenBucket is one connection's request budget: tokens refill continuously
// at rate per second up to burst, and each admitted request spends one. It is
// touched only from the connection's read loop, so it needs no lock.
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// newTokenBucket starts a bucket full, so a fresh connection gets its burst.
func newTokenBucket(rate float64) *tokenBucket {
	burst := math.Max(1, rate)
	return &tokenBucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// allow refills for the time elapsed since the last call and spends one token
// if the budget covers it.
func (b *tokenBucket) allow(now time.Time) bool {
	if el := now.Sub(b.last).Seconds(); el > 0 {
		b.tokens = math.Min(b.burst, b.tokens+el*b.rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// bucket returns a fresh per-connection bucket, or nil when the server is
// unlimited.
func (s *Server) bucket() *tokenBucket {
	if s.connRate <= 0 {
		return nil
	}
	return newTokenBucket(s.connRate)
}
