package wire

import (
	"bufio"
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/engine"
)

// binEncode runs enc twice — once against the counting sink, once against a
// real writer — and fails if the two passes disagree, mirroring the check
// muxWriter performs on every v3 frame.
func binEncode(t *testing.T, enc func(binSink)) []byte {
	t.Helper()
	var c binCounter
	enc(&c)
	var out bytes.Buffer
	bw := bufio.NewWriter(&out)
	var w binWriter
	w.reset(bw)
	enc(&w)
	if err := w.err(); err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.n != c.n || out.Len() != c.n {
		t.Fatalf("sized %d bytes, wrote %d (flushed %d)", c.n, w.n, out.Len())
	}
	return out.Bytes()
}

func binRequestCases() map[string]*request {
	return map[string]*request{
		"point_select": {
			Op:    opSelect,
			Table: "accounts",
			Query: engine.Query{
				Table: "accounts",
				Filters: []engine.Filter{{
					Column: "balance",
					Ranges: []enclave.EncRange{
						{Start: []byte{1, 2, 3}, End: []byte{9}, StartIncl: true},
						{Start: nil, End: []byte{}, EndIncl: true},
					},
				}},
				Project: []string{"balance", "owner"},
			},
		},
		"count_only": {
			Op:    opSelect,
			Query: engine.Query{Table: "t", CountOnly: true},
		},
		"insert": {
			Op:    opInsert,
			Table: "t",
			Row:   engine.Row{"a": []byte("x"), "b": nil, "c": {}},
		},
		"update": {
			Op:    opUpdate,
			Table: "t",
			Filters: []engine.Filter{{
				Column: "k",
				Ranges: []enclave.EncRange{{Start: []byte{7}, End: []byte{7}, StartIncl: true, EndIncl: true}},
			}},
			Set: engine.Row{"v": []byte("new")},
		},
		"create_table": {
			Op: opCreateTable,
			Schema: engine.Schema{Table: "t", Columns: []engine.ColumnDef{
				{Name: "c", Kind: dict.ED1, MaxLen: 8, Plain: true},
				{Name: "d", Kind: dict.ED5, MaxLen: 32, BSMax: 4},
			}},
		},
		"batch": {
			Op: opBatch,
			Subs: []request{
				{Op: opInsert, Table: "t", Row: engine.Row{"c": []byte("v")}},
				{Op: opRows, Table: "t"},
			},
		},
		"cancel": {Op: opCancel, Cancel: 1 << 40},
	}
}

func TestBinRequestRoundTrip(t *testing.T) {
	for name, req := range binRequestCases() {
		t.Run(name, func(t *testing.T) {
			raw := binEncode(t, func(s binSink) { encRequest(s, req) })
			var d binReader
			d.reset(raw)
			got := new(request)
			var in intern
			decRequest(&d, got, &in)
			if err := d.err(); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, req) {
				t.Errorf("round trip:\n got %+v\nwant %+v", got, req)
			}
		})
	}
}

// TestBinRequestPooledReuse decodes different requests into the same pooled
// envelope, interleaved with resetRequest, proving that retained capacity
// from an earlier decode never leaks into a later one.
func TestBinRequestPooledReuse(t *testing.T) {
	req := new(request)
	var in intern
	cases := binRequestCases()
	// Two passes so every case also decodes into capacity left by every
	// other case at least once.
	for pass := 0; pass < 2; pass++ {
		for name, want := range cases {
			raw := binEncode(t, func(s binSink) { encRequest(s, want) })
			resetRequest(req)
			var d binReader
			d.reset(raw)
			decRequest(&d, req, &in)
			if err := d.err(); err != nil {
				t.Fatalf("pass %d %s: %v", pass, name, err)
			}
			// Normalize the pooled envelope's retained-capacity artifacts
			// ([:0] slices and cleared maps read equal but not DeepEqual to
			// their nil counterparts).
			got := *req
			if len(got.Row) == 0 {
				got.Row = nil
			}
			if len(got.Set) == 0 {
				got.Set = nil
			}
			if len(got.Filters) == 0 {
				got.Filters = nil
			}
			if len(got.Subs) == 0 {
				got.Subs = nil
			}
			if len(got.Query.Filters) == 0 {
				got.Query.Filters = nil
			}
			if len(got.Query.Project) == 0 {
				got.Query.Project = nil
			}
			if len(got.Schema.Columns) == 0 {
				got.Schema.Columns = nil
			}
			want2 := *want
			if !reflect.DeepEqual(&got, &want2) {
				t.Errorf("pass %d %s:\n got %+v\nwant %+v", pass, name, &got, &want2)
			}
		}
	}
}

func binResponseCases() map[string]*response {
	return map[string]*response{
		"ack":   {N: 3},
		"error": {Err: "wire: server busy"},
		"result": {
			N: 2,
			Result: &engine.Result{
				Count:     2,
				RecordIDs: []uint32{5, 1 << 20},
				Columns: []engine.ResultColumn{{
					Table:  "t",
					Column: "c",
					Cells:  [][]byte{[]byte("aa"), nil, {}},
				}},
			},
		},
		"schema": {
			Schema: engine.Schema{Table: "t", Columns: []engine.ColumnDef{
				{Name: "c", Kind: dict.ED1, MaxLen: 8, Plain: true},
			}},
		},
		"tables": {Tables: []string{"a", "b"}},
		"merge": {
			Merge: engine.MergeInfo{
				Generation: 7, Merging: true, MainRows: 100, DeltaRows: 3,
				DeltaBytes: 4096, SealedRuns: 2, Merges: 6, LastError: "boom",
			},
		},
		"batch": {Subs: []response{{N: 1}, {Err: "bad"}}},
		"chunk": {
			N:      10,
			More:   true,
			Result: &engine.Result{Count: 1, Columns: []engine.ResultColumn{{Table: "t", Column: "c", Cells: [][]byte{[]byte("v")}}}},
		},
	}
}

func TestBinResponseRoundTrip(t *testing.T) {
	for name, resp := range binResponseCases() {
		t.Run(name, func(t *testing.T) {
			raw := binEncode(t, func(s binSink) { encResponse(s, resp) })
			var d binReader
			d.reset(raw)
			got := new(response)
			aliases := decResponse(&d, got)
			if err := d.err(); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, resp) {
				t.Errorf("round trip:\n got %+v\nwant %+v", got, resp)
			}
			wantAliases := resp.Result != nil
			for i := range resp.Subs {
				if resp.Subs[i].Result != nil {
					wantAliases = true
				}
			}
			if aliases != wantAliases {
				t.Errorf("aliases = %v, want %v", aliases, wantAliases)
			}
		})
	}
}

// TestBinDecodeCorrupt feeds every truncation of valid messages, plus
// trailing garbage and length bombs, to the decoder: each must return
// errCorruptFrame-wrapped errors, never panic or succeed.
func TestBinDecodeCorrupt(t *testing.T) {
	req := binRequestCases()["point_select"]
	raw := binEncode(t, func(s binSink) { encRequest(s, req) })
	for n := 0; n < len(raw); n++ {
		var d binReader
		d.reset(raw[:n])
		got := new(request)
		var in intern
		decRequest(&d, got, &in)
		if d.err() == nil {
			t.Errorf("truncation at %d decoded cleanly", n)
		}
	}
	// Trailing garbage: the frame and message boundary must coincide.
	var d binReader
	d.reset(append(append([]byte{}, raw...), 0x00))
	got := new(request)
	var in intern
	decRequest(&d, got, &in)
	if d.err() == nil {
		t.Error("trailing garbage accepted")
	}
	// Length bomb: a huge count must fail the remaining-bytes bound, not
	// drive a huge allocation.
	bomb := []byte{byte(opSelect), 0, 0, 0, reqHasFilters, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}
	d.reset(bomb)
	resetRequest(got)
	decRequest(&d, got, &in)
	if d.err() == nil {
		t.Error("length bomb accepted")
	}
}

// TestMuxWriterV3Frames exercises the full frame path: sendRequest /
// sendResponse on a v3 writer, then readPooled + decode, covering both
// the binary codec and the gob fallback for control ops.
func TestMuxWriterV3Frames(t *testing.T) {
	var buf bytes.Buffer
	mw := newMuxWriter(&buf)
	mw.version = protoV3

	binReq := binRequestCases()["point_select"]
	gobReq := &request{Op: opQuote, Nonce: []byte{1, 2, 3}}
	if err := mw.sendRequest(7, binReq); err != nil {
		t.Fatal(err)
	}
	if err := mw.sendRequest(8, gobReq); err != nil {
		t.Fatal(err)
	}

	pfr := frameReader{r: &buf}
	var in intern
	for _, want := range []struct {
		id     uint64
		req    *request
		pooled bool
		codec  byte
	}{
		{7, binReq, true, codecBin},
		{8, gobReq, false, codecGob},
	} {
		id, fb, err := pfr.readPooled()
		if err != nil {
			t.Fatal(err)
		}
		if id != want.id {
			t.Fatalf("id = %d, want %d", id, want.id)
		}
		if fb.B[0] != want.codec {
			t.Fatalf("codec tag = %#x, want %#x", fb.B[0], want.codec)
		}
		req, pooled, err := decodeV3Request(fb, &in)
		if err != nil {
			t.Fatal(err)
		}
		if pooled != want.pooled {
			t.Errorf("pooled = %v, want %v", pooled, want.pooled)
		}
		if !reflect.DeepEqual(req.Query, want.req.Query) || req.Op != want.req.Op ||
			!bytes.Equal(req.Nonce, want.req.Nonce) {
			t.Errorf("decoded %+v, want %+v", req, want.req)
		}
		releaseRequest(req, fb, pooled)
	}

	// Response side, including the forced-gob path for quote responses.
	binResp := binResponseCases()["result"]
	gobResp := &response{Quote: enclave.Quote{Nonce: []byte{9}}}
	if err := mw.sendResponse(9, binResp, false); err != nil {
		t.Fatal(err)
	}
	if err := mw.sendResponse(10, gobResp, true); err != nil {
		t.Fatal(err)
	}
	id, fb, err := pfr.readPooled()
	if err != nil || id != 9 || fb.B[0] != codecBin {
		t.Fatalf("response frame: id=%d codec=%#x err=%v", id, fb.B[0], err)
	}
	var d binReader
	d.reset(fb.B[1:])
	got := new(response)
	if !decResponse(&d, got) {
		t.Error("result response did not report aliasing")
	}
	if err := d.err(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, binResp) {
		t.Errorf("response round trip:\n got %+v\nwant %+v", got, binResp)
	}
	id, fb2, err := pfr.readPooled()
	if err != nil || id != 10 || fb2.B[0] != codecGob {
		t.Fatalf("gob response frame: id=%d codec=%#x err=%v", id, fb2.B[0], err)
	}
}

func TestReqNeedsGob(t *testing.T) {
	cases := []struct {
		req  *request
		want bool
	}{
		{&request{Op: opSelect}, false},
		{&request{Op: opInsert}, false},
		{&request{Op: opQuote}, true},
		{&request{Op: opProvision}, true},
		{&request{Op: opImportColumn}, true},
		{&request{Op: opBatch, Subs: []request{{Op: opInsert}, {Op: opRows}}}, false},
		{&request{Op: opBatch, Subs: []request{{Op: opInsert}, {Op: opImportColumn}}}, true},
	}
	for _, c := range cases {
		if got := reqNeedsGob(c.req); got != c.want {
			t.Errorf("reqNeedsGob(%v) = %v, want %v", c.req.Op, got, c.want)
		}
	}
}

// TestInternBounded verifies the per-connection string cache stops growing
// at its cap but keeps answering correctly, so a peer inventing identifiers
// cannot grow server memory.
func TestInternBounded(t *testing.T) {
	var in intern
	for i := 0; i < 2*internLimit; i++ {
		s := fmt.Sprintf("col%d", i)
		if got := in.get([]byte(s)); got != s {
			t.Fatalf("get(%q) = %q", s, got)
		}
	}
	if len(in.m) > internLimit {
		t.Errorf("intern map grew to %d entries, cap is %d", len(in.m), internLimit)
	}
	if got := in.get([]byte("col1")); got != "col1" {
		t.Errorf("cached lookup = %q", got)
	}
	if got := in.get(nil); got != "" {
		t.Errorf("get(nil) = %q", got)
	}
}
