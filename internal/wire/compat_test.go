package wire

import (
	"context"
	"fmt"
	"io"
	"testing"

	"github.com/encdbdb/encdbdb/internal/engine"
)

// TestProtocolCompatMatrix pins cross-version interoperability: every
// client protocol ceiling against every server protocol ceiling must
// negotiate, answer queries, and stream results identically. This is the
// guarantee that lets a fleet upgrade proxies and providers independently.
func TestProtocolCompatMatrix(t *testing.T) {
	for sp := 1; sp <= 3; sp++ {
		for cp := 1; cp <= 3; cp++ {
			t.Run(fmt.Sprintf("server_v%d_client_v%d", sp, cp), func(t *testing.T) {
				t.Parallel()
				_, addr := startPlainServer(t, WithServerMaxProto(sp))
				c, err := Dial(addr, WithMaxProto(cp))
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()

				wantMux := sp >= 2 && cp >= 2
				if c.Multiplexed() != wantMux {
					t.Fatalf("Multiplexed() = %v, want %v for server v%d / client v%d",
						c.Multiplexed(), wantMux, sp, cp)
				}

				ctx := context.Background()
				const table = "compat"
				if err := c.CreateTable(plainSchema(table)); err != nil {
					t.Fatal(err)
				}
				want := map[string]bool{}
				for i := 0; i < 3; i++ {
					v := fmt.Sprintf("v%d", i)
					want[v] = true
					if err := c.Insert(ctx, table, engine.Row{"c": []byte(v)}); err != nil {
						t.Fatal(err)
					}
				}
				n, err := c.Rows(table)
				if err != nil || n != 3 {
					t.Fatalf("Rows = %d, %v", n, err)
				}

				res, err := c.Select(ctx, engine.Query{Table: table})
				if err != nil {
					t.Fatal(err)
				}
				if res.Count != 3 || len(res.Columns) != 1 || len(res.Columns[0].Cells) != 3 {
					t.Fatalf("Select result = %+v", res)
				}
				for _, cell := range res.Columns[0].Cells {
					if !want[string(cell)] {
						t.Fatalf("unexpected cell %q", cell)
					}
				}

				// Streaming must answer on every combination — natively on
				// multiplexed links, via the materialized fallback on v1.
				st, err := c.SelectStream(ctx, engine.Query{Table: table})
				if err != nil {
					t.Fatal(err)
				}
				got := 0
				for {
					chunk, err := st.Next()
					if err == io.EOF {
						break
					}
					if err != nil {
						t.Fatal(err)
					}
					for _, col := range chunk.Columns {
						for _, cell := range col.Cells {
							if !want[string(cell)] {
								t.Fatalf("unexpected streamed cell %q", cell)
							}
							got++
						}
					}
				}
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}
				if got != 3 {
					t.Fatalf("streamed %d cells, want 3", got)
				}
			})
		}
	}
}
