// Package wire implements the network protocol between the trusted side
// (data owner, proxy) and the untrusted DBaaS provider (paper Fig. 2): a
// length-prefixed gob protocol over TCP.
//
// Two protocol versions coexist. Version 1 is strict lock-step: one
// request/response round trip at a time per connection, every frame a
// self-contained gob document. Version 2 is multiplexed: every request
// carries a connection-unique ID, so a client keeps many calls in flight
// over one connection and the server answers them out of order as its
// per-request workers finish; the frame payloads of each direction form
// one continuous gob stream, so type descriptors and reflection setup are
// paid once per connection instead of per message (~40x less codec CPU
// per call). The version is negotiated on the first bytes of a connection
// (see helloMagic); v1 peers on either side keep working against v2 peers.
//
// The multiplexed server applies admission control per connection: a
// bounded dispatch queue (WithQueueDepth) sheds excess requests
// immediately with ErrServerBusy instead of queueing them, an optional
// per-request deadline (WithRequestTimeout) bounds how long an admitted
// request may run — queue wait included — and Close drains: accepted
// requests finish and their responses are delivered before connections
// close. With WithMetrics the server additionally exports per-op
// request/error/latency families plus connection, byte, and
// admission-outcome counters on a metrics.Registry.
//
// The protocol carries only what the paper's attacker may see anyway:
// attestation quotes, sealed keys, schemas, PAE-encrypted query ranges,
// ciphertext cells and plaintext ValueID structures. EncDBDB's protocol
// "runs in one round and only encrypts the values in the query" (paper
// §6.3); every operation here is likewise a single request/response
// round trip — multiplexing changes how many rounds share a connection,
// not what any single round reveals.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// maxFrame caps a frame at 1 GiB to bound allocations from a malicious or
// corrupted peer.
const maxFrame = 1 << 30

// ErrFrameTooLarge is returned when a peer announces an oversized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// Protocol versions.
const (
	protoV1 = 1 // lock-step: unframed IDs, one round trip at a time
	protoV2 = 2 // multiplexed: 8-byte request IDs, out-of-order responses
)

// helloMagic opens version negotiation: a v2 peer sends these four bytes
// plus a version byte before its first frame. The bytes are chosen so that,
// read as a big-endian v1 length prefix (0x45444232 ≈ 1.08 GiB), they
// exceed maxFrame — a v1 server rejects the "frame" and drops the
// connection instead of misparsing the stream, and the v2 client falls back
// to lock-step on redial.
var helloMagic = [4]byte{'E', 'D', 'B', '2'}

// writeHello sends the negotiation magic and a version byte.
func writeHello(w io.Writer, version byte) error {
	var h [5]byte
	copy(h[:], helloMagic[:])
	h[4] = version
	_, err := w.Write(h[:])
	return err
}

// readHello consumes the peer's negotiation reply.
func readHello(r io.Reader) (byte, error) {
	var h [5]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, err
	}
	if [4]byte(h[:4]) != helloMagic {
		return 0, errors.New("wire: bad negotiation magic")
	}
	return h[4], nil
}

// op identifies a request type.
type op uint8

const (
	opQuote op = iota + 1
	opProvision
	opSchema
	opCreateTable
	opDropTable
	opSelect
	opInsert
	opDelete
	opUpdate
	opMerge
	opImportColumn
	opTables
	opRows
	opStorageBytes
	opBatch // carries N sub-requests executed server-side in one round trip
	// Appended after v2 shipped; peers that predate them answer with
	// "unknown op" rather than misparsing, since op values are stable.
	opMergeAsync
	opMergeStatus
	// Appended for the context-aware query API: opSelectStream answers with
	// chunked result frames (response.More marks non-final chunks) under the
	// request's ID; opCancel asks the server to cancel the in-flight request
	// named by request.Cancel. Both degrade gracefully against v2 peers that
	// predate them: the client falls back to a materialized Select when
	// opSelectStream is unknown, and an unknown-op reply to opCancel is
	// ignored (cancellation is advisory).
	opSelectStream
	opCancel
)

// writeFrame writes one v1 length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one v1 length-prefixed payload into a fresh slice.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: short frame: %w", err)
	}
	return payload, nil
}

// writeFrameMux writes one v2 frame: payload length, request ID, payload.
func writeFrameMux(w io.Writer, id uint64, payload []byte) error {
	if len(payload) > maxFrame {
		return ErrFrameTooLarge
	}
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(hdr[4:], id)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// bufRetainLimit caps the payload buffer a frameReader keeps between frames:
// one oversized bulk frame must not pin its allocation for the rest of the
// connection.
const bufRetainLimit = 1 << 20

// frameReader reads length-prefixed frames into a reusable per-connection
// buffer, cutting steady-state allocations on the hot receive loops. The
// returned payload aliases the internal buffer and is valid only until the
// next read; callers decode it before reading again.
type frameReader struct {
	r   io.Reader
	buf []byte
}

// payload reads n body bytes after a frame header has been consumed.
func (fr *frameReader) payload(n uint32) ([]byte, error) {
	if n > maxFrame {
		return nil, ErrFrameTooLarge
	}
	if int64(n) > int64(cap(fr.buf)) ||
		(cap(fr.buf) > bufRetainLimit && n <= bufRetainLimit) {
		fr.buf = make([]byte, max(int(n), 512))
	}
	p := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, p); err != nil {
		return nil, fmt.Errorf("wire: short frame: %w", err)
	}
	return p, nil
}

// read reads one v1 frame.
func (fr *frameReader) read() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return nil, err
	}
	return fr.payload(binary.BigEndian.Uint32(hdr[:]))
}

// readMux reads one v2 frame, returning its request ID and payload.
func (fr *frameReader) readMux() (uint64, []byte, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(fr.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	id := binary.BigEndian.Uint64(hdr[4:])
	p, err := fr.payload(binary.BigEndian.Uint32(hdr[:4]))
	return id, p, err
}

// muxWriter is one direction of a v2 connection: messages are encoded on a
// persistent gob stream (type descriptors transmitted once), framed with
// their request ID, and written under a mutex. Bursts coalesce: a writer
// flushes the buffered stream only when no other writer is queued behind
// it (group commit), so N concurrent in-flight requests cost far fewer
// than N syscalls.
type muxWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	scratch bytes.Buffer
	enc     *gob.Encoder
	waiters atomic.Int32
	broken  bool
}

func newMuxWriter(w io.Writer) *muxWriter {
	mw := &muxWriter{bw: bufio.NewWriter(w)}
	mw.enc = gob.NewEncoder(&mw.scratch)
	return mw
}

// send encodes v on the stream and writes it as one frame tagged with id.
func (mw *muxWriter) send(id uint64, v any) error {
	mw.waiters.Add(1)
	mw.mu.Lock()
	defer mw.mu.Unlock()
	mw.waiters.Add(-1)
	if mw.broken {
		return errors.New("wire: connection encoder broken")
	}
	mw.scratch.Reset()
	if err := mw.enc.Encode(v); err != nil {
		// The encoder's transmitted-type state may now disagree with what
		// reached the peer; nothing further can be sent safely.
		mw.broken = true
		return err
	}
	err := writeFrameMux(mw.bw, id, mw.scratch.Bytes())
	if mw.scratch.Cap() > bufRetainLimit {
		// One oversized message must not pin its buffer forever.
		mw.scratch = bytes.Buffer{}
	}
	if err != nil {
		mw.broken = true
		return err
	}
	if mw.waiters.Load() > 0 {
		// The writer queued behind us flushes for the whole group; the
		// chain always terminates at a writer that observes zero waiters.
		return nil
	}
	return mw.bw.Flush()
}

// muxReader is the receive direction of a v2 connection: it decodes the
// persistent gob stream message by message, reporting the request ID of
// the frame each message arrived in. It implements io.ByteReader so the
// gob decoder does not wrap it in a read-ahead buffer that would pull
// frames (and their IDs) early.
type muxReader struct {
	fr      frameReader
	dec     *gob.Decoder
	id      uint64
	payload []byte
}

func newMuxReader(r io.Reader) *muxReader {
	mr := &muxReader{fr: frameReader{r: r}}
	mr.dec = gob.NewDecoder(mr)
	return mr
}

// next decodes one message, returning the ID of the frame that carried it.
// Every message must align exactly with one frame.
func (mr *muxReader) next(v any) (uint64, error) {
	if err := mr.dec.Decode(v); err != nil {
		return 0, err
	}
	if len(mr.payload) != 0 {
		return 0, errors.New("wire: frame and message boundaries diverged")
	}
	return mr.id, nil
}

// Read serves the current frame's payload, pulling the next frame when
// exhausted.
func (mr *muxReader) Read(p []byte) (int, error) {
	if len(mr.payload) == 0 {
		if err := mr.nextFrame(); err != nil {
			return 0, err
		}
	}
	n := copy(p, mr.payload)
	mr.payload = mr.payload[n:]
	return n, nil
}

// ReadByte is Read for single bytes (gob's hot path for lengths and tags).
func (mr *muxReader) ReadByte() (byte, error) {
	if len(mr.payload) == 0 {
		if err := mr.nextFrame(); err != nil {
			return 0, err
		}
	}
	b := mr.payload[0]
	mr.payload = mr.payload[1:]
	return b, nil
}

func (mr *muxReader) nextFrame() error {
	id, payload, err := mr.fr.readMux()
	if err != nil {
		return err
	}
	mr.id = id
	mr.payload = payload
	return nil
}
