// Package wire implements the network protocol between the trusted side
// (data owner, proxy) and the untrusted DBaaS provider (paper Fig. 2): a
// length-prefixed binary protocol over TCP.
//
// Three protocol versions coexist. Version 1 is strict lock-step: one
// request/response round trip at a time per connection, every frame a
// self-contained gob document. Version 2 is multiplexed: every request
// carries a connection-unique ID, so a client keeps many calls in flight
// over one connection and the server answers them out of order as its
// per-request workers finish; the frame payloads of each direction form
// one continuous gob stream, so type descriptors and reflection setup are
// paid once per connection instead of per message (~40x less codec CPU
// per call). Version 3 keeps v2's framing and concurrency model but
// replaces gob on the data plane with the hand-rolled binary codec in
// codec.go: frames encode directly into the connection's buffered writer,
// decode with zero reflection into pooled objects whose byte fields alias
// pooled frame buffers (internal/bufpool), and rare control ops fall back
// to self-contained gob documents behind a per-frame codec tag. The
// version is negotiated on the first bytes of a connection (see
// helloMagic); every older peer keeps working against every newer one.
//
// The multiplexed server applies admission control per connection: a
// bounded dispatch queue (WithQueueDepth) sheds excess requests
// immediately with ErrServerBusy instead of queueing them, an optional
// per-request deadline (WithRequestTimeout) bounds how long an admitted
// request may run — queue wait included — and Close drains: accepted
// requests finish and their responses are delivered before connections
// close. With WithMetrics the server additionally exports per-op
// request/error/latency families plus connection, byte, and
// admission-outcome counters on a metrics.Registry.
//
// The protocol carries only what the paper's attacker may see anyway:
// attestation quotes, sealed keys, schemas, PAE-encrypted query ranges,
// ciphertext cells and plaintext ValueID structures. EncDBDB's protocol
// "runs in one round and only encrypts the values in the query" (paper
// §6.3); every operation here is likewise a single request/response
// round trip — multiplexing changes how many rounds share a connection,
// not what any single round reveals.
package wire

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"github.com/encdbdb/encdbdb/internal/bufpool"
)

// maxFrame caps a frame at 1 GiB to bound allocations from a malicious or
// corrupted peer.
const maxFrame = 1 << 30

// ErrFrameTooLarge is returned when a peer announces an oversized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// Protocol versions.
const (
	protoV1 = 1 // lock-step: unframed IDs, one round trip at a time
	protoV2 = 2 // multiplexed: 8-byte request IDs, out-of-order responses
	protoV3 = 3 // multiplexed with the binary codec (see codec.go)
)

// helloMagic opens version negotiation: a v2 peer sends these four bytes
// plus a version byte before its first frame. The bytes are chosen so that,
// read as a big-endian v1 length prefix (0x45444232 ≈ 1.08 GiB), they
// exceed maxFrame — a v1 server rejects the "frame" and drops the
// connection instead of misparsing the stream, and the v2 client falls back
// to lock-step on redial.
var helloMagic = [4]byte{'E', 'D', 'B', '2'}

// writeHello sends the negotiation magic and a version byte.
func writeHello(w io.Writer, version byte) error {
	var h [5]byte
	copy(h[:], helloMagic[:])
	h[4] = version
	_, err := w.Write(h[:])
	return err
}

// readHello consumes the peer's negotiation reply.
func readHello(r io.Reader) (byte, error) {
	var h [5]byte
	if _, err := io.ReadFull(r, h[:]); err != nil {
		return 0, err
	}
	if [4]byte(h[:4]) != helloMagic {
		return 0, errors.New("wire: bad negotiation magic")
	}
	return h[4], nil
}

// op identifies a request type.
type op uint8

const (
	opQuote op = iota + 1
	opProvision
	opSchema
	opCreateTable
	opDropTable
	opSelect
	opInsert
	opDelete
	opUpdate
	opMerge
	opImportColumn
	opTables
	opRows
	opStorageBytes
	opBatch // carries N sub-requests executed server-side in one round trip
	// Appended after v2 shipped; peers that predate them answer with
	// "unknown op" rather than misparsing, since op values are stable.
	opMergeAsync
	opMergeStatus
	// Appended for the context-aware query API: opSelectStream answers with
	// chunked result frames (response.More marks non-final chunks) under the
	// request's ID; opCancel asks the server to cancel the in-flight request
	// named by request.Cancel. Both degrade gracefully against v2 peers that
	// predate them: the client falls back to a materialized Select when
	// opSelectStream is unknown, and an unknown-op reply to opCancel is
	// ignored (cancellation is advisory).
	opSelectStream
	opCancel
)

// writeFrame writes one v1 length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// bufRetainLimit caps the payload buffer a frameReader keeps between frames:
// one oversized bulk frame must not pin its allocation for the rest of the
// connection. It matches bufpool's largest size class, so any buffer beyond
// it came from a direct allocation the pool will not retain either.
const bufRetainLimit = 1 << 20

// frameReader reads length-prefixed frames into a reusable per-connection
// buffer drawn from the frame pool, cutting steady-state allocations on the
// hot receive loops. The returned payload aliases the internal buffer and is
// valid only until the next read; callers decode it before reading again,
// and release() returns the buffer to the pool when the connection ends.
type frameReader struct {
	r   io.Reader
	buf *bufpool.Buf
	// hdr is the frame-header scratch. A stack array would escape into the
	// reader's ReadFull call and cost one allocation per frame; a field
	// escapes once with the frameReader.
	hdr [12]byte
}

// payload reads n body bytes after a frame header has been consumed.
func (fr *frameReader) payload(n uint32) ([]byte, error) {
	if n > maxFrame {
		return nil, ErrFrameTooLarge
	}
	if fr.buf == nil || int64(n) > int64(cap(fr.buf.B)) ||
		(cap(fr.buf.B) > bufRetainLimit && n <= bufRetainLimit) {
		bufpool.Put(fr.buf)
		fr.buf = bufpool.Get(max(int(n), 512))
	}
	p := fr.buf.B[:n]
	if _, err := io.ReadFull(fr.r, p); err != nil {
		return nil, fmt.Errorf("wire: short frame: %w", err)
	}
	return p, nil
}

// release returns the retained buffer to the frame pool. The frameReader is
// reusable afterwards; the next read draws a fresh buffer.
func (fr *frameReader) release() {
	bufpool.Put(fr.buf)
	fr.buf = nil
}

// readPooled reads one multiplexed frame into a buffer drawn fresh from the
// frame pool. Unlike read/readMux, ownership of the buffer transfers to the
// caller, who must bufpool.Put it once nothing references the payload — the
// v3 read loops use this so a decoded request can keep aliasing its frame
// while later frames are already being read.
func (fr *frameReader) readPooled() (uint64, *bufpool.Buf, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(fr.hdr[:4])
	id := binary.BigEndian.Uint64(fr.hdr[4:])
	if n > maxFrame {
		return 0, nil, ErrFrameTooLarge
	}
	buf := bufpool.Get(int(n))
	if _, err := io.ReadFull(fr.r, buf.B); err != nil {
		bufpool.Put(buf)
		return 0, nil, fmt.Errorf("wire: short frame: %w", err)
	}
	return id, buf, nil
}

// read reads one v1 frame.
func (fr *frameReader) read() ([]byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:4]); err != nil {
		return nil, err
	}
	return fr.payload(binary.BigEndian.Uint32(fr.hdr[:4]))
}

// readMux reads one v2 frame, returning its request ID and payload.
func (fr *frameReader) readMux() (uint64, []byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		return 0, nil, err
	}
	id := binary.BigEndian.Uint64(fr.hdr[4:])
	p, err := fr.payload(binary.BigEndian.Uint32(fr.hdr[:4]))
	return id, p, err
}

// errWriterBroken poisons a connection whose outbound stream can no longer
// be trusted: a partial frame, an encoder failure, or a size divergence.
var errWriterBroken = errors.New("wire: connection encoder broken")

// muxWriter is one direction of a v2/v3 connection: messages are framed
// with their request ID and written under a mutex. On v2 the payloads form
// a persistent gob stream (type descriptors transmitted once); on v3 the
// binary codec encodes straight into the buffered writer with no scratch
// copy — each message is sized by a counting pass first, so the frame
// header can be written before the payload. Bursts coalesce either way: a
// writer flushes the buffered stream only when no other writer is queued
// behind it (group commit), so N concurrent in-flight requests cost far
// fewer than N syscalls.
type muxWriter struct {
	version byte // negotiated protocol version (protoV2 or protoV3)

	mu      sync.Mutex
	bw      *bufio.Writer
	scratch bytes.Buffer
	enc     *gob.Encoder
	counter binCounter
	wr      binWriter
	hdr     [12]byte // frame-header scratch; see frameReader.hdr
	waiters atomic.Int32
	broken  bool
}

func newMuxWriter(w io.Writer) *muxWriter {
	mw := &muxWriter{version: protoV2, bw: bufio.NewWriter(w)}
	mw.enc = gob.NewEncoder(&mw.scratch)
	return mw
}

// lock acquires the write lock, registering as a waiter so the holder skips
// its flush (group commit). It fails without blocking future writers when
// the stream is already broken.
func (mw *muxWriter) lock() error {
	mw.waiters.Add(1)
	mw.mu.Lock()
	mw.waiters.Add(-1)
	if mw.broken {
		mw.mu.Unlock()
		return errWriterBroken
	}
	return nil
}

// unlockFlush completes a send made under lock: a failed send poisons the
// stream, a successful one flushes unless another writer is queued behind
// it (that writer flushes for the whole group; the chain always terminates
// at a writer that observes zero waiters).
func (mw *muxWriter) unlockFlush(err error) error {
	defer mw.mu.Unlock()
	if err != nil {
		mw.broken = true
		return err
	}
	if mw.waiters.Load() > 0 {
		return nil
	}
	return mw.bw.Flush()
}

// writeFrameLocked frames scratch's payload under mw's header scratch —
// writeFrameMux without the per-frame header allocation. Callers hold mw.mu.
func (mw *muxWriter) writeFrameLocked(id uint64, payload []byte) error {
	if len(payload) > maxFrame {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(mw.hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint64(mw.hdr[4:], id)
	if _, err := mw.bw.Write(mw.hdr[:]); err != nil {
		return err
	}
	_, err := mw.bw.Write(payload)
	return err
}

// send encodes v on the persistent gob stream and writes it as one frame
// tagged with id — the v2 path.
func (mw *muxWriter) send(id uint64, v any) error {
	if err := mw.lock(); err != nil {
		return err
	}
	mw.scratch.Reset()
	err := mw.enc.Encode(v)
	if err == nil {
		err = mw.writeFrameLocked(id, mw.scratch.Bytes())
	}
	if mw.scratch.Cap() > bufRetainLimit {
		// One oversized message must not pin its buffer forever.
		mw.scratch = bytes.Buffer{}
	}
	return mw.unlockFlush(err)
}

// sendRequest encodes req with the connection's negotiated codec: the v2
// gob stream, the v3 binary codec, or — for control ops carrying types the
// binary codec does not encode — a self-contained gob document behind the
// v3 codec tag.
func (mw *muxWriter) sendRequest(id uint64, req *request) error {
	if mw.version < protoV3 {
		return mw.send(id, req)
	}
	if reqNeedsGob(req) {
		return mw.sendGobV3(id, req)
	}
	return mw.sendRequestV3(id, req)
}

// sendResponse is sendRequest's response-side counterpart. forceGob routes
// the response through the gob codec on v3 connections — responses to the
// control ops carry enclave types (quotes) only gob encodes.
func (mw *muxWriter) sendResponse(id uint64, resp *response, forceGob bool) error {
	if mw.version < protoV3 {
		return mw.send(id, resp)
	}
	if forceGob {
		return mw.sendGobV3(id, resp)
	}
	return mw.sendResponseV3(id, resp)
}

// beginBinLocked writes the frame header for the message just sized by
// mw.counter and arms mw.wr to emit it. Callers hold mw.mu.
func (mw *muxWriter) beginBinLocked(id uint64) error {
	n := mw.counter.n
	if n > maxFrame {
		return ErrFrameTooLarge
	}
	binary.BigEndian.PutUint32(mw.hdr[:4], uint32(n))
	binary.BigEndian.PutUint64(mw.hdr[4:], id)
	if _, err := mw.bw.Write(mw.hdr[:]); err != nil {
		return err
	}
	mw.wr.reset(mw.bw)
	mw.wr.byte(codecBin)
	return nil
}

// endBinLocked verifies the emit pass produced exactly the bytes the sizing
// pass announced. A divergence means the encoder is buggy; the frame header
// on the wire is now a lie, so the caller poisons the connection.
func (mw *muxWriter) endBinLocked() error {
	if err := mw.wr.err(); err != nil {
		return err
	}
	if mw.wr.n != mw.counter.n {
		return fmt.Errorf("wire: binary encoder divergence: sized %d bytes, wrote %d", mw.counter.n, mw.wr.n)
	}
	return nil
}

// sendRequestV3 writes one binary-coded request frame: sized by a counting
// pass, then emitted directly into the buffered writer.
func (mw *muxWriter) sendRequestV3(id uint64, req *request) error {
	if err := mw.lock(); err != nil {
		return err
	}
	mw.counter.reset()
	mw.counter.byte(codecBin)
	encRequest(&mw.counter, req)
	err := mw.beginBinLocked(id)
	if err == nil {
		encRequest(&mw.wr, req)
		err = mw.endBinLocked()
	}
	return mw.unlockFlush(err)
}

// sendResponseV3 writes one binary-coded response frame.
func (mw *muxWriter) sendResponseV3(id uint64, resp *response) error {
	if err := mw.lock(); err != nil {
		return err
	}
	mw.counter.reset()
	mw.counter.byte(codecBin)
	encResponse(&mw.counter, resp)
	err := mw.beginBinLocked(id)
	if err == nil {
		encResponse(&mw.wr, resp)
		err = mw.endBinLocked()
	}
	return mw.unlockFlush(err)
}

// sendGobV3 writes one self-contained gob document behind the v3 codec tag
// — the path for the rare control ops. Unlike v2's persistent stream, each
// document carries its own type descriptors, so the receiver can decode it
// with a throwaway decoder.
func (mw *muxWriter) sendGobV3(id uint64, v any) error {
	if err := mw.lock(); err != nil {
		return err
	}
	mw.scratch.Reset()
	mw.scratch.WriteByte(codecGob)
	err := gob.NewEncoder(&mw.scratch).Encode(v)
	if err == nil {
		err = mw.writeFrameLocked(id, mw.scratch.Bytes())
	}
	if mw.scratch.Cap() > bufRetainLimit {
		mw.scratch = bytes.Buffer{}
	}
	return mw.unlockFlush(err)
}

// muxReader is the receive direction of a v2 connection: it decodes the
// persistent gob stream message by message, reporting the request ID of
// the frame each message arrived in. It implements io.ByteReader so the
// gob decoder does not wrap it in a read-ahead buffer that would pull
// frames (and their IDs) early.
type muxReader struct {
	fr      frameReader
	dec     *gob.Decoder
	id      uint64
	payload []byte
}

func newMuxReader(r io.Reader) *muxReader {
	mr := &muxReader{fr: frameReader{r: r}}
	mr.dec = gob.NewDecoder(mr)
	return mr
}

// next decodes one message, returning the ID of the frame that carried it.
// Every message must align exactly with one frame.
func (mr *muxReader) next(v any) (uint64, error) {
	if err := mr.dec.Decode(v); err != nil {
		return 0, err
	}
	if len(mr.payload) != 0 {
		return 0, errors.New("wire: frame and message boundaries diverged")
	}
	return mr.id, nil
}

// Read serves the current frame's payload, pulling the next frame when
// exhausted.
func (mr *muxReader) Read(p []byte) (int, error) {
	if len(mr.payload) == 0 {
		if err := mr.nextFrame(); err != nil {
			return 0, err
		}
	}
	n := copy(p, mr.payload)
	mr.payload = mr.payload[n:]
	return n, nil
}

// ReadByte is Read for single bytes (gob's hot path for lengths and tags).
func (mr *muxReader) ReadByte() (byte, error) {
	if len(mr.payload) == 0 {
		if err := mr.nextFrame(); err != nil {
			return 0, err
		}
	}
	b := mr.payload[0]
	mr.payload = mr.payload[1:]
	return b, nil
}

func (mr *muxReader) nextFrame() error {
	id, payload, err := mr.fr.readMux()
	if err != nil {
		return err
	}
	mr.id = id
	mr.payload = payload
	return nil
}
