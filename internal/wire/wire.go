// Package wire implements the network protocol between the trusted side
// (data owner, proxy) and the untrusted DBaaS provider (paper Fig. 2): a
// length-prefixed gob protocol over TCP.
//
// The protocol carries only what the paper's attacker may see anyway:
// attestation quotes, sealed keys, schemas, PAE-encrypted query ranges,
// ciphertext cells and plaintext ValueID structures. EncDBDB's protocol
// "runs in one round and only encrypts the values in the query" (paper
// §6.3); every operation here is likewise a single request/response
// round trip.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// maxFrame caps a frame at 1 GiB to bound allocations from a malicious or
// corrupted peer.
const maxFrame = 1 << 30

// ErrFrameTooLarge is returned when a peer announces an oversized frame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// op identifies a request type.
type op uint8

const (
	opQuote op = iota + 1
	opProvision
	opSchema
	opCreateTable
	opDropTable
	opSelect
	opInsert
	opDelete
	opUpdate
	opMerge
	opImportColumn
	opTables
	opRows
	opStorageBytes
)

// writeFrame writes one length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: short frame: %w", err)
	}
	return payload, nil
}
