package wire

import (
	"bufio"
	"bytes"
	"io"
	"testing"

	"github.com/encdbdb/encdbdb/internal/bufpool"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/engine"
)

// measureAllocs asserts a steady-state allocation budget for f. The budgets
// are regression tripwires for the zero-alloc wire hot path: raising one
// needs the same scrutiny as a perf regression.
func measureAllocs(t *testing.T, budget float64, f func()) {
	t.Helper()
	if got := testing.AllocsPerRun(200, f); got > budget {
		t.Errorf("allocs/op = %g, budget %g", got, budget)
	}
}

// v3Frame renders one multiplexed frame (header + codec-tagged payload) the
// way a v3 peer would put it on the wire.
func v3Frame(t *testing.T, id uint64, req *request) []byte {
	t.Helper()
	var buf bytes.Buffer
	mw := newMuxWriter(&buf)
	mw.version = protoV3
	if err := mw.sendRequest(id, req); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func allocSelectReq() *request {
	return &request{
		Op:    opSelect,
		Table: "accounts",
		Query: engine.Query{
			Table: "accounts",
			Filters: []engine.Filter{{
				Column: "balance",
				Ranges: []enclave.EncRange{{Start: []byte{1, 2, 3, 4}, End: []byte{5, 6, 7, 8}, StartIncl: true, EndIncl: true}},
			}},
			Project: []string{"balance"},
		},
	}
}

func allocInsertReq() *request {
	return &request{Op: opInsert, Table: "accounts", Row: engine.Row{"balance": []byte("12345678")}}
}

// TestAllocBudgets pins the allocation cost of every layer of the wire hot
// path. The server-side paths (frame read, v3 decode, v3 encode, pooled
// envelopes) must be allocation-free in steady state; the client-side
// response decode gets a small explicit budget because results are handed
// to the caller and cannot be pooled.
func TestAllocBudgets(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation budgets do not hold under the race detector")
	}

	t.Run("bufpool_get_put", func(t *testing.T) {
		measureAllocs(t, 0, func() {
			bufpool.Put(bufpool.Get(4096))
		})
	})

	payload := make([]byte, 128)
	t.Run("frame_write_v1", func(t *testing.T) {
		// The 4-byte header escapes into the conn's Write call; the v1
		// protocol pays a self-contained gob document per frame anyway, so
		// the header is noise there. The multiplexed writers use pooled
		// header scratch (writeFrameLocked, beginBinLocked) and are held to
		// zero by the encode subtests below.
		bw := bufio.NewWriterSize(io.Discard, 1<<16)
		measureAllocs(t, 1, func() {
			if err := writeFrame(bw, payload); err != nil {
				t.Fatal(err)
			}
		})
	})

	t.Run("frame_read_v1", func(t *testing.T) {
		var raw bytes.Buffer
		if err := writeFrame(&raw, payload); err != nil {
			t.Fatal(err)
		}
		r := bytes.NewReader(raw.Bytes())
		fr := &frameReader{r: r}
		defer fr.release()
		measureAllocs(t, 0, func() {
			r.Reset(raw.Bytes())
			if _, err := fr.read(); err != nil {
				t.Fatal(err)
			}
		})
	})

	t.Run("frame_read_pooled", func(t *testing.T) {
		frame := v3Frame(t, 42, allocSelectReq())
		r := bytes.NewReader(frame)
		fr := &frameReader{r: r}
		measureAllocs(t, 0, func() {
			r.Reset(frame)
			_, fb, err := fr.readPooled()
			if err != nil {
				t.Fatal(err)
			}
			bufpool.Put(fb)
		})
	})

	t.Run("encode_request_v3", func(t *testing.T) {
		mw := newMuxWriter(io.Discard)
		mw.version = protoV3
		req := allocSelectReq()
		measureAllocs(t, 0, func() {
			if err := mw.sendRequestV3(1, req); err != nil {
				t.Fatal(err)
			}
		})
	})

	t.Run("encode_response_v3", func(t *testing.T) {
		mw := newMuxWriter(io.Discard)
		mw.version = protoV3
		resp := &response{
			N: 1,
			Result: &engine.Result{
				Count:     1,
				RecordIDs: []uint32{7},
				Columns:   []engine.ResultColumn{{Table: "accounts", Column: "balance", Cells: [][]byte{[]byte("12345678")}}},
			},
		}
		measureAllocs(t, 0, func() {
			if err := mw.sendResponseV3(1, resp); err != nil {
				t.Fatal(err)
			}
		})
	})

	// The acceptance budget: the server's whole frame cycle for the hot
	// data-plane ops — read the frame, decode into a pooled envelope,
	// encode the pooled response, release everything — allocates nothing
	// in steady state.
	for _, c := range []struct {
		name string
		req  *request
	}{
		{"serve_frame_select", allocSelectReq()},
		{"serve_frame_insert", allocInsertReq()},
	} {
		t.Run(c.name, func(t *testing.T) {
			frame := v3Frame(t, 42, c.req)
			r := bytes.NewReader(frame)
			fr := &frameReader{r: r}
			mw := newMuxWriter(io.Discard)
			mw.version = protoV3
			var in intern
			measureAllocs(t, 0, func() {
				r.Reset(frame)
				id, fb, err := fr.readPooled()
				if err != nil {
					t.Fatal(err)
				}
				req, pooled, err := decodeV3Request(fb, &in)
				if err != nil {
					t.Fatal(err)
				}
				resp := respPool.Get().(*response)
				resp.N = 1
				if err := mw.sendResponseV3(id, resp); err != nil {
					t.Fatal(err)
				}
				resetResponse(resp)
				respPool.Put(resp)
				releaseRequest(req, fb, pooled)
			})
		})
	}

	t.Run("decode_response_v3", func(t *testing.T) {
		resp := &response{
			N: 1,
			Result: &engine.Result{
				Count:     1,
				RecordIDs: []uint32{7},
				Columns:   []engine.ResultColumn{{Table: "accounts", Column: "balance", Cells: [][]byte{[]byte("12345678")}}},
			},
		}
		raw := binEncode(t, func(s binSink) { encResponse(s, resp) })
		// The decoded result is handed to the caller, so its backbone
		// (Result struct, ID/column/cell slices, two name strings) is
		// allocated fresh; the cells themselves alias the frame.
		measureAllocs(t, 7, func() {
			var d binReader
			d.reset(raw)
			got := new(response)
			decResponse(&d, got)
			if err := d.err(); err != nil {
				t.Fatal(err)
			}
		})
	})
}
