package wire

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestBusyRetrySucceeds pins the WithBusyRetry contract: a call shed with
// ErrServerBusy is retried after backoff, and succeeds once the saturation
// clears — the caller never sees the transient rejection.
func TestBusyRetrySucceeds(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	srv, addr := startAdmissionServer(t, func(req *request) {
		if req.Op == opRows {
			entered <- struct{}{}
			<-release
		}
	}, WithConnWorkers(1), WithQueueDepth(1), WithDrainTimeout(time.Second))
	var once sync.Once
	unpark := func() { once.Do(func() { close(release) }) }
	t.Cleanup(func() {
		unpark()
		srv.Close()
	})
	c, err := Dial(addr, WithBusyRetry(8, 10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable(plainSchema("retry")); err != nil {
		t.Fatal(err)
	}
	// Park a request in the only queue slot, saturating admission.
	parked := make(chan error, 1)
	go func() {
		_, err := c.Rows("retry")
		parked <- err
	}()
	<-entered
	// Clear the saturation while the second call is mid-backoff: one of its
	// retries must then be admitted.
	go func() {
		time.Sleep(25 * time.Millisecond)
		unpark()
	}()
	if _, err := c.Rows("retry"); err != nil {
		t.Fatalf("retried call: %v, want success after saturation cleared", err)
	}
	if err := <-parked; err != nil {
		t.Fatalf("parked request: %v", err)
	}
}

// TestBusyRetryExhausted: when the server stays saturated through every
// retry, the typed sentinel still reaches the caller.
func TestBusyRetryExhausted(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	srv, addr := startAdmissionServer(t, func(req *request) {
		if req.Op == opRows {
			entered <- struct{}{}
			<-release
		}
	}, WithConnWorkers(1), WithQueueDepth(1), WithDrainTimeout(time.Second))
	var once sync.Once
	unpark := func() { once.Do(func() { close(release) }) }
	t.Cleanup(func() {
		unpark()
		srv.Close()
	})
	c, err := Dial(addr, WithBusyRetry(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable(plainSchema("exh")); err != nil {
		t.Fatal(err)
	}
	go c.Rows("exh") //nolint:errcheck // parked saturator, released in cleanup
	<-entered
	if _, err := c.Rows("exh"); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("exhausted retries: err = %v, want ErrServerBusy", err)
	}
}

// TestBusyRetryHonorsContext: backoff sleeps end early when the caller's
// context is cancelled.
func TestBusyRetryHonorsContext(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	srv, addr := startAdmissionServer(t, func(req *request) {
		if req.Op == opRows {
			entered <- struct{}{}
			<-release
		}
	}, WithConnWorkers(1), WithQueueDepth(1), WithDrainTimeout(time.Second))
	var once sync.Once
	unpark := func() { once.Do(func() { close(release) }) }
	t.Cleanup(func() {
		unpark()
		srv.Close()
	})
	// An hour of backoff: only context cancellation can end the call soon.
	c, err := Dial(addr, WithBusyRetry(1, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable(plainSchema("ctx")); err != nil {
		t.Fatal(err)
	}
	go c.Rows("ctx") //nolint:errcheck // parked saturator, released in cleanup
	<-entered
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.call(ctx, &request{Op: opRows, Table: "ctx"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled mid-backoff: err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt", d)
	}
}
