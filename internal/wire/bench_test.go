package wire

import (
	"context"
	"testing"

	"github.com/encdbdb/encdbdb/internal/engine"
)

// benchClient dials addr, creates a small plain table, and returns the
// client.
func benchClient(b *testing.B, dial func(string, ...ClientOption) (*Client, error)) *Client {
	b.Helper()
	_, addr := startPlainServer(b)
	c, err := dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	if err := c.CreateTable(plainSchema("bench")); err != nil {
		b.Fatal(err)
	}
	if err := c.Insert(context.Background(), "bench", engine.Row{"c": []byte("v")}); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkRoundTripLockstep measures one v1 round trip (self-contained
// gob documents, whole-connection lock).
func BenchmarkRoundTripLockstep(b *testing.B) {
	c := benchClient(b, DialLockstep)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Rows("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundTripMultiplexed measures one v2 round trip (persistent
// per-connection gob streams).
func BenchmarkRoundTripMultiplexed(b *testing.B) {
	c := benchClient(b, Dial)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Rows("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundTripMultiplexedParallel measures the multiplexed path with
// concurrent callers sharing one connection.
func BenchmarkRoundTripMultiplexedParallel(b *testing.B) {
	c := benchClient(b, Dial)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Rows("bench"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkInsertBatch100 measures the batched bulk-load fast path: 100
// rows per round trip.
func BenchmarkInsertBatch100(b *testing.B) {
	c := benchClient(b, Dial)
	rows := make([]engine.Row, 100)
	for i := range rows {
		rows[i] = engine.Row{"c": []byte("v")}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.InsertBatch(context.Background(), "bench", rows); err != nil {
			b.Fatal(err)
		}
	}
}
