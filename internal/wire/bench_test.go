package wire

import (
	"bytes"
	"context"
	"io"
	"testing"

	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/engine"
)

// benchClient dials addr, creates a small plain table, and returns the
// client.
func benchClient(b *testing.B, dial func(string, ...ClientOption) (*Client, error)) *Client {
	b.Helper()
	_, addr := startPlainServer(b)
	c, err := dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	if err := c.CreateTable(plainSchema("bench")); err != nil {
		b.Fatal(err)
	}
	if err := c.Insert(context.Background(), "bench", engine.Row{"c": []byte("v")}); err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkRoundTripLockstep measures one v1 round trip (self-contained
// gob documents, whole-connection lock).
func BenchmarkRoundTripLockstep(b *testing.B) {
	c := benchClient(b, DialLockstep)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Rows("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundTripMultiplexed measures one v2 round trip (persistent
// per-connection gob streams).
func BenchmarkRoundTripMultiplexed(b *testing.B) {
	c := benchClient(b, Dial)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Rows("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundTripMultiplexedParallel measures the multiplexed path with
// concurrent callers sharing one connection.
func BenchmarkRoundTripMultiplexedParallel(b *testing.B) {
	c := benchClient(b, Dial)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Rows("bench"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// The BenchmarkWire* pairs compare the v2 gob stream against the v3 binary
// codec on identical workloads over a real connection — the headline
// numbers for the zero-alloc wire hot path. Allocations counted here span
// both sides plus the engine, so the interesting figure is the v2→v3 delta.

func benchWireSelect(b *testing.B, opts ...ClientOption) {
	c := benchClient(b, func(addr string, extra ...ClientOption) (*Client, error) {
		return Dial(addr, append(opts, extra...)...)
	})
	q := engine.Query{Table: "bench"}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Select(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

func benchWireInsert(b *testing.B, opts ...ClientOption) {
	c := benchClient(b, func(addr string, extra ...ClientOption) (*Client, error) {
		return Dial(addr, append(opts, extra...)...)
	})
	ctx := context.Background()
	row := engine.Row{"c": []byte("v")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Insert(ctx, "bench", row); err != nil {
			b.Fatal(err)
		}
	}
}

func benchWireRows(b *testing.B, opts ...ClientOption) {
	c := benchClient(b, func(addr string, extra ...ClientOption) (*Client, error) {
		return Dial(addr, append(opts, extra...)...)
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Rows("bench"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireSelectV2(b *testing.B) { benchWireSelect(b, WithMaxProto(2)) }
func BenchmarkWireSelectV3(b *testing.B) { benchWireSelect(b, WithMaxProto(3)) }
func BenchmarkWireInsertV2(b *testing.B) { benchWireInsert(b, WithMaxProto(2)) }
func BenchmarkWireInsertV3(b *testing.B) { benchWireInsert(b, WithMaxProto(3)) }
func BenchmarkWireRowsV2(b *testing.B)   { benchWireRows(b, WithMaxProto(2)) }
func BenchmarkWireRowsV3(b *testing.B)   { benchWireRows(b, WithMaxProto(3)) }

// The codec-level pairs isolate the wire layer itself — encode one point
// SELECT request the way each protocol version puts it on the wire. Here
// the engine plays no part: the delta is purely gob stream vs binary codec.
func BenchmarkWireEncodeRequestV2(b *testing.B) {
	mw := newMuxWriter(io.Discard)
	req := benchPointSelect()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := mw.sendRequest(uint64(i), req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeRequestV3(b *testing.B) {
	mw := newMuxWriter(io.Discard)
	mw.version = protoV3
	req := benchPointSelect()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := mw.sendRequest(uint64(i), req); err != nil {
			b.Fatal(err)
		}
	}
}

// The decode pairs measure the server's whole frame-handling cycle — read a
// frame carrying a point SELECT, decode it, release — on each version's
// stream format.
func BenchmarkWireDecodeRequestV2(b *testing.B) {
	var buf bytes.Buffer
	mw := newMuxWriter(&buf)
	req := benchPointSelect()
	if err := mw.sendRequest(1, req); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if err := mw.sendRequest(uint64(i), req); err != nil {
			b.Fatal(err)
		}
	}
	mr := newMuxReader(&buf)
	// Absorb the gob stream prefix (type descriptors) outside the timer.
	got := new(request)
	if _, err := mr.next(got); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		*got = request{}
		if _, err := mr.next(got); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireDecodeRequestV3(b *testing.B) {
	var buf bytes.Buffer
	mw := newMuxWriter(&buf)
	mw.version = protoV3
	if err := mw.sendRequest(1, benchPointSelect()); err != nil {
		b.Fatal(err)
	}
	frame := append([]byte(nil), buf.Bytes()...)
	r := bytes.NewReader(frame)
	fr := frameReader{r: r}
	var in intern
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		_, fb, err := fr.readPooled()
		if err != nil {
			b.Fatal(err)
		}
		req, pooled, err := decodeV3Request(fb, &in)
		if err != nil {
			b.Fatal(err)
		}
		releaseRequest(req, fb, pooled)
	}
}

func benchPointSelect() *request {
	return &request{
		Op:    opSelect,
		Table: "accounts",
		Query: engine.Query{
			Table: "accounts",
			Filters: []engine.Filter{{
				Column: "balance",
				Ranges: []enclave.EncRange{{Start: []byte{1, 2, 3, 4}, End: []byte{5, 6, 7, 8}, StartIncl: true, EndIncl: true}},
			}},
			Project: []string{"balance"},
		},
	}
}

// BenchmarkInsertBatch100 measures the batched bulk-load fast path: 100
// rows per round trip.
func BenchmarkInsertBatch100(b *testing.B) {
	c := benchClient(b, Dial)
	rows := make([]engine.Row, 100)
	for i := range rows {
		rows[i] = engine.Row{"c": []byte("v")}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.InsertBatch(context.Background(), "bench", rows); err != nil {
			b.Fatal(err)
		}
	}
}
