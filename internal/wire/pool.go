package wire

import (
	"context"
	"fmt"
	"sync"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/engine"
)

// Pool fans calls out over a fixed set of connections to one provider,
// round-robin. A single multiplexed connection already carries many
// in-flight calls; a Pool is for callers that additionally want more than
// one TCP stream — e.g. when one stream's in-order delivery or kernel
// buffering becomes the bottleneck under heavy concurrent load. A
// connection whose sticky failure tripped is redialed in place on the next
// pick, so one transient drop does not degrade its rotation slot forever.
// It exposes the same call surface as Client (it implements proxy.Executor
// and the owner's setup operations) and is safe for concurrent use.
type Pool struct {
	addr string
	opts []ClientOption

	mu      sync.Mutex
	clients []*Client
	next    uint64
	closed  bool
}

// DialPool opens size connections to addr. Each connection negotiates the
// protocol version independently (see Dial). Options apply to every
// connection, including replacements redialed after a sticky failure.
func DialPool(addr string, size int, opts ...ClientOption) (*Pool, error) {
	if size < 1 {
		return nil, fmt.Errorf("wire: pool size must be >= 1, got %d", size)
	}
	p := &Pool{addr: addr, opts: opts, clients: make([]*Client, 0, size)}
	for i := 0; i < size; i++ {
		c, err := Dial(addr, opts...)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

// Size returns the number of pooled connections.
func (p *Pool) Size() int { return len(p.clients) }

// Close terminates every pooled connection, returning the first error.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.closed = true
	clients := append([]*Client(nil), p.clients...)
	p.mu.Unlock()
	var first error
	for _, c := range clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// pick rotates through the pooled connections, skipping poisoned ones and
// redialing their slots. If the provider is unreachable the last broken
// client is returned and its sticky error propagates to the caller.
func (p *Pool) pick() *Client {
	p.mu.Lock()
	defer p.mu.Unlock()
	var last *Client
	for i := 0; i < len(p.clients); i++ {
		c := p.clients[p.next%uint64(len(p.clients))]
		slot := p.next % uint64(len(p.clients))
		p.next++
		if c.healthy() {
			return c
		}
		last = c
		if p.closed {
			continue
		}
		if fresh, err := Dial(p.addr, p.opts...); err == nil {
			p.clients[slot] = fresh
			return fresh
		}
	}
	return last
}

// Quote requests a remote attestation quote bound to nonce.
func (p *Pool) Quote(nonce []byte) (enclave.Quote, error) { return p.pick().Quote(nonce) }

// Provision ships the sealed master key to the provider's enclave. The
// enclave is shared by all connections, so provisioning once suffices.
func (p *Pool) Provision(sk enclave.SealedKey) error { return p.pick().Provision(sk) }

// ImportColumn bulk-loads a pre-built column split.
func (p *Pool) ImportColumn(table, column string, data dict.SplitData) error {
	return p.pick().ImportColumn(table, column, data)
}

// Schema fetches a table schema.
func (p *Pool) Schema(table string) (engine.Schema, error) { return p.pick().Schema(table) }

// CreateTable registers a schema at the provider.
func (p *Pool) CreateTable(s engine.Schema) error { return p.pick().CreateTable(s) }

// DropTable removes a table at the provider.
func (p *Pool) DropTable(name string) error { return p.pick().DropTable(name) }

// Select evaluates an encrypted query remotely.
func (p *Pool) Select(ctx context.Context, q engine.Query) (*engine.Result, error) {
	return p.pick().Select(ctx, q)
}

// SelectStream evaluates an encrypted query remotely, streaming the result
// in chunks over one pooled connection.
func (p *Pool) SelectStream(ctx context.Context, q engine.Query) (engine.ResultStream, error) {
	return p.pick().SelectStream(ctx, q)
}

// Insert appends an encrypted row.
func (p *Pool) Insert(ctx context.Context, table string, row engine.Row) error {
	return p.pick().Insert(ctx, table, row)
}

// InsertBatch appends rows in one round trip on one pooled connection.
func (p *Pool) InsertBatch(ctx context.Context, table string, rows []engine.Row) error {
	return p.pick().InsertBatch(ctx, table, rows)
}

// Delete invalidates matching rows.
func (p *Pool) Delete(ctx context.Context, table string, filters []engine.Filter) (int, error) {
	return p.pick().Delete(ctx, table, filters)
}

// Update rewrites matching rows.
func (p *Pool) Update(ctx context.Context, table string, filters []engine.Filter, set engine.Row) (int, error) {
	return p.pick().Update(ctx, table, filters, set)
}

// Merge folds the delta store remotely.
func (p *Pool) Merge(ctx context.Context, table string) error { return p.pick().Merge(ctx, table) }

// MergeAsync starts a background merge at the provider.
func (p *Pool) MergeAsync(ctx context.Context, table string) (bool, error) {
	return p.pick().MergeAsync(ctx, table)
}

// MergeStatus reports the remote table's delta/merge lifecycle state.
func (p *Pool) MergeStatus(ctx context.Context, table string) (engine.MergeInfo, error) {
	return p.pick().MergeStatus(ctx, table)
}

// Tables lists remote tables.
func (p *Pool) Tables() ([]string, error) { return p.pick().Tables() }

// Rows returns a remote table's total row count.
func (p *Pool) Rows(table string) (int, error) { return p.pick().Rows(table) }

// StorageBytes returns a remote table's storage footprint.
func (p *Pool) StorageBytes(table string) (int, error) { return p.pick().StorageBytes(table) }
