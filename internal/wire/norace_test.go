//go:build !race

package wire

// raceEnabled is false in normal builds; see race_test.go.
const raceEnabled = false
