package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		var buf bytes.Buffer
		if err := writeFrame(&buf, payload); err != nil {
			return false
		}
		got, err := readFrame(&buf)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // ~4 GiB announced
	if _, err := readFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, n := range []int{0, 2, 4, len(raw) - 1} {
		if _, err := readFrame(bytes.NewReader(raw[:n])); err == nil {
			t.Errorf("truncated frame at %d accepted", n)
		}
	}
}

func TestReadFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("payload = %v", got)
	}
	if _, err := readFrame(&buf); err != io.EOF {
		t.Errorf("second read err = %v, want EOF", err)
	}
}

func TestMessageCodecRoundTrip(t *testing.T) {
	req := request{
		Op:     opSelect,
		Table:  "t1",
		Column: "c",
		Nonce:  []byte{1, 2, 3},
	}
	payload, err := encodeMsg(&req)
	if err != nil {
		t.Fatal(err)
	}
	var got request
	if err := decodeMsg(payload, &got); err != nil {
		t.Fatal(err)
	}
	if got.Op != req.Op || got.Table != req.Table || got.Column != req.Column {
		t.Errorf("round trip = %+v", got)
	}
}

func TestDecodeMsgRejectsGarbage(t *testing.T) {
	var got response
	if err := decodeMsg([]byte("not gob"), &got); err == nil {
		t.Error("garbage decoded")
	}
}
