package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		var buf bytes.Buffer
		if err := writeFrame(&buf, payload); err != nil {
			return false
		}
		fr := &frameReader{r: &buf}
		defer fr.release()
		got, err := fr.read()
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReadFrameRejectsOversized(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // ~4 GiB announced
	fr := &frameReader{r: &buf}
	defer fr.release()
	if _, err := fr.read(); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, n := range []int{0, 2, 4, len(raw) - 1} {
		fr := &frameReader{r: bytes.NewReader(raw[:n])}
		if _, err := fr.read(); err == nil {
			t.Errorf("truncated frame at %d accepted", n)
		}
		fr.release()
	}
}

func TestReadFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	fr := &frameReader{r: &buf}
	defer fr.release()
	got, err := fr.read()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("payload = %v", got)
	}
	if _, err := fr.read(); err != io.EOF {
		t.Errorf("second read err = %v, want EOF", err)
	}
}

func TestFrameReaderReusesBuffer(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		if err := writeFrame(&buf, []byte("hello")); err != nil {
			t.Fatal(err)
		}
	}
	fr := &frameReader{r: &buf}
	first, err := fr.read()
	if err != nil {
		t.Fatal(err)
	}
	firstPtr := &first[0]
	for i := 0; i < 2; i++ {
		p, err := fr.read()
		if err != nil {
			t.Fatal(err)
		}
		if string(p) != "hello" {
			t.Fatalf("payload = %q", p)
		}
		if &p[0] != firstPtr {
			t.Fatal("steady-state frame read reallocated the payload buffer")
		}
	}
}

func TestFrameReaderCapGuard(t *testing.T) {
	big := make([]byte, 2*bufRetainLimit)
	var buf bytes.Buffer
	if err := writeFrame(&buf, big); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&buf, []byte("tiny")); err != nil {
		t.Fatal(err)
	}
	fr := &frameReader{r: &buf}
	p, err := fr.read()
	if err != nil || len(p) != len(big) {
		t.Fatalf("big read: %d bytes, %v", len(p), err)
	}
	if _, err := fr.read(); err != nil {
		t.Fatal(err)
	}
	if cap(fr.buf.B) > bufRetainLimit {
		t.Fatalf("buffer cap %d still pinned above retain limit %d after a small frame",
			cap(fr.buf.B), bufRetainLimit)
	}
	fr.release()
}

func TestMuxStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	mw := newMuxWriter(&buf)
	ids := []uint64{7, 3, 99}
	for _, id := range ids {
		if err := mw.send(id, &request{Op: opRows, Table: fmt.Sprintf("t%d", id)}); err != nil {
			t.Fatal(err)
		}
	}
	mr := newMuxReader(&buf)
	for _, want := range ids {
		req := new(request)
		id, err := mr.next(req)
		if err != nil {
			t.Fatal(err)
		}
		if id != want || req.Table != fmt.Sprintf("t%d", want) {
			t.Fatalf("got id %d table %q, want id %d", id, req.Table, want)
		}
	}
	if _, err := mr.next(new(request)); err != io.EOF {
		t.Fatalf("err = %v, want EOF at stream end", err)
	}
}

func TestMessageCodecRoundTrip(t *testing.T) {
	req := request{
		Op:     opSelect,
		Table:  "t1",
		Column: "c",
		Nonce:  []byte{1, 2, 3},
	}
	payload, err := encodeMsg(&req)
	if err != nil {
		t.Fatal(err)
	}
	var got request
	if err := decodeMsg(payload, &got); err != nil {
		t.Fatal(err)
	}
	if got.Op != req.Op || got.Table != req.Table || got.Column != req.Column {
		t.Errorf("round trip = %+v", got)
	}
}

func TestDecodeMsgRejectsGarbage(t *testing.T) {
	var got response
	if err := decodeMsg([]byte("not gob"), &got); err == nil {
		t.Error("garbage decoded")
	}
}
