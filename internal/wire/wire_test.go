package wire_test

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/pae"
	"github.com/encdbdb/encdbdb/internal/proxy"
	"github.com/encdbdb/encdbdb/internal/wire"
)

const serverIdentity = "wire-test-enclave"

// startServer launches a provider (enclave + engine + wire server) on a
// loopback port and returns its address plus the platform for attestation.
func startServer(t testing.TB) (addr string, plat *enclave.Platform) {
	t.Helper()
	plat, err := enclave.NewPlatform()
	if err != nil {
		t.Fatal(err)
	}
	encl, err := plat.Launch(enclave.Config{Identity: serverIdentity})
	if err != nil {
		t.Fatal(err)
	}
	db := engine.New(encl)
	srv := wire.NewServer(db, t.Logf)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // ends with Close
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String(), plat
}

// provision runs the full remote attestation + key deployment over the wire.
func provision(t testing.TB, c *wire.Client, plat *enclave.Platform, master pae.Key) {
	t.Helper()
	nonce := []byte("remote-nonce")
	q, err := c.Quote(nonce)
	if err != nil {
		t.Fatalf("Quote: %v", err)
	}
	if err := plat.VerifyQuote(q, enclave.Measure(serverIdentity), nonce); err != nil {
		t.Fatalf("VerifyQuote: %v", err)
	}
	sealed, err := enclave.SealKey(q, master)
	if err != nil {
		t.Fatalf("SealKey: %v", err)
	}
	if err := c.Provision(sealed); err != nil {
		t.Fatalf("Provision: %v", err)
	}
}

func newRemoteProxy(t testing.TB) (*proxy.Proxy, *wire.Client) {
	t.Helper()
	addr, plat := startServer(t)
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	master := pae.MustGen()
	provision(t, c, plat, master)
	p, err := proxy.New(master, c)
	if err != nil {
		t.Fatal(err)
	}
	return p, c
}

func TestRemoteEndToEnd(t *testing.T) {
	p, c := newRemoteProxy(t)
	if _, err := p.Execute(context.Background(), "CREATE TABLE t1 (fname ED5(16) BSMAX 3, city ED1(16))"); err != nil {
		t.Fatalf("create: %v", err)
	}
	rows := [][2]string{{"Hans", "Berlin"}, {"Jessica", "Waterloo"}, {"Archie", "Karlsruhe"}}
	for _, r := range rows {
		if _, err := p.Execute(context.Background(), fmt.Sprintf("INSERT INTO t1 VALUES ('%s', '%s')", r[0], r[1])); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	res, err := p.Execute(context.Background(), "SELECT fname, city FROM t1 WHERE fname >= 'Archie' AND fname <= 'Hans'")
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v, want 2", res.Rows)
	}
	cnt, err := p.Execute(context.Background(), "SELECT COUNT(*) FROM t1")
	if err != nil || cnt.Count != 3 {
		t.Fatalf("count = %+v, %v", cnt, err)
	}
	tables, err := c.Tables()
	if err != nil || len(tables) != 1 || tables[0] != "t1" {
		t.Fatalf("tables = %v, %v", tables, err)
	}
	n, err := c.Rows("t1")
	if err != nil || n != 3 {
		t.Fatalf("rows = %d, %v", n, err)
	}
	if _, err := c.StorageBytes("t1"); err != nil {
		t.Fatalf("storage: %v", err)
	}
}

func TestRemoteBulkImport(t *testing.T) {
	// Reconstruct the data-owner bulk path: build the split locally under
	// the master key, then ship it over the wire.
	master := pae.MustGen()
	addr, plat := startServer(t)
	c2, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	provision(t, c2, plat, master)
	p2, err := proxy.New(master, c2)
	if err != nil {
		t.Fatal(err)
	}

	if err := c2.CreateTable(engine.Schema{Table: "bulk", Columns: []engine.ColumnDef{
		{Name: "c", Kind: dict.ED1, MaxLen: 8},
	}}); err != nil {
		t.Fatal(err)
	}
	key, _ := pae.Derive(master, "bulk", "c")
	cipher, _ := pae.NewCipher(key)
	split, err := dict.Build([][]byte{[]byte("x"), []byte("y"), []byte("x")}, dict.Params{
		Kind: dict.ED1, MaxLen: 8, Cipher: cipher, Rand: rand.New(rand.NewSource(9)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.ImportColumn("bulk", "c", split.Data()); err != nil {
		t.Fatalf("ImportColumn: %v", err)
	}
	res, err := p2.Execute(context.Background(), "SELECT c FROM bulk WHERE c = 'x'")
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("rows = %v, want 2", res.Rows)
	}
}

func TestRemoteErrorsPropagate(t *testing.T) {
	p, c := newRemoteProxy(t)
	if _, err := p.Execute(context.Background(), "SELECT * FROM missing"); err == nil || !strings.Contains(err.Error(), "no such table") {
		t.Errorf("err = %v, want table error", err)
	}
	if err := c.DropTable("missing"); err == nil {
		t.Error("drop missing table succeeded")
	}
}

func TestRemoteQueryWithoutProvisionFails(t *testing.T) {
	addr, _ := startServer(t)
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable(engine.Schema{Table: "x", Columns: []engine.ColumnDef{
		{Name: "c", Kind: dict.ED1, MaxLen: 8},
	}}); err != nil {
		t.Fatal(err)
	}
	master := pae.MustGen()
	p, err := proxy.New(master, c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(context.Background(), "INSERT INTO x VALUES ('a')"); err == nil {
		t.Error("insert without provisioned enclave succeeded")
	}
}

func TestRemoteWriteOperations(t *testing.T) {
	p, _ := newRemoteProxy(t)
	if _, err := p.Execute(context.Background(), "CREATE TABLE w (c ED9(8))"); err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"a", "b", "a"} {
		if _, err := p.Execute(context.Background(), fmt.Sprintf("INSERT INTO w VALUES ('%s')", v)); err != nil {
			t.Fatal(err)
		}
	}
	up, err := p.Execute(context.Background(), "UPDATE w SET c = 'z' WHERE c = 'b'")
	if err != nil || up.Affected != 1 {
		t.Fatalf("update = %+v, %v", up, err)
	}
	del, err := p.Execute(context.Background(), "DELETE FROM w WHERE c = 'a'")
	if err != nil || del.Affected != 2 {
		t.Fatalf("delete = %+v, %v", del, err)
	}
	if _, err := p.Execute(context.Background(), "MERGE TABLE w"); err != nil {
		t.Fatalf("merge: %v", err)
	}
	res, err := p.Execute(context.Background(), "SELECT c FROM w")
	if err != nil || len(res.Rows) != 1 || res.Rows[0][0] != "z" {
		t.Fatalf("rows = %+v, %v", res, err)
	}
}

func TestRemoteMergeAsyncAndStatus(t *testing.T) {
	p, c := newRemoteProxy(t)
	if _, err := p.Execute(context.Background(), "CREATE TABLE m (c ED1(8))"); err != nil {
		t.Fatal(err)
	}
	for _, v := range []string{"a", "b", "c"} {
		if _, err := p.Execute(context.Background(), fmt.Sprintf("INSERT INTO m VALUES ('%s')", v)); err != nil {
			t.Fatal(err)
		}
	}
	info, err := c.MergeStatus(context.Background(), "m")
	if err != nil {
		t.Fatalf("MergeStatus: %v", err)
	}
	if info.DeltaRows != 3 || info.Generation != 0 {
		t.Errorf("pre-merge status = %+v, want 3 delta rows at generation 0", info)
	}
	started, err := c.MergeAsync(context.Background(), "m")
	if err != nil {
		t.Fatalf("MergeAsync: %v", err)
	}
	if !started {
		t.Error("MergeAsync reported an already-running merge on an idle table")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if info, err = c.MergeStatus(context.Background(), "m"); err != nil {
			t.Fatalf("MergeStatus: %v", err)
		}
		if !info.Merging && info.Merges > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("remote background merge never completed: %+v", info)
		}
		time.Sleep(time.Millisecond)
	}
	if info.MainRows != 3 || info.DeltaRows != 0 || info.Generation != 1 || info.LastError != "" {
		t.Errorf("post-merge status = %+v, want 3 main rows at generation 1", info)
	}
	// The SQL surface reaches the same ops.
	if _, err := p.Execute(context.Background(), "MERGE TABLE m ASYNC"); err != nil {
		t.Fatalf("MERGE TABLE ASYNC: %v", err)
	}
	if res, err := p.Execute(context.Background(), "MERGE STATUS m"); err != nil || len(res.Rows) != 1 {
		t.Fatalf("MERGE STATUS = %+v, %v", res, err)
	}
	if _, err := c.MergeStatus(context.Background(), "missing"); err == nil {
		t.Error("MergeStatus on missing table succeeded")
	}
}

func TestConcurrentClients(t *testing.T) {
	addr, plat := startServer(t)
	master := pae.MustGen()
	setup, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer setup.Close()
	provision(t, setup, plat, master)
	pSetup, err := proxy.New(master, setup)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pSetup.Execute(context.Background(), "CREATE TABLE cc (c ED1(8))"); err != nil {
		t.Fatal(err)
	}
	if _, err := pSetup.Execute(context.Background(), "INSERT INTO cc VALUES ('v')"); err != nil {
		t.Fatal(err)
	}

	const clients = 4
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			c, err := wire.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			p, err := proxy.New(master, c)
			if err != nil {
				errs <- err
				return
			}
			for j := 0; j < 10; j++ {
				res, err := p.Execute(context.Background(), "SELECT c FROM cc WHERE c = 'v'")
				if err != nil {
					errs <- err
					return
				}
				if len(res.Rows) != 1 {
					errs <- fmt.Errorf("rows = %v", res.Rows)
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerSurvivesGarbageConnection(t *testing.T) {
	addr, _ := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	// A garbage frame must drop the connection but not the server.
	if _, err := conn.Write([]byte{0, 0, 0, 4, 'j', 'u', 'n', 'k'}); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	// The server must still accept proper clients.
	c, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Tables(); err != nil {
		t.Fatalf("Tables after garbage: %v", err)
	}
}
