package wire

import (
	"net"
	"time"

	"github.com/encdbdb/encdbdb/internal/bufpool"
	"github.com/encdbdb/encdbdb/internal/metrics"
)

// metricName returns the stable label value identifying an op in the wire
// metric families. Unknown ops (a newer peer, a corrupted frame) collapse
// into one label so a hostile client cannot grow label cardinality.
func (o op) metricName() string {
	switch o {
	case opQuote:
		return "quote"
	case opProvision:
		return "provision"
	case opSchema:
		return "schema"
	case opCreateTable:
		return "create_table"
	case opDropTable:
		return "drop_table"
	case opSelect:
		return "select"
	case opInsert:
		return "insert"
	case opDelete:
		return "delete"
	case opUpdate:
		return "update"
	case opMerge:
		return "merge"
	case opImportColumn:
		return "import_column"
	case opTables:
		return "tables"
	case opRows:
		return "rows"
	case opStorageBytes:
		return "storage_bytes"
	case opBatch:
		return "batch"
	case opMergeAsync:
		return "merge_async"
	case opMergeStatus:
		return "merge_status"
	case opSelectStream:
		return "select_stream"
	case opCancel:
		return "cancel"
	}
	return "unknown"
}

// serverMetrics is the wire server's instrumentation: request/error counts
// and latency per op, admission-control outcomes, connection and byte
// totals. All per-op children are resolved once at construction, so the
// request path pays only atomic adds. A nil *serverMetrics is valid and
// makes every method a no-op — servers without WithMetrics skip even the
// time.Now calls.
type serverMetrics struct {
	connsTotal  *metrics.Counter
	connsActive *metrics.Gauge
	inflight    *metrics.Gauge
	rejected    *metrics.Counter
	rateLimited *metrics.Counter
	timeouts    *metrics.Counter
	bytesIn     *metrics.Counter
	bytesOut    *metrics.Counter

	// indexed by op (0 = unknown/out of range)
	reqByOp [opCancel + 2]*metrics.Counter
	errByOp [opCancel + 2]*metrics.Counter
	latByOp [opCancel + 2]*metrics.Histogram
}

// newServerMetrics registers the wire families on reg.
func newServerMetrics(reg *metrics.Registry) *serverMetrics {
	m := &serverMetrics{
		connsTotal:  reg.NewCounter("encdbdb_wire_connections_total", "Connections accepted since start."),
		connsActive: reg.NewGauge("encdbdb_wire_connections_active", "Currently open connections."),
		inflight:    reg.NewGauge("encdbdb_wire_inflight_requests", "Admitted requests not yet answered (queued + executing)."),
		rejected:    reg.NewCounter("encdbdb_wire_rejected_total", "Requests shed with ErrServerBusy because the dispatch queue was full."),
		rateLimited: reg.NewCounter("encdbdb_wire_rate_limited_total", "Requests shed with ErrRateLimited because the connection exceeded its request budget."),
		timeouts:    reg.NewCounter("encdbdb_wire_request_timeouts_total", "Requests that exceeded the per-request deadline."),
		bytesIn:     reg.NewCounter("encdbdb_wire_read_bytes_total", "Bytes read from client connections."),
		bytesOut:    reg.NewCounter("encdbdb_wire_written_bytes_total", "Bytes written to client connections."),
	}
	reqs := reg.NewCounterVec("encdbdb_wire_requests_total", "Requests served, by op (excludes shed requests).", "op")
	errs := reg.NewCounterVec("encdbdb_wire_request_errors_total", "Requests answered with an error, by op.", "op")
	lat := reg.NewHistogramVec("encdbdb_wire_request_seconds", "Request latency from decode to response, by op.", metrics.DefBuckets, "op")
	for o := op(0); o <= opCancel+1; o++ {
		name := o.metricName()
		m.reqByOp[m.idx(o)] = reqs.With(name)
		m.errByOp[m.idx(o)] = errs.With(name)
		m.latByOp[m.idx(o)] = lat.With(name)
	}
	registerBufpoolMetrics(reg)
	return m
}

// registerBufpoolMetrics exposes the process-wide frame-buffer pool's health
// on reg, sampled at scrape time. A drifting gets/puts gap means buffers are
// being retained (by design for simple-call results, a leak otherwise); a
// high miss rate means the working set outruns the per-class free lists.
func registerBufpoolMetrics(reg *metrics.Registry) {
	p := bufpool.Default
	reg.NewCounterFunc("encdbdb_wire_bufpool_gets_total",
		"Frame buffers checked out of the wire buffer pool.",
		func() uint64 { return p.Stats().Gets })
	reg.NewCounterFunc("encdbdb_wire_bufpool_puts_total",
		"Frame buffers returned to the wire buffer pool.",
		func() uint64 { return p.Stats().Puts })
	reg.NewCounterFunc("encdbdb_wire_bufpool_misses_total",
		"Pool checkouts that had to allocate (empty free list or oversized request).",
		func() uint64 { return p.Stats().Misses })
	reg.NewGaugeFunc("encdbdb_wire_bufpool_retained_bytes",
		"Total capacity currently parked on the pool's free lists.",
		func() float64 { return float64(p.Stats().RetainedBytes) })
}

// idx maps an op to its resolved-metric slot; anything out of range shares
// the "unknown" slot (opCancel+1 maps there too, giving the loop above a
// natural endpoint).
func (m *serverMetrics) idx(o op) int {
	if o >= 1 && o <= opCancel {
		return int(o)
	}
	return 0
}

// request records one served request: count, error count, and latency since
// arrived.
func (m *serverMetrics) request(o op, arrived time.Time, errored bool) {
	if m == nil {
		return
	}
	i := m.idx(o)
	m.reqByOp[i].Inc()
	if errored {
		m.errByOp[i].Inc()
	}
	m.latByOp[i].Observe(time.Since(arrived).Seconds())
}

// now returns the arrival timestamp for latency measurement, skipping the
// clock read entirely when metrics are off.
func (m *serverMetrics) now() time.Time {
	if m == nil {
		return time.Time{}
	}
	return time.Now()
}

func (m *serverMetrics) connOpened() {
	if m == nil {
		return
	}
	m.connsTotal.Inc()
	m.connsActive.Inc()
}

func (m *serverMetrics) connClosed() {
	if m == nil {
		return
	}
	m.connsActive.Dec()
}

func (m *serverMetrics) rejectedInc() {
	if m == nil {
		return
	}
	m.rejected.Inc()
}

func (m *serverMetrics) rateLimitedInc() {
	if m == nil {
		return
	}
	m.rateLimited.Inc()
}

func (m *serverMetrics) timeoutInc() {
	if m == nil {
		return
	}
	m.timeouts.Inc()
}

func (m *serverMetrics) inflightAdd(d int64) {
	if m == nil {
		return
	}
	m.inflight.Add(d)
}

// wrap instruments a connection with the byte counters; with metrics off it
// returns conn unchanged.
func (m *serverMetrics) wrap(conn net.Conn) net.Conn {
	if m == nil {
		return conn
	}
	return &countingConn{Conn: conn, in: m.bytesIn, out: m.bytesOut}
}

// countingConn counts the bytes crossing a connection. Deadline and Close
// calls pass through to the embedded net.Conn, so the server's drain logic
// works identically on wrapped connections.
type countingConn struct {
	net.Conn
	in, out *metrics.Counter
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.in.Add(uint64(n))
	}
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.out.Add(uint64(n))
	}
	return n, err
}
