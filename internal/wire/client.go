package wire

import (
	"bufio"
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/encdbdb/encdbdb/internal/bufpool"
	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/engine"
)

// ErrClientClosed is returned by calls on (and pending during) Close.
var ErrClientClosed = errors.New("wire: client closed")

// errBatchAborted marks batch sub-responses skipped after an earlier
// sub-request failed.
const errBatchAborted = "wire: aborted by earlier batch failure"

// helloTimeout bounds version negotiation against unresponsive peers.
const helloTimeout = 5 * time.Second

// streamBuffer is how many result chunks a streaming Select may buffer
// client-side before the connection's demux loop blocks — the flow-control
// window between a fast server and a slow row consumer.
const streamBuffer = 32

// Client is the trusted side's connection to a remote EncDBDB provider. It
// implements proxy.Executor, so a proxy.Proxy can drive a remote database
// exactly like an embedded one, plus the attestation and bulk-load
// operations the data owner needs during setup.
//
// A Client is safe for concurrent use. On a multiplexed (v2) connection,
// concurrent calls stay in flight simultaneously: each request carries a
// connection-unique ID, a single reader goroutine demuxes the out-of-order
// responses, and writes are coalesced. Against a v1 server the client falls
// back to lock-step, serializing one round trip at a time.
//
// Data-plane calls take a context. On a multiplexed connection a cancelled
// context sends an advisory opCancel for the in-flight request — a server
// running this version stops its scan between chunks and frees the worker —
// and the call returns ctx.Err() immediately without wedging the connection
// (the late response is discarded when it arrives). Peers that predate
// opCancel answer it with an unknown-op error, which is ignored.
type Client struct {
	conn net.Conn

	// maxProto caps the version the client proposes (see WithMaxProto);
	// zero means the newest this build speaks.
	maxProto byte

	// lockstep marks a v1 connection; mu then serializes whole round trips,
	// and fr reuses one pooled buffer across response frames.
	lockstep bool
	mu       sync.Mutex
	fr       frameReader

	// Multiplexed state: pending maps in-flight request IDs to their
	// caller's delivery state; failure is sticky and poisons all future
	// calls. failed is closed on the first failure so streaming consumers
	// blocked outside the pending protocol wake up.
	w       *muxWriter
	nextID  atomic.Uint64
	pmu     sync.Mutex
	pending map[uint64]*pendingCall
	failure error
	failed  chan struct{}

	// noStream records that the server answered opSelectStream with an
	// unknown-op error: it predates streaming, so SelectStream falls back to
	// a materialized Select for the rest of the connection.
	noStream atomic.Bool

	// Busy-retry policy (see WithBusyRetry): up to busyRetries extra
	// attempts after an ErrServerBusy, with exponential backoff starting at
	// busyBase. Zero retries (the default) surfaces ErrServerBusy directly.
	busyRetries int
	busyBase    time.Duration
}

// ClientOption configures Dial, DialLockstep, and DialPool.
type ClientOption func(*Client)

// defaultBusyBase is the first backoff step when WithBusyRetry is given a
// non-positive base.
const defaultBusyBase = 5 * time.Millisecond

// WithBusyRetry makes the client absorb transient admission-control
// rejections: a call that fails with ErrServerBusy is retried up to n more
// times, sleeping base, 2*base, 4*base, ... between attempts (honoring the
// call's context while sleeping). Retrying is safe for every operation,
// including inserts: the server sheds load at admission, before the request
// executes, so a busy rejection means nothing happened. base <= 0 uses a
// 5ms default.
func WithBusyRetry(n int, base time.Duration) ClientOption {
	return func(c *Client) {
		if n < 0 {
			n = 0
		}
		if base <= 0 {
			base = defaultBusyBase
		}
		c.busyRetries = n
		c.busyBase = base
	}
}

// WithMaxProto caps the protocol version the client proposes during
// negotiation: 3 (the default) negotiates the binary codec, 2 forces the
// gob multiplexed protocol, 1 skips negotiation entirely and speaks
// lock-step. Mainly useful for benchmarking codecs against each other and
// for pinning compatibility in tests and rollouts.
func WithMaxProto(v int) ClientOption {
	return func(c *Client) {
		if v < protoV1 {
			v = protoV1
		}
		if v > protoV3 {
			v = protoV3
		}
		c.maxProto = byte(v)
	}
}

// busyBackoff returns the sleep before retry attempt (1-based), capping the
// exponent so absurd retry counts cannot overflow the duration.
func (c *Client) busyBackoff(attempt int) time.Duration {
	shift := attempt - 1
	if shift > 16 {
		shift = 16
	}
	return c.busyBase << shift
}

// sleepCtx waits d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// pendingCall is one in-flight request's delivery state. Simple calls
// receive exactly one callResult; streaming calls receive one per chunk plus
// a final one, and stay registered until the final frame.
type pendingCall struct {
	ch     chan callResult
	stream bool
}

type callResult struct {
	resp *response
	// buf is the pooled frame buffer resp's byte fields alias (v3 binary
	// responses only; nil otherwise). Ownership travels with the result:
	// whoever consumes resp decides when the buffer returns to the pool.
	buf *bufpool.Buf
	err error
}

// Dial connects to a provider at addr and negotiates the multiplexed
// protocol. If the peer is a v1 lock-step server (it drops the connection
// on the negotiation magic), the client redials and falls back
// transparently.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn}
	for _, o := range opts {
		o(c)
	}
	if c.maxProto == protoV1 {
		conn.Close()
		return DialLockstep(addr, opts...)
	}
	if err := c.negotiate(); err == nil {
		return c, nil
	}
	conn.Close()
	return DialLockstep(addr, opts...)
}

// DialLockstep connects with the original v1 lock-step protocol: one
// request/response round trip at a time, no negotiation bytes on the wire.
// Dial falls back to it automatically; calling it directly is mainly useful
// for benchmarking against the multiplexed path and for very old servers.
func DialLockstep(addr string, opts ...ClientOption) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, lockstep: true}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// negotiate performs the hello exchange (proposing the newest version this
// client is allowed to speak) and starts the reader for whichever version
// the server picked.
func (c *Client) negotiate() error {
	propose := byte(protoV3)
	if c.maxProto != 0 && c.maxProto < propose {
		propose = c.maxProto
	}
	if err := c.conn.SetDeadline(time.Now().Add(helloTimeout)); err != nil {
		return err
	}
	if err := writeHello(c.conn, propose); err != nil {
		return err
	}
	ver, err := readHello(c.conn)
	if err != nil {
		return err
	}
	if ver < protoV2 || ver > propose {
		return fmt.Errorf("wire: server negotiated unsupported version %d", ver)
	}
	if err := c.conn.SetDeadline(time.Time{}); err != nil {
		return err
	}
	c.w = newMuxWriter(c.conn)
	c.w.version = ver
	c.pending = make(map[uint64]*pendingCall)
	c.failed = make(chan struct{})
	go c.readLoop()
	return nil
}

// Multiplexed reports whether the connection negotiated the multiplexed
// protocol (false means the v1 lock-step fallback).
func (c *Client) Multiplexed() bool { return !c.lockstep }

// healthy reports whether the connection is still usable. Multiplexed
// connections fail sticky; lock-step connections carry no failure state
// and are presumed healthy.
func (c *Client) healthy() bool {
	if c.lockstep {
		return true
	}
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.failure == nil
}

// Close terminates the connection. Pending multiplexed calls complete with
// ErrClientClosed; none hang.
func (c *Client) Close() error {
	if c.lockstep {
		err := c.conn.Close()
		c.mu.Lock()
		c.fr.release()
		c.mu.Unlock()
		return err
	}
	c.fail(ErrClientClosed)
	return nil
}

// fail poisons the client: the first failure sticks, the connection closes,
// and every pending caller is completed with err. Deliveries never block:
// simple calls have a one-slot buffer that is theirs alone, and streaming
// consumers that cannot take another message are woken through the failed
// channel instead.
func (c *Client) fail(err error) {
	c.pmu.Lock()
	first := c.failure == nil
	if first {
		c.failure = err
	}
	pending := c.pending
	c.pending = make(map[uint64]*pendingCall)
	c.pmu.Unlock()
	c.conn.Close()
	if first {
		close(c.failed)
	}
	for _, pc := range pending {
		select {
		case pc.ch <- callResult{err: err}:
		default:
		}
	}
}

// failErr returns the sticky failure ("" pre-failure returns nil).
func (c *Client) failErr() error {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.failure
}

// readLoop demuxes responses to their in-flight callers — the only reader
// of a multiplexed connection. Streaming requests stay registered until
// their final frame (More unset or Err set) arrives.
func (c *Client) readLoop() {
	br := bufio.NewReader(c.conn)
	if c.w.version >= protoV3 {
		c.readLoopV3(br)
		return
	}
	mr := newMuxReader(br)
	defer mr.fr.release()
	for {
		resp := new(response)
		id, err := mr.next(resp)
		if err != nil {
			c.fail(fmt.Errorf("wire: receive: %w", err))
			return
		}
		c.deliver(id, resp, nil)
	}
}

// readLoopV3 is readLoop for the binary protocol: each frame arrives in its
// own pooled buffer, and binary-coded responses alias it, so the buffer
// travels with the response instead of being reused in place.
func (c *Client) readLoopV3(br *bufio.Reader) {
	fr := frameReader{r: br}
	for {
		id, buf, err := fr.readPooled()
		if err != nil {
			c.fail(fmt.Errorf("wire: receive: %w", err))
			return
		}
		resp := new(response)
		aliases := false
		if len(buf.B) == 0 {
			err = errCorruptFrame
		} else {
			switch tag := buf.B[0]; tag {
			case codecBin:
				var d binReader
				d.reset(buf.B[1:])
				aliases = decResponse(&d, resp)
				if derr := d.err(); derr != nil {
					err = decodeError(tag, derr)
				}
			case codecGob:
				if derr := gob.NewDecoder(bytes.NewReader(buf.B[1:])).Decode(resp); derr != nil {
					err = decodeError(tag, derr)
				}
			default:
				err = fmt.Errorf("wire: unknown codec 0x%02x", tag)
			}
		}
		if err != nil {
			bufpool.Put(buf)
			c.fail(fmt.Errorf("wire: receive: %w", err))
			return
		}
		if !aliases {
			// Nothing in resp points into the frame; recycle it right away.
			bufpool.Put(buf)
			buf = nil
		}
		c.deliver(id, resp, buf)
	}
}

// deliver routes one response to its in-flight caller, passing along the
// pooled buffer it aliases (nil when none). Responses for unregistered IDs
// are normal for calls abandoned by context cancellation — the late answer
// is simply discarded. (Duplicate or never-issued IDs are indistinguishable
// from that here; stream divergence still surfaces as decode errors.)
func (c *Client) deliver(id uint64, resp *response, buf *bufpool.Buf) {
	c.pmu.Lock()
	pc, ok := c.pending[id]
	if ok && (!pc.stream || !resp.More || resp.Err != "") {
		delete(c.pending, id)
	}
	c.pmu.Unlock()
	if !ok {
		bufpool.Put(buf)
		return
	}
	if pc.stream {
		// A slow streaming consumer exerts backpressure on the whole
		// connection; the buffer bounds how far the server can run
		// ahead. Abandoned streams drain themselves via Close or wake
		// up through the failed channel if the connection dies.
		select {
		case pc.ch <- callResult{resp: resp, buf: buf}:
		case <-c.failed:
			bufpool.Put(buf)
		}
		return
	}
	pc.ch <- callResult{resp: resp, buf: buf}
}

// register allocates a request ID and delivery state.
func (c *Client) register(stream bool) (uint64, *pendingCall, error) {
	id := c.nextID.Add(1)
	buffer := 1
	if stream {
		buffer = streamBuffer
	}
	pc := &pendingCall{ch: make(chan callResult, buffer), stream: stream}
	c.pmu.Lock()
	if err := c.failure; err != nil {
		c.pmu.Unlock()
		return 0, nil, err
	}
	c.pending[id] = pc
	c.pmu.Unlock()
	return id, pc, nil
}

// unregister drops a pending entry (used when a send fails before any
// response can arrive, and by cancellation paths that stop listening).
func (c *Client) unregister(id uint64) {
	c.pmu.Lock()
	delete(c.pending, id)
	c.pmu.Unlock()
}

// sendCancel fires an advisory opCancel for an in-flight request. It runs as
// its own round trip whose outcome is irrelevant: a server with cancel
// support stops the target's work, an older one answers unknown-op, and
// either response resolves this request normally.
func (c *Client) sendCancel(id uint64) {
	go func() {
		_, _ = c.call(context.Background(), &request{Op: opCancel, Cancel: id})
	}()
}

// call performs one request/response round trip, absorbing ErrServerBusy
// rejections per the WithBusyRetry policy.
func (c *Client) call(ctx context.Context, req *request) (*response, error) {
	resp, err := c.callOnce(ctx, req)
	for attempt := 1; attempt <= c.busyRetries && errors.Is(err, ErrServerBusy); attempt++ {
		if werr := sleepCtx(ctx, c.busyBackoff(attempt)); werr != nil {
			return nil, werr
		}
		resp, err = c.callOnce(ctx, req)
	}
	return resp, err
}

// callOnce performs one request/response round trip. Multiplexed
// connections allow any number of concurrent calls. A cancelled context
// returns immediately with ctx.Err(); the request keeps its ID registered
// so the server's (possibly already-sent) response is discarded cleanly.
func (c *Client) callOnce(ctx context.Context, req *request) (*response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c.lockstep {
		resp, err := c.roundTrip(req)
		if err == nil {
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, ctxErr
			}
		}
		return resp, err
	}
	id, pc, err := c.register(false)
	if err != nil {
		return nil, err
	}
	if err := c.w.sendRequest(id, req); err != nil {
		// A partial frame corrupts the stream for everyone; poison the
		// connection. fail delivers to pc.ch unless the reader already did.
		c.fail(fmt.Errorf("wire: send: %w", err))
	}
	select {
	case res := <-pc.ch:
		if res.err != nil {
			return nil, res.err
		}
		if res.resp.Err != "" {
			bufpool.Put(res.buf)
			return nil, wireError(res.resp.Err)
		}
		// Any pooled buffer the response aliases now belongs to the caller's
		// result and is reclaimed by the garbage collector — results of
		// simple calls have no close step that could return it earlier.
		return res.resp, nil
	case <-ctx.Done():
		// Advisory cancel; the entry stays registered so the eventual
		// response (buffered one slot) is consumed nowhere and dropped by
		// the read loop bookkeeping.
		c.sendCancel(id)
		return nil, ctx.Err()
	}
}

// wireError rehydrates provider-side error text, restoring the context
// sentinel errors and the load-shedding sentinels so
// errors.Is(err, context.Canceled), errors.Is(err, ErrServerBusy), and
// errors.Is(err, ErrRateLimited) work across the wire.
func wireError(msg string) error {
	switch msg {
	case context.Canceled.Error():
		return context.Canceled
	case context.DeadlineExceeded.Error():
		return context.DeadlineExceeded
	case ErrServerBusy.Error():
		return ErrServerBusy
	case ErrRateLimited.Error():
		return ErrRateLimited
	}
	return errors.New(msg)
}

// isUnknownOp reports whether a provider-side error is exactly the
// unknown-op reply a peer produces for an op it predates (see
// Server.dispatch). Matched by full-string equality so a genuine query
// error that merely mentions the words cannot misfire — engine errors
// always carry prefixes and quoted identifiers, so they can never equal
// this exact text.
func isUnknownOp(err error, o op) bool {
	return err != nil && err.Error() == fmt.Sprintf("wire: unknown op %d", o)
}

// roundTrip is the v1 lock-step path: a self-contained gob frame each way,
// holding the connection for the whole round trip. Response frames land in
// the client's pooled frameReader buffer, reused round trip to round trip;
// gob decoding copies out of it, so reuse is safe.
func (c *Client) roundTrip(req *request) (*response, error) {
	payload, err := encodeMsg(req)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, payload); err != nil {
		return nil, fmt.Errorf("wire: send: %w", err)
	}
	if c.fr.r == nil {
		c.fr.r = c.conn
	}
	raw, err := c.fr.read()
	if err != nil {
		return nil, fmt.Errorf("wire: receive: %w", err)
	}
	var resp response
	if err := decodeMsg(raw, &resp); err != nil {
		return nil, fmt.Errorf("wire: decode response: %w", err)
	}
	if resp.Err != "" {
		return nil, wireError(resp.Err)
	}
	return &resp, nil
}

// callBatch ships subs as one opBatch envelope: a single round trip
// regardless of len(subs). Sub-requests execute in order server-side; the
// first failure aborts the remainder.
func (c *Client) callBatch(ctx context.Context, subs []request) ([]response, error) {
	resp, err := c.call(ctx, &request{Op: opBatch, Subs: subs})
	if err != nil {
		return nil, err
	}
	if len(resp.Subs) != len(subs) {
		return nil, fmt.Errorf("wire: batch returned %d responses for %d requests", len(resp.Subs), len(subs))
	}
	return resp.Subs, nil
}

// Quote requests a remote attestation quote bound to nonce (setup step 2).
func (c *Client) Quote(nonce []byte) (enclave.Quote, error) {
	resp, err := c.call(context.Background(), &request{Op: opQuote, Nonce: nonce})
	if err != nil {
		return enclave.Quote{}, err
	}
	return resp.Quote, nil
}

// Provision ships the sealed master key to the provider's enclave.
func (c *Client) Provision(sk enclave.SealedKey) error {
	_, err := c.call(context.Background(), &request{Op: opProvision, Sealed: sk})
	return err
}

// ImportColumn bulk-loads a pre-built column split (setup step 4).
func (c *Client) ImportColumn(table, column string, data dict.SplitData) error {
	_, err := c.call(context.Background(), &request{Op: opImportColumn, Table: table, Column: column, Split: data})
	return err
}

// Schema fetches a table schema.
func (c *Client) Schema(table string) (engine.Schema, error) {
	resp, err := c.call(context.Background(), &request{Op: opSchema, Table: table})
	if err != nil {
		return engine.Schema{}, err
	}
	return resp.Schema, nil
}

// CreateTable registers a schema at the provider.
func (c *Client) CreateTable(s engine.Schema) error {
	_, err := c.call(context.Background(), &request{Op: opCreateTable, Schema: s})
	return err
}

// DropTable removes a table at the provider.
func (c *Client) DropTable(name string) error {
	_, err := c.call(context.Background(), &request{Op: opDropTable, Table: name})
	return err
}

// Select evaluates an encrypted query remotely, materializing the full
// result. Cancelling ctx abandons the call (and advises the server to stop
// the scan) without disturbing other traffic on the connection.
func (c *Client) Select(ctx context.Context, q engine.Query) (*engine.Result, error) {
	resp, err := c.call(ctx, &request{Op: opSelect, Query: q})
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, errors.New("wire: provider returned no result")
	}
	return resp.Result, nil
}

// SelectStream evaluates an encrypted query remotely and streams the result
// in chunks as the provider renders them, so the first rows arrive before
// the last are rendered and the full result never materializes on either
// side. Against providers that predate streaming (or on the v1 lock-step
// fallback) it degrades transparently to a materialized Select delivered as
// one chunk. The returned stream must be closed.
func (c *Client) SelectStream(ctx context.Context, q engine.Query) (engine.ResultStream, error) {
	if c.lockstep || c.noStream.Load() {
		// The materialized fallback goes through call, which already
		// applies the busy-retry policy.
		return c.materializedStream(ctx, q)
	}
	s, err := c.selectStreamOnce(ctx, q)
	for attempt := 1; attempt <= c.busyRetries && errors.Is(err, ErrServerBusy); attempt++ {
		if werr := sleepCtx(ctx, c.busyBackoff(attempt)); werr != nil {
			return nil, werr
		}
		s, err = c.selectStreamOnce(ctx, q)
	}
	return s, err
}

// selectStreamOnce makes one attempt at setting up a streamed Select. A
// busy rejection always arrives on the first frame — admission happens
// before any chunk is rendered — so retrying the whole setup never
// re-reads partial results.
func (c *Client) selectStreamOnce(ctx context.Context, q engine.Query) (engine.ResultStream, error) {
	if c.lockstep || c.noStream.Load() {
		return c.materializedStream(ctx, q)
	}
	id, pc, err := c.register(true)
	if err != nil {
		return nil, err
	}
	if err := c.w.sendRequest(id, &request{Op: opSelectStream, Query: q}); err != nil {
		c.fail(fmt.Errorf("wire: send: %w", err))
	}
	// Wait for the first frame before returning: it either proves the
	// server streams (chunk or terminator), reports a query error, or
	// reveals a pre-streaming server to fall back on.
	select {
	case res := <-pc.ch:
		if res.err != nil {
			return nil, res.err
		}
		if res.resp.Err != "" {
			bufpool.Put(res.buf)
			err := wireError(res.resp.Err)
			if isUnknownOp(err, opSelectStream) {
				c.noStream.Store(true)
				return c.materializedStream(ctx, q)
			}
			return nil, err
		}
		return &clientStream{c: c, ctx: ctx, id: id, pc: pc, head: res.resp, buf: res.buf, total: res.resp.N}, nil
	case <-ctx.Done():
		c.sendCancel(id)
		c.drainAbandoned(id, pc)
		return nil, ctx.Err()
	}
}

// materializedStream is the streaming fallback: one ordinary Select, served
// as a single chunk.
func (c *Client) materializedStream(ctx context.Context, q engine.Query) (engine.ResultStream, error) {
	res, err := c.Select(ctx, q)
	if err != nil {
		return nil, err
	}
	return engine.MaterializedStream(res), nil
}

// drainAbandoned unregisters a streaming request and discards chunks that
// already arrived (returning their frame buffers to the pool), letting the
// demux loop drop the rest.
func (c *Client) drainAbandoned(id uint64, pc *pendingCall) {
	c.unregister(id)
	for {
		select {
		case res := <-pc.ch:
			bufpool.Put(res.buf)
		default:
			return
		}
	}
}

// clientStream is the client half of a streamed Select: chunks arrive on the
// pending channel as the demux loop delivers them; the final frame (More
// unset) ends the stream.
//
// Chunk buffers recycle: on a v3 connection each chunk's rows alias a
// pooled frame buffer, which goes back to the pool when the consumer asks
// for the next chunk (or closes the stream). A chunk returned by Next is
// therefore valid only until the next Next or Close call — exactly the
// contract engine.ResultStream documents, and how proxy.Rows consumes it.
type clientStream struct {
	c   *Client
	ctx context.Context
	id  uint64
	pc  *pendingCall

	head      *response    // first frame, held back by SelectStream
	buf       *bufpool.Buf // frame buffer backing the chunk last handed out
	total     int
	done      bool
	cancelled bool
	err       error
}

// Next returns the next chunk, or io.EOF after the final frame.
func (s *clientStream) Next() (*engine.Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.done {
		return nil, io.EOF
	}
	for {
		resp := s.head
		s.head = nil
		if resp == nil {
			// The consumer is done with the previous chunk; its frame buffer
			// can carry the next one.
			s.putBuf()
			select {
			case res := <-s.pc.ch:
				if res.err != nil {
					return nil, s.finish(res.err)
				}
				resp = res.resp
				s.buf = res.buf
			case <-s.c.failed:
				return nil, s.finish(s.c.failErr())
			case <-s.ctx.Done():
				if !s.cancelled {
					s.cancelled = true
					s.c.sendCancel(s.id)
				}
				s.c.drainAbandoned(s.id, s.pc)
				return nil, s.finish(s.ctx.Err())
			}
		}
		if resp.Err != "" {
			return nil, s.finish(wireError(resp.Err))
		}
		if !resp.More {
			s.total = resp.N
			s.done = true
			s.putBuf()
			return nil, io.EOF
		}
		s.total = resp.N
		if resp.Result == nil {
			continue // defensive: a chunk frame always carries rows
		}
		return resp.Result, nil
	}
}

// putBuf returns the current chunk's frame buffer to the pool.
func (s *clientStream) putBuf() {
	bufpool.Put(s.buf)
	s.buf = nil
}

// finish records a terminal error and releases the current chunk buffer.
func (s *clientStream) finish(err error) error {
	s.err = err
	s.putBuf()
	return err
}

// Count returns the total match count, known from the first frame onward.
func (s *clientStream) Count() int { return s.total }

// Close ends the stream: an unfinished one is cancelled server-side and
// drained so the connection stays usable for other calls.
func (s *clientStream) Close() error {
	if s.done || s.err != nil {
		return nil
	}
	s.putBuf()
	if !s.cancelled {
		s.cancelled = true
		s.c.sendCancel(s.id)
	}
	// Drain to the final frame so the demux loop is never left blocked on
	// this stream's buffer.
	for {
		select {
		case res := <-s.pc.ch:
			bufpool.Put(res.buf)
			if res.err != nil || res.resp.Err != "" || !res.resp.More {
				s.done = true
				return nil
			}
		case <-s.c.failed:
			s.done = true
			return nil
		}
	}
}

// Insert appends an encrypted row.
func (c *Client) Insert(ctx context.Context, table string, row engine.Row) error {
	_, err := c.call(ctx, &request{Op: opInsert, Table: table, Row: row})
	return err
}

// InsertBatch appends rows in one round trip — the proxy's bulk-load fast
// path. Rows apply in order; on error, rows preceding the failing one
// remain inserted at the provider. On a lock-step fallback connection the
// peer may predate the batch envelope entirely, so the batch degrades to
// per-row round trips with the same ordering and abort semantics.
func (c *Client) InsertBatch(ctx context.Context, table string, rows []engine.Row) error {
	if len(rows) == 0 {
		return nil
	}
	if c.lockstep {
		for i, r := range rows {
			if err := c.Insert(ctx, table, r); err != nil {
				return fmt.Errorf("wire: batch insert row %d: %w", i, err)
			}
		}
		return nil
	}
	subs := make([]request, len(rows))
	for i, r := range rows {
		subs[i] = request{Op: opInsert, Table: table, Row: r}
	}
	resps, err := c.callBatch(ctx, subs)
	if err != nil {
		return err
	}
	for i := range resps {
		if resps[i].Err != "" && resps[i].Err != errBatchAborted {
			return fmt.Errorf("wire: batch insert row %d: %s", i, resps[i].Err)
		}
	}
	return nil
}

// Delete invalidates matching rows.
func (c *Client) Delete(ctx context.Context, table string, filters []engine.Filter) (int, error) {
	resp, err := c.call(ctx, &request{Op: opDelete, Table: table, Filters: filters})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Update rewrites matching rows.
func (c *Client) Update(ctx context.Context, table string, filters []engine.Filter, set engine.Row) (int, error) {
	resp, err := c.call(ctx, &request{Op: opUpdate, Table: table, Filters: filters, Set: set})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Merge folds the delta store remotely, waiting for the merge to apply.
// The provider-side rebuild runs off-lock, so concurrent calls on this and
// other connections keep being served while the merge is in flight.
func (c *Client) Merge(ctx context.Context, table string) error {
	_, err := c.call(ctx, &request{Op: opMerge, Table: table})
	return err
}

// MergeAsync starts a background merge at the provider and returns as soon
// as it is admitted. started is false when a merge was already in flight.
func (c *Client) MergeAsync(ctx context.Context, table string) (started bool, err error) {
	resp, err := c.call(ctx, &request{Op: opMergeAsync, Table: table})
	if err != nil {
		return false, err
	}
	return resp.N == 1, nil
}

// MergeStatus reports the remote table's delta/merge lifecycle state —
// how clients observe a background merge they triggered.
func (c *Client) MergeStatus(ctx context.Context, table string) (engine.MergeInfo, error) {
	resp, err := c.call(ctx, &request{Op: opMergeStatus, Table: table})
	if err != nil {
		return engine.MergeInfo{}, err
	}
	return resp.Merge, nil
}

// Tables lists remote tables.
func (c *Client) Tables() ([]string, error) {
	resp, err := c.call(context.Background(), &request{Op: opTables})
	if err != nil {
		return nil, err
	}
	return resp.Tables, nil
}

// Rows returns a remote table's total row count.
func (c *Client) Rows(table string) (int, error) {
	resp, err := c.call(context.Background(), &request{Op: opRows, Table: table})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// StorageBytes returns a remote table's storage footprint.
func (c *Client) StorageBytes(table string) (int, error) {
	resp, err := c.call(context.Background(), &request{Op: opStorageBytes, Table: table})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}
