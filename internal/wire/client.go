package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/engine"
)

// ErrClientClosed is returned by calls on (and pending during) Close.
var ErrClientClosed = errors.New("wire: client closed")

// errBatchAborted marks batch sub-responses skipped after an earlier
// sub-request failed.
const errBatchAborted = "wire: aborted by earlier batch failure"

// helloTimeout bounds version negotiation against unresponsive peers.
const helloTimeout = 5 * time.Second

// Client is the trusted side's connection to a remote EncDBDB provider. It
// implements proxy.Executor, so a proxy.Proxy can drive a remote database
// exactly like an embedded one, plus the attestation and bulk-load
// operations the data owner needs during setup.
//
// A Client is safe for concurrent use. On a multiplexed (v2) connection,
// concurrent calls stay in flight simultaneously: each request carries a
// connection-unique ID, a single reader goroutine demuxes the out-of-order
// responses, and writes are coalesced. Against a v1 server the client falls
// back to lock-step, serializing one round trip at a time.
type Client struct {
	conn net.Conn

	// lockstep marks a v1 connection; mu then serializes whole round trips.
	lockstep bool
	mu       sync.Mutex

	// Multiplexed state: pending maps in-flight request IDs to their
	// caller's channel; failure is sticky and poisons all future calls.
	w       *muxWriter
	nextID  atomic.Uint64
	pmu     sync.Mutex
	pending map[uint64]chan callResult
	failure error
}

type callResult struct {
	resp *response
	err  error
}

// Dial connects to a provider at addr and negotiates the multiplexed
// protocol. If the peer is a v1 lock-step server (it drops the connection
// on the negotiation magic), the client redials and falls back
// transparently.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	c, err := negotiate(conn)
	if err == nil {
		return c, nil
	}
	conn.Close()
	return DialLockstep(addr)
}

// DialLockstep connects with the original v1 lock-step protocol: one
// request/response round trip at a time, no negotiation bytes on the wire.
// Dial falls back to it automatically; calling it directly is mainly useful
// for benchmarking against the multiplexed path and for very old servers.
func DialLockstep(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, lockstep: true}, nil
}

// negotiate performs the v2 hello exchange and starts the reader.
func negotiate(conn net.Conn) (*Client, error) {
	if err := conn.SetDeadline(time.Now().Add(helloTimeout)); err != nil {
		return nil, err
	}
	if err := writeHello(conn, protoV2); err != nil {
		return nil, err
	}
	ver, err := readHello(conn)
	if err != nil {
		return nil, err
	}
	if ver < protoV2 {
		return nil, fmt.Errorf("wire: server negotiated unsupported version %d", ver)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		w:       newMuxWriter(conn),
		pending: make(map[uint64]chan callResult),
	}
	go c.readLoop()
	return c, nil
}

// Multiplexed reports whether the connection negotiated the multiplexed
// protocol (false means the v1 lock-step fallback).
func (c *Client) Multiplexed() bool { return !c.lockstep }

// healthy reports whether the connection is still usable. Multiplexed
// connections fail sticky; lock-step connections carry no failure state
// and are presumed healthy.
func (c *Client) healthy() bool {
	if c.lockstep {
		return true
	}
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.failure == nil
}

// Close terminates the connection. Pending multiplexed calls complete with
// ErrClientClosed; none hang.
func (c *Client) Close() error {
	if c.lockstep {
		return c.conn.Close()
	}
	c.fail(ErrClientClosed)
	return nil
}

// fail poisons the client: the first failure sticks, the connection closes,
// and every pending caller is completed with err.
func (c *Client) fail(err error) {
	c.pmu.Lock()
	if c.failure == nil {
		c.failure = err
	}
	pending := c.pending
	c.pending = make(map[uint64]chan callResult)
	c.pmu.Unlock()
	c.conn.Close()
	for _, ch := range pending {
		ch <- callResult{err: err}
	}
}

// readLoop demuxes responses to their in-flight callers — the only reader
// of a multiplexed connection.
func (c *Client) readLoop() {
	mr := newMuxReader(bufio.NewReader(c.conn))
	for {
		resp := new(response)
		id, err := mr.next(resp)
		if err != nil {
			c.fail(fmt.Errorf("wire: receive: %w", err))
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[id]
		delete(c.pending, id)
		c.pmu.Unlock()
		if !ok {
			// A duplicate or never-issued ID means the streams have
			// diverged; nothing on this connection can be trusted anymore.
			c.fail(fmt.Errorf("wire: response for unknown request id %d", id))
			return
		}
		ch <- callResult{resp: resp}
	}
}

// call performs one request/response round trip. Multiplexed connections
// allow any number of concurrent calls.
func (c *Client) call(req *request) (*response, error) {
	if c.lockstep {
		return c.roundTrip(req)
	}
	id := c.nextID.Add(1)
	ch := make(chan callResult, 1)
	c.pmu.Lock()
	if err := c.failure; err != nil {
		c.pmu.Unlock()
		return nil, err
	}
	c.pending[id] = ch
	c.pmu.Unlock()
	if err := c.w.send(id, req); err != nil {
		// A partial frame corrupts the stream for everyone; poison the
		// connection. fail delivers to ch unless the reader already did.
		c.fail(fmt.Errorf("wire: send: %w", err))
	}
	res := <-ch
	if res.err != nil {
		return nil, res.err
	}
	if res.resp.Err != "" {
		return nil, errors.New(res.resp.Err)
	}
	return res.resp, nil
}

// roundTrip is the v1 lock-step path: a self-contained gob frame each way,
// holding the connection for the whole round trip.
func (c *Client) roundTrip(req *request) (*response, error) {
	payload, err := encodeMsg(req)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, payload); err != nil {
		return nil, fmt.Errorf("wire: send: %w", err)
	}
	raw, err := readFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("wire: receive: %w", err)
	}
	var resp response
	if err := decodeMsg(raw, &resp); err != nil {
		return nil, fmt.Errorf("wire: decode response: %w", err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

// callBatch ships subs as one opBatch envelope: a single round trip
// regardless of len(subs). Sub-requests execute in order server-side; the
// first failure aborts the remainder.
func (c *Client) callBatch(subs []request) ([]response, error) {
	resp, err := c.call(&request{Op: opBatch, Subs: subs})
	if err != nil {
		return nil, err
	}
	if len(resp.Subs) != len(subs) {
		return nil, fmt.Errorf("wire: batch returned %d responses for %d requests", len(resp.Subs), len(subs))
	}
	return resp.Subs, nil
}

// Quote requests a remote attestation quote bound to nonce (setup step 2).
func (c *Client) Quote(nonce []byte) (enclave.Quote, error) {
	resp, err := c.call(&request{Op: opQuote, Nonce: nonce})
	if err != nil {
		return enclave.Quote{}, err
	}
	return resp.Quote, nil
}

// Provision ships the sealed master key to the provider's enclave.
func (c *Client) Provision(sk enclave.SealedKey) error {
	_, err := c.call(&request{Op: opProvision, Sealed: sk})
	return err
}

// ImportColumn bulk-loads a pre-built column split (setup step 4).
func (c *Client) ImportColumn(table, column string, data dict.SplitData) error {
	_, err := c.call(&request{Op: opImportColumn, Table: table, Column: column, Split: data})
	return err
}

// Schema fetches a table schema.
func (c *Client) Schema(table string) (engine.Schema, error) {
	resp, err := c.call(&request{Op: opSchema, Table: table})
	if err != nil {
		return engine.Schema{}, err
	}
	return resp.Schema, nil
}

// CreateTable registers a schema at the provider.
func (c *Client) CreateTable(s engine.Schema) error {
	_, err := c.call(&request{Op: opCreateTable, Schema: s})
	return err
}

// DropTable removes a table at the provider.
func (c *Client) DropTable(name string) error {
	_, err := c.call(&request{Op: opDropTable, Table: name})
	return err
}

// Select evaluates an encrypted query remotely.
func (c *Client) Select(q engine.Query) (*engine.Result, error) {
	resp, err := c.call(&request{Op: opSelect, Query: q})
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, errors.New("wire: provider returned no result")
	}
	return resp.Result, nil
}

// Insert appends an encrypted row.
func (c *Client) Insert(table string, row engine.Row) error {
	_, err := c.call(&request{Op: opInsert, Table: table, Row: row})
	return err
}

// InsertBatch appends rows in one round trip — the proxy's bulk-load fast
// path. Rows apply in order; on error, rows preceding the failing one
// remain inserted at the provider. On a lock-step fallback connection the
// peer may predate the batch envelope entirely, so the batch degrades to
// per-row round trips with the same ordering and abort semantics.
func (c *Client) InsertBatch(table string, rows []engine.Row) error {
	if len(rows) == 0 {
		return nil
	}
	if c.lockstep {
		for i, r := range rows {
			if err := c.Insert(table, r); err != nil {
				return fmt.Errorf("wire: batch insert row %d: %w", i, err)
			}
		}
		return nil
	}
	subs := make([]request, len(rows))
	for i, r := range rows {
		subs[i] = request{Op: opInsert, Table: table, Row: r}
	}
	resps, err := c.callBatch(subs)
	if err != nil {
		return err
	}
	for i := range resps {
		if resps[i].Err != "" && resps[i].Err != errBatchAborted {
			return fmt.Errorf("wire: batch insert row %d: %s", i, resps[i].Err)
		}
	}
	return nil
}

// Delete invalidates matching rows.
func (c *Client) Delete(table string, filters []engine.Filter) (int, error) {
	resp, err := c.call(&request{Op: opDelete, Table: table, Filters: filters})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Update rewrites matching rows.
func (c *Client) Update(table string, filters []engine.Filter, set engine.Row) (int, error) {
	resp, err := c.call(&request{Op: opUpdate, Table: table, Filters: filters, Set: set})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Merge folds the delta store remotely, waiting for the merge to apply.
// The provider-side rebuild runs off-lock, so concurrent calls on this and
// other connections keep being served while the merge is in flight.
func (c *Client) Merge(table string) error {
	_, err := c.call(&request{Op: opMerge, Table: table})
	return err
}

// MergeAsync starts a background merge at the provider and returns as soon
// as it is admitted. started is false when a merge was already in flight.
func (c *Client) MergeAsync(table string) (started bool, err error) {
	resp, err := c.call(&request{Op: opMergeAsync, Table: table})
	if err != nil {
		return false, err
	}
	return resp.N == 1, nil
}

// MergeStatus reports the remote table's delta/merge lifecycle state —
// how clients observe a background merge they triggered.
func (c *Client) MergeStatus(table string) (engine.MergeInfo, error) {
	resp, err := c.call(&request{Op: opMergeStatus, Table: table})
	if err != nil {
		return engine.MergeInfo{}, err
	}
	return resp.Merge, nil
}

// Tables lists remote tables.
func (c *Client) Tables() ([]string, error) {
	resp, err := c.call(&request{Op: opTables})
	if err != nil {
		return nil, err
	}
	return resp.Tables, nil
}

// Rows returns a remote table's total row count.
func (c *Client) Rows(table string) (int, error) {
	resp, err := c.call(&request{Op: opRows, Table: table})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// StorageBytes returns a remote table's storage footprint.
func (c *Client) StorageBytes(table string) (int, error) {
	resp, err := c.call(&request{Op: opStorageBytes, Table: table})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}
