package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/engine"
)

// Client is the trusted side's connection to a remote EncDBDB provider. It
// implements proxy.Executor, so a proxy.Proxy can drive a remote database
// exactly like an embedded one, plus the attestation and bulk-load
// operations the data owner needs during setup.
//
// A Client serializes requests over one connection; it is safe for
// concurrent use.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a provider at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return &Client{conn: conn}, nil
}

// Close terminates the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

// call performs one request/response round trip.
func (c *Client) call(req *request) (*response, error) {
	payload, err := encodeMsg(req)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := writeFrame(c.conn, payload); err != nil {
		return nil, fmt.Errorf("wire: send: %w", err)
	}
	raw, err := readFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("wire: receive: %w", err)
	}
	var resp response
	if err := decodeMsg(raw, &resp); err != nil {
		return nil, fmt.Errorf("wire: decode response: %w", err)
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

// Quote requests a remote attestation quote bound to nonce (setup step 2).
func (c *Client) Quote(nonce []byte) (enclave.Quote, error) {
	resp, err := c.call(&request{Op: opQuote, Nonce: nonce})
	if err != nil {
		return enclave.Quote{}, err
	}
	return resp.Quote, nil
}

// Provision ships the sealed master key to the provider's enclave.
func (c *Client) Provision(sk enclave.SealedKey) error {
	_, err := c.call(&request{Op: opProvision, Sealed: sk})
	return err
}

// ImportColumn bulk-loads a pre-built column split (setup step 4).
func (c *Client) ImportColumn(table, column string, data dict.SplitData) error {
	_, err := c.call(&request{Op: opImportColumn, Table: table, Column: column, Split: data})
	return err
}

// Schema fetches a table schema.
func (c *Client) Schema(table string) (engine.Schema, error) {
	resp, err := c.call(&request{Op: opSchema, Table: table})
	if err != nil {
		return engine.Schema{}, err
	}
	return resp.Schema, nil
}

// CreateTable registers a schema at the provider.
func (c *Client) CreateTable(s engine.Schema) error {
	_, err := c.call(&request{Op: opCreateTable, Schema: s})
	return err
}

// DropTable removes a table at the provider.
func (c *Client) DropTable(name string) error {
	_, err := c.call(&request{Op: opDropTable, Table: name})
	return err
}

// Select evaluates an encrypted query remotely.
func (c *Client) Select(q engine.Query) (*engine.Result, error) {
	resp, err := c.call(&request{Op: opSelect, Query: q})
	if err != nil {
		return nil, err
	}
	if resp.Result == nil {
		return nil, errors.New("wire: provider returned no result")
	}
	return resp.Result, nil
}

// Insert appends an encrypted row.
func (c *Client) Insert(table string, row engine.Row) error {
	_, err := c.call(&request{Op: opInsert, Table: table, Row: row})
	return err
}

// Delete invalidates matching rows.
func (c *Client) Delete(table string, filters []engine.Filter) (int, error) {
	resp, err := c.call(&request{Op: opDelete, Table: table, Filters: filters})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Update rewrites matching rows.
func (c *Client) Update(table string, filters []engine.Filter, set engine.Row) (int, error) {
	resp, err := c.call(&request{Op: opUpdate, Table: table, Filters: filters, Set: set})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Merge folds the delta store remotely.
func (c *Client) Merge(table string) error {
	_, err := c.call(&request{Op: opMerge, Table: table})
	return err
}

// Tables lists remote tables.
func (c *Client) Tables() ([]string, error) {
	resp, err := c.call(&request{Op: opTables})
	if err != nil {
		return nil, err
	}
	return resp.Tables, nil
}

// Rows returns a remote table's total row count.
func (c *Client) Rows(table string) (int, error) {
	resp, err := c.call(&request{Op: opRows, Table: table})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// StorageBytes returns a remote table's storage footprint.
func (c *Client) StorageBytes(table string) (int, error) {
	resp, err := c.call(&request{Op: opStorageBytes, Table: table})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}
