package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"testing"
	"time"

	"github.com/encdbdb/encdbdb/internal/enclave"
	"github.com/encdbdb/encdbdb/internal/engine"
)

// startStreamServer hosts a plaintext-only engine with a small stream chunk
// so modest tables exercise multi-chunk streaming. legacy emulates a v2
// server built before opSelectStream/opCancel existed.
func startStreamServer(t testing.TB, chunk int, legacy bool) (*Server, string) {
	t.Helper()
	srv := NewServer(engine.New(nil, engine.WithStreamChunk(chunk)), t.Logf)
	srv.legacyOps = legacy
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // ends with Close
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// loadPlainRows creates a plain one-column table and inserts n rows v000..
func loadPlainRows(t testing.TB, c *Client, table string, n int) {
	t.Helper()
	if err := c.CreateTable(plainSchema(table)); err != nil {
		t.Fatal(err)
	}
	rows := make([]engine.Row, n)
	for i := range rows {
		rows[i] = engine.Row{"c": fmt.Appendf(nil, "v%03d", i)}
	}
	if err := c.InsertBatch(context.Background(), table, rows); err != nil {
		t.Fatal(err)
	}
}

// allRange matches every v### value of a plain test column.
func allRange() engine.Filter {
	return engine.SingleRange("c", enclave.EncRange{
		Start: []byte("v"), End: []byte("w"), StartIncl: true,
	})
}

// TestSelectStreamOverWire pins the chunked-result-frame protocol: the rows
// arrive across multiple frames and equal a materialized Select.
func TestSelectStreamOverWire(t *testing.T) {
	_, addr := startStreamServer(t, 4, false)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	loadPlainRows(t, c, "t", 19)

	ctx := context.Background()
	q := engine.Query{Table: "t", Filters: []engine.Filter{allRange()}}
	want, err := c.Select(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.SelectStream(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var got [][]byte
	chunks := 0
	for {
		chunk, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		chunks++
		got = append(got, chunk.Columns[0].Cells...)
	}
	if chunks < 2 {
		t.Fatalf("chunks = %d, want >= 2 (19 rows, chunk 4)", chunks)
	}
	if st.Count() != want.Count || len(got) != want.Count {
		t.Fatalf("stream count = %d/%d rows, want %d", st.Count(), len(got), want.Count)
	}
	for i := range got {
		if string(got[i]) != string(want.Columns[0].Cells[i]) {
			t.Fatalf("row %d = %q, want %q", i, got[i], want.Columns[0].Cells[i])
		}
	}
	// The connection stays fully usable after a completed stream.
	if _, err := c.Rows("t"); err != nil {
		t.Fatalf("Rows after stream: %v", err)
	}
}

// TestSelectStreamFallbackOldServer: a v2 server that predates
// opSelectStream answers unknown-op; the client transparently falls back to
// a materialized Select served as one chunk — new-client <-> old-server
// compatibility.
func TestSelectStreamFallbackOldServer(t *testing.T) {
	_, addr := startStreamServer(t, 4, true)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	loadPlainRows(t, c, "t", 10)

	st, err := c.SelectStream(context.Background(), engine.Query{Table: "t", Filters: []engine.Filter{allRange()}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rows := 0
	chunks := 0
	for {
		chunk, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		chunks++
		rows += chunk.Count
	}
	if chunks != 1 || rows != 10 {
		t.Fatalf("fallback stream = %d chunks / %d rows, want 1 / 10", chunks, rows)
	}
	if !c.noStream.Load() {
		t.Fatal("client did not record the server's missing streaming support")
	}
	// Later streams skip the probe and still work.
	st2, err := c.SelectStream(context.Background(), engine.Query{Table: "t", CountOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	st2.Close()
}

// TestCancelIgnoredByOldServer: cancelling against a server that predates
// opCancel must not wedge or poison the connection — the advisory cancel
// gets an unknown-op reply that is ignored, the call returns ctx.Err()
// immediately, and the late real response is discarded.
func TestCancelIgnoredByOldServer(t *testing.T) {
	_, addr := startStreamServer(t, 4, true)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	loadPlainRows(t, c, "t", 10)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = c.Select(ctx, engine.Query{Table: "t", Filters: []engine.Filter{allRange()}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Select err = %v, want context.Canceled", err)
	}
	// Give the advisory cancel's unknown-op reply time to arrive; it must
	// not poison anything.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if n, err := c.Rows("t"); err != nil {
			t.Fatalf("Rows after ignored cancel: %v", err)
		} else if n == 10 {
			time.Sleep(10 * time.Millisecond)
		}
		if !c.healthy() {
			t.Fatal("connection poisoned by ignored cancel")
		}
		break
	}
}

// TestSelectCancelOverWire: cancelling mid-stream returns context.Canceled
// and leaves the connection usable for subsequent calls.
func TestSelectCancelOverWire(t *testing.T) {
	_, addr := startStreamServer(t, 2, false)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	loadPlainRows(t, c, "t", 50)

	ctx, cancel := context.WithCancel(context.Background())
	st, err := c.SelectStream(ctx, engine.Query{Table: "t", Filters: []engine.Filter{allRange()}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); err != nil {
		t.Fatalf("first chunk: %v", err)
	}
	cancel()
	for {
		_, err = st.Next()
		if err != nil {
			break
		}
	}
	if !errors.Is(err, context.Canceled) && err != io.EOF {
		t.Fatalf("Next after cancel = %v, want context.Canceled (or EOF if the race finished first)", err)
	}
	st.Close()
	// The connection survives the cancelled stream.
	if n, err := c.Rows("t"); err != nil || n != 50 {
		t.Fatalf("Rows after cancelled stream = %d, %v", n, err)
	}
}

// TestStreamCloseMidway abandons a stream without reading it to the end;
// Close must cancel server-side, drain, and keep the connection healthy.
func TestStreamCloseMidway(t *testing.T) {
	_, addr := startStreamServer(t, 2, false)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	loadPlainRows(t, c, "t", 60)

	st, err := c.SelectStream(context.Background(), engine.Query{Table: "t", Filters: []engine.Filter{allRange()}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Next(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Rows("t"); err != nil || n != 60 {
		t.Fatalf("Rows after abandoned stream = %d, %v", n, err)
	}
}

// TestOldClientNewServer: a client that never uses the new ops (the v1
// lock-step fallback — the oldest client shape on the wire) works unchanged
// against a server with streaming and cancel support.
func TestOldClientNewServer(t *testing.T) {
	_, addr := startStreamServer(t, 4, false)
	c, err := DialLockstep(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	loadPlainRows(t, c, "t", 12)

	res, err := c.Select(context.Background(), engine.Query{Table: "t", Filters: []engine.Filter{allRange()}})
	if err != nil || res.Count != 12 {
		t.Fatalf("lockstep Select = %v, %v; want 12 rows", res, err)
	}
	// SelectStream on lock-step degrades to a materialized single chunk.
	st, err := c.SelectStream(context.Background(), engine.Query{Table: "t", Filters: []engine.Filter{allRange()}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	chunk, err := st.Next()
	if err != nil || chunk.Count != 12 {
		t.Fatalf("lockstep stream chunk = %v, %v; want 12 rows", chunk, err)
	}
	if _, err := st.Next(); err != io.EOF {
		t.Fatalf("second chunk = %v, want io.EOF", err)
	}
}

// TestConcurrentStreamsAndCalls interleaves streams with ordinary calls on
// one multiplexed connection.
func TestConcurrentStreamsAndCalls(t *testing.T) {
	_, addr := startStreamServer(t, 2, false)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	loadPlainRows(t, c, "t", 40)

	st, err := c.SelectStream(context.Background(), engine.Query{Table: "t", Filters: []engine.Filter{allRange()}})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rows := 0
	for {
		chunk, err := st.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows += chunk.Count
		// An unrelated call on the same connection mid-stream.
		if _, err := c.Rows("t"); err != nil {
			t.Fatalf("interleaved Rows: %v", err)
		}
	}
	if rows != 40 {
		t.Fatalf("streamed rows = %d, want 40", rows)
	}
}
