package wire

import (
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/encdbdb/encdbdb/internal/metrics"
)

// TestTokenBucket pins the bucket arithmetic: a fresh bucket holds its burst,
// refills continuously at the configured rate, and never overflows the burst.
func TestTokenBucket(t *testing.T) {
	b := newTokenBucket(2) // 2 rps, burst 2
	now := b.last
	if !b.allow(now) || !b.allow(now) {
		t.Fatal("fresh bucket must allow its burst")
	}
	if b.allow(now) {
		t.Fatal("empty bucket must reject")
	}
	// Half a second refills one token at 2 rps.
	now = now.Add(500 * time.Millisecond)
	if !b.allow(now) {
		t.Fatal("refilled bucket must allow")
	}
	if b.allow(now) {
		t.Fatal("single refilled token must not allow twice")
	}
	// A long idle period caps at the burst, not the elapsed budget.
	now = now.Add(time.Hour)
	if !b.allow(now) || !b.allow(now) {
		t.Fatal("idle bucket must hold its burst")
	}
	if b.allow(now) {
		t.Fatal("idle bucket must not exceed its burst")
	}
}

// TestConnRateLimit checks the end-to-end shed: a connection that exhausts
// its budget gets the typed ErrRateLimited sentinel across the wire — no
// server-side work starts — and the shed is counted. The rate is tiny so the
// bucket cannot refill mid-test.
func TestConnRateLimit(t *testing.T) {
	reg := metrics.NewRegistry()
	srv, addr := startAdmissionServer(t, nil,
		WithConnRate(0.001), WithMetrics(reg), WithDrainTimeout(time.Second))
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Burst is max(1, rate) = 1: the first request spends it...
	if err := c.CreateTable(plainSchema("rl")); err != nil {
		t.Fatal(err)
	}
	// ...and every further request on this connection is shed, typed.
	_, shedErr := c.Rows("rl")
	if !errors.Is(shedErr, ErrRateLimited) {
		t.Fatalf("over-budget request: err = %v, want ErrRateLimited", shedErr)
	}
	if errors.Is(shedErr, ErrServerBusy) {
		t.Fatal("rate-limit shed must not alias the busy sentinel")
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "encdbdb_wire_rate_limited_total 1") {
		t.Errorf("exposition missing rate-limited counter; got:\n%s", b.String())
	}
	// A fresh connection brings a fresh bucket: the limit is per connection,
	// not per server.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if n, err := c2.Rows("rl"); err != nil || n != 0 {
		t.Fatalf("fresh connection = %d, %v; want 0, nil", n, err)
	}
}

// TestConnRateLimitLockstep covers the same shed on the v1 lock-step loop.
func TestConnRateLimitLockstep(t *testing.T) {
	srv, addr := startAdmissionServer(t, nil,
		WithConnRate(0.001), WithDrainTimeout(time.Second))
	t.Cleanup(func() { srv.Close() })
	c, err := DialLockstep(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable(plainSchema("rlls")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Rows("rlls"); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-budget lock-step request: err = %v, want ErrRateLimited", err)
	}
}
