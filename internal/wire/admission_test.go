package wire

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/metrics"
)

// startAdmissionServer builds a plaintext provider whose dispatchHook is
// installed before Serve starts, so the hook write happens-before any
// worker reads it.
func startAdmissionServer(t *testing.T, hook func(req *request), opts ...ServerOption) (*Server, string) {
	t.Helper()
	srv := NewServer(engine.New(nil), t.Logf, opts...)
	srv.dispatchHook = hook
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln) //nolint:errcheck // ends with Close
	return srv, ln.Addr().String()
}

// TestSaturationReturnsBusy pins the admission-control contract: once the
// dispatch queue is full, further requests are shed immediately with the
// typed ErrServerBusy sentinel — the client does not queue behind the
// saturated workers — and parked in-flight requests still complete once
// the saturation clears.
func TestSaturationReturnsBusy(t *testing.T) {
	entered := make(chan struct{}, 4)
	release := make(chan struct{})
	srv, addr := startAdmissionServer(t, func(req *request) {
		if req.Op == opRows {
			entered <- struct{}{}
			<-release
		}
	}, WithConnWorkers(1), WithQueueDepth(1), WithDrainTimeout(time.Second))
	var once sync.Once
	unpark := func() { once.Do(func() { close(release) }) }
	t.Cleanup(func() {
		unpark()
		srv.Close()
	})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable(plainSchema("adm")); err != nil {
		t.Fatal(err)
	}
	// First request takes the only queue slot and parks inside the hook.
	parked := make(chan error, 1)
	go func() {
		_, err := c.Rows("adm")
		parked <- err
	}()
	<-entered
	// The queue is now provably full: the next request must be shed, fast
	// and typed, while the first request is still running.
	start := time.Now()
	if _, err := c.Rows("adm"); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("saturated request: err = %v, want ErrServerBusy", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("busy rejection took %v, want immediate", d)
	}
	// Shedding must not have wedged the admitted request.
	unpark()
	if err := <-parked; err != nil {
		t.Fatalf("parked request after release: %v", err)
	}
	// And with the queue drained, new requests are admitted again.
	if n, err := c.Rows("adm"); err != nil || n != 0 {
		t.Fatalf("post-saturation request = %d, %v; want 0, nil", n, err)
	}
}

// TestRequestDeadlineAcrossWire checks WithRequestTimeout: a request whose
// execution starts after its budget is spent fails with
// context.DeadlineExceeded, and the sentinel survives the wire so clients
// can errors.Is on it.
func TestRequestDeadlineAcrossWire(t *testing.T) {
	srv, addr := startAdmissionServer(t, func(req *request) {
		if req.Op == opSelect {
			time.Sleep(120 * time.Millisecond)
		}
	}, WithRequestTimeout(20*time.Millisecond), WithDrainTimeout(time.Second))
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable(plainSchema("dl")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Select(context.Background(), engine.Query{Table: "dl"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired request: err = %v, want context.DeadlineExceeded", err)
	}
	// Requests that fit their budget are unaffected.
	if n, err := c.Rows("dl"); err != nil || n != 0 {
		t.Fatalf("in-budget request = %d, %v; want 0, nil", n, err)
	}
}

// TestCloseDrainAnswersAccepted pins the graceful-drain contract: requests
// admitted before Close keep executing and their responses are delivered,
// so a client whose request was accepted gets an answer, not a reset.
func TestCloseDrainAnswersAccepted(t *testing.T) {
	const parked = 3
	entered := make(chan struct{}, parked)
	release := make(chan struct{})
	srv, addr := startAdmissionServer(t, func(req *request) {
		if req.Op == opInsert {
			entered <- struct{}{}
			<-release
		}
	}, WithDrainTimeout(5*time.Second))
	var once sync.Once
	unpark := func() { once.Do(func() { close(release) }) }
	t.Cleanup(unpark)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable(plainSchema("drain2")); err != nil {
		t.Fatal(err)
	}
	results := make(chan error, parked)
	for i := 0; i < parked; i++ {
		go func() {
			results <- c.Insert(context.Background(), "drain2", engine.Row{"c": []byte("v")})
		}()
	}
	for i := 0; i < parked; i++ {
		<-entered
	}
	// Close with all three admitted and parked. It must block on the drain,
	// then deliver all three responses.
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	time.Sleep(50 * time.Millisecond) // let Close interrupt the read loops
	unpark()
	for i := 0; i < parked; i++ {
		if err := <-results; err != nil {
			t.Errorf("drained request %d: %v", i, err)
		}
	}
	if err := <-closed; err != nil {
		t.Errorf("Close: %v", err)
	}
}

// TestServerMetricsScrape end-to-ends WithMetrics: after real traffic the
// registry's exposition must carry the wire families with plausible values.
func TestServerMetricsScrape(t *testing.T) {
	reg := metrics.NewRegistry()
	srv, addr := startAdmissionServer(t, nil, WithMetrics(reg), WithDrainTimeout(time.Second))
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateTable(plainSchema("m")); err != nil {
		t.Fatal(err)
	}
	if err := c.Insert(context.Background(), "m", engine.Row{"c": []byte("v")}); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Rows("m"); err != nil || n != 1 {
		t.Fatalf("rows = %d, %v", n, err)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	for _, want := range []string{
		"encdbdb_wire_connections_total 1",
		"encdbdb_wire_connections_active 1",
		`encdbdb_wire_requests_total{op="create_table"} 1`,
		`encdbdb_wire_requests_total{op="insert"} 1`,
		`encdbdb_wire_requests_total{op="rows"} 1`,
		`encdbdb_wire_request_seconds_count{op="rows"} 1`,
		"encdbdb_wire_rejected_total 0",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, got)
		}
	}
	// Byte counters must have seen the traffic.
	if strings.Contains(got, "encdbdb_wire_read_bytes_total 0\n") {
		t.Error("read byte counter stayed zero")
	}
	if strings.Contains(got, "encdbdb_wire_written_bytes_total 0\n") {
		t.Error("written byte counter stayed zero")
	}
}
