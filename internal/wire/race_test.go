//go:build race

package wire

// raceEnabled reports that this binary runs under the race detector, whose
// instrumentation allocates on paths that are allocation-free in normal
// builds; the allocation-budget tests skip themselves when it is set.
const raceEnabled = true
