package wire

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"github.com/encdbdb/encdbdb/internal/dict"
	"github.com/encdbdb/encdbdb/internal/engine"
	"github.com/encdbdb/encdbdb/internal/metrics"
)

// defaultConnWorkers is the default per-connection dispatch concurrency for
// multiplexed connections.
const defaultConnWorkers = 16

// queuedPerWorker scales the default per-connection bound on decoded-but-
// not-yet-finished requests: connWorkers*queuedPerWorker outstanding
// requests are admitted before further requests are shed with
// ErrServerBusy. Large enough to absorb bursts, small enough to bound the
// memory a peer that never reads responses can pin; WithQueueDepth
// overrides it.
const queuedPerWorker = 64

// defaultDrainTimeout bounds Close's graceful drain: in-flight requests get
// this long to finish and write their responses before connections are
// force-closed.
const defaultDrainTimeout = 10 * time.Second

// ErrServerBusy is the admission-control rejection: the connection's
// dispatch queue is full (every WithConnWorkers worker is executing and
// WithQueueDepth requests are already waiting), so the server sheds the
// request immediately instead of queueing it unboundedly. It crosses the
// wire as a typed sentinel — clients get errors.Is(err, ErrServerBusy) ==
// true and should back off and retry; no server-side work was started.
var ErrServerBusy = errors.New("wire: server busy")

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithConnWorkers bounds how many requests of one multiplexed connection may
// execute concurrently (default 16). Values below 1 mean sequential
// dispatch. Lock-step (v1) connections are always sequential by protocol.
func WithConnWorkers(n int) ServerOption {
	return func(s *Server) {
		if n < 1 {
			n = 1
		}
		s.connWorkers = n
	}
}

// WithQueueDepth bounds how many admitted requests may be outstanding
// (queued + executing) per multiplexed connection before new requests are
// shed with ErrServerBusy (default connWorkers x 64). The bound is what
// turns saturation into fast, typed rejections instead of unbounded
// queueing: clients see ErrServerBusy in microseconds rather than timing
// out behind a queue that can only grow.
func WithQueueDepth(n int) ServerOption {
	return func(s *Server) {
		if n < 1 {
			n = 1
		}
		s.queueDepth = n
	}
}

// WithRequestTimeout attaches a deadline to every dispatched request,
// measured from the moment the request is decoded — queue wait counts, so a
// request stuck behind a saturated worker pool fails fast once its budget
// is spent. Exceeding the deadline surfaces as context.DeadlineExceeded at
// the client (the sentinel is rehydrated across the wire). Zero (the
// default) means no deadline.
func WithRequestTimeout(d time.Duration) ServerOption {
	return func(s *Server) {
		s.reqTimeout = d
	}
}

// WithDrainTimeout bounds how long Close waits for in-flight requests to
// finish before force-closing connections (default 10s).
func WithDrainTimeout(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.drainTimeout = d
		}
	}
}

// WithMetrics registers the wire server's metric families (request counts,
// per-op latency histograms, admission-control outcomes, connection and
// byte totals — see docs/metrics.md) on reg and records into them. Without
// it the server runs with zero instrumentation overhead.
func WithMetrics(reg *metrics.Registry) ServerOption {
	return func(s *Server) {
		s.metrics = newServerMetrics(reg)
	}
}

// Server hosts an engine.DB behind the wire protocol — the untrusted DBaaS
// provider process of paper Fig. 2, including the enclave ECALL endpoints
// (quote, provision) the data owner needs for setup.
//
// Each accepted connection is sniffed for the negotiation magic: v2 clients
// get multiplexed service where every decoded request runs on its own
// goroutine (bounded by WithConnWorkers) and responses are written under a
// per-connection write lock, out of order; v1 clients get the original
// lock-step loop.
//
// The server applies admission control per connection: at most
// WithQueueDepth requests may be outstanding (shed beyond that with
// ErrServerBusy), and WithRequestTimeout attaches a deadline to each
// dispatched request. Close drains gracefully — accepted requests finish
// and their responses are delivered before connections close.
type Server struct {
	db           *engine.DB
	logf         func(format string, args ...any)
	connWorkers  int
	queueDepth   int
	reqTimeout   time.Duration
	drainTimeout time.Duration
	metrics      *serverMetrics

	// legacyOps makes the server answer the post-PR ops (opSelectStream,
	// opCancel) with unknown-op errors, emulating a v2 peer built before
	// they existed. Tests use it to pin the compatibility fallbacks.
	legacyOps bool

	// dispatchHook, when non-nil, runs at the start of every multiplexed
	// request's execution (after admission, before dispatch). Tests use it
	// to park workers and saturate the dispatch queue deterministically.
	dispatchHook func(req *request)

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps a database. logf receives connection-level diagnostics;
// nil discards them.
func NewServer(db *engine.DB, logf func(format string, args ...any), opts ...ServerOption) *Server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s := &Server{
		db:           db,
		logf:         logf,
		connWorkers:  defaultConnWorkers,
		drainTimeout: defaultDrainTimeout,
		conns:        make(map[net.Conn]struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	if s.queueDepth == 0 {
		s.queueDepth = s.connWorkers * queuedPerWorker
	}
	return s
}

// Serve accepts connections on ln until Close. It blocks.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("wire: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops accepting and drains gracefully: every connection's read loop
// is interrupted (so no further requests are admitted), but requests
// already accepted keep executing and their responses are written before
// the connections close — a client whose request was admitted gets its
// answer, not a reset. Requests still running after WithDrainTimeout are
// abandoned by force-closing their connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		// A read deadline in the past unblocks the connection's read loop
		// without disturbing response writes in flight.
		c.SetReadDeadline(time.Now()) //nolint:errcheck // best-effort wakeup; drain timeout backstops
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.drainTimeout):
		// Drain overran its budget (a wedged scan, a peer not reading its
		// responses): force-close so the stuck writers fail fast.
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-done
	}
	return err
}

// serveConn sniffs the first four bytes for the negotiation magic and hands
// the connection to the multiplexed or lock-step loop. With metrics enabled
// the connection is wrapped so both loops' reads and writes feed the byte
// counters.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	s.metrics.connOpened()
	defer s.metrics.connClosed()
	counted := s.metrics.wrap(conn)
	br := bufio.NewReader(counted)
	var first [4]byte
	if _, err := io.ReadFull(br, first[:]); err != nil {
		return
	}
	if first == helloMagic {
		s.serveMux(counted, br)
		return
	}
	// No magic: a v1 peer already sent its first frame's length prefix.
	s.serveLockstep(counted, br, binary.BigEndian.Uint32(first[:]))
}

// requestContext derives one dispatched request's context: the per-request
// deadline (WithRequestTimeout) starts counting when the request is
// decoded, so time spent waiting for a free worker is charged against it.
func (s *Server) requestContext(parent context.Context) (context.Context, context.CancelFunc) {
	if s.reqTimeout > 0 {
		return context.WithTimeout(parent, s.reqTimeout)
	}
	return context.WithCancel(parent)
}

// serveLockstep is the v1 loop: strict request/response alternation.
// firstLen is the already-consumed length prefix of the first frame.
func (s *Server) serveLockstep(conn net.Conn, br *bufio.Reader, firstLen uint32) {
	fr := &frameReader{r: br}
	payload, err := fr.payload(firstLen)
	for {
		if err != nil {
			return // EOF, broken connection, or oversized frame: drop it
		}
		var req request
		if err := decodeMsg(payload, &req); err != nil {
			s.logf("wire: bad request from %s: %v", conn.RemoteAddr(), err)
			return
		}
		arrived := s.metrics.now()
		ctx, cancel := s.requestContext(context.Background())
		resp := s.dispatch(ctx, &req)
		cancel()
		s.recordResponse(req.Op, arrived, resp)
		out, err2 := encodeMsg(resp)
		if err2 != nil {
			s.logf("wire: encode response: %v", err2)
			return
		}
		if err2 := writeFrame(conn, out); err2 != nil {
			return
		}
		payload, err = fr.read()
	}
}

// recordResponse feeds one finished request into the metric families,
// counting deadline expiries separately so operators can tell shed load
// (busy) from slow load (timeouts).
func (s *Server) recordResponse(o op, arrived time.Time, resp *response) {
	if s.metrics == nil {
		return
	}
	if resp.Err == context.DeadlineExceeded.Error() {
		s.metrics.timeoutInc()
	}
	s.metrics.request(o, arrived, resp.Err != "")
}

// inflightSet tracks the cancel functions of a connection's dispatched
// requests so an opCancel frame can reach into a running scan.
type inflightSet struct {
	mu sync.Mutex
	m  map[uint64]context.CancelFunc
}

// add registers a request's cancel function under its ID.
func (in *inflightSet) add(id uint64, cancel context.CancelFunc) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.m == nil {
		in.m = make(map[uint64]context.CancelFunc)
	}
	in.m[id] = cancel
}

// remove drops a finished request.
func (in *inflightSet) remove(id uint64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.m, id)
}

// cancel fires the cancel function registered under id, if any. Cancellation
// is advisory, so an unknown ID (already finished, never dispatched) is fine.
func (in *inflightSet) cancel(id uint64) {
	in.mu.Lock()
	fn := in.m[id]
	in.mu.Unlock()
	if fn != nil {
		fn()
	}
}

// serveMux is the v2 loop: finish negotiation, then decode frames on this
// goroutine (so the read buffer can be reused) and dispatch each request on
// its own bounded worker goroutine. Responses go out under the connection
// write lock in completion order. Before returning — peer drop or server
// Close — it drains all in-flight workers, whose late responses then fail
// with a write error on the closed connection instead of panicking.
//
// Every dispatched request runs under its own context, registered in the
// connection's inflight set: an opCancel frame cancels the named request's
// context mid-scan, and tearing the connection down cancels them all.
func (s *Server) serveMux(conn net.Conn, br *bufio.Reader) {
	clientVer, err := br.ReadByte()
	if err != nil {
		return
	}
	ver := byte(protoV2)
	if clientVer < ver {
		ver = clientVer
	}
	if ver < protoV2 {
		s.logf("wire: %s negotiated unsupported version %d", conn.RemoteAddr(), ver)
		return
	}
	if err := writeHello(conn, ver); err != nil {
		return
	}
	connCtx, connCancel := context.WithCancel(context.Background())
	defer connCancel()
	inflight := &inflightSet{}
	mw := newMuxWriter(conn)
	// Two bounds: sem caps how many requests *execute* concurrently;
	// queueSem caps how many decoded requests may be outstanding
	// (queued + executing) so a peer that never reads responses cannot
	// queue unbounded memory. The queue bound is deliberately much larger
	// than the execution bound: the read loop keeps draining frames while
	// all workers are busy, which is what lets an opCancel frame reach a
	// saturated connection instead of queuing behind the requests it is
	// trying to interrupt.
	sem := make(chan struct{}, s.connWorkers)
	queueSem := make(chan struct{}, s.queueDepth)
	var wg sync.WaitGroup
	defer wg.Wait()
	mr := newMuxReader(br)
	for {
		req := new(request)
		id, err := mr.next(req)
		if err != nil {
			// EOF, broken connection, oversized frame, or a gob decode
			// error: nothing after a corrupt stream position can be
			// trusted, so drop the connection.
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("wire: bad request stream from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if req.Op == opCancel && !s.legacyOps {
			// Handled inline, before any queue admission: cancellation must
			// not queue behind the very requests it is trying to interrupt,
			// and must work even when the queue is full.
			inflight.cancel(req.Cancel)
			if err := mw.send(id, &response{}); err != nil {
				s.logf("wire: send response: %v", err)
				conn.Close()
				return
			}
			continue
		}
		arrived := s.metrics.now()
		// Admission: a full queue sheds the request immediately with a typed
		// busy error rather than blocking the read loop. Rejection happens
		// before any context or inflight registration, so a shed request
		// costs one frame decode and one response frame — nothing else.
		select {
		case queueSem <- struct{}{}:
		default:
			s.metrics.rejectedInc()
			if err := mw.send(id, &response{Err: ErrServerBusy.Error()}); err != nil {
				s.logf("wire: send response: %v", err)
				conn.Close()
				return
			}
			continue
		}
		// Register the request's context before handing it to a worker, so
		// an opCancel that races ahead of the worker's execution still
		// cancels it (the engine surfaces context.Canceled when the worker
		// eventually runs it).
		ctx, cancel := s.requestContext(connCtx)
		inflight.add(id, cancel)
		s.metrics.inflightAdd(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-queueSem }()
			sem <- struct{}{}
			defer func() { <-sem }()
			defer func() {
				inflight.remove(id)
				cancel()
				s.metrics.inflightAdd(-1)
			}()
			if s.dispatchHook != nil {
				s.dispatchHook(req)
			}
			if err := s.serveRequest(ctx, mw, id, req, arrived); err != nil {
				// Whether the connection died or the response stream broke
				// (encode failure, oversized response), no further response
				// can be delivered on it. Close so the peer's read loop
				// fails its pending calls instead of hanging on a half-dead
				// connection that still reads fine.
				s.logf("wire: send response: %v", err)
				conn.Close()
			}
		}()
	}
}

// serveRequest executes one multiplexed request, records it against the
// metric families, and writes its response(s): a single frame for ordinary
// ops, a chunk sequence for opSelectStream.
func (s *Server) serveRequest(ctx context.Context, mw *muxWriter, id uint64, req *request, arrived time.Time) error {
	if req.Op == opSelectStream && !s.legacyOps {
		return s.serveSelectStream(ctx, mw, id, req, arrived)
	}
	resp := s.dispatch(ctx, req)
	s.recordResponse(req.Op, arrived, resp)
	return mw.send(id, resp)
}

// serveSelectStream renders a Select chunk by chunk, writing each as its own
// frame under the request's ID: response.More marks chunks, a final frame
// with More unset (carrying the total count) terminates, and an error —
// including the query's context being cancelled by opCancel — terminates
// with Err set. Only send failures are returned; query failures travel to
// the peer. Like dispatch, panics in the engine's lazy render path are
// converted to an error terminator instead of taking down the provider.
func (s *Server) serveSelectStream(ctx context.Context, mw *muxWriter, id uint64, req *request, arrived time.Time) error {
	final, sendErr := s.streamChunks(ctx, mw, id, req)
	if sendErr != nil {
		return sendErr
	}
	s.recordResponse(req.Op, arrived, final)
	return mw.send(id, final)
}

// streamChunks writes the chunk frames of one streamed Select and returns
// the terminator frame for serveSelectStream to send, upholding dispatch's
// invariant that a panic in a handler becomes an error response rather than
// an unrecovered goroutine panic.
func (s *Server) streamChunks(ctx context.Context, mw *muxWriter, id uint64, req *request) (final *response, sendErr error) {
	defer func() {
		if r := recover(); r != nil {
			s.logf("wire: panic handling op %d: %v", req.Op, r)
			final, sendErr = &response{Err: fmt.Sprintf("wire: internal error handling op %d", req.Op)}, nil
		}
	}()
	st, err := s.db.SelectStream(ctx, req.Query)
	if err != nil {
		return &response{Err: err.Error()}, nil
	}
	defer st.Close()
	for {
		chunk, err := st.Next()
		if err == io.EOF {
			return &response{N: st.Count()}, nil
		}
		if err != nil {
			return &response{Err: err.Error()}, nil
		}
		if err := mw.send(id, &response{Result: chunk, More: true, N: st.Count()}); err != nil {
			return nil, err
		}
	}
}

// dispatch executes one request against the database. Panics in handlers
// are converted to error responses so one bad request cannot take down the
// provider. Ops the server predates (or pretends to, under legacyOps)
// answer with an "unknown op" error, which is also what real pre-streaming
// v2 servers produce for opSelectStream and opCancel.
func (s *Server) dispatch(ctx context.Context, req *request) (resp *response) {
	resp = &response{}
	defer func() {
		if r := recover(); r != nil {
			s.logf("wire: panic handling op %d: %v", req.Op, r)
			resp.Err = fmt.Sprintf("wire: internal error handling op %d", req.Op)
		}
	}()
	fail := func(err error) *response {
		resp.Err = err.Error()
		return resp
	}
	if s.legacyOps && (req.Op == opSelectStream || req.Op == opCancel) {
		return fail(fmt.Errorf("wire: unknown op %d", req.Op))
	}
	switch req.Op {
	case opSelect:
		res, err := s.db.Select(ctx, req.Query)
		if err != nil {
			return fail(err)
		}
		resp.Result = res
	case opQuote:
		encl := s.db.Enclave()
		if encl == nil {
			return fail(errors.New("wire: provider has no enclave"))
		}
		resp.Quote = encl.Quote(req.Nonce)
	case opProvision:
		encl := s.db.Enclave()
		if encl == nil {
			return fail(errors.New("wire: provider has no enclave"))
		}
		if err := encl.Provision(req.Sealed); err != nil {
			return fail(err)
		}
	case opSchema:
		sc, err := s.db.Schema(req.Table)
		if err != nil {
			return fail(err)
		}
		resp.Schema = sc
	case opCreateTable:
		if err := s.db.CreateTable(req.Schema); err != nil {
			return fail(err)
		}
	case opDropTable:
		if err := s.db.DropTable(req.Table); err != nil {
			return fail(err)
		}
	case opInsert:
		if err := s.db.Insert(ctx, req.Table, req.Row); err != nil {
			return fail(err)
		}
	case opDelete:
		n, err := s.db.Delete(ctx, req.Table, req.Filters)
		if err != nil {
			return fail(err)
		}
		resp.N = n
	case opUpdate:
		n, err := s.db.Update(ctx, req.Table, req.Filters, req.Set)
		if err != nil {
			return fail(err)
		}
		resp.N = n
	case opMerge:
		if err := s.db.Merge(ctx, req.Table); err != nil {
			return fail(err)
		}
	case opMergeAsync:
		started, err := s.db.MergeAsync(ctx, req.Table)
		if err != nil {
			return fail(err)
		}
		if started {
			resp.N = 1
		}
	case opMergeStatus:
		info, err := s.db.MergeStatus(ctx, req.Table)
		if err != nil {
			return fail(err)
		}
		resp.Merge = info
	case opSelectStream:
		// Reached only on a lock-step connection, whose strict
		// request/response alternation cannot carry chunked frames.
		return fail(errors.New("wire: streaming requires a multiplexed connection"))
	case opCancel:
		// Reached only on a lock-step connection, where nothing can be in
		// flight to cancel; answer harmlessly.
	case opImportColumn:
		split, err := dict.FromData(req.Split)
		if err != nil {
			return fail(err)
		}
		if err := s.db.ImportColumn(req.Table, req.Column, split); err != nil {
			return fail(err)
		}
	case opTables:
		resp.Tables = s.db.Tables()
	case opRows:
		n, err := s.db.Rows(req.Table)
		if err != nil {
			return fail(err)
		}
		resp.N = n
	case opStorageBytes:
		n, err := s.db.StorageBytes(req.Table)
		if err != nil {
			return fail(err)
		}
		resp.N = n
	case opBatch:
		resp.Subs = s.dispatchBatch(ctx, req.Subs)
	default:
		return fail(fmt.Errorf("wire: unknown op %d", req.Op))
	}
	return resp
}

// dispatchBatch executes the sub-requests of an opBatch envelope in order,
// stopping at (and marking the remainder after) the first failure. Inserts
// into one table take the engine's single-lock batch path.
func (s *Server) dispatchBatch(ctx context.Context, subs []request) []response {
	out := make([]response, len(subs))
	for i := 0; i < len(subs); i++ {
		if subs[i].Op == opBatch {
			out[i].Err = "wire: nested batch not allowed"
		} else if n := s.insertRun(subs, i); n > 1 {
			// A run of inserts into the same table: one engine call under
			// one table-lock acquisition.
			rows := make([]engine.Row, n)
			for j := 0; j < n; j++ {
				rows[j] = subs[i+j].Row
			}
			if err := s.db.InsertBatch(ctx, subs[i].Table, rows); err != nil {
				out[i].Err = err.Error()
			} else {
				i += n - 1
			}
		} else {
			out[i] = *s.dispatch(ctx, &subs[i])
		}
		if out[i].Err != "" {
			for j := i + 1; j < len(subs); j++ {
				out[j].Err = errBatchAborted
			}
			break
		}
	}
	return out
}

// insertRun returns the length of the run of opInsert sub-requests into one
// table starting at i.
func (s *Server) insertRun(subs []request, i int) int {
	if subs[i].Op != opInsert {
		return 0
	}
	n := 1
	for i+n < len(subs) && subs[i+n].Op == opInsert && subs[i+n].Table == subs[i].Table {
		n++
	}
	return n
}

// ListenAndServe is a convenience wrapper binding addr and serving until
// Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}
